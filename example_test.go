package gpbft_test

import (
	"fmt"
	"time"

	"gpbft"
)

// ExampleNewCluster shows the one-minute tour: build a simulated
// G-PBFT deployment, submit a sensor reading, and read the metrics.
// The simulation is deterministic, so the output is exact.
func ExampleNewCluster() {
	opts := gpbft.DefaultOptions(gpbft.GPBFT, 8)
	opts.MaxEndorsers = 4 // four payment machines carry consensus
	opts.DisableEraSwitch = true
	opts.Network = gpbft.NetworkProfile{
		LatencyBase: time.Millisecond,
		ProcTime:    100 * time.Microsecond,
		SendTime:    20 * time.Microsecond,
	}

	cluster, err := gpbft.NewCluster(opts)
	if err != nil {
		panic(err)
	}
	cluster.SubmitNodeTx(10*time.Millisecond, 7, []byte("temp=23.4C"), 1)
	cluster.RunUntilIdle(30 * time.Second)

	fmt.Printf("committee: %d of %d nodes\n", cluster.CommitteeSize(), cluster.NodeCount())
	fmt.Printf("committed: %d transaction(s) at height %d\n",
		cluster.Metrics().CommittedCount(), cluster.MaxHeight())
	// Output:
	// committee: 4 of 8 nodes
	// committed: 1 transaction(s) at height 1
}

// ExampleProtocol contrasts the two protocols' communication cost for
// one transaction in a 16-device system with a 4-endorser committee.
func ExampleProtocol() {
	cost := func(p gpbft.Protocol) float64 {
		o := gpbft.DefaultOptions(p, 16)
		o.MaxEndorsers = 4
		o.DisableEraSwitch = true
		o.Network = gpbft.NetworkProfile{ProcTime: 50 * time.Microsecond}
		c, err := gpbft.NewCluster(o)
		if err != nil {
			panic(err)
		}
		c.RunUntilIdle(time.Second)
		c.Traffic().Reset()
		c.SubmitNodeTx(c.Now()+time.Millisecond, 15, []byte("x"), 1)
		c.RunUntilIdle(c.Now() + 30*time.Second)
		return c.Traffic().KB()
	}
	pbftKB, gpbftKB := cost(gpbft.PBFT), cost(gpbft.GPBFT)
	fmt.Printf("PBFT needs more traffic than G-PBFT: %v\n", pbftKB > 4*gpbftKB)
	// Output:
	// PBFT needs more traffic than G-PBFT: true
}
