package gpbft

import (
	"sort"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// DefaultMaxPending caps submitted-but-uncommitted latency clocks; a
// sustained overload that drops transactions must not grow the
// recorder without bound.
const DefaultMaxPending = 1 << 16

// Metrics records per-transaction consensus latency, measured exactly
// as the paper defines it (Section V-B): "the latency from the time
// when a transaction is sent to an endorser to the time when the
// transaction is written to the ledger after consensus". The first
// node to commit a transaction stops its clock.
//
// Pending clocks are bounded: when more than the configured cap of
// submitted transactions have not committed, the oldest clocks are
// evicted (their transactions were dropped under load; if one later
// commits it simply goes unmeasured).
type Metrics struct {
	submits    map[gcrypto.Hash]consensus.Time // pending clocks only
	order      []gcrypto.Hash                  // submission order of clocks
	committed  map[gcrypto.Hash]consensus.Time
	latencies  []time.Duration
	blocks     int
	eraCount   int
	submitted  int
	evicted    int
	evidence   int
	maxPending int
	lastCommit consensus.Time
}

// NewMetrics returns an empty recorder with the default pending cap.
func NewMetrics() *Metrics {
	return &Metrics{
		submits:    make(map[gcrypto.Hash]consensus.Time),
		committed:  make(map[gcrypto.Hash]consensus.Time),
		maxPending: DefaultMaxPending,
	}
}

// SetMaxPending adjusts the cap on pending latency clocks (values < 1
// are ignored) and prunes immediately if already above it.
func (m *Metrics) SetMaxPending(n int) {
	if n < 1 {
		return
	}
	m.maxPending = n
	m.prune()
}

// RecordSubmit starts a transaction's latency clock.
func (m *Metrics) RecordSubmit(id gcrypto.Hash, now consensus.Time) {
	if _, dup := m.submits[id]; dup {
		return
	}
	if _, done := m.committed[id]; done {
		return
	}
	m.submits[id] = now
	m.order = append(m.order, id)
	m.submitted++
	m.prune()
}

// prune evicts the oldest pending clocks above the cap. The order list
// may hold ids whose clock already stopped; those are skipped (their
// map entry is gone), which also keeps the list itself bounded.
func (m *Metrics) prune() {
	for len(m.submits) > m.maxPending && len(m.order) > 0 {
		id := m.order[0]
		m.order = m.order[1:]
		if _, pending := m.submits[id]; pending {
			delete(m.submits, id)
			m.evicted++
		}
	}
	// Compact the order list when committed entries dominate it, so it
	// cannot grow unboundedly ahead of the pending map.
	if len(m.order) > 64 && len(m.order) > 2*len(m.submits) {
		kept := m.order[:0]
		for _, id := range m.order {
			if _, pending := m.submits[id]; pending {
				kept = append(kept, id)
			}
		}
		m.order = kept
	}
}

// ObserveCommit stops the clock for every transaction in a block, on
// its first commit observation anywhere in the cluster.
func (m *Metrics) ObserveCommit(now consensus.Time, b *types.Block) {
	m.blocks++
	for i := range b.Txs {
		if b.Txs[i].Type == types.TxEvidence {
			m.evidence++
		}
		id := b.Txs[i].ID()
		if _, done := m.committed[id]; done {
			continue
		}
		sub, ok := m.submits[id]
		if !ok {
			continue // internally generated (e.g. config txs) or evicted
		}
		delete(m.submits, id)
		m.committed[id] = now
		m.latencies = append(m.latencies, time.Duration(now-sub))
		m.lastCommit = now
	}
}

// LastCommitAt returns the virtual time at which the most recent
// tracked transaction committed (0 when none have). Load generators
// use it to bound the measurement window when background machinery —
// the geo-shard anchor pump — keeps the event loop ticking long after
// the workload has drained.
func (m *Metrics) LastCommitAt() consensus.Time { return m.lastCommit }

// ObserveEraSwitch counts completed era switches.
func (m *Metrics) ObserveEraSwitch() { m.eraCount++ }

// Latencies returns a copy of all recorded commit latencies.
func (m *Metrics) Latencies() []time.Duration {
	out := make([]time.Duration, len(m.latencies))
	copy(out, m.latencies)
	return out
}

// SubmittedCount returns how many transactions had their clock started.
func (m *Metrics) SubmittedCount() int { return m.submitted }

// CommittedCount returns how many submitted transactions committed.
func (m *Metrics) CommittedCount() int { return len(m.committed) }

// PendingCount returns submitted-but-uncommitted transactions still
// tracked (evicted clocks are no longer pending).
func (m *Metrics) PendingCount() int { return len(m.submits) }

// EvictedCount returns pending clocks discarded because the cap was
// exceeded (transactions dropped under load that never committed).
func (m *Metrics) EvictedCount() int { return m.evicted }

// BlocksObserved returns the number of first-commit block observations.
func (m *Metrics) BlocksObserved() int { return m.blocks }

// EraSwitches returns observed era-switch completions.
func (m *Metrics) EraSwitches() int { return m.eraCount }

// EvidenceTxCount returns how many evidence transactions were observed
// in first-commit blocks (duplicate accusations included: each carries
// its own transaction).
func (m *Metrics) EvidenceTxCount() int { return m.evidence }

// MeanLatency returns the mean commit latency (0 when empty).
func (m *Metrics) MeanLatency() time.Duration {
	if len(m.latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range m.latencies {
		sum += l
	}
	return sum / time.Duration(len(m.latencies))
}

// MaxLatency returns the worst commit latency.
func (m *Metrics) MaxLatency() time.Duration {
	var max time.Duration
	for _, l := range m.latencies {
		if l > max {
			max = l
		}
	}
	return max
}

// Quantile returns the q-quantile (0..1) of latencies, 0 when empty.
func (m *Metrics) Quantile(q float64) time.Duration {
	if len(m.latencies) == 0 {
		return 0
	}
	ls := m.Latencies()
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	idx := int(q * float64(len(ls)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ls) {
		idx = len(ls) - 1
	}
	return ls[idx]
}
