package gpbft

import (
	"errors"
	"fmt"
	"time"

	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/pbft"
)

// Options configures a simulated cluster.
type Options struct {
	// Protocol selects PBFT (baseline) or GPBFT.
	Protocol Protocol
	// Nodes is the total number of IoT nodes in the system (the
	// paper's n). Under PBFT all of them form the consensus group;
	// under GPBFT the committee is capped at MaxEndorsers and the rest
	// are clients/candidates.
	Nodes int
	// Seed drives every random choice; same seed ⇒ identical run.
	Seed int64
	// Network is the simulated network/node model.
	Network NetworkProfile

	// --- genesis policy (Section III-C) ---
	MinEndorsers int
	MaxEndorsers int
	// GenesisEndorsers sets the size of the initial core-node
	// committee. Zero means "as many nodes as the cap allows"
	// (min(Nodes, MaxEndorsers)). Set it below MaxEndorsers to leave
	// room for candidates to be elected through era switches.
	GenesisEndorsers    int
	EraPeriod           time.Duration
	SwitchPeriod        time.Duration
	QualificationWindow time.Duration
	ReportInterval      time.Duration
	MinReports          int
	// MinWitnesses enables witness supervision: candidates need this
	// many endorser confirmations of their claimed cell (0 = off).
	MinWitnesses int
	// WitnessRangeMeters bounds credible witness distance (0 = any).
	WitnessRangeMeters float64
	// SybilWindow enables Sybil-pair evidence: two committed reports
	// from distinct identities in one CSC cell within the window become
	// a SybilSameCell conviction (0 = off). Leave it off for dense
	// deployments where honest devices legitimately share cells.
	SybilWindow time.Duration
	// DisableExpulsion is the accountability ablation: evidence is
	// still detected, committed and counted, but offenders keep their
	// committee seats and stay electable.
	DisableExpulsion bool
	// Region is the deployment area; devices are laid out inside it.
	Region geo.Region

	// --- engine knobs ---
	BatchSize          int
	ViewChangeTimeout  time.Duration
	CheckpointInterval uint64
	// MaxInFlight is the consensus pipelining depth: how many sequence
	// numbers run their PBFT phases concurrently (commits still execute
	// strictly in order). 0 selects the engine default; 1 is the serial
	// one-slot-at-a-time ablation.
	MaxInFlight int
	// MempoolCap bounds each node's pending transaction pool
	// (0 = runtime.DefaultMempoolCap).
	MempoolCap int
	// MempoolShards sets the mempool lock-stripe count
	// (0 = runtime.DefaultMempoolShards; clamped to a power of two ≤ 256).
	MempoolShards int
	// RateLimit enables the overload armor on every node: per-identity
	// token-bucket admission at this sustained tx/s, QoS priority lanes
	// in the mempool, and the graceful-degradation shed controller.
	// 0 keeps the plain FIFO pool and unguarded submit path — exactly
	// the pre-armor behaviour (the ablation baseline).
	RateLimit float64
	// RateBurst overrides the admission token-bucket depth (0 = default:
	// max(2×RateLimit, 8)).
	RateBurst float64
	// LaneWeights sets the control/normal/bulk Peek scheduling weights
	// (zeros = 8/4/1); FairShare is the per-identity pending count above
	// which traffic demotes to the bulk lane (0 = 16); ShedThresholds
	// are the pool-occupancy fractions for shed levels 1..3 (zeros =
	// 0.50/0.75/0.90). All ignored unless RateLimit > 0.
	LaneWeights    [3]int
	FairShare      int
	ShedThresholds [3]float64
	// Gossip replaces all-to-all consensus broadcast with an epidemic
	// relay: each node queues its broadcasts and periodically flushes
	// them as one batched relay frame to a random fanout of committee
	// peers, with a round-scoped dupemap suppressing re-deliveries.
	// Off keeps the direct per-peer broadcast path bit-for-bit (the
	// ablation baseline, like RateLimit 0 for the overload armor).
	Gossip bool
	// GossipFanout is the number of random peers each relay flush
	// targets (0 = ceil(log₂(n+1))+1 for the current committee size).
	GossipFanout int
	// GossipFlush is the relay batching interval (0 = consensus
	// default). Smaller means lower added dissemination latency per
	// hop; larger means fewer, bigger frames.
	GossipFlush time.Duration
	// DupemapTTL is the wall-clock backstop for dupemap generations on
	// a stalled chain (0 = consensus default); DupemapCap bounds total
	// retained digests per node (0 = default). All ignored unless
	// Gossip is set.
	DupemapTTL time.Duration
	DupemapCap int
	// Snapshots enables signed era snapshots (GPBFT only): every era
	// boundary each node exports its canonical chain state, signs it,
	// and retains the newest RetainSnapshots checkpoints. A node whose
	// lag exceeds FastSyncThreshold then fast-syncs snapshot-then-tail
	// instead of replaying every block.
	Snapshots bool
	// RetainSnapshots is the per-node snapshot retention depth
	// (0 = store.DefaultRetainSnapshots).
	RetainSnapshots int
	// FastSyncThreshold is the block gap at which a lagging node
	// prefers a snapshot over full replay (0 = engine default).
	FastSyncThreshold uint64
	// ShardRegions splits the deployment into this many geohash-prefix
	// regions, each running its own full consensus instance over a
	// region-local committee, anchored by a top-level checkpoint
	// committee (NewShardCluster). 0 or 1 keeps the single-region
	// cluster bit-for-bit. Only consulted by NewShardCluster; plain
	// NewCluster ignores it.
	ShardRegions int
	// ShardPrefixLen is the geohash prefix length used as the shard key
	// (0 = shard.DefaultPrefixLen). Longer prefixes mean smaller,
	// denser regions.
	ShardPrefixLen int
	// AnchorPeriod is the interval at which region delegates emit
	// signed region checkpoints to the anchor committee and destination
	// regions apply anchored transfer receipts (0 = default 500ms).
	AnchorPeriod time.Duration
	// EndorserEndowment is the genesis balance credited to each
	// committee member. Transfer locks debit the sender, so sharded
	// runs need funded senders; NewShardCluster defaults this to
	// DefaultEndorserEndowment when zero. Plain clusters keep the
	// historical zero (fees are the only income).
	EndorserEndowment uint64
	// GeoTimerProposer orders the committee by geographic timer (the
	// incentive bias). Only meaningful under GPBFT.
	GeoTimerProposer bool
	// DisableEraSwitch freezes the committee (ablation).
	DisableEraSwitch bool
	// ForceEraSwitch switches eras every EraPeriod even when the
	// election changes nothing — the paper's literal schedule, which
	// produces the switch-period latency outliers of Figure 3b.
	ForceEraSwitch bool

	// Epoch anchors simulated time to wall-clock timestamps.
	Epoch time.Time

	// Byzantine assigns adversarial behaviour to node indices. The
	// protocol tolerates fewer than one third faulty committee members
	// (the paper's threat model); exceeding that voids all guarantees.
	Byzantine map[int]Fault
}

// Fault selects an adversarial behaviour for a node.
type Fault int

const (
	// Honest is the default.
	Honest Fault = iota
	// FaultSilent joins but never participates.
	FaultSilent
	// FaultEquivocate sends conflicting proposals to disjoint halves
	// of the committee when leading.
	FaultEquivocate
	// FaultWithholdVotes suppresses own commit votes.
	FaultWithholdVotes
	// FaultDoubleVote signs conflicting prepare/commit votes and hands
	// both to every peer — the offense the accountability pipeline
	// detects, proves and expels.
	FaultDoubleVote
)

// DefaultOptions returns the paper's experiment configuration for the
// given protocol and node count: min 4 / max 40 endorsers, the LAN
// profile, and a one-second era period scaled for simulation.
func DefaultOptions(p Protocol, nodes int) Options {
	return Options{
		Protocol:            p,
		Nodes:               nodes,
		Seed:                1,
		Network:             LANProfile(),
		MinEndorsers:        ledger.DefaultMinEndorsers,
		MaxEndorsers:        ledger.DefaultMaxEndorsers,
		EraPeriod:           10 * time.Second,
		SwitchPeriod:        ledger.DefaultSwitchPeriod,
		QualificationWindow: 30 * time.Second, // scaled-down 72 h for simulation
		ReportInterval:      time.Second,
		MinReports:          3,
		Region:              geo.NewRegion(geo.Point{Lng: 114.175, Lat: 22.300}, geo.Point{Lng: 114.185, Lat: 22.310}),
		BatchSize:           32,
		ViewChangeTimeout:   0, // filled per committee size in NewCluster
		CheckpointInterval:  16,
		GeoTimerProposer:    true,
		Epoch:               time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC),
	}
}

// validate normalizes and checks the options.
func (o *Options) validate() error {
	if o.Nodes < 4 {
		return errors.New("gpbft: need at least 4 nodes")
	}
	if o.MinEndorsers == 0 {
		o.MinEndorsers = ledger.DefaultMinEndorsers
	}
	if o.MaxEndorsers == 0 {
		o.MaxEndorsers = ledger.DefaultMaxEndorsers
	}
	if o.MinEndorsers < 4 || o.MaxEndorsers < o.MinEndorsers {
		return fmt.Errorf("gpbft: bad endorser bounds [%d, %d]", o.MinEndorsers, o.MaxEndorsers)
	}
	if o.EraPeriod == 0 {
		o.EraPeriod = ledger.DefaultEraPeriod
	}
	if o.SwitchPeriod == 0 {
		o.SwitchPeriod = ledger.DefaultSwitchPeriod
	}
	if o.QualificationWindow == 0 {
		o.QualificationWindow = ledger.DefaultQualificationWindow
	}
	if o.ReportInterval == 0 {
		o.ReportInterval = ledger.DefaultReportInterval
	}
	if o.MinReports == 0 {
		o.MinReports = ledger.DefaultMinReports
	}
	if o.BatchSize == 0 {
		o.BatchSize = 32
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 16
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = pbft.DefaultMaxInFlight
	}
	if o.Epoch.IsZero() {
		o.Epoch = time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)
	}
	if o.Region.IsZero() {
		o.Region = geo.NewRegion(geo.Point{Lng: 114.175, Lat: 22.300}, geo.Point{Lng: 114.185, Lat: 22.310})
	}
	if o.GenesisEndorsers > 0 && o.GenesisEndorsers < o.MinEndorsers {
		return fmt.Errorf("gpbft: GenesisEndorsers %d below MinEndorsers %d", o.GenesisEndorsers, o.MinEndorsers)
	}
	if o.ViewChangeTimeout == 0 {
		// Scale patience with committee size: a 202-node PBFT round
		// takes ~n*ProcTime per phase, and under sustained load the
		// queueing delay grows far beyond a single round — a fixed
		// small timeout would depose primaries that are merely slow.
		n := o.committeeSize()
		o.ViewChangeTimeout = 2*time.Second + time.Duration(n*n/4)*o.Network.ProcTime
	}
	return nil
}

// committeeSize returns the size of the initial consensus group.
func (o *Options) committeeSize() int {
	if o.Protocol == PBFT {
		return o.Nodes
	}
	size := o.MaxEndorsers
	if o.GenesisEndorsers > 0 && o.GenesisEndorsers < size {
		size = o.GenesisEndorsers
	}
	if o.Nodes < size {
		size = o.Nodes
	}
	return size
}

// policy assembles the genesis admittance policy.
func (o *Options) policy() ledger.AdmittancePolicy {
	return ledger.AdmittancePolicy{
		MinEndorsers:        o.MinEndorsers,
		MaxEndorsers:        o.maxForProtocol(),
		Region:              o.Region,
		QualificationWindow: o.QualificationWindow,
		MinReports:          o.MinReports,
		EraPeriod:           o.EraPeriod,
		SwitchPeriod:        o.SwitchPeriod,
		ReportInterval:      o.ReportInterval,
		MinWitnesses:        o.MinWitnesses,
		WitnessRangeMeters:  o.WitnessRangeMeters,
		SybilWindow:         o.SybilWindow,
		DisableExpulsion:    o.DisableExpulsion,
		EndorserEndowment:   o.EndorserEndowment,
	}
}

// maxForProtocol: under baseline PBFT every node is a consensus member,
// so the policy cap must admit all of them.
func (o *Options) maxForProtocol() int {
	if o.Protocol == PBFT && o.Nodes > o.MaxEndorsers {
		return o.Nodes
	}
	return o.MaxEndorsers
}
