package gpbft

import (
	"errors"
	"fmt"
	"math"
	"time"

	"gpbft/internal/byzantine"
	"gpbft/internal/consensus"
	"gpbft/internal/core"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/simnet"
	"gpbft/internal/store"
	"gpbft/internal/types"
)

// Cluster is a simulated IoT-blockchain deployment: Nodes full nodes
// laid out on a grid inside the deployment region, running either
// classic PBFT (all nodes in the consensus group) or G-PBFT (an
// endorser committee capped by policy; remaining nodes are candidate
// devices that submit transactions through the committee).
type Cluster struct {
	opts    Options
	net     *simnet.Network
	genesis *ledger.Genesis

	nodes     []*runtime.Node
	keys      []*gcrypto.KeyPair
	positions []geo.Point
	coreEng   []*core.Engine       // GPBFT mode (index-aligned, else nil)
	pbftEng   []*pbft.Engine       // PBFT mode (index-aligned, else nil)
	snaps     []*store.MemSnapshots // per-node snapshot stores (nil unless Options.Snapshots)

	metrics *Metrics
	nonces  []uint64
}

// NewCluster builds and starts (at virtual time 0) a cluster.
func NewCluster(opts Options) (*Cluster, error) {
	return newClusterOn(opts, clusterSite{})
}

// clusterSite places a cluster on shared infrastructure. The zero value
// means "stand-alone": own simulator, own metrics, default chain ID,
// keys from index 0 — exactly the historical NewCluster behaviour. The
// geo-sharded hierarchy passes one shared network and metrics recorder
// plus a per-region chain ID and key base so several region committees
// coexist on a single event loop without address collisions.
type clusterSite struct {
	net     *simnet.Network
	metrics *Metrics
	chainID string
	keyBase int
	// shardPrefix, when non-empty, pins every node's chain to one
	// region: transfer locks must source here, applies must be destined
	// here. Set identically on all of a region's nodes.
	shardPrefix string
}

// newClusterOn builds and starts (at virtual time 0) a cluster on the
// given site.
func newClusterOn(opts Options, site clusterSite) (*Cluster, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if site.metrics == nil {
		site.metrics = NewMetrics()
	}
	if site.chainID == "" {
		site.chainID = fmt.Sprintf("gpbft-sim-%d", opts.Seed)
	}
	c := &Cluster{
		opts:    opts,
		metrics: site.metrics,
		nonces:  make([]uint64, opts.Nodes),
	}
	c.net = site.net
	if c.net == nil {
		c.net = simnet.New(simnet.Config{
			Seed: opts.Seed,
			Latency: simnet.UniformLatency{
				Base:        opts.Network.LatencyBase,
				Jitter:      opts.Network.LatencyJitter,
				BytesPerSec: opts.Network.BytesPerSec,
			},
			ProcTime: opts.Network.ProcTime,
			SendTime: opts.Network.SendTime,
			DropRate: opts.Network.DropRate,
		})
	}

	// Grid layout: every node gets a distinct CSC cell in the region.
	c.positions = gridLayout(opts.Region, opts.Nodes)
	c.keys = make([]*gcrypto.KeyPair, opts.Nodes)
	for i := range c.keys {
		c.keys[i] = gcrypto.DeterministicKeyPair(site.keyBase + i)
	}

	// Genesis committee: the core nodes of Section III-C.
	committeeSize := opts.committeeSize()
	g := &ledger.Genesis{
		ChainID:   site.chainID,
		Timestamp: opts.Epoch,
		Policy:    opts.policy(),
	}
	for i := 0; i < committeeSize; i++ {
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: c.keys[i].Address(),
			PubKey:  c.keys[i].Public(),
			Geohash: geo.MustEncode(c.positions[i], geo.CSCPrecision),
		})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	c.genesis = g

	c.nodes = make([]*runtime.Node, opts.Nodes)
	c.coreEng = make([]*core.Engine, opts.Nodes)
	c.pbftEng = make([]*pbft.Engine, opts.Nodes)
	c.snaps = make([]*store.MemSnapshots, opts.Nodes)

	var pbftCommittee *consensus.Committee
	if opts.Protocol == PBFT {
		com, err := consensus.NewCommittee(g.Endorsers)
		if err != nil {
			return nil, err
		}
		pbftCommittee = com
	}

	for i := 0; i < opts.Nodes; i++ {
		kp := c.keys[i]
		chain, err := ledger.NewChain(g)
		if err != nil {
			return nil, err
		}
		if site.shardPrefix != "" {
			chain.SetShardPrefix(site.shardPrefix)
		}
		pool := runtime.NewMempoolShards(opts.MempoolCap, opts.MempoolShards)
		if opts.RateLimit > 0 {
			pool = runtime.NewMempoolQoS(opts.MempoolCap, opts.MempoolShards, runtime.QoSConfig{
				LaneWeights: opts.LaneWeights,
				FairShare:   opts.FairShare,
			})
		}
		app := runtime.NewApp(chain, pool, kp.Address(), opts.Epoch, opts.BatchSize)
		// Adaptive block sizing: a deep backlog packs fuller blocks (up to
		// 4x the base batch) instead of queueing more rounds.
		app.SetMaxBatch(4 * opts.BatchSize)
		var eng consensus.Engine
		switch opts.Protocol {
		case PBFT:
			pe, err := pbft.New(pbft.Config{
				Era:                0,
				Committee:          pbftCommittee,
				Key:                kp,
				App:                app,
				Timers:             consensus.NewTimerAllocator(),
				StartHeight:        1,
				CheckpointInterval: opts.CheckpointInterval,
				ViewChangeTimeout:  opts.ViewChangeTimeout,
				MaxInFlight:        opts.MaxInFlight,
			})
			if err != nil {
				return nil, err
			}
			c.pbftEng[i] = pe
			eng = pe
		case GPBFT:
			pp := core.ProposerGeoTimer
			if !opts.GeoTimerProposer {
				pp = core.ProposerAddress
			}
			var snaps *store.MemSnapshots
			if opts.Snapshots {
				snaps = store.NewMemSnapshots(opts.RetainSnapshots)
				c.snaps[i] = snaps
				self, sink := kp, snaps
				chain.SetEraBumpHook(func(st *ledger.ChainState) {
					if st.Height() == 0 {
						return
					}
					_ = sink.Add(store.NewSnapshot(st, self))
				})
			}
			cfg := core.Config{
				Chain:              chain,
				Key:                kp,
				App:                app,
				Timers:             consensus.NewTimerAllocator(),
				Epoch:              opts.Epoch,
				CheckpointInterval: opts.CheckpointInterval,
				ViewChangeTimeout:  opts.ViewChangeTimeout,
				MaxInFlight:        opts.MaxInFlight,
				EraPeriod:          opts.EraPeriod,
				SwitchPeriod:       opts.SwitchPeriod,
				ProposerPolicy:     pp,
				DisableEraSwitch:   opts.DisableEraSwitch,
				ForceEraSwitch:     opts.ForceEraSwitch,
			}
			if snaps != nil {
				cfg.Snapshots = snaps
				cfg.FastSyncThreshold = opts.FastSyncThreshold
			}
			ce, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			c.coreEng[i] = ce
			eng = ce
		default:
			return nil, errors.New("gpbft: unknown protocol")
		}
		switch opts.Byzantine[i] {
		case FaultSilent:
			eng = byzantine.Silent{}
		case FaultEquivocate:
			eng = &byzantine.Equivocator{Inner: eng, Key: kp}
		case FaultWithholdVotes:
			eng = &byzantine.VoteWithholder{Inner: eng}
		case FaultDoubleVote:
			eng = &byzantine.DoubleVoter{Inner: eng, Key: kp}
		}
		node := &runtime.Node{
			ID: kp.Address(), Key: kp, App: app, Engine: eng,
			Exec:     c.net.Executor(kp.Address()),
			OnCommit: c.metrics.ObserveCommit,
		}
		if opts.RateLimit > 0 {
			adm := runtime.NewAdmission(runtime.AdmissionConfig{
				Rate:           opts.RateLimit,
				Burst:          opts.RateBurst,
				ShedThresholds: opts.ShedThresholds,
			})
			adm.BindPool(pool)
			if c.coreEng[i] != nil {
				adm.BindInFlight(c.coreEng[i].InFlight)
			} else if c.pbftEng[i] != nil {
				adm.BindInFlight(c.pbftEng[i].InFlight)
			}
			node.Admission = adm
		}
		if opts.Gossip {
			// Every node gets a relay (candidates included: they broadcast
			// request relays at the committee). Peers start as the genesis
			// committee; EraSwitched actions retarget them. Distinct
			// per-node seeds keep target selection decorrelated — identical
			// seeds would make every node gossip to the same subset.
			peers := make([]gcrypto.Address, 0, committeeSize)
			for _, e := range g.Endorsers {
				peers = append(peers, e.Address)
			}
			node.Relay = consensus.NewRelay(consensus.RelayConfig{
				Self:       kp.Address(),
				Peers:      peers,
				Fanout:     opts.GossipFanout,
				FlushEvery: consensus.Time(opts.GossipFlush),
				DupeTTL:    consensus.Time(opts.DupemapTTL),
				DupeCap:    opts.DupemapCap,
				Seed:       opts.Seed ^ int64(uint64(site.keyBase+i+1)*0x9e3779b97f4a7c15),
			})
		}
		if i == 0 {
			node.OnEraSwitch = func(consensus.Time, uint64, []gcrypto.Address) {
				c.metrics.ObserveEraSwitch()
			}
		}
		c.net.AddNode(kp.Address(), node)
		c.nodes[i] = node
	}
	c.net.Schedule(0, func(now consensus.Time) {
		for _, n := range c.nodes {
			n.Start(now)
		}
	})
	return c, nil
}

// gridLayout spreads n points over the region, row-major, at least a
// cell apart.
func gridLayout(region geo.Region, n int) []geo.Point {
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	dLng := (region.MaxLng - region.MinLng) / float64(cols+1)
	dLat := (region.MaxLat - region.MinLat) / float64(cols+1)
	out := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		r, cIdx := i/cols, i%cols
		out[i] = geo.Point{
			Lng: region.MinLng + dLng*float64(cIdx+1),
			Lat: region.MinLat + dLat*float64(r+1),
		}
	}
	return out
}

// --- accessors ---

// Options returns the cluster configuration.
func (c *Cluster) Options() Options { return c.opts }

// Net exposes the simulator (fault injection, scheduling).
func (c *Cluster) Net() *simnet.Network { return c.net }

// Metrics returns the latency recorder.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Traffic returns the network byte/message meter.
func (c *Cluster) Traffic() *simnet.Traffic { return c.net.Traffic() }

// NodeCount returns the number of full nodes.
func (c *Cluster) NodeCount() int { return len(c.nodes) }

// Node returns full node i (advanced use).
func (c *Cluster) Node(i int) *runtime.Node { return c.nodes[i] }

// CoreEngine returns node i's G-PBFT engine (nil under PBFT).
func (c *Cluster) CoreEngine(i int) *core.Engine { return c.coreEng[i] }

// PBFTEngine returns node i's PBFT engine (nil under GPBFT).
func (c *Cluster) PBFTEngine(i int) *pbft.Engine { return c.pbftEng[i] }

// NodeCounters returns node i's runtime event counters (envelopes
// delivered, timers fired, blocks committed) — the same snapshot a TCP
// deployment exports through gpbft-node's -metrics-addr endpoint.
func (c *Cluster) NodeCounters(i int) runtime.CounterSnapshot { return c.nodes[i].Counters() }

// SyncStats returns node i's snapshot/fast-sync counters (zero value
// under PBFT, which has no snapshot path).
func (c *Cluster) SyncStats(i int) runtime.SyncStats {
	if c.coreEng[i] == nil {
		return runtime.SyncStats{}
	}
	return c.coreEng[i].SyncStats()
}

// SnapshotCount returns how many era snapshots node i currently
// retains (0 when Options.Snapshots is off).
func (c *Cluster) SnapshotCount(i int) int {
	if c.snaps[i] == nil {
		return 0
	}
	return c.snaps[i].Len()
}

// Address returns node i's chain address.
func (c *Cluster) Address(i int) gcrypto.Address { return c.keys[i].Address() }

// Position returns node i's deployed location.
func (c *Cluster) Position(i int) geo.Point { return c.positions[i] }

// CommitteeSize returns the size of the initial consensus group.
func (c *Cluster) CommitteeSize() int { return c.opts.committeeSize() }

// IsGenesisEndorser reports whether node i is in the genesis committee.
func (c *Cluster) IsGenesisEndorser(i int) bool { return i < c.opts.committeeSize() }

// Genesis returns the chain's founding configuration.
func (c *Cluster) Genesis() *ledger.Genesis { return c.genesis }

// --- driving the simulation ---

// Run processes events up to the given virtual time.
func (c *Cluster) Run(until time.Duration) { c.net.Run(until) }

// RunUntilIdle processes events until quiescence or the cap.
func (c *Cluster) RunUntilIdle(cap time.Duration) { c.net.RunUntilIdle(cap) }

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.net.Now() }

// NewNodeTx builds a data transaction authored by node i at its
// deployed position, timestamped at the given virtual time.
func (c *Cluster) NewNodeTx(i int, at time.Duration, payload []byte, fee uint64) *types.Transaction {
	c.nonces[i]++
	tx := &types.Transaction{
		Type:    types.TxNormal,
		Nonce:   c.nonces[i],
		Payload: payload,
		Fee:     fee,
		Geo: types.GeoInfo{
			Location:  c.positions[i],
			Timestamp: c.opts.Epoch.Add(at),
		},
	}
	tx.Sign(c.keys[i])
	return tx
}

// NewTypedNodeTx builds a transaction of an arbitrary type authored by
// node i at its deployed position — the entry point for cross-region
// transfer locks and other typed payloads.
func (c *Cluster) NewTypedNodeTx(i int, at time.Duration, typ types.TxType, payload []byte, fee uint64) *types.Transaction {
	c.nonces[i]++
	tx := &types.Transaction{
		Type:    typ,
		Nonce:   c.nonces[i],
		Payload: payload,
		Fee:     fee,
		Geo: types.GeoInfo{
			Location:  c.positions[i],
			Timestamp: c.opts.Epoch.Add(at),
		},
	}
	tx.Sign(c.keys[i])
	return tx
}

// NewLocationReport builds node i's periodic location report.
func (c *Cluster) NewLocationReport(i int, at time.Duration) *types.Transaction {
	c.nonces[i]++
	tx := &types.Transaction{
		Type:  types.TxLocationReport,
		Nonce: c.nonces[i],
		Geo: types.GeoInfo{
			Location:  c.positions[i],
			Timestamp: c.opts.Epoch.Add(at),
		},
	}
	tx.Sign(c.keys[i])
	return tx
}

// SubmitTx schedules tx submission through node `via` at virtual time
// `at`, starting the latency clock.
func (c *Cluster) SubmitTx(at time.Duration, via int, tx *types.Transaction) {
	id := tx.ID()
	c.net.Schedule(at, func(now consensus.Time) {
		c.metrics.RecordSubmit(id, now)
		_ = c.nodes[via].Submit(now, tx)
	})
}

// SubmitNodeTx is the common case: node i submits its own data
// transaction at virtual time `at`.
func (c *Cluster) SubmitNodeTx(at time.Duration, i int, payload []byte, fee uint64) *types.Transaction {
	tx := c.NewNodeTx(i, at, payload, fee)
	c.SubmitTx(at, i, tx)
	return tx
}

// SubmitAttackTx injects a pre-signed transaction through node `via`
// WITHOUT starting the latency clock: attack traffic competes for
// admission and pool space but must not pollute the honest latency
// distribution the bench gates on.
func (c *Cluster) SubmitAttackTx(at time.Duration, via int, tx *types.Transaction) {
	c.net.Schedule(at, func(now consensus.Time) {
		_ = c.nodes[via].Submit(now, tx)
	})
}

// ScheduleReports makes node i submit `count` location reports every
// `interval`, starting at `start` — the periodic uploads that feed the
// election table. Reports do not start the latency clock.
func (c *Cluster) ScheduleReports(i int, start, interval time.Duration, count int) {
	for k := 0; k < count; k++ {
		at := start + time.Duration(k)*interval
		c.net.Schedule(at, func(now consensus.Time) {
			c.nonces[i]++
			tx := &types.Transaction{
				Type:  types.TxLocationReport,
				Nonce: c.nonces[i],
				Geo: types.GeoInfo{
					Location:  c.positions[i],
					Timestamp: c.opts.Epoch.Add(now),
				},
			}
			tx.Sign(c.keys[i])
			_ = c.nodes[i].Submit(now, tx)
		})
	}
}

// SubmitWitness schedules node `witness` to attest (or dispute) that
// `subject` is physically present at the geohash cell. Witness
// statements feed the election's supervision check when
// Options.MinWitnesses is set.
func (c *Cluster) SubmitWitness(at time.Duration, witness int, subject gcrypto.Address, cell string, seen bool) {
	c.net.Schedule(at, func(now consensus.Time) {
		c.nonces[witness]++
		tx := &types.Transaction{
			Type:  types.TxWitness,
			Nonce: c.nonces[witness],
			Payload: types.EncodeWitnessStatement(&types.WitnessStatement{
				Subject: subject,
				Geohash: cell,
				Seen:    seen,
			}),
			Geo: types.GeoInfo{
				Location:  c.positions[witness],
				Timestamp: c.opts.Epoch.Add(now),
			},
		}
		tx.Sign(c.keys[witness])
		_ = c.nodes[witness].Submit(now, tx)
	})
}

// VerifyAgreement checks that all node chains agree on every height
// they share and that no node hit a commit error; it returns the
// minimum committed height.
func (c *Cluster) VerifyAgreement() (uint64, error) {
	minH := uint64(math.MaxUint64)
	ref := c.nodes[0].App.Chain()
	for i, n := range c.nodes {
		if n.CommitErr != nil {
			return 0, fmt.Errorf("node %d commit error: %w", i, n.CommitErr)
		}
		h := n.App.Chain().Height()
		if h < minH {
			minH = h
		}
		limit := h
		if rh := ref.Height(); rh < limit {
			limit = rh
		}
		for k := uint64(0); k <= limit; k++ {
			a, err := ref.BlockAt(k)
			if err != nil {
				return 0, err
			}
			b, err := n.App.Chain().BlockAt(k)
			if err != nil {
				return 0, err
			}
			if a.Hash() != b.Hash() {
				return 0, fmt.Errorf("node %d disagrees with node 0 at height %d", i, k)
			}
		}
	}
	return minH, nil
}

// MaxHeight returns the highest committed height across nodes.
func (c *Cluster) MaxHeight() uint64 {
	var max uint64
	for _, n := range c.nodes {
		if h := n.App.Chain().Height(); h > max {
			max = h
		}
	}
	return max
}
