package gpbft

import (
	"testing"
	"time"

	"gpbft/internal/gcrypto"
)

func shardOptions(regions, nodes int) Options {
	o := DefaultOptions(GPBFT, nodes)
	o.ShardRegions = regions
	o.DisableEraSwitch = true
	return o
}

func TestShardClusterSingleRegionCommits(t *testing.T) {
	s, err := NewShardCluster(shardOptions(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		s.SubmitNodeTx(time.Duration(k+1)*50*time.Millisecond, 0, k%4, []byte{byte(k)}, 1)
	}
	s.StartAnchors(3 * time.Second)
	s.RunUntilIdle(time.Minute)
	if got := s.Metrics().CommittedCount(); got != 8 {
		t.Fatalf("committed %d of 8", got)
	}
	if _, err := s.VerifyAgreement(); err != nil {
		t.Fatal(err)
	}
	// The anchor committee attested the lone region's progress.
	pt, ok := s.AnchorNode(0).App.Chain().AnchorLatest(s.Prefix(0))
	if !ok || pt.Height == 0 {
		t.Fatalf("region head never anchored: %+v, %v", pt, ok)
	}
}

func TestShardClusterParallelRegionsAndTransfer(t *testing.T) {
	s, err := NewShardCluster(shardOptions(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Regions() != 2 || s.AnchorSize() != 4 {
		t.Fatalf("regions=%d anchors=%d", s.Regions(), s.AnchorSize())
	}
	// Independent traffic in both regions.
	for k := 0; k < 6; k++ {
		at := time.Duration(k+1) * 50 * time.Millisecond
		s.SubmitNodeTx(at, 0, k%4, []byte{1, byte(k)}, 1)
		s.SubmitNodeTx(at, 1, k%4, []byte{2, byte(k)}, 1)
	}
	// A cross-region transfer: lock in region 0, credit in region 1.
	recipient := gcrypto.DeterministicKeyPair(777_000).Address()
	if _, err := s.SubmitTransfer(100*time.Millisecond, 0, 0, 1, recipient, 42); err != nil {
		t.Fatal(err)
	}
	s.StartAnchors(8 * time.Second)
	s.RunUntilIdle(time.Minute)

	if _, err := s.VerifyAgreement(); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().CommittedCount(); got < 13 {
		t.Fatalf("committed %d of 13", got)
	}
	if got := s.TransfersApplied(); got != 1 {
		t.Fatalf("transfers applied: %d", got)
	}
	// The credit landed exactly once in the destination region.
	destChain := s.Region(1).Node(0).App.Chain()
	if bal := destChain.Rewards().Balance(recipient); bal != 42 {
		t.Fatalf("recipient balance %d, want 42", bal)
	}
	// And the source region minted exactly one outbound receipt,
	// debiting the sender — value moved across regions, never minted.
	srcChain := s.Region(0).Node(0).App.Chain()
	if n := srcChain.OutboundCount(); n != 1 {
		t.Fatalf("outbound receipts: %d", n)
	}
	if n := srcChain.LockRejects(); n != 0 {
		t.Fatalf("lock rejects: %d", n)
	}
	// Without the debit the sender would sit at endowment plus fee
	// income; the locked 42 exceeds this run's total fees, so the
	// balance must have dropped below the endowment.
	sender := s.Region(0).Address(0)
	if bal := srcChain.Rewards().Balance(sender); bal >= DefaultEndorserEndowment {
		t.Fatalf("sender balance %d: lock never debited", bal)
	}
}

func TestShardClusterRegionRouting(t *testing.T) {
	s, err := NewShardCluster(shardOptions(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Regions(); i++ {
		for k := 0; k < s.Region(i).NodeCount(); k++ {
			got, ok := s.RegionFor(s.Region(i).Position(k))
			if !ok || got != i {
				t.Fatalf("node %d of region %d routed to %d (%v)", k, i, got, ok)
			}
		}
	}
	// Delegates route to their home region too.
	for j := 0; j < s.AnchorSize(); j++ {
		got, ok := s.RegionFor(s.anchorPos[j])
		if !ok || got != j%s.Regions() {
			t.Fatalf("delegate %d routed to %d (%v)", j, got, ok)
		}
	}
}
