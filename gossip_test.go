package gpbft

import (
	"math"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/types"
)

// runGossipLoad drives a committee-n cluster under round-robin load
// and returns it after quiescence with agreement verified.
func runGossipLoad(t *testing.T, n int, gossip bool, txs int) *Cluster {
	t.Helper()
	opts := DefaultOptions(GPBFT, n)
	opts.MaxEndorsers = n // let the whole population form the committee
	opts.Gossip = gossip
	opts.DisableEraSwitch = true
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	interval := 2 * time.Second / time.Duration(txs)
	for k := 0; k < txs; k++ {
		c.SubmitNodeTx(time.Duration(k)*interval, k%n, []byte("payload"), 1)
	}
	c.RunUntilIdle(10 * time.Minute)
	if _, err := c.VerifyAgreement(); err != nil {
		t.Fatal(err)
	}
	if c.MaxHeight() == 0 {
		t.Fatal("no blocks committed")
	}
	return c
}

// TestGossipClusterEquivalence: the same workload commits and agrees
// with gossip on and off, and the gossip run actually rides the relay
// (frames forwarded, duplicates suppressed, direct-broadcast vote
// traffic replaced by relay frames).
func TestGossipClusterEquivalence(t *testing.T) {
	const n, txs = 7, 60
	off := runGossipLoad(t, n, false, txs)
	on := runGossipLoad(t, n, true, txs)

	offTxs, onTxs := committedTxs(off), committedTxs(on)
	if offTxs != txs || onTxs != txs {
		t.Fatalf("committed txs off=%d on=%d, want %d each", offTxs, onTxs, txs)
	}

	var relay consensus.RelayStats
	for i := 0; i < n; i++ {
		st := on.NodeCounters(i).Relay
		relay.ForwardedFrames += st.ForwardedFrames
		relay.Suppressed += st.Suppressed
		relay.Delivered += st.Delivered
	}
	if relay.ForwardedFrames == 0 || relay.Delivered == 0 {
		t.Fatalf("gossip cluster did not use the relay: %+v", relay)
	}
	if relay.Suppressed == 0 {
		t.Fatalf("epidemic redundancy produced no dupemap hits: %+v", relay)
	}
	// Off-path: not a single relay frame, and zero relay counters.
	for _, ks := range off.Traffic().ByKind() {
		if ks.Kind == consensus.KindRelay {
			t.Fatal("gossip-off cluster emitted relay frames")
		}
	}
	for i := 0; i < n; i++ {
		if st := off.NodeCounters(i).Relay; st != (consensus.RelayStats{}) {
			t.Fatalf("gossip-off node %d has relay stats %+v", i, st)
		}
	}
	// On-path: votes travel inside relay frames, not as direct sends.
	var direct int64
	for _, ks := range on.Traffic().ByKind() {
		switch ks.Kind {
		case consensus.KindPrepare, consensus.KindCommit, consensus.KindPrePrepare:
			direct += ks.Count
		}
	}
	if direct != 0 {
		t.Fatalf("gossip cluster sent %d votes outside the relay", direct)
	}
}

// TestGossipOffIsDeterministic: two gossip-off runs of the same seed
// are byte-for-byte the same simulation — the knob's default must not
// perturb the pre-existing path (the CI quick gate then pins the
// absolute numbers against the recorded trajectory).
func TestGossipOffIsDeterministic(t *testing.T) {
	a := runGossipLoad(t, 7, false, 40)
	b := runGossipLoad(t, 7, false, 40)
	if am, bm := a.Traffic().Messages(), b.Traffic().Messages(); am != bm {
		t.Fatalf("message totals diverge: %d vs %d", am, bm)
	}
	if ab, bb := a.Traffic().Bytes(), b.Traffic().Bytes(); ab != bb {
		t.Fatalf("byte totals diverge: %d vs %d", ab, bb)
	}
	if ah, bh := a.MaxHeight(), b.MaxHeight(); ah != bh {
		t.Fatalf("heights diverge: %d vs %d", ah, bh)
	}
}

// TestGossipMessageBound is the scalability claim in miniature: with
// gossip on, per-node relay frames per committed slot stay within
// 4·f·log₂(n) — the all-to-all path would need n−1 sends per broadcast
// and there are several broadcasts per slot per node.
func TestGossipMessageBound(t *testing.T) {
	const n, txs = 22, 200
	c := runGossipLoad(t, n, true, txs)

	slots := float64(c.MaxHeight())
	var frames float64
	fanout := 0
	for i := 0; i < n; i++ {
		frames += float64(c.NodeCounters(i).Relay.ForwardedFrames)
		if f := c.Node(i).Relay.Fanout(); f > fanout {
			fanout = f
		}
	}
	perNodePerSlot := frames / float64(n) / slots
	bound := 4 * float64(fanout) * math.Log2(float64(n))
	if perNodePerSlot > bound {
		t.Fatalf("relay frames per node per slot %.1f exceeds 4·f·log2(n) = %.1f (f=%d, slots=%.0f)",
			perNodePerSlot, bound, fanout, slots)
	}
	t.Logf("n=%d: %.1f relay frames/node/slot (bound %.1f, all-to-all would be ~%d sends/broadcast)",
		n, perNodePerSlot, bound, n-1)
}

// committedTxs counts normal transactions in node 0's chain.
func committedTxs(c *Cluster) int {
	chain := c.Node(0).App.Chain()
	total := 0
	for h := uint64(1); h <= chain.Height(); h++ {
		b, err := chain.BlockAt(h)
		if err != nil {
			continue
		}
		for i := range b.Txs {
			if b.Txs[i].Type == types.TxNormal {
				total++
			}
		}
	}
	return total
}
