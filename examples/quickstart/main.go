// Quickstart: spin up a simulated G-PBFT IoT-blockchain, submit sensor
// readings from every device, and print consensus latency and network
// cost — the two quantities the paper evaluates.
package main

import (
	"fmt"
	"log"
	"time"

	"gpbft"
)

func main() {
	// 20 IoT devices; the endorser committee is capped at 8, so 12
	// devices are clients served by the committee.
	opts := gpbft.DefaultOptions(gpbft.GPBFT, 20)
	opts.MaxEndorsers = 8
	opts.DisableEraSwitch = true // static committee for the quickstart

	cluster, err := gpbft.NewCluster(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Every device submits a temperature reading, staggered 50 ms apart.
	for i := 0; i < cluster.NodeCount(); i++ {
		at := time.Duration(10+i*50) * time.Millisecond
		payload := []byte(fmt.Sprintf("temp=%.1fC device=%d", 20+float64(i)/2, i))
		cluster.SubmitNodeTx(at, i, payload, 1)
	}

	// Drive the virtual clock until everything settles.
	cluster.RunUntilIdle(60 * time.Second)

	if _, err := cluster.VerifyAgreement(); err != nil {
		log.Fatalf("chains disagree: %v", err)
	}
	m := cluster.Metrics()
	fmt.Printf("committee size      : %d of %d nodes\n", cluster.CommitteeSize(), cluster.NodeCount())
	fmt.Printf("transactions        : %d submitted, %d committed\n", m.SubmittedCount(), m.CommittedCount())
	fmt.Printf("consensus latency   : mean %v, median %v, max %v\n",
		m.MeanLatency().Round(time.Millisecond),
		m.Quantile(0.5).Round(time.Millisecond),
		m.MaxLatency().Round(time.Millisecond))
	fmt.Printf("network traffic     : %.1f KB in %d messages\n",
		cluster.Traffic().KB(), cluster.Traffic().Messages())
	fmt.Printf("chain height        : %d blocks\n", cluster.MaxHeight())

	head := cluster.Node(0).App.Chain().Head()
	fmt.Printf("head block          : height=%d era=%d txs=%d proposer=%s\n",
		head.Header.Height, head.Header.Era, len(head.Txs), head.Header.Proposer.Short())
}
