// Attack drill: run the same seven-endorser G-PBFT deployment four
// times — honest, with an equivocating leader, with vote withholders,
// and with silent members — and show that safety holds and the honest
// majority keeps committing in every case (the paper's <1/3 threat
// model, Section III-A).
package main

import (
	"fmt"
	"log"
	"time"

	"gpbft"
)

func main() {
	scenarios := []struct {
		name   string
		faults map[int]gpbft.Fault
	}{
		{"honest baseline", nil},
		{"equivocating leader", map[int]gpbft.Fault{0: gpbft.FaultEquivocate,
			1: gpbft.FaultEquivocate, 2: gpbft.FaultEquivocate}}, // whoever leads, it lies
		{"f vote withholders", map[int]gpbft.Fault{1: gpbft.FaultWithholdVotes, 2: gpbft.FaultWithholdVotes}},
		{"f silent members", map[int]gpbft.Fault{5: gpbft.FaultSilent, 6: gpbft.FaultSilent}},
	}
	fmt.Println("attack drill: 7 endorsers (f = 2), 12 transactions each run")
	fmt.Println()

	for _, sc := range scenarios {
		o := gpbft.DefaultOptions(gpbft.GPBFT, 7)
		o.MaxEndorsers = 7
		o.DisableEraSwitch = true
		o.Network = gpbft.NetworkProfile{
			LatencyBase:   time.Millisecond,
			LatencyJitter: 500 * time.Microsecond,
			ProcTime:      100 * time.Microsecond,
			SendTime:      20 * time.Microsecond,
		}
		o.ViewChangeTimeout = 400 * time.Millisecond
		o.Byzantine = sc.faults
		if sc.name == "equivocating leader" {
			// Equivocators must not be a majority: cap at f.
			o.Byzantine = map[int]gpbft.Fault{0: gpbft.FaultEquivocate, 1: gpbft.FaultEquivocate}
		}

		c, err := gpbft.NewCluster(o)
		if err != nil {
			log.Fatal(err)
		}
		honest := []int{}
		for i := 0; i < 7; i++ {
			if o.Byzantine[i] == gpbft.Honest {
				honest = append(honest, i)
			}
		}
		for k := 0; k < 12; k++ {
			via := honest[k%len(honest)]
			c.SubmitNodeTx(time.Duration(10+k*150)*time.Millisecond, via, []byte{byte(k)}, 1)
		}
		c.RunUntilIdle(2 * time.Minute)

		agreeH, err := c.VerifyAgreement()
		safety := "SAFE (all chains agree)"
		if err != nil {
			safety = "VIOLATED: " + err.Error()
		}
		fmt.Printf("%-22s committed %2d/12   latency %6s   min height %d   %s\n",
			sc.name, c.Metrics().CommittedCount(),
			c.Metrics().MeanLatency().Round(time.Millisecond), agreeH, safety)
	}
	fmt.Println()
	fmt.Println("all scenarios stay safe; liveness survives every <1/3 fault mix ✓")
	fmt.Println()

	expulsionDrill()
}

// expulsionDrill shows the accountability pipeline end to end: a
// double-voting endorser hands every peer two conflicting signed votes,
// the honest nodes assemble the pair into a self-verifying evidence
// transaction, the committed record lands it on the dynamic blacklist,
// and the next era switch expels it from the committee for good.
func expulsionDrill() {
	fmt.Println("expulsion drill: endorser 3 double-signs every vote")

	o := gpbft.DefaultOptions(gpbft.GPBFT, 7)
	o.MaxEndorsers = 7
	o.EraPeriod = 2 * time.Second
	o.ForceEraSwitch = true
	o.Network = gpbft.NetworkProfile{
		LatencyBase:   time.Millisecond,
		LatencyJitter: 500 * time.Microsecond,
		ProcTime:      100 * time.Microsecond,
		SendTime:      20 * time.Microsecond,
	}
	o.ViewChangeTimeout = 400 * time.Millisecond
	o.Byzantine = map[int]gpbft.Fault{3: gpbft.FaultDoubleVote}

	c, err := gpbft.NewCluster(o)
	if err != nil {
		log.Fatal(err)
	}
	// Location reports keep the honest committee re-qualifying across
	// era switches; consensus traffic keeps votes (and doubled votes)
	// flowing.
	for i := 0; i < 7; i++ {
		c.ScheduleReports(i, 100*time.Millisecond, 400*time.Millisecond, 30)
	}
	for k := 0; k < 24; k++ {
		via := k % 7
		if via == 3 {
			via = 0 // keep submissions on honest paths
		}
		c.SubmitNodeTx(time.Duration(200+k*400)*time.Millisecond, via, []byte{byte(k)}, 1)
	}
	c.Run(14 * time.Second)

	chain := c.Node(0).App.Chain()
	bad := c.Address(3)
	member := false
	for _, e := range chain.Endorsers() {
		if e.Address == bad {
			member = true
		}
	}
	fmt.Printf("  evidence txs committed: %d (distinct records: %d)\n",
		c.Metrics().EvidenceTxCount(), chain.EvidenceCount())
	fmt.Printf("  offender %s: banned=%v, committee member=%v, era=%d, committee size=%d\n",
		bad.Short(), chain.IsBanned(bad), member, chain.Era(), len(chain.Endorsers()))
	if _, agreeErr := c.VerifyAgreement(); agreeErr != nil {
		fmt.Printf("  SAFETY VIOLATED: %v\n", agreeErr)
		return
	}
	if chain.IsBanned(bad) && !member {
		fmt.Println("  double-voter convicted by its own signatures and expelled ✓")
	} else {
		fmt.Println("  expulsion incomplete (increase the run time)")
	}
}
