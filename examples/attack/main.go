// Attack drill: run the same seven-endorser G-PBFT deployment four
// times — honest, with an equivocating leader, with vote withholders,
// and with silent members — and show that safety holds and the honest
// majority keeps committing in every case (the paper's <1/3 threat
// model, Section III-A).
package main

import (
	"fmt"
	"log"
	"time"

	"gpbft"
)

func main() {
	scenarios := []struct {
		name   string
		faults map[int]gpbft.Fault
	}{
		{"honest baseline", nil},
		{"equivocating leader", map[int]gpbft.Fault{0: gpbft.FaultEquivocate,
			1: gpbft.FaultEquivocate, 2: gpbft.FaultEquivocate}}, // whoever leads, it lies
		{"f vote withholders", map[int]gpbft.Fault{1: gpbft.FaultWithholdVotes, 2: gpbft.FaultWithholdVotes}},
		{"f silent members", map[int]gpbft.Fault{5: gpbft.FaultSilent, 6: gpbft.FaultSilent}},
	}
	fmt.Println("attack drill: 7 endorsers (f = 2), 12 transactions each run")
	fmt.Println()

	for _, sc := range scenarios {
		o := gpbft.DefaultOptions(gpbft.GPBFT, 7)
		o.MaxEndorsers = 7
		o.DisableEraSwitch = true
		o.Network = gpbft.NetworkProfile{
			LatencyBase:   time.Millisecond,
			LatencyJitter: 500 * time.Microsecond,
			ProcTime:      100 * time.Microsecond,
			SendTime:      20 * time.Microsecond,
		}
		o.ViewChangeTimeout = 400 * time.Millisecond
		o.Byzantine = sc.faults
		if sc.name == "equivocating leader" {
			// Equivocators must not be a majority: cap at f.
			o.Byzantine = map[int]gpbft.Fault{0: gpbft.FaultEquivocate, 1: gpbft.FaultEquivocate}
		}

		c, err := gpbft.NewCluster(o)
		if err != nil {
			log.Fatal(err)
		}
		honest := []int{}
		for i := 0; i < 7; i++ {
			if o.Byzantine[i] == gpbft.Honest {
				honest = append(honest, i)
			}
		}
		for k := 0; k < 12; k++ {
			via := honest[k%len(honest)]
			c.SubmitNodeTx(time.Duration(10+k*150)*time.Millisecond, via, []byte{byte(k)}, 1)
		}
		c.RunUntilIdle(2 * time.Minute)

		agreeH, err := c.VerifyAgreement()
		safety := "SAFE (all chains agree)"
		if err != nil {
			safety = "VIOLATED: " + err.Error()
		}
		fmt.Printf("%-22s committed %2d/12   latency %6s   min height %d   %s\n",
			sc.name, c.Metrics().CommittedCount(),
			c.Metrics().MeanLatency().Round(time.Millisecond), agreeH, safety)
	}
	fmt.Println()
	fmt.Println("all scenarios stay safe; liveness survives every <1/3 fault mix ✓")
}
