// Parking lot: the paper's motivating scenario — "a payment machine in
// a parking lot" as a fixed, loyal endorser. Eight payment machines
// form the committee; forty cars (mobile devices) drive in, pay, and
// leave. The example shows the incentive mechanism at work: machines
// earn 70/30 fee splits for producing and endorsing blocks, and the
// geographic-timer proposer bias favours the longest-resident machine.
package main

import (
	"fmt"
	"log"
	"time"

	"gpbft"
	"gpbft/internal/workload"
)

func main() {
	const machines = 8
	const cars = 40

	opts := gpbft.DefaultOptions(gpbft.GPBFT, machines)
	opts.MaxEndorsers = machines
	// Era switches every 3 s rotate block production: a machine's
	// geographic timer resets when it produces a block, so the
	// longest-resident machine leads the next era — the incentive's
	// rotation in action.
	opts.ForceEraSwitch = true
	opts.EraPeriod = 3 * time.Second
	cluster, err := gpbft.NewCluster(opts)
	if err != nil {
		log.Fatal(err)
	}

	// The machines report their (fixed) positions periodically, so the
	// election table accrues their geographic timers.
	for i := 0; i < machines; i++ {
		cluster.ScheduleReports(i, 100*time.Millisecond, 500*time.Millisecond, 40)
	}

	// Cars are mobile IoT devices; each pays a parking fee through the
	// machine nearest to its entry point (round-robin here).
	fleet := workload.NewPopulation(workload.HongKongTestbed(), workload.Spec{
		Mobile: cars, SeedBase: 20000, Speed: 8, // ~30 km/h
	}, 7)
	for i, car := range fleet.OfKind(workload.Mobile) {
		at := time.Duration(200+i*400) * time.Millisecond
		fee := uint64(100 + 10*(i%4)) // parking fees 100..130
		payment := car.DataTx(opts.Epoch.Add(at), []byte(fmt.Sprintf("parking-fee car=%s", car.Name)), fee)
		cluster.SubmitTx(at, i%machines, payment)
		car.Advance(time.Second)
	}

	cluster.RunUntilIdle(2 * time.Minute)
	if _, err := cluster.VerifyAgreement(); err != nil {
		log.Fatalf("chains disagree: %v", err)
	}

	m := cluster.Metrics()
	fmt.Printf("payments committed : %d/%d, mean latency %v\n",
		m.CommittedCount(), m.SubmittedCount(), m.MeanLatency().Round(time.Millisecond))

	// Incentive accounting: 70% of each block's fees to its producer,
	// 30% shared by the endorsing machines.
	chain := cluster.Node(0).App.Chain()
	rewards := chain.Rewards()
	fmt.Println("\nmachine earnings (70/30 fee split):")
	var total uint64
	for i := 0; i < machines; i++ {
		addr := cluster.Address(i)
		bal := rewards.Balance(addr)
		total += bal
		fmt.Printf("  machine %d (%s): %3d fee units, %d blocks produced, geo timer %v\n",
			i, addr.Short(), bal, rewards.BlocksProduced(addr),
			chain.Table().Timer(addr.String()).Round(time.Second))
	}
	fmt.Printf("  total distributed: %d (no fees lost)\n", total)
}
