// Smart city: the era-switch mechanism under churn. A car-monitoring
// system runs on smart street lamps (fixed endorsers). Mid-run the
// city installs two new lamps — they report their positions, pass the
// 72-hour-scaled qualification window, and are elected into the
// committee at an era switch. Later one lamp is knocked over by a
// truck (it starts moving and then goes silent): geographic
// re-authentication expels it at the next switch.
package main

import (
	"fmt"
	"log"
	"time"

	"gpbft"
)

func main() {
	const (
		lamps     = 7 // genesis committee: lamps 0..6; lamp 6 will fail
		doomed    = 6 // the lamp a truck knocks over at t≈6s
		totalNode = 9 // plus lamps 7 and 8, installed mid-run
	)

	opts := gpbft.DefaultOptions(gpbft.GPBFT, totalNode)
	opts.GenesisEndorsers = lamps
	opts.MaxEndorsers = 12
	opts.EraPeriod = 2 * time.Second
	opts.SwitchPeriod = 250 * time.Millisecond
	opts.QualificationWindow = 3 * time.Second // scaled-down 72 h
	opts.MinReports = 3
	opts.ReportInterval = 500 * time.Millisecond

	cluster, err := gpbft.NewCluster(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Genesis lamps report faithfully... except the doomed one, which
	// stops reporting for good after ~6 s.
	for i := 0; i < lamps; i++ {
		count := 60
		if i == doomed {
			count = 12 // reports until ~6s, then silence
		}
		cluster.ScheduleReports(i, 100*time.Millisecond, 500*time.Millisecond, count)
	}
	// New lamps 7 and 8 are installed at t=2s and report from then on.
	for i := lamps; i < totalNode; i++ {
		cluster.ScheduleReports(i, 2*time.Second, 500*time.Millisecond, 56)
	}
	// Car-monitoring data flows the whole time, via the healthy lamps.
	for k := 0; k < 60; k++ {
		at := time.Duration(300+k*400) * time.Millisecond
		cluster.SubmitNodeTx(at, k%doomed, []byte(fmt.Sprintf("plate-scan #%d", k)), 1)
	}

	// Observe the committee at one-second checkpoints.
	chain := cluster.Node(0).App.Chain()
	for sec := 1; sec <= 30; sec++ {
		cluster.Run(time.Duration(sec) * time.Second)
		if sec%3 == 0 {
			fmt.Printf("t=%2ds era=%d committee=%d height=%d\n",
				sec, chain.Era(), len(chain.Endorsers()), chain.Height())
		}
	}
	cluster.RunUntilIdle(2 * time.Minute)

	fmt.Println()
	if cluster.CoreEngine(7).IsEndorser() && cluster.CoreEngine(8).IsEndorser() {
		fmt.Println("✓ new lamps 7 and 8 were elected into the committee")
	} else {
		fmt.Println("✗ new lamps were NOT elected")
	}
	if !chain.IsEndorser(cluster.Address(doomed)) {
		fmt.Println("✓ the knocked-over lamp was expelled by geographic re-authentication")
	} else {
		fmt.Println("✗ the failed lamp is still in the committee")
	}
	fmt.Printf("final era=%d, committee=%d, chain height=%d, era switches observed=%d\n",
		chain.Era(), len(chain.Endorsers()), chain.Height(), cluster.Metrics().EraSwitches())
	if _, err := cluster.VerifyAgreement(); err != nil {
		log.Fatalf("agreement: %v", err)
	}
	fmt.Println("all committee chains agree ✓")
}
