// Sybil attack: an adversary mints five identities that all claim the
// same CSC cell as an honest device, plus a "liar" that physically
// roams while reporting a fixed fake position. G-PBFT's geographic
// authentication (paper Section IV-A1) rejects them all, while an
// honest resident candidate is admitted.
package main

import (
	"fmt"
	"log"
	"time"

	"gpbft"
	"gpbft/internal/core"
	"gpbft/internal/types"
	"gpbft/internal/workload"
)

func main() {
	opts := gpbft.DefaultOptions(gpbft.GPBFT, 5)
	opts.GenesisEndorsers = 4 // node 4 is the honest candidate
	opts.MaxEndorsers = 12
	opts.EraPeriod = 2 * time.Second
	opts.QualificationWindow = 3 * time.Second
	opts.MinReports = 3
	cluster, err := gpbft.NewCluster(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Honest endorsers and the honest candidate report periodically.
	for i := 0; i < 5; i++ {
		cluster.ScheduleReports(i, 100*time.Millisecond, 500*time.Millisecond, 40)
	}

	// The attack population: 5 Sybil clones of the honest candidate's
	// cell and one liar.
	attack := workload.NewPopulation(workload.HongKongTestbed(), workload.Spec{
		Sybil: 5, Liar: 1, SeedBase: 30000, Speed: 5,
	}, 99)
	// The Sybils claim the HONEST CANDIDATE's position: all clones plus
	// the victim now contest one cell.
	victim := cluster.Position(4)
	for _, d := range attack.Devices {
		d.Home = victim
	}
	epoch := opts.Epoch
	for _, d := range attack.Devices {
		d := d
		for k := 0; k < 40; k++ {
			at := time.Duration(100+k*500) * time.Millisecond
			report := d.LocationReport(epoch.Add(at))
			cluster.SubmitTx(at, 0, report) // submitted through endorser 0
			d.Advance(500 * time.Millisecond)
		}
	}

	cluster.RunUntilIdle(time.Minute)

	chain := cluster.Node(0).App.Chain()
	// Evaluate the election as of the last report, while the location
	// streams were still live (the same instant an era tick would see).
	asOf := chain.Head().Header.Timestamp
	if e, ok := chain.Table().LatestEntry(cluster.Address(4).String()); ok {
		asOf = e.Timestamp
	}
	res := core.RunElection(chain, asOf)

	fmt.Printf("era=%d committee=%d devices-known=%d\n",
		chain.Era(), len(chain.Endorsers()), chain.Table().Len())
	fmt.Println("\nelection verdicts:")
	admitted := map[string]bool{}
	for _, e := range chain.Endorsers() {
		admitted[e.Address.String()] = true
	}
	for _, d := range attack.Devices {
		addr := d.Address()
		if admitted[addr.String()] || containsQualified(res.Qualified, addr.String()) {
			fmt.Printf("  ✗ %-8s %s ADMITTED (attack succeeded!)\n", d.Kind, addr.Short())
			continue
		}
		reason := res.Rejected[addr]
		if reason == "" {
			reason = "not qualified"
		}
		fmt.Printf("  ✓ %-8s %s rejected: %s\n", d.Kind, addr.Short(), reason)
	}
	if chain.IsEndorser(cluster.Address(4)) {
		fmt.Println("\nnote: the honest candidate sharing the contested cell is also held")
		fmt.Println("out — the same-cell rule rejects every identity in a disputed cell.")
	} else {
		fmt.Printf("\nhonest candidate %s: ", cluster.Address(4).Short())
		if r := res.Rejected[cluster.Address(4)]; r != "" {
			fmt.Printf("held out too (%s) — the cost of a contested cell\n", r)
		} else {
			fmt.Println("pending qualification")
		}
	}
	fmt.Printf("\ncommittee remains %d honest genesis endorsers; Sybil flood absorbed ✓\n",
		len(chain.Endorsers()))
}

func containsQualified(qs []types.EndorserInfo, addr string) bool {
	for _, q := range qs {
		if q.Address.String() == addr {
			return true
		}
	}
	return false
}
