// Command gpbft-client submits transactions to a running gpbft-node
// over TCP: it frames signed Request envelopes exactly as a committee
// peer would, acting as an IoT device at a fixed location.
//
//	gpbft-client -to 127.0.0.1:9000 -count 10 -interval 200ms
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/pbft"
	"gpbft/internal/transport"
	"gpbft/internal/types"
)

func main() {
	var (
		to       = flag.String("to", "127.0.0.1:9000", "node endpoint")
		count    = flag.Int("count", 1, "number of transactions")
		interval = flag.Duration("interval", 100*time.Millisecond, "gap between transactions")
		fee      = flag.Uint64("fee", 1, "fee per transaction")
		keyIdx   = flag.Int("key", 1000, "deterministic key index of this device")
		lng      = flag.Float64("lng", 114.1795, "device longitude")
		lat      = flag.Float64("lat", 22.3050, "device latitude")
		payload  = flag.String("payload", "sensor-reading", "transaction payload")
		kind     = flag.String("kind", "data", "data or report")
	)
	flag.Parse()

	kp := gcrypto.DeterministicKeyPair(*keyIdx)
	conn, err := net.DialTimeout("tcp", *to, 5*time.Second)
	if err != nil {
		fatalf("dial %s: %v", *to, err)
	}
	defer conn.Close()

	for i := 0; i < *count; i++ {
		tx := &types.Transaction{
			Nonce: uint64(time.Now().UnixNano()),
			Fee:   *fee,
			Geo: types.GeoInfo{
				Location:  geo.Point{Lng: *lng, Lat: *lat},
				Timestamp: time.Now().UTC(),
			},
		}
		switch *kind {
		case "data":
			tx.Type = types.TxNormal
			tx.Payload = []byte(fmt.Sprintf("%s #%d", *payload, i))
		case "report":
			tx.Type = types.TxLocationReport
		default:
			fatalf("unknown -kind %q", *kind)
		}
		tx.Sign(kp)
		env := consensus.Seal(kp, &pbft.Request{Tx: *tx})
		if err := transport.WriteFrame(conn, env); err != nil {
			fatalf("send: %v", err)
		}
		fmt.Printf("sent %s tx %s from %s\n", tx.Type, tx.ID().Short(), kp.Address().Short())
		if i < *count-1 {
			time.Sleep(*interval)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gpbft-client: "+format+"\n", args...)
	os.Exit(1)
}
