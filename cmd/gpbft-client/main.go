// Command gpbft-client submits transactions to a running gpbft-node
// over TCP: it frames signed Request envelopes exactly as a committee
// peer would, acting as an IoT device at a fixed location.
//
// The client listens for signed TxRejected replies on the same
// connection: an admission-control rejection (rate limit, load shed,
// pool full) is retried with jittered capped-exponential backoff,
// floored by the node's retry-after hint.
//
//	gpbft-client -to 127.0.0.1:9000 -count 10 -interval 200ms -retries 6
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"gpbft/internal/backoff"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/pbft"
	"gpbft/internal/transport"
	"gpbft/internal/types"
)

func main() {
	var (
		to       = flag.String("to", "127.0.0.1:9000", "node endpoint")
		count    = flag.Int("count", 1, "number of transactions")
		interval = flag.Duration("interval", 100*time.Millisecond, "gap between transactions")
		fee      = flag.Uint64("fee", 1, "fee per transaction")
		keyIdx   = flag.Int("key", 1000, "deterministic key index of this device")
		lng      = flag.Float64("lng", 114.1795, "device longitude")
		lat      = flag.Float64("lat", 22.3050, "device latitude")
		payload  = flag.String("payload", "sensor-reading", "transaction payload")
		kind     = flag.String("kind", "data", "data or report")
		retries  = flag.Int("retries", 6, "max resubmissions after a rejection (0 disables the reply listener)")
		replyWin = flag.Duration("reply-window", 150*time.Millisecond, "how long to listen for a rejection before assuming acceptance")
	)
	flag.Parse()

	kp := gcrypto.DeterministicKeyPair(*keyIdx)
	cl, err := newClient(*to, kp, *retries, *replyWin)
	if err != nil {
		fatalf("%v", err)
	}
	defer cl.close()

	for i := 0; i < *count; i++ {
		tx := &types.Transaction{
			Nonce: uint64(time.Now().UnixNano()),
			Fee:   *fee,
			Geo: types.GeoInfo{
				Location:  geo.Point{Lng: *lng, Lat: *lat},
				Timestamp: time.Now().UTC(),
			},
		}
		switch *kind {
		case "data":
			tx.Type = types.TxNormal
			tx.Payload = []byte(fmt.Sprintf("%s #%d", *payload, i))
		case "report":
			tx.Type = types.TxLocationReport
		default:
			fatalf("unknown -kind %q", *kind)
		}
		tx.Sign(kp)
		if err := cl.submit(tx); err != nil {
			fatalf("submit: %v", err)
		}
		if i < *count-1 {
			time.Sleep(*interval)
		}
	}
}

// client is one connection to a node plus the rejection-reply reader.
type client struct {
	endpoint string
	kp       *gcrypto.KeyPair
	nodeAddr gcrypto.Address // learned from the first verified reply
	retries  int
	replyWin time.Duration
	policy   backoff.Policy
	rnd      func() float64

	conn    net.Conn
	rejects chan pbft.TxRejected
}

func newClient(endpoint string, kp *gcrypto.KeyPair, retries int, replyWin time.Duration) (*client, error) {
	c := &client{
		endpoint: endpoint,
		kp:       kp,
		retries:  retries,
		replyWin: replyWin,
		policy:   backoff.Default(),
		rnd:      rand.New(rand.NewSource(time.Now().UnixNano())).Float64,
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials the node (with backoff across attempts) and starts the
// reply reader.
func (c *client) connect() error {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.policy.Delay(attempt-1, c.rnd))
		}
		conn, err := net.DialTimeout("tcp", c.endpoint, 5*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		c.conn = conn
		c.rejects = make(chan pbft.TxRejected, 16)
		if c.retries > 0 {
			go c.readReplies(conn, c.rejects)
		}
		return nil
	}
	return fmt.Errorf("dial %s: %v", c.endpoint, lastErr)
}

// readReplies pumps signed TxRejected frames into the reject channel;
// unverifiable or unexpected frames are ignored (an attacker cannot
// forge a back-off signal).
func (c *client) readReplies(conn net.Conn, out chan<- pbft.TxRejected) {
	for {
		env, err := transport.ReadFrame(conn)
		if err != nil {
			return
		}
		var rej pbft.TxRejected
		if consensus.Open(env, consensus.KindTxReject, &rej) != nil {
			continue
		}
		if !c.nodeAddr.IsZero() && env.From != c.nodeAddr {
			continue
		}
		c.nodeAddr = env.From
		select {
		case out <- rej:
		default:
		}
	}
}

// submit sends one transaction, listening briefly for a rejection; a
// rejected transaction is resubmitted with jittered capped-exponential
// backoff floored by the node's retry-after hint, up to -retries times.
func (c *client) submit(tx *types.Transaction) error {
	id := tx.ID()
	for attempt := 0; ; attempt++ {
		env := consensus.Seal(c.kp, &pbft.Request{Tx: *tx})
		if err := transport.WriteFrame(c.conn, env); err != nil {
			// The connection died; reconnect once per attempt.
			c.conn.Close()
			if cerr := c.connect(); cerr != nil {
				return cerr
			}
			if err := transport.WriteFrame(c.conn, env); err != nil {
				return err
			}
		}
		if c.retries == 0 {
			fmt.Printf("sent %s tx %s from %s\n", tx.Type, id.Short(), c.kp.Address().Short())
			return nil
		}
		rej, rejected := c.awaitReject(id)
		if !rejected {
			fmt.Printf("sent %s tx %s from %s (attempt %d)\n", tx.Type, id.Short(), c.kp.Address().Short(), attempt+1)
			return nil
		}
		if attempt >= c.retries {
			return fmt.Errorf("tx %s rejected %d times, last reason %s", id.Short(), attempt+1, rej.Reason)
		}
		delay := c.policy.DelayAfter(attempt, rej.RetryAfter, c.rnd)
		fmt.Printf("tx %s rejected (%s), retrying in %s\n", id.Short(), rej.Reason, delay.Round(time.Millisecond))
		time.Sleep(delay)
	}
}

// awaitReject waits up to the reply window for a rejection of tx id.
// No news is good news: admission replies arrive within one RTT, so a
// silent window means the transaction was accepted.
func (c *client) awaitReject(id gcrypto.Hash) (pbft.TxRejected, bool) {
	deadline := time.After(c.replyWin)
	for {
		select {
		case rej := <-c.rejects:
			if rej.TxID == id {
				return rej, true
			}
		case <-deadline:
			return pbft.TxRejected{}, false
		}
	}
}

func (c *client) close() {
	if c.conn != nil {
		c.conn.Close()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gpbft-client: "+format+"\n", args...)
	os.Exit(1)
}
