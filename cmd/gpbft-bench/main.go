// Command gpbft-bench drives a G-PBFT cluster at a fixed offered load
// and records committed TPS and commit latency into the repo's
// benchmark trajectory files (BENCH_tps.json, BENCH_latency.json).
//
// Default run (no flags): the full suite — a deterministic simnet run
// at committee 22 plus wall-clock TCP runs with the parallel and
// serial verification paths — merged into the trajectory files.
//
//	gpbft-bench                         # full suite, update BENCH_*.json
//	gpbft-bench -quick                  # small deterministic sim run only
//	gpbft-bench -quick -check           # compare against baseline, no writes
//	gpbft-bench -mode tcp -committee 22 # one explicit run
//
// The CI bench gate runs `gpbft-bench -quick -check -out <dir>`: fresh
// results are written under -out and compared against the checked-in
// baseline with -tolerance; any regression exits non-zero.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"gpbft/internal/loadgen"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "small deterministic sim run (the CI gate workload)")
		attack    = flag.Bool("attack", false, "deterministic sim run under attacker flood with the overload armor on")
		attackers = flag.Int("attackers", 3, "flooder identities for -attack")
		rateLimit = flag.Float64("rate-limit", 0, "per-identity admission rate in tx/s (0 = armor off; -attack defaults to honest per-node share x2)")
		mode      = flag.String("mode", "", "run one explicit mode: sim | tcp (default: full suite)")
		committee = flag.Int("committee", 22, "endorser committee size")
		rate      = flag.Int("rate", 200, "offered load, transactions per second")
		duration  = flag.Duration("duration", 5*time.Second, "load window")
		batch     = flag.Int("batch", 32, "max transactions per block")
		shards    = flag.Int("shards", 0, "mempool shard count (0 = default)")
		poolCap   = flag.Int("pool-cap", 0, "mempool capacity (0 = default)")
		workers   = flag.Int("workers", 0, "verification pool width (0 = all cores)")
		inflight  = flag.Int("max-inflight", 0, "consensus pipelining depth (0 = engine default, 1 = one-slot ablation)")
		serial    = flag.Bool("serial", false, "serial ablation: seed-equivalent verification path")
		gossip    = flag.Bool("gossip", false, "epidemic relay dissemination instead of direct all-to-all broadcast")
		fanout    = flag.Int("fanout", 0, "relay fanout for -gossip (0 = auto, ~log2 n)")
		sweep     = flag.Bool("sweep", false, "gossip committee-size sweep (n = 22, 46, 64, 100) with scalability gates")
		shardRun  = flag.Bool("shard", false, "geo-shard scaling suite (1, 2, 4 regions at the same total offered load) with speedup gates")
		seed      = flag.Int64("seed", 1, "simulation seed")
		name      = flag.String("name", "", "entry name (default: derived from mode/committee/path)")
		outDir    = flag.String("out", ".", "directory for fresh BENCH_*.json")
		baseDir   = flag.String("baseline", ".", "directory holding checked-in BENCH_*.json")
		check     = flag.Bool("check", false, "compare fresh results against the baseline; exit 1 on regression")
		tolerance = flag.Float64("tolerance", 0.2, "relative regression tolerance for -check")
	)
	flag.Parse()

	var runs []plannedRun
	switch {
	case *sweep:
		runs = planSweepRuns(*fanout, *seed)
	case *shardRun:
		runs = planShardRuns(*seed)
	default:
		runs = planRuns(*quick, *mode, *committee, *rate, *duration, *batch, *shards, *poolCap,
			*workers, *inflight, *serial, *gossip, *fanout, *seed, *name)
	}
	if *attack {
		runs = append(runs, planAttackRun(*attackers, *rateLimit, *seed, *name))
	}

	var results []loadgen.Result
	for _, r := range runs {
		fmt.Fprintf(os.Stderr, "running %s (%s, committee %d, %d tx/s for %s)...\n",
			r.name, r.cfg.Mode, r.cfg.Committee, r.cfg.Rate, r.cfg.Duration)
		res, err := loadgen.Run(r.name, r.cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpbft-bench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(res)
		results = append(results, res)
	}

	if *sweep {
		if err := checkSweepGates(results); err != nil {
			fmt.Fprintf(os.Stderr, "gpbft-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if *shardRun {
		if err := checkShardGates(results); err != nil {
			fmt.Fprintf(os.Stderr, "gpbft-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if err := writeAndCheck(results, *outDir, *baseDir, *check, *tolerance); err != nil {
		fmt.Fprintf(os.Stderr, "gpbft-bench: %v\n", err)
		os.Exit(1)
	}
}

type plannedRun struct {
	name string
	cfg  loadgen.Config
}

// planRuns expands the flag set into the run list.
func planRuns(quick bool, mode string, committee, rate int, duration time.Duration,
	batch, shards, poolCap, workers, inflight int, serial, gossip bool, fanout int,
	seed int64, name string) []plannedRun {
	base := loadgen.Config{
		Committee:     committee,
		Rate:          rate,
		Duration:      duration,
		BatchSize:     batch,
		MempoolShards: shards,
		MempoolCap:    poolCap,
		Workers:       workers,
		MaxInFlight:   inflight,
		Serial:        serial,
		Gossip:        gossip,
		GossipFanout:  fanout,
		Seed:          seed,
	}
	if quick {
		// The CI gate: small, fast, and — because it runs on the
		// virtual-time simulator — deterministic for a given seed.
		cfg := base
		cfg.Mode = "sim"
		cfg.Committee = 7
		cfg.Rate = 400
		cfg.Duration = 2 * time.Second
		n := name
		if n == "" {
			n = "sim-quick-c7"
			if gossip {
				// Never clobber the pinned direct-path gate entry.
				n += "-gossip"
			}
		}
		return []plannedRun{{name: n, cfg: cfg}}
	}
	if mode != "" {
		cfg := base
		cfg.Mode = mode
		n := name
		if n == "" {
			n = fmt.Sprintf("%s-c%d", mode, committee)
			if serial {
				n += "-serial"
			}
			if inflight == 1 {
				n += "-inflight1"
			}
			if gossip {
				n += "-gossip"
			}
		}
		return []plannedRun{{name: n, cfg: cfg}}
	}
	// Full suite: deterministic sim trajectory plus the wall-clock
	// serial-vs-parallel A/B at the paper's committee scale, and the
	// pipelining ablation (parallel verification but one slot in flight)
	// that isolates the scheduler's contribution from the crypto path's.
	sim := base
	sim.Mode = "sim"
	par := base
	par.Mode = "tcp"
	par.Serial = false
	ser := base
	ser.Mode = "tcp"
	ser.Serial = true
	one := base
	one.Mode = "tcp"
	one.Serial = false
	one.MaxInFlight = 1
	return []plannedRun{
		{name: fmt.Sprintf("sim-c%d", committee), cfg: sim},
		{name: fmt.Sprintf("tcp-c%d-parallel", committee), cfg: par},
		{name: fmt.Sprintf("tcp-c%d-serial", committee), cfg: ser},
		{name: fmt.Sprintf("tcp-c%d-inflight1", committee), cfg: one},
	}
}

// sweepCommittees are the gossip sweep sizes: the paper's deployment
// scale (22), roughly double it, a size the direct all-to-all path was
// never asked to carry, and the n=100 point that pins the epidemic
// message-complexity bound well past the paper's scale.
var sweepCommittees = []int{22, 46, 64, 100}

// shardRegionCounts are the geo-shard suite sizes: the anchored
// single-region baseline and the 2x / 4x parallel deployments, all at
// the same total offered load.
var shardRegionCounts = []int{1, 2, 4}

// planShardRuns is the geo-shard scaling suite: the same total offered
// load (far beyond one committee's saturation point) spread over 1, 2
// and 4 region committees of 7 nodes each, every deployment anchored
// by the top-level checkpoint committee. The multi-region runs also
// push cross-region transfers through the receipt path so the entries
// exercise — and the gate asserts — the exactly-once guarantee.
func planShardRuns(seed int64) []plannedRun {
	var runs []plannedRun
	for _, r := range shardRegionCounts {
		cfg := loadgen.Config{
			Mode:      "sim",
			Committee: 7,
			Rate:      4000,
			Duration:  2 * time.Second,
			Seed:      seed,
			Regions:   r,
		}
		if r > 1 {
			cfg.Transfers = 8 * r
		}
		runs = append(runs, plannedRun{name: fmt.Sprintf("sim-shard-r%d", r), cfg: cfg})
	}
	return runs
}

// checkShardGates enforces the hierarchy's scaling claims:
//
//  1. parallelism pays — 4 regions commit at least 3x the aggregate
//     TPS of the anchored single-region baseline at the same total
//     offered load;
//  2. the anchor layer stays off the hot path — the 4-region honest
//     commit p50 stays within 1.5x of the baseline's;
//  3. cross-region transfers are exactly-once — every submitted
//     transfer was applied at its destination (the ledger itself
//     refuses double-credits, so applied == submitted is the whole
//     invariant).
func checkShardGates(results []loadgen.Result) error {
	byRegions := make(map[int]loadgen.Result)
	for _, r := range results {
		if r.Regions > 0 {
			byRegions[r.Regions] = r
		}
	}
	base, okB := byRegions[1]
	big, okG := byRegions[shardRegionCounts[len(shardRegionCounts)-1]]
	if !okB || !okG {
		return fmt.Errorf("shard gate: missing shard results (have %d)", len(byRegions))
	}
	if big.TPS < 3*base.TPS {
		return fmt.Errorf("shard gate: r%d aggregate TPS %.1f below 3x single-region baseline %.1f",
			big.Regions, big.TPS, base.TPS)
	}
	if big.P50Ms > 1.5*base.P50Ms {
		return fmt.Errorf("shard gate: r%d p50 %.1fms exceeds 1.5x baseline %.1fms",
			big.Regions, big.P50Ms, base.P50Ms)
	}
	for _, r := range results {
		if r.Regions > 1 && r.TransfersApplied != r.Transfers {
			return fmt.Errorf("shard gate: r%d applied %d of %d cross-region transfers",
				r.Regions, r.TransfersApplied, r.Transfers)
		}
	}
	fmt.Fprintf(os.Stderr, "shard gates passed: r%d/r1 TPS ratio %.2f, p50 %.0fms vs %.0fms, transfers exactly-once\n",
		big.Regions, big.TPS/base.TPS, big.P50Ms, base.P50Ms)
	return nil
}

// planSweepRuns is the gossip committee-size sweep: the same offered
// load over growing committees on the deterministic simulator, with
// the epidemic relay on, plus direct-broadcast contrast runs at the
// larger sizes. The offered rate sits below every committee's
// saturation point — the sweep asks whether an IoT-scale service
// level survives committee growth, not how raw capacity falls (per-
// slot vote volume is O(n) either way, so capacity at saturation
// inherently drops as the committee grows). The recorded entries pin
// the scalability trajectory; checkSweepGates asserts its shape.
func planSweepRuns(fanout int, seed int64) []plannedRun {
	base := loadgen.Config{
		Mode:     "sim",
		Rate:     40,
		Duration: 5 * time.Second,
		Seed:     seed,
	}
	var runs []plannedRun
	for _, n := range sweepCommittees {
		cfg := base
		cfg.Committee = n
		cfg.Gossip = true
		cfg.GossipFanout = fanout
		runs = append(runs, plannedRun{name: fmt.Sprintf("sim-gossip-c%d", n), cfg: cfg})
	}
	// Direct-broadcast contrast at the sizes where n² dissemination
	// hurts: same load, relay off. These pin the latency gap the relay
	// buys (the commit path waits on the slowest of 2f+1 votes, and
	// direct broadcast queues n² frames in front of them).
	for _, n := range sweepCommittees[1:] {
		cfg := base
		cfg.Committee = n
		runs = append(runs, plannedRun{name: fmt.Sprintf("sim-direct-c%d", n), cfg: cfg})
	}
	return runs
}

// checkSweepGates enforces the sweep's scalability claims:
//
//  1. throughput holds up as the committee doubles — committed TPS at
//     n=46 stays within 0.8x of the n=22 figure;
//  2. message complexity stays epidemic, not quadratic — per-node relay
//     frames per committed slot at the largest committee stay within
//     4·f·log₂(n);
//  3. the relay earns its keep at the largest committee — gossip commit
//     p50 beats the direct-broadcast p50 at the same size and load.
//     (TPS is not gated gossip-vs-direct: below saturation both commit
//     everything offered and the figures land within noise of each
//     other; latency is where the n² queueing shows.)
func checkSweepGates(results []loadgen.Result) error {
	byCommittee := make(map[int]loadgen.Result)
	direct := make(map[int]loadgen.Result)
	for _, r := range results {
		if r.Gossip {
			byCommittee[r.Committee] = r
		} else {
			direct[r.Committee] = r
		}
	}
	small, okS := byCommittee[22]
	mid, okM := byCommittee[46]
	big, okB := byCommittee[sweepCommittees[len(sweepCommittees)-1]]
	if !okS || !okM || !okB {
		return fmt.Errorf("sweep gate: missing sweep results (have %d)", len(byCommittee))
	}
	if mid.TPS < 0.8*small.TPS {
		return fmt.Errorf("sweep gate: TPS collapsed with committee growth: c46 %.1f < 0.8 x c22 %.1f",
			mid.TPS, small.TPS)
	}
	bound := 4 * float64(big.RelayFanout) * math.Log2(float64(big.Committee))
	if big.FramesPerSlot > bound {
		return fmt.Errorf("sweep gate: c%d relay frames per node per slot %.1f exceeds 4·f·log2(n) = %.1f",
			big.Committee, big.FramesPerSlot, bound)
	}
	if d, ok := direct[big.Committee]; ok && big.P50Ms >= d.P50Ms {
		return fmt.Errorf("sweep gate: gossip stopped paying at c%d: p50 %.0fms >= direct %.0fms",
			big.Committee, big.P50Ms, d.P50Ms)
	}
	fmt.Fprintf(os.Stderr, "sweep gates passed: c46/c22 TPS ratio %.2f, c%d frames/node/slot %.1f (bound %.1f), p50 %.0fms vs direct %.0fms\n",
		mid.TPS/small.TPS, big.Committee, big.FramesPerSlot, bound, big.P50Ms, direct[big.Committee].P50Ms)
	return nil
}

// planAttackRun is the attack-load scenario: the quick-gate workload
// with flooder identities riding alongside and the overload armor on.
// The recorded TPS/latency are honest-only (attack traffic never
// starts the latency clock), so the entry answers "what do honest
// clients see while the committee is under flood?".
func planAttackRun(attackers int, rateLimit float64, seed int64, name string) plannedRun {
	cfg := loadgen.Config{
		Mode:      "sim",
		Committee: 7,
		// Honest load sits inside the cluster's committed-TPS capacity
		// (the quick gate saturates ~200 tps at this committee): the
		// entry then isolates what the FLOOD does to honest service,
		// not what overload does.
		Rate:         120,
		Duration:     2 * time.Second,
		Seed:         seed,
		Attackers:    attackers,
		AttackFactor: 5,
		RateLimit:    rateLimit,
	}
	if cfg.RateLimit <= 0 {
		// Default armor setting: 1.5x one honest node's share, so
		// honest traffic always fits and flooders lose their overflow.
		cfg.RateLimit = 1.5 * float64(cfg.Rate) / float64(cfg.Committee)
	}
	n := name
	if n == "" {
		n = "sim-attack-c7"
	} else {
		n += "-attack"
	}
	return plannedRun{name: n, cfg: cfg}
}

// writeAndCheck merges results into the trajectory files under outDir
// and, when checking, compares them against the baseline directory.
func writeAndCheck(results []loadgen.Result, outDir, baseDir string, check bool, tolerance float64) error {
	outTPS := filepath.Join(outDir, "BENCH_tps.json")
	outLat := filepath.Join(outDir, "BENCH_latency.json")
	baseTPS := filepath.Join(baseDir, "BENCH_tps.json")
	baseLat := filepath.Join(baseDir, "BENCH_latency.json")

	// Fresh reports start from the out-dir contents (merge-on-write) so
	// repeated runs accumulate entries rather than clobbering them.
	tps, err := loadgen.LoadReport(outTPS, loadgen.MetricTPS)
	if err != nil {
		return err
	}
	lat, err := loadgen.LoadReport(outLat, loadgen.MetricLatency)
	if err != nil {
		return err
	}
	for _, r := range results {
		tps.Upsert(r.TPSEntry())
		lat.Upsert(r.LatencyEntry())
	}
	if err := tps.Save(outTPS); err != nil {
		return err
	}
	if err := lat.Save(outLat); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s and %s\n", outTPS, outLat)

	if !check {
		return nil
	}
	baseT, err := loadgen.LoadReport(baseTPS, loadgen.MetricTPS)
	if err != nil {
		return err
	}
	baseL, err := loadgen.LoadReport(baseLat, loadgen.MetricLatency)
	if err != nil {
		return err
	}
	regressions := append(loadgen.Compare(baseT, tps, tolerance), loadgen.Compare(baseL, lat, tolerance)...)
	for _, msg := range regressions {
		fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", msg)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark regression(s) beyond ±%.0f%% tolerance", len(regressions), tolerance*100)
	}
	fmt.Fprintln(os.Stderr, "bench gate passed: no regressions against baseline")
	return nil
}
