// Command gpbft-inspect dumps a persisted block log (written by
// gpbft-node -data): per-block summaries, transaction breakdowns, the
// committee's evolution across eras, and reward balances. It fully
// re-validates the chain while reading, so it doubles as an integrity
// checker.
//
//	gpbft-inspect -data node0.blk
//	gpbft-inspect -data node0.blk -txs -rewards
//
// The snapshot subcommand decodes one signed era snapshot (a .gsnap
// file from <data>.snap), verifies its framing and producer signature,
// and pretty-prints the state it carries:
//
//	gpbft-inspect snapshot node0.blk.snap/snap-0000000000000042.gsnap
//
// The shards subcommand reads one or more block logs from a
// geo-sharded deployment — region chains and/or the anchor chain — and
// reports the cross-region machinery they carry: region checkpoints in
// commit order, and every transfer receipt's lifecycle status (minted
// by a lock, covered by an anchored checkpoint, applied at the
// destination):
//
//	gpbft-inspect shards anchor.blk region0.blk region1.blk
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"gpbft/internal/evidence"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/shard"
	"gpbft/internal/store"
	"gpbft/internal/types"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "snapshot" {
		if len(os.Args) != 3 {
			fatalf("usage: gpbft-inspect snapshot <file.gsnap>")
		}
		inspectSnapshot(os.Args[2])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "shards" {
		if len(os.Args) < 3 {
			fatalf("usage: gpbft-inspect shards <file.blk> [more.blk ...]")
		}
		inspectShards(os.Args[2:])
		return
	}
	var (
		dataPath  = flag.String("data", "", "block-log file (required)")
		committee = flag.Int("committee", 4, "genesis committee size (must match the node's)")
		nodes     = flag.Int("nodes", 0, "total nodes (default = committee)")
		chainID   = flag.String("chain-id", "gpbft-tcp", "chain identifier (must match the node's)")
		eraPeriod = flag.Duration("era", 30*time.Second, "era period (must match the node's)")
		swPeriod  = flag.Duration("switch", 250*time.Millisecond, "switch pause (must match)")
		report    = flag.Duration("report", 5*time.Second, "report period (must match)")
		showTxs   = flag.Bool("txs", false, "print every transaction")
		rewards   = flag.Bool("rewards", false, "print reward balances")
	)
	flag.Parse()
	if *dataPath == "" {
		fatalf("-data is required")
	}
	if *nodes == 0 {
		*nodes = *committee
	}

	// Reconstruct the same deterministic genesis gpbft-node derives.
	epoch := time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)
	g := &ledger.Genesis{ChainID: *chainID, Timestamp: epoch, Policy: ledger.DefaultPolicy()}
	g.Policy.EraPeriod = *eraPeriod
	g.Policy.SwitchPeriod = *swPeriod
	g.Policy.ReportInterval = *report
	g.Policy.QualificationWindow = 3 * *eraPeriod
	if *committee > g.Policy.MaxEndorsers {
		g.Policy.MaxEndorsers = *committee
	}
	for i := 0; i < *committee; i++ {
		kp := gcrypto.DeterministicKeyPair(i)
		pos := geo.Point{Lng: 114.175 + float64(i)*0.0004, Lat: 22.302 + float64(i%7)*0.0005}
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: kp.Address(), PubKey: kp.Public(),
			Geohash: geo.MustEncode(pos, geo.CSCPrecision),
		})
	}

	log, blocks, err := store.Open(*dataPath, store.Options{})
	if err != nil {
		fatalf("%v", err)
	}
	defer log.Close()

	chain, err := ledger.NewChain(g)
	if err != nil {
		fatalf("genesis: %v", err)
	}
	fmt.Printf("block log: %s (%d blocks)\n", *dataPath, len(blocks))
	fmt.Printf("genesis:   chain-id=%s committee=%d hash=%s\n\n",
		*chainID, *committee, g.Hash().Short())

	prevEra := uint64(0)
	kinds := map[types.TxType]int{}
	for _, b := range blocks {
		if err := chain.AddBlock(b); err != nil {
			fatalf("INTEGRITY FAILURE at height %d: %v", b.Header.Height, err)
		}
		certStr := "no-cert"
		if b.Cert != nil {
			certStr = fmt.Sprintf("cert(%d votes)", len(b.Cert.Votes))
		}
		fmt.Printf("height %4d  era %d  view %d  txs %3d  fees %4d  proposer %s  %s\n",
			b.Header.Height, b.Header.Era, b.Header.View, len(b.Txs),
			b.TotalFees(), b.Header.Proposer.Short(), certStr)
		if chain.Era() != prevEra {
			fmt.Printf("  >>> ERA SWITCH to era %d; committee now %d members\n",
				chain.Era(), len(chain.Endorsers()))
			prevEra = chain.Era()
		}
		for i := range b.Txs {
			tx := &b.Txs[i]
			kinds[tx.Type]++
			if *showTxs {
				fmt.Printf("    tx %s  %-15s  from %s  fee %d  at %s\n",
					tx.ID().Short(), tx.Type, tx.Sender.Short(), tx.Fee, tx.Geo.Location)
			}
			if tx.Type == types.TxEvidence {
				// Always surface committed accusations, even without -txs:
				// they are the chain's security events.
				if rec, err := evidence.Decode(tx.Payload); err == nil {
					fmt.Printf("    !! EVIDENCE %s (submitted by %s)\n", rec.Describe(), tx.Sender.Short())
				}
			}
		}
	}

	fmt.Printf("\nsummary: height=%d era=%d committee=%d devices-known=%d witness-stmts=%d\n",
		chain.Height(), chain.Era(), len(chain.Endorsers()),
		chain.Table().Len(), chain.Witnesses().Len())
	fmt.Printf("tx mix:  ")
	for _, k := range []types.TxType{types.TxNormal, types.TxConfig, types.TxLocationReport, types.TxWitness, types.TxEvidence} {
		fmt.Printf("%s=%d  ", k, kinds[k])
	}
	fmt.Println()
	if forks := chain.Forks(); len(forks) > 0 {
		fmt.Printf("FORK EVIDENCE: %d conflicting proposals recorded (%d total observed)\n", len(forks), chain.ForkCount())
	}
	if banned := chain.Banned(); len(banned) > 0 {
		fmt.Printf("\ndynamic blacklist (%d committed evidence records):\n", chain.EvidenceCount())
		for _, e := range banned {
			fmt.Printf("  %s  convicted by evidence %s\n", e.Address.Short(), e.Evidence.Short())
		}
	}
	if *rewards {
		fmt.Println("\nreward balances:")
		r := chain.Rewards()
		for _, a := range r.Accounts() {
			fmt.Printf("  %s  balance=%6d  blocks=%d\n", a.Short(), r.Balance(a), r.BlocksProduced(a))
		}
		fmt.Printf("  total distributed: %d\n", r.TotalDistributed())
	}
	fmt.Println("\nintegrity: OK (all blocks re-validated)")
}

// inspectSnapshot decodes, verifies and pretty-prints one signed era
// snapshot file. Framing (CRC, exactly one frame) and canonical-codec
// shape are checked by the decoder; the producer signature is verified
// explicitly so a tampered file is reported, not printed as truth.
func inspectSnapshot(path string) {
	snap, err := store.ReadSnapshotFile(path)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	sigStatus := "OK"
	if err := snap.Verify(); err != nil {
		sigStatus = fmt.Sprintf("FAILED (%v)", err)
	}
	st := snap.State
	fmt.Printf("snapshot:  %s\n", path)
	fmt.Printf("checkpoint height=%d era=%d\n", snap.Height(), snap.Era())
	fmt.Printf("root:      %s\n", snap.Root())
	fmt.Printf("genesis:   %s\n", st.GenesisHash.Short())
	fmt.Printf("producer:  %s  signature %s\n", snap.Producer.Short(), sigStatus)
	b := &st.Base
	fmt.Printf("base block: view %d seq %d txs %d proposer %s hash %s\n",
		b.Header.View, b.Header.Seq, len(b.Txs), b.Header.Proposer.Short(), b.Hash().Short())
	fmt.Printf("\ncommittee (%d endorsers):\n", len(st.Endorsers))
	for i := range st.Endorsers {
		e := &st.Endorsers[i]
		fmt.Printf("  %s  cell %s\n", e.Address.Short(), e.Geohash)
	}
	if len(st.Banned) > 0 {
		fmt.Printf("\ndynamic blacklist (%d entries):\n", len(st.Banned))
		for _, e := range st.Banned {
			fmt.Printf("  %s  convicted by evidence %s\n", e.Address.Short(), e.Evidence.Short())
		}
	}
	fmt.Printf("\nstate: accounts=%d devices=%d witness-stmts=%d balances=%d indexed-txs=%d evidence=%d\n",
		len(st.Accounts), len(st.Devices), len(st.Witnesses),
		len(st.Balances), len(st.TxIndex), len(st.Evidence))
	if sigStatus != "OK" {
		fatalf("signature verification failed")
	}
}

// receiptTrace is one transfer receipt's observed lifecycle across the
// inspected logs.
type receiptTrace struct {
	rc       shard.Receipt
	minted   bool // lock seen on a source-region log
	anchored bool // covered by a committed region checkpoint
	applied  bool // apply seen on a destination-region log
	dupes    int  // extra committed applies (benign no-ops)
}

// inspectShards reads raw blocks from every given log (no chain
// re-validation — the logs come from different chains with different
// genesis committees) and reconstructs the cross-region coordination
// state they collectively describe.
func inspectShards(paths []string) {
	traces := make(map[gcrypto.Hash]*receiptTrace)
	trace := func(id gcrypto.Hash) *receiptTrace {
		t, ok := traces[id]
		if !ok {
			t = &receiptTrace{}
			traces[id] = t
		}
		return t
	}
	latest := make(map[string]*shard.RegionCheckpoint)
	checkpoints, locks, applies := 0, 0, 0

	for _, path := range paths {
		log, blocks, err := store.Open(path, store.Options{})
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		fmt.Printf("%s: %d blocks\n", path, len(blocks))
		for _, b := range blocks {
			for i := range b.Txs {
				tx := &b.Txs[i]
				switch tx.Type {
				case types.TxTransferLock:
					tr, err := shard.DecodeTransfer(tx.Payload)
					if err != nil {
						fatalf("%s height %d: bad transfer payload: %v", path, b.Header.Height, err)
					}
					t := trace(tx.ID())
					t.minted = true
					t.rc = shard.Receipt{
						ID: tx.ID(), Source: tr.Source, Dest: tr.Dest,
						Recipient: tr.Recipient, Amount: tr.Amount,
						LockHeight: b.Header.Height,
					}
					locks++
					fmt.Printf("  height %4d  LOCK       %s  %s -> %s  amount %d\n",
						b.Header.Height, tx.ID().Short(), tr.Source, tr.Dest, tr.Amount)
				case types.TxTransferApply:
					rc, err := shard.DecodeReceipt(tx.Payload)
					if err != nil {
						fatalf("%s height %d: bad receipt payload: %v", path, b.Header.Height, err)
					}
					t := trace(rc.ID)
					if t.applied {
						t.dupes++
					}
					t.applied = true
					if !t.minted {
						t.rc = *rc
					}
					applies++
					fmt.Printf("  height %4d  APPLY      %s  credit %s += %d\n",
						b.Header.Height, rc.ID.Short(), rc.Recipient.Short(), rc.Amount)
				case types.TxRegionCheckpoint:
					cp, err := shard.DecodeCheckpoint(tx.Payload)
					if err != nil {
						fatalf("%s height %d: bad checkpoint payload: %v", path, b.Header.Height, err)
					}
					checkpoints++
					if cur, ok := latest[cp.Region]; !ok || cp.Height > cur.Height {
						latest[cp.Region] = cp
					}
					for _, rc := range cp.Receipts {
						t := trace(rc.ID)
						t.anchored = true
						if !t.minted {
							t.rc = rc
						}
					}
					fmt.Printf("  height %4d  CHECKPOINT region %s  era %d  height %d  root %s  receipts %d\n",
						b.Header.Height, cp.Region, cp.Era, cp.Height, cp.Root.Short(), len(cp.Receipts))
				}
			}
		}
		log.Close()
	}

	fmt.Printf("\nanchored region heads (%d checkpoints committed):\n", checkpoints)
	regions := make([]string, 0, len(latest))
	for r := range latest {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	for _, r := range regions {
		cp := latest[r]
		fmt.Printf("  %s  era %d  height %d  root %s\n", r, cp.Era, cp.Height, cp.Root.Short())
	}

	fmt.Printf("\nreceipts (%d locks, %d applies across the given logs):\n", locks, applies)
	ids := make([]gcrypto.Hash, 0, len(traces))
	for id := range traces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
	for _, id := range ids {
		t := traces[id]
		status := "minted"
		switch {
		case t.applied:
			status = "applied"
		case t.anchored:
			status = "anchored"
		case !t.minted:
			status = "orphan" // applied or anchored on these logs, lock log not given
		}
		extra := ""
		if t.dupes > 0 {
			extra = fmt.Sprintf("  (+%d duplicate applies, credited once)", t.dupes)
		}
		fmt.Printf("  %s  %s -> %s  amount %4d  %-8s%s\n",
			id.Short(), t.rc.Source, t.rc.Dest, t.rc.Amount, status, extra)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gpbft-inspect: "+format+"\n", args...)
	os.Exit(1)
}
