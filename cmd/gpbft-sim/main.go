// Command gpbft-sim regenerates the paper's evaluation: every figure
// and table of Section V plus the analytic-model cross-check of
// Section IV, on the deterministic discrete-event simulator.
//
// Usage:
//
//	gpbft-sim -exp all                 # quick sweep, everything
//	gpbft-sim -exp fig3a -full         # paper-scale sweep (slow)
//	gpbft-sim -exp table3 -sizes 40,202 -runs 10
//	gpbft-sim -exp fig6 -csv out.csv
//
// Experiments: fig3a fig3b fig4 fig5a fig5b fig6 table2 table3 table4
// model ablation tps all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gpbft"
	"gpbft/internal/harness"
	"gpbft/internal/stats"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig3a|fig3b|fig4|fig5a|fig5b|fig6|table2|table3|table4|model|ablation|tps|all")
		full    = flag.Bool("full", false, "paper-scale sweep (4..202 nodes, 10 runs; slow)")
		sizes   = flag.String("sizes", "", "comma-separated node counts (overrides preset)")
		runs    = flag.Int("runs", 0, "runs per group (overrides preset)")
		seed    = flag.Int64("seed", 1, "base random seed")
		window  = flag.Duration("window", 0, "load window per run (overrides preset)")
		era     = flag.Duration("era", 0, "era switch period T (overrides preset)")
		report  = flag.Duration("report", 0, "device location-report period (overrides preset)")
		perNode = flag.Duration("rate", 0, "per-node proposal interval (overrides preset)")
		csv     = flag.String("csv", "", "also write the final table(s) as CSV to this file")
	)
	flag.Parse()

	cfg := harness.Quick()
	if *full {
		cfg = harness.Default()
	}
	cfg.Seed = *seed
	if *sizes != "" {
		cfg.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 4 {
				fatalf("bad -sizes entry %q", s)
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *window > 0 {
		cfg.LoadWindow = *window
	}
	if *era > 0 {
		cfg.EraPeriod = *era
	}
	if *report > 0 {
		cfg.ReportEvery = *report
	}
	if *perNode > 0 {
		cfg.PerNodeInterval = *perNode
	}

	w := os.Stdout
	var tables []*stats.Table
	start := time.Now()

	switch *exp {
	case "fig3a":
		res, err := cfg.Fig3a(w)
		check(err)
		tables = append(tables, res.BoxplotTable("fig3a"))
	case "fig3b":
		res, err := cfg.Fig3b(w)
		check(err)
		tables = append(tables, res.BoxplotTable("fig3b"))
	case "fig4":
		t, err := cfg.Fig4(w, nil, nil)
		check(err)
		tables = append(tables, t)
	case "fig5a":
		res, err := cfg.Fig5a(w)
		check(err)
		tables = append(tables, res.Table("fig5a"))
	case "fig5b":
		res, err := cfg.Fig5b(w)
		check(err)
		tables = append(tables, res.Table("fig5b"))
	case "fig6":
		t, err := cfg.Fig6(w, nil, nil)
		check(err)
		tables = append(tables, t)
	case "table2":
		tables = append(tables, harness.Table2(w))
	case "table3":
		pl, err := cfg.CollectLatency(gpbft.PBFT, w)
		check(err)
		gl, err := cfg.CollectLatency(gpbft.GPBFT, w)
		check(err)
		pc, err := cfg.CollectComm(gpbft.PBFT, w)
		check(err)
		gc, err := cfg.CollectComm(gpbft.GPBFT, w)
		check(err)
		t, err := cfg.Table3(w, pl, gl, pc, gc)
		check(err)
		tables = append(tables, t)
	case "table4":
		tables = append(tables, harness.Table4(w))
	case "model":
		t, err := cfg.Model(w)
		check(err)
		tables = append(tables, t)
	case "ablation":
		check(cfg.Ablations(w))
	case "tps":
		t, err := cfg.Throughput(w)
		check(err)
		tables = append(tables, t)
	case "all":
		pl, err := cfg.Fig3a(w)
		check(err)
		gl, err := cfg.Fig3b(w)
		check(err)
		t4f, err := cfg.Fig4(w, pl, gl)
		check(err)
		pc, err := cfg.Fig5a(w)
		check(err)
		gc, err := cfg.Fig5b(w)
		check(err)
		t6, err := cfg.Fig6(w, pc, gc)
		check(err)
		t3, err := cfg.Table3(w, pl, gl, pc, gc)
		check(err)
		tables = append(tables, pl.BoxplotTable("fig3a"), gl.BoxplotTable("fig3b"), t4f,
			pc.Table("fig5a"), gc.Table("fig5b"), t6, t3,
			harness.Table2(w), harness.Table4(w))
		tm, err := cfg.Model(w)
		check(err)
		tables = append(tables, tm)
	default:
		fatalf("unknown experiment %q", *exp)
	}

	fmt.Fprintf(w, "# completed %q in %v (sizes=%v runs=%d window=%v)\n",
		*exp, time.Since(start).Round(time.Millisecond), cfg.Sizes, cfg.Runs, cfg.LoadWindow)

	if *csv != "" {
		var sb strings.Builder
		for _, t := range tables {
			if t.Title != "" {
				sb.WriteString("# " + t.Title + "\n")
			}
			sb.WriteString(t.CSV())
			sb.WriteByte('\n')
		}
		if err := os.WriteFile(*csv, []byte(sb.String()), 0o644); err != nil {
			fatalf("write csv: %v", err)
		}
		fmt.Fprintf(w, "# wrote %s\n", *csv)
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gpbft-sim: "+format+"\n", args...)
	os.Exit(1)
}
