package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestKillRestartRecovery is the end-to-end crash-safety check over
// real TCP: it SIGKILLs a durable node mid-era while the rest of the
// committee keeps committing, restarts it against the same -data
// files, and requires the revenant to recover its persisted height,
// catch up to the live head, and take part in committing new blocks —
// all inside the same era.
func TestKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real node processes")
	}

	bin := filepath.Join(t.TempDir(), "gpbft-node")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	dataDir := t.TempDir()
	const (
		n           = 4
		basePort    = 39640
		metricsPort = 39740
	)

	cmds := make([]*exec.Cmd, n)
	startNode := func(i int) {
		logf, err := os.OpenFile(filepath.Join(dataDir, fmt.Sprintf("node%d.stderr", i)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin,
			"-index", strconv.Itoa(i),
			"-committee", strconv.Itoa(n),
			"-base-port", strconv.Itoa(basePort),
			"-era", "120s", // the whole test must fit inside one era
			"-report", "150ms", // location reports drive block production
			"-batch", "4",
			"-quiet",
			"-data", filepath.Join(dataDir, fmt.Sprintf("node%d.blocks", i)),
			"-fsync",
			"-metrics-addr", fmt.Sprintf("127.0.0.1:%d", metricsPort+i),
			// Overload armor on: committee identities are exempt, so the
			// 150ms report cadence must keep driving block production
			// while the QoS pool and admission metrics are live.
			"-rate-limit", "50",
			"-lane-weights", "8,4,1",
			"-shed-thresholds", "0.5,0.75,0.9",
			"-ingress-bytes", "1048576",
		)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			logf.Close()
			t.Fatalf("start node %d: %v", i, err)
		}
		logf.Close()
		cmds[i] = cmd
	}
	t.Cleanup(func() {
		for i, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
			if t.Failed() {
				if out, err := os.ReadFile(filepath.Join(dataDir, fmt.Sprintf("node%d.stderr", i))); err == nil {
					t.Logf("node %d log:\n%s", i, tail(string(out), 30))
				}
			}
		}
	})
	for i := 0; i < n; i++ {
		startNode(i)
	}

	// The committee produces blocks from its own location reports.
	h0 := waitHeight(t, metricsPort+0, 3, 60*time.Second, "initial block production on node 0")

	// The overload-armor observability surface must be in the scrape:
	// admission counters by reason plus per-lane mempool depth gauges.
	assertMetricsSeries(t, metricsPort+0,
		"gpbft_admission_accepted_total",
		`gpbft_admission_rejected_total{reason="rate-limit"}`,
		`gpbft_admission_shed_total{reason="overload"}`,
		"gpbft_admission_level",
		"gpbft_admission_identities",
		`gpbft_mempool_lane_depth{lane="control"}`,
		`gpbft_mempool_lane_depth{lane="normal"}`,
		`gpbft_mempool_lane_depth{lane="bulk"}`,
		"gpbft_mempool_evicted_shed_total",
	)

	// SIGKILL node 0 mid-era: no shutdown hooks, no flushes beyond
	// what the persist-before-send discipline already forced.
	if err := cmds[0].Process.Kill(); err != nil {
		t.Fatalf("kill node 0: %v", err)
	}
	_ = cmds[0].Wait()
	cmds[0] = nil

	// The surviving 3-of-4 quorum must keep committing without it.
	peerH := waitHeight(t, metricsPort+1, h0+2, 60*time.Second, "progress without the killed node")

	// Restart against the same data files: the node replays its block
	// log, reloads its vote WAL, syncs the blocks it missed, and then
	// participates in committing brand-new ones.
	startNode(0)
	waitHeight(t, metricsPort+0, peerH, 90*time.Second, "killed node recovering to the live head")
	liveH := waitHeight(t, metricsPort+1, peerH+1, 60*time.Second, "cluster committing after the restart")
	waitHeight(t, metricsPort+0, liveH, 60*time.Second, "restarted node following new commits")
}

// waitHeight polls a node's metrics endpoint until gpbft_node_height
// reaches min, failing the test at the deadline.
func waitHeight(t *testing.T, port int, min uint64, timeout time.Duration, what string) uint64 {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last uint64
	var lastErr error
	for time.Now().Before(deadline) {
		h, err := scrapeHeight(port)
		lastErr = err
		if err == nil {
			last = h
			if h >= min {
				return h
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s: height %d < %d (last scrape error: %v)", what, last, min, lastErr)
	return 0
}

// assertMetricsSeries scrapes a node's metrics endpoint once and fails
// on any series (name or name{labels}) missing from the exposition.
func assertMetricsSeries(t *testing.T, port int, series ...string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/metrics", port))
	if err != nil {
		t.Fatalf("scrape metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	for _, s := range series {
		if !strings.Contains(string(body), s+" ") {
			t.Errorf("metrics scrape is missing series %s", s)
		}
	}
}

func scrapeHeight(port int) (uint64, error) {
	resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/metrics", port))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, "gpbft_node_height "); ok {
			return strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		}
	}
	return 0, fmt.Errorf("gpbft_node_height not in scrape")
}

func tail(s string, lines int) string {
	all := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(all) > lines {
		all = all[len(all)-lines:]
	}
	return strings.Join(all, "\n")
}
