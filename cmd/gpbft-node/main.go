// Command gpbft-node runs one full node over real TCP. A committee of
// nodes started with the same -committee value and consecutive -index
// values (sharing -base-port) forms a blockchain; clients submit
// transactions with cmd/gpbft-client.
//
// A 4-node G-PBFT committee on one machine:
//
//	gpbft-node -index 0 &
//	gpbft-node -index 1 &
//	gpbft-node -index 2 &
//	gpbft-node -index 3 &
//	gpbft-client -to 127.0.0.1:9000 -count 5
//
// Node identities are deterministic (derived from -index) so that all
// participants compute the same genesis block without a coordination
// step; pass -chain-id to isolate deployments.
//
// With -data, the node is crash-safe: committed blocks go to the block
// log and every consensus vote is persisted to <data>.wal before it is
// sent, so a killed-and-restarted node recovers its chain, rejoins its
// era, and never contradicts a vote it already sent.
//
// With -retain-eras N (the default), every era boundary additionally
// writes a signed snapshot of the full chain state to <data>.snap and
// compacts the block log below the oldest of the N retained snapshots,
// so disk stays proportional to recent history. A restart boots from
// the newest verifiable snapshot plus the log tail, and a node that
// fell far behind installs a quorum-verified peer snapshot instead of
// replaying the whole chain (see -fast-sync-threshold).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/core"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/shard"
	"gpbft/internal/store"
	"gpbft/internal/transport"
	"gpbft/internal/types"
)

// main stays a thin wrapper around run so that every exit path —
// including SIGINT/SIGTERM and configuration errors — unwinds run's
// defers and closes the durable logs. os.Exit anywhere inside the
// setup would skip the fsync-on-close of the block log and vote WAL.
func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gpbft-node: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		index     = flag.Int("index", 0, "node index (derives identity, position and port)")
		committee = flag.Int("committee", 4, "genesis committee size")
		nodes     = flag.Int("nodes", 0, "total nodes incl. candidates (default = committee)")
		basePort  = flag.Int("base-port", 9000, "peer i listens on base-port+i")
		host      = flag.String("host", "127.0.0.1", "host peers are reachable at")
		listen    = flag.String("listen", "", "listen address (default host:base-port+index)")
		protocol  = flag.String("protocol", "gpbft", "pbft or gpbft")
		chainID   = flag.String("chain-id", "gpbft-tcp", "chain identifier")
		eraPeriod = flag.Duration("era", 30*time.Second, "era switch period T (gpbft)")
		swPeriod  = flag.Duration("switch", 250*time.Millisecond, "switch pause")
		report    = flag.Duration("report", 5*time.Second, "own location-report period (gpbft; 0 = off)")
		batch     = flag.Int("batch", 32, "target transactions per block (blocks grow up to 4x under backlog)")
		inflight  = flag.Int("max-inflight", 0, "consensus pipelining depth (0 = engine default, 1 = one-slot serial)")
		poolCap   = flag.Int("mempool-cap", 0, "mempool capacity in transactions (0 = default)")
		shards    = flag.Int("mempool-shards", 0, "mempool shard count, rounded to a power of two (0 = default)")
		rateLimit = flag.Float64("rate-limit", 0, "overload armor: per-identity admission rate in tx/s; enables QoS mempool lanes and load shedding (0 = off, exact pre-armor behaviour)")
		rateBurst = flag.Float64("rate-burst", 0, "admission token-bucket burst in transactions (0 = 2x rate, min 8)")
		laneWts   = flag.String("lane-weights", "", "QoS scheduler weights as control,normal,bulk (default 8,4,1)")
		shedThr   = flag.String("shed-thresholds", "", "mempool-occupancy fractions raising shed level 1,2,3 (default 0.5,0.75,0.9)")
		ingressBy = flag.Int("ingress-bytes", 0, "per-client-connection ingress budget in bytes/s (0 = unlimited)")
		gossip    = flag.Bool("gossip", false, "epidemic relay: broadcast consensus traffic to a random fanout of peers instead of all-to-all (off = exact direct-broadcast path)")
		fanout    = flag.Int("fanout", 0, "gossip relay fanout (0 = ceil(log2(n+1))+1 for the committee size)")
		dupeTTL   = flag.Duration("dupemap-ttl", 0, "gossip dupemap generation TTL on a stalled chain (0 = default)")
		quiet     = flag.Bool("quiet", false, "suppress per-block logging")
		dataPath  = flag.String("data", "", "block-log file for durable persistence; the vote WAL lives at <data>.wal (empty = in-memory only)")
		fsync     = flag.Bool("fsync", false, "fsync the block log and vote WAL after every write")
		metrics   = flag.String("metrics-addr", "", "serve Prometheus-text metrics on this host:port (empty = off)")
		retain    = flag.Int("retain-eras", 2, "signed era snapshots retained in <data>.snap; each era boundary writes one and compacts the block log below the oldest kept (gpbft with -data; 0 = off)")
		fsThresh  = flag.Uint64("fast-sync-threshold", 0, "block gap at which catch-up installs a peer snapshot instead of replaying (0 = engine default)")
		shardLen  = flag.Int("shard-prefix-len", 0, "geohash prefix length for the node's shard region tag, logged and exported as gpbft_node_shard_region (0 = off; a TCP deployment is one region — multi-region hierarchies run in the sim, see gpbft-bench -shard)")
	)
	flag.Parse()

	if *nodes == 0 {
		*nodes = *committee
	}
	if *index < 0 || *index >= *nodes {
		return fmt.Errorf("index %d out of range [0,%d)", *index, *nodes)
	}
	if *committee < 4 {
		return fmt.Errorf("committee must be at least 4")
	}
	epoch := time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)

	// Deterministic identities and positions: every node derives the
	// same genesis.
	keys := make([]*gcrypto.KeyPair, *nodes)
	positions := make([]geo.Point, *nodes)
	for i := range keys {
		keys[i] = gcrypto.DeterministicKeyPair(i)
		positions[i] = geo.Point{Lng: 114.175 + float64(i)*0.0004, Lat: 22.302 + float64(i%7)*0.0005}
	}
	self := keys[*index]

	// Region tag: the geohash-prefix shard key this node's position falls
	// in. A TCP deployment runs a single region (the hierarchy itself is
	// sim-only), but tagging nodes lets an operator confirm a fleet's
	// members agree on their region before wiring them into one committee.
	shardRegion := ""
	if *shardLen > 0 {
		sr, err := shard.KeyOf(positions[*index], *shardLen)
		if err != nil {
			return fmt.Errorf("shard key: %v", err)
		}
		shardRegion = sr
		log.Printf("shard region %q (geohash prefix length %d)", shardRegion, *shardLen)
	}

	g := &ledger.Genesis{ChainID: *chainID, Timestamp: epoch, Policy: ledger.DefaultPolicy()}
	g.Policy.EraPeriod = *eraPeriod
	g.Policy.SwitchPeriod = *swPeriod
	g.Policy.ReportInterval = *report
	g.Policy.QualificationWindow = 3 * *eraPeriod
	if *committee > g.Policy.MaxEndorsers {
		g.Policy.MaxEndorsers = *committee
	}
	for i := 0; i < *committee; i++ {
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: keys[i].Address(), PubKey: keys[i].Public(),
			Geohash: geo.MustEncode(positions[i], geo.CSCPrecision),
		})
	}
	chain, err := ledger.NewChain(g)
	if err != nil {
		return fmt.Errorf("genesis: %v", err)
	}

	// Durable persistence: replay the block log into the chain and read
	// back the consensus WAL, then append every commit / persist every
	// vote. Close (which syncs) runs on every exit path via the defers.
	var blockLog *store.BlockLog
	var voteWAL *store.WAL
	var recovered []store.WALRecord
	var snapStore *store.SnapshotStore
	if *dataPath != "" {
		lg, blocks, err := store.Open(*dataPath, store.Options{Sync: *fsync})
		if err != nil {
			return fmt.Errorf("block log: %v", err)
		}
		blockLog = lg
		defer blockLog.Close()
		// Restart at scale: boot from the newest verifiable era snapshot
		// and replay only the block-log tail above its checkpoint. A
		// corrupt or unverifiable snapshot is skipped (Latest already
		// filters), and a failed restore degrades to full replay.
		if *retain > 0 && *protocol == "gpbft" {
			ss, err := store.OpenSnapshotStore(*dataPath+".snap", *retain)
			if err != nil {
				return fmt.Errorf("snapshot store: %v", err)
			}
			snapStore = ss
			if snap, err := ss.Latest(); err == nil && snap != nil {
				restored, err := ledger.RestoreChain(g, snap.State)
				if err != nil {
					log.Printf("WARNING: snapshot restore at height %d: %v (replaying instead)", snap.Height(), err)
				} else {
					chain = restored
					log.Printf("restored snapshot height=%d era=%d from %s", snap.Height(), snap.Era(), ss.Dir())
				}
			}
		}
		replayed := 0
		for _, b := range blocks {
			if b.Header.Height != chain.Height()+1 {
				continue // at or below the snapshot checkpoint
			}
			if err := chain.AddBlock(b); err != nil {
				return fmt.Errorf("replay block %d: %v", b.Header.Height, err)
			}
			replayed++
		}
		if replayed > 0 {
			log.Printf("recovered %d blocks from %s (height %d)", replayed, *dataPath, chain.Height())
		}
		w, recs, err := store.OpenWAL(*dataPath+".wal", store.WALOptions{NoSync: !*fsync})
		if err != nil {
			return fmt.Errorf("consensus wal: %v", err)
		}
		voteWAL = w
		defer voteWAL.Close()
		recovered = recs
		if len(recs) > 0 {
			log.Printf("recovered %d consensus records from %s.wal", len(recs), *dataPath)
		}
	}

	weights, err := parseTriple(*laneWts, [3]int{})
	if err != nil {
		return fmt.Errorf("-lane-weights: %v", err)
	}
	thresholds, err := parseTripleFloat(*shedThr, [3]float64{})
	if err != nil {
		return fmt.Errorf("-shed-thresholds: %v", err)
	}
	// With -rate-limit the mempool grows priority lanes; without it the
	// plain sharded pool keeps the exact pre-armor behaviour.
	pool := runtime.NewMempoolShards(*poolCap, *shards)
	if *rateLimit > 0 {
		pool = runtime.NewMempoolQoS(*poolCap, *shards, runtime.QoSConfig{LaneWeights: weights})
	}
	app := runtime.NewApp(chain, pool, self.Address(), epoch, *batch)
	// Adaptive block sizing: when the pool runs deep, pack blocks past
	// the target so the pipeline drains backlog instead of queueing it.
	app.SetMaxBatch(4 * *batch)

	var engine consensus.Engine
	var inflightProbe func() (used, depth int)
	switch *protocol {
	case "pbft":
		com, err := consensus.NewCommittee(g.Endorsers)
		if err != nil {
			return fmt.Errorf("committee: %v", err)
		}
		cfg := pbft.Config{
			Committee: com, Key: self, App: app,
			Timers: consensus.NewTimerAllocator(), StartHeight: chain.Height() + 1,
			MaxInFlight: *inflight,
		}
		if voteWAL != nil {
			cfg.WAL = voteWAL
			cfg.Durable = pbft.RecoverState(0, recovered)
		}
		eng, err := pbft.New(cfg)
		if err != nil {
			return fmt.Errorf("pbft: %v", err)
		}
		engine = eng
		inflightProbe = eng.InFlight
	case "gpbft":
		cfg := core.Config{
			Chain: chain, Key: self, App: app,
			Timers: consensus.NewTimerAllocator(), Epoch: epoch,
			MaxInFlight: *inflight,
		}
		if voteWAL != nil {
			cfg.WAL = voteWAL
			cfg.Recovered = recovered
		}
		if snapStore != nil {
			cfg.Snapshots = snapStore
			cfg.FastSyncThreshold = *fsThresh
		}
		eng, err := core.New(cfg)
		if err != nil {
			return fmt.Errorf("gpbft: %v", err)
		}
		engine = eng
		inflightProbe = eng.InFlight
	default:
		return fmt.Errorf("unknown -protocol %q", *protocol)
	}

	// Overload armor: the admission controller charges one token bucket
	// per sender identity and sheds load by lane as the pool fills. The
	// deployment's own deterministic node identities are exempt — their
	// location reports and evidence are the control traffic the armor
	// exists to protect, and authenticated committee members are not the
	// flood surface (unattributed client connections are).
	var adm *runtime.Admission
	if *rateLimit > 0 {
		adm = runtime.NewAdmission(runtime.AdmissionConfig{
			Rate:           *rateLimit,
			Burst:          *rateBurst,
			ShedThresholds: thresholds,
		})
		for i := 0; i < *nodes; i++ {
			adm.Exempt(keys[i].Address())
		}
		adm.BindPool(pool)
		adm.BindInFlight(inflightProbe)
	}

	addr := *listen
	if addr == "" {
		addr = fmt.Sprintf("%s:%d", *host, *basePort+*index)
	}
	tcpCfg := transport.Config{Listen: addr, Key: self, IngressBytesPerSec: *ingressBy}
	if adm != nil {
		// The transport gate is the single admission charge for network
		// requests; rejected client requests get a signed TxRejected reply
		// with the retry-after hint. The clock only has to be monotone and
		// shared with Observe to within the recalc interval, so an
		// independent start instant is fine.
		admStart := time.Now()
		tcpCfg.AdmitTx = func(tx *types.Transaction) error {
			return adm.Admit(time.Since(admStart), tx)
		}
	}
	tcp, err := transport.New(tcpCfg)
	if err != nil {
		return err
	}
	defer tcp.Close()
	for i := 0; i < *nodes; i++ {
		if i != *index {
			tcp.AddPeer(transport.Peer{
				Addr:     keys[i].Address(),
				HostPort: fmt.Sprintf("%s:%d", *host, *basePort+i),
			})
		}
	}

	node := &runtime.Node{ID: self.Address(), Key: self, App: app, Engine: engine, Admission: adm}
	if *gossip {
		// Epidemic relay over the same TCP peer set: engine broadcasts
		// queue on the relay and flush as batched frames to a random
		// fanout; the dupemap drops re-deliveries. Seed from the node
		// index so target draws are deterministic but decorrelated.
		peers := make([]gcrypto.Address, 0, len(g.Endorsers))
		for _, e := range g.Endorsers {
			peers = append(peers, e.Address)
		}
		node.Relay = consensus.NewRelay(consensus.RelayConfig{
			Self:    self.Address(),
			Peers:   peers,
			Fanout:  *fanout,
			DupeTTL: consensus.Time(*dupeTTL),
			Seed:    int64(uint64(*index+1) * 0x9e3779b97f4a7c15),
		})
		log.Printf("gossip relay on: fanout=%d flush=%v", node.Relay.Fanout(), time.Duration(node.Relay.FlushEvery()))
	}
	node.OnCommit = func(now consensus.Time, b *types.Block) {
		if blockLog != nil {
			if err := blockLog.Append(b); err != nil {
				log.Printf("WARNING: persist height %d: %v", b.Header.Height, err)
			}
		}
		if !*quiet {
			log.Printf("committed height=%d era=%d txs=%d fees=%d hash=%s",
				b.Header.Height, b.Header.Era, len(b.Txs), b.TotalFees(), b.Hash().Short())
		}
	}
	var snapsWritten, compactedBytes atomic.Uint64
	if snapStore != nil {
		// Every era bump exports the canonical chain state at the config
		// block itself — the same (height, root) on every honest node —
		// signs it, and publishes it to the store (pruned to -retain-eras).
		chain.SetEraBumpHook(func(st *ledger.ChainState) {
			if st.Height() == 0 {
				return
			}
			if err := snapStore.Add(store.NewSnapshot(st, self)); err != nil {
				log.Printf("WARNING: snapshot write at height %d: %v", st.Height(), err)
				return
			}
			snapsWritten.Add(1)
		})
		// A fast-sync install replaces the chain wholesale; everything in
		// the block log below the new base can never connect again.
		node.OnSnapshotInstall = func(_ consensus.Time, era, height uint64) {
			log.Printf("installed peer snapshot era=%d height=%d", era, height)
			if blockLog != nil {
				if n, err := blockLog.CompactBelow(height + 1); err != nil {
					log.Printf("WARNING: block log compaction: %v", err)
				} else {
					compactedBytes.Add(uint64(n))
				}
			}
		}
	}
	node.OnEraSwitch = func(now consensus.Time, era uint64, com []gcrypto.Address) {
		if !*quiet {
			log.Printf("era switch -> era=%d committee=%d", era, len(com))
		}
		// Compaction rides the era switch, outside the chain lock: drop
		// block-log frames and in-memory blocks below the oldest retained
		// snapshot. The snapshot itself is the durable history below it.
		if snapStore != nil && blockLog != nil {
			if floor := snapStore.OldestHeight(); floor > chain.BaseHeight() {
				if n, err := blockLog.CompactBelow(floor + 1); err != nil {
					log.Printf("WARNING: block log compaction: %v", err)
				} else if n > 0 {
					compactedBytes.Add(uint64(n))
					log.Printf("compacted block log below height %d (%d bytes reclaimed)", floor+1, n)
				}
				chain.CompactBelow(floor)
			}
		}
	}
	runner := transport.NewRunner(node, tcp)

	// Operator observability: transport frame/byte/redial counters plus
	// node event counters, in Prometheus text format. Watching
	// gpbft_transport_redials_total and per-peer states live shows
	// era-switch-induced disconnect churn on a real deployment.
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			runner.Stats().WritePrometheus(w, "gpbft")
			c := node.Counters()
			fmt.Fprintf(w, "# TYPE gpbft_node_envelopes_delivered_total counter\ngpbft_node_envelopes_delivered_total %d\n", c.Delivered)
			fmt.Fprintf(w, "# TYPE gpbft_node_timers_fired_total counter\ngpbft_node_timers_fired_total %d\n", c.Fired)
			fmt.Fprintf(w, "# TYPE gpbft_node_txs_submitted_total counter\ngpbft_node_txs_submitted_total %d\n", c.Submitted)
			fmt.Fprintf(w, "# TYPE gpbft_node_txs_rejected_total counter\ngpbft_node_txs_rejected_total %d\n", c.Rejected)
			fmt.Fprintf(w, "# TYPE gpbft_node_blocks_committed_total counter\ngpbft_node_blocks_committed_total %d\n", c.Committed)
			fmt.Fprintf(w, "# TYPE gpbft_node_height gauge\ngpbft_node_height %d\n", c.LastHeight)
			fmt.Fprintf(w, "# TYPE gpbft_node_forks_total counter\ngpbft_node_forks_total %d\n", chain.ForkCount())
			fmt.Fprintf(w, "# TYPE gpbft_node_evidence_total counter\ngpbft_node_evidence_total %d\n", chain.EvidenceCount())
			fmt.Fprintf(w, "# TYPE gpbft_node_banned gauge\ngpbft_node_banned %d\n", len(chain.Banned()))
			fmt.Fprintf(w, "# TYPE gpbft_mempool_pending gauge\ngpbft_mempool_pending %d\n", c.Pool.Pending)
			fmt.Fprintf(w, "# TYPE gpbft_mempool_shards gauge\ngpbft_mempool_shards %d\n", c.Pool.Shards)
			fmt.Fprintf(w, "# TYPE gpbft_mempool_admitted_total counter\ngpbft_mempool_admitted_total %d\n", c.Pool.Admitted)
			fmt.Fprintf(w, "# TYPE gpbft_mempool_rejected_full_total counter\ngpbft_mempool_rejected_full_total %d\n", c.Pool.RejectedFull)
			fmt.Fprintf(w, "# TYPE gpbft_mempool_rejected_dup_total counter\ngpbft_mempool_rejected_dup_total %d\n", c.Pool.RejectedDup)
			fmt.Fprintf(w, "# TYPE gpbft_mempool_dropped_total counter\ngpbft_mempool_dropped_total %d\n", c.Pool.Dropped)
			fmt.Fprintf(w, "# TYPE gpbft_mempool_committed_total counter\ngpbft_mempool_committed_total %d\n", c.Pool.Committed)
			fmt.Fprintf(w, "# TYPE gpbft_mempool_evicted_shed_total counter\ngpbft_mempool_evicted_shed_total %d\n", c.Pool.EvictedShed)
			fmt.Fprintf(w, "# TYPE gpbft_mempool_lane_depth gauge\n")
			for l, depth := range c.Pool.Lanes {
				fmt.Fprintf(w, "gpbft_mempool_lane_depth{lane=%q} %d\n", runtime.Lane(l), depth)
			}
			fmt.Fprintf(w, "# TYPE gpbft_mempool_shard_depth gauge\n")
			for sh, depth := range c.Pool.ShardDepths {
				fmt.Fprintf(w, "gpbft_mempool_shard_depth{shard=\"%d\"} %d\n", sh, depth)
			}
			if shardRegion != "" {
				fmt.Fprintf(w, "# TYPE gpbft_node_shard_region gauge\ngpbft_node_shard_region{region=%q} 1\n", shardRegion)
			}
			if node.Relay != nil {
				r := c.Relay
				fmt.Fprintf(w, "# TYPE gpbft_relay_forwarded_total counter\ngpbft_relay_forwarded_total %d\n", r.ForwardedFrames)
				fmt.Fprintf(w, "# TYPE gpbft_relay_forwarded_entries_total counter\ngpbft_relay_forwarded_entries_total %d\n", r.ForwardedEntries)
				fmt.Fprintf(w, "# TYPE gpbft_relay_suppressed_total counter\ngpbft_relay_suppressed_total %d\n", r.Suppressed)
				fmt.Fprintf(w, "# TYPE gpbft_relay_dropped_total counter\ngpbft_relay_dropped_total %d\n", r.Dropped)
				fmt.Fprintf(w, "# TYPE gpbft_relay_delivered_total counter\ngpbft_relay_delivered_total %d\n", r.Delivered)
				fmt.Fprintf(w, "# TYPE gpbft_relay_dupemap_entries gauge\ngpbft_relay_dupemap_entries %d\n", r.DupemapEntries)
				fmt.Fprintf(w, "# TYPE gpbft_relay_dupemap_generations gauge\ngpbft_relay_dupemap_generations %d\n", r.DupemapGenerations)
				fmt.Fprintf(w, "# TYPE gpbft_relay_fanout gauge\ngpbft_relay_fanout %d\n", node.Relay.Fanout())
			}
			c.Admission.WritePrometheus(w, "gpbft_")
			runtime.SyncMetrics{
				Stats:            c.Sync,
				SnapshotsWritten: snapsWritten.Load(),
				CompactedBytes:   compactedBytes.Load(),
			}.WritePrometheus(w, "gpbft")
		})
		msrv := &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		defer msrv.Close()
		log.Printf("metrics on http://%s/metrics", *metrics)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		cancel()
	}()

	// Periodic own location reports keep this node authenticated (and
	// let candidate nodes qualify).
	if *protocol == "gpbft" && *report > 0 {
		go func() {
			nonce := uint64(0)
			ticker := time.NewTicker(*report)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					nonce++
					tx := &types.Transaction{
						Type:  types.TxLocationReport,
						Nonce: nonce,
						Geo:   types.GeoInfo{Location: positions[*index], Timestamp: time.Now().UTC()},
					}
					tx.Sign(self)
					_ = runner.Submit(tx)
				}
			}
		}()
	}

	log.Printf("gpbft-node index=%d addr=%s listen=%s protocol=%s committee=%d nodes=%d",
		*index, self.Address().Short(), addr, *protocol, *committee, *nodes)
	runner.Run(ctx)
	log.Printf("shutting down at height %d", chain.Height())
	return nil
}

// parseTriple parses "a,b,c" into three ints; empty keeps def (zeros
// defer to the runtime's documented defaults).
func parseTriple(s string, def [3]int) ([3]int, error) {
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return def, fmt.Errorf("want three comma-separated values, got %q", s)
	}
	var out [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return def, fmt.Errorf("value %d of %q: %v", i+1, s, err)
		}
		out[i] = v
	}
	return out, nil
}

// parseTripleFloat is parseTriple for fractions.
func parseTripleFloat(s string, def [3]float64) ([3]float64, error) {
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return def, fmt.Errorf("want three comma-separated values, got %q", s)
	}
	var out [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return def, fmt.Errorf("value %d of %q: %v", i+1, s, err)
		}
		out[i] = v
	}
	return out, nil
}
