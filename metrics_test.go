package gpbft_test

import (
	"testing"
	"time"

	"gpbft"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/types"
)

func metricsTx(i int) *types.Transaction {
	tx := &types.Transaction{
		Type: types.TxNormal, Nonce: uint64(i), Payload: []byte{byte(i)}, Fee: 1,
		Geo: types.GeoInfo{
			Location:  geo.Point{Lng: 114.18, Lat: 22.3},
			Timestamp: time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
		},
	}
	tx.Sign(gcrypto.DeterministicKeyPair(500 + i))
	return tx
}

func metricsBlock(txs ...*types.Transaction) *types.Block {
	vals := make([]types.Transaction, len(txs))
	for i, tx := range txs {
		vals[i] = *tx
	}
	return types.NewBlock(types.BlockHeader{Height: 1}, vals)
}

func TestMetricsLatencyAccounting(t *testing.T) {
	m := gpbft.NewMetrics()
	tx1, tx2 := metricsTx(1), metricsTx(2)
	m.RecordSubmit(tx1.ID(), 100*time.Millisecond)
	m.RecordSubmit(tx2.ID(), 200*time.Millisecond)
	if m.SubmittedCount() != 2 || m.PendingCount() != 2 {
		t.Fatal("submission accounting wrong")
	}
	// First commit observation stops the clock.
	m.ObserveCommit(350*time.Millisecond, metricsBlock(tx1))
	lats := m.Latencies()
	if len(lats) != 1 || lats[0] != 250*time.Millisecond {
		t.Fatalf("latencies: %v", lats)
	}
	// A second observation of the same block (another node committing)
	// is ignored.
	m.ObserveCommit(500*time.Millisecond, metricsBlock(tx1))
	if len(m.Latencies()) != 1 {
		t.Fatal("re-observation must not double-count")
	}
	if m.CommittedCount() != 1 || m.PendingCount() != 1 {
		t.Fatal("commit accounting wrong")
	}
	// Unsubmitted transactions in a block (e.g. config txs) are skipped.
	m.ObserveCommit(600*time.Millisecond, metricsBlock(metricsTx(99)))
	if m.CommittedCount() != 1 {
		t.Fatal("foreign tx counted")
	}
	m.ObserveCommit(900*time.Millisecond, metricsBlock(tx2))
	if m.MeanLatency() != (250*time.Millisecond+700*time.Millisecond)/2 {
		t.Fatalf("mean: %v", m.MeanLatency())
	}
	if m.MaxLatency() != 700*time.Millisecond {
		t.Fatalf("max: %v", m.MaxLatency())
	}
	if m.BlocksObserved() != 4 {
		t.Fatalf("blocks observed: %d", m.BlocksObserved())
	}
}

func TestMetricsDuplicateSubmit(t *testing.T) {
	m := gpbft.NewMetrics()
	tx := metricsTx(1)
	m.RecordSubmit(tx.ID(), 100*time.Millisecond)
	m.RecordSubmit(tx.ID(), 999*time.Millisecond) // retransmission keeps the first clock
	m.ObserveCommit(200*time.Millisecond, metricsBlock(tx))
	if got := m.Latencies()[0]; got != 100*time.Millisecond {
		t.Fatalf("latency %v, want 100ms from first submission", got)
	}
}

// TestMetricsPendingCap is the regression test for unbounded growth of
// Metrics.submits: transactions submitted under overload but never
// committed must not accumulate forever.
func TestMetricsPendingCap(t *testing.T) {
	m := gpbft.NewMetrics()
	m.SetMaxPending(8)
	txs := make([]*types.Transaction, 32)
	for i := range txs {
		txs[i] = metricsTx(i)
		m.RecordSubmit(txs[i].ID(), time.Duration(i)*time.Millisecond)
	}
	if m.PendingCount() != 8 {
		t.Fatalf("pending %d, want capped at 8", m.PendingCount())
	}
	if m.EvictedCount() != 24 {
		t.Fatalf("evicted %d, want 24", m.EvictedCount())
	}
	if m.SubmittedCount() != 32 {
		t.Fatalf("submitted %d, want 32 (eviction must not rewrite history)", m.SubmittedCount())
	}

	// A recent (still-tracked) transaction commits normally.
	m.ObserveCommit(100*time.Millisecond, metricsBlock(txs[31]))
	if m.CommittedCount() != 1 || len(m.Latencies()) != 1 {
		t.Fatal("tracked tx must still measure")
	}
	if m.Latencies()[0] != 100*time.Millisecond-31*time.Millisecond {
		t.Fatalf("latency %v", m.Latencies()[0])
	}
	// An evicted transaction committing later is simply unmeasured.
	m.ObserveCommit(200*time.Millisecond, metricsBlock(txs[0]))
	if m.CommittedCount() != 1 || len(m.Latencies()) != 1 {
		t.Fatal("evicted tx must not produce a latency sample")
	}
	// Re-submitting a committed transaction must not restart its clock.
	m.RecordSubmit(txs[31].ID(), 999*time.Millisecond)
	if m.PendingCount() != 7 {
		t.Fatalf("pending %d after re-submit of committed tx, want 7", m.PendingCount())
	}

	// Sustained churn stays bounded.
	for i := 0; i < 10000; i++ {
		m.RecordSubmit(metricsTx(100+i).ID(), time.Duration(i)*time.Millisecond)
	}
	if m.PendingCount() > 8 {
		t.Fatalf("pending %d after churn, want <= 8", m.PendingCount())
	}
}

func TestMetricsEmpty(t *testing.T) {
	m := gpbft.NewMetrics()
	if m.MeanLatency() != 0 || m.MaxLatency() != 0 || m.Quantile(0.5) != 0 {
		t.Fatal("empty metrics must be zero")
	}
	m.ObserveEraSwitch()
	m.ObserveEraSwitch()
	if m.EraSwitches() != 2 {
		t.Fatal("era switch count wrong")
	}
}
