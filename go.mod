module gpbft

go 1.22
