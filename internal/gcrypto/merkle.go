package gcrypto

import (
	"errors"
)

// Merkle trees commit a block to its transaction set. Leaves are hashed
// with a 0x00 domain-separation prefix and interior nodes with 0x01,
// preventing second-preimage attacks that splice subtrees as leaves.
// Odd nodes are promoted (Bitcoin-style duplication is avoided because
// it admits mutation attacks on duplicate leaves).

var (
	// ErrEmptyTree is returned when building a tree over zero leaves.
	ErrEmptyTree = errors.New("gcrypto: merkle tree needs at least one leaf")
	// ErrProofIndex is returned for an out-of-range leaf index.
	ErrProofIndex = errors.New("gcrypto: merkle proof index out of range")
)

var (
	leafPrefix = []byte{0x00}
	nodePrefix = []byte{0x01}
)

// MerkleTree is an immutable hash tree over a list of leaf payloads.
type MerkleTree struct {
	levels [][]Hash // levels[0] = leaf hashes, last level = [root]
}

// hashLeaf computes the domain-separated leaf digest.
func hashLeaf(data []byte) Hash { return HashConcat(leafPrefix, data) }

// hashNode computes the domain-separated interior digest.
func hashNode(l, r Hash) Hash { return HashConcat(nodePrefix, l[:], r[:]) }

// NewMerkleTree builds the tree over the given leaf payloads.
func NewMerkleTree(leaves [][]byte) (*MerkleTree, error) {
	if len(leaves) == 0 {
		return nil, ErrEmptyTree
	}
	level := make([]Hash, len(leaves))
	for i, l := range leaves {
		level[i] = hashLeaf(l)
	}
	t := &MerkleTree{levels: [][]Hash{level}}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // promote odd node
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// MerkleRoot is a convenience that returns just the root of the tree
// over leaves; for zero leaves it returns the zero hash, which is the
// transaction root of an empty block.
func MerkleRoot(leaves [][]byte) Hash {
	if len(leaves) == 0 {
		return Hash{}
	}
	t, err := NewMerkleTree(leaves)
	if err != nil {
		return Hash{}
	}
	return t.Root()
}

// Root returns the tree root.
func (t *MerkleTree) Root() Hash {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Len returns the number of leaves.
func (t *MerkleTree) Len() int { return len(t.levels[0]) }

// ProofStep is one sibling on the path from a leaf to the root.
type ProofStep struct {
	Sibling Hash
	// Left indicates the sibling is the left operand of the parent hash.
	Left bool
}

// Proof is an inclusion proof for a single leaf.
type Proof struct {
	LeafIndex int
	Steps     []ProofStep
}

// Prove returns the inclusion proof for leaf i.
func (t *MerkleTree) Prove(i int) (Proof, error) {
	if i < 0 || i >= t.Len() {
		return Proof{}, ErrProofIndex
	}
	p := Proof{LeafIndex: i}
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		var sib int
		if idx%2 == 0 {
			sib = idx + 1
		} else {
			sib = idx - 1
		}
		if sib < len(level) {
			p.Steps = append(p.Steps, ProofStep{Sibling: level[sib], Left: sib < idx})
		}
		// With odd-node promotion the parent index is always idx/2.
		idx /= 2
	}
	return p, nil
}

// VerifyProof checks that leaf data sits at the proof's position under
// the given root.
func VerifyProof(root Hash, data []byte, p Proof) bool {
	h := hashLeaf(data)
	for _, s := range p.Steps {
		if s.Left {
			h = hashNode(s.Sibling, h)
		} else {
			h = hashNode(h, s.Sibling)
		}
	}
	return h == root
}
