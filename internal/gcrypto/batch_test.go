package gcrypto

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// batchFixture builds n signature checks, all valid.
func batchFixture(t testing.TB, n int) []BatchItem {
	t.Helper()
	items := make([]BatchItem, n)
	for i := range items {
		kp := DeterministicKeyPair(i + 1)
		msg := []byte(fmt.Sprintf("batch message %d", i))
		items[i] = BatchItem{Pub: kp.Public(), Addr: kp.Address(), Msg: msg, Sig: kp.Sign(msg)}
	}
	return items
}

// corrupt returns a copy of items with index i's signature flipped.
func corrupt(items []BatchItem, i int) []BatchItem {
	out := make([]BatchItem, len(items))
	copy(out, items)
	sig := append([]byte(nil), out[i].Sig...)
	sig[0] ^= 0xFF
	out[i].Sig = sig
	return out
}

// assertEquivalent checks VerifyBatch against the serial oracle,
// element for element.
func assertEquivalent(t *testing.T, items []BatchItem) {
	t.Helper()
	got := VerifyBatch(items)
	if len(got) != len(items) {
		t.Fatalf("VerifyBatch returned %d results for %d items", len(got), len(items))
	}
	for i := range items {
		want := Verify(items[i].Pub, items[i].Addr, items[i].Msg, items[i].Sig)
		if (got[i] == nil) != (want == nil) {
			t.Fatalf("index %d: batch=%v serial=%v", i, got[i], want)
		}
		if want != nil && got[i].Error() != want.Error() {
			t.Fatalf("index %d: batch error %q, serial error %q", i, got[i], want)
		}
	}
}

func TestVerifyBatchAllValid(t *testing.T) {
	assertEquivalent(t, batchFixture(t, 32))
}

func TestVerifyBatchAllInvalid(t *testing.T) {
	items := batchFixture(t, 16)
	for i := range items {
		items = corrupt(items, i)
	}
	assertEquivalent(t, items)
	for i, err := range VerifyBatch(items) {
		if !errors.Is(err, ErrBadSignature) {
			t.Fatalf("index %d: want ErrBadSignature, got %v", i, err)
		}
	}
}

// TestVerifyBatchSingleBadEveryPosition plants one bad signature at
// every index in turn and checks only that index is rejected.
func TestVerifyBatchSingleBadEveryPosition(t *testing.T) {
	const n = 12
	base := batchFixture(t, n)
	for bad := 0; bad < n; bad++ {
		items := corrupt(base, bad)
		errs := VerifyBatch(items)
		for i, err := range errs {
			if (err != nil) != (i == bad) {
				t.Fatalf("bad=%d index=%d err=%v", bad, i, err)
			}
		}
		if idx, err := FirstBatchError(errs); idx != bad || err == nil {
			t.Fatalf("FirstBatchError=(%d,%v), want (%d,non-nil)", idx, err, bad)
		}
	}
}

func TestVerifyBatchEmpty(t *testing.T) {
	if got := VerifyBatch(nil); len(got) != 0 {
		t.Fatalf("VerifyBatch(nil) = %v", got)
	}
	if idx, err := FirstBatchError(nil); idx != -1 || err != nil {
		t.Fatalf("FirstBatchError(nil) = (%d, %v)", idx, err)
	}
}

func TestVerifyBatchSingle(t *testing.T) {
	assertEquivalent(t, batchFixture(t, 1))
	assertEquivalent(t, corrupt(batchFixture(t, 1), 0))
}

// TestVerifyBatchLargerThanPool exercises the work-stealing path with
// far more items than pool workers.
func TestVerifyBatchLargerThanPool(t *testing.T) {
	n := 8*runtime.GOMAXPROCS(0) + 7
	items := batchFixture(t, n)
	items = corrupt(items, 0)
	items = corrupt(items, n/2)
	items = corrupt(items, n-1)
	assertEquivalent(t, items)
}

// TestVerifyBatchMixedFailures covers structurally bad items (short
// pubkey, wrong address) alongside signature failures.
func TestVerifyBatchMixedFailures(t *testing.T) {
	items := batchFixture(t, 8)
	items[1].Pub = items[1].Pub[:5]     // bad key size
	items[3].Addr = Address{}           // address/key mismatch
	items[5].Sig = nil                  // empty signature
	items = corrupt(items, 6)           // bad signature bytes
	assertEquivalent(t, items)
}

// TestVerifyBatchSerialSetting pins SetBatchWorkers(1) to the serial
// path and confirms identical results, then restores the default.
func TestVerifyBatchSerialSetting(t *testing.T) {
	prev := SetBatchWorkers(1)
	defer SetBatchWorkers(prev)
	if BatchWorkers() != 1 {
		t.Fatalf("BatchWorkers() = %d after SetBatchWorkers(1)", BatchWorkers())
	}
	items := corrupt(batchFixture(t, 9), 4)
	assertEquivalent(t, items)
}

// TestVerifyBatchConcurrentCallers hammers VerifyBatch from many
// goroutines at once (the pool is shared) under -race.
func TestVerifyBatchConcurrentCallers(t *testing.T) {
	base := batchFixture(t, 24)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			items := corrupt(base, g%len(base))
			for rep := 0; rep < 5; rep++ {
				errs := VerifyBatch(items)
				for i, err := range errs {
					if (err != nil) != (i == g%len(base)) {
						t.Errorf("goroutine %d index %d: %v", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkVerifyBatch(b *testing.B) {
	items := batchFixture(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VerifyBatch(items)
	}
}

func BenchmarkVerifySerialLoop(b *testing.B) {
	items := batchFixture(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range items {
			Verify(items[j].Pub, items[j].Addr, items[j].Msg, items[j].Sig)
		}
	}
}
