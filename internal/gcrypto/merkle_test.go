package gcrypto

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func leavesOf(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("tx-%d", i))
	}
	return out
}

func TestMerkleEmpty(t *testing.T) {
	if _, err := NewMerkleTree(nil); err != ErrEmptyTree {
		t.Fatalf("want ErrEmptyTree, got %v", err)
	}
	if !MerkleRoot(nil).IsZero() {
		t.Fatal("root of empty leaf set must be the zero hash")
	}
}

func TestMerkleSingleLeaf(t *testing.T) {
	tr, err := NewMerkleTree(leavesOf(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len=%d", tr.Len())
	}
	p, err := tr.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 0 {
		t.Fatalf("single leaf proof should be empty, got %d steps", len(p.Steps))
	}
	if !VerifyProof(tr.Root(), []byte("tx-0"), p) {
		t.Fatal("single-leaf proof failed")
	}
}

func TestMerkleProofsAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := leavesOf(n)
		tr, err := NewMerkleTree(leaves)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			p, err := tr.Prove(i)
			if err != nil {
				t.Fatalf("n=%d Prove(%d): %v", n, i, err)
			}
			if !VerifyProof(tr.Root(), leaves[i], p) {
				t.Fatalf("n=%d leaf %d: proof rejected", n, i)
			}
			// Proof must fail for a different payload.
			if VerifyProof(tr.Root(), []byte("forged"), p) {
				t.Fatalf("n=%d leaf %d: forged payload accepted", n, i)
			}
		}
	}
}

func TestMerkleProofIndexErrors(t *testing.T) {
	tr, _ := NewMerkleTree(leavesOf(4))
	if _, err := tr.Prove(-1); err != ErrProofIndex {
		t.Errorf("Prove(-1): %v", err)
	}
	if _, err := tr.Prove(4); err != ErrProofIndex {
		t.Errorf("Prove(4): %v", err)
	}
}

func TestMerkleRootChangesWithAnyLeaf(t *testing.T) {
	base := leavesOf(9)
	root := MerkleRoot(base)
	for i := range base {
		mutated := leavesOf(9)
		mutated[i] = []byte("mutated")
		if MerkleRoot(mutated) == root {
			t.Fatalf("mutating leaf %d did not change root", i)
		}
	}
}

func TestMerkleOrderMatters(t *testing.T) {
	a := MerkleRoot([][]byte{[]byte("x"), []byte("y")})
	b := MerkleRoot([][]byte{[]byte("y"), []byte("x")})
	if a == b {
		t.Fatal("leaf order must affect the root")
	}
}

func TestMerkleDomainSeparation(t *testing.T) {
	// The root of [h(a)||h(b)] as a single leaf must not equal the root
	// of [a, b]: leaf and node hashing are domain separated.
	la, lb := hashLeaf([]byte("a")), hashLeaf([]byte("b"))
	spliced := MerkleRoot([][]byte{append(la[:], lb[:]...)})
	honest := MerkleRoot([][]byte{[]byte("a"), []byte("b")})
	if spliced == honest {
		t.Fatal("second-preimage splice must not reproduce the root")
	}
}

// Property: for random leaf sets, every leaf proof verifies and no
// proof verifies under a different leaf's data.
func TestMerkleProofProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 2
		rng := rand.New(rand.NewSource(seed))
		leaves := make([][]byte, n)
		for i := range leaves {
			b := make([]byte, 8+rng.Intn(24))
			rng.Read(b)
			leaves[i] = b
		}
		tr, err := NewMerkleTree(leaves)
		if err != nil {
			return false
		}
		i := rng.Intn(n)
		j := (i + 1 + rng.Intn(n-1)) % n
		p, err := tr.Prove(i)
		if err != nil {
			return false
		}
		if !VerifyProof(tr.Root(), leaves[i], p) {
			return false
		}
		if string(leaves[i]) != string(leaves[j]) && VerifyProof(tr.Root(), leaves[j], p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
