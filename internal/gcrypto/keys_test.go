package gcrypto

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func TestGenerateKeyPairSignVerify(t *testing.T) {
	kp, err := GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("pre-prepare v=0 n=1")
	sig := kp.Sign(msg)
	if err := Verify(kp.Public(), kp.Address(), msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	kp := DeterministicKeyPair(1)
	sig := kp.Sign([]byte("original"))
	if err := Verify(kp.Public(), kp.Address(), []byte("tampered"), sig); err != ErrBadSignature {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsWrongAddress(t *testing.T) {
	kp := DeterministicKeyPair(1)
	other := DeterministicKeyPair(2)
	msg := []byte("msg")
	sig := kp.Sign(msg)
	if err := Verify(kp.Public(), other.Address(), msg, sig); err == nil {
		t.Fatal("verification must fail when the key does not match the claimed address")
	}
}

func TestVerifyRejectsBadPublicKey(t *testing.T) {
	kp := DeterministicKeyPair(1)
	msg := []byte("msg")
	sig := kp.Sign(msg)
	if err := Verify([]byte{1, 2, 3}, kp.Address(), msg, sig); err != ErrBadPublicKey {
		t.Fatalf("want ErrBadPublicKey, got %v", err)
	}
}

func TestDeterministicKeyPairStable(t *testing.T) {
	a := DeterministicKeyPair(7)
	b := DeterministicKeyPair(7)
	c := DeterministicKeyPair(8)
	if a.Address() != b.Address() {
		t.Fatal("same index must derive the same identity")
	}
	if a.Address() == c.Address() {
		t.Fatal("different indices must derive different identities")
	}
	if !bytes.Equal(a.Public(), b.Public()) {
		t.Fatal("public keys must match for same index")
	}
}

func TestKeyPairFromSeedSize(t *testing.T) {
	if _, err := KeyPairFromSeed([]byte("short")); err == nil {
		t.Fatal("short seed must be rejected")
	}
}

func TestAddressStringParseRoundTrip(t *testing.T) {
	a := DeterministicKeyPair(3).Address()
	parsed, err := ParseAddress(a.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != a {
		t.Fatalf("round trip mismatch: %v vs %v", parsed, a)
	}
}

func TestParseAddressErrors(t *testing.T) {
	for _, bad := range []string{"", "zz", "abcd", "0123456789012345678901234567890123456789ff"} {
		if _, err := ParseAddress(bad); err != ErrBadAddressHex {
			t.Errorf("ParseAddress(%q) err=%v, want ErrBadAddressHex", bad, err)
		}
	}
}

func TestAddressHelpers(t *testing.T) {
	var zero Address
	if !zero.IsZero() {
		t.Error("zero address should report IsZero")
	}
	a := DeterministicKeyPair(1).Address()
	if a.IsZero() {
		t.Error("real address should not be zero")
	}
	if len(a.Short()) != 8 {
		t.Errorf("Short() = %q, want 8 hex chars", a.Short())
	}
	if len(a.Bytes()) != AddressSize {
		t.Errorf("Bytes() length %d", len(a.Bytes()))
	}
	b := DeterministicKeyPair(2).Address()
	if a.Less(b) == b.Less(a) {
		t.Error("Less must order distinct addresses")
	}
}

func TestHashHelpers(t *testing.T) {
	h := HashBytes([]byte("block"))
	if h.IsZero() {
		t.Error("hash of data should not be zero")
	}
	if h != HashConcat([]byte("bl"), []byte("ock")) {
		t.Error("HashConcat must equal HashBytes of the concatenation")
	}
	if len(h.String()) != 64 || len(h.Short()) != 8 {
		t.Error("hex renderings have wrong length")
	}
	if !bytes.Equal(h.Bytes(), h[:]) {
		t.Error("Bytes must copy the digest")
	}
	var zero Hash
	if !zero.IsZero() {
		t.Error("zero hash should report IsZero")
	}
}
