// Package gcrypto provides the cryptographic substrate of the
// blockchain: ed25519 identities, chain addresses, message signing, and
// SHA-256 Merkle trees with inclusion proofs.
//
// The paper's threat model (Section III-A) assumes public-key
// cryptography that "cannot be broken in a certain period" and that
// adversaries "cannot forge messages or tamper with the messages sent
// by others" — i.e. unforgeable signatures, which ed25519 supplies.
package gcrypto

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// AddressSize is the byte length of a chain address (truncated SHA-256
// of the public key, in the style of most account-model chains).
const AddressSize = 20

// Address identifies an account (an IoT device, endorser or client) on
// the chain. It doubles as the CSC address component.
type Address [AddressSize]byte

// Errors returned by key and signature operations.
var (
	ErrBadSignature  = errors.New("gcrypto: signature verification failed")
	ErrBadPublicKey  = errors.New("gcrypto: malformed public key")
	ErrBadAddressHex = errors.New("gcrypto: malformed address hex")
)

// String renders the address as lowercase hex.
func (a Address) String() string { return hex.EncodeToString(a[:]) }

// Short returns the first four bytes of the address in hex, for logs.
func (a Address) Short() string { return hex.EncodeToString(a[:4]) }

// IsZero reports whether the address is all zeroes (no account).
func (a Address) IsZero() bool { return a == Address{} }

// Bytes returns a copy of the address bytes.
func (a Address) Bytes() []byte {
	b := make([]byte, AddressSize)
	copy(b, a[:])
	return b
}

// Less imposes a total order on addresses (used for deterministic
// committee ordering).
func (a Address) Less(b Address) bool { return bytes.Compare(a[:], b[:]) < 0 }

// ParseAddress decodes the hex form produced by String.
func ParseAddress(s string) (Address, error) {
	var a Address
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != AddressSize {
		return a, ErrBadAddressHex
	}
	copy(a[:], b)
	return a, nil
}

// PublicKey is an ed25519 verification key.
type PublicKey = ed25519.PublicKey

// KeyPair is a node identity: an ed25519 signing key plus its derived
// chain address.
type KeyPair struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
	addr Address
}

// GenerateKeyPair creates a new identity from the given entropy source
// (crypto/rand.Reader in production, a seeded reader in simulations so
// experiments are reproducible).
func GenerateKeyPair(rand io.Reader) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("gcrypto: generate key: %w", err)
	}
	return &KeyPair{pub: pub, priv: priv, addr: AddressOf(pub)}, nil
}

// KeyPairFromSeed derives a deterministic identity from a 32-byte seed.
func KeyPairFromSeed(seed []byte) (*KeyPair, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("gcrypto: seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)
	return &KeyPair{pub: pub, priv: priv, addr: AddressOf(pub)}, nil
}

// DeterministicKeyPair derives the identity of simulated node i; it is
// the standard way experiments mint identities.
func DeterministicKeyPair(i int) *KeyPair {
	var seed [32]byte
	h := sha256.Sum256([]byte(fmt.Sprintf("gpbft-sim-node-%d", i)))
	copy(seed[:], h[:])
	kp, err := KeyPairFromSeed(seed[:])
	if err != nil {
		panic(err) // unreachable: seed size is fixed
	}
	return kp
}

// Public returns the verification key.
func (k *KeyPair) Public() PublicKey { return k.pub }

// Address returns the derived chain address.
func (k *KeyPair) Address() Address { return k.addr }

// Sign signs msg and returns the 64-byte ed25519 signature.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.priv, msg)
}

// AddressOf derives the chain address of a public key.
func AddressOf(pub PublicKey) Address {
	var a Address
	h := sha256.Sum256(pub)
	copy(a[:], h[:AddressSize])
	return a
}

// verifyEnabled gates actual ed25519 verification. Large simulation
// sweeps disable it: the discrete-event simulator already charges
// message-processing cost explicitly (ProcTime includes crypto), so
// re-executing the arithmetic only burns wall-clock time without
// changing any simulated quantity. All tests and real transports keep
// it on (the default).
var verifyEnabled atomic.Bool

func init() { verifyEnabled.Store(true) }

// SetVerification toggles real signature verification; returns the
// previous setting.
func SetVerification(on bool) bool { return verifyEnabled.Swap(on) }

// VerificationEnabled reports whether real verification is active.
func VerificationEnabled() bool { return verifyEnabled.Load() }

// Verify checks sig over msg against pub, also confirming that pub
// hashes to addr (binding signature, key and account).
func Verify(pub PublicKey, addr Address, msg, sig []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return ErrBadPublicKey
	}
	if AddressOf(pub) != addr {
		return fmt.Errorf("gcrypto: public key does not match address %s", addr.Short())
	}
	if !verifyEnabled.Load() {
		if len(sig) != ed25519.SignatureSize {
			return ErrBadSignature
		}
		return nil
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// Hash is a SHA-256 digest.
type Hash [sha256.Size]byte

// HashBytes digests b.
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// HashConcat digests the concatenation of the given byte slices.
func HashConcat(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns the first four bytes in hex.
func (h Hash) Short() string { return hex.EncodeToString(h[:4]) }

// IsZero reports whether the hash is all zeroes.
func (h Hash) IsZero() bool { return h == Hash{} }

// Bytes returns a copy of the digest.
func (h Hash) Bytes() []byte {
	b := make([]byte, len(h))
	copy(b, h[:])
	return b
}
