package gcrypto

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Batch verification: the consensus hot path accumulates signatures in
// slices (a block's transactions, a sync response's certificates, a
// backlog of votes) and the serial loop used to check them one by one
// on the consensus goroutine. VerifyBatch fans the checks out over a
// persistent worker pool sized to the machine, while returning
// per-index results so callers keep byte-exact accept/reject semantics
// with the serial path: VerifyBatch(items)[i] is always identical to
// Verify(items[i]...).

// BatchItem is one signature check: the same four arguments Verify
// takes.
type BatchItem struct {
	Pub  PublicKey
	Addr Address
	Msg  []byte
	Sig  []byte
}

// minParallelBatch is the smallest batch worth fanning out; below it
// the scheduling overhead exceeds the ~50µs an ed25519 check costs.
const minParallelBatch = 4

// batchWorkers is the configured pool width; 0 selects GOMAXPROCS.
var batchWorkers atomic.Int32

// SetBatchWorkers sets the verification pool width (0 = GOMAXPROCS,
// 1 = serial) and returns the previous setting. The serial setting is
// the ablation baseline benchmarks compare against.
func SetBatchWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(batchWorkers.Swap(int32(n)))
}

// BatchWorkers reports the effective pool width.
func BatchWorkers() int {
	if n := int(batchWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// batchJob is one contiguous slice of a batch assigned to a worker.
type batchJob struct {
	items []BatchItem
	errs  []error
	next  *atomic.Int64 // shared work-stealing cursor over the batch
	wg    *sync.WaitGroup
}

// verifyPool is the shared worker pool. Workers are started lazily on
// the first parallel batch and live for the process lifetime; an idle
// pool costs only parked goroutines.
var (
	poolOnce sync.Once
	poolJobs chan batchJob
)

func startPool() {
	poolJobs = make(chan batchJob)
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		go func() {
			for job := range poolJobs {
				runBatchJob(job)
			}
		}()
	}
}

func runBatchJob(job batchJob) {
	defer job.wg.Done()
	for {
		i := int(job.next.Add(1)) - 1
		if i >= len(job.items) {
			return
		}
		it := &job.items[i]
		job.errs[i] = Verify(it.Pub, it.Addr, it.Msg, it.Sig)
	}
}

// VerifyBatch verifies every item and returns one error slot per index
// (nil = accepted). The result is element-for-element identical to
// calling Verify serially; only the wall-clock cost changes. Small
// batches and the serial setting bypass the pool entirely.
func VerifyBatch(items []BatchItem) []error {
	errs := make([]error, len(items))
	workers := BatchWorkers()
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 || len(items) < minParallelBatch {
		for i := range items {
			errs[i] = Verify(items[i].Pub, items[i].Addr, items[i].Msg, items[i].Sig)
		}
		return errs
	}
	poolOnce.Do(startPool)
	var next atomic.Int64
	var wg sync.WaitGroup
	job := batchJob{items: items, errs: errs, next: &next, wg: &wg}
	// Hand the same work-stealing job to `workers` pool slots; if the
	// pool is busy (another batch in flight) the submitting goroutine
	// steals work itself so a batch can never deadlock behind another.
	for i := 0; i < workers-1; i++ {
		wg.Add(1)
		select {
		case poolJobs <- job:
		default:
			wg.Done()
		}
	}
	// The caller always participates: it is already running and hot.
	wg.Add(1)
	runBatchJob(job)
	wg.Wait()
	return errs
}

// FirstBatchError scans per-index results and returns the lowest
// failing index and its error, or (-1, nil) when all passed — the
// shape serial loops that stop at the first failure need.
func FirstBatchError(errs []error) (int, error) {
	for i, err := range errs {
		if err != nil {
			return i, err
		}
	}
	return -1, nil
}
