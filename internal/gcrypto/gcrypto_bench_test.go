package gcrypto

import (
	"fmt"
	"testing"
)

func BenchmarkSign(b *testing.B) {
	kp := DeterministicKeyPair(1)
	msg := []byte("pre-prepare era=1 view=0 seq=42")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = kp.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	kp := DeterministicKeyPair(1)
	msg := []byte("pre-prepare era=1 view=0 seq=42")
	sig := kp.Sign(msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Verify(kp.Public(), kp.Address(), msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerkleBuild(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("leaves-%d", n), func(b *testing.B) {
			leaves := make([][]byte, n)
			for i := range leaves {
				leaves[i] = []byte(fmt.Sprintf("tx-%d-payload-material", i))
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewMerkleTree(leaves); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMerkleProveVerify(b *testing.B) {
	leaves := make([][]byte, 128)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("tx-%d", i))
	}
	tr, _ := NewMerkleTree(leaves)
	root := tr.Root()
	for i := 0; i < b.N; i++ {
		p, err := tr.Prove(i % 128)
		if err != nil {
			b.Fatal(err)
		}
		if !VerifyProof(root, leaves[i%128], p) {
			b.Fatal("proof rejected")
		}
	}
}
