package pbft

import (
	"time"

	"gpbft/internal/codec"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// TxRejected is the admission-control reply to a Request: the receiving
// node refused the transaction and tells the submitter why and when a
// retry is worth attempting. The envelope seal authenticates the
// rejecting node, so a client can distinguish a genuine back-off signal
// from an attacker trying to silence it.
type TxRejected struct {
	// TxID is the digest of the rejected transaction.
	TxID gcrypto.Hash
	// Reason classifies the rejection.
	Reason types.RejectReason
	// RetryAfter hints how long the submitter should wait before
	// retrying. Zero means "use your own backoff".
	RetryAfter time.Duration
}

// Kind implements consensus.Payload.
func (*TxRejected) Kind() consensus.MsgKind { return consensus.KindTxReject }

// MarshalCanonical implements codec.Marshaler.
func (m *TxRejected) MarshalCanonical(w *codec.Writer) {
	w.Raw(m.TxID[:])
	w.Uint8(uint8(m.Reason))
	w.Int64(int64(m.RetryAfter))
}

// UnmarshalCanonical decodes the payload.
func (m *TxRejected) UnmarshalCanonical(r *codec.Reader) error {
	r.RawInto(m.TxID[:])
	m.Reason = types.RejectReason(r.Uint8())
	m.RetryAfter = time.Duration(r.Int64())
	return r.Err()
}
