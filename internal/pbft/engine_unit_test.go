package pbft_test

import (
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/types"
)

// unitRig drives ONE engine directly with hand-crafted peer envelopes.
type unitRig struct {
	t       *testing.T
	genesis *ledger.Genesis
	com     *consensus.Committee
	keys    []*gcrypto.KeyPair // committee keys, index-aligned with com order
	self    int                // which committee member the engine embodies
	eng     *pbft.Engine
	app     *runtime.App
}

// newUnitRig builds a 4-member committee and an engine for the member
// at sorted position selfPos.
func newUnitRig(t *testing.T, selfPos int) *unitRig {
	t.Helper()
	g := &ledger.Genesis{ChainID: "unit", Timestamp: epoch, Policy: ledger.DefaultPolicy()}
	raw := make(map[gcrypto.Address]*gcrypto.KeyPair)
	for i := 0; i < 4; i++ {
		kp := gcrypto.DeterministicKeyPair(i)
		raw[kp.Address()] = kp
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: kp.Address(), PubKey: kp.Public(),
			Geohash: geo.MustEncode(geo.Point{Lng: 114.18, Lat: 22.3}, geo.CSCPrecision),
		})
	}
	com, err := consensus.NewCommittee(g.Endorsers)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]*gcrypto.KeyPair, 4)
	for i := 0; i < 4; i++ {
		keys[i] = raw[com.Member(i).Address]
	}
	chain, err := ledger.NewChain(g)
	if err != nil {
		t.Fatal(err)
	}
	app := runtime.NewApp(chain, runtime.NewMempool(0), keys[selfPos].Address(), epoch, 8)
	eng, err := pbft.New(pbft.Config{
		Committee: com, Key: keys[selfPos], App: app,
		Timers: consensus.NewTimerAllocator(), StartHeight: 1,
		ViewChangeTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &unitRig{t: t, genesis: g, com: com, keys: keys, self: selfPos, eng: eng, app: app}
}

// primaryPos returns the committee position of view 0's primary.
func (r *unitRig) primaryPos() int {
	return r.com.IndexOf(r.com.Primary(0))
}

// proposal builds a valid height-1 block proposed by view-0's primary.
func (r *unitRig) proposal(txs ...types.Transaction) (*types.Block, *consensus.Envelope) {
	chain, _ := ledger.NewChain(r.genesis)
	b := types.NewBlock(types.BlockHeader{
		Height: 1, Era: 0, View: 0, Seq: 1,
		PrevHash:  chain.Head().Hash(),
		Proposer:  r.com.Primary(0),
		Timestamp: epoch.Add(time.Second),
	}, txs)
	pp := &pbft.PrePrepare{Era: 0, View: 0, Seq: 1, Digest: b.Hash(), Block: *b}
	return b, consensus.Seal(r.keys[r.primaryPos()], pp)
}

// prepareFrom seals a prepare for digest from committee position i.
func (r *unitRig) prepareFrom(i int, digest gcrypto.Hash) *consensus.Envelope {
	return consensus.Seal(r.keys[i], &pbft.Prepare{Era: 0, View: 0, Seq: 1, Digest: digest})
}

// commitFrom seals a commit (with valid CertSig) from position i.
func (r *unitRig) commitFrom(i int, digest gcrypto.Hash) *consensus.Envelope {
	return consensus.Seal(r.keys[i], &pbft.Commit{
		Era: 0, View: 0, Seq: 1, Digest: digest,
		CertSig: r.keys[i].Sign(types.VoteDigest(digest, 0, 0)),
	})
}

// hasKind reports whether the actions contain a broadcast of `kind`.
func hasKind(acts []consensus.Action, kind consensus.MsgKind) bool {
	for _, a := range acts {
		switch v := a.(type) {
		case consensus.Broadcast:
			if v.Env.MsgKind == kind {
				return true
			}
		case consensus.Send:
			if v.Env.MsgKind == kind {
				return true
			}
		}
	}
	return false
}

// commits extracts CommitBlock actions.
func commitsOf(acts []consensus.Action) []*types.Block {
	var out []*types.Block
	for _, a := range acts {
		if cb, ok := a.(consensus.CommitBlock); ok {
			out = append(out, cb.Block)
		}
	}
	return out
}

// backupPos returns a committee position that is not the primary and
// not `exclude`.
func (r *unitRig) backupPos(exclude int) int {
	for i := 0; i < 4; i++ {
		if i != r.primaryPos() && i != exclude {
			return i
		}
	}
	panic("unreachable")
}

func TestBackupThreePhaseFlow(t *testing.T) {
	// Engine embodies a backup; feed it pre-prepare, prepares, commits
	// from the three other members and watch it execute.
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newUnitRig(t, selfPos)
	r.eng.Init(0)

	tx := clientTx(0, 1)
	block, ppEnv := r.proposal(*tx)
	digest := block.Hash()

	acts := r.eng.OnEnvelope(0, ppEnv)
	if !hasKind(acts, consensus.KindPrepare) {
		t.Fatal("backup must multicast prepare after accepting pre-prepare")
	}
	// Two more prepares (from the two other backups) complete 2f=2
	// prepares plus the pre-prepare.
	var all []consensus.Action
	for i := 0; i < 4; i++ {
		if i == selfPos || i == prim {
			continue
		}
		all = append(all, r.eng.OnEnvelope(0, r.prepareFrom(i, digest))...)
	}
	if !hasKind(all, consensus.KindCommit) {
		t.Fatal("backup must multicast commit once prepared")
	}
	// Commits: own (implicit) + two others = 3 = quorum.
	var done []consensus.Action
	for i := 0; i < 4; i++ {
		if i == selfPos {
			continue
		}
		done = append(done, r.eng.OnEnvelope(0, r.commitFrom(i, digest))...)
		if len(commitsOf(done)) > 0 {
			break
		}
	}
	blocks := commitsOf(done)
	if len(blocks) != 1 || blocks[0].Hash() != digest {
		t.Fatal("backup did not execute the committed block")
	}
	if blocks[0].Cert == nil {
		t.Fatal("executed block missing certificate")
	}
	if err := blocks[0].Cert.Verify(digest, r.com.Keys(), r.com.Quorum()); err != nil {
		t.Fatalf("certificate invalid: %v", err)
	}
	if r.eng.NextSeq() != 2 {
		t.Fatalf("NextSeq=%d", r.eng.NextSeq())
	}
}

func TestPrePrepareRejections(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newUnitRig(t, selfPos)
	r.eng.Init(0)

	tx := clientTx(0, 1)
	block, _ := r.proposal(*tx)

	// Pre-prepare from a non-primary member is ignored.
	bad := consensus.Seal(r.keys[r.backupPos(selfPos)], &pbft.PrePrepare{
		Era: 0, View: 0, Seq: 1, Digest: block.Hash(), Block: *block,
	})
	if acts := r.eng.OnEnvelope(0, bad); hasKind(acts, consensus.KindPrepare) {
		t.Fatal("pre-prepare from non-primary must be ignored")
	}

	// Digest mismatch is ignored.
	badDigest := consensus.Seal(r.keys[prim], &pbft.PrePrepare{
		Era: 0, View: 0, Seq: 1, Digest: gcrypto.HashBytes([]byte("wrong")), Block: *block,
	})
	if acts := r.eng.OnEnvelope(0, badDigest); hasKind(acts, consensus.KindPrepare) {
		t.Fatal("digest mismatch must be ignored")
	}

	// Wrong era is ignored.
	wrongEra := consensus.Seal(r.keys[prim], &pbft.PrePrepare{
		Era: 9, View: 0, Seq: 1, Digest: block.Hash(), Block: *block,
	})
	if acts := r.eng.OnEnvelope(0, wrongEra); hasKind(acts, consensus.KindPrepare) {
		t.Fatal("wrong era must be ignored")
	}

	// Seq far beyond the watermark window is ignored.
	far := *block
	far.Header.Seq = 1000
	farEnv := consensus.Seal(r.keys[prim], &pbft.PrePrepare{
		Era: 0, View: 0, Seq: 1000, Digest: far.Hash(), Block: far,
	})
	if acts := r.eng.OnEnvelope(0, farEnv); hasKind(acts, consensus.KindPrepare) {
		t.Fatal("out-of-window seq must be ignored")
	}
}

func TestEquivocationSecondProposalIgnored(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newUnitRig(t, selfPos)
	r.eng.Init(0)

	b1, pp1 := r.proposal(*clientTx(0, 1))
	b2, pp2 := r.proposal(*clientTx(1, 2))
	if b1.Hash() == b2.Hash() {
		t.Fatal("test blocks must differ")
	}
	if acts := r.eng.OnEnvelope(0, pp1); !hasKind(acts, consensus.KindPrepare) {
		t.Fatal("first proposal should be accepted")
	}
	// The equivocating second proposal for the same (view, seq) must
	// not produce a second prepare.
	if acts := r.eng.OnEnvelope(0, pp2); hasKind(acts, consensus.KindPrepare) {
		t.Fatal("equivocating proposal must be refused")
	}
}

func TestCommitWithInvalidCertSigDoesNotCount(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newUnitRig(t, selfPos)
	r.eng.Init(0)

	block, ppEnv := r.proposal(*clientTx(0, 1))
	digest := block.Hash()
	r.eng.OnEnvelope(0, ppEnv)
	for i := 0; i < 4; i++ {
		if i != selfPos && i != prim {
			r.eng.OnEnvelope(0, r.prepareFrom(i, digest))
		}
	}
	// One Byzantine member (f=1) sends a commit with a garbage
	// certificate signature, and one honest member sends a valid one:
	// together with our own vote that is 3 commit MESSAGES but only 2
	// valid votes — the engine must NOT execute yet.
	byz := r.backupPos(selfPos)
	bad := consensus.Seal(r.keys[byz], &pbft.Commit{
		Era: 0, View: 0, Seq: 1, Digest: digest, CertSig: []byte("garbage"),
	})
	var acts []consensus.Action
	acts = append(acts, r.eng.OnEnvelope(0, bad)...)
	honest1 := -1
	for i := 0; i < 4; i++ {
		if i != selfPos && i != byz {
			honest1 = i
			break
		}
	}
	acts = append(acts, r.eng.OnEnvelope(0, r.commitFrom(honest1, digest))...)
	if len(commitsOf(acts)) != 0 {
		t.Fatal("garbage cert signature counted toward commit quorum")
	}
	// A second honest valid commit completes the quorum of VALID votes.
	var done []consensus.Action
	for i := 0; i < 4; i++ {
		if i != selfPos && i != byz && i != honest1 {
			done = append(done, r.eng.OnEnvelope(0, r.commitFrom(i, digest))...)
		}
	}
	blocks := commitsOf(done)
	if len(blocks) != 1 {
		t.Fatal("valid commits must execute the block")
	}
	// And the assembled certificate verifies despite the Byzantine vote.
	if err := blocks[0].Cert.Verify(digest, r.com.Keys(), r.com.Quorum()); err != nil {
		t.Fatalf("certificate invalid: %v", err)
	}
}

func TestDuplicateMessagesIdempotent(t *testing.T) {
	// The engine embodies the PRIMARY: its own pre-prepare stands in
	// for its prepare, so it needs 2f = 2 prepares from DISTINCT
	// backups. One backup repeating its prepare five times must not
	// suffice.
	prim := newUnitRig(t, 0).primaryPos()
	r := newUnitRig(t, prim)
	r.eng.Init(0)

	tx := clientTx(0, 1)
	if err := r.app.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	acts := r.eng.OnRequest(0, tx)
	if !hasKind(acts, consensus.KindPrePrepare) {
		t.Fatal("primary must propose")
	}
	// Recover the digest of its own proposal.
	var digest gcrypto.Hash
	for _, a := range acts {
		if bc, ok := a.(consensus.Broadcast); ok && bc.Env.MsgKind == consensus.KindPrePrepare {
			var pp pbft.PrePrepare
			if err := consensus.Open(bc.Env, consensus.KindPrePrepare, &pp); err != nil {
				t.Fatal(err)
			}
			digest = pp.Digest
		}
	}
	other := r.backupPos(prim)
	var dupActs []consensus.Action
	for k := 0; k < 5; k++ {
		dupActs = append(dupActs, r.eng.OnEnvelope(0, r.prepareFrom(other, digest))...)
	}
	if hasKind(dupActs, consensus.KindCommit) {
		t.Fatal("duplicate prepares from one backup must not reach prepared state")
	}
	// A second distinct backup completes it.
	other2 := -1
	for i := 0; i < 4; i++ {
		if i != prim && i != other {
			other2 = i
			break
		}
	}
	if acts := r.eng.OnEnvelope(0, r.prepareFrom(other2, digest)); !hasKind(acts, consensus.KindCommit) {
		t.Fatal("two distinct prepares must reach prepared state")
	}
}

func TestProgressTimerStartsViewChange(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newUnitRig(t, selfPos)
	r.eng.Init(0)

	// A request arrives (outstanding work), arming the progress timer.
	// The runtime adds it to the pool before informing the engine.
	tx := clientTx(0, 1)
	if err := r.app.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	acts := r.eng.OnRequest(0, tx)
	var timerID consensus.TimerID
	for _, a := range acts {
		if st, ok := a.(consensus.StartTimer); ok {
			timerID = st.ID
		}
	}
	if timerID == 0 {
		t.Fatal("progress timer not armed on outstanding work")
	}
	// The timer fires with no progress: the backup must broadcast a
	// view change for view 1.
	vcActs := r.eng.OnTimer(time.Second, timerID)
	if !hasKind(vcActs, consensus.KindViewChange) {
		t.Fatal("progress timeout must start a view change")
	}
	if !r.eng.InViewChange() {
		t.Fatal("engine must be in view change")
	}
}

func TestNewViewFromQuorumOfViewChanges(t *testing.T) {
	// The engine embodies view 1's primary; feed it 2f+1 view changes
	// and it must broadcast a NewView and enter view 1.
	probe := newUnitRig(t, 0)
	v1prim := probe.com.IndexOf(probe.com.Primary(1))
	r := newUnitRig(t, v1prim)
	r.eng.Init(0)

	var acts []consensus.Action
	for i := 0; i < 4; i++ {
		if i == v1prim {
			continue
		}
		vc := consensus.Seal(r.keys[i], &pbft.ViewChange{Era: 0, NewView: 1, LastStable: 0})
		acts = append(acts, r.eng.OnEnvelope(0, vc)...)
	}
	if !hasKind(acts, consensus.KindNewView) {
		t.Fatal("new primary must broadcast NewView at 2f+1 view changes")
	}
	if r.eng.View() != 1 {
		t.Fatalf("view=%d, want 1", r.eng.View())
	}
	if r.eng.InViewChange() {
		t.Fatal("view change must be complete")
	}
	if r.eng.CompletedViewChanges() != 1 {
		t.Fatal("completed view change not counted")
	}
}

func TestBackupAdoptsNewView(t *testing.T) {
	probe := newUnitRig(t, 0)
	v1prim := probe.com.IndexOf(probe.com.Primary(1))
	backup := (v1prim + 1) % 4
	r := newUnitRig(t, backup)
	r.eng.Init(0)

	// Assemble a NewView with 2f+1 view-change envelopes.
	var vcEnvs [][]byte
	for i := 0; i < 4; i++ {
		if i == backup {
			continue
		}
		vc := consensus.Seal(r.keys[i], &pbft.ViewChange{Era: 0, NewView: 1, LastStable: 0})
		vcEnvs = append(vcEnvs, consensus.EncodeEnvelope(vc))
	}
	nv := consensus.Seal(r.keys[v1prim], &pbft.NewView{Era: 0, View: 1, ViewChangeEnvs: vcEnvs})
	r.eng.OnEnvelope(0, nv)
	if r.eng.View() != 1 {
		t.Fatalf("backup view=%d, want 1", r.eng.View())
	}

	// A NewView from the WRONG sender must be ignored.
	r2 := newUnitRig(t, backup)
	r2.eng.Init(0)
	wrong := consensus.Seal(r2.keys[backup], &pbft.NewView{Era: 0, View: 1, ViewChangeEnvs: vcEnvs})
	r2.eng.OnEnvelope(0, wrong)
	if r2.eng.View() != 0 {
		t.Fatal("NewView from non-primary must be ignored")
	}

	// A NewView without quorum must be ignored.
	r3 := newUnitRig(t, backup)
	r3.eng.Init(0)
	short := consensus.Seal(r3.keys[v1prim], &pbft.NewView{Era: 0, View: 1, ViewChangeEnvs: vcEnvs[:1]})
	r3.eng.OnEnvelope(0, short)
	if r3.eng.View() != 0 {
		t.Fatal("NewView without quorum must be ignored")
	}
}

// TestStaleViewChangeGetsNewViewCert covers the crash-restart rejoin
// path: a replica that restarts at view 0 while the committee moved on
// petitions for views everyone else has already left, and those
// petitions are silently stale. The fix is that any replica holding
// the NewView certificate of its current view retransmits it in reply
// — the revenant verifies the 2f+1 certificate and jumps straight to
// the committee's view.
func TestStaleViewChangeGetsNewViewCert(t *testing.T) {
	probe := newUnitRig(t, 0)
	v1prim := probe.com.IndexOf(probe.com.Primary(1))
	r := newUnitRig(t, v1prim)
	r.eng.Init(0)

	// Drive the engine into view 1 as its primary via 2f+1 view changes.
	for i := 0; i < 4; i++ {
		if i == v1prim {
			continue
		}
		vc := consensus.Seal(r.keys[i], &pbft.ViewChange{Era: 0, NewView: 1, LastStable: 0})
		r.eng.OnEnvelope(0, vc)
	}
	if r.eng.View() != 1 {
		t.Fatalf("setup: view=%d, want 1", r.eng.View())
	}

	// A revenant still at view 0 petitions for view 1 again — stale from
	// this replica's perspective. The reply must be the NewView cert,
	// addressed to the petitioner.
	reven := (v1prim + 1) % 4
	stale := consensus.Seal(r.keys[reven], &pbft.ViewChange{Era: 0, NewView: 1, LastStable: 0})
	var cert *consensus.Envelope
	for _, a := range r.eng.OnEnvelope(time.Second, stale) {
		if s, ok := a.(consensus.Send); ok && s.Env.MsgKind == consensus.KindNewView && s.To == r.keys[reven].Address() {
			cert = s.Env
		}
	}
	if cert == nil {
		t.Fatal("stale view change must be answered with the current NewView certificate")
	}

	// The revenant verifies the certificate and joins view 1 directly.
	rv := newUnitRig(t, reven)
	rv.eng.Init(0)
	rv.eng.OnEnvelope(time.Second, cert)
	if rv.eng.View() != 1 {
		t.Fatalf("revenant view=%d after certificate, want 1", rv.eng.View())
	}

	// A backup that adopted the view through the certificate serves it
	// onward too — rejoin does not depend on reaching the primary.
	stale2 := consensus.Seal(rv.keys[v1prim], &pbft.ViewChange{Era: 0, NewView: 1, LastStable: 0})
	if acts := rv.eng.OnEnvelope(2*time.Second, stale2); !hasKind(acts, consensus.KindNewView) {
		t.Fatal("certificate-adopting backup must also answer stale view changes")
	}
}

func TestJoinRuleFPlusOne(t *testing.T) {
	// f+1 = 2 view changes for a higher view drag a quiet backup in.
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newUnitRig(t, selfPos)
	r.eng.Init(0)

	i1 := r.backupPos(selfPos)
	var acts []consensus.Action
	vc1 := consensus.Seal(r.keys[i1], &pbft.ViewChange{Era: 0, NewView: 2, LastStable: 0})
	acts = append(acts, r.eng.OnEnvelope(0, vc1)...)
	if r.eng.InViewChange() {
		t.Fatal("one view change must not trigger the join rule")
	}
	vc2 := consensus.Seal(r.keys[prim], &pbft.ViewChange{Era: 0, NewView: 2, LastStable: 0})
	acts = append(acts, r.eng.OnEnvelope(0, vc2)...)
	if !r.eng.InViewChange() {
		t.Fatal("f+1 view changes must trigger the join rule")
	}
	if !hasKind(acts, consensus.KindViewChange) {
		t.Fatal("joining must broadcast our own view change")
	}
}

func TestAdvanceToSkipsSyncedHeights(t *testing.T) {
	r := newUnitRig(t, 0)
	r.eng.Init(0)
	r.eng.AdvanceTo(0, 5)
	if r.eng.NextSeq() != 6 {
		t.Fatalf("NextSeq=%d after AdvanceTo(5)", r.eng.NextSeq())
	}
	if r.eng.LowWater() != 5 {
		t.Fatalf("LowWater=%d", r.eng.LowWater())
	}
	// Advancing backwards is a no-op.
	r.eng.AdvanceTo(0, 2)
	if r.eng.NextSeq() != 6 {
		t.Fatal("AdvanceTo must never regress")
	}
}
