// Package pbft implements Practical Byzantine Fault Tolerance (Castro
// & Liskov, OSDI '99) as an event-driven engine: the three normal-case
// phases (pre-prepare, prepare, commit), checkpointing with watermarks,
// and view change with new-view certificates. It is both the paper's
// comparison baseline and the intra-era consensus core of G-PBFT
// ("each era is an intact PBFT algorithm", Section III-E).
//
// Simplifications relative to the original, chosen to match the
// chain-of-blocks setting: the sequence number equals the block height,
// and up to MaxInFlight proposals run their phases concurrently inside
// the watermark window — each block built on its in-flight predecessor
// so the window forms a hash chain, commits gated on the parent slot
// being prepared, and execution streaming strictly in sequence order.
// Requests are transactions; replies
// are implicit — a client observes its transaction in a committed
// block, which is exactly how the paper measures consensus latency
// ("from the time when a transaction is sent to an endorser to the
// time when the transaction is written to the ledger").
package pbft

import (
	"gpbft/internal/codec"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// Request carries a client transaction to an endorser (and between
// endorsers, when a backup forwards it to the primary). The client's
// own signature lives inside the transaction; the envelope seal
// authenticates the forwarder.
type Request struct {
	Tx types.Transaction
}

// Kind implements consensus.Payload.
func (*Request) Kind() consensus.MsgKind { return consensus.KindRequest }

// MarshalCanonical implements codec.Marshaler.
func (m *Request) MarshalCanonical(w *codec.Writer) {
	m.Tx.MarshalCanonical(w)
}

// UnmarshalCanonical decodes the payload.
func (m *Request) UnmarshalCanonical(r *codec.Reader) error {
	return m.Tx.UnmarshalCanonical(r)
}

// PrePrepare is the primary's proposal for (era, view, seq): the full
// block piggybacked with its digest.
type PrePrepare struct {
	Era    uint64
	View   uint64
	Seq    uint64
	Digest gcrypto.Hash
	Block  types.Block
}

// Kind implements consensus.Payload.
func (*PrePrepare) Kind() consensus.MsgKind { return consensus.KindPrePrepare }

// MarshalCanonical implements codec.Marshaler.
func (m *PrePrepare) MarshalCanonical(w *codec.Writer) {
	w.Uint64(m.Era)
	w.Uint64(m.View)
	w.Uint64(m.Seq)
	w.Raw(m.Digest[:])
	m.Block.MarshalCanonical(w)
}

// UnmarshalCanonical decodes the payload.
func (m *PrePrepare) UnmarshalCanonical(r *codec.Reader) error {
	m.Era = r.Uint64()
	m.View = r.Uint64()
	m.Seq = r.Uint64()
	r.RawInto(m.Digest[:])
	return m.Block.UnmarshalCanonical(r)
}

// Prepare is a backup's agreement to the proposal digest.
type Prepare struct {
	Era    uint64
	View   uint64
	Seq    uint64
	Digest gcrypto.Hash
}

// Kind implements consensus.Payload.
func (*Prepare) Kind() consensus.MsgKind { return consensus.KindPrepare }

// MarshalCanonical implements codec.Marshaler.
func (m *Prepare) MarshalCanonical(w *codec.Writer) {
	w.Uint64(m.Era)
	w.Uint64(m.View)
	w.Uint64(m.Seq)
	w.Raw(m.Digest[:])
}

// UnmarshalCanonical decodes the payload.
func (m *Prepare) UnmarshalCanonical(r *codec.Reader) error {
	m.Era = r.Uint64()
	m.View = r.Uint64()
	m.Seq = r.Uint64()
	r.RawInto(m.Digest[:])
	return r.Err()
}

// Commit is a replica's commit vote. CertSig additionally signs the
// types.VoteDigest of the block so commits double as certificate votes
// that third parties (clients, late joiners) can verify on the block.
type Commit struct {
	Era     uint64
	View    uint64
	Seq     uint64
	Digest  gcrypto.Hash
	CertSig []byte
}

// Kind implements consensus.Payload.
func (*Commit) Kind() consensus.MsgKind { return consensus.KindCommit }

// MarshalCanonical implements codec.Marshaler.
func (m *Commit) MarshalCanonical(w *codec.Writer) {
	w.Uint64(m.Era)
	w.Uint64(m.View)
	w.Uint64(m.Seq)
	w.Raw(m.Digest[:])
	w.WriteBytes(m.CertSig)
}

// UnmarshalCanonical decodes the payload.
func (m *Commit) UnmarshalCanonical(r *codec.Reader) error {
	m.Era = r.Uint64()
	m.View = r.Uint64()
	m.Seq = r.Uint64()
	r.RawInto(m.Digest[:])
	m.CertSig = r.ReadBytes()
	return r.Err()
}

// Checkpoint attests that the replica executed through Seq with the
// given block digest; 2f+1 matching checkpoints form a stable
// checkpoint and let replicas garbage-collect their logs.
type Checkpoint struct {
	Era    uint64
	Seq    uint64
	Digest gcrypto.Hash
}

// Kind implements consensus.Payload.
func (*Checkpoint) Kind() consensus.MsgKind { return consensus.KindCheckpoint }

// MarshalCanonical implements codec.Marshaler.
func (m *Checkpoint) MarshalCanonical(w *codec.Writer) {
	w.Uint64(m.Era)
	w.Uint64(m.Seq)
	w.Raw(m.Digest[:])
}

// UnmarshalCanonical decodes the payload.
func (m *Checkpoint) UnmarshalCanonical(r *codec.Reader) error {
	m.Era = r.Uint64()
	m.Seq = r.Uint64()
	r.RawInto(m.Digest[:])
	return r.Err()
}

// PreparedProof shows that a proposal reached prepared state: the
// pre-prepare envelope plus 2f prepare envelopes from distinct
// replicas. It rides inside a ViewChange so the new primary can
// re-propose the value.
type PreparedProof struct {
	Seq           uint64
	View          uint64
	Digest        gcrypto.Hash
	PrePrepareEnv []byte   // encoded consensus.Envelope
	PrepareEnvs   [][]byte // encoded consensus.Envelopes
}

// MarshalCanonical implements codec.Marshaler.
func (p *PreparedProof) MarshalCanonical(w *codec.Writer) {
	w.Uint64(p.Seq)
	w.Uint64(p.View)
	w.Raw(p.Digest[:])
	w.WriteBytes(p.PrePrepareEnv)
	w.Count(len(p.PrepareEnvs))
	for _, e := range p.PrepareEnvs {
		w.WriteBytes(e)
	}
}

// UnmarshalCanonical decodes the proof.
func (p *PreparedProof) UnmarshalCanonical(r *codec.Reader) error {
	p.Seq = r.Uint64()
	p.View = r.Uint64()
	r.RawInto(p.Digest[:])
	p.PrePrepareEnv = r.ReadBytes()
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	p.PrepareEnvs = make([][]byte, n)
	for i := 0; i < n; i++ {
		p.PrepareEnvs[i] = r.ReadBytes()
	}
	return r.Err()
}

// ViewChange announces that a replica wants to move to NewView,
// carrying its last stable checkpoint and any prepared-but-unexecuted
// proposal above it.
type ViewChange struct {
	Era        uint64
	NewView    uint64
	LastStable uint64
	Prepared   []PreparedProof
}

// Kind implements consensus.Payload.
func (*ViewChange) Kind() consensus.MsgKind { return consensus.KindViewChange }

// MarshalCanonical implements codec.Marshaler.
func (m *ViewChange) MarshalCanonical(w *codec.Writer) {
	w.Uint64(m.Era)
	w.Uint64(m.NewView)
	w.Uint64(m.LastStable)
	w.Count(len(m.Prepared))
	for i := range m.Prepared {
		m.Prepared[i].MarshalCanonical(w)
	}
}

// UnmarshalCanonical decodes the payload.
func (m *ViewChange) UnmarshalCanonical(r *codec.Reader) error {
	m.Era = r.Uint64()
	m.NewView = r.Uint64()
	m.LastStable = r.Uint64()
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	m.Prepared = make([]PreparedProof, n)
	for i := 0; i < n; i++ {
		if err := m.Prepared[i].UnmarshalCanonical(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// NewView is the new primary's proof that 2f+1 replicas agreed to the
// view change, plus the pre-prepares it re-issues for prepared values.
type NewView struct {
	Era            uint64
	View           uint64
	ViewChangeEnvs [][]byte // 2f+1 encoded ViewChange envelopes
	PrePrepares    [][]byte // encoded PrePrepare envelopes to adopt
}

// Kind implements consensus.Payload.
func (*NewView) Kind() consensus.MsgKind { return consensus.KindNewView }

// MarshalCanonical implements codec.Marshaler.
func (m *NewView) MarshalCanonical(w *codec.Writer) {
	w.Uint64(m.Era)
	w.Uint64(m.View)
	w.Count(len(m.ViewChangeEnvs))
	for _, e := range m.ViewChangeEnvs {
		w.WriteBytes(e)
	}
	w.Count(len(m.PrePrepares))
	for _, e := range m.PrePrepares {
		w.WriteBytes(e)
	}
}

// UnmarshalCanonical decodes the payload.
func (m *NewView) UnmarshalCanonical(r *codec.Reader) error {
	m.Era = r.Uint64()
	m.View = r.Uint64()
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	m.ViewChangeEnvs = make([][]byte, n)
	for i := 0; i < n; i++ {
		m.ViewChangeEnvs[i] = r.ReadBytes()
	}
	k := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	m.PrePrepares = make([][]byte, k)
	for i := 0; i < k; i++ {
		m.PrePrepares[i] = r.ReadBytes()
	}
	return r.Err()
}
