package pbft_test

import (
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/simnet"
	"gpbft/internal/types"
)

// TestSafetyUnderRandomFaults is a randomized property test: across
// many seeds, with random message loss, random crash sets of at most f
// nodes, and jittered latencies, no two surviving nodes may ever
// commit different blocks at the same height.
func TestSafetyUnderRandomFaults(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		o := defaultOpts(7) // f = 2
		o.simCfg.Seed = seed
		o.simCfg.DropRate = 0.03
		o.simCfg.Latency = simnet.UniformLatency{
			Base:   time.Millisecond,
			Jitter: 4 * time.Millisecond, // heavy reordering
		}
		c := newCluster(t, o)
		rng := c.net.Rand()

		// Crash up to f random nodes at random times.
		crashes := rng.Intn(3) // 0..2 = f
		skip := map[gcrypto.Address]bool{}
		addrs := c.com.Addresses()
		for k := 0; k < crashes; k++ {
			victim := addrs[rng.Intn(len(addrs))]
			if skip[victim] {
				continue
			}
			skip[victim] = true
			at := time.Duration(rng.Intn(2000)) * time.Millisecond
			c.net.Schedule(at, func(t0 time.Duration) { c.net.Crash(victim) })
		}
		// Random transaction stream to random nodes.
		for i := 0; i < 12; i++ {
			at := time.Duration(10+rng.Intn(3000)) * time.Millisecond
			c.submitAt(at, addrs[rng.Intn(len(addrs))], clientTx(int(seed)*100+i, uint64(i)))
		}
		c.run(2 * time.Minute)

		// SAFETY: all surviving chains agree on shared prefixes.
		var ref *types.Block
		var refH uint64
		for a, n := range c.nodes {
			if skip[a] {
				continue
			}
			if n.CommitErr != nil {
				t.Fatalf("seed %d: node %s commit error: %v", seed, a.Short(), n.CommitErr)
			}
			h := n.App.Chain().Height()
			if ref == nil || h < refH {
				refH = h
			}
			_ = ref
		}
		// Pairwise prefix comparison against the first survivor.
		var base = -1
		addrsList := c.com.Addresses()
		for i, a := range addrsList {
			if !skip[a] {
				base = i
				break
			}
		}
		baseChain := c.nodes[addrsList[base]].App.Chain()
		for _, a := range addrsList {
			if skip[a] || a == addrsList[base] {
				continue
			}
			other := c.nodes[a].App.Chain()
			limit := other.Height()
			if bh := baseChain.Height(); bh < limit {
				limit = bh
			}
			for h := uint64(0); h <= limit; h++ {
				x, _ := baseChain.BlockAt(h)
				y, _ := other.BlockAt(h)
				if x.Hash() != y.Hash() {
					t.Fatalf("seed %d: SAFETY VIOLATION at height %d", seed, h)
				}
			}
		}
	}
}
