package pbft_test

import (
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/simnet"
	"gpbft/internal/types"
)

var epoch = time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)

// cluster is a simulated PBFT committee for integration tests.
type cluster struct {
	t       *testing.T
	net     *simnet.Network
	genesis *ledger.Genesis
	com     *consensus.Committee
	nodes   map[gcrypto.Address]*runtime.Node
	engines map[gcrypto.Address]*pbft.Engine
	keys    map[gcrypto.Address]*gcrypto.KeyPair
}

type clusterOpts struct {
	n                  int
	vcTimeout          time.Duration
	checkpointInterval uint64
	batch              int
	simCfg             simnet.Config
}

func defaultOpts(n int) clusterOpts {
	return clusterOpts{
		n:         n,
		vcTimeout: 300 * time.Millisecond,
		batch:     16,
		simCfg: simnet.Config{
			Seed:     1,
			Latency:  simnet.UniformLatency{Base: time.Millisecond, Jitter: 500 * time.Microsecond},
			ProcTime: 100 * time.Microsecond,
			SendTime: 20 * time.Microsecond,
		},
	}
}

func newCluster(t *testing.T, o clusterOpts) *cluster {
	t.Helper()
	g := &ledger.Genesis{ChainID: "pbft-test", Timestamp: epoch, Policy: ledger.DefaultPolicy()}
	g.Policy.MaxEndorsers = o.n + 8
	for i := 0; i < o.n; i++ {
		kp := gcrypto.DeterministicKeyPair(i)
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: kp.Address(), PubKey: kp.Public(),
			Geohash: geo.MustEncode(geo.Point{Lng: 114.17, Lat: 22.30}, geo.CSCPrecision),
		})
	}
	com, err := consensus.NewCommittee(g.Endorsers)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{
		t: t, genesis: g, com: com,
		net:     simnet.New(o.simCfg),
		nodes:   make(map[gcrypto.Address]*runtime.Node),
		engines: make(map[gcrypto.Address]*pbft.Engine),
		keys:    make(map[gcrypto.Address]*gcrypto.KeyPair),
	}
	for i := 0; i < o.n; i++ {
		kp := gcrypto.DeterministicKeyPair(i)
		chain, err := ledger.NewChain(g)
		if err != nil {
			t.Fatal(err)
		}
		app := runtime.NewApp(chain, runtime.NewMempool(0), kp.Address(), epoch, o.batch)
		eng, err := pbft.New(pbft.Config{
			Era:                0,
			Committee:          com,
			Key:                kp,
			App:                app,
			Timers:             consensus.NewTimerAllocator(),
			StartHeight:        1,
			CheckpointInterval: o.checkpointInterval,
			ViewChangeTimeout:  o.vcTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		node := &runtime.Node{
			ID: kp.Address(), Key: kp, App: app, Engine: eng,
			Exec: c.net.Executor(kp.Address()),
		}
		c.net.AddNode(kp.Address(), node)
		c.nodes[kp.Address()] = node
		c.engines[kp.Address()] = eng
		c.keys[kp.Address()] = kp
	}
	c.net.Schedule(0, func(now consensus.Time) {
		for _, n := range c.nodes {
			n.Start(now)
		}
	})
	return c
}

// tx builds a client transaction signed by key index 1000+i.
func clientTx(i int, nonce uint64) *types.Transaction {
	tx := &types.Transaction{
		Type:    types.TxNormal,
		Nonce:   nonce,
		Payload: []byte("sensor-reading"),
		Fee:     10,
		Geo: types.GeoInfo{
			Location:  geo.Point{Lng: 114.17, Lat: 22.30},
			Timestamp: epoch.Add(time.Duration(nonce+1) * time.Second),
		},
	}
	tx.Sign(gcrypto.DeterministicKeyPair(1000 + i))
	return tx
}

// submitAt schedules a transaction submission at a node.
func (c *cluster) submitAt(at consensus.Time, to gcrypto.Address, tx *types.Transaction) {
	c.net.Schedule(at, func(now consensus.Time) {
		if err := c.nodes[to].Submit(now, tx); err != nil {
			c.t.Errorf("submit: %v", err)
		}
	})
}

// run drives the simulation until idle or the cap.
func (c *cluster) run(cap consensus.Time) { c.net.RunUntilIdle(cap) }

// aliveHeights asserts every non-crashed node reached at least height
// h, and that all chains agree prefix-wise.
func (c *cluster) checkAgreement(minHeight uint64, skip map[gcrypto.Address]bool) {
	c.t.Helper()
	var ref *runtime.Node
	for _, n := range c.nodes {
		if skip[n.ID] {
			continue
		}
		if n.CommitErr != nil {
			c.t.Fatalf("node %s commit error: %v", n.ID.Short(), n.CommitErr)
		}
		h := n.App.Chain().Height()
		if h < minHeight {
			c.t.Fatalf("node %s at height %d, want >= %d", n.ID.Short(), h, minHeight)
		}
		if ref == nil {
			ref = n
			continue
		}
		limit := h
		if rh := ref.App.Chain().Height(); rh < limit {
			limit = rh
		}
		for i := uint64(0); i <= limit; i++ {
			a, _ := ref.App.Chain().BlockAt(i)
			b, _ := n.App.Chain().BlockAt(i)
			if a.Hash() != b.Hash() {
				c.t.Fatalf("chains disagree at height %d", i)
			}
		}
	}
}

func (c *cluster) primary() gcrypto.Address { return c.com.Primary(0) }

// someBackup returns a non-primary member address.
func (c *cluster) someBackup() gcrypto.Address {
	for _, a := range c.com.Addresses() {
		if a != c.primary() {
			return a
		}
	}
	panic("no backup")
}

func TestHappyPathSingleTx(t *testing.T) {
	c := newCluster(t, defaultOpts(4))
	tx := clientTx(0, 1)
	c.submitAt(10*time.Millisecond, c.primary(), tx)
	c.run(5 * time.Second)
	c.checkAgreement(1, nil)

	// The committed block carries a verifiable quorum certificate.
	for _, n := range c.nodes {
		b, err := n.App.Chain().BlockAt(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Txs) != 1 || b.Txs[0].ID() != tx.ID() {
			t.Fatal("committed block does not contain the transaction")
		}
		if b.Cert == nil {
			t.Fatal("committed block missing certificate")
		}
		if err := b.Cert.Verify(b.Hash(), c.com.Keys(), c.com.Quorum()); err != nil {
			t.Fatalf("certificate: %v", err)
		}
	}
}

func TestSubmitToBackupIsForwarded(t *testing.T) {
	c := newCluster(t, defaultOpts(4))
	c.submitAt(10*time.Millisecond, c.someBackup(), clientTx(0, 1))
	c.run(5 * time.Second)
	c.checkAgreement(1, nil)
}

func TestManyTxsManyBlocks(t *testing.T) {
	o := defaultOpts(4)
	o.batch = 4
	c := newCluster(t, o)
	for i := 0; i < 20; i++ {
		c.submitAt(time.Duration(10+i)*time.Millisecond, c.com.Addresses()[i%4], clientTx(i, uint64(i)))
	}
	c.run(20 * time.Second)
	// 20 txs with batch 4 needs at least 5 blocks.
	c.checkAgreement(5, nil)
	// All 20 distinct txs are on chain exactly once.
	n := c.nodes[c.primary()]
	seen := map[gcrypto.Hash]int{}
	for _, b := range n.App.Chain().Blocks() {
		for i := range b.Txs {
			seen[b.Txs[i].ID()]++
		}
	}
	if len(seen) != 20 {
		t.Fatalf("%d distinct txs committed, want 20", len(seen))
	}
	for id, count := range seen {
		if count != 1 {
			t.Fatalf("tx %s committed %d times", id.Short(), count)
		}
	}
}

func TestToleratesCrashedBackups(t *testing.T) {
	c := newCluster(t, defaultOpts(7)) // f = 2
	skip := map[gcrypto.Address]bool{}
	crashed := 0
	for _, a := range c.com.Addresses() {
		if a != c.primary() && crashed < 2 {
			c.net.Crash(a)
			skip[a] = true
			crashed++
		}
	}
	c.submitAt(10*time.Millisecond, c.primary(), clientTx(0, 1))
	c.run(10 * time.Second)
	c.checkAgreement(1, skip)
}

func TestViewChangeOnCrashedPrimary(t *testing.T) {
	c := newCluster(t, defaultOpts(4))
	prim := c.primary()
	c.net.Crash(prim)
	backup := c.someBackup()
	c.submitAt(10*time.Millisecond, backup, clientTx(0, 1))
	c.run(30 * time.Second)
	skip := map[gcrypto.Address]bool{prim: true}
	c.checkAgreement(1, skip)
	// Survivors moved to a later view.
	for a, e := range c.engines {
		if skip[a] {
			continue
		}
		if e.View() == 0 {
			t.Fatalf("node %s still in view 0 after primary crash", a.Short())
		}
		if e.CompletedViewChanges() == 0 {
			t.Fatalf("node %s completed no view changes", a.Short())
		}
	}
}

func TestViewChangePreservesPreparedValue(t *testing.T) {
	// Crash the primary right after the proposal goes out: backups may
	// have prepared the value; after the view change the SAME block (or
	// none) must commit — never a conflicting one.
	o := defaultOpts(4)
	c := newCluster(t, o)
	prim := c.primary()
	tx := clientTx(0, 1)
	c.submitAt(10*time.Millisecond, prim, tx)
	// Crash the primary 3ms after submission: the pre-prepare has
	// typically been sent, prepares are in flight.
	c.net.Schedule(13*time.Millisecond, func(consensus.Time) { c.net.Crash(prim) })
	c.run(30 * time.Second)
	skip := map[gcrypto.Address]bool{prim: true}
	c.checkAgreement(0, skip)
	// If a block committed at height 1, it must contain the tx.
	for a, n := range c.nodes {
		if skip[a] {
			continue
		}
		if n.App.Chain().Height() >= 1 {
			b, _ := n.App.Chain().BlockAt(1)
			if len(b.Txs) != 1 || b.Txs[0].ID() != tx.ID() {
				t.Fatal("post-view-change block lost the prepared transaction")
			}
		}
	}
}

func TestCheckpointGarbageCollection(t *testing.T) {
	o := defaultOpts(4)
	o.checkpointInterval = 4
	o.batch = 1
	c := newCluster(t, o)
	for i := 0; i < 12; i++ {
		c.submitAt(time.Duration(10+i*5)*time.Millisecond, c.primary(), clientTx(i, uint64(i)))
	}
	c.run(30 * time.Second)
	c.checkAgreement(12, nil)
	for a, e := range c.engines {
		if e.LowWater() < 4 {
			t.Fatalf("node %s low water %d, checkpoint GC never ran", a.Short(), e.LowWater())
		}
	}
}

func TestEquivocatingPrimaryIsSafe(t *testing.T) {
	// A Byzantine primary sends two different pre-prepares for the same
	// (view, seq) to disjoint halves. Safety: no two honest nodes may
	// commit different blocks at height 1.
	o := defaultOpts(4)
	c := newCluster(t, o)
	prim := c.primary()
	primKey := c.keys[prim]
	// Silence the real primary so only our forged proposals exist.
	c.net.Crash(prim)

	backups := []gcrypto.Address{}
	for _, a := range c.com.Addresses() {
		if a != prim {
			backups = append(backups, a)
		}
	}
	mkBlock := func(tx *types.Transaction) *types.Block {
		chain, _ := ledger.NewChain(c.genesis)
		return types.NewBlock(types.BlockHeader{
			Height: 1, Era: 0, View: 0, Seq: 1,
			PrevHash:  chain.Head().Hash(),
			Proposer:  prim,
			Timestamp: epoch.Add(time.Second),
		}, []types.Transaction{*tx})
	}
	b1 := mkBlock(clientTx(0, 1))
	b2 := mkBlock(clientTx(1, 2))
	pp1 := consensus.Seal(primKey, &pbft.PrePrepare{Era: 0, View: 0, Seq: 1, Digest: b1.Hash(), Block: *b1})
	pp2 := consensus.Seal(primKey, &pbft.PrePrepare{Era: 0, View: 0, Seq: 1, Digest: b2.Hash(), Block: *b2})

	c.net.Schedule(10*time.Millisecond, func(now consensus.Time) {
		// Two backups get proposal 1, one gets proposal 2.
		c.nodes[backups[0]].Deliver(now, pp1)
		c.nodes[backups[1]].Deliver(now, pp1)
		c.nodes[backups[2]].Deliver(now, pp2)
	})
	c.run(30 * time.Second)

	// Safety check: no conflicting committed blocks.
	var committed []*types.Block
	for _, a := range backups {
		n := c.nodes[a]
		if n.CommitErr != nil {
			t.Fatalf("commit error: %v", n.CommitErr)
		}
		if n.App.Chain().Height() >= 1 {
			b, _ := n.App.Chain().BlockAt(1)
			committed = append(committed, b)
		}
	}
	for i := 1; i < len(committed); i++ {
		if committed[i].Hash() != committed[0].Hash() {
			t.Fatal("SAFETY VIOLATION: conflicting blocks committed at height 1")
		}
	}
}

func TestLargeCommitteeCommits(t *testing.T) {
	if testing.Short() {
		t.Skip("large committee in -short mode")
	}
	o := defaultOpts(25) // f = 8
	c := newCluster(t, o)
	c.submitAt(10*time.Millisecond, c.primary(), clientTx(0, 1))
	c.run(20 * time.Second)
	c.checkAgreement(1, nil)
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := pbft.New(pbft.Config{}); err == nil {
		t.Fatal("empty config must fail")
	}
	// Self not in committee.
	g := &ledger.Genesis{ChainID: "x", Timestamp: epoch, Policy: ledger.DefaultPolicy()}
	for i := 0; i < 4; i++ {
		kp := gcrypto.DeterministicKeyPair(i)
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{Address: kp.Address(), PubKey: kp.Public()})
	}
	com, _ := consensus.NewCommittee(g.Endorsers)
	chain, _ := ledger.NewChain(g)
	outsider := gcrypto.DeterministicKeyPair(99)
	app := runtime.NewApp(chain, runtime.NewMempool(0), outsider.Address(), epoch, 0)
	if _, err := pbft.New(pbft.Config{Committee: com, Key: outsider, App: app, StartHeight: 1}); err == nil {
		t.Fatal("outsider key must be rejected")
	}
}

func TestHaltStopsEngine(t *testing.T) {
	c := newCluster(t, defaultOpts(4))
	for _, e := range c.engines {
		e.Halt()
		if !e.Halted() {
			t.Fatal("Halted() false after Halt()")
		}
	}
	c.submitAt(10*time.Millisecond, c.primary(), clientTx(0, 1))
	c.run(5 * time.Second)
	for _, n := range c.nodes {
		if n.App.Chain().Height() != 0 {
			t.Fatal("halted engines must not commit")
		}
	}
}
