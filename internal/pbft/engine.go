package pbft

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/evidence"
	"gpbft/internal/gcrypto"
	"gpbft/internal/store"
	"gpbft/internal/types"
)

// Defaults for engine tuning knobs.
const (
	// DefaultCheckpointInterval is K: a checkpoint every K executions;
	// the high watermark is lowWater + 2K.
	DefaultCheckpointInterval = 16
	// DefaultViewChangeTimeout is the progress timeout before a backup
	// starts a view change.
	DefaultViewChangeTimeout = 2 * time.Second
	// DefaultMaxInFlight is the pipelining depth: how many sequence
	// numbers may run their three phases concurrently. 1 is the serial
	// ablation (one full round trip per block, the pre-pipelining
	// behaviour).
	DefaultMaxInFlight = 8
)

// Application extends the consensus Application with the mempool
// surface the engine needs.
type Application interface {
	consensus.Application
	// SubmitTx adds a transaction to the pending pool; duplicates are
	// ignored. It returns an error only for invalid transactions.
	SubmitTx(tx *types.Transaction) error
	// PendingTxs reports how many transactions await inclusion.
	PendingTxs() int
	// PendingList returns up to max pending transactions (FIFO order);
	// the era layer re-disseminates them after an era switch.
	PendingList(max int) []types.Transaction
}

// SpeculativeApplication is the optional surface pipelined slots need:
// building and validating a block whose parent is an in-flight,
// not-yet-committed block rather than the chain head. Applications
// that do not implement it cap the engine at one in-flight slot
// regardless of MaxInFlight.
type SpeculativeApplication interface {
	// BuildBlockOn assembles the block at seq on top of parent,
	// skipping transactions whose ID is in exclude (they are already
	// packed into in-flight ancestors, but still sit in the pool until
	// they commit). Nil means nothing to propose.
	BuildBlockOn(now consensus.Time, era, view, seq uint64, parent *types.Block, exclude map[gcrypto.Hash]bool) *types.Block
	// ValidateBlockOn checks b as the immediate child of parent,
	// independent of the chain head.
	ValidateBlockOn(b, parent *types.Block) error
}

// Config configures one PBFT engine instance (one era in G-PBFT).
type Config struct {
	Era       uint64
	Committee *consensus.Committee
	Key       *gcrypto.KeyPair
	App       Application
	Timers    *consensus.TimerAllocator
	// StartHeight is the first block height this instance decides
	// (current chain height + 1).
	StartHeight uint64
	// CheckpointInterval is K; zero selects the default.
	CheckpointInterval uint64
	// ViewChangeTimeout is the progress timeout; zero selects default.
	ViewChangeTimeout time.Duration
	// MaxInFlight bounds how many sequence numbers run concurrently
	// (clamped to the watermark window). Zero selects the default; 1 is
	// the serial ablation.
	MaxInFlight int
	// WAL, when set, receives every vote before it is sent
	// (persist-before-send); nil disables durability (tests, or
	// explicitly accepting equivocation risk across restarts).
	WAL WAL
	// Durable, when set, is the state recovered from the WAL of a
	// previous incarnation; the engine starts from it and refuses to
	// contradict any vote recorded there.
	Durable *DurableState
	// EvidenceSink, when set, receives self-verifying double-sign
	// proofs the engine assembles from conflicting votes it observes
	// (see accountability.go). Nil disables detection.
	EvidenceSink func(*evidence.Record)
}

func (c *Config) fill() {
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = DefaultCheckpointInterval
	}
	if c.ViewChangeTimeout == 0 {
		c.ViewChangeTimeout = DefaultViewChangeTimeout
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.Timers == nil {
		c.Timers = consensus.NewTimerAllocator()
	}
}

// instance tracks one sequence number's progress through the phases.
type instance struct {
	view       uint64
	digest     gcrypto.Hash
	block      *types.Block
	prePrepare *consensus.Envelope
	prepares   map[gcrypto.Address]*consensus.Envelope
	commits    map[gcrypto.Address]*consensus.Envelope
	certVotes  []types.Vote
	certSeen   map[gcrypto.Address]bool
	prepared   bool
	committed  bool
	executed   bool
}

func newInstance(view uint64) *instance {
	return &instance{
		view:     view,
		prepares: make(map[gcrypto.Address]*consensus.Envelope),
		commits:  make(map[gcrypto.Address]*consensus.Envelope),
		certSeen: make(map[gcrypto.Address]bool),
	}
}

// timer purposes
type timerPurpose uint8

const (
	timerProgress timerPurpose = iota + 1
	timerViewChange
	timerSlot
)

// Engine is one replica's PBFT state machine. It is not safe for
// concurrent use; the runner serializes events.
type Engine struct {
	cfg  Config
	self gcrypto.Address
	com  *consensus.Committee

	view         uint64
	lowWater     uint64 // last stable checkpoint seq
	execNext     uint64 // next seq to execute
	insts        map[uint64]*instance
	ownDigests   map[uint64]gcrypto.Hash // executed seq -> digest
	checkpoints  map[uint64]map[gcrypto.Address]gcrypto.Hash
	viewChanges  map[uint64]map[gcrypto.Address]*vcRecord
	inViewChange bool
	vcTarget     uint64 // view we are trying to reach while inViewChange
	halted       bool

	// newViewEnv is the NewView certificate that established the
	// current view (nil while still in view 0 or after WAL recovery).
	// It is retransmitted to replicas petitioning for stale views so a
	// restarted node can verify the jump to the committee's view.
	newViewEnv *consensus.Envelope

	timers       map[consensus.TimerID]timerPurpose
	progressTID  consensus.TimerID
	vcTID        consensus.TimerID
	vcRetryDelay time.Duration

	// Per-slot progress timers: every accepted proposal gets its own
	// deadline, so an earlier slot's progress can never mask a leader
	// stalling a later one. slotTimers maps seq -> timer, timerSlots the
	// reverse.
	slotTimers map[uint64]consensus.TimerID
	timerSlots map[consensus.TimerID]uint64

	// Pipelining: the in-flight depth negotiated from Config, the
	// optional speculative application surface, and the deterministic
	// hold-back buffer for messages just above the acceptance window
	// (votes ahead of the watermarks, pre-prepares whose parent has not
	// arrived yet). draining guards re-entrant drains.
	maxInFlight int
	spec        SpeculativeApplication
	pendingMsgs map[uint64][]*consensus.Envelope
	draining    bool

	// Durable vote ledgers: every vote this incarnation (or, after
	// recovery, any previous incarnation) may have sent, keyed by
	// (view, seq). Consulted before sending; backed by wal when set.
	wal             WAL
	sentPrePrepares map[voteKey]gcrypto.Hash
	sentPrepares    map[voteKey]gcrypto.Hash
	sentCommits     map[voteKey]gcrypto.Hash

	// Accountability: first vote seen per (kind, view, seq, sender) and
	// the senders already reported this era. Nil maps when detection is
	// disabled (no EvidenceSink).
	seenVotes map[seenSlot]seenVote
	accused   map[gcrypto.Address]bool

	// stats
	executedBlocks uint64
	viewChangesFin uint64
}

type vcRecord struct {
	msg *ViewChange
	env *consensus.Envelope
}

// Errors surfaced by the engine.
var (
	ErrHalted    = errors.New("pbft: engine halted")
	ErrNotMember = errors.New("pbft: sender is not a committee member")
)

// New constructs a replica engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Committee == nil || cfg.Key == nil || cfg.App == nil {
		return nil, errors.New("pbft: config needs Committee, Key and App")
	}
	cfg.fill()
	if !cfg.Committee.IsMember(cfg.Key.Address()) {
		return nil, fmt.Errorf("pbft: self %s not in committee", cfg.Key.Address().Short())
	}
	e := &Engine{
		cfg:             cfg,
		self:            cfg.Key.Address(),
		com:             cfg.Committee,
		lowWater:        cfg.StartHeight - 1,
		execNext:        cfg.StartHeight,
		insts:           make(map[uint64]*instance),
		ownDigests:      make(map[uint64]gcrypto.Hash),
		checkpoints:     make(map[uint64]map[gcrypto.Address]gcrypto.Hash),
		viewChanges:     make(map[uint64]map[gcrypto.Address]*vcRecord),
		timers:          make(map[consensus.TimerID]timerPurpose),
		slotTimers:      make(map[uint64]consensus.TimerID),
		timerSlots:      make(map[consensus.TimerID]uint64),
		vcRetryDelay:    cfg.ViewChangeTimeout,
		maxInFlight:     cfg.MaxInFlight,
		pendingMsgs:     make(map[uint64][]*consensus.Envelope),
		wal:             cfg.WAL,
		sentPrePrepares: make(map[voteKey]gcrypto.Hash),
		sentPrepares:    make(map[voteKey]gcrypto.Hash),
		sentCommits:     make(map[voteKey]gcrypto.Hash),
	}
	e.spec, _ = cfg.App.(SpeculativeApplication)
	if cfg.EvidenceSink != nil {
		e.seenVotes = make(map[seenSlot]seenVote)
		e.accused = make(map[gcrypto.Address]bool)
	}
	e.restoreDurable(cfg.Durable)
	return e, nil
}

// --- accessors ---

// View returns the current view number.
func (e *Engine) View() uint64 { return e.view }

// Era returns the configured era.
func (e *Engine) Era() uint64 { return e.cfg.Era }

// Committee returns the instance's committee.
func (e *Engine) Committee() *consensus.Committee { return e.com }

// Primary returns the current primary's address.
func (e *Engine) Primary() gcrypto.Address { return e.com.Primary(e.view) }

// IsPrimary reports whether this replica leads the current view.
func (e *Engine) IsPrimary() bool { return e.Primary() == e.self }

// InViewChange reports whether a view change is in progress.
func (e *Engine) InViewChange() bool { return e.inViewChange }

// NextSeq returns the next sequence number awaiting execution.
func (e *Engine) NextSeq() uint64 { return e.execNext }

// LowWater returns the last stable checkpoint sequence.
func (e *Engine) LowWater() uint64 { return e.lowWater }

// ExecutedBlocks returns how many blocks this replica has executed.
func (e *Engine) ExecutedBlocks() uint64 { return e.executedBlocks }

// InFlight reports how many sequence numbers currently have a proposed
// but not yet executed instance, and the configured pipelining depth.
// The load-shed controller uses the ratio as a saturation signal.
func (e *Engine) InFlight() (used, depth int) {
	for _, inst := range e.insts {
		if inst.prePrepare != nil && !inst.executed {
			used++
		}
	}
	return used, e.maxInFlight
}

// CompletedViewChanges returns how many view changes this replica has
// completed.
func (e *Engine) CompletedViewChanges() uint64 { return e.viewChangesFin }

// Halted reports whether the engine has been stopped.
func (e *Engine) Halted() bool { return e.halted }

// Halt stops the engine; all further events are ignored. G-PBFT calls
// this at the start of an era switch ("G-PBFT asks each endorser to
// halt the old consensus before era switch", Section IV-A2).
func (e *Engine) Halt() { e.halted = true }

// highWater returns the top of the sequence window.
func (e *Engine) highWater() uint64 {
	return e.lowWater + 2*e.cfg.CheckpointInterval
}

// --- lifecycle ---

// Init arms the initial proposal attempt. A recovered engine first
// re-sends the commit votes it owes for instances that were prepared
// when it crashed.
func (e *Engine) Init(now consensus.Time) []consensus.Action {
	if e.halted {
		return nil
	}
	var acts []consensus.Action
	acts = e.resendRecoveredVotes(acts)
	acts = e.maybePropose(now, acts)
	acts = e.ensureProgressTimer(acts)
	return acts
}

// AdvanceTo informs the engine that the runtime applied synced blocks
// up to and including height seq; local instances at or below it are
// dropped.
func (e *Engine) AdvanceTo(now consensus.Time, seq uint64) []consensus.Action {
	if e.halted || seq < e.execNext {
		return nil
	}
	var acts []consensus.Action
	for s := e.execNext; s <= seq; s++ {
		acts = e.stopSlotTimer(s, acts)
		delete(e.insts, s)
	}
	e.execNext = seq + 1
	if seq > e.lowWater {
		e.lowWater = seq
		e.pruneSentVotes(seq)
		e.pruneSeenVotes(seq)
	}
	// Synced-past slots count as executed parents: a child slot whose
	// commit was held back waiting for them can release it now.
	acts = e.maybeSendCommit(now, e.execNext, acts)
	acts = e.maybePropose(now, acts)
	acts = e.drainBuffered(now, acts)
	acts = e.ensureProgressTimer(acts)
	return acts
}

// OnCommitApplied implements consensus.CommitNotifiable: once the
// runtime has applied committed blocks to the chain, the primary can
// propose on top of the new head (BuildBlock declines while the head
// still lags the engine's sequence).
func (e *Engine) OnCommitApplied(now consensus.Time) []consensus.Action {
	if e.halted {
		return nil
	}
	var acts []consensus.Action
	acts = e.maybePropose(now, acts)
	acts = e.ensureProgressTimer(acts)
	return acts
}

// OnRequest handles a transaction submitted locally (the runtime has
// already added it to the mempool). The endorser relays the request to
// the whole committee: every replica must know about outstanding work
// so that f+1 of them can corroborate a view change when the primary
// stalls — the request-multicast fallback of PBFT, and the paper's
// "a client will send the transaction to multiple endorsers".
func (e *Engine) OnRequest(now consensus.Time, tx *types.Transaction) []consensus.Action {
	if e.halted {
		return nil
	}
	var acts []consensus.Action
	if !e.inViewChange {
		env := consensus.Seal(e.cfg.Key, &Request{Tx: *tx})
		acts = append(acts, consensus.Broadcast{To: e.com.Others(e.self), Env: env})
	}
	if e.IsPrimary() {
		acts = e.maybePropose(now, acts)
	}
	acts = e.ensureProgressTimer(acts)
	return acts
}

// OnTimer dispatches a timer firing.
func (e *Engine) OnTimer(now consensus.Time, id consensus.TimerID) []consensus.Action {
	if e.halted {
		return nil
	}
	purpose, ok := e.timers[id]
	if !ok {
		return nil // stale timer
	}
	delete(e.timers, id)
	switch purpose {
	case timerProgress:
		if id != e.progressTID {
			return nil
		}
		e.progressTID = 0
		// No progress on outstanding work: suspect the primary.
		if e.hasOutstandingWork() {
			return e.startViewChange(now, e.view+1)
		}
		return nil
	case timerSlot:
		seq, ok := e.timerSlots[id]
		if !ok {
			return nil
		}
		delete(e.timerSlots, id)
		delete(e.slotTimers, seq)
		if e.inViewChange || seq < e.execNext {
			return nil
		}
		if inst := e.insts[seq]; inst != nil && inst.prePrepare != nil && !inst.executed {
			// One specific slot ran out of patience: depose the primary.
			return e.startViewChange(now, e.view+1)
		}
		return nil
	case timerViewChange:
		if id != e.vcTID {
			return nil
		}
		e.vcTID = 0
		if e.inViewChange {
			// The view change itself stalled; escalate to the next view
			// with doubled patience (exponential backoff, as in PBFT),
			// capped so a long outage cannot push the retry horizon out
			// indefinitely.
			if e.vcRetryDelay < time.Minute {
				e.vcRetryDelay *= 2
			}
			return e.startViewChange(now, e.vcTarget+1)
		}
		return nil
	}
	return nil
}

// OnEnvelope dispatches a received protocol message.
func (e *Engine) OnEnvelope(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	if e.halted {
		return nil
	}
	switch env.MsgKind {
	case consensus.KindRequest:
		return e.onRequestEnv(now, env)
	case consensus.KindPrePrepare:
		return e.onPrePrepare(now, env)
	case consensus.KindPrepare:
		return e.onPrepare(now, env)
	case consensus.KindCommit:
		return e.onCommit(now, env)
	case consensus.KindCheckpoint:
		return e.onCheckpoint(now, env)
	case consensus.KindViewChange:
		return e.onViewChange(now, env)
	case consensus.KindNewView:
		return e.onNewView(now, env)
	default:
		return nil
	}
}

// --- normal case ---

func (e *Engine) onRequestEnv(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	// OpenUnverified: a request envelope is a transport wrapper, not a
	// vote — authenticity comes from the transaction's own signature
	// (checked right below, memoized), so the relayer's seal is not
	// verified. A forged From can at most trigger one extra relay round
	// (member relays are terminal), the same exposure an unattributed
	// client submission already has; a tampered body fails the
	// transaction check. The serial ablation baseline re-enables the
	// seal check to reproduce the seed's verification stack.
	open := consensus.OpenUnverified
	if consensus.RequestSealCheck() {
		open = consensus.Open
	}
	var req Request
	if err := open(env, consensus.KindRequest, &req); err != nil {
		return nil
	}
	// VerifyCached: a relayed transaction has usually already been
	// verified once on this node (local submission or an earlier relay),
	// so the ed25519 check is memoized.
	if err := req.Tx.VerifyCached(); err != nil {
		return nil
	}
	if err := e.cfg.App.SubmitTx(&req.Tx); err != nil {
		return nil
	}
	var acts []consensus.Action
	if !e.com.IsMember(env.From) && !e.inViewChange {
		// Direct client submission: relay to the committee (a relay
		// from a fellow member is terminal — no re-broadcast loops).
		relay := consensus.Seal(e.cfg.Key, &req)
		acts = append(acts, consensus.Broadcast{To: e.com.Others(e.self), Env: relay})
	}
	if e.IsPrimary() {
		acts = e.maybePropose(now, acts)
	}
	acts = e.ensureProgressTimer(acts)
	return acts
}

// maybePropose issues pre-prepares when this replica is the primary:
// one for every unproposed slot from execNext up to the pipelining
// depth (bounded by the high watermark). Slot execNext extends the
// applied chain head; later slots are built speculatively on their
// in-flight predecessor, so the window always forms a hash chain.
func (e *Engine) maybePropose(now consensus.Time, acts []consensus.Action) []consensus.Action {
	if e.inViewChange || !e.IsPrimary() {
		return acts
	}
	maxSeq := e.execNext + uint64(e.maxInFlight) - 1
	if hw := e.highWater(); maxSeq > hw {
		maxSeq = hw
	}
	// A quorum checkpoint can stabilize while this replica's execution
	// still lags it (the synced blocks are in flight): those slots are
	// final, their instances and sent-vote guards are pruned, and
	// re-proposing one would rebuild a different block from today's pool
	// and equivocate against our own earlier pre-prepare. Stay silent
	// below the stable checkpoint; sync moves execNext past it.
	seqStart := e.execNext
	if seqStart <= e.lowWater {
		seqStart = e.lowWater + 1
	}
	for seq := seqStart; seq <= maxSeq; seq++ {
		if inst := e.insts[seq]; inst != nil && inst.view == e.view && inst.prePrepare != nil {
			continue // already proposed in this view
		}
		block := e.buildAt(now, seq)
		if block == nil {
			// Nothing to build here; later slots would lack a parent.
			break
		}
		// Persist-before-send. A restarted primary that already proposed a
		// DIFFERENT block at this (view, seq) must stay silent rather than
		// equivocate — liveness then comes from the other replicas' view
		// change, not from a second conflicting proposal.
		if !e.recordVote(store.WALPrePrepare, e.sentPrePrepares, e.view, seq, block.Hash(), nil) {
			break
		}
		pp := &PrePrepare{
			Era:    e.cfg.Era,
			View:   e.view,
			Seq:    seq,
			Digest: block.Hash(),
			Block:  *block,
		}
		env := consensus.Seal(e.cfg.Key, pp)
		acts = append(acts, consensus.Broadcast{To: e.com.Others(e.self), Env: env})
		acts = e.acceptPrePrepare(now, pp, env, acts)
	}
	return acts
}

// buildAt assembles the block for one slot: through the ordinary
// Application when the slot extends the applied chain head, otherwise
// speculatively on the retained predecessor block.
func (e *Engine) buildAt(now consensus.Time, seq uint64) *types.Block {
	if b := e.cfg.App.BuildBlock(now, e.cfg.Era, e.view, seq); b != nil {
		return b
	}
	if e.spec == nil {
		return nil
	}
	parent := e.parentBlock(seq)
	if parent == nil {
		return nil
	}
	// Exclude everything packed below seq — including executed blocks
	// whose CommitBlock action has not been applied yet — because those
	// transactions still sit in the pool.
	return e.spec.BuildBlockOn(now, e.cfg.Era, e.view, seq, parent, e.exclusionRange(e.lowWater+1, seq))
}

// parentBlock returns the block occupying slot seq-1 if this replica
// holds it (in flight, or executed and not yet pruned by a checkpoint).
func (e *Engine) parentBlock(seq uint64) *types.Block {
	if seq == 0 {
		return nil
	}
	inst := e.insts[seq-1]
	if inst == nil || inst.block == nil || inst.block.Header.Seq != seq-1 {
		return nil
	}
	return inst.block
}

// exclusionRange collects the tx IDs packed into retained blocks in
// [from, seq): in-flight transactions stay pooled until their block is
// applied, so speculative builders and validators must skip them
// explicitly to keep every transaction exactly-once.
func (e *Engine) exclusionRange(from, seq uint64) map[gcrypto.Hash]bool {
	excl := make(map[gcrypto.Hash]bool)
	for s := from; s < seq; s++ {
		inst := e.insts[s]
		if inst == nil || inst.block == nil {
			continue
		}
		for i := range inst.block.Txs {
			excl[inst.block.Txs[i].ID()] = true
		}
	}
	return excl
}

func (e *Engine) onPrePrepare(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	var pp PrePrepare
	if err := consensus.Open(env, consensus.KindPrePrepare, &pp); err != nil {
		return nil
	}
	if pp.Era != e.cfg.Era || e.inViewChange || pp.View != e.view {
		return nil
	}
	if env.From != e.com.Primary(pp.View) {
		return nil // only the view's primary may pre-prepare
	}
	if pp.Seq < e.execNext {
		return nil // already executed locally
	}
	if pp.Seq >= e.execNext+uint64(e.maxInFlight) || pp.Seq > e.highWater() {
		// Ahead of the pipelining window: hold it back deterministically
		// rather than dropping — it becomes acceptable as the window
		// advances (or is discarded once it can never be).
		return e.bufferVote(pp.Seq, env)
	}
	e.noteVote(env, pp.View, pp.Seq, pp.Digest)
	if pp.Digest != pp.Block.Hash() {
		return nil
	}
	// The block header records the view it was ORIGINALLY proposed in:
	// a pre-prepare re-issued after a view change keeps the old header
	// (the prepared value must not change), so require header.View <=
	// message view and that the header's proposer was that view's
	// primary.
	hdr := &pp.Block.Header
	if hdr.Era != pp.Era || hdr.View > pp.View || hdr.Seq != pp.Seq ||
		hdr.Proposer != e.com.Primary(hdr.View) {
		return nil
	}
	if inst := e.insts[pp.Seq]; inst != nil && inst.view == pp.View &&
		inst.prePrepare != nil && inst.digest != pp.Digest {
		// Equivocating primary: two different proposals for one
		// (view, seq). Refuse; the progress timer will depose it.
		return nil
	}
	if err := e.cfg.App.ValidateBlock(&pp.Block); err != nil {
		// Not a child of the applied chain head. For a pipelined slot the
		// real parent is the retained predecessor block — in flight, or
		// executed but not yet applied to the chain — so validate against
		// it, or hold the proposal until it arrives. Only when the parent
		// IS the applied head (no retained block) was the head validation
		// authoritative.
		if e.spec == nil {
			return nil
		}
		parent := e.parentBlock(pp.Seq)
		if parent == nil {
			if pp.Seq == e.execNext {
				return nil
			}
			return e.bufferVote(pp.Seq, env)
		}
		if err := e.spec.ValidateBlockOn(&pp.Block, parent); err != nil {
			return nil
		}
		// Exactly-once across the window: refuse a proposal re-packing a
		// transaction an in-flight ancestor already carries.
		excl := e.exclusionRange(e.execNext, pp.Seq)
		for i := range pp.Block.Txs {
			if excl[pp.Block.Txs[i].ID()] {
				return nil
			}
		}
	}
	// Persist-before-send: if a previous incarnation already prepared a
	// different digest at this (view, seq), refuse the whole proposal —
	// accepting it would walk this replica into contradicting a prepare
	// that may already be on the wire.
	if !e.recordVote(store.WALPrepare, e.sentPrepares, pp.View, pp.Seq, pp.Digest, nil) {
		return nil
	}
	var acts []consensus.Action
	acts = e.acceptPrePrepare(now, &pp, env, acts)
	// Accepting can complete the slot on the spot: recovered prepares
	// and raced-ahead commits may already form certificates, and the
	// resulting execution + checkpoint stabilization prunes the
	// instance. Only a still-live slot needs this backup's own prepare.
	if inst := e.insts[pp.Seq]; inst != nil {
		// A backup that accepts multicasts prepare to all others.
		prep := &Prepare{Era: pp.Era, View: pp.View, Seq: pp.Seq, Digest: pp.Digest}
		prepEnv := consensus.Seal(e.cfg.Key, prep)
		acts = append(acts, consensus.Broadcast{To: e.com.Others(e.self), Env: prepEnv})
		inst.prepares[e.self] = prepEnv
		acts = e.maybePrepared(now, pp.Seq, acts)
	}
	acts = e.drainBuffered(now, acts)
	acts = e.ensureProgressTimer(acts)
	return acts
}

// acceptPrePrepare installs the proposal into the instance log.
func (e *Engine) acceptPrePrepare(now consensus.Time, pp *PrePrepare, env *consensus.Envelope, acts []consensus.Action) []consensus.Action {
	inst := e.insts[pp.Seq]
	if inst == nil || inst.view != pp.View {
		inst = newInstance(pp.View)
		e.insts[pp.Seq] = inst
	}
	inst.digest = pp.Digest
	block := pp.Block
	inst.block = &block
	inst.prePrepare = env
	// Every accepted proposal gets its own deadline so an earlier slot's
	// progress can never mask a primary stalling a later one.
	acts = e.armSlotTimer(pp.Seq, acts)
	// Commits that raced ahead of the pre-prepare can now contribute
	// their certificate votes.
	for from, cenv := range inst.commits {
		var c Commit
		if consensus.Open(cenv, consensus.KindCommit, &c) == nil {
			e.recordCommitVote(inst, from, &c)
		}
	}
	return e.maybePrepared(now, pp.Seq, acts)
}

func (e *Engine) onPrepare(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	var p Prepare
	if err := consensus.Open(env, consensus.KindPrepare, &p); err != nil {
		return nil
	}
	if p.Era != e.cfg.Era || !e.com.IsMember(env.From) {
		return nil
	}
	if p.View != e.view || e.inViewChange {
		return nil
	}
	if p.Seq <= e.lowWater {
		return nil
	}
	if p.Seq > e.highWater() {
		return e.bufferVote(p.Seq, env)
	}
	// Cross-check before the conflicting/duplicate drops below: those
	// would silently discard exactly the vote that proves a double-sign.
	e.noteVote(env, p.View, p.Seq, p.Digest)
	inst := e.insts[p.Seq]
	if inst == nil || inst.view != p.View {
		inst = newInstance(p.View)
		e.insts[p.Seq] = inst
	}
	if inst.prePrepare != nil && inst.digest != p.Digest {
		return nil // prepare for a different proposal
	}
	if _, dup := inst.prepares[env.From]; dup {
		return nil
	}
	inst.prepares[env.From] = env
	return e.maybePrepared(now, p.Seq, nil)
}

// maybePrepared fires when the instance holds the pre-prepare plus 2f
// prepares from distinct replicas (the primary's pre-prepare standing
// in for its prepare).
func (e *Engine) maybePrepared(now consensus.Time, seq uint64, acts []consensus.Action) []consensus.Action {
	inst := e.insts[seq]
	if inst == nil || inst.prePrepare == nil {
		return acts
	}
	if !inst.prepared {
		matching := 0
		for _, penv := range inst.prepares {
			var p Prepare
			if consensus.Open(penv, consensus.KindPrepare, &p) == nil && p.Digest == inst.digest {
				matching++
			}
		}
		// pre-prepare (primary) + (quorum-1) prepares = quorum distinct
		// replicas.
		if matching < e.com.Quorum()-1 {
			return acts
		}
		// Make the prepared certificate durable first (a replica that
		// forgets a prepared value breaks view-change safety), then log
		// the commit vote. Either append failing suppresses the commit.
		if !e.persistPrepared(seq, inst) {
			return acts
		}
		inst.prepared = true
	}
	acts = e.maybeSendCommit(now, seq, acts)
	// This slot preparing may release the deferred commit of its child.
	return e.maybeSendCommit(now, seq+1, acts)
}

// maybeSendCommit broadcasts our commit for seq once the slot is
// prepared AND its parent slot is prepared or executed locally. The
// parent gate is the pipelining safety invariant: a commit quorum for
// any block implies 2f+1 replicas hold prepared proofs for its whole
// ancestor chain, so every view-change quorum can re-exhibit (and
// re-issue) the ancestors of anything that may have committed.
func (e *Engine) maybeSendCommit(now consensus.Time, seq uint64, acts []consensus.Action) []consensus.Action {
	inst := e.insts[seq]
	if inst == nil || !inst.prepared || inst.executed {
		return acts
	}
	if inst.commits[e.self] != nil {
		// Commit already out; just re-check the tally.
		return e.maybeCommitted(now, seq, acts)
	}
	if !e.parentPrepared(seq) {
		return acts // deferred until the parent prepares
	}
	if !e.recordVote(store.WALCommit, e.sentCommits, inst.view, seq, inst.digest, nil) {
		return acts
	}
	certSig := e.cfg.Key.Sign(types.VoteDigest(inst.digest, e.cfg.Era, inst.view))
	c := &Commit{Era: e.cfg.Era, View: inst.view, Seq: seq, Digest: inst.digest, CertSig: certSig}
	cenv := consensus.Seal(e.cfg.Key, c)
	acts = append(acts, consensus.Broadcast{To: e.com.Others(e.self), Env: cenv})
	e.recordCommitVote(inst, e.self, c)
	inst.commits[e.self] = cenv
	acts = e.maybeCommitted(now, seq, acts)
	// Releasing this commit may unblock the child's deferred one.
	return e.maybeSendCommit(now, seq+1, acts)
}

// parentPrepared reports whether seq's predecessor is prepared or
// executed locally (slots below execNext count as executed).
func (e *Engine) parentPrepared(seq uint64) bool {
	if seq <= e.execNext {
		return true
	}
	inst := e.insts[seq-1]
	return inst != nil && (inst.prepared || inst.executed)
}

func (e *Engine) onCommit(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	var c Commit
	if err := consensus.Open(env, consensus.KindCommit, &c); err != nil {
		return nil
	}
	if c.Era != e.cfg.Era || !e.com.IsMember(env.From) {
		return nil
	}
	if c.View != e.view || e.inViewChange {
		return nil
	}
	if c.Seq <= e.lowWater {
		return nil
	}
	if c.Seq > e.highWater() {
		return e.bufferVote(c.Seq, env)
	}
	e.noteVote(env, c.View, c.Seq, c.Digest)
	inst := e.insts[c.Seq]
	if inst == nil || inst.view != c.View {
		inst = newInstance(c.View)
		e.insts[c.Seq] = inst
	}
	if inst.prePrepare != nil && inst.digest != c.Digest {
		return nil
	}
	if _, dup := inst.commits[env.From]; dup {
		return nil
	}
	inst.commits[env.From] = env
	e.recordCommitVote(inst, env.From, &c)
	return e.maybeCommitted(now, c.Seq, nil)
}

// recordCommitVote validates and stores the certificate signature
// riding on a commit message. Votes are only recorded once the
// instance's digest is known and matches, so the vote set always
// certifies the accepted value.
func (e *Engine) recordCommitVote(inst *instance, from gcrypto.Address, c *Commit) {
	if inst.prePrepare == nil || c.Digest != inst.digest || inst.certSeen[from] {
		return
	}
	pub := e.com.PubKey(from)
	if pub == nil {
		return
	}
	if types.VerifyVoteCached(pub, from, types.VoteDigest(c.Digest, c.Era, c.View), c.CertSig) != nil {
		return
	}
	inst.certSeen[from] = true
	inst.certVotes = append(inst.certVotes, types.Vote{Endorser: from, Signature: c.CertSig})
}

// maybeCommitted fires when 2f+1 distinct, certificate-valid commits
// (including our own) match the accepted digest; execution is strictly
// in sequence order. Counting only valid CertSigs guarantees the
// assembled certificate always verifies at quorum strength.
func (e *Engine) maybeCommitted(now consensus.Time, seq uint64, acts []consensus.Action) []consensus.Action {
	inst := e.insts[seq]
	if inst == nil || inst.committed || !inst.prepared || inst.block == nil {
		return acts
	}
	if len(inst.certVotes) < e.com.Quorum() {
		return acts
	}
	inst.committed = true
	return e.executeReady(now, acts)
}

// executeReady executes committed instances in order from execNext.
func (e *Engine) executeReady(now consensus.Time, acts []consensus.Action) []consensus.Action {
	for {
		inst := e.insts[e.execNext]
		if inst == nil || !inst.committed || inst.executed {
			break
		}
		inst.executed = true
		seq := e.execNext
		e.execNext++
		e.executedBlocks++
		block := inst.block
		// Attach the commit certificate assembled from CertSigs.
		votes := inst.certVotes
		if len(votes) > e.com.Quorum() {
			votes = votes[:e.com.Quorum()]
		}
		block.Cert = &types.Certificate{
			BlockHash: inst.digest,
			Era:       e.cfg.Era,
			View:      inst.view,
			Votes:     append([]types.Vote(nil), votes...),
		}
		e.ownDigests[seq] = inst.digest
		acts = append(acts, consensus.CommitBlock{Block: block})

		// This slot made it: retire its deadline. Only its own execution
		// does so — other slots' progress never touches it, which is what
		// keeps a stalled later slot detectable.
		acts = e.stopSlotTimer(seq, acts)
		// The pool-level grace period saw progress too.
		acts = e.resetProgressTimer(acts)

		if seq%e.cfg.CheckpointInterval == 0 {
			ck := &Checkpoint{Era: e.cfg.Era, Seq: seq, Digest: inst.digest}
			ckEnv := consensus.Seal(e.cfg.Key, ck)
			acts = append(acts, consensus.Broadcast{To: e.com.Others(e.self), Env: ckEnv})
			e.noteCheckpoint(seq, e.self, inst.digest)
		}
	}
	// An executed parent may release a child's deferred commit, and the
	// advanced window may make buffered messages deliverable.
	acts = e.maybeSendCommit(now, e.execNext, acts)
	acts = e.maybePropose(now, acts)
	acts = e.drainBuffered(now, acts)
	acts = e.ensureProgressTimer(acts)
	return acts
}

// --- checkpoints ---

func (e *Engine) onCheckpoint(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	var ck Checkpoint
	if err := consensus.Open(env, consensus.KindCheckpoint, &ck); err != nil {
		return nil
	}
	if ck.Era != e.cfg.Era || !e.com.IsMember(env.From) {
		return nil
	}
	if ck.Seq <= e.lowWater {
		return nil
	}
	e.noteCheckpoint(ck.Seq, env.From, ck.Digest)
	// A stabilized checkpoint lifts the watermarks: buffered messages
	// just above the old window may be deliverable now.
	return e.drainBuffered(now, nil)
}

func (e *Engine) noteCheckpoint(seq uint64, from gcrypto.Address, digest gcrypto.Hash) {
	m := e.checkpoints[seq]
	if m == nil {
		m = make(map[gcrypto.Address]gcrypto.Hash)
		e.checkpoints[seq] = m
	}
	m[from] = digest
	// Count signatures matching our own executed digest (if known);
	// otherwise the majority digest.
	own, haveOwn := e.ownDigests[seq]
	counts := make(map[gcrypto.Hash]int)
	for _, d := range m {
		counts[d]++
	}
	for d, c := range counts {
		if c >= e.com.Quorum() && (!haveOwn || d == own) {
			e.stabilizeCheckpoint(seq)
			return
		}
	}
}

// stabilizeCheckpoint garbage-collects the log below seq.
func (e *Engine) stabilizeCheckpoint(seq uint64) {
	if seq <= e.lowWater {
		return
	}
	e.lowWater = seq
	for s := range e.insts {
		if s <= seq {
			delete(e.insts, s)
		}
	}
	for s := range e.checkpoints {
		if s <= seq {
			delete(e.checkpoints, s)
		}
	}
	for s := range e.ownDigests {
		if s < seq {
			delete(e.ownDigests, s)
		}
	}
	e.pruneSentVotes(seq)
	e.pruneSeenVotes(seq)
	// A stable checkpoint also makes the durable log below it dead
	// weight; compacting here (rather than on a timer) keeps disk usage
	// a pure function of protocol progress.
	if c, ok := e.wal.(WALCompacter); ok && e.wal != nil {
		c.CompactBelow(e.cfg.Era, seq)
	}
}

// --- progress timer ---

func (e *Engine) hasOutstandingWork() bool {
	if e.cfg.App.PendingTxs() > 0 {
		return true
	}
	for s, inst := range e.insts {
		if s >= e.execNext && inst.prePrepare != nil && !inst.executed {
			return true
		}
	}
	return false
}

// ensureProgressTimer arms the progress timer if there is outstanding
// work and none is armed.
func (e *Engine) ensureProgressTimer(acts []consensus.Action) []consensus.Action {
	if e.inViewChange || e.progressTID != 0 || !e.hasOutstandingWork() {
		return acts
	}
	id := e.cfg.Timers.Next()
	e.progressTID = id
	e.timers[id] = timerProgress
	return append(acts, consensus.StartTimer{ID: id, Delay: e.cfg.ViewChangeTimeout})
}

// resetProgressTimer stops any armed progress timer and re-arms if
// needed.
func (e *Engine) resetProgressTimer(acts []consensus.Action) []consensus.Action {
	if e.progressTID != 0 {
		acts = append(acts, consensus.StopTimer{ID: e.progressTID})
		delete(e.timers, e.progressTID)
		e.progressTID = 0
	}
	return e.ensureProgressTimer(acts)
}

// --- per-slot timers ---

// armSlotTimer gives an accepted proposal its own progress deadline.
// The delay grows with the slot's distance from the execution cursor so
// deadlines tend to fire oldest-first: the oldest unexecuted slot
// drives the view change, never a later one racing ahead of it.
func (e *Engine) armSlotTimer(seq uint64, acts []consensus.Action) []consensus.Action {
	if e.inViewChange {
		return acts
	}
	if _, armed := e.slotTimers[seq]; armed {
		return acts
	}
	id := e.cfg.Timers.Next()
	e.slotTimers[seq] = id
	e.timerSlots[id] = seq
	e.timers[id] = timerSlot
	depth := uint64(1)
	if seq > e.execNext {
		depth += seq - e.execNext
	}
	return append(acts, consensus.StartTimer{ID: id, Delay: time.Duration(depth) * e.cfg.ViewChangeTimeout})
}

// stopSlotTimer cancels one slot's deadline (it executed, was synced
// past, or a view change supersedes it).
func (e *Engine) stopSlotTimer(seq uint64, acts []consensus.Action) []consensus.Action {
	id, ok := e.slotTimers[seq]
	if !ok {
		return acts
	}
	delete(e.slotTimers, seq)
	delete(e.timerSlots, id)
	delete(e.timers, id)
	return append(acts, consensus.StopTimer{ID: id})
}

// stopAllSlotTimers cancels every slot deadline (view-change entry).
func (e *Engine) stopAllSlotTimers(acts []consensus.Action) []consensus.Action {
	for seq := range e.slotTimers {
		acts = e.stopSlotTimer(seq, acts)
	}
	return acts
}

// --- hold-back buffer ---

// bufferVote holds a message addressed just above the acceptance window
// so it can be replayed deterministically once the window advances.
// Messages more than one checkpoint interval past the high watermark
// are dropped outright — a correct peer can never be that far ahead,
// and the bound keeps the buffer finite under a flooding adversary.
func (e *Engine) bufferVote(seq uint64, env *consensus.Envelope) []consensus.Action {
	if seq > e.highWater()+e.cfg.CheckpointInterval {
		return nil
	}
	if len(e.pendingMsgs[seq]) >= 3*e.com.Size() {
		return nil
	}
	e.pendingMsgs[seq] = append(e.pendingMsgs[seq], env)
	return nil
}

// bufferedDeliverable reports whether a held-back message has entered
// the window it was waiting for.
func (e *Engine) bufferedDeliverable(env *consensus.Envelope, seq uint64) bool {
	switch env.MsgKind {
	case consensus.KindPrePrepare:
		if seq < e.execNext || seq >= e.execNext+uint64(e.maxInFlight) || seq > e.highWater() {
			return false
		}
		// Redelivering a proposal whose parent is still missing would
		// only bounce it back into the buffer.
		return seq == e.execNext || e.parentBlock(seq) != nil
	default:
		return seq > e.lowWater && seq <= e.highWater()
	}
}

// drainBuffered replays held-back messages that have entered the
// acceptance window, ordered by sequence number so the outcome is
// independent of original arrival order. Redelivery goes through the
// normal handlers (and may legitimately re-buffer); passes are bounded
// by the window span, and re-entry from a handler is a no-op.
func (e *Engine) drainBuffered(now consensus.Time, acts []consensus.Action) []consensus.Action {
	if e.draining || len(e.pendingMsgs) == 0 {
		return acts
	}
	e.draining = true
	defer func() { e.draining = false }()
	maxPasses := int(2*e.cfg.CheckpointInterval) + 2
	for pass := 0; pass < maxPasses; pass++ {
		seqs := make([]uint64, 0, len(e.pendingMsgs))
		for s := range e.pendingMsgs {
			if s < e.execNext {
				delete(e.pendingMsgs, s) // decided without us; stale
				continue
			}
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		progressed := false
		for _, s := range seqs {
			envs := e.pendingMsgs[s]
			var keep, fire []*consensus.Envelope
			for _, env := range envs {
				if e.bufferedDeliverable(env, s) {
					fire = append(fire, env)
				} else {
					keep = append(keep, env)
				}
			}
			if len(keep) == 0 {
				delete(e.pendingMsgs, s)
			} else {
				e.pendingMsgs[s] = keep
			}
			for _, env := range fire {
				progressed = true
				switch env.MsgKind {
				case consensus.KindPrePrepare:
					acts = append(acts, e.onPrePrepare(now, env)...)
				case consensus.KindPrepare:
					acts = append(acts, e.onPrepare(now, env)...)
				case consensus.KindCommit:
					acts = append(acts, e.onCommit(now, env)...)
				}
			}
		}
		if !progressed {
			break
		}
	}
	return acts
}
