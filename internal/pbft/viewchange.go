package pbft

import (
	"sort"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/store"
)

// startViewChange abandons the current view and broadcasts a
// view-change message for target.
func (e *Engine) startViewChange(now consensus.Time, target uint64) []consensus.Action {
	if target <= e.view {
		return nil
	}
	e.inViewChange = true
	e.vcTarget = target

	var acts []consensus.Action
	// Progress and slot timers are meaningless during a view change;
	// the view-change completion timer takes over the liveness watch.
	if e.progressTID != 0 {
		acts = append(acts, consensus.StopTimer{ID: e.progressTID})
		delete(e.timers, e.progressTID)
		e.progressTID = 0
	}
	acts = e.stopAllSlotTimers(acts)
	// Arm the view-change completion timer (escalate if it stalls).
	if e.vcTID != 0 {
		acts = append(acts, consensus.StopTimer{ID: e.vcTID})
		delete(e.timers, e.vcTID)
	}
	e.vcTID = e.cfg.Timers.Next()
	e.timers[e.vcTID] = timerViewChange
	acts = append(acts, consensus.StartTimer{ID: e.vcTID, Delay: e.vcRetryDelay})

	e.recordPosition(store.WALViewChange, target)
	vc := &ViewChange{
		Era:        e.cfg.Era,
		NewView:    target,
		LastStable: e.lowWater,
		Prepared:   e.preparedProofs(),
	}
	env := consensus.Seal(e.cfg.Key, vc)
	acts = append(acts, consensus.Broadcast{To: e.com.Others(e.self), Env: env})
	e.noteViewChange(env.From, vc, env)
	// A lone replica (committee of 1) can complete instantly.
	acts = e.maybeFinishViewChange(now, acts)
	return acts
}

// preparedProofs gathers prepared-but-unexecuted proposals above the
// stable checkpoint.
func (e *Engine) preparedProofs() []PreparedProof {
	var out []PreparedProof
	for seq, inst := range e.insts {
		if seq <= e.lowWater || !inst.prepared || inst.executed || inst.prePrepare == nil {
			continue
		}
		if proof := e.proofForInstance(seq, inst); proof != nil {
			out = append(out, *proof)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// proofForInstance assembles the prepared proof for one instance: its
// pre-prepare plus quorum-1 matching prepares from non-primary
// replicas. It is used both for view-change messages and for the WAL's
// prepared records.
func (e *Engine) proofForInstance(seq uint64, inst *instance) *PreparedProof {
	if inst.prePrepare == nil {
		return nil
	}
	proof := &PreparedProof{
		Seq:           seq,
		View:          inst.view,
		Digest:        inst.digest,
		PrePrepareEnv: consensus.EncodeEnvelope(inst.prePrepare),
	}
	count := 0
	for _, penv := range inst.prepares {
		if penv.From == e.com.Primary(inst.view) {
			continue
		}
		var p Prepare
		if consensus.Open(penv, consensus.KindPrepare, &p) != nil || p.Digest != inst.digest {
			continue
		}
		proof.PrepareEnvs = append(proof.PrepareEnvs, consensus.EncodeEnvelope(penv))
		count++
		if count >= e.com.Quorum()-1 {
			break
		}
	}
	return proof
}

// verifyPreparedProof checks a prepared proof carried in a view-change.
func (e *Engine) verifyPreparedProof(p *PreparedProof) bool {
	ppEnv, err := consensus.DecodeEnvelope(p.PrePrepareEnv)
	if err != nil {
		return false
	}
	var pp PrePrepare
	if consensus.Open(ppEnv, consensus.KindPrePrepare, &pp) != nil {
		return false
	}
	if pp.Era != e.cfg.Era || pp.Seq != p.Seq || pp.View != p.View || pp.Digest != p.Digest {
		return false
	}
	if ppEnv.From != e.com.Primary(pp.View) {
		return false
	}
	if pp.Digest != pp.Block.Hash() {
		return false
	}
	seen := map[gcrypto.Address]bool{ppEnv.From: true}
	valid := 0
	for _, raw := range p.PrepareEnvs {
		env, err := consensus.DecodeEnvelope(raw)
		if err != nil {
			continue
		}
		var prep Prepare
		if consensus.Open(env, consensus.KindPrepare, &prep) != nil {
			continue
		}
		if prep.Era != e.cfg.Era || prep.Seq != p.Seq || prep.View != p.View || prep.Digest != p.Digest {
			continue
		}
		if !e.com.IsMember(env.From) || seen[env.From] {
			continue
		}
		seen[env.From] = true
		valid++
	}
	return valid >= e.com.Quorum()-1
}

func (e *Engine) onViewChange(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	var vc ViewChange
	if err := consensus.Open(env, consensus.KindViewChange, &vc); err != nil {
		return nil
	}
	if vc.Era != e.cfg.Era || !e.com.IsMember(env.From) {
		return nil
	}
	if vc.NewView <= e.view {
		// A replica petitioning for a view we already left is behind —
		// it crashed or was cut off while the committee moved on, and
		// nobody will second a dead view. Hand it the NewView
		// certificate of our current view so it can verify the jump
		// and rejoin, instead of escalating through stale views alone.
		if e.newViewEnv != nil {
			return []consensus.Action{consensus.Send{To: env.From, Env: e.newViewEnv}}
		}
		return nil
	}
	e.noteViewChange(env.From, &vc, env)

	var acts []consensus.Action
	// Liveness rule: if f+1 distinct replicas want views above ours,
	// join the smallest such view even if our timer hasn't fired.
	if !e.inViewChange || e.vcTarget < vc.NewView {
		if v, ok := e.joinableView(); ok && (!e.inViewChange || v > e.vcTarget) {
			acts = append(acts, e.startViewChange(now, v)...)
		}
	}
	acts = e.maybeFinishViewChange(now, acts)
	return acts
}

func (e *Engine) noteViewChange(from gcrypto.Address, vc *ViewChange, env *consensus.Envelope) {
	m := e.viewChanges[vc.NewView]
	if m == nil {
		m = make(map[gcrypto.Address]*vcRecord)
		e.viewChanges[vc.NewView] = m
	}
	if _, dup := m[from]; !dup {
		m[from] = &vcRecord{msg: vc, env: env}
	}
}

// joinableView returns the smallest view v > current such that f+1
// distinct replicas have asked for a view >= v.
func (e *Engine) joinableView() (uint64, bool) {
	votersAbove := make(map[gcrypto.Address]uint64) // replica -> max view requested
	for v, m := range e.viewChanges {
		if v <= e.view {
			continue
		}
		for from := range m {
			if votersAbove[from] < v {
				votersAbove[from] = v
			}
		}
	}
	if len(votersAbove) < e.com.WeakQuorum() {
		return 0, false
	}
	views := make([]uint64, 0, len(votersAbove))
	for _, v := range votersAbove {
		views = append(views, v)
	}
	sort.Slice(views, func(i, j int) bool { return views[i] < views[j] })
	// The f+1-th largest requested view is supported by f+1 replicas.
	v := views[len(views)-e.com.WeakQuorum()]
	if v <= e.view {
		return 0, false
	}
	return v, true
}

// maybeFinishViewChange lets the new primary assemble and broadcast a
// NewView once it holds 2f+1 view-change messages for the target.
func (e *Engine) maybeFinishViewChange(now consensus.Time, acts []consensus.Action) []consensus.Action {
	if !e.inViewChange {
		return acts
	}
	target := e.vcTarget
	if e.com.Primary(target) != e.self {
		return acts
	}
	m := e.viewChanges[target]
	if len(m) < e.com.Quorum() {
		return acts
	}
	// Deterministic pick of 2f+1 view-changes (sorted by address).
	froms := make([]gcrypto.Address, 0, len(m))
	for from := range m {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i].Less(froms[j]) })
	froms = froms[:e.com.Quorum()]

	nv := &NewView{Era: e.cfg.Era, View: target}
	chosen := make([]*vcRecord, 0, len(froms))
	for _, from := range froms {
		rec := m[from]
		chosen = append(chosen, rec)
		nv.ViewChangeEnvs = append(nv.ViewChangeEnvs, consensus.EncodeEnvelope(rec.env))
	}
	// Re-issue pre-prepares for the prepared values in the chosen set.
	for _, pp := range e.reissuedPrePrepares(target, chosen) {
		nv.PrePrepares = append(nv.PrePrepares, consensus.EncodeEnvelope(pp))
	}
	env := consensus.Seal(e.cfg.Key, nv)
	e.newViewEnv = env
	acts = append(acts, consensus.Broadcast{To: e.com.Others(e.self), Env: env})
	return e.enterNewView(now, nv, acts)
}

// reissuedPrePrepares computes the O set: for each prepared seq above
// the max stable checkpoint in the chosen view-changes, a fresh
// pre-prepare in the new view carrying the prepared block (picking the
// highest-view proof per seq).
func (e *Engine) reissuedPrePrepares(target uint64, chosen []*vcRecord) []*consensus.Envelope {
	maxStable := uint64(0)
	for _, rec := range chosen {
		if rec.msg.LastStable > maxStable {
			maxStable = rec.msg.LastStable
		}
	}
	best := make(map[uint64]*PreparedProof)
	for _, rec := range chosen {
		for i := range rec.msg.Prepared {
			p := &rec.msg.Prepared[i]
			if p.Seq <= maxStable {
				continue
			}
			if !e.verifyPreparedProof(p) {
				continue
			}
			if b, ok := best[p.Seq]; !ok || p.View > b.View {
				best[p.Seq] = p
			}
		}
	}
	seqs := make([]uint64, 0, len(best))
	for s := range best {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	// Walk the prepared proofs as a chain from the stable checkpoint:
	// each re-issued block must directly extend the previous one (seq
	// and PrevHash). Truncate at the first gap or hash mismatch — the
	// commit-after-parent-prepared rule guarantees anything that might
	// have committed has its full ancestor chain prepared in every
	// view-change quorum, so a proof past a gap belongs to a speculative
	// suffix that cannot have committed and is safe to abandon.
	var out []*consensus.Envelope
	prevSeq := uint64(0)
	var prevDigest gcrypto.Hash
	first := true
	for _, s := range seqs {
		p := best[s]
		srcEnv, err := consensus.DecodeEnvelope(p.PrePrepareEnv)
		if err != nil {
			continue
		}
		var src PrePrepare
		if consensus.Open(srcEnv, consensus.KindPrePrepare, &src) != nil {
			continue
		}
		if !first {
			if s != prevSeq+1 || src.Block.Header.PrevHash != prevDigest {
				break
			}
		}
		first = false
		prevSeq = s
		prevDigest = p.Digest
		// A re-issued pre-prepare is still a proposal signed by this
		// replica at (target, s): it goes through the same durable
		// no-equivocation gate as a fresh one. A refusal truncates the
		// chain here — children of an unissuable parent are unusable.
		if !e.recordVote(store.WALPrePrepare, e.sentPrePrepares, target, s, p.Digest, nil) {
			break
		}
		block := src.Block
		// The block header keeps its original view (it is the same
		// value); the new pre-prepare carries the new view.
		pp := &PrePrepare{Era: e.cfg.Era, View: target, Seq: s, Digest: p.Digest, Block: block}
		out = append(out, consensus.Seal(e.cfg.Key, pp))
	}
	return out
}

func (e *Engine) onNewView(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	var nv NewView
	if err := consensus.Open(env, consensus.KindNewView, &nv); err != nil {
		return nil
	}
	if nv.Era != e.cfg.Era || nv.View <= e.view {
		return nil
	}
	if env.From != e.com.Primary(nv.View) {
		return nil
	}
	// Verify the 2f+1 view-change envelopes.
	seen := make(map[gcrypto.Address]bool)
	valid := 0
	for _, raw := range nv.ViewChangeEnvs {
		vcEnv, err := consensus.DecodeEnvelope(raw)
		if err != nil {
			continue
		}
		var vc ViewChange
		if consensus.Open(vcEnv, consensus.KindViewChange, &vc) != nil {
			continue
		}
		if vc.Era != e.cfg.Era || vc.NewView != nv.View {
			continue
		}
		if !e.com.IsMember(vcEnv.From) || seen[vcEnv.From] {
			continue
		}
		seen[vcEnv.From] = true
		valid++
	}
	if valid < e.com.Quorum() {
		return nil
	}
	e.newViewEnv = env
	return e.enterNewView(now, &nv, nil)
}

// enterNewView installs the new view on this replica and processes the
// re-issued pre-prepares.
func (e *Engine) enterNewView(now consensus.Time, nv *NewView, acts []consensus.Action) []consensus.Action {
	e.recordPosition(store.WALNewView, nv.View)
	e.view = nv.View
	e.inViewChange = false
	e.vcTarget = 0
	e.vcRetryDelay = e.cfg.ViewChangeTimeout
	e.viewChangesFin++
	if e.vcTID != 0 {
		acts = append(acts, consensus.StopTimer{ID: e.vcTID})
		delete(e.timers, e.vcTID)
		e.vcTID = 0
	}
	// Slot deadlines belong to the old view; surviving proposals get
	// fresh ones as their re-issues are accepted below.
	acts = e.stopAllSlotTimers(acts)
	// Drop un-executed instances from older views; prepared values
	// come back through the re-issued pre-prepares.
	for s, inst := range e.insts {
		if s >= e.execNext && !inst.executed && inst.view < nv.View {
			delete(e.insts, s)
		}
	}
	// Clear stale view-change state at or below the new view.
	for v := range e.viewChanges {
		if v <= nv.View {
			delete(e.viewChanges, v)
		}
	}
	// Process the new primary's re-issued pre-prepares.
	for _, raw := range nv.PrePrepares {
		ppEnv, err := consensus.DecodeEnvelope(raw)
		if err != nil {
			continue
		}
		if ppEnv.From == e.self {
			// Our own re-issue (we are the new primary): install and
			// wait for prepares.
			var pp PrePrepare
			if consensus.Open(ppEnv, consensus.KindPrePrepare, &pp) == nil && pp.Seq >= e.execNext {
				acts = e.acceptPrePrepare(now, &pp, ppEnv, acts)
			}
			continue
		}
		acts = append(acts, e.onPrePrepare(now, ppEnv)...)
	}
	acts = e.maybePropose(now, acts)
	acts = e.drainBuffered(now, acts)
	acts = e.ensureProgressTimer(acts)
	return acts
}
