package pbft

import (
	"sort"

	"gpbft/internal/codec"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/store"
	"gpbft/internal/types"
)

// WAL is the durable sink for consensus events. The engine appends a
// record before the corresponding vote leaves the replica
// (persist-before-send); a failed append suppresses the vote entirely.
// *store.WAL and *store.MemWAL both satisfy it.
type WAL interface {
	Append(rec store.WALRecord) error
}

// WALCompacter is the optional compaction surface of a WAL. When the
// configured WAL implements it, the engine truncates vote records at or
// below each stable checkpoint as the checkpoint stabilizes, bounding
// the log to the in-flight window. Best effort: a compaction failure
// never blocks consensus (the log stays larger, nothing is lost).
type WALCompacter interface {
	CompactBelow(era, seq uint64) (int64, error)
}

// voteKey identifies a vote slot: a correct replica sends at most one
// digest per kind per (view, seq) within an era.
type voteKey struct {
	View uint64
	Seq  uint64
}

// DurableState is what a replica can reconstruct about its own past
// behaviour from its write-ahead log: the view it had reached, every
// vote it may already have sent, and the prepared certificates it must
// still be able to exhibit in view changes.
type DurableState struct {
	Era             uint64
	View            uint64
	SentPrePrepares map[voteKey]gcrypto.Hash
	SentPrepares    map[voteKey]gcrypto.Hash
	SentCommits     map[voteKey]gcrypto.Hash
	// Prepared holds the highest-view prepared proof per sequence.
	Prepared map[uint64]*PreparedProof
}

// RecoverState folds a WAL's records into the durable state for era.
// Records from other eras are ignored: they belong to consensus
// instances that can no longer conflict (older eras are complete; the
// chain rejects their messages), which also makes a crash between an
// era switch and the WAL rotation harmless.
func RecoverState(era uint64, recs []store.WALRecord) *DurableState {
	d := &DurableState{
		Era:             era,
		SentPrePrepares: make(map[voteKey]gcrypto.Hash),
		SentPrepares:    make(map[voteKey]gcrypto.Hash),
		SentCommits:     make(map[voteKey]gcrypto.Hash),
		Prepared:        make(map[uint64]*PreparedProof),
	}
	for i := range recs {
		rec := &recs[i]
		if rec.Era != era {
			continue
		}
		k := voteKey{View: rec.View, Seq: rec.Seq}
		switch rec.Kind {
		case store.WALPrePrepare:
			d.SentPrePrepares[k] = rec.Digest
		case store.WALPrepare:
			d.SentPrepares[k] = rec.Digest
		case store.WALCommit:
			d.SentCommits[k] = rec.Digest
		case store.WALPrepared:
			var proof PreparedProof
			r := codec.NewReader(rec.Data)
			if proof.UnmarshalCanonical(r) != nil || r.Finish() != nil {
				continue // a damaged proof only costs liveness, never safety
			}
			if best, ok := d.Prepared[proof.Seq]; !ok || proof.View > best.View {
				d.Prepared[proof.Seq] = &proof
			}
		case store.WALNewView:
			if rec.View > d.View {
				d.View = rec.View
			}
		case store.WALViewChange, store.WALEra:
			// Position/trace records; nothing to restore. A crash during
			// a view change simply restarts it from the last entered view.
		}
	}
	return d
}

// recordVote persists a vote before it may be sent. It returns false
// when the vote must be suppressed: either this replica already
// persisted a DIFFERENT digest for the same (kind, view, seq) — the
// no-equivocation-after-restart rule — or the WAL refused the append
// (fail-safe: a vote that is not durable never reaches the network).
// Re-sending an identical vote is allowed and not re-persisted;
// ed25519 signing is deterministic, so the bytes cannot diverge.
func (e *Engine) recordVote(kind store.WALKind, sent map[voteKey]gcrypto.Hash, view, seq uint64, digest gcrypto.Hash, data []byte) bool {
	k := voteKey{View: view, Seq: seq}
	if prev, ok := sent[k]; ok {
		return prev == digest
	}
	if e.wal != nil {
		err := e.wal.Append(store.WALRecord{
			Kind: kind, Era: e.cfg.Era, View: view, Seq: seq, Digest: digest, Data: data,
		})
		if err != nil {
			return false
		}
	}
	sent[k] = digest
	return true
}

// recordPosition persists a non-vote protocol event (view change
// started, new view entered) best-effort. These records restore the
// replica's position after a crash but are not equivocation-critical:
// losing one costs at most a repeated view change, never safety, so a
// failing disk does not wedge view transitions.
func (e *Engine) recordPosition(kind store.WALKind, view uint64) {
	if e.wal == nil {
		return
	}
	_ = e.wal.Append(store.WALRecord{Kind: kind, Era: e.cfg.Era, View: view})
}

// persistPrepared stores the instance's prepared certificate so a
// restarted replica can still exhibit the value in view changes. It
// returns false if the proof could not be made durable — the caller
// then refuses to advance to prepared (and to send its commit).
func (e *Engine) persistPrepared(seq uint64, inst *instance) bool {
	if e.wal == nil {
		return true
	}
	proof := e.proofForInstance(seq, inst)
	if proof == nil {
		return true // cannot happen at the prepared transition; be lenient
	}
	err := e.wal.Append(store.WALRecord{
		Kind: store.WALPrepared, Era: e.cfg.Era, View: inst.view, Seq: seq,
		Digest: inst.digest, Data: codec.Encode(proof),
	})
	return err == nil
}

// restoreDurable installs recovered state into a freshly built engine:
// the reached view, the sent-vote ledgers, and the prepared instances
// (rebuilt from their proofs so preparedProofs can re-exhibit them).
func (e *Engine) restoreDurable(d *DurableState) {
	if d == nil || d.Era != e.cfg.Era {
		return
	}
	e.view = d.View
	for k, v := range d.SentPrePrepares {
		e.sentPrePrepares[k] = v
	}
	for k, v := range d.SentPrepares {
		e.sentPrepares[k] = v
	}
	for k, v := range d.SentCommits {
		e.sentCommits[k] = v
	}
	for seq, proof := range d.Prepared {
		if seq < e.execNext {
			continue // already executed and persisted in the block log
		}
		e.reinstallPrepared(seq, proof)
	}
}

// reinstallPrepared rebuilds an in-memory instance from a persisted
// prepared proof. The proof carries the original envelopes, so the
// instance ends up exactly as prepared as it was before the crash; the
// commit vote (if owed) is re-sent from Init.
func (e *Engine) reinstallPrepared(seq uint64, proof *PreparedProof) {
	if !e.verifyPreparedProof(proof) {
		return // tampered or truncated proof: treat as never prepared
	}
	ppEnv, err := consensus.DecodeEnvelope(proof.PrePrepareEnv)
	if err != nil {
		return
	}
	var pp PrePrepare
	if consensus.Open(ppEnv, consensus.KindPrePrepare, &pp) != nil {
		return
	}
	inst := newInstance(proof.View)
	inst.digest = proof.Digest
	block := pp.Block
	inst.block = &block
	inst.prePrepare = ppEnv
	for _, raw := range proof.PrepareEnvs {
		penv, err := consensus.DecodeEnvelope(raw)
		if err != nil {
			continue
		}
		inst.prepares[penv.From] = penv
	}
	inst.prepared = true
	e.insts[seq] = inst
}

// resendRecoveredVotes re-broadcasts the commit votes this replica
// owes for prepared instances in its current view. Signing is
// deterministic, so the re-sent vote is byte-identical to anything the
// network may already have seen — a retransmission, not an
// equivocation. Sequences are walked in order for determinism.
func (e *Engine) resendRecoveredVotes(acts []consensus.Action) []consensus.Action {
	seqs := make([]uint64, 0, len(e.insts))
	for s := range e.insts {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		inst := e.insts[seq]
		if !inst.prepared || inst.executed || inst.view != e.view || seq < e.execNext {
			continue
		}
		if inst.commits[e.self] != nil {
			continue
		}
		// The pipelining gate holds across restarts too: a commit leaves
		// only after the parent slot is prepared. The walk is ascending,
		// so a recovered chain re-sends bottom-up; if slot s was never
		// prepared here, commits for s+1.. stay withheld exactly as they
		// were before the crash.
		if !e.parentPrepared(seq) {
			continue
		}
		if !e.recordVote(store.WALCommit, e.sentCommits, inst.view, seq, inst.digest, nil) {
			continue
		}
		certSig := e.cfg.Key.Sign(types.VoteDigest(inst.digest, e.cfg.Era, inst.view))
		c := &Commit{Era: e.cfg.Era, View: inst.view, Seq: seq, Digest: inst.digest, CertSig: certSig}
		cenv := consensus.Seal(e.cfg.Key, c)
		acts = append(acts, consensus.Broadcast{To: e.com.Others(e.self), Env: cenv})
		e.recordCommitVote(inst, e.self, c)
		inst.commits[e.self] = cenv
	}
	return acts
}

// pruneSentVotes drops sent-vote entries at or below the stable
// checkpoint; those sequences are final and can never be voted again.
func (e *Engine) pruneSentVotes(seq uint64) {
	for _, m := range []map[voteKey]gcrypto.Hash{e.sentPrePrepares, e.sentPrepares, e.sentCommits} {
		for k := range m {
			if k.Seq <= seq {
				delete(m, k)
			}
		}
	}
}
