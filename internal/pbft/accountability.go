package pbft

import (
	"gpbft/internal/consensus"
	"gpbft/internal/evidence"
	"gpbft/internal/gcrypto"
)

// Double-sign detection. A correct replica sends at most one digest per
// vote kind per (view, seq) — its own WAL enforces that even across
// crashes — so two verified envelopes from one sender disagreeing on
// the digest for one slot are proof of Byzantine behavior. The engine
// remembers the first vote it sees for every live slot and, on a
// conflicting second one, hands a self-verifying evidence record to the
// configured sink (the era layer, which turns it into an evidence
// transaction).
//
// The seen-vote index is bounded: prepares and commits are only indexed
// inside the watermark window and pruned with the sent-vote ledgers at
// every stable checkpoint; pre-prepares only for the current view's
// primary at the single in-flight height.

// seenSlot identifies one vote slot from one sender.
type seenSlot struct {
	kind consensus.MsgKind
	view uint64
	seq  uint64
	from gcrypto.Address
}

// seenVote retains the first verified vote for a slot; the envelope is
// kept because it becomes half of the proof if a conflict shows up.
type seenVote struct {
	digest gcrypto.Hash
	env    *consensus.Envelope
}

// noteVote cross-checks a verified vote envelope against the earlier
// votes of the same sender for the same slot, emitting a DoubleSign
// record on conflict. Callers must pass envelopes that already passed
// consensus.Open (the proof embeds them verbatim).
func (e *Engine) noteVote(env *consensus.Envelope, view, seq uint64, digest gcrypto.Hash) {
	if e.cfg.EvidenceSink == nil {
		return
	}
	k := seenSlot{kind: env.MsgKind, view: view, seq: seq, from: env.From}
	prev, ok := e.seenVotes[k]
	if !ok {
		e.seenVotes[k] = seenVote{digest: digest, env: env}
		return
	}
	if prev.digest == digest || e.accused[env.From] {
		return // retransmission, or offender already reported this era
	}
	rec, err := evidence.NewDoubleSign(prev.env, env)
	if err != nil {
		return
	}
	e.accused[env.From] = true
	e.cfg.EvidenceSink(rec)
}

// pruneSeenVotes drops seen-vote entries at or below the stable
// checkpoint, alongside pruneSentVotes.
func (e *Engine) pruneSeenVotes(seq uint64) {
	for k := range e.seenVotes {
		if k.seq <= seq {
			delete(e.seenVotes, k)
		}
	}
}
