package pbft_test

import (
	"testing"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
	"gpbft/internal/types"
)

// driveCommit pushes one block through the engine at the given seq by
// synthesizing the peer traffic (the rig engine is a backup).
func (r *unitRig) driveCommit(t *testing.T, seq uint64, prim, selfPos int) *types.Block {
	t.Helper()
	// Build the block on top of the rig app's chain head.
	head := r.app.Chain().Head()
	tx := clientTx(int(seq)*7, seq)
	b := types.NewBlock(types.BlockHeader{
		Height: seq, Era: 0, View: 0, Seq: seq,
		PrevHash:  head.Hash(),
		Proposer:  r.com.Primary(0),
		Timestamp: epoch.Add(1),
	}, []types.Transaction{*tx})
	pp := consensus.Seal(r.keys[prim], &pbft.PrePrepare{
		Era: 0, View: 0, Seq: seq, Digest: b.Hash(), Block: *b,
	})
	r.eng.OnEnvelope(0, pp)
	for i := 0; i < 4; i++ {
		if i == selfPos || i == prim {
			continue
		}
		r.eng.OnEnvelope(0, consensus.Seal(r.keys[i], &pbft.Prepare{
			Era: 0, View: 0, Seq: seq, Digest: b.Hash(),
		}))
	}
	var committedBlock *types.Block
	for i := 0; i < 4; i++ {
		if i == selfPos {
			continue
		}
		acts := r.eng.OnEnvelope(0, consensus.Seal(r.keys[i], &pbft.Commit{
			Era: 0, View: 0, Seq: seq, Digest: b.Hash(),
			CertSig: r.keys[i].Sign(types.VoteDigest(b.Hash(), 0, 0)),
		}))
		for _, cb := range commitsOf(acts) {
			committedBlock = cb
			// Mirror the runtime: apply to the chain so the next
			// driveCommit builds on the new head.
			if err := r.app.Commit(cb); err != nil {
				t.Fatalf("apply seq %d: %v", seq, err)
			}
			r.eng.OnCommitApplied(0)
		}
	}
	if committedBlock == nil {
		t.Fatalf("seq %d did not commit", seq)
	}
	return committedBlock
}

// TestCheckpointStabilizationGC: after K executions plus matching peer
// checkpoints, the log garbage-collects and the low watermark advances.
func TestCheckpointStabilizationGC(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	// Small checkpoint interval (K = 2) so two commits reach a
	// checkpoint boundary.
	r := newUnitRigWithK(t, selfPos, 2)
	r.eng.Init(0)

	var digests []gcrypto.Hash
	for seq := uint64(1); seq <= 2; seq++ {
		b := r.driveCommit(t, seq, prim, selfPos)
		digests = append(digests, b.Hash())
	}
	if r.eng.LowWater() != 0 {
		t.Fatalf("low water %d before peer checkpoints", r.eng.LowWater())
	}
	// Peer checkpoints at seq 2 with the matching digest stabilize it.
	count := 0
	for i := 0; i < 4 && count < 2; i++ {
		if i == selfPos {
			continue
		}
		r.eng.OnEnvelope(0, consensus.Seal(r.keys[i], &pbft.Checkpoint{
			Era: 0, Seq: 2, Digest: digests[1],
		}))
		count++
	}
	if r.eng.LowWater() != 2 {
		t.Fatalf("low water %d after quorum of checkpoints, want 2", r.eng.LowWater())
	}
}

// TestCheckpointMismatchedDigestIgnored: checkpoints with a digest that
// disagrees with our executed state never stabilize.
func TestCheckpointMismatchedDigestIgnored(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newUnitRigWithK(t, selfPos, 2)
	r.eng.Init(0)
	for seq := uint64(1); seq <= 2; seq++ {
		r.driveCommit(t, seq, prim, selfPos)
	}
	bogus := gcrypto.HashBytes([]byte("bogus"))
	for i := 0; i < 4; i++ {
		if i == selfPos {
			continue
		}
		r.eng.OnEnvelope(0, consensus.Seal(r.keys[i], &pbft.Checkpoint{
			Era: 0, Seq: 2, Digest: bogus,
		}))
	}
	if r.eng.LowWater() != 0 {
		t.Fatalf("mismatched checkpoints stabilized: low water %d", r.eng.LowWater())
	}
}

// TestCheckpointPruneNeverReproposes: a quorum checkpoint can stabilize
// ABOVE a lagging replica's execution point (the committed blocks are
// still in flight to it). Stabilization prunes the instances and
// sent-vote guards for those slots — so if the replica is the primary,
// a later proposal pass must not rebuild a pruned slot from today's
// pool and sign a second, conflicting pre-prepare for it. Regression
// test for an equivocation found by the gossip chaos schedule.
func TestCheckpointPruneNeverReproposes(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	r := newUnitRigWithK(t, prim, 2)
	r.eng.Init(0)

	// The primary proposes seq 1 from its pool.
	tx1 := clientTx(0, 1)
	if err := r.app.SubmitTx(tx1); err != nil {
		t.Fatal(err)
	}
	acts := r.eng.OnRequest(0, tx1)
	if !hasKind(acts, consensus.KindPrePrepare) {
		t.Fatal("primary did not propose seq 1")
	}

	// The rest of the committee raced ahead: it committed slots 1-2 (the
	// primary's commits never came back to it) and checkpointed at 2.
	ckDigest := gcrypto.HashBytes([]byte("peer-checkpoint-state"))
	for i := 0; i < 4; i++ {
		if i == prim {
			continue
		}
		r.eng.OnEnvelope(0, consensus.Seal(r.keys[i], &pbft.Checkpoint{
			Era: 0, Seq: 2, Digest: ckDigest,
		}))
	}
	if r.eng.LowWater() != 2 {
		t.Fatalf("low water %d after quorum of checkpoints, want 2", r.eng.LowWater())
	}

	// New pool contents arrive. The pruned slots are final; re-proposing
	// one would equivocate against the seq-1 pre-prepare already signed.
	tx2 := clientTx(1, 2)
	if err := r.app.SubmitTx(tx2); err != nil {
		t.Fatal(err)
	}
	for _, acts := range [][]consensus.Action{
		r.eng.OnRequest(0, tx2),
		r.eng.OnCommitApplied(0),
	} {
		if hasKind(acts, consensus.KindPrePrepare) {
			t.Fatal("primary re-proposed a slot at or below the stable checkpoint")
		}
	}
}

// newUnitRigWithK builds a rig with a custom checkpoint interval.
func newUnitRigWithK(t *testing.T, selfPos int, k uint64) *unitRig {
	t.Helper()
	base := newUnitRig(t, selfPos)
	eng, err := pbft.New(pbft.Config{
		Committee: base.com, Key: base.keys[selfPos], App: base.app,
		Timers: consensus.NewTimerAllocator(), StartHeight: 1,
		CheckpointInterval: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	base.eng = eng
	return base
}
