package pbft_test

import (
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/ledger"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/store"
)

// newDurableRig mirrors newUnitRig but wires a WAL and (optionally)
// recovered durable state into the engine — the restart path.
func newDurableRig(t *testing.T, selfPos int, wal pbft.WAL, durable *pbft.DurableState) *unitRig {
	t.Helper()
	base := newUnitRig(t, selfPos)
	chain, err := ledger.NewChain(base.genesis)
	if err != nil {
		t.Fatal(err)
	}
	app := runtime.NewApp(chain, runtime.NewMempool(0), base.keys[selfPos].Address(), epoch, 8)
	eng, err := pbft.New(pbft.Config{
		Committee: base.com, Key: base.keys[selfPos], App: app,
		Timers: consensus.NewTimerAllocator(), StartHeight: 1,
		ViewChangeTimeout: time.Second,
		WAL:               wal, Durable: durable,
	})
	if err != nil {
		t.Fatal(err)
	}
	base.eng = eng
	base.app = app
	return base
}

// restart rebuilds the rig's engine from nothing but the WAL: fresh
// chain, fresh mempool, state recovered from the records — exactly
// what a process restart sees.
func (r *unitRig) restart(t *testing.T, wal *store.MemWAL) *unitRig {
	t.Helper()
	return newDurableRig(t, r.self, wal, pbft.RecoverState(0, wal.Records()))
}

func TestRecoverStateFromRecords(t *testing.T) {
	var d1, d2 gcrypto.Hash
	d1[0], d2[0] = 1, 2
	recs := []store.WALRecord{
		{Kind: store.WALEra, Era: 0},
		{Kind: store.WALPrepare, Era: 0, View: 0, Seq: 1, Digest: d1},
		{Kind: store.WALCommit, Era: 0, View: 0, Seq: 1, Digest: d1},
		{Kind: store.WALViewChange, Era: 0, View: 1},
		{Kind: store.WALNewView, Era: 0, View: 1},
		{Kind: store.WALPrePrepare, Era: 0, View: 1, Seq: 2, Digest: d2},
		// A stale record from another era must be ignored entirely.
		{Kind: store.WALPrepare, Era: 7, View: 0, Seq: 9, Digest: d2},
	}
	d := pbft.RecoverState(0, recs)
	if d.View != 1 {
		t.Fatalf("recovered view %d, want 1", d.View)
	}
	if len(d.SentPrepares) != 1 || len(d.SentCommits) != 1 || len(d.SentPrePrepares) != 1 {
		t.Fatalf("recovered vote counts: pp=%d p=%d c=%d",
			len(d.SentPrePrepares), len(d.SentPrepares), len(d.SentCommits))
	}
}

func TestRestartedBackupRefusesConflictingPrepare(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	wal := &store.MemWAL{}
	r := newDurableRig(t, selfPos, wal, nil)
	r.eng.Init(0)

	b1, pp1 := r.proposal(*clientTx(0, 1))
	b2, pp2 := r.proposal(*clientTx(1, 2))
	if b1.Hash() == b2.Hash() {
		t.Fatal("test blocks must differ")
	}
	if acts := r.eng.OnEnvelope(0, pp1); !hasKind(acts, consensus.KindPrepare) {
		t.Fatal("first proposal should be accepted")
	}

	// Crash and restart from the WAL alone. The primary (or anyone
	// replaying its equivocation) offers a DIFFERENT block at the same
	// (view, seq): the replica already promised b1 and must stay silent.
	r2 := r.restart(t, wal)
	r2.eng.Init(0)
	if acts := r2.eng.OnEnvelope(0, pp2); hasKind(acts, consensus.KindPrepare) {
		t.Fatal("restarted backup prepared a conflicting proposal — equivocation")
	}
	// The ORIGINAL proposal retransmitted is fine: the re-sent prepare
	// is byte-identical to the one already on the wire.
	if acts := r2.eng.OnEnvelope(0, pp1); !hasKind(acts, consensus.KindPrepare) {
		t.Fatal("restarted backup must still support its original vote")
	}
}

func TestAmnesiaBackupEquivocatesWithoutWAL(t *testing.T) {
	// The regression guard's engine-level core: the SAME schedule as
	// above but with no WAL — the restarted replica happily prepares
	// the conflicting proposal. This is the bug the WAL closes.
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newUnitRig(t, selfPos)
	r.eng.Init(0)

	_, pp1 := r.proposal(*clientTx(0, 1))
	_, pp2 := r.proposal(*clientTx(1, 2))
	if acts := r.eng.OnEnvelope(0, pp1); !hasKind(acts, consensus.KindPrepare) {
		t.Fatal("first proposal should be accepted")
	}
	amnesiac := newUnitRig(t, selfPos) // restart with no durable state
	amnesiac.eng.Init(0)
	if acts := amnesiac.eng.OnEnvelope(0, pp2); !hasKind(acts, consensus.KindPrepare) {
		t.Fatal("expected the amnesiac replica to equivocate (documents why the WAL exists)")
	}
}

func TestRestartedPrimaryDoesNotReproposeDifferentBlock(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	wal := &store.MemWAL{}
	r := newDurableRig(t, prim, wal, nil)
	r.eng.Init(0)

	tx := clientTx(0, 1)
	if err := r.app.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	if acts := r.eng.OnRequest(0, tx); !hasKind(acts, consensus.KindPrePrepare) {
		t.Fatal("primary must propose")
	}

	// Restart. The mempool is rebuilt empty; a different transaction
	// arrives. BuildBlock now yields a block with a different hash at
	// the same (view, seq) — the recovered sent-proposal ledger must
	// suppress it (liveness comes from the other replicas' view change).
	r2 := r.restart(t, wal)
	r2.eng.Init(time.Second)
	tx2 := clientTx(1, 2)
	if err := r2.app.SubmitTx(tx2); err != nil {
		t.Fatal(err)
	}
	if acts := r2.eng.OnRequest(time.Second, tx2); hasKind(acts, consensus.KindPrePrepare) {
		t.Fatal("restarted primary proposed a second block at the same (view, seq)")
	}
}

func TestRecoveredPreparedInstanceResendsCommit(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	wal := &store.MemWAL{}
	r := newDurableRig(t, selfPos, wal, nil)
	r.eng.Init(0)

	block, ppEnv := r.proposal(*clientTx(0, 1))
	digest := block.Hash()
	r.eng.OnEnvelope(0, ppEnv)
	for i := 0; i < 4; i++ {
		if i != selfPos && i != prim {
			r.eng.OnEnvelope(0, r.prepareFrom(i, digest))
		}
	}

	// The instance reached prepared (commit sent) and the node dies.
	// After restart the replica must re-send the SAME commit from Init
	// and still be able to execute once quorum commits arrive.
	r2 := r.restart(t, wal)
	acts := r2.eng.Init(0)
	if !hasKind(acts, consensus.KindCommit) {
		t.Fatal("restarted replica must re-send its owed commit vote")
	}
	var done []consensus.Action
	for i := 0; i < 4; i++ {
		if i != selfPos {
			done = append(done, r2.eng.OnEnvelope(0, r2.commitFrom(i, digest))...)
			if len(commitsOf(done)) > 0 {
				break
			}
		}
	}
	blocks := commitsOf(done)
	if len(blocks) != 1 || blocks[0].Hash() != digest {
		t.Fatal("recovered prepared instance failed to execute")
	}
	if err := blocks[0].Cert.Verify(digest, r2.com.Keys(), r2.com.Quorum()); err != nil {
		t.Fatalf("certificate invalid after recovery: %v", err)
	}
}

func TestViewSurvivesRestart(t *testing.T) {
	probe := newUnitRig(t, 0)
	v1prim := probe.com.IndexOf(probe.com.Primary(1))
	backup := (v1prim + 1) % 4
	wal := &store.MemWAL{}
	r := newDurableRig(t, backup, wal, nil)
	r.eng.Init(0)

	var vcEnvs [][]byte
	for i := 0; i < 4; i++ {
		if i == backup {
			continue
		}
		vc := consensus.Seal(r.keys[i], &pbft.ViewChange{Era: 0, NewView: 1, LastStable: 0})
		vcEnvs = append(vcEnvs, consensus.EncodeEnvelope(vc))
	}
	nv := consensus.Seal(r.keys[v1prim], &pbft.NewView{Era: 0, View: 1, ViewChangeEnvs: vcEnvs})
	r.eng.OnEnvelope(0, nv)
	if r.eng.View() != 1 {
		t.Fatalf("setup: view=%d, want 1", r.eng.View())
	}

	r2 := r.restart(t, wal)
	if r2.eng.View() != 1 {
		t.Fatalf("restarted view=%d, want 1 (position lost)", r2.eng.View())
	}
}
