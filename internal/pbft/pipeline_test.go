package pbft_test

import (
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/ledger"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/store"
	"gpbft/internal/types"
)

// newPipeRig builds a rig whose engine runs with an explicit pipelining
// depth and checkpoint interval (0 = engine defaults), optionally
// WAL-backed for restart tests.
func newPipeRig(t *testing.T, selfPos int, k uint64, inflight int, wal pbft.WAL, durable *pbft.DurableState) *unitRig {
	t.Helper()
	base := newUnitRig(t, selfPos)
	chain, err := ledger.NewChain(base.genesis)
	if err != nil {
		t.Fatal(err)
	}
	app := runtime.NewApp(chain, runtime.NewMempool(0), base.keys[selfPos].Address(), epoch, 8)
	eng, err := pbft.New(pbft.Config{
		Committee: base.com, Key: base.keys[selfPos], App: app,
		Timers: consensus.NewTimerAllocator(), StartHeight: 1,
		ViewChangeTimeout:  time.Second,
		CheckpointInterval: k,
		MaxInFlight:        inflight,
		WAL:                wal, Durable: durable,
	})
	if err != nil {
		t.Fatal(err)
	}
	base.eng = eng
	base.app = app
	return base
}

// chainProposals builds n hash-chained blocks (seq 1..n) from view 0's
// primary, each carrying a distinct transaction, and seals one
// pre-prepare per slot.
func (r *unitRig) chainProposals(n int) ([]*types.Block, []*consensus.Envelope) {
	chain, _ := ledger.NewChain(r.genesis)
	prev := chain.Head().Hash()
	blocks := make([]*types.Block, n)
	envs := make([]*consensus.Envelope, n)
	for s := 1; s <= n; s++ {
		tx := clientTx(100+s, uint64(s))
		b := types.NewBlock(types.BlockHeader{
			Height: uint64(s), Era: 0, View: 0, Seq: uint64(s),
			PrevHash:  prev,
			Proposer:  r.com.Primary(0),
			Timestamp: epoch.Add(time.Duration(s) * time.Second),
		}, []types.Transaction{*tx})
		envs[s-1] = consensus.Seal(r.keys[r.primaryPos()], &pbft.PrePrepare{
			Era: 0, View: 0, Seq: uint64(s), Digest: b.Hash(), Block: *b,
		})
		blocks[s-1] = b
		prev = b.Hash()
	}
	return blocks, envs
}

// prepareAt / commitAt seal votes for an arbitrary slot from position i.
func (r *unitRig) prepareAt(i int, seq uint64, digest gcrypto.Hash) *consensus.Envelope {
	return consensus.Seal(r.keys[i], &pbft.Prepare{Era: 0, View: 0, Seq: seq, Digest: digest})
}

func (r *unitRig) commitAt(i int, seq uint64, digest gcrypto.Hash) *consensus.Envelope {
	return consensus.Seal(r.keys[i], &pbft.Commit{
		Era: 0, View: 0, Seq: seq, Digest: digest,
		CertSig: r.keys[i].Sign(types.VoteDigest(digest, 0, 0)),
	})
}

// commitSeqs extracts the slot numbers of commit votes broadcast in acts.
func commitSeqs(t *testing.T, acts []consensus.Action) []uint64 {
	t.Helper()
	var out []uint64
	for _, a := range acts {
		bc, ok := a.(consensus.Broadcast)
		if !ok || bc.Env.MsgKind != consensus.KindCommit {
			continue
		}
		var c pbft.Commit
		if err := consensus.Open(bc.Env, consensus.KindCommit, &c); err != nil {
			t.Fatal(err)
		}
		out = append(out, c.Seq)
	}
	return out
}

// prepareSeqs extracts the slot numbers of prepare votes broadcast in acts.
func prepareSeqs(t *testing.T, acts []consensus.Action) []uint64 {
	t.Helper()
	var out []uint64
	for _, a := range acts {
		bc, ok := a.(consensus.Broadcast)
		if !ok || bc.Env.MsgKind != consensus.KindPrepare {
			continue
		}
		var p pbft.Prepare
		if err := consensus.Open(bc.Env, consensus.KindPrepare, &p); err != nil {
			t.Fatal(err)
		}
		out = append(out, p.Seq)
	}
	return out
}

func containsSeq(seqs []uint64, want uint64) bool {
	for _, s := range seqs {
		if s == want {
			return true
		}
	}
	return false
}

// otherBackups returns the two committee positions that are neither the
// primary nor selfPos.
func otherBackups(prim, selfPos int) (int, int) {
	var out []int
	for i := 0; i < 4; i++ {
		if i != prim && i != selfPos {
			out = append(out, i)
		}
	}
	return out[0], out[1]
}

// applyCommits mirrors the runtime: every CommitBlock in acts is applied
// to the rig chain (in emission order) and the engine notified.
func (r *unitRig) applyCommits(t *testing.T, acts []consensus.Action) []*types.Block {
	t.Helper()
	blocks := commitsOf(acts)
	for _, b := range blocks {
		if err := r.app.Commit(b); err != nil {
			t.Fatalf("apply height %d: %v", b.Header.Height, err)
		}
		r.eng.OnCommitApplied(0)
	}
	return blocks
}

// TestBackupPipelinesChainedProposals drives three chained slots through
// a backup concurrently: all three pre-prepares are accepted before any
// slot commits, commits may arrive out of order, and execution still
// streams strictly in sequence order.
func TestBackupPipelinesChainedProposals(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newPipeRig(t, selfPos, 0, 0, nil, nil)
	r.eng.Init(0)
	p1, p2 := otherBackups(prim, selfPos)

	blocks, envs := r.chainProposals(3)
	for s, env := range envs {
		acts := r.eng.OnEnvelope(0, env)
		if !containsSeq(prepareSeqs(t, acts), uint64(s+1)) {
			t.Fatalf("slot %d: chained pre-prepare not accepted while predecessors in flight", s+1)
		}
	}

	// Prepares for every slot, ascending: each slot reaches prepared and,
	// with its parent prepared, releases its commit immediately.
	var prepActs []consensus.Action
	for s := uint64(1); s <= 3; s++ {
		d := blocks[s-1].Hash()
		prepActs = append(prepActs, r.eng.OnEnvelope(0, r.prepareAt(p1, s, d))...)
		prepActs = append(prepActs, r.eng.OnEnvelope(0, r.prepareAt(p2, s, d))...)
	}
	cs := commitSeqs(t, prepActs)
	for s := uint64(1); s <= 3; s++ {
		if !containsSeq(cs, s) {
			t.Fatalf("commit for slot %d not broadcast while window in flight", s)
		}
	}

	// Quorum commits arrive for slot 2 FIRST: it may commit, but
	// execution must hold until slot 1 does.
	var acts []consensus.Action
	acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p1, 2, blocks[1].Hash()))...)
	acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p2, 2, blocks[1].Hash()))...)
	if got := commitsOf(acts); len(got) != 0 {
		t.Fatal("slot 2 executed before slot 1 — in-order streaming broken")
	}
	if r.eng.NextSeq() != 1 {
		t.Fatalf("NextSeq=%d before slot 1 committed", r.eng.NextSeq())
	}

	// Slot 1's quorum releases both, strictly in order.
	acts = nil
	acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p1, 1, blocks[0].Hash()))...)
	acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p2, 1, blocks[0].Hash()))...)
	done := r.applyCommits(t, acts)
	if len(done) != 2 || done[0].Header.Height != 1 || done[1].Header.Height != 2 {
		t.Fatalf("expected heights [1 2] to stream in order, got %d blocks", len(done))
	}

	acts = nil
	acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p1, 3, blocks[2].Hash()))...)
	acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p2, 3, blocks[2].Hash()))...)
	done = r.applyCommits(t, acts)
	if len(done) != 1 || done[0].Header.Height != 3 {
		t.Fatal("slot 3 did not execute after its quorum")
	}
	if r.eng.NextSeq() != 4 {
		t.Fatalf("NextSeq=%d after executing 3 slots", r.eng.NextSeq())
	}
}

// TestCommitGateWaitsForParentPrepare pins the pipelining safety
// invariant: a slot's commit vote must not leave the replica until its
// parent slot is prepared locally, and preparing the parent releases
// the whole deferred suffix.
func TestCommitGateWaitsForParentPrepare(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newPipeRig(t, selfPos, 0, 0, nil, nil)
	r.eng.Init(0)
	p1, p2 := otherBackups(prim, selfPos)

	blocks, envs := r.chainProposals(2)
	r.eng.OnEnvelope(0, envs[0])
	r.eng.OnEnvelope(0, envs[1])

	// Slot 2 prepares first — its commit must stay withheld.
	var acts []consensus.Action
	acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p1, 2, blocks[1].Hash()))...)
	acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p2, 2, blocks[1].Hash()))...)
	if containsSeq(commitSeqs(t, acts), 2) {
		t.Fatal("commit for slot 2 sent while slot 1 unprepared — parent gate broken")
	}

	// Slot 1 preparing releases both commits, in one cascade.
	acts = nil
	acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p1, 1, blocks[0].Hash()))...)
	acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p2, 1, blocks[0].Hash()))...)
	cs := commitSeqs(t, acts)
	if !containsSeq(cs, 1) || !containsSeq(cs, 2) {
		t.Fatalf("parent preparing must release commits for both slots, got %v", cs)
	}
}

// TestSlotTimerCatchesLaterSlotStall is the regression test for the
// shared-timer stall: under the old single progress timer, slot 1
// executing reset the only deadline, so a primary could stall slot 2
// forever while drip-feeding progress on other slots. Each slot now
// owns its deadline; only that slot's execution retires it.
func TestSlotTimerCatchesLaterSlotStall(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newPipeRig(t, selfPos, 0, 0, nil, nil)
	r.eng.Init(0)
	p1, p2 := otherBackups(prim, selfPos)

	blocks, envs := r.chainProposals(2)
	r.eng.OnEnvelope(0, envs[0])
	acts2 := r.eng.OnEnvelope(0, envs[1])

	// Slot 2's own deadline was armed on acceptance: the only StartTimer
	// in its actions (the progress timer is already up from slot 1).
	var slot2Timer consensus.TimerID
	for _, a := range acts2 {
		if st, ok := a.(consensus.StartTimer); ok {
			slot2Timer = st.ID
		}
	}
	if slot2Timer == 0 {
		t.Fatal("accepted slot 2 proposal did not arm its own deadline")
	}

	// Slot 1 runs to execution; slot 2 stalls (its prepares never come).
	var acts []consensus.Action
	d := blocks[0].Hash()
	acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p1, 1, d))...)
	acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p2, 1, d))...)
	acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p1, 1, d))...)
	acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p2, 1, d))...)
	if len(r.applyCommits(t, acts)) != 1 {
		t.Fatal("setup: slot 1 did not execute")
	}
	// Slot 1's progress must not have retired slot 2's deadline.
	for _, a := range acts {
		if st, ok := a.(consensus.StopTimer); ok && st.ID == slot2Timer {
			t.Fatal("slot 1 executing stopped slot 2's deadline — the shared-timer stall bug")
		}
	}

	// The stalled slot's deadline fires: the replica must suspect the
	// primary even though the cluster "made progress" on slot 1.
	vcActs := r.eng.OnTimer(2*time.Second, slot2Timer)
	if !hasKind(vcActs, consensus.KindViewChange) {
		t.Fatal("stalled slot's deadline must start a view change")
	}
	if !r.eng.InViewChange() {
		t.Fatal("engine must be in view change after a slot deadline")
	}
}

// TestWatermarkEdges exercises both acceptance boundaries: a proposal
// at exactly the high watermark is accepted, and messages just above
// the window (a pre-prepare and a prepare) are buffered — not dropped —
// and delivered deterministically once a checkpoint lifts the window.
func TestWatermarkEdges(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	// K = 2: the window starts as (0, 4]; seqs 5..6 are bufferable.
	r := newPipeRig(t, selfPos, 2, 8, nil, nil)
	r.eng.Init(0)
	p1, p2 := otherBackups(prim, selfPos)

	blocks, envs := r.chainProposals(5)
	for s := 0; s < 4; s++ {
		acts := r.eng.OnEnvelope(0, envs[s])
		if !containsSeq(prepareSeqs(t, acts), uint64(s+1)) {
			t.Fatalf("slot %d (<= high watermark) must be accepted", s+1)
		}
	}
	// Seq 5 — one past the high watermark — must be buffered silently,
	// along with an early prepare vote for it.
	if acts := r.eng.OnEnvelope(0, envs[4]); len(prepareSeqs(t, acts)) != 0 {
		t.Fatal("slot 5 (> high watermark) must not be accepted yet")
	}
	r.eng.OnEnvelope(0, r.prepareAt(p1, 5, blocks[4].Hash()))

	// Slots 1 and 2 run to execution; seq 2 is a checkpoint boundary.
	for s := uint64(1); s <= 2; s++ {
		d := blocks[s-1].Hash()
		var acts []consensus.Action
		acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p1, s, d))...)
		acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p2, s, d))...)
		acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p1, s, d))...)
		acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p2, s, d))...)
		if len(r.applyCommits(t, acts)) != 1 {
			t.Fatalf("setup: slot %d did not execute", s)
		}
	}

	// Peer checkpoints at seq 2 stabilize it: the window becomes (2, 6]
	// and the drain must replay the buffered slot-5 traffic.
	ck1 := consensus.Seal(r.keys[p1], &pbft.Checkpoint{Era: 0, Seq: 2, Digest: blocks[1].Hash()})
	ck2 := consensus.Seal(r.keys[p2], &pbft.Checkpoint{Era: 0, Seq: 2, Digest: blocks[1].Hash()})
	var ckActs []consensus.Action
	ckActs = append(ckActs, r.eng.OnEnvelope(0, ck1)...)
	ckActs = append(ckActs, r.eng.OnEnvelope(0, ck2)...)
	if r.eng.LowWater() != 2 {
		t.Fatalf("low water %d after checkpoint quorum, want 2", r.eng.LowWater())
	}
	if !containsSeq(prepareSeqs(t, ckActs), 5) {
		t.Fatal("buffered slot-5 proposal not delivered when the window lifted")
	}

	// Slot 5 is already prepared IF the buffered early prepare was
	// replayed too (own prepare + the replayed one = 2f). Preparing
	// slots 3 and 4 then cascades the parent gate down the suffix and
	// must release slot 5's commit without any further prepare for it.
	var acts []consensus.Action
	for s := uint64(3); s <= 4; s++ {
		d := blocks[s-1].Hash()
		acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p1, s, d))...)
		acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p2, s, d))...)
	}
	if !containsSeq(commitSeqs(t, acts), 5) {
		t.Fatal("buffered early prepare was lost: slot 5 never reached prepared")
	}
}

// TestSerialAblationBuffersNextSlot: with MaxInFlight=1 the engine is
// the pre-pipelining scheduler — the successor proposal is held back
// (not rejected) until the current slot executes.
func TestSerialAblationBuffersNextSlot(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	r := newPipeRig(t, selfPos, 0, 1, nil, nil)
	r.eng.Init(0)
	p1, p2 := otherBackups(prim, selfPos)

	blocks, envs := r.chainProposals(2)
	if acts := r.eng.OnEnvelope(0, envs[0]); !containsSeq(prepareSeqs(t, acts), 1) {
		t.Fatal("slot 1 must be accepted")
	}
	if acts := r.eng.OnEnvelope(0, envs[1]); len(prepareSeqs(t, acts)) != 0 {
		t.Fatal("MaxInFlight=1 must not run slot 2 concurrently")
	}

	d := blocks[0].Hash()
	var acts []consensus.Action
	acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p1, 1, d))...)
	acts = append(acts, r.eng.OnEnvelope(0, r.prepareAt(p2, 1, d))...)
	acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p1, 1, d))...)
	acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p2, 1, d))...)
	if len(r.applyCommits(t, acts)) != 1 {
		t.Fatal("slot 1 did not execute")
	}
	// Executing slot 1 opens the window for slot 2: the buffered
	// proposal replays without retransmission.
	if !containsSeq(prepareSeqs(t, acts), 2) {
		t.Fatal("held-back successor proposal not delivered after slot 1 executed")
	}
}

// TestRestartStreamsOutOfOrderCommits is the pipelined WAL-replay
// property: slots 2 and 3 reached commit quorum before the crash while
// slot 1 had not. The recovered replica must neither skip slot 1 nor
// re-execute anything — it re-sends its owed commits bottom-up and
// executes 1, 2, 3 strictly in order once slot 1's quorum completes.
func TestRestartStreamsOutOfOrderCommits(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	wal := &store.MemWAL{}
	r := newPipeRig(t, selfPos, 0, 0, wal, nil)
	r.eng.Init(0)
	p1, p2 := otherBackups(prim, selfPos)

	blocks, envs := r.chainProposals(3)
	for _, env := range envs {
		r.eng.OnEnvelope(0, env)
	}
	for s := uint64(1); s <= 3; s++ {
		d := blocks[s-1].Hash()
		r.eng.OnEnvelope(0, r.prepareAt(p1, s, d))
		r.eng.OnEnvelope(0, r.prepareAt(p2, s, d))
	}
	// Quorum commits for slots 2 and 3 only; slot 1's never arrive.
	for s := uint64(2); s <= 3; s++ {
		d := blocks[s-1].Hash()
		var acts []consensus.Action
		acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p1, s, d))...)
		acts = append(acts, r.eng.OnEnvelope(0, r.commitAt(p2, s, d))...)
		if len(commitsOf(acts)) != 0 {
			t.Fatalf("slot %d executed past the missing slot 1", s)
		}
	}

	// Crash. The new incarnation owes commits for all three slots and
	// must re-send them ascending from Init.
	r2 := newPipeRig(t, selfPos, 0, 0, wal, pbft.RecoverState(0, wal.Records()))
	initActs := r2.eng.Init(0)
	cs := commitSeqs(t, initActs)
	for s := uint64(1); s <= 3; s++ {
		if !containsSeq(cs, s) {
			t.Fatalf("recovered replica did not re-send commit for slot %d (got %v)", s, cs)
		}
	}
	if r2.eng.NextSeq() != 1 {
		t.Fatalf("recovered NextSeq=%d, want 1 (slot 1 must not be skipped)", r2.eng.NextSeq())
	}

	// The committed-but-unexecuted suffix re-arrives first: still no
	// execution without slot 1.
	var acts []consensus.Action
	for s := uint64(2); s <= 3; s++ {
		d := blocks[s-1].Hash()
		acts = append(acts, r2.eng.OnEnvelope(0, r2.commitAt(p1, s, d))...)
		acts = append(acts, r2.eng.OnEnvelope(0, r2.commitAt(p2, s, d))...)
	}
	if len(commitsOf(acts)) != 0 {
		t.Fatal("recovered replica skipped slot 1")
	}
	// Slot 1's quorum completes: all three execute, in order, once each.
	acts = nil
	acts = append(acts, r2.eng.OnEnvelope(0, r2.commitAt(p1, 1, blocks[0].Hash()))...)
	acts = append(acts, r2.eng.OnEnvelope(0, r2.commitAt(p2, 1, blocks[0].Hash()))...)
	done := r2.applyCommits(t, acts)
	if len(done) != 3 {
		t.Fatalf("expected exactly 3 executions after recovery, got %d", len(done))
	}
	for i, b := range done {
		if b.Header.Height != uint64(i+1) {
			t.Fatalf("execution order broken at position %d: height %d", i, b.Header.Height)
		}
	}
	if r2.eng.NextSeq() != 4 {
		t.Fatalf("NextSeq=%d after recovery, want 4", r2.eng.NextSeq())
	}
}

// TestWALOrdersParentPreparedBeforeChildCommit checks the durable form
// of the parent gate: by the time a commit for slot s+1 hits the WAL,
// the prepared proof for slot s is already on disk — so no crash window
// exists where the replica has voted to commit a block whose ancestry
// it could not re-exhibit in a view change.
func TestWALOrdersParentPreparedBeforeChildCommit(t *testing.T) {
	prim := newUnitRig(t, 0).primaryPos()
	selfPos := (prim + 1) % 4
	wal := &store.MemWAL{}
	r := newPipeRig(t, selfPos, 0, 0, wal, nil)
	r.eng.Init(0)
	p1, p2 := otherBackups(prim, selfPos)

	blocks, envs := r.chainProposals(3)
	for _, env := range envs {
		r.eng.OnEnvelope(0, env)
	}
	// Prepare the suffix first so the gate actually defers, then the
	// head to release the cascade.
	for _, s := range []uint64{2, 3, 1} {
		d := blocks[s-1].Hash()
		r.eng.OnEnvelope(0, r.prepareAt(p1, s, d))
		r.eng.OnEnvelope(0, r.prepareAt(p2, s, d))
	}

	preparedAt := make(map[uint64]int)
	commitAt := make(map[uint64]int)
	for i, rec := range wal.Records() {
		switch rec.Kind {
		case store.WALPrepared:
			if _, ok := preparedAt[rec.Seq]; !ok {
				preparedAt[rec.Seq] = i
			}
		case store.WALCommit:
			if _, ok := commitAt[rec.Seq]; !ok {
				commitAt[rec.Seq] = i
			}
		}
	}
	for s := uint64(1); s <= 3; s++ {
		if _, ok := commitAt[s]; !ok {
			t.Fatalf("no commit record for slot %d", s)
		}
	}
	for s := uint64(2); s <= 3; s++ {
		pp, ok := preparedAt[s-1]
		if !ok {
			t.Fatalf("no prepared record for slot %d", s-1)
		}
		if pp >= commitAt[s] {
			t.Fatalf("commit for slot %d persisted before parent's prepared proof (wal index %d >= %d)",
				s, pp, commitAt[s])
		}
	}
}
