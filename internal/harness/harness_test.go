package harness

import (
	"io"
	"strings"
	"testing"
	"time"

	"gpbft"
)

// tinyConfig keeps harness tests fast: small sizes, short windows, a
// snappier simulated CPU.
func tinyConfig() Config {
	c := Quick()
	c.Sizes = []int{4, 10}
	c.Runs = 1
	c.LoadWindow = 3 * time.Second
	c.PerNodeInterval = time.Second
	c.ReportEvery = time.Second
	c.EraPeriod = 2 * time.Second
	c.MaxEndorsers = 6
	c.Profile = gpbft.NetworkProfile{
		LatencyBase:   500 * time.Microsecond,
		LatencyJitter: 200 * time.Microsecond,
		ProcTime:      200 * time.Microsecond,
		SendTime:      20 * time.Microsecond,
	}
	c.DrainCap = time.Minute
	return c
}

func TestMeasureLatencyRunBothProtocols(t *testing.T) {
	c := tinyConfig()
	for _, proto := range []gpbft.Protocol{gpbft.PBFT, gpbft.GPBFT} {
		lats, err := c.MeasureLatencyRun(proto, 10, 1)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if len(lats) < 10 {
			t.Fatalf("%v: only %d latencies", proto, len(lats))
		}
		for _, l := range lats {
			if l <= 0 || l > 60 {
				t.Fatalf("%v: implausible latency %v", proto, l)
			}
		}
	}
}

func TestMeasureCommCostShape(t *testing.T) {
	c := tinyConfig()
	pKB, pMsgs, err := c.MeasureCommCost(gpbft.PBFT, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	gKB, gMsgs, err := c.MeasureCommCost(gpbft.GPBFT, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Committee cap 6 vs 24 full nodes: G-PBFT must be far cheaper.
	if gKB*2 > pKB {
		t.Fatalf("G-PBFT %.1fKB (%d msgs) not well below PBFT %.1fKB (%d msgs)",
			gKB, gMsgs, pKB, pMsgs)
	}
	// Rough magnitude: PBFT message count is dominated by the two
	// quadratic phases.
	if pMsgs < int64(24*24) {
		t.Fatalf("PBFT msgs %d below n^2", pMsgs)
	}
}

func TestCommCostPlateausAtCap(t *testing.T) {
	c := tinyConfig()
	kbAtCap, _, err := c.MeasureCommCost(gpbft.GPBFT, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	kbBeyond, _, err := c.MeasureCommCost(gpbft.GPBFT, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Past the cap the committee stays 6; cost must stay in the same
	// ballpark (within 2x), not grow ~25x as n did.
	if kbBeyond > 2*kbAtCap {
		t.Fatalf("G-PBFT cost did not plateau: %.1fKB at cap vs %.1fKB at n=30", kbAtCap, kbBeyond)
	}
}

func TestFigurePipelinesEmitTables(t *testing.T) {
	c := tinyConfig()
	var sb strings.Builder

	pl, err := c.Fig3a(&sb)
	if err != nil {
		t.Fatal(err)
	}
	gl, err := c.Fig3b(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fig4(&sb, pl, gl); err != nil {
		t.Fatal(err)
	}
	pc, err := c.Fig5a(&sb)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := c.Fig5b(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fig6(&sb, pc, gc); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table3(&sb, pl, gl, pc, gc); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 3a", "Figure 3b", "Figure 4", "Figure 5a", "Figure 5b", "Figure 6", "Table III"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestStaticTables(t *testing.T) {
	var sb strings.Builder
	t2 := Table2(&sb)
	if len(t2.Rows) != 5 {
		t.Fatalf("Table II rows: %d", len(t2.Rows))
	}
	t4 := Table4(&sb)
	if len(t4.Rows) != 11 {
		t.Fatalf("Table IV rows: %d", len(t4.Rows))
	}
	if !strings.Contains(sb.String(), "G-PBFT") {
		t.Fatal("tables missing G-PBFT row")
	}
}

func TestModelTable(t *testing.T) {
	c := tinyConfig()
	c.Sizes = []int{8}
	tb, err := c.Model(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("model rows: %d", len(tb.Rows))
	}
}

func TestDefaultAndQuickConfigs(t *testing.T) {
	d := Default()
	if d.Sizes[len(d.Sizes)-1] != 202 || d.Runs != 10 {
		t.Fatal("default config must match the paper's sweep")
	}
	q := Quick()
	if len(q.Sizes) >= len(d.Sizes) || q.Runs >= d.Runs {
		t.Fatal("quick config must be smaller")
	}
}
