package harness

import (
	"fmt"
	"io"
	"time"

	"gpbft"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/stats"
)

// Fig3a reproduces Figure 3a: PBFT consensus latency boxplots versus
// node count under constant per-node load.
func (c *Config) Fig3a(w io.Writer) (*LatencyResults, error) {
	res, err := c.CollectLatency(gpbft.PBFT, w)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, res.BoxplotTable("Figure 3a — PBFT consensus latency vs number of nodes"))
	return res, nil
}

// Fig3b reproduces Figure 3b: G-PBFT consensus latency boxplots; the
// committee is capped at MaxEndorsers, and era switches every T insert
// the ~0.25 s outliers the paper highlights.
func (c *Config) Fig3b(w io.Writer) (*LatencyResults, error) {
	res, err := c.CollectLatency(gpbft.GPBFT, w)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, res.BoxplotTable("Figure 3b — G-PBFT consensus latency vs number of nodes"))
	return res, nil
}

// Fig4 reproduces Figure 4: mean consensus latency of both protocols
// on the same axis. Pass previously collected results to avoid
// re-running; nil arguments are collected fresh.
func (c *Config) Fig4(w io.Writer, pbftRes, gpbftRes *LatencyResults) (*stats.Table, error) {
	var err error
	if pbftRes == nil {
		if pbftRes, err = c.CollectLatency(gpbft.PBFT, w); err != nil {
			return nil, err
		}
	}
	if gpbftRes == nil {
		if gpbftRes, err = c.CollectLatency(gpbft.GPBFT, w); err != nil {
			return nil, err
		}
	}
	t := stats.NewTable("Figure 4 — mean consensus latency, PBFT vs G-PBFT",
		"nodes", "PBFT(s)", "G-PBFT(s)", "speedup")
	for _, n := range c.Sizes {
		p, g := pbftRes.Mean(n), gpbftRes.Mean(n)
		speedup := 0.0
		if g > 0 {
			speedup = p / g
		}
		t.AddRow(n, fmt.Sprintf("%.3f", p), fmt.Sprintf("%.3f", g), fmt.Sprintf("%.1fx", speedup))
	}
	fmt.Fprintln(w, t)
	return t, nil
}

// Fig5a reproduces Figure 5a: PBFT communication cost per transaction.
func (c *Config) Fig5a(w io.Writer) (*CommResults, error) {
	res, err := c.CollectComm(gpbft.PBFT, w)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, res.Table("Figure 5a — PBFT communication cost per transaction"))
	return res, nil
}

// Fig5b reproduces Figure 5b: G-PBFT communication cost plateaus once
// the committee cap is reached.
func (c *Config) Fig5b(w io.Writer) (*CommResults, error) {
	res, err := c.CollectComm(gpbft.GPBFT, w)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, res.Table("Figure 5b — G-PBFT communication cost per transaction"))
	return res, nil
}

// Fig6 reproduces Figure 6: the communication-cost comparison.
func (c *Config) Fig6(w io.Writer, pbftC, gpbftC *CommResults) (*stats.Table, error) {
	var err error
	if pbftC == nil {
		if pbftC, err = c.CollectComm(gpbft.PBFT, w); err != nil {
			return nil, err
		}
	}
	if gpbftC == nil {
		if gpbftC, err = c.CollectComm(gpbft.GPBFT, w); err != nil {
			return nil, err
		}
	}
	t := stats.NewTable("Figure 6 — communication cost, PBFT vs G-PBFT",
		"nodes", "PBFT(KB)", "G-PBFT(KB)", "reduction")
	for _, n := range c.Sizes {
		p, g := pbftC.KB[n], gpbftC.KB[n]
		red := 0.0
		if p > 0 {
			red = 100 * (1 - g/p)
		}
		t.AddRow(n, fmt.Sprintf("%.1f", p), fmt.Sprintf("%.1f", g), fmt.Sprintf("%.1f%%", red))
	}
	fmt.Fprintln(w, t)
	return t, nil
}

// Table3 reproduces Table III: average latency and communication cost
// at the largest swept size (the paper's n = 202), for both protocols.
// The paper reports PBFT 251.47 s / 8571.32 KB and G-PBFT 5.64 s /
// 380.29 KB — a 97.8 % latency and 95.6 % cost reduction.
func (c *Config) Table3(w io.Writer, pbftRes, gpbftRes *LatencyResults, pbftC, gpbftC *CommResults) (*stats.Table, error) {
	n := c.Sizes[len(c.Sizes)-1]
	pl, gl := pbftRes.Mean(n), gpbftRes.Mean(n)
	pk, gk := pbftC.KB[n], gpbftC.KB[n]
	t := stats.NewTable(fmt.Sprintf("Table III — averages at n = %d (paper: n = 202)", n),
		"consensus", "avg latency (s)", "avg cost (KB)")
	t.AddRow("PBFT", fmt.Sprintf("%.2f", pl), fmt.Sprintf("%.2f", pk))
	t.AddRow("G-PBFT", fmt.Sprintf("%.2f", gl), fmt.Sprintf("%.2f", gk))
	if pl > 0 && pk > 0 {
		t.AddRow("G-PBFT/PBFT", fmt.Sprintf("%.1f%% (paper: 2.24%%)", 100*gl/pl),
			fmt.Sprintf("%.1f%% (paper: 4.43%%)", 100*gk/pk))
	}
	fmt.Fprintln(w, t)
	return t, nil
}

// Table2 reproduces Table II: the election-table illustration — the
// exact CSC/timestamp rows of the paper replayed through our election
// table, with the geographic timer column our implementation derives.
func Table2(w io.Writer) *stats.Table {
	table := ledger.NewElectionTable()
	loc := geo.Point{Lng: 114.1795, Lat: 22.3050}
	times := []time.Time{
		time.Date(2019, 8, 5, 18, 0, 0, 0, time.UTC),
		time.Date(2019, 8, 5, 18, 56, 4, 0, time.UTC),
		time.Date(2019, 8, 6, 0, 0, 0, 0, time.UTC),
		time.Date(2019, 8, 6, 6, 0, 0, 0, time.UTC),
		time.Date(2019, 8, 6, 12, 0, 0, 0, time.UTC),
	}
	t := stats.NewTable("Table II — election table (paper's rows replayed)",
		"#", "CSC", "timestamp", "geographic timer")
	for i, ts := range times {
		e, err := table.Record(geo.Report{Location: loc, Timestamp: ts, Address: "device-1"})
		if err != nil {
			continue
		}
		t.AddRow(i+1, e.CSC.Geohash, ts.Format("2/1/2006 15:04:05"), e.Timer.String())
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "note: timer = time since first report at the current CSC; the paper's")
	fmt.Fprintln(w, "printed rows 3-5 carry a 56:04 offset inconsistent with their own timestamps.")
	return t
}

// Table4 reproduces Table IV: the qualitative consensus-mechanism
// comparison (static knowledge from the paper, rendered for
// completeness of the artifact).
func Table4(w io.Writer) *stats.Table {
	t := stats.NewTable("Table IV — comparison between consensus mechanisms",
		"consensus", "blockchain type", "speed", "scalability", "net overhead", "compute overhead", "adversary tolerance", "example")
	rows := [][]string{
		{"BFT", "Permissioned", "High", "Low", "High", "Low", "<33.3% replicas", "Tendermint"},
		{"PBFT", "Permissioned", "High", "Low", "High", "Low", "<33.3% faulty replicas", "Hyperledger"},
		{"dBFT", "Permissioned", "Low", "High", "High", "Low", "<33.3% faulty replicas", "NEO"},
		{"PoW", "Permissionless", "Low", "Low", "High", "High", "<25% computing power", "Bitcoin"},
		{"PoS", "Permissionless", "Low", "Low", "High", "Low", "<50% stake", "Peercoin"},
		{"DPoS", "Permissionless", "High", "Low", "Low", "Low", "<50% validators", "BitShares"},
		{"PoA", "Permissionless", "Low", "High", "Low", "Low", "<50% of online stake", "Decred"},
		{"PoSpace", "Permissionless", "Low", "Low", "High", "Low", "<50% space", "SpaceMint"},
		{"PoI", "Permissionless", "Low", "Low", "High", "Low", "<50% stake", "NEM"},
		{"PoB", "Permissionless", "Low", "Low", "High", "Low", "<50% coins", "XCP"},
		{"G-PBFT", "Permissionless", "High", "High", "Low", "Low", "<33.3% endorsers", "this repo"},
	}
	for _, r := range rows {
		cells := make([]any, len(r))
		for i, v := range r {
			cells[i] = v
		}
		t.AddRow(cells...)
	}
	fmt.Fprintln(w, t)
	return t
}

// Model cross-checks the analytic claims of Section IV-B/IV-C against
// measurement: per-consensus time O(n/s) and message complexity O(n²)
// for PBFT versus O(c/s), O(c²) for G-PBFT.
func (c *Config) Model(w io.Writer) (*stats.Table, error) {
	t := stats.NewTable("Section IV — analytic model vs measured (single transaction)",
		"nodes", "protocol", "predicted msgs", "measured msgs", "predicted phase(s)", "measured latency(s)")
	s := 1.0 / c.Profile.ProcTime.Seconds() // messages per second
	for _, n := range c.Sizes {
		for _, proto := range []gpbft.Protocol{gpbft.PBFT, gpbft.GPBFT} {
			cSize := n
			if proto == gpbft.GPBFT && cSize > c.MaxEndorsers {
				cSize = c.MaxEndorsers
			}
			kb, msgs, err := c.MeasureCommCost(proto, n, c.Seed+int64(n))
			if err != nil {
				return nil, err
			}
			_ = kb
			// Section IV-C: ~2 quadratic phases.
			predMsgs := 2 * cSize * cSize
			// Section IV-B: two phase switches at (2/3)c messages each.
			predPhase := 2 * (2.0 * float64(cSize) / 3.0) / s
			lat, err := c.singleTxLatency(proto, n)
			if err != nil {
				return nil, err
			}
			t.AddRow(n, proto.String(), predMsgs, msgs, fmt.Sprintf("%.3f", predPhase), fmt.Sprintf("%.3f", lat))
		}
	}
	fmt.Fprintln(w, t)
	return t, nil
}

// singleTxLatency measures an unloaded single-transaction commit
// latency.
func (c *Config) singleTxLatency(proto gpbft.Protocol, n int) (float64, error) {
	restore := c.cryptoOff()
	defer restore()
	o := c.clusterOptions(proto, n, c.Seed+int64(n)+7)
	o.ForceEraSwitch = false
	o.DisableEraSwitch = true
	cl, err := gpbft.NewCluster(o)
	if err != nil {
		return 0, err
	}
	cl.RunUntilIdle(time.Second)
	cl.SubmitNodeTx(cl.Now()+10*time.Millisecond, n-1, []byte("probe"), 1)
	cl.RunUntilIdle(cl.Now() + c.DrainCap)
	if cl.Metrics().CommittedCount() != 1 {
		return 0, fmt.Errorf("harness: model probe not committed (%v n=%d)", proto, n)
	}
	return cl.Metrics().MeanLatency().Seconds(), nil
}
