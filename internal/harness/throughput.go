package harness

import (
	"fmt"
	"io"
	"time"

	"gpbft"
	"gpbft/internal/stats"
)

// MeasureThroughput saturates the system with a deep backlog and
// measures sustained commit throughput in transactions per second —
// the TPS metric the paper mentions as the conventional alternative to
// its latency measurements (Section V-B).
func (c *Config) MeasureThroughput(proto gpbft.Protocol, n int, seed int64) (float64, error) {
	restore := c.cryptoOff()
	defer restore()

	o := c.clusterOptions(proto, n, seed)
	o.ForceEraSwitch = false
	o.DisableEraSwitch = true
	cl, err := gpbft.NewCluster(o)
	if err != nil {
		return 0, err
	}
	// Pre-load a backlog large enough to keep the pipeline saturated.
	backlog := 40 * o.BatchSize
	for k := 0; k < backlog; k++ {
		at := 10*time.Millisecond + time.Duration(k)*time.Microsecond
		cl.SubmitNodeTx(at, k%n, []byte{byte(k), byte(k >> 8)}, 1)
	}
	cl.RunUntilIdle(c.DrainCap)
	committed := cl.Metrics().CommittedCount()
	if committed == 0 {
		return 0, fmt.Errorf("harness: %v n=%d: nothing committed", proto, n)
	}
	// Sustained rate: committed transactions over the time from first
	// submission to quiescence.
	elapsed := cl.Now() - 10*time.Millisecond
	if elapsed <= 0 {
		return 0, fmt.Errorf("harness: zero elapsed time")
	}
	return float64(committed) / elapsed.Seconds(), nil
}

// Throughput sweeps node counts and prints a TPS comparison table (an
// extension experiment; not in the paper's evaluation).
func (c *Config) Throughput(w io.Writer) (*stats.Table, error) {
	t := stats.NewTable("Extension — sustained throughput (TPS), PBFT vs G-PBFT",
		"nodes", "PBFT (tx/s)", "G-PBFT (tx/s)", "gain")
	for _, n := range c.Sizes {
		p, err := c.MeasureThroughput(gpbft.PBFT, n, c.Seed)
		if err != nil {
			return nil, err
		}
		g, err := c.MeasureThroughput(gpbft.GPBFT, n, c.Seed)
		if err != nil {
			return nil, err
		}
		gain := 0.0
		if p > 0 {
			gain = g / p
		}
		t.AddRow(n, fmt.Sprintf("%.0f", p), fmt.Sprintf("%.0f", g), fmt.Sprintf("%.1fx", gain))
	}
	fmt.Fprintln(w, t)
	return t, nil
}
