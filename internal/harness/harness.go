// Package harness drives the experiments of the paper's evaluation
// (Section V): consensus latency versus node count under sustained
// per-node load (Figures 3a, 3b, 4), communication cost for a single
// transaction (Figures 5a, 5b, 6), the headline comparison at 202
// nodes (Table III), the election-table illustration (Table II), the
// consensus-mechanism comparison (Table IV), and the analytic model
// cross-check of Section IV.
//
// All experiments run on the deterministic discrete-event simulator;
// under a fixed seed the emitted numbers are bit-for-bit reproducible.
package harness

import (
	"fmt"
	"io"
	"time"

	"gpbft"
	"gpbft/internal/gcrypto"
	"gpbft/internal/stats"
)

// Config parameterizes an experiment sweep.
type Config struct {
	// Sizes are the node counts n on the x-axis.
	Sizes []int
	// Runs per (protocol, n) group — the paper uses ten.
	Runs int
	// Seed bases the per-run seeds.
	Seed int64

	// LoadWindow is how long each node keeps proposing transactions.
	LoadWindow time.Duration
	// PerNodeInterval is each node's proposal period ("Each node is
	// set to propose new transactions at a constant frequency").
	PerNodeInterval time.Duration
	// ReportEvery is the location-upload period of G-PBFT devices.
	ReportEvery time.Duration

	// EraPeriod / SwitchPeriod configure the G-PBFT era layer; the
	// switch period is the paper's measured ~0.25 s.
	EraPeriod    time.Duration
	SwitchPeriod time.Duration
	// MaxEndorsers caps the G-PBFT committee (paper: 40).
	MaxEndorsers int

	// Profile is the simulated hardware/network model.
	Profile gpbft.NetworkProfile

	// RealCrypto re-enables actual ed25519 verification inside the
	// simulator. Off by default: the DES already charges per-message
	// processing cost (ProcTime), so real verification only burns
	// wall-clock time without changing simulated results.
	RealCrypto bool

	// DrainCap bounds how long a run may take to drain its queue.
	DrainCap time.Duration
}

// Default is the full-fidelity sweep: the paper's 4..202 range with
// ten runs per group.
func Default() Config {
	return Config{
		Sizes:           []int{4, 22, 40, 58, 76, 94, 112, 130, 148, 166, 184, 202},
		Runs:            10,
		Seed:            1,
		LoadWindow:      20 * time.Second,
		PerNodeInterval: 3 * time.Second,
		ReportEvery:     2 * time.Second,
		EraPeriod:       10 * time.Second,
		SwitchPeriod:    250 * time.Millisecond,
		MaxEndorsers:    40,
		Profile:         gpbft.LANProfile(),
		DrainCap:        5 * time.Minute,
	}
}

// Quick is a reduced sweep for smoke tests and benchmarks.
func Quick() Config {
	c := Default()
	c.Sizes = []int{4, 22, 40, 76, 112}
	c.Runs = 3
	c.LoadWindow = 8 * time.Second
	c.DrainCap = 2 * time.Minute
	return c
}

// cryptoOff disables simulated signature verification for the scope
// of an experiment and returns a restore function.
func (c *Config) cryptoOff() func() {
	if c.RealCrypto {
		return func() {}
	}
	prev := gcrypto.SetVerification(false)
	return func() { gcrypto.SetVerification(prev) }
}

// clusterOptions assembles cluster options for one run.
func (c *Config) clusterOptions(proto gpbft.Protocol, n int, seed int64) gpbft.Options {
	o := gpbft.DefaultOptions(proto, n)
	o.Seed = seed
	o.Network = c.Profile
	o.MaxEndorsers = c.MaxEndorsers
	o.EraPeriod = c.EraPeriod
	o.SwitchPeriod = c.SwitchPeriod
	// Devices qualify after staying put for three era periods; scaled
	// from the paper's 72 h to simulation time.
	o.QualificationWindow = 3 * c.EraPeriod
	o.ReportInterval = c.ReportEvery
	if proto == gpbft.GPBFT {
		o.ForceEraSwitch = true // the paper switches every T
	}
	return o
}

// MeasureLatencyRun performs one latency experiment: every node
// proposes at a constant frequency for LoadWindow; the run returns the
// consensus latency of every committed transaction, in seconds.
func (c *Config) MeasureLatencyRun(proto gpbft.Protocol, n int, seed int64) ([]float64, error) {
	restore := c.cryptoOff()
	defer restore()

	cl, err := gpbft.NewCluster(c.clusterOptions(proto, n, seed))
	if err != nil {
		return nil, err
	}
	const warmup = time.Second
	// G-PBFT devices upload their location periodically (this feeds
	// geographic authentication and is part of G-PBFT's own overhead;
	// plain PBFT has no such traffic).
	if proto == gpbft.GPBFT {
		reports := int((warmup + c.LoadWindow) / c.ReportEvery)
		for i := 0; i < n; i++ {
			start := 50*time.Millisecond + time.Duration(i)*c.ReportEvery/time.Duration(n)
			cl.ScheduleReports(i, start, c.ReportEvery, reports)
		}
	}
	// Constant-frequency proposals, staggered per node.
	for i := 0; i < n; i++ {
		offset := warmup + time.Duration(i)*c.PerNodeInterval/time.Duration(n)
		for at := offset; at < warmup+c.LoadWindow; at += c.PerNodeInterval {
			payload := []byte(fmt.Sprintf("n%d@%d", i, at))
			cl.SubmitNodeTx(at, i, payload, 1)
		}
	}
	cl.RunUntilIdle(warmup + c.LoadWindow + c.DrainCap)
	if _, err := cl.VerifyAgreement(); err != nil {
		return nil, err
	}
	lats := stats.Seconds(cl.Metrics().Latencies())
	if len(lats) == 0 {
		return nil, fmt.Errorf("harness: %v n=%d: no transactions committed", proto, n)
	}
	return lats, nil
}

// MeasureCommCost performs one communication-cost experiment: exactly
// one transaction after startup traffic has drained ("we only propose
// one transaction in each experiment"). Returns total kilobytes and
// message count attributable to that transaction's consensus.
func (c *Config) MeasureCommCost(proto gpbft.Protocol, n int, seed int64) (float64, int64, error) {
	restore := c.cryptoOff()
	defer restore()

	o := c.clusterOptions(proto, n, seed)
	// Background era churn would pollute the single-tx measurement.
	o.ForceEraSwitch = false
	o.DisableEraSwitch = true
	cl, err := gpbft.NewCluster(o)
	if err != nil {
		return 0, 0, err
	}
	cl.RunUntilIdle(time.Second) // drain startup
	cl.Traffic().Reset()
	// Submit from the LAST node: under G-PBFT with n past the cap this
	// is a client outside the committee, so the measured cost includes
	// the client→endorser hop, as in the paper's deployment model.
	cl.SubmitNodeTx(cl.Now()+10*time.Millisecond, n-1, []byte("probe"), 1)
	cl.RunUntilIdle(cl.Now() + c.DrainCap)
	if cl.Metrics().CommittedCount() != 1 {
		return 0, 0, fmt.Errorf("harness: %v n=%d: probe tx not committed", proto, n)
	}
	return cl.Traffic().KB(), cl.Traffic().Messages(), nil
}

// LatencyResults holds the pooled per-transaction latencies of a sweep.
type LatencyResults struct {
	Proto   gpbft.Protocol
	Sizes   []int
	Samples map[int][]float64 // n -> pooled latencies (seconds)
}

// CollectLatency sweeps node counts for one protocol, pooling the
// per-transaction latencies of Runs independent runs per size.
func (c *Config) CollectLatency(proto gpbft.Protocol, progress io.Writer) (*LatencyResults, error) {
	res := &LatencyResults{Proto: proto, Sizes: append([]int(nil), c.Sizes...), Samples: map[int][]float64{}}
	for _, n := range c.Sizes {
		for r := 0; r < c.Runs; r++ {
			seed := c.Seed + int64(n*1000+r)
			lats, err := c.MeasureLatencyRun(proto, n, seed)
			if err != nil {
				return nil, err
			}
			res.Samples[n] = append(res.Samples[n], lats...)
		}
		if progress != nil {
			s := stats.Summarize(res.Samples[n])
			fmt.Fprintf(progress, "# %v n=%d: %d txs, median %.3fs, mean %.3fs, max %.3fs\n",
				proto, n, s.N, s.Median, s.Mean, s.Max)
		}
	}
	return res, nil
}

// BoxplotTable renders the five-number summaries per node count — the
// data behind the paper's Figure 3 boxplots.
func (r *LatencyResults) BoxplotTable(title string) *stats.Table {
	t := stats.NewTable(title, "nodes", "txs", "min(s)", "q1(s)", "median(s)", "q3(s)", "max(s)", "mean(s)", "stddev(s)")
	for _, n := range r.Sizes {
		s := stats.Summarize(r.Samples[n])
		t.AddRow(n, s.N, fmt.Sprintf("%.3f", s.Min), fmt.Sprintf("%.3f", s.Q1),
			fmt.Sprintf("%.3f", s.Median), fmt.Sprintf("%.3f", s.Q3),
			fmt.Sprintf("%.3f", s.Max), fmt.Sprintf("%.3f", s.Mean), fmt.Sprintf("%.3f", s.StdDev))
	}
	return t
}

// Mean returns the mean latency for a node count (seconds).
func (r *LatencyResults) Mean(n int) float64 { return stats.Mean(r.Samples[n]) }

// CommResults holds single-transaction communication costs per size.
type CommResults struct {
	Proto gpbft.Protocol
	Sizes []int
	KB    map[int]float64
	Msgs  map[int]int64
}

// CollectComm sweeps node counts measuring the single-transaction
// communication cost.
func (c *Config) CollectComm(proto gpbft.Protocol, progress io.Writer) (*CommResults, error) {
	res := &CommResults{Proto: proto, Sizes: append([]int(nil), c.Sizes...), KB: map[int]float64{}, Msgs: map[int]int64{}}
	for _, n := range c.Sizes {
		kb, msgs, err := c.MeasureCommCost(proto, n, c.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		res.KB[n] = kb
		res.Msgs[n] = msgs
		if progress != nil {
			fmt.Fprintf(progress, "# %v n=%d: %.1f KB in %d messages\n", proto, n, kb, msgs)
		}
	}
	return res, nil
}

// Table renders the series — the data behind Figures 5a/5b.
func (r *CommResults) Table(title string) *stats.Table {
	t := stats.NewTable(title, "nodes", "cost(KB)", "messages")
	for _, n := range r.Sizes {
		t.AddRow(n, fmt.Sprintf("%.1f", r.KB[n]), r.Msgs[n])
	}
	return t
}
