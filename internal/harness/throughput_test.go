package harness

import (
	"strings"
	"testing"

	"gpbft"
)

func TestMeasureThroughput(t *testing.T) {
	c := tinyConfig()
	p, err := c.MeasureThroughput(gpbft.PBFT, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.MeasureThroughput(gpbft.GPBFT, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || g <= 0 {
		t.Fatalf("throughput must be positive: pbft=%v gpbft=%v", p, g)
	}
	// With committee 6 vs 10 full members, G-PBFT should not be slower.
	if g < p*0.8 {
		t.Fatalf("G-PBFT TPS %.0f unexpectedly below PBFT %.0f", g, p)
	}
}

func TestThroughputTable(t *testing.T) {
	c := tinyConfig()
	c.Sizes = []int{8}
	var sb strings.Builder
	tb, err := c.Throughput(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	if !strings.Contains(sb.String(), "TPS") {
		t.Fatal("table missing title")
	}
}
