package harness

import (
	"fmt"
	"io"
	"time"

	"gpbft"
	"gpbft/internal/gcrypto"
	"gpbft/internal/stats"
)

// Ablations runs the design-choice sweeps called out in DESIGN.md §5:
// committee cap, era period, proposer policy, and batch size. Each
// sweep isolates one knob with everything else at the experiment
// defaults, using a mid-size population.
func (c *Config) Ablations(w io.Writer) error {
	if err := c.ablationCommitteeCap(w); err != nil {
		return err
	}
	if err := c.ablationEraPeriod(w); err != nil {
		return err
	}
	if err := c.ablationProposerPolicy(w); err != nil {
		return err
	}
	return c.ablationBatchSize(w)
}

func (c *Config) ablationCommitteeCap(w io.Writer) error {
	const n = 112
	t := stats.NewTable(fmt.Sprintf("Ablation — committee cap (n = %d devices)", n),
		"max endorsers", "mean latency(s)", "comm cost(KB)")
	for _, cap := range []int{10, 20, 40, 80} {
		cc := *c
		cc.MaxEndorsers = cap
		lats, err := cc.MeasureLatencyRun(gpbft.GPBFT, n, cc.Seed)
		if err != nil {
			return err
		}
		kb, _, err := cc.MeasureCommCost(gpbft.GPBFT, n, cc.Seed)
		if err != nil {
			return err
		}
		t.AddRow(cap, fmt.Sprintf("%.3f", stats.Mean(lats)), fmt.Sprintf("%.1f", kb))
	}
	fmt.Fprintln(w, t)
	return nil
}

func (c *Config) ablationEraPeriod(w io.Writer) error {
	const n = 60
	t := stats.NewTable(fmt.Sprintf("Ablation — era period T (n = %d devices)", n),
		"T", "mean latency(s)", "max latency(s)", "era switches")
	for _, T := range []time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second, 60 * time.Second} {
		cc := *c
		cc.EraPeriod = T
		restore := cc.cryptoOff()
		o := cc.clusterOptions(gpbft.GPBFT, n, cc.Seed)
		cl, err := gpbft.NewCluster(o)
		if err != nil {
			restore()
			return err
		}
		reports := int((time.Second + cc.LoadWindow) / cc.ReportEvery)
		for i := 0; i < n; i++ {
			cl.ScheduleReports(i, 50*time.Millisecond, cc.ReportEvery, reports)
		}
		for i := 0; i < n; i++ {
			offset := time.Second + time.Duration(i)*cc.PerNodeInterval/time.Duration(n)
			for at := offset; at < time.Second+cc.LoadWindow; at += cc.PerNodeInterval {
				cl.SubmitNodeTx(at, i, []byte{byte(i)}, 1)
			}
		}
		cl.RunUntilIdle(time.Second + cc.LoadWindow + cc.DrainCap)
		restore()
		m := cl.Metrics()
		t.AddRow(T, fmt.Sprintf("%.3f", m.MeanLatency().Seconds()),
			fmt.Sprintf("%.3f", m.MaxLatency().Seconds()), m.EraSwitches())
	}
	fmt.Fprintln(w, t)
	return nil
}

func (c *Config) ablationProposerPolicy(w io.Writer) error {
	const n = 24
	t := stats.NewTable(fmt.Sprintf("Ablation — proposer policy (n = %d devices)", n),
		"policy", "mean latency(s)", "distinct proposers")
	for _, geoTimer := range []bool{true, false} {
		name := "geo-timer bias"
		if !geoTimer {
			name = "address rotation"
		}
		restore := c.cryptoOff()
		o := c.clusterOptions(gpbft.GPBFT, n, c.Seed)
		o.GeoTimerProposer = geoTimer
		cl, err := gpbft.NewCluster(o)
		if err != nil {
			restore()
			return err
		}
		reports := int((time.Second + c.LoadWindow) / c.ReportEvery)
		for i := 0; i < n; i++ {
			cl.ScheduleReports(i, 50*time.Millisecond, c.ReportEvery, reports)
		}
		for i := 0; i < n; i++ {
			offset := time.Second + time.Duration(i)*c.PerNodeInterval/time.Duration(n)
			for at := offset; at < time.Second+c.LoadWindow; at += c.PerNodeInterval {
				cl.SubmitNodeTx(at, i, []byte{byte(i)}, 1)
			}
		}
		cl.RunUntilIdle(time.Second + c.LoadWindow + c.DrainCap)
		restore()

		proposers := map[gcrypto.Address]bool{}
		for _, b := range cl.Node(0).App.Chain().Blocks() {
			if b.Header.Height > 0 {
				proposers[b.Header.Proposer] = true
			}
		}
		t.AddRow(name, fmt.Sprintf("%.3f", cl.Metrics().MeanLatency().Seconds()), len(proposers))
	}
	fmt.Fprintln(w, t)
	return nil
}

func (c *Config) ablationBatchSize(w io.Writer) error {
	const n = 40
	t := stats.NewTable(fmt.Sprintf("Ablation — batch size (n = %d devices)", n),
		"txs/block", "mean latency(s)", "blocks")
	for _, batch := range []int{1, 8, 32, 128} {
		restore := c.cryptoOff()
		o := c.clusterOptions(gpbft.GPBFT, n, c.Seed)
		o.BatchSize = batch
		o.DisableEraSwitch = true
		o.ForceEraSwitch = false
		cl, err := gpbft.NewCluster(o)
		if err != nil {
			restore()
			return err
		}
		for i := 0; i < n; i++ {
			offset := time.Second + time.Duration(i)*c.PerNodeInterval/time.Duration(n)
			for at := offset; at < time.Second+c.LoadWindow; at += c.PerNodeInterval {
				cl.SubmitNodeTx(at, i, []byte{byte(i)}, 1)
			}
		}
		cl.RunUntilIdle(time.Second + c.LoadWindow + c.DrainCap)
		restore()
		t.AddRow(batch, fmt.Sprintf("%.3f", cl.Metrics().MeanLatency().Seconds()), cl.MaxHeight())
	}
	fmt.Fprintln(w, t)
	return nil
}
