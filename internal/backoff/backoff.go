// Package backoff implements jittered capped-exponential retry delays.
// It is shared by everything that retries against a possibly-overloaded
// peer: the transport's redial loop and gpbft-client's submission
// retry, including the admission-control retry-after path (a server
// hint floors the computed delay — backing off less than the server
// asked for just earns another rejection).
package backoff

import "time"

// Default policy values.
const (
	DefaultBase   = 100 * time.Millisecond
	DefaultCap    = 10 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.5
)

// Policy describes a capped-exponential backoff schedule.
type Policy struct {
	// Base is the attempt-0 delay.
	Base time.Duration
	// Cap bounds the un-jittered delay.
	Cap time.Duration
	// Factor is the per-attempt multiplier.
	Factor float64
	// Jitter widens each delay by up to this fraction of itself,
	// decorrelating retry storms (0 = deterministic schedule).
	Jitter float64
}

// Default returns the standard client policy.
func Default() Policy {
	return Policy{Base: DefaultBase, Cap: DefaultCap, Factor: DefaultFactor, Jitter: DefaultJitter}
}

func (p Policy) fill() Policy {
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Cap <= 0 {
		p.Cap = DefaultCap
	}
	if p.Factor < 1 {
		p.Factor = DefaultFactor
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Delay returns the delay before retry number attempt (0-based):
// min(Base*Factor^attempt, Cap), widened by Jitter*rnd(). rnd must
// return values in [0, 1); pass a seeded source for deterministic
// tests, or nil for no jitter.
func (p Policy) Delay(attempt int, rnd func() float64) time.Duration {
	p = p.fill()
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Cap) {
			break
		}
	}
	if d > float64(p.Cap) {
		d = float64(p.Cap)
	}
	if p.Jitter > 0 && rnd != nil {
		d += d * p.Jitter * rnd()
	}
	return time.Duration(d)
}

// DelayAfter is Delay floored by a server-provided retry-after hint:
// the schedule still grows exponentially across attempts, but never
// retries sooner than the server asked.
func (p Policy) DelayAfter(attempt int, retryAfter time.Duration, rnd func() float64) time.Duration {
	d := p.Delay(attempt, rnd)
	if d < retryAfter {
		return retryAfter
	}
	return d
}
