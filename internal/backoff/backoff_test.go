package backoff

import (
	"math/rand"
	"testing"
	"time"
)

// The un-jittered schedule must grow exponentially from Base and clamp
// at Cap.
func TestDeterministicSchedule(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 2 * time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt, nil); got != w {
			t.Fatalf("attempt %d: got %v, want %v", attempt, got, w)
		}
	}
}

// Jitter must widen the delay by at most Jitter*delay, reproducibly
// under an injected random source.
func TestJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 10 * time.Second, Factor: 2, Jitter: 0.5}
	mk := func() func() float64 { r := rand.New(rand.NewSource(42)); return r.Float64 }
	r1, r2 := mk(), mk()
	for attempt := 0; attempt < 8; attempt++ {
		base := p.Delay(attempt, nil)
		d1 := p.Delay(attempt, r1)
		d2 := p.Delay(attempt, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, d1, d2)
		}
		if d1 < base || d1 > base+base/2 {
			t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", attempt, d1, base, base+base/2)
		}
	}
}

// A server retry-after hint floors the delay but never shortens a
// schedule that has already grown past it.
func TestRetryAfterFloor(t *testing.T) {
	p := Policy{Base: 50 * time.Millisecond, Cap: 5 * time.Second, Factor: 2}
	if got := p.DelayAfter(0, time.Second, nil); got != time.Second {
		t.Fatalf("early attempt should honor hint: got %v", got)
	}
	if got := p.DelayAfter(6, time.Second, nil); got != 3200*time.Millisecond {
		t.Fatalf("late attempt should keep exponential delay: got %v", got)
	}
}

// Zero-value policies must fall back to usable defaults.
func TestZeroValueDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(0, nil); got != DefaultBase {
		t.Fatalf("zero policy attempt 0: got %v, want %v", got, DefaultBase)
	}
	long := p.Delay(64, nil)
	if long != DefaultCap {
		t.Fatalf("zero policy should cap at %v, got %v", DefaultCap, long)
	}
}
