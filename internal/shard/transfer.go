package shard

import (
	"errors"
	"fmt"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
)

// Transfer is the TxTransferLock payload: a cross-region value move
// initiated in the source region. Committing the lock in the source
// chain mints a Receipt; the value only materialises in the
// destination once the anchor committee has committed a source
// checkpoint covering that receipt.
type Transfer struct {
	// Source and Dest are region prefixes (geohash cells).
	Source string
	Dest   string
	// Recipient is credited Amount in the destination region's ledger.
	Recipient gcrypto.Address
	Amount    uint64
}

const transferTag = "gpbft/shard/transfer/v1"

// Validate checks the transfer's structure.
func (t *Transfer) Validate() error {
	if !geo.Valid(t.Source) || !geo.Valid(t.Dest) {
		return errors.New("shard: transfer with invalid region prefix")
	}
	if t.Source == t.Dest {
		return errors.New("shard: transfer source equals destination")
	}
	if len(t.Source) != len(t.Dest) {
		return errors.New("shard: transfer region prefixes of unequal precision")
	}
	if t.Recipient.IsZero() {
		return errors.New("shard: transfer to zero recipient")
	}
	if t.Amount == 0 {
		return errors.New("shard: zero-amount transfer")
	}
	return nil
}

// MarshalCanonical implements codec.Marshaler.
func (t *Transfer) MarshalCanonical(w *codec.Writer) {
	w.String(transferTag)
	w.String(t.Source)
	w.String(t.Dest)
	w.Raw(t.Recipient[:])
	w.Uint64(t.Amount)
}

// UnmarshalCanonical decodes a transfer.
func (t *Transfer) UnmarshalCanonical(r *codec.Reader) error {
	if tag := r.ReadString(); r.Err() == nil && tag != transferTag {
		return fmt.Errorf("shard: bad transfer tag %q", tag)
	}
	t.Source = r.ReadString()
	t.Dest = r.ReadString()
	r.RawInto(t.Recipient[:])
	t.Amount = r.Uint64()
	return r.Err()
}

// EncodeTransfer serializes a transfer payload.
func EncodeTransfer(t *Transfer) []byte { return codec.Encode(t) }

// DecodeTransfer parses and validates a transfer payload.
func DecodeTransfer(b []byte) (*Transfer, error) {
	r := codec.NewReader(b)
	var t Transfer
	if err := t.UnmarshalCanonical(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Receipt is the committed evidence of a lock: minted by the source
// chain when a TxTransferLock commits, carried (in full) inside the
// next RegionCheckpoint, and replayed to the destination region as a
// TxTransferApply payload. Its ID is the lock transaction's ID, which
// is what makes destination application idempotent: however many
// apply transactions race in (delegate failover retries the path),
// the destination ledger credits each receipt ID exactly once.
type Receipt struct {
	// ID is the source-region lock transaction ID.
	ID gcrypto.Hash
	// Source and Dest are the region prefixes of the transfer.
	Source string
	Dest   string
	// Recipient and Amount mirror the locked transfer.
	Recipient gcrypto.Address
	Amount    uint64
	// LockHeight is the source-chain height that committed the lock —
	// a receipt is anchored once a checkpoint at or above this height
	// commits on the anchor chain.
	LockHeight uint64
}

const receiptTag = "gpbft/shard/receipt/v1"

// Validate checks the receipt's structure.
func (rc *Receipt) Validate() error {
	if rc.ID.IsZero() {
		return errors.New("shard: receipt with zero lock ID")
	}
	if !geo.Valid(rc.Source) || !geo.Valid(rc.Dest) || rc.Source == rc.Dest {
		return errors.New("shard: receipt with invalid region prefixes")
	}
	if rc.Recipient.IsZero() || rc.Amount == 0 {
		return errors.New("shard: receipt without recipient or amount")
	}
	if rc.LockHeight == 0 {
		return errors.New("shard: receipt with zero lock height")
	}
	return nil
}

// MarshalCanonical implements codec.Marshaler.
func (rc *Receipt) MarshalCanonical(w *codec.Writer) {
	w.String(receiptTag)
	w.Raw(rc.ID[:])
	w.String(rc.Source)
	w.String(rc.Dest)
	w.Raw(rc.Recipient[:])
	w.Uint64(rc.Amount)
	w.Uint64(rc.LockHeight)
}

// UnmarshalCanonical decodes a receipt.
func (rc *Receipt) UnmarshalCanonical(r *codec.Reader) error {
	if tag := r.ReadString(); r.Err() == nil && tag != receiptTag {
		return fmt.Errorf("shard: bad receipt tag %q", tag)
	}
	r.RawInto(rc.ID[:])
	rc.Source = r.ReadString()
	rc.Dest = r.ReadString()
	r.RawInto(rc.Recipient[:])
	rc.Amount = r.Uint64()
	rc.LockHeight = r.Uint64()
	return r.Err()
}

// EncodeReceipt serializes a receipt payload.
func EncodeReceipt(rc *Receipt) []byte { return codec.Encode(rc) }

// DecodeReceipt parses and validates a receipt payload.
func DecodeReceipt(b []byte) (*Receipt, error) {
	r := codec.NewReader(b)
	var rc Receipt
	if err := rc.UnmarshalCanonical(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	return &rc, nil
}
