// Package shard partitions the deployment world into geohash-prefix
// regions and defines the cross-region coordination records: signed
// region checkpoints anchored by a top-level committee and the
// receipt-based two-phase transfer path (lock in the source region →
// apply in the destination only after the anchor has committed the
// source checkpoint covering the receipt).
//
// The shard key is the geohash cell itself (internal/geo): a region is
// every point whose geohash shares the region's prefix, so routing a
// transaction is one Encode of its location and region adjacency is
// geo.Neighbors. One shard reproduces the unsharded deployment
// bit-for-bit — the partition only exists when 2+ prefixes are live.
package shard

import (
	"errors"
	"fmt"

	"gpbft/internal/geo"
)

// DefaultPrefixLen is the geohash precision used for region cells when
// Options.ShardPrefixLen is zero: ~4.9 km × 4.9 km at the equator,
// city-district sized — wide enough to hold a full endorser committee,
// narrow enough that intra-region latency stays LAN-like.
const DefaultPrefixLen = 5

// MaxRegions bounds a partition to the base cell plus its 8 geohash
// neighbours. Larger topologies come from composing partitions.
const MaxRegions = 9

// Errors returned by the partitioner.
var (
	ErrBadPrefixLen = errors.New("shard: prefix length out of range")
	ErrTooManyRegions = fmt.Errorf("shard: more than %d regions", MaxRegions)
)

// KeyOf returns the region key (geohash prefix) of a point.
func KeyOf(p geo.Point, prefixLen int) (string, error) {
	if prefixLen < 1 || prefixLen > geo.MaxGeohashPrecision {
		return "", ErrBadPrefixLen
	}
	return geo.Encode(p, prefixLen)
}

// Partition derives n region prefixes from a seed region: the cell
// containing the seed's center, then its geohash neighbours in
// geo.Neighbors order. Every prefix is a valid deployment region of
// its own (its decode box), and all n are mutually adjacent or equal —
// the hierarchical topology of the Guo/Li/Nejad follow-ups.
func Partition(seed geo.Region, prefixLen, n int) ([]string, error) {
	if n < 1 {
		return nil, errors.New("shard: need at least one region")
	}
	if n > MaxRegions {
		return nil, ErrTooManyRegions
	}
	base, err := KeyOf(seed.Center(), prefixLen)
	if err != nil {
		return nil, err
	}
	cells := []string{base}
	if n > 1 {
		nb, err := geo.Neighbors(base)
		if err != nil {
			return nil, err
		}
		if len(nb) < n-1 {
			return nil, fmt.Errorf("shard: cell %q has only %d neighbours, need %d regions", base, len(nb), n)
		}
		cells = append(cells, nb[:n-1]...)
	}
	return cells, nil
}

// RegionOf returns the deployment box of a region prefix as a
// geo.Region usable in an AdmittancePolicy.
func RegionOf(prefix string) (geo.Region, error) {
	box, err := geo.DecodeBox(prefix)
	if err != nil {
		return geo.Region{}, err
	}
	return geo.NewRegion(
		geo.Point{Lng: box.MinLng, Lat: box.MinLat},
		geo.Point{Lng: box.MaxLng, Lat: box.MaxLat},
	), nil
}

// Bound returns the smallest region covering all the given prefixes —
// the anchor committee's admittance region (delegates are physically
// deployed inside their home cells).
func Bound(prefixes []string) (geo.Region, error) {
	if len(prefixes) == 0 {
		return geo.Region{}, errors.New("shard: no prefixes")
	}
	var out geo.Region
	for i, p := range prefixes {
		r, err := RegionOf(p)
		if err != nil {
			return geo.Region{}, err
		}
		if i == 0 {
			out = r
			continue
		}
		if r.MinLng < out.MinLng {
			out.MinLng = r.MinLng
		}
		if r.MinLat < out.MinLat {
			out.MinLat = r.MinLat
		}
		if r.MaxLng > out.MaxLng {
			out.MaxLng = r.MaxLng
		}
		if r.MaxLat > out.MaxLat {
			out.MaxLat = r.MaxLat
		}
	}
	return out, nil
}

// Router maps points to region indices by geohash prefix.
type Router struct {
	prefixLen int
	index     map[string]int
}

// NewRouter builds a router over the partition's prefixes. All
// prefixes must share one length.
func NewRouter(prefixes []string) (*Router, error) {
	if len(prefixes) == 0 {
		return nil, errors.New("shard: empty partition")
	}
	r := &Router{prefixLen: len(prefixes[0]), index: make(map[string]int, len(prefixes))}
	for i, p := range prefixes {
		if len(p) != r.prefixLen || !geo.Valid(p) {
			return nil, fmt.Errorf("shard: bad region prefix %q", p)
		}
		if _, dup := r.index[p]; dup {
			return nil, fmt.Errorf("shard: duplicate region prefix %q", p)
		}
		r.index[p] = i
	}
	return r, nil
}

// Route returns the region index owning the point.
func (r *Router) Route(p geo.Point) (int, bool) {
	key, err := geo.Encode(p, r.prefixLen)
	if err != nil {
		return 0, false
	}
	i, ok := r.index[key]
	return i, ok
}

// RouteKey returns the region index of a prefix.
func (r *Router) RouteKey(prefix string) (int, bool) {
	i, ok := r.index[prefix]
	return i, ok
}

// Regions returns the number of regions in the partition.
func (r *Router) Regions() int { return len(r.index) }

// PrefixLen returns the partition's geohash precision.
func (r *Router) PrefixLen() int { return r.prefixLen }
