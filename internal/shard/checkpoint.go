package shard

import (
	"errors"
	"fmt"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
)

// RegionCheckpoint is the TxRegionCheckpoint payload committed on the
// anchor chain: a region delegate's attestation of its region chain's
// head. Authenticity comes from the carrying transaction's signature —
// the anchor ledger only accepts checkpoint transactions signed by an
// anchor-committee member, and each delegate is an endorser elected
// from its region — so no inner signature is needed.
//
// Receipts are carried in full (not as hashes): once the checkpoint
// commits, destination regions can construct their apply transactions
// from anchor-chain content alone, with no cross-region chain reads.
type RegionCheckpoint struct {
	// Region is the checkpointed region's prefix.
	Region string
	// Era and Height identify the region chain position attested.
	Era    uint64
	Height uint64
	// Root is the region chain's head block hash at Height. Two
	// committed checkpoints for one region at the same height with
	// different roots are a cross-region fork proof; the anchor ledger
	// refuses to commit the second.
	Root gcrypto.Hash
	// Receipts are the outbound transfer receipts minted since the
	// region's previous anchored height.
	Receipts []Receipt
}

const checkpointTag = "gpbft/shard/checkpoint/v1"

// maxCheckpointReceipts bounds one checkpoint's receipt list (a
// decode-time guard against resource-exhaustion payloads).
const maxCheckpointReceipts = 1 << 16

// Validate checks the checkpoint's structure.
func (cp *RegionCheckpoint) Validate() error {
	if !geo.Valid(cp.Region) {
		return fmt.Errorf("shard: checkpoint with invalid region %q", cp.Region)
	}
	if cp.Height == 0 {
		return errors.New("shard: checkpoint at height zero")
	}
	if cp.Root.IsZero() {
		return errors.New("shard: checkpoint with zero root")
	}
	for i := range cp.Receipts {
		rc := &cp.Receipts[i]
		if err := rc.Validate(); err != nil {
			return fmt.Errorf("shard: checkpoint receipt %d: %w", i, err)
		}
		if rc.Source != cp.Region {
			return fmt.Errorf("shard: checkpoint receipt %d from foreign region %q", i, rc.Source)
		}
		if rc.LockHeight > cp.Height {
			return fmt.Errorf("shard: checkpoint receipt %d locked above checkpoint height", i)
		}
	}
	return nil
}

// MarshalCanonical implements codec.Marshaler.
func (cp *RegionCheckpoint) MarshalCanonical(w *codec.Writer) {
	w.String(checkpointTag)
	w.String(cp.Region)
	w.Uint64(cp.Era)
	w.Uint64(cp.Height)
	w.Raw(cp.Root[:])
	w.Count(len(cp.Receipts))
	for i := range cp.Receipts {
		cp.Receipts[i].MarshalCanonical(w)
	}
}

// UnmarshalCanonical decodes a checkpoint.
func (cp *RegionCheckpoint) UnmarshalCanonical(r *codec.Reader) error {
	if tag := r.ReadString(); r.Err() == nil && tag != checkpointTag {
		return fmt.Errorf("shard: bad checkpoint tag %q", tag)
	}
	cp.Region = r.ReadString()
	cp.Era = r.Uint64()
	cp.Height = r.Uint64()
	r.RawInto(cp.Root[:])
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	if n > maxCheckpointReceipts {
		return fmt.Errorf("shard: checkpoint with %d receipts", n)
	}
	cp.Receipts = make([]Receipt, n)
	for i := 0; i < n; i++ {
		if err := cp.Receipts[i].UnmarshalCanonical(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// EncodeCheckpoint serializes a checkpoint payload.
func EncodeCheckpoint(cp *RegionCheckpoint) []byte { return codec.Encode(cp) }

// DecodeCheckpoint parses and validates a checkpoint payload.
func DecodeCheckpoint(b []byte) (*RegionCheckpoint, error) {
	r := codec.NewReader(b)
	var cp RegionCheckpoint
	if err := cp.UnmarshalCanonical(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return &cp, nil
}
