package shard

import (
	"bytes"
	"fmt"
	"sort"

	"gpbft/internal/gcrypto"
)

// ErrAnchorFork is returned when a checkpoint attests a different root
// than one already anchored for the same region and height — the
// cross-region fork the hierarchy exists to make impossible. The
// anchor ledger refuses to commit blocks carrying such a checkpoint,
// so at most one root per (region, height) can ever anchor.
var ErrAnchorFork = fmt.Errorf("shard: conflicting checkpoint root (cross-region fork)")

// CheckpointPoint is the anchored position of one region.
type CheckpointPoint struct {
	Era    uint64
	Height uint64
	Root   gcrypto.Hash
}

// anchorHistoryDepth bounds the retained per-region (height → root)
// rows the fork check consults. Checkpoints older than the window are
// accepted as no-ops — the live fork surface is the recent heights.
const anchorHistoryDepth = 64

// AnchorIndex is the anchor chain's derived state: the latest anchored
// checkpoint per region, a bounded per-region root history for fork
// detection, and the set of transfer receipts covered by committed
// checkpoints. It is deterministic chain content — every anchor node
// derives an identical index from identical blocks — and is carried in
// the canonical ChainState so restored nodes keep the fork surface.
type AnchorIndex struct {
	latest  map[string]CheckpointPoint
	history map[string]map[uint64]gcrypto.Hash
	// receipts maps covered receipt IDs to their full receipts; order
	// preserves first-anchored sequence for deterministic iteration.
	receipts map[gcrypto.Hash]Receipt
	order    []gcrypto.Hash
}

// NewAnchorIndex returns an empty index.
func NewAnchorIndex() *AnchorIndex {
	return &AnchorIndex{
		latest:   make(map[string]CheckpointPoint),
		history:  make(map[string]map[uint64]gcrypto.Hash),
		receipts: make(map[gcrypto.Hash]Receipt),
	}
}

// Check reports whether the checkpoint is consistent with everything
// anchored so far, without mutating the index. A conflicting root at a
// retained height returns ErrAnchorFork.
func (a *AnchorIndex) Check(cp *RegionCheckpoint) error {
	if h := a.history[cp.Region]; h != nil {
		if root, ok := h[cp.Height]; ok && root != cp.Root {
			return fmt.Errorf("%w: region %s height %d", ErrAnchorFork, cp.Region, cp.Height)
		}
	}
	return nil
}

// RootAt returns the retained anchored root for (region, height), if
// any — what a conflicting checkpoint would be diverging from.
func (a *AnchorIndex) RootAt(region string, height uint64) (gcrypto.Hash, bool) {
	h := a.history[region]
	if h == nil {
		return gcrypto.Hash{}, false
	}
	root, ok := h[height]
	return root, ok
}

// belowWindowLocked reports whether height falls below the retained
// fork-detection window for a region: the window is full and every
// retained row is newer. Such a height's original row was pruned, so a
// conflicting late root could no longer be detected — the caller must
// not record it. The rule is a pure function of retained state, so
// snapshot-restored nodes classify identically.
func (a *AnchorIndex) belowWindow(region string, height uint64) bool {
	h := a.history[region]
	if len(h) < anchorHistoryDepth {
		return false
	}
	for k := range h {
		if k <= height {
			return false
		}
	}
	return true
}

// Apply folds a committed checkpoint into the index. Conflicts return
// ErrAnchorFork and leave the index unchanged; stale checkpoints
// (height at or below the latest, consistent roots) only merge any
// receipts not yet covered. A checkpoint below the retained window —
// whose original row was already pruned, so its root can no longer be
// adjudicated — records nothing, but still merges receipts: receipt
// coverage is deduplicated by ID and never forks.
func (a *AnchorIndex) Apply(cp *RegionCheckpoint) error {
	if err := a.Check(cp); err != nil {
		return err
	}
	if !a.belowWindow(cp.Region, cp.Height) {
		h := a.history[cp.Region]
		if h == nil {
			h = make(map[uint64]gcrypto.Hash, anchorHistoryDepth)
			a.history[cp.Region] = h
		}
		h[cp.Height] = cp.Root
		// Prune the oldest rows beyond the retention window.
		if len(h) > anchorHistoryDepth {
			heights := make([]uint64, 0, len(h))
			for k := range h {
				heights = append(heights, k)
			}
			sort.Slice(heights, func(i, j int) bool { return heights[i] < heights[j] })
			for _, k := range heights[:len(h)-anchorHistoryDepth] {
				delete(h, k)
			}
		}
		if cur, ok := a.latest[cp.Region]; !ok || cp.Height > cur.Height {
			a.latest[cp.Region] = CheckpointPoint{Era: cp.Era, Height: cp.Height, Root: cp.Root}
		}
	}
	for i := range cp.Receipts {
		rc := cp.Receipts[i]
		if _, seen := a.receipts[rc.ID]; seen {
			continue
		}
		a.receipts[rc.ID] = rc
		a.order = append(a.order, rc.ID)
	}
	return nil
}

// Latest returns the newest anchored checkpoint for a region.
func (a *AnchorIndex) Latest(region string) (CheckpointPoint, bool) {
	pt, ok := a.latest[region]
	return pt, ok
}

// Regions returns the anchored region prefixes, sorted.
func (a *AnchorIndex) Regions() []string {
	out := make([]string, 0, len(a.latest))
	for r := range a.latest {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Covered reports whether a receipt ID is covered by a committed
// checkpoint (and is therefore safe to apply in its destination).
func (a *AnchorIndex) Covered(id gcrypto.Hash) bool {
	_, ok := a.receipts[id]
	return ok
}

// Receipts returns every covered receipt in first-anchored order.
func (a *AnchorIndex) Receipts() []Receipt {
	out := make([]Receipt, 0, len(a.order))
	for _, id := range a.order {
		out = append(out, a.receipts[id])
	}
	return out
}

// AnchorRecord is one retained (region, height, root) row, the
// canonical-export form of the index's fork-detection history.
type AnchorRecord struct {
	Region string
	Era    uint64
	Height uint64
	Root   gcrypto.Hash
}

// Export flattens the index deterministically: history rows sorted by
// (region, height) with the latest row carrying its era, and covered
// receipts in first-anchored order.
func (a *AnchorIndex) Export() ([]AnchorRecord, []Receipt) {
	recs := make([]AnchorRecord, 0, len(a.history)*4)
	for region, h := range a.history {
		era := uint64(0)
		latest := a.latest[region]
		for height, root := range h {
			if height == latest.Height {
				era = latest.Era
			} else {
				era = 0
			}
			recs = append(recs, AnchorRecord{Region: region, Era: era, Height: height, Root: root})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Region != recs[j].Region {
			return recs[i].Region < recs[j].Region
		}
		return recs[i].Height < recs[j].Height
	})
	return recs, a.Receipts()
}

// RestoreAnchorIndex rebuilds an index from its exported form.
func RestoreAnchorIndex(recs []AnchorRecord, receipts []Receipt) *AnchorIndex {
	a := NewAnchorIndex()
	for _, r := range recs {
		h := a.history[r.Region]
		if h == nil {
			h = make(map[uint64]gcrypto.Hash, anchorHistoryDepth)
			a.history[r.Region] = h
		}
		h[r.Height] = r.Root
		if cur, ok := a.latest[r.Region]; !ok || r.Height > cur.Height {
			a.latest[r.Region] = CheckpointPoint{Era: r.Era, Height: r.Height, Root: r.Root}
		}
	}
	for _, rc := range receipts {
		if _, seen := a.receipts[rc.ID]; seen {
			continue
		}
		a.receipts[rc.ID] = rc
		a.order = append(a.order, rc.ID)
	}
	return a
}

// Equal reports whether two indexes carry identical anchored state —
// the cross-anchor-node agreement check chaos schedules assert.
func (a *AnchorIndex) Equal(b *AnchorIndex) bool {
	ar, arc := a.Export()
	br, brc := b.Export()
	if len(ar) != len(br) || len(arc) != len(brc) {
		return false
	}
	for i := range ar {
		if ar[i] != br[i] {
			return false
		}
	}
	for i := range arc {
		if !bytes.Equal(arc[i].ID[:], brc[i].ID[:]) || arc[i] != brc[i] {
			return false
		}
	}
	return true
}
