package shard

import (
	"errors"
	"strings"
	"testing"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
)

var testSeed = geo.NewRegion(geo.Point{Lng: 114.175, Lat: 22.300}, geo.Point{Lng: 114.185, Lat: 22.310})

func TestPartitionAndRouter(t *testing.T) {
	for _, n := range []int{1, 2, 4, 9} {
		prefixes, err := Partition(testSeed, DefaultPrefixLen, n)
		if err != nil {
			t.Fatalf("Partition(%d): %v", n, err)
		}
		if len(prefixes) != n {
			t.Fatalf("Partition(%d) returned %d prefixes", n, len(prefixes))
		}
		router, err := NewRouter(prefixes)
		if err != nil {
			t.Fatalf("NewRouter: %v", err)
		}
		for i, p := range prefixes {
			reg, err := RegionOf(p)
			if err != nil {
				t.Fatalf("RegionOf(%q): %v", p, err)
			}
			// The cell's own centre must route back to the cell.
			if got, ok := router.Route(reg.Center()); !ok || got != i {
				t.Fatalf("Route(center of %q) = %d, %v; want %d", p, got, ok, i)
			}
			if got, ok := router.RouteKey(p); !ok || got != i {
				t.Fatalf("RouteKey(%q) = %d, %v; want %d", p, got, ok, i)
			}
		}
	}
}

func TestPartitionBounds(t *testing.T) {
	if _, err := Partition(testSeed, DefaultPrefixLen, MaxRegions+1); err == nil {
		t.Fatal("Partition beyond MaxRegions accepted")
	}
	if _, err := Partition(testSeed, 0, 2); err == nil {
		t.Fatal("Partition with zero prefix length accepted")
	}
	if _, err := KeyOf(geo.Point{}, geo.MaxGeohashPrecision+1); !errors.Is(err, ErrBadPrefixLen) {
		t.Fatalf("KeyOf over-precision: %v", err)
	}
}

func TestBoundCoversAllCells(t *testing.T) {
	prefixes, err := Partition(testSeed, DefaultPrefixLen, 4)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Bound(prefixes)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range prefixes {
		reg, _ := RegionOf(p)
		if !bound.Contains(reg.Center()) {
			t.Fatalf("bound %+v misses centre of %q", bound, p)
		}
	}
}

func testReceipt(b byte) Receipt {
	var id gcrypto.Hash
	id[0] = b
	var rcpt gcrypto.Address
	rcpt[0] = 0xAA
	return Receipt{ID: id, Source: "wecnv", Dest: "wecny", Recipient: rcpt, Amount: 7, LockHeight: 3}
}

func TestTransferCodecRoundTrip(t *testing.T) {
	var rcpt gcrypto.Address
	rcpt[3] = 9
	in := &Transfer{Source: "wecnv", Dest: "wecny", Recipient: rcpt, Amount: 42}
	out, err := DecodeTransfer(EncodeTransfer(in))
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	bad := *in
	bad.Dest = bad.Source
	if _, err := DecodeTransfer(EncodeTransfer(&bad)); err == nil {
		t.Fatal("self-transfer decoded")
	}
	if _, err := DecodeTransfer([]byte("junk")); err == nil {
		t.Fatal("junk decoded")
	}
}

func TestReceiptCodecRoundTrip(t *testing.T) {
	in := testReceipt(1)
	out, err := DecodeReceipt(EncodeReceipt(&in))
	if err != nil {
		t.Fatal(err)
	}
	if *out != in {
		t.Fatalf("round trip mismatch")
	}
	bad := in
	bad.Amount = 0
	if _, err := DecodeReceipt(EncodeReceipt(&bad)); err == nil {
		t.Fatal("zero-amount receipt decoded")
	}
}

func TestCheckpointCodecRoundTrip(t *testing.T) {
	root := gcrypto.HashBytes([]byte("head"))
	in := &RegionCheckpoint{
		Region:   "wecnv",
		Era:      2,
		Height:   9,
		Root:     root,
		Receipts: []Receipt{testReceipt(1), testReceipt(2)},
	}
	out, err := DecodeCheckpoint(EncodeCheckpoint(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Region != in.Region || out.Height != in.Height || out.Root != in.Root || len(out.Receipts) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	// A receipt from a foreign region cannot ride a checkpoint.
	foreign := *in
	foreign.Receipts = []Receipt{{ID: gcrypto.HashBytes([]byte("x")), Source: "wecny", Dest: "wecnv",
		Recipient: testReceipt(0).Recipient, Amount: 1, LockHeight: 1}}
	if _, err := DecodeCheckpoint(EncodeCheckpoint(&foreign)); err == nil ||
		!strings.Contains(err.Error(), "foreign region") {
		t.Fatalf("foreign receipt accepted: %v", err)
	}
}

func TestAnchorIndexForkDetection(t *testing.T) {
	a := NewAnchorIndex()
	cp := &RegionCheckpoint{Region: "wecnv", Era: 1, Height: 5, Root: gcrypto.HashBytes([]byte("a"))}
	if err := a.Apply(cp); err != nil {
		t.Fatal(err)
	}
	// Same height, same root: idempotent.
	if err := a.Apply(cp); err != nil {
		t.Fatalf("idempotent re-apply: %v", err)
	}
	// Same height, different root: fork.
	fork := *cp
	fork.Root = gcrypto.HashBytes([]byte("b"))
	if err := a.Apply(&fork); !errors.Is(err, ErrAnchorFork) {
		t.Fatalf("fork not detected: %v", err)
	}
	if err := a.Check(&fork); !errors.Is(err, ErrAnchorFork) {
		t.Fatalf("Check missed fork: %v", err)
	}
	// Advance, then a stale-but-consistent checkpoint is a no-op.
	next := &RegionCheckpoint{Region: "wecnv", Era: 1, Height: 7, Root: gcrypto.HashBytes([]byte("c"))}
	if err := a.Apply(next); err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(cp); err != nil {
		t.Fatalf("stale consistent checkpoint: %v", err)
	}
	if pt, ok := a.Latest("wecnv"); !ok || pt.Height != 7 {
		t.Fatalf("latest = %+v, %v", pt, ok)
	}
}

func TestAnchorIndexReceiptsAndExport(t *testing.T) {
	a := NewAnchorIndex()
	r1, r2 := testReceipt(1), testReceipt(2)
	cp := &RegionCheckpoint{Region: "wecnv", Era: 0, Height: 4, Root: gcrypto.HashBytes([]byte("r")),
		Receipts: []Receipt{r1, r2}}
	if err := a.Apply(cp); err != nil {
		t.Fatal(err)
	}
	// Receipts re-anchored by a later checkpoint are not duplicated.
	cp2 := &RegionCheckpoint{Region: "wecnv", Era: 0, Height: 6, Root: gcrypto.HashBytes([]byte("r2")),
		Receipts: []Receipt{r2}}
	if err := a.Apply(cp2); err != nil {
		t.Fatal(err)
	}
	if !a.Covered(r1.ID) || !a.Covered(r2.ID) {
		t.Fatal("receipts not covered")
	}
	if got := a.Receipts(); len(got) != 2 || got[0].ID != r1.ID || got[1].ID != r2.ID {
		t.Fatalf("receipt order: %+v", got)
	}
	recs, rcs := a.Export()
	b := RestoreAnchorIndex(recs, rcs)
	if !a.Equal(b) {
		t.Fatal("export/restore not equal")
	}
	if pt, ok := b.Latest("wecnv"); !ok || pt.Height != 6 {
		t.Fatalf("restored latest = %+v, %v", pt, ok)
	}
}

func TestAnchorHistoryPruning(t *testing.T) {
	a := NewAnchorIndex()
	for h := uint64(1); h <= anchorHistoryDepth+10; h++ {
		cp := &RegionCheckpoint{Region: "wecnv", Height: h, Root: gcrypto.HashBytes([]byte{byte(h), byte(h >> 8)})}
		if err := a.Apply(cp); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(a.history["wecnv"]); n > anchorHistoryDepth {
		t.Fatalf("history retained %d rows", n)
	}
	// A conflicting root below the retained window is accepted (no-op),
	// inside the window it is refused.
	old := &RegionCheckpoint{Region: "wecnv", Height: 1, Root: gcrypto.HashBytes([]byte("other"))}
	if err := a.Check(old); err != nil {
		t.Fatalf("below-window conflict should pass Check: %v", err)
	}
	recent := &RegionCheckpoint{Region: "wecnv", Height: anchorHistoryDepth + 9, Root: gcrypto.HashBytes([]byte("other"))}
	if err := a.Check(recent); !errors.Is(err, ErrAnchorFork) {
		t.Fatalf("in-window conflict missed: %v", err)
	}
	// Applying the below-window checkpoint records nothing: its
	// original row was pruned, so its root can no longer be adjudicated
	// and must not re-enter the fork surface — but any receipts it
	// carries still merge (coverage is deduplicated by ID).
	old.Receipts = []Receipt{testReceipt(77)}
	if err := a.Apply(old); err != nil {
		t.Fatalf("below-window apply: %v", err)
	}
	if _, ok := a.RootAt("wecnv", 1); ok {
		t.Fatal("below-window root was recorded")
	}
	if !a.Covered(old.Receipts[0].ID) {
		t.Fatal("below-window receipts not merged")
	}
	if pt, _ := a.Latest("wecnv"); pt.Height != anchorHistoryDepth+10 {
		t.Fatalf("latest regressed to %d", pt.Height)
	}
}
