// Package byzantine implements adversarial engine wrappers used to
// probe the protocol's fault tolerance: the paper's threat model
// allows up to f = ⌊(n−1)/3⌋ endorsers to be "faulty, either dishonest
// or frustrated". Each wrapper decorates an honest engine and distorts
// its behaviour at the action stream, so the attack code cannot
// accidentally depend on engine internals.
package byzantine

import (
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
	"gpbft/internal/types"
)

// Silent is an engine that participates in nothing: it models a
// "frustrated" endorser that joined the committee and then stopped
// serving (distinct from a crash — the node is reachable, it just
// never responds).
type Silent struct{}

// Init implements consensus.Engine.
func (Silent) Init(consensus.Time) []consensus.Action { return nil }

// OnEnvelope implements consensus.Engine.
func (Silent) OnEnvelope(consensus.Time, *consensus.Envelope) []consensus.Action { return nil }

// OnTimer implements consensus.Engine.
func (Silent) OnTimer(consensus.Time, consensus.TimerID) []consensus.Action { return nil }

// OnRequest implements consensus.Engine.
func (Silent) OnRequest(consensus.Time, *types.Transaction) []consensus.Action { return nil }

// Equivocator wraps an engine and, whenever it broadcasts a
// pre-prepare, sends DIFFERENT proposals to the two halves of the
// audience — the classic safety attack a correct PBFT must absorb
// (backups cross-check prepares, neither half reaches 2f matching).
type Equivocator struct {
	Inner consensus.Engine
	Key   *gcrypto.KeyPair
	// Forks counts how many equivocating proposal pairs were emitted.
	Forks int
}

// Init implements consensus.Engine.
func (e *Equivocator) Init(now consensus.Time) []consensus.Action {
	return e.mutate(e.Inner.Init(now))
}

// OnEnvelope implements consensus.Engine.
func (e *Equivocator) OnEnvelope(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	return e.mutate(e.Inner.OnEnvelope(now, env))
}

// OnTimer implements consensus.Engine.
func (e *Equivocator) OnTimer(now consensus.Time, id consensus.TimerID) []consensus.Action {
	return e.mutate(e.Inner.OnTimer(now, id))
}

// OnRequest implements consensus.Engine.
func (e *Equivocator) OnRequest(now consensus.Time, tx *types.Transaction) []consensus.Action {
	return e.mutate(e.Inner.OnRequest(now, tx))
}

func (e *Equivocator) mutate(acts []consensus.Action) []consensus.Action {
	out := make([]consensus.Action, 0, len(acts))
	for _, a := range acts {
		bc, ok := a.(consensus.Broadcast)
		if !ok || bc.Env.MsgKind != consensus.KindPrePrepare || len(bc.To) < 2 {
			out = append(out, a)
			continue
		}
		var pp pbft.PrePrepare
		if err := consensus.Open(bc.Env, consensus.KindPrePrepare, &pp); err != nil {
			out = append(out, a)
			continue
		}
		// Craft a conflicting twin: same (era, view, seq), a mutated
		// block (timestamp shifted), re-signed.
		twin := pp
		twinBlock := pp.Block
		twinBlock.Header.Timestamp = twinBlock.Header.Timestamp.Add(1)
		twin.Block = twinBlock
		twin.Digest = twinBlock.Hash()
		twinEnv := consensus.Seal(e.Key, &twin)
		e.Forks++

		half := len(bc.To) / 2
		for i, to := range bc.To {
			env := bc.Env
			if i >= half {
				env = twinEnv
			}
			out = append(out, consensus.Send{To: to, Env: env})
		}
	}
	return out
}

// VoteWithholder wraps an engine and suppresses its own commit
// broadcasts — a liveness attack: the withholder still prepares (so it
// looks alive) but never helps commit.
type VoteWithholder struct {
	Inner consensus.Engine
	// Withheld counts suppressed commit broadcasts.
	Withheld int
}

// Init implements consensus.Engine.
func (v *VoteWithholder) Init(now consensus.Time) []consensus.Action {
	return v.mutate(v.Inner.Init(now))
}

// OnEnvelope implements consensus.Engine.
func (v *VoteWithholder) OnEnvelope(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	return v.mutate(v.Inner.OnEnvelope(now, env))
}

// OnTimer implements consensus.Engine.
func (v *VoteWithholder) OnTimer(now consensus.Time, id consensus.TimerID) []consensus.Action {
	return v.mutate(v.Inner.OnTimer(now, id))
}

// OnRequest implements consensus.Engine.
func (v *VoteWithholder) OnRequest(now consensus.Time, tx *types.Transaction) []consensus.Action {
	return v.mutate(v.Inner.OnRequest(now, tx))
}

func (v *VoteWithholder) mutate(acts []consensus.Action) []consensus.Action {
	out := acts[:0]
	for _, a := range acts {
		if bc, ok := a.(consensus.Broadcast); ok && bc.Env.MsgKind == consensus.KindCommit {
			v.Withheld++
			continue
		}
		out = append(out, a)
	}
	return out
}
