package byzantine

import (
	"gpbft/internal/consensus"
	"gpbft/internal/core"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// SnapshotLiar wraps an engine that behaves honestly in consensus but
// corrupts every snapshot it serves to a fast-syncing peer: the bytes
// it ships are bit-flipped after encoding, then re-sealed with its own
// key so the envelope itself verifies. It models a peer trying to feed
// a joiner fabricated state. The defense under test is the receiver's
// verification chain — decode, producer signature, quorum-agreed root —
// which must reject the snapshot and fall back to pulling blocks, never
// installing a byte of the lie.
type SnapshotLiar struct {
	Inner consensus.Engine
	Key   *gcrypto.KeyPair
	// Lied counts corrupted snapshot responses shipped.
	Lied int
}

// Init implements consensus.Engine.
func (l *SnapshotLiar) Init(now consensus.Time) []consensus.Action {
	return l.mutate(l.Inner.Init(now))
}

// OnEnvelope implements consensus.Engine.
func (l *SnapshotLiar) OnEnvelope(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	return l.mutate(l.Inner.OnEnvelope(now, env))
}

// OnTimer implements consensus.Engine.
func (l *SnapshotLiar) OnTimer(now consensus.Time, id consensus.TimerID) []consensus.Action {
	return l.mutate(l.Inner.OnTimer(now, id))
}

// OnRequest implements consensus.Engine.
func (l *SnapshotLiar) OnRequest(now consensus.Time, tx *types.Transaction) []consensus.Action {
	return l.mutate(l.Inner.OnRequest(now, tx))
}

// OnCommitApplied forwards commit notifications so the liar keeps
// pipelining like an honest endorser.
func (l *SnapshotLiar) OnCommitApplied(now consensus.Time) []consensus.Action {
	if cn, ok := l.Inner.(consensus.CommitNotifiable); ok {
		return l.mutate(cn.OnCommitApplied(now))
	}
	return nil
}

func (l *SnapshotLiar) mutate(acts []consensus.Action) []consensus.Action {
	for i, a := range acts {
		send, ok := a.(consensus.Send)
		if !ok {
			continue
		}
		lie := l.corrupt(send.Env)
		if lie == nil {
			continue
		}
		l.Lied++
		acts[i] = consensus.Send{To: send.To, Env: lie}
	}
	return acts
}

// corrupt rebuilds a snapshot response with damaged payload bytes,
// validly sealed; nil for every other message.
func (l *SnapshotLiar) corrupt(env *consensus.Envelope) *consensus.Envelope {
	if env.MsgKind != consensus.KindBlockSync {
		return nil
	}
	var resp core.SnapshotResponse
	if consensus.Open(env, consensus.KindBlockSync, &resp) != nil {
		return nil
	}
	if len(resp.Data) == 0 {
		return nil
	}
	resp.Data[len(resp.Data)/2] ^= 0x20
	return consensus.Seal(l.Key, &resp)
}
