package byzantine

import (
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/pbft"
	"gpbft/internal/types"
)

// DoubleVoter wraps an engine and, whenever it broadcasts a prepare or
// commit vote, also signs and sends a conflicting twin (same era, view
// and sequence, different digest) to the SAME audience. Unlike the
// Equivocator — which splits the audience and hopes neither half
// converges — the DoubleVoter hands every honest replica both signed
// votes, i.e. exactly the self-verifying double-sign proof the
// accountability pipeline is built to capture. It is a detectability
// probe more than a safety attack: correct replicas ignore the losing
// vote, but each one can now convict the sender.
type DoubleVoter struct {
	Inner consensus.Engine
	Key   *gcrypto.KeyPair
	// Doubled counts emitted conflicting vote pairs.
	Doubled int
}

// Init implements consensus.Engine.
func (d *DoubleVoter) Init(now consensus.Time) []consensus.Action {
	return d.mutate(d.Inner.Init(now))
}

// OnEnvelope implements consensus.Engine.
func (d *DoubleVoter) OnEnvelope(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	return d.mutate(d.Inner.OnEnvelope(now, env))
}

// OnTimer implements consensus.Engine.
func (d *DoubleVoter) OnTimer(now consensus.Time, id consensus.TimerID) []consensus.Action {
	return d.mutate(d.Inner.OnTimer(now, id))
}

// OnRequest implements consensus.Engine.
func (d *DoubleVoter) OnRequest(now consensus.Time, tx *types.Transaction) []consensus.Action {
	return d.mutate(d.Inner.OnRequest(now, tx))
}

func (d *DoubleVoter) mutate(acts []consensus.Action) []consensus.Action {
	out := make([]consensus.Action, 0, len(acts))
	for _, a := range acts {
		out = append(out, a)
		bc, ok := a.(consensus.Broadcast)
		if !ok {
			continue
		}
		twin := d.twin(bc.Env)
		if twin == nil {
			continue
		}
		d.Doubled++
		for _, to := range bc.To {
			out = append(out, consensus.Send{To: to, Env: twin})
		}
	}
	return out
}

// twin builds a validly signed conflicting vote for prepare/commit
// broadcasts, nil for everything else.
func (d *DoubleVoter) twin(env *consensus.Envelope) *consensus.Envelope {
	switch env.MsgKind {
	case consensus.KindPrepare:
		var p pbft.Prepare
		if consensus.Open(env, consensus.KindPrepare, &p) != nil {
			return nil
		}
		p.Digest = flipDigest(p.Digest)
		return consensus.Seal(d.Key, &p)
	case consensus.KindCommit:
		var c pbft.Commit
		if consensus.Open(env, consensus.KindCommit, &c) != nil {
			return nil
		}
		c.Digest = flipDigest(c.Digest)
		// Re-derive the certificate signature so the twin is
		// indistinguishable from a genuine vote for the other digest.
		c.CertSig = d.Key.Sign(types.VoteDigest(c.Digest, c.Era, c.View))
		return consensus.Seal(d.Key, &c)
	default:
		return nil
	}
}

func flipDigest(h gcrypto.Hash) gcrypto.Hash {
	h[len(h)-1] ^= 0xff
	return h
}

// SybilPair is two chain identities operated from one physical spot: the
// Sybil pattern of Section IV-A1 ("different nodes cannot report the
// same geographic information at the same time"). Each Reports call
// yields one location report per identity, both claiming the shared
// cell at the same instant — committed together they are exactly the
// simultaneous same-cell occupancy SybilSameCell evidence proves.
type SybilPair struct {
	A, B *gcrypto.KeyPair
	// Cell is the single physical location both identities claim.
	Cell geo.Point

	nonceA, nonceB uint64
}

// Reports returns the pair's next simultaneous location reports, signed
// and ready to submit.
func (s *SybilPair) Reports(ts time.Time) (*types.Transaction, *types.Transaction) {
	s.nonceA++
	s.nonceB++
	mk := func(kp *gcrypto.KeyPair, nonce uint64) *types.Transaction {
		tx := &types.Transaction{
			Type:  types.TxLocationReport,
			Nonce: nonce,
			Geo:   types.GeoInfo{Location: s.Cell, Timestamp: ts},
		}
		tx.Sign(kp)
		return tx
	}
	return mk(s.A, s.nonceA), mk(s.B, s.nonceB)
}

// Addresses returns the pair's two chain identities.
func (s *SybilPair) Addresses() (gcrypto.Address, gcrypto.Address) {
	return s.A.Address(), s.B.Address()
}

// LocationSpoofer is a device that reports a location it does not
// occupy — it claims Claimed while physically sitting elsewhere. Nearby
// honest endorsers who can see the claimed cell is empty file disputing
// witness statements; a MinWitnesses quorum of those becomes
// LocationSpoof evidence against it.
type LocationSpoofer struct {
	Key *gcrypto.KeyPair
	// Claimed is the fabricated position.
	Claimed geo.Point

	nonce uint64
}

// Report returns the spoofer's next fabricated location report.
func (l *LocationSpoofer) Report(ts time.Time) *types.Transaction {
	l.nonce++
	tx := &types.Transaction{
		Type:  types.TxLocationReport,
		Nonce: l.nonce,
		Geo:   types.GeoInfo{Location: l.Claimed, Timestamp: ts},
	}
	tx.Sign(l.Key)
	return tx
}

// ClaimedCell returns the geohash cell of the fabricated position.
func (l *LocationSpoofer) ClaimedCell() string {
	return geo.MustEncode(l.Claimed, geo.CSCPrecision)
}
