package simnet

import (
	"testing"
	"time"

	"gpbft/internal/consensus"
)

// BenchmarkEventThroughput measures raw simulator event processing: a
// ring of nodes forwarding a token.
func BenchmarkEventThroughput(b *testing.B) {
	const ring = 8
	n := New(Config{ProcTime: time.Microsecond, SendTime: time.Microsecond})
	nodeIDs := ids(ring)
	token := env(0)
	for i := 0; i < ring; i++ {
		me, next := nodeIDs[i], nodeIDs[(i+1)%ring]
		rec := &recorder{}
		rec.onMsg = func(now consensus.Time, e *consensus.Envelope) {
			n.Send(me, next, e)
		}
		n.AddNode(me, rec)
	}
	n.Schedule(0, func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], token) })
	b.ResetTimer()
	// Each Run step drains as many events as fit one simulated second.
	for i := 0; i < b.N; i++ {
		n.Run(n.Now() + time.Second)
	}
}
