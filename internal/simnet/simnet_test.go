package simnet

import (
	"testing"
	"time"

	"gpbft/internal/codec"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
)

// echoPayload is a trivial payload for traffic tests.
type echoPayload struct{ N uint64 }

func (p *echoPayload) Kind() consensus.MsgKind          { return consensus.KindRequest }
func (p *echoPayload) MarshalCanonical(w *codec.Writer) { w.Uint64(p.N) }
func (p *echoPayload) UnmarshalCanonical(r *codec.Reader) error {
	p.N = r.Uint64()
	return r.Err()
}

// recorder collects events a node saw.
type recorder struct {
	msgs   []consensus.Time
	timers []consensus.TimerID
	onMsg  func(now consensus.Time, env *consensus.Envelope)
}

func (r *recorder) HandleMessage(now consensus.Time, env *consensus.Envelope) {
	r.msgs = append(r.msgs, now)
	if r.onMsg != nil {
		r.onMsg(now, env)
	}
}

func (r *recorder) HandleTimer(now consensus.Time, id consensus.TimerID) {
	r.timers = append(r.timers, id)
}

func ids(n int) []NodeID {
	out := make([]NodeID, n)
	for i := range out {
		out[i] = gcrypto.DeterministicKeyPair(i).Address()
	}
	return out
}

func env(i int) *consensus.Envelope {
	return consensus.Seal(gcrypto.DeterministicKeyPair(i), &echoPayload{N: uint64(i)})
}

func TestSendDeliversWithLatencyAndProcTime(t *testing.T) {
	n := New(Config{
		Latency:  UniformLatency{Base: 10 * time.Millisecond},
		ProcTime: 2 * time.Millisecond,
		SendTime: time.Millisecond,
	})
	nodeIDs := ids(2)
	rec := &recorder{}
	n.AddNode(nodeIDs[0], nil)
	n.AddNode(nodeIDs[1], rec)

	n.Schedule(0, func(now consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
	n.RunUntilIdle(time.Second)

	if len(rec.msgs) != 1 {
		t.Fatalf("delivered %d messages", len(rec.msgs))
	}
	// send(1ms) + latency(10ms) + proc(2ms) = 13ms.
	if rec.msgs[0] != 13*time.Millisecond {
		t.Fatalf("delivered at %v, want 13ms", rec.msgs[0])
	}
}

func TestCPUQueueingSerializesDeliveries(t *testing.T) {
	// Two messages arriving together: second is handled ProcTime after
	// the first — the paper's s msgs/sec model.
	n := New(Config{ProcTime: 5 * time.Millisecond})
	nodeIDs := ids(3)
	rec := &recorder{}
	n.AddNode(nodeIDs[0], nil)
	n.AddNode(nodeIDs[1], nil)
	n.AddNode(nodeIDs[2], rec)

	n.Schedule(0, func(consensus.Time) {
		n.Send(nodeIDs[0], nodeIDs[2], env(0))
		n.Send(nodeIDs[1], nodeIDs[2], env(1))
	})
	n.RunUntilIdle(time.Second)
	if len(rec.msgs) != 2 {
		t.Fatalf("delivered %d", len(rec.msgs))
	}
	if rec.msgs[1]-rec.msgs[0] != 5*time.Millisecond {
		t.Fatalf("gap %v, want ProcTime 5ms", rec.msgs[1]-rec.msgs[0])
	}
}

func TestSenderCPUSerializesSends(t *testing.T) {
	n := New(Config{SendTime: 3 * time.Millisecond, ProcTime: time.Millisecond})
	nodeIDs := ids(3)
	recB := &recorder{}
	recC := &recorder{}
	n.AddNode(nodeIDs[0], nil)
	n.AddNode(nodeIDs[1], recB)
	n.AddNode(nodeIDs[2], recC)
	n.Schedule(0, func(consensus.Time) {
		n.Send(nodeIDs[0], nodeIDs[1], env(0))
		n.Send(nodeIDs[0], nodeIDs[2], env(0))
	})
	n.RunUntilIdle(time.Second)
	// First send done at 3ms (+1ms proc = 4ms), second at 6ms (+1 = 7ms).
	if recB.msgs[0] != 4*time.Millisecond || recC.msgs[0] != 7*time.Millisecond {
		t.Fatalf("deliveries at %v and %v", recB.msgs[0], recC.msgs[0])
	}
}

func TestTimersFireAndCancel(t *testing.T) {
	n := New(Config{})
	nodeIDs := ids(1)
	rec := &recorder{}
	n.AddNode(nodeIDs[0], rec)
	n.SetTimer(nodeIDs[0], 1, 10*time.Millisecond)
	n.SetTimer(nodeIDs[0], 2, 20*time.Millisecond)
	n.CancelTimer(nodeIDs[0], 2)
	n.RunUntilIdle(time.Second)
	if len(rec.timers) != 1 || rec.timers[0] != 1 {
		t.Fatalf("timers fired: %v", rec.timers)
	}
}

func TestCrashAndRecover(t *testing.T) {
	n := New(Config{})
	nodeIDs := ids(2)
	rec := &recorder{}
	n.AddNode(nodeIDs[0], nil)
	n.AddNode(nodeIDs[1], rec)
	n.Crash(nodeIDs[1])
	n.Schedule(0, func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
	n.RunUntilIdle(time.Second)
	if len(rec.msgs) != 0 {
		t.Fatal("crashed node must not receive")
	}
	n.Recover(nodeIDs[1])
	n.Schedule(n.Now(), func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
	n.RunUntilIdle(time.Second)
	if len(rec.msgs) != 1 {
		t.Fatal("recovered node must receive")
	}
	// Crashed sender emits nothing.
	n.Crash(nodeIDs[0])
	before := n.Traffic().Messages()
	n.Schedule(n.Now(), func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
	n.RunUntilIdle(time.Second)
	if n.Traffic().Messages() != before {
		t.Fatal("crashed sender must not transmit")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(Config{})
	nodeIDs := ids(2)
	rec := &recorder{}
	n.AddNode(nodeIDs[0], nil)
	n.AddNode(nodeIDs[1], rec)
	n.Partition(nodeIDs[0], nodeIDs[1])
	n.Schedule(0, func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
	n.RunUntilIdle(time.Second)
	if len(rec.msgs) != 0 {
		t.Fatal("partitioned message must not arrive")
	}
	n.Heal(nodeIDs[0], nodeIDs[1])
	n.Schedule(n.Now(), func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
	n.RunUntilIdle(time.Second)
	if len(rec.msgs) != 1 {
		t.Fatal("healed link must deliver")
	}
}

func TestDropRate(t *testing.T) {
	n := New(Config{DropRate: 1.0})
	nodeIDs := ids(2)
	rec := &recorder{}
	n.AddNode(nodeIDs[0], nil)
	n.AddNode(nodeIDs[1], rec)
	n.Schedule(0, func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
	n.RunUntilIdle(time.Second)
	if len(rec.msgs) != 0 {
		t.Fatal("DropRate=1 must drop everything")
	}
	// Traffic still metered: the bytes hit the wire.
	if n.Traffic().Messages() != 1 {
		t.Fatal("dropped messages still count as traffic")
	}
}

func TestTrafficAccounting(t *testing.T) {
	n := New(Config{})
	nodeIDs := ids(2)
	n.AddNode(nodeIDs[0], nil)
	n.AddNode(nodeIDs[1], &recorder{})
	e := env(0)
	n.Schedule(0, func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], e) })
	n.RunUntilIdle(time.Second)

	tr := n.Traffic()
	wantBytes := int64(e.WireSize() + DefaultWireOverhead)
	if tr.Bytes() != wantBytes {
		t.Fatalf("bytes %d, want %d", tr.Bytes(), wantBytes)
	}
	if tr.SentBy(nodeIDs[0]) != wantBytes || tr.ReceivedBy(nodeIDs[1]) != wantBytes {
		t.Fatal("per-node accounting wrong")
	}
	byKind := tr.ByKind()
	if len(byKind) != 1 || byKind[0].Kind != consensus.KindRequest || byKind[0].Count != 1 {
		t.Fatalf("by-kind: %+v", byKind)
	}
	if tr.KB() <= 0 {
		t.Fatal("KB must be positive")
	}
	tr.Reset()
	if tr.Bytes() != 0 || tr.Messages() != 0 {
		t.Fatal("Reset must zero the meter")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (consensus.Time, int64) {
		n := New(Config{
			Seed:     7,
			Latency:  UniformLatency{Base: time.Millisecond, Jitter: 5 * time.Millisecond},
			ProcTime: time.Millisecond,
		})
		nodeIDs := ids(4)
		recs := make([]*recorder, 4)
		for i, id := range nodeIDs {
			recs[i] = &recorder{}
			n.AddNode(id, recs[i])
		}
		// Ping-pong storm.
		for i := 0; i < 4; i++ {
			me := nodeIDs[i]
			peer := nodeIDs[(i+1)%4]
			count := 0
			recs[i].onMsg = func(now consensus.Time, _ *consensus.Envelope) {
				if count < 10 {
					count++
					n.Send(me, peer, env(count))
				}
			}
		}
		n.Schedule(0, func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
		n.RunUntilIdle(10 * time.Second)
		return n.Now(), n.Traffic().Bytes()
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", t1, b1, t2, b2)
	}
}

func TestRunHorizon(t *testing.T) {
	n := New(Config{})
	nodeIDs := ids(1)
	rec := &recorder{}
	n.AddNode(nodeIDs[0], rec)
	n.SetTimer(nodeIDs[0], 1, 50*time.Millisecond)
	n.SetTimer(nodeIDs[0], 2, 150*time.Millisecond)
	n.Run(100 * time.Millisecond)
	if len(rec.timers) != 1 {
		t.Fatalf("events past horizon must wait, fired %v", rec.timers)
	}
	if n.Now() != 100*time.Millisecond {
		t.Fatalf("idle clock must advance to horizon, at %v", n.Now())
	}
	n.Run(200 * time.Millisecond)
	if len(rec.timers) != 2 {
		t.Fatal("second timer must fire in the next window")
	}
}

func TestScheduleInPast(t *testing.T) {
	n := New(Config{})
	fired := consensus.Time(-1)
	n.Schedule(50*time.Millisecond, func(consensus.Time) {
		// Scheduling in the past clamps to the current time.
		n.Schedule(10*time.Millisecond, func(now consensus.Time) { fired = now })
	})
	n.RunUntilIdle(time.Second)
	if fired != 50*time.Millisecond {
		t.Fatalf("past schedule must clamp to now, fired at %v", fired)
	}
}
