package simnet

import (
	"testing"
	"time"
)

func TestBandwidthAddsTransmissionDelay(t *testing.T) {
	e := env(0)
	size := e.WireSize() + DefaultWireOverhead
	// 1 KB/s link: a ~300-byte message takes ~0.3 s of serialization.
	n := New(Config{Latency: UniformLatency{BytesPerSec: 1024}})
	nodeIDs := ids(2)
	rec := &recorder{}
	n.AddNode(nodeIDs[0], nil)
	n.AddNode(nodeIDs[1], rec)
	n.Schedule(0, func(consensus0 time.Duration) { n.Send(nodeIDs[0], nodeIDs[1], e) })
	n.RunUntilIdle(time.Minute)
	if len(rec.msgs) != 1 {
		t.Fatal("not delivered")
	}
	want := time.Duration(float64(size) / 1024 * float64(time.Second))
	got := rec.msgs[0]
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("delivery at %v, want ~%v for %d bytes at 1KB/s", got, want, size)
	}
}

func TestZeroLatencyModel(t *testing.T) {
	n := New(Config{}) // nil latency model
	nodeIDs := ids(2)
	rec := &recorder{}
	n.AddNode(nodeIDs[0], nil)
	n.AddNode(nodeIDs[1], rec)
	n.Schedule(0, func(time.Duration) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
	n.RunUntilIdle(time.Second)
	if len(rec.msgs) != 1 || rec.msgs[0] != 0 {
		t.Fatalf("zero-cost config must deliver instantly, got %v", rec.msgs)
	}
}

func TestSendToUnknownNodeIsDroppedButMetered(t *testing.T) {
	n := New(Config{})
	nodeIDs := ids(2)
	n.AddNode(nodeIDs[0], nil)
	// nodeIDs[1] never registered.
	n.Schedule(0, func(time.Duration) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
	n.RunUntilIdle(time.Second)
	if n.Traffic().Messages() != 1 {
		t.Fatal("transmission to unknown receiver still hits the wire")
	}
}
