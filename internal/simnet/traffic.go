package simnet

import (
	"sort"

	"gpbft/internal/consensus"
)

// KindStat aggregates traffic for one message kind.
type KindStat struct {
	Kind  consensus.MsgKind
	Count int64
	Bytes int64
}

// Traffic meters every transmission attempt (the paper's communication
// cost is wire traffic, so bytes are counted even when the simulator
// later drops the message).
type Traffic struct {
	totalMsgs  int64
	totalBytes int64
	perKind    map[consensus.MsgKind]*KindStat
	sentBy     map[NodeID]int64 // bytes
	recvBy     map[NodeID]int64 // bytes (addressed-to, pre-drop)
}

// NewTraffic returns an empty meter.
func NewTraffic() *Traffic {
	return &Traffic{
		perKind: make(map[consensus.MsgKind]*KindStat),
		sentBy:  make(map[NodeID]int64),
		recvBy:  make(map[NodeID]int64),
	}
}

// Record notes one transmission.
func (t *Traffic) Record(from, to NodeID, kind consensus.MsgKind, size int) {
	t.totalMsgs++
	t.totalBytes += int64(size)
	ks := t.perKind[kind]
	if ks == nil {
		ks = &KindStat{Kind: kind}
		t.perKind[kind] = ks
	}
	ks.Count++
	ks.Bytes += int64(size)
	t.sentBy[from] += int64(size)
	t.recvBy[to] += int64(size)
}

// Messages returns the total transmission count.
func (t *Traffic) Messages() int64 { return t.totalMsgs }

// Bytes returns the total bytes transmitted.
func (t *Traffic) Bytes() int64 { return t.totalBytes }

// KB returns total kilobytes (the unit of the paper's Figures 5-6).
func (t *Traffic) KB() float64 { return float64(t.totalBytes) / 1024 }

// ByKind returns per-kind stats sorted by kind.
func (t *Traffic) ByKind() []KindStat {
	out := make([]KindStat, 0, len(t.perKind))
	for _, ks := range t.perKind {
		out = append(out, *ks)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// SentBy returns bytes sent by a node.
func (t *Traffic) SentBy(id NodeID) int64 { return t.sentBy[id] }

// ReceivedBy returns bytes addressed to a node.
func (t *Traffic) ReceivedBy(id NodeID) int64 { return t.recvBy[id] }

// Reset zeroes the meter (used between measurement phases so warm-up
// traffic is excluded).
func (t *Traffic) Reset() {
	t.totalMsgs = 0
	t.totalBytes = 0
	t.perKind = make(map[consensus.MsgKind]*KindStat)
	t.sentBy = make(map[NodeID]int64)
	t.recvBy = make(map[NodeID]int64)
}
