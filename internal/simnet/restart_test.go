package simnet

import (
	"testing"
	"time"

	"gpbft/internal/consensus"
)

func TestCrashDiscardsPendingTimers(t *testing.T) {
	n := New(Config{})
	nodeIDs := ids(1)
	rec := &recorder{}
	n.AddNode(nodeIDs[0], rec)

	// Arm a timer, crash before it fires, recover after its deadline:
	// the timer lived in the dead process's memory and must never fire,
	// even though the node is back up when the deadline passes.
	n.SetTimer(nodeIDs[0], 1, 50*time.Millisecond)
	n.Schedule(10*time.Millisecond, func(consensus.Time) { n.Crash(nodeIDs[0]) })
	n.Schedule(20*time.Millisecond, func(consensus.Time) { n.Recover(nodeIDs[0]) })
	n.RunUntilIdle(time.Second)

	if len(rec.timers) != 0 {
		t.Fatalf("timer from a crashed incarnation fired: %v", rec.timers)
	}
	// A timer armed AFTER recovery fires normally.
	n.SetTimer(nodeIDs[0], 2, 10*time.Millisecond)
	n.RunUntilIdle(2 * time.Second)
	if len(rec.timers) != 1 || rec.timers[0] != 2 {
		t.Fatalf("post-recovery timer: %v", rec.timers)
	}
}

func TestRestartReplacesHandler(t *testing.T) {
	n := New(Config{})
	nodeIDs := ids(2)
	old := &recorder{}
	n.AddNode(nodeIDs[0], nil)
	n.AddNode(nodeIDs[1], old)

	n.Schedule(0, func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
	n.Schedule(5*time.Millisecond, func(consensus.Time) { n.Crash(nodeIDs[1]) })

	fresh := &recorder{}
	n.Schedule(10*time.Millisecond, func(consensus.Time) { n.Restart(nodeIDs[1], fresh) })
	n.Schedule(20*time.Millisecond, func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], env(1)) })
	n.RunUntilIdle(time.Second)

	if len(old.msgs) != 1 {
		t.Fatalf("pre-crash incarnation saw %d messages, want 1", len(old.msgs))
	}
	if len(fresh.msgs) != 1 {
		t.Fatalf("restarted incarnation saw %d messages, want 1", len(fresh.msgs))
	}
}

func TestTapObservesSendsIncludingLostOnes(t *testing.T) {
	var seen []consensus.MsgKind
	cfg := Config{
		Tap: func(_ consensus.Time, _, _ NodeID, e *consensus.Envelope) {
			seen = append(seen, e.MsgKind)
		},
	}
	n := New(cfg)
	nodeIDs := ids(2)
	n.AddNode(nodeIDs[0], nil)
	n.AddNode(nodeIDs[1], &recorder{})

	// A normal send is tapped.
	n.Schedule(0, func(consensus.Time) { n.Send(nodeIDs[0], nodeIDs[1], env(0)) })
	// A partitioned send is tapped too: the sender committed to it.
	n.Schedule(time.Millisecond, func(consensus.Time) {
		n.Partition(nodeIDs[0], nodeIDs[1])
		n.Send(nodeIDs[0], nodeIDs[1], env(1))
	})
	// A send from a CRASHED node is not: the process was not running.
	n.Schedule(2*time.Millisecond, func(consensus.Time) {
		n.Crash(nodeIDs[0])
		n.Send(nodeIDs[0], nodeIDs[1], env(2))
	})
	n.RunUntilIdle(time.Second)

	if len(seen) != 2 {
		t.Fatalf("tap saw %d sends, want 2 (live sends only)", len(seen))
	}
}
