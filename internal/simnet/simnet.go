// Package simnet is a deterministic discrete-event network simulator.
// It models exactly the two resources the paper's analysis (Section
// IV-B, IV-C) says dominate PBFT-family performance:
//
//   - per-node processing capacity: "a node can receive and process s
//     messages per second" — each received message occupies the node's
//     CPU for ProcTime (= 1/s), and messages queue behind a busy CPU;
//   - network traffic: every transmitted envelope is metered
//     (payload + WireOverhead bytes) and delayed by a latency model.
//
// Under a fixed seed every run is bit-for-bit reproducible, which is
// what lets the benchmark harness regenerate the paper's figures
// deterministically.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
)

// NodeID identifies a simulated node.
type NodeID = gcrypto.Address

// Handler is the node-side sink for simulator events.
type Handler interface {
	HandleMessage(now consensus.Time, env *consensus.Envelope)
	HandleTimer(now consensus.Time, id consensus.TimerID)
}

// LatencyModel computes the propagation delay of one message.
type LatencyModel interface {
	Delay(from, to NodeID, size int, rng *rand.Rand) time.Duration
}

// UniformLatency is Base ± Jitter plus size/BytesPerSec transmission
// time — a LAN-style model matching the paper's testbed.
type UniformLatency struct {
	Base        time.Duration
	Jitter      time.Duration // uniform in [0, Jitter)
	BytesPerSec float64       // 0 = infinite bandwidth
}

// Delay implements LatencyModel.
func (u UniformLatency) Delay(_, _ NodeID, size int, rng *rand.Rand) time.Duration {
	d := u.Base
	if u.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(u.Jitter)))
	}
	if u.BytesPerSec > 0 {
		d += time.Duration(float64(size) / u.BytesPerSec * float64(time.Second))
	}
	return d
}

// Config tunes the simulation.
type Config struct {
	Seed int64
	// Latency is the propagation model; nil means zero latency.
	Latency LatencyModel
	// ProcTime is the CPU cost of handling one received message (the
	// paper's 1/s).
	ProcTime time.Duration
	// SendTime is the CPU cost of emitting one message.
	SendTime time.Duration
	// DropRate drops each message independently with this probability.
	DropRate float64
	// DuplicateRate delivers each surviving message a second time with
	// this probability, with an independent latency draw — so the copy
	// usually arrives reordered relative to the original. Models
	// retransmission-happy links for gossip/dupemap property tests.
	DuplicateRate float64
	// WireOverhead is added to each message's metered size (frame and
	// transport headers; 66 approximates Ethernet+IPv4+TCP).
	WireOverhead int
	// Tap, when set, observes every message a live sender emits —
	// including ones later lost to drops or partitions, because the
	// sender already committed to them. Chaos harnesses use it to
	// detect double-signed conflicting votes in the trace.
	Tap func(now consensus.Time, from, to NodeID, env *consensus.Envelope)
}

// DefaultWireOverhead approximates Ethernet + IPv4 + TCP headers.
const DefaultWireOverhead = 66

// event kinds
type eventKind uint8

const (
	evArrival eventKind = iota + 1 // message reached the NIC
	evHandle                       // CPU begins/finishes handling
	evTimer
	evFunc
)

type event struct {
	at   consensus.Time
	seq  uint64 // FIFO tiebreak for equal times
	kind eventKind

	node     NodeID
	env      *consensus.Envelope
	timerID  consensus.TimerID
	canceled *bool
	fn       func(now consensus.Time)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type node struct {
	id        NodeID
	handler   Handler
	busyUntil consensus.Time
	timers    map[consensus.TimerID]*bool // timer -> canceled flag
	crashed   bool
}

// Network is the simulator.
type Network struct {
	cfg     Config
	rng     *rand.Rand
	now     consensus.Time
	seq     uint64
	events  eventHeap
	nodes   map[NodeID]*node
	blocked map[[2]NodeID]bool
	traffic *Traffic
}

// New creates a network.
func New(cfg Config) *Network {
	if cfg.WireOverhead == 0 {
		cfg.WireOverhead = DefaultWireOverhead
	}
	n := &Network{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nodes:   make(map[NodeID]*node),
		blocked: make(map[[2]NodeID]bool),
		traffic: NewTraffic(),
	}
	heap.Init(&n.events)
	return n
}

// AddNode registers a node; handler may be nil for pure clients that
// ignore incoming traffic.
func (n *Network) AddNode(id NodeID, h Handler) {
	n.nodes[id] = &node{id: id, handler: h, timers: make(map[consensus.TimerID]*bool)}
}

// HasNode reports whether id is registered.
func (n *Network) HasNode(id NodeID) bool {
	_, ok := n.nodes[id]
	return ok
}

// Now returns the current virtual time.
func (n *Network) Now() consensus.Time { return n.now }

// Traffic returns the traffic meter.
func (n *Network) Traffic() *Traffic { return n.traffic }

// Rand returns the simulation RNG (for workload generators that must
// share the deterministic stream).
func (n *Network) Rand() *rand.Rand { return n.rng }

func (n *Network) push(e *event) {
	n.seq++
	e.seq = n.seq
	heap.Push(&n.events, e)
}

// Send transmits env from one node to another at the current virtual
// time, charging sender CPU, metering traffic, and applying latency,
// drops, partitions and crashes.
func (n *Network) Send(from, to NodeID, env *consensus.Envelope) {
	sender := n.nodes[from]
	if sender == nil || sender.crashed {
		return
	}
	size := env.WireSize() + n.cfg.WireOverhead
	n.traffic.Record(from, to, env.MsgKind, size)
	if n.cfg.Tap != nil {
		n.cfg.Tap(n.now, from, to, env)
	}

	start := n.now
	if sender.busyUntil > start {
		start = sender.busyUntil
	}
	sendDone := start + n.cfg.SendTime
	sender.busyUntil = sendDone

	if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
		return
	}
	if n.blocked[[2]NodeID{from, to}] || n.blocked[[2]NodeID{to, from}] {
		return
	}
	receiver := n.nodes[to]
	if receiver == nil {
		return
	}
	var lat time.Duration
	if n.cfg.Latency != nil {
		lat = n.cfg.Latency.Delay(from, to, size, n.rng)
	}
	n.push(&event{at: sendDone + lat, kind: evArrival, node: to, env: env})
	// Both guards consume rng only when the fault is armed, so existing
	// seeds replay bit-for-bit with the fault off.
	if n.cfg.DuplicateRate > 0 && n.rng.Float64() < n.cfg.DuplicateRate {
		dup := time.Duration(0)
		if n.cfg.Latency != nil {
			dup = n.cfg.Latency.Delay(from, to, size, n.rng)
		}
		n.push(&event{at: sendDone + dup, kind: evArrival, node: to, env: env})
	}
}

// SetTimer schedules HandleTimer(id) on a node after delay.
func (n *Network) SetTimer(nodeID NodeID, id consensus.TimerID, delay consensus.Time) {
	nd := n.nodes[nodeID]
	if nd == nil {
		return
	}
	canceled := new(bool)
	nd.timers[id] = canceled
	n.push(&event{at: n.now + delay, kind: evTimer, node: nodeID, timerID: id, canceled: canceled})
}

// CancelTimer cancels a pending timer.
func (n *Network) CancelTimer(nodeID NodeID, id consensus.TimerID) {
	nd := n.nodes[nodeID]
	if nd == nil {
		return
	}
	if c, ok := nd.timers[id]; ok {
		*c = true
		delete(nd.timers, id)
	}
}

// Schedule runs fn at the given virtual time (workload injection).
func (n *Network) Schedule(at consensus.Time, fn func(now consensus.Time)) {
	if at < n.now {
		at = n.now
	}
	n.push(&event{at: at, kind: evFunc, fn: fn})
}

// Crash makes a node silently drop everything (fail-stop). Pending
// timers die with the process: they live in the process's memory, so
// no incarnation — recovered or restarted — ever sees them fire.
func (n *Network) Crash(id NodeID) {
	nd := n.nodes[id]
	if nd == nil {
		return
	}
	nd.crashed = true
	for tid, canceled := range nd.timers {
		*canceled = true
		delete(nd.timers, tid)
	}
}

// Recover brings a crashed node back WITH its memory intact (the
// handler is retained). This models a transient network outage or a
// paused process, NOT a real crash-restart — a killed process forgets
// its RAM. Use Restart for the amnesia case.
func (n *Network) Recover(id NodeID) {
	if nd := n.nodes[id]; nd != nil {
		nd.crashed = false
	}
}

// Restart brings a crashed node back as a fresh incarnation: the old
// handler (and with it every in-memory structure — vote tables,
// mempool, timers) is discarded and replaced by h, which the caller
// must have rebuilt from durable state only. This is the dangerous
// amnesia-restart case the consensus WAL exists for.
func (n *Network) Restart(id NodeID, h Handler) {
	nd := n.nodes[id]
	if nd == nil {
		return
	}
	for tid, canceled := range nd.timers {
		*canceled = true
		delete(nd.timers, tid)
	}
	nd.handler = h
	nd.crashed = false
	nd.busyUntil = n.now
}

// SetDropRate changes the background message-loss probability at the
// current virtual time. Chaos schedules use it to run the fault phase
// under lossy conditions and the recovery phase on a clean network.
func (n *Network) SetDropRate(p float64) { n.cfg.DropRate = p }

// SetDuplicateRate changes the message-duplication probability at the
// current virtual time.
func (n *Network) SetDuplicateRate(p float64) { n.cfg.DuplicateRate = p }

// Partition blocks traffic between two nodes (both directions).
func (n *Network) Partition(a, b NodeID) { n.blocked[[2]NodeID{a, b}] = true }

// Heal removes a partition.
func (n *Network) Heal(a, b NodeID) {
	delete(n.blocked, [2]NodeID{a, b})
	delete(n.blocked, [2]NodeID{b, a})
}

// Run processes events until the queue empties or virtual time would
// exceed `until`. It returns the number of events processed.
func (n *Network) Run(until consensus.Time) int {
	processed := 0
	for n.events.Len() > 0 {
		e := n.events[0]
		if e.at > until {
			break
		}
		heap.Pop(&n.events)
		if e.at > n.now {
			n.now = e.at
		}
		n.dispatch(e)
		processed++
	}
	if n.now < until {
		// No events remain inside the window; idle to the horizon.
		n.now = until
	}
	return processed
}

// RunUntilIdle processes events until none remain or the hard cap on
// virtual time is hit; it returns the number of events processed.
func (n *Network) RunUntilIdle(cap consensus.Time) int {
	processed := 0
	for n.events.Len() > 0 {
		e := n.events[0]
		if e.at > cap {
			break
		}
		heap.Pop(&n.events)
		if e.at > n.now {
			n.now = e.at
		}
		n.dispatch(e)
		processed++
	}
	return processed
}

func (n *Network) dispatch(e *event) {
	switch e.kind {
	case evArrival:
		nd := n.nodes[e.node]
		if nd == nil || nd.crashed || nd.handler == nil {
			return
		}
		// The message queues behind the CPU; the paper's s msgs/sec.
		start := n.now
		if nd.busyUntil > start {
			start = nd.busyUntil
		}
		done := start + n.cfg.ProcTime
		nd.busyUntil = done
		n.push(&event{at: done, kind: evHandle, node: e.node, env: e.env})
	case evHandle:
		nd := n.nodes[e.node]
		if nd == nil || nd.crashed || nd.handler == nil {
			return
		}
		nd.handler.HandleMessage(n.now, e.env)
	case evTimer:
		if e.canceled != nil && *e.canceled {
			return
		}
		nd := n.nodes[e.node]
		if nd == nil || nd.crashed || nd.handler == nil {
			return
		}
		delete(nd.timers, e.timerID)
		nd.handler.HandleTimer(n.now, e.timerID)
	case evFunc:
		e.fn(n.now)
	}
}

// Executor returns a runtime executor bound to one node.
func (n *Network) Executor(id NodeID) *NodeExecutor {
	return &NodeExecutor{net: n, id: id}
}

// NodeExecutor adapts the network to the runtime.Executor interface
// for a specific node.
type NodeExecutor struct {
	net *Network
	id  NodeID
}

// Send implements runtime.Executor.
func (x *NodeExecutor) Send(to NodeID, env *consensus.Envelope) {
	x.net.Send(x.id, to, env)
}

// SetTimer implements runtime.Executor.
func (x *NodeExecutor) SetTimer(id consensus.TimerID, delay consensus.Time) {
	x.net.SetTimer(x.id, id, delay)
}

// CancelTimer implements runtime.Executor.
func (x *NodeExecutor) CancelTimer(id consensus.TimerID) {
	x.net.CancelTimer(x.id, id)
}

// String summarises the network state for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("simnet{t=%v nodes=%d events=%d}", n.now, len(n.nodes), n.events.Len())
}
