package ledger

import (
	"errors"
	"fmt"
	"sync"

	"gpbft/internal/evidence"
	"gpbft/internal/gcrypto"
	"gpbft/internal/shard"
	"gpbft/internal/types"
)

// Errors returned by chain operations.
var (
	ErrBadGenesis     = errors.New("ledger: invalid genesis")
	ErrHeightGap      = errors.New("ledger: block height is not head+1")
	ErrPrevHash       = errors.New("ledger: block prev hash does not match head")
	ErrForkDetected   = errors.New("ledger: conflicting block at committed height")
	ErrDuplicateBlock = errors.New("ledger: block already committed")
	ErrTxInvalid      = errors.New("ledger: block contains invalid transaction")
	ErrConfigSender   = errors.New("ledger: config transaction from non-endorser")
	ErrApplySender    = errors.New("ledger: transfer apply from non-endorser")
	ErrUnknownHeight  = errors.New("ledger: no block at height")
	ErrEraRegressed   = errors.New("ledger: block era lower than head era")
)

// ForkEvidence records an attempted fork: a second, different block
// presented for an already-committed height. The paper expels endorsers
// that cause forks; this is the proof object.
type ForkEvidence struct {
	Height    uint64
	Committed gcrypto.Hash
	Conflict  gcrypto.Hash
	Proposer  gcrypto.Address
}

// Chain is the node-local blockchain: genesis, committed blocks, the
// election table derived from transaction geo info, and the reward
// ledger. All methods are safe for concurrent use.
type Chain struct {
	mu      sync.RWMutex
	genesis *Genesis
	blocks  []*types.Block
	// base is the height of blocks[0]. It is 0 (genesis) for a chain
	// built by replay, and the checkpoint height for a chain restored
	// from (or compacted below) a snapshot.
	base   uint64
	byHash map[gcrypto.Hash]*types.Block
	// endorsers is the current committee, derived from genesis plus
	// committed config transactions.
	endorsers map[gcrypto.Address]types.EndorserInfo
	// era is the current G-PBFT era, advanced by committed config
	// transactions.
	era uint64
	// accounts records the public key of every address that has sent a
	// committed transaction, so election can mint EndorserInfo for
	// candidates.
	accounts  map[gcrypto.Address][]byte
	forks     []ForkEvidence
	forkCount uint64

	table     *ElectionTable
	rewards   *RewardLedger
	witnesses *WitnessIndex
	txIndex   map[gcrypto.Hash]TxLocation

	// Cross-region state (see receipts.go): receipts minted by
	// committed transfer locks (commit order), the applied-receipt
	// index keyed by lock tx ID (destination-side exactly-once), the
	// count of harmless duplicate applies, the count of committed
	// locks refused for insufficient sender balance, and — on anchor
	// chains — the index derived from committed region checkpoints.
	// shardPrefix, when set, is the geohash prefix of the region this
	// chain serves; it is deployment configuration (every node of a
	// region is constructed with the same prefix), not chain content,
	// and pins transfer locks to Source == prefix and transfer applies
	// to Dest == prefix.
	shardPrefix     string
	outbound        []shard.Receipt
	appliedReceipts map[gcrypto.Hash]TxLocation
	receiptDupes    uint64
	lockRejects     uint64
	anchors         *shard.AnchorIndex

	// Accountability state (see accountability.go): the dynamic
	// blacklist from committed evidence, the committed-evidence dedup
	// set, chain-detected records awaiting submission, and the geo
	// indexes Sybil/spoof detection runs on. everEndorsers grows
	// monotonically so witness credibility can never be revoked.
	banned        map[gcrypto.Address]gcrypto.Hash
	evidenceSeen  map[gcrypto.Hash]bool
	evidenceCnt   uint64
	detected      []*evidence.Record
	detectedIDs   map[gcrypto.Hash]bool
	flagged       map[gcrypto.Address]bool
	lastGeo       map[gcrypto.Address]geoEntry
	cellSeen      map[string]map[gcrypto.Address]geoEntry
	everEndorsers map[gcrypto.Address]bool

	// onEraBump, when set, observes every era advance at the exact
	// block that commits it (see SetEraBumpHook).
	onEraBump func(*ChainState)
}

// NewChain initialises a chain from genesis.
func NewChain(g *Genesis) (*Chain, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadGenesis, err)
	}
	c := &Chain{
		genesis:       g,
		byHash:        make(map[gcrypto.Hash]*types.Block),
		endorsers:     make(map[gcrypto.Address]types.EndorserInfo, len(g.Endorsers)),
		accounts:      make(map[gcrypto.Address][]byte),
		table:         NewElectionTable(),
		rewards:       NewRewardLedger(),
		witnesses:     NewWitnessIndex(),
		txIndex:       make(map[gcrypto.Hash]TxLocation),
		banned:        make(map[gcrypto.Address]gcrypto.Hash),
		evidenceSeen:  make(map[gcrypto.Hash]bool),
		detectedIDs:   make(map[gcrypto.Hash]bool),
		flagged:       make(map[gcrypto.Address]bool),
		lastGeo:       make(map[gcrypto.Address]geoEntry),
		cellSeen:      make(map[string]map[gcrypto.Address]geoEntry),
		everEndorsers: make(map[gcrypto.Address]bool, len(g.Endorsers)),

		appliedReceipts: make(map[gcrypto.Hash]TxLocation),
	}
	for _, e := range g.Endorsers {
		c.accounts[e.Address] = e.PubKey
	}
	gb := g.Block()
	c.blocks = append(c.blocks, gb)
	c.byHash[gb.Hash()] = gb
	for _, e := range g.Endorsers {
		c.endorsers[e.Address] = e
		c.everEndorsers[e.Address] = true
		if g.Policy.EndorserEndowment > 0 {
			c.rewards.Credit(e.Address, g.Policy.EndorserEndowment)
		}
	}
	return c, nil
}

// Genesis returns the founding configuration.
func (c *Chain) Genesis() *Genesis { return c.genesis }

// Policy returns the admittance policy from genesis.
func (c *Chain) Policy() AdmittancePolicy { return c.genesis.Policy }

// Table returns the election table.
func (c *Chain) Table() *ElectionTable { return c.table }

// Rewards returns the reward ledger.
func (c *Chain) Rewards() *RewardLedger { return c.rewards }

// Witnesses returns the committed witness-statement index.
func (c *Chain) Witnesses() *WitnessIndex { return c.witnesses }

// Height returns the height of the head block.
func (c *Chain) Height() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[len(c.blocks)-1].Header.Height
}

// Head returns the newest committed block.
func (c *Chain) Head() *types.Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[len(c.blocks)-1]
}

// BlockAt returns the committed block at a height.
func (c *Chain) BlockAt(h uint64) (*types.Block, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if h < c.base || h-c.base >= uint64(len(c.blocks)) {
		return nil, ErrUnknownHeight
	}
	return c.blocks[h-c.base], nil
}

// ByHash returns a committed block by its hash.
func (c *Chain) ByHash(h gcrypto.Hash) (*types.Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.byHash[h]
	return b, ok
}

// Era returns the current G-PBFT era (the highest NewEra of any
// committed config transaction; 0 at genesis).
func (c *Chain) Era() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.era
}

// AccountKey returns the recorded public key of an address, or nil.
func (c *Chain) AccountKey(addr gcrypto.Address) []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.accounts[addr]
}

// Endorsers returns the current committee (genesis plus committed
// config deltas), sorted by address for deterministic ordering.
func (c *Chain) Endorsers() []types.EndorserInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]types.EndorserInfo, 0, len(c.endorsers))
	for _, e := range c.endorsers {
		out = append(out, e)
	}
	sortEndorsers(out)
	return out
}

// IsEndorser reports whether addr is in the current committee.
func (c *Chain) IsEndorser(addr gcrypto.Address) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.endorsers[addr]
	return ok
}

// EndorserKeys returns the committee's address → public key map, for
// certificate verification.
func (c *Chain) EndorserKeys() map[gcrypto.Address]gcrypto.PublicKey {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[gcrypto.Address]gcrypto.PublicKey, len(c.endorsers))
	for a, e := range c.endorsers {
		out[a] = e.PubKey
	}
	return out
}

// Forks returns recorded fork evidence.
func (c *Chain) Forks() []ForkEvidence {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ForkEvidence, len(c.forks))
	copy(out, c.forks)
	return out
}

// ValidateBlock checks b against the current head without committing:
// height continuity, parent linkage, tx root, transaction signatures,
// region membership of every geo report, and config-from-endorser.
func (c *Chain) ValidateBlock(b *types.Block) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.validateLocked(b)
}

func (c *Chain) validateLocked(b *types.Block) error {
	head := c.blocks[len(c.blocks)-1]
	if existing, ok := c.byHash[b.Hash()]; ok && existing != nil {
		return ErrDuplicateBlock
	}
	if b.Header.Height != head.Header.Height+1 {
		if b.Header.Height <= head.Header.Height {
			if b.Header.Height < c.base {
				// Below the compaction checkpoint the committed block is
				// gone, so a conflict can no longer be adjudicated; the
				// height is committed either way, so the block is refused
				// as a duplicate and never applied.
				return ErrDuplicateBlock
			}
			committed := c.blocks[b.Header.Height-c.base]
			if committed.Hash() != b.Hash() {
				return ErrForkDetected
			}
			return ErrDuplicateBlock
		}
		return fmt.Errorf("%w: got %d, head %d", ErrHeightGap, b.Header.Height, head.Header.Height)
	}
	if b.Header.PrevHash != head.Hash() {
		return ErrPrevHash
	}
	if b.Header.Era < head.Header.Era {
		return ErrEraRegressed
	}
	return c.validateStatelessLocked(b)
}

// ValidateBlockAgainst checks b as the immediate child of parent — the
// head-independent half of validation plus parent linkage. Pipelined
// consensus uses it to judge proposals whose parent is itself still in
// flight: everything except the head comparison is identical to
// ValidateBlock.
func (c *Chain) ValidateBlockAgainst(b, parent *types.Block) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if b.Header.Height != parent.Header.Height+1 {
		return fmt.Errorf("%w: got %d, parent %d", ErrHeightGap, b.Header.Height, parent.Header.Height)
	}
	if b.Header.PrevHash != parent.Hash() {
		return ErrPrevHash
	}
	if b.Header.Era < parent.Header.Era {
		return ErrEraRegressed
	}
	return c.validateStatelessLocked(b)
}

// validateStatelessLocked is the head-independent half of block
// validation: tx root, optional certificate, transaction signatures and
// per-transaction policy checks.
func (c *Chain) validateStatelessLocked(b *types.Block) error {
	if err := b.VerifyTxRoot(); err != nil {
		return err
	}
	// Blocks arriving with a certificate (block sync, late joins) must
	// carry a quorum of the current committee's votes. In-flight
	// consensus proposals have no certificate yet and are protected by
	// the consensus protocol itself.
	if b.Cert != nil {
		keys := make(map[gcrypto.Address]gcrypto.PublicKey, len(c.endorsers))
		for a, e := range c.endorsers {
			keys[a] = e.PubKey
		}
		n := len(c.endorsers)
		f := (n - 1) / 3
		quorum := (n+f)/2 + 1 // ⌈(n+f+1)/2⌉, see consensus.QuorumFor
		if err := b.Cert.Verify(b.Hash(), keys, quorum); err != nil {
			return err
		}
	}
	// Signature checks dominate block validation cost; fan them out over
	// the verification pool (with memoization of previously accepted
	// signatures) and report the lowest failing index — exactly where
	// the serial per-tx loop would have stopped.
	if i, err := gcrypto.FirstBatchError(types.VerifyTxs(b.Txs)); err != nil {
		return fmt.Errorf("%w: tx %d: %v", ErrTxInvalid, i, err)
	}
	// seenCkpts tracks checkpoints within THIS block so two conflicting
	// roots for one (region, height) can never ride a single block —
	// the index-based Check below only sees previously committed state.
	var seenCkpts map[string]gcrypto.Hash
	for i := range b.Txs {
		tx := &b.Txs[i]
		if tx.Type == types.TxRegionCheckpoint && seenCkpts == nil {
			seenCkpts = make(map[string]gcrypto.Hash, 2)
		}
		if err := c.checkTxLocked(tx, seenCkpts); err != nil {
			return fmt.Errorf("tx %d: %w", i, err)
		}
	}
	return nil
}

// checkTxLocked applies the per-transaction policy checks shared by
// block validation and mempool admission: deployment-region membership,
// payload structure, and the sender/region restrictions of the
// coordination transaction types. seenCkpts, when non-nil, accumulates
// intra-block checkpoint roots for the in-block fork check (admission
// passes nil). Caller holds c.mu (read).
func (c *Chain) checkTxLocked(tx *types.Transaction, seenCkpts map[string]gcrypto.Hash) error {
	if !c.genesis.Policy.InRegion(tx.Geo.Location) {
		return fmt.Errorf("%w: outside deployment region", ErrTxInvalid)
	}
	switch tx.Type {
	case types.TxConfig:
		if _, ok := c.endorsers[tx.Sender]; !ok {
			return ErrConfigSender
		}
		if _, err := types.DecodeConfigChange(tx.Payload); err != nil {
			return fmt.Errorf("%w: bad config payload: %v", ErrTxInvalid, err)
		}
	case types.TxEvidence:
		rec, err := evidence.Decode(tx.Payload)
		if err != nil {
			return fmt.Errorf("%w: bad evidence payload: %v", ErrTxInvalid, err)
		}
		if err := rec.Verify(c.verifyCtxLocked()); err != nil {
			return fmt.Errorf("%w: %v", ErrTxInvalid, err)
		}
	case types.TxTransferLock:
		tr, err := shard.DecodeTransfer(tx.Payload)
		if err != nil {
			return fmt.Errorf("%w: bad transfer payload: %v", ErrTxInvalid, err)
		}
		// On a region chain, only transfers originating HERE may lock:
		// a committed foreign-source lock would mint a receipt no valid
		// checkpoint of this region can ever carry.
		if c.shardPrefix != "" && tr.Source != c.shardPrefix {
			return fmt.Errorf("%w: transfer lock for foreign source region %q (this chain serves %q)", ErrTxInvalid, tr.Source, c.shardPrefix)
		}
	case types.TxTransferApply:
		// Application is idempotent per receipt ID (duplicate applies
		// commit as counted no-ops), but the right to submit one is
		// restricted like TxConfig: applying a receipt credits value,
		// so an arbitrary identity forging receipt payloads must not
		// mint balances. A region chain additionally refuses receipts
		// not destined for it.
		if _, ok := c.endorsers[tx.Sender]; !ok {
			return ErrApplySender
		}
		rc, err := shard.DecodeReceipt(tx.Payload)
		if err != nil {
			return fmt.Errorf("%w: bad receipt payload: %v", ErrTxInvalid, err)
		}
		if c.shardPrefix != "" && rc.Dest != c.shardPrefix {
			return fmt.Errorf("%w: receipt destined for region %q (this chain serves %q)", ErrTxInvalid, rc.Dest, c.shardPrefix)
		}
	case types.TxRegionCheckpoint:
		// Like TxConfig, only a committee member may attest a region
		// head; and a checkpoint conflicting with an already-anchored
		// root for the same (region, height) is a cross-region fork
		// proof — refuse to commit it.
		if _, ok := c.endorsers[tx.Sender]; !ok {
			return ErrConfigSender
		}
		cp, err := shard.DecodeCheckpoint(tx.Payload)
		if err != nil {
			return fmt.Errorf("%w: bad checkpoint payload: %v", ErrTxInvalid, err)
		}
		if c.anchors != nil {
			if err := c.anchors.Check(cp); err != nil {
				return fmt.Errorf("%w: %v", ErrTxInvalid, err)
			}
		}
		if seenCkpts != nil {
			key := fmt.Sprintf("%s@%d", cp.Region, cp.Height)
			if root, dup := seenCkpts[key]; dup && root != cp.Root {
				return fmt.Errorf("%w: conflicting in-block checkpoint roots for region %s height %d", ErrTxInvalid, cp.Region, cp.Height)
			}
			seenCkpts[key] = cp.Root
		}
	}
	return nil
}

// CheckTxAdmissible reports whether tx could validly appear in a block
// given the chain's current committee and region configuration.
// Mempool admission runs it so an invalid submission is refused at the
// door instead of poisoning proposals — a block carrying such a
// transaction would be rejected by every honest validator, turning one
// bad submission into a consensus stall.
func (c *Chain) CheckTxAdmissible(tx *types.Transaction) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.checkTxLocked(tx, nil)
}

// AddBlock validates and commits b: appends it, feeds every
// transaction's geo info into the election table, applies config
// deltas to the committee, and distributes rewards. A conflicting
// block at a committed height is recorded as fork evidence and
// rejected with ErrForkDetected.
func (c *Chain) AddBlock(b *types.Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	eraBefore := c.era
	if err := c.validateLocked(b); err != nil {
		if errors.Is(err, ErrForkDetected) {
			c.recordForkLocked(ForkEvidence{
				Height:    b.Header.Height,
				Committed: c.blocks[b.Header.Height-c.base].Hash(),
				Conflict:  b.Hash(),
				Proposer:  b.Header.Proposer,
			})
		}
		return err
	}
	c.blocks = append(c.blocks, b)
	c.byHash[b.Hash()] = b

	committee := make([]gcrypto.Address, 0, len(c.endorsers))
	for a := range c.endorsers {
		committee = append(committee, a)
	}
	for i := range b.Txs {
		tx := &b.Txs[i]
		c.txIndex[tx.ID()] = TxLocation{Height: b.Header.Height, TxIndex: i}
		// Every transaction carries geographic information; chain it
		// into the election table (Section III-B3: "Data uploaded from
		// IoT devices to blockchains will add an entry to the election
		// table").
		_, recErr := c.table.Record(tx.Report())
		c.accounts[tx.Sender] = tx.SenderPub
		if recErr == nil {
			// Fresh committed claim: index it and cross-check for the
			// same-cell Sybil pattern (stale/out-of-order reports carry
			// no new location information).
			c.noteGeoLocked(tx, b.Header.Height, i)
		}
		if tx.Type == types.TxWitness {
			if st, err := types.DecodeWitnessStatement(tx.Payload); err == nil {
				c.witnesses.Record(WitnessRecord{
					Witness:   tx.Sender,
					Subject:   st.Subject,
					Geohash:   st.Geohash,
					Seen:      st.Seen,
					Timestamp: tx.Geo.Timestamp,
					Loc:       TxLocation{Height: b.Header.Height, TxIndex: i},
				})
				if !st.Seen {
					c.maybeSpoofLocked(st.Subject, b.Header.Timestamp)
				}
			}
		}
		if tx.Type == types.TxEvidence {
			if rec, err := evidence.Decode(tx.Payload); err == nil {
				c.applyEvidenceLocked(rec)
			}
		}
		if tx.Type == types.TxConfig {
			change, err := types.DecodeConfigChange(tx.Payload)
			if err != nil {
				continue // validated above; defensive
			}
			c.applyConfigLocked(change)
		}
		if tx.Type == types.TxTransferLock {
			if tr, err := shard.DecodeTransfer(tx.Payload); err == nil {
				// The lock debits the sender at commit, so a transfer can
				// only move value the sender provably holds in this region
				// — the destination credit never mints from nothing.
				// Balances are stateful, so pipelined validation cannot
				// pre-screen funds: an underfunded lock commits as a
				// counted no-op and mints no receipt.
				if c.rewards.Debit(tx.Sender, tr.Amount) {
					c.outbound = append(c.outbound, shard.Receipt{
						ID:         tx.ID(),
						Source:     tr.Source,
						Dest:       tr.Dest,
						Recipient:  tr.Recipient,
						Amount:     tr.Amount,
						LockHeight: b.Header.Height,
					})
				} else {
					c.lockRejects++
				}
			}
		}
		if tx.Type == types.TxTransferApply {
			if rc, err := shard.DecodeReceipt(tx.Payload); err == nil {
				if _, dup := c.appliedReceipts[rc.ID]; dup {
					c.receiptDupes++
				} else {
					c.appliedReceipts[rc.ID] = TxLocation{Height: b.Header.Height, TxIndex: i}
					c.rewards.Credit(rc.Recipient, rc.Amount)
				}
			}
		}
		if tx.Type == types.TxRegionCheckpoint {
			if cp, err := shard.DecodeCheckpoint(tx.Payload); err == nil {
				// Validation refused conflicts both against the index and
				// within the block, under the same lock hold as this
				// apply, so Apply cannot conflict here. If it ever does,
				// keep the fork proof instead of dropping it: the anchored
				// root stands and the proposer who packed the conflicting
				// checkpoint is on the record.
				if err := c.anchorsLocked().Apply(cp); err != nil {
					committed, _ := c.anchors.RootAt(cp.Region, cp.Height)
					c.recordForkLocked(ForkEvidence{
						Height:    b.Header.Height,
						Committed: committed,
						Conflict:  cp.Root,
						Proposer:  b.Header.Proposer,
					})
				}
			}
		}
	}
	// Endorsers with recorded fork evidence forfeit endorsement shares:
	// "If an endorser node missed a block or caused a fork, it will
	// not be endorsed by other endorsers and get its rewards."
	var excluded map[gcrypto.Address]bool
	if len(c.forks) > 0 {
		excluded = make(map[gcrypto.Address]bool, len(c.forks))
		for _, f := range c.forks {
			excluded[f.Proposer] = true
		}
	}
	c.rewards.ApplyBlock(b, committee, excluded)
	if !b.Header.Proposer.IsZero() {
		// "Once an endorser successfully generated a block, its
		// geographic timer will reset by the system."
		c.table.ResetTimer(b.Header.Proposer.String(), b.Header.Timestamp)
	}
	if c.era != eraBefore && c.onEraBump != nil {
		c.onEraBump(c.exportStateLocked())
	}
	return nil
}

// SetEraBumpHook registers fn to observe every era advance at the
// exact block that commits it. fn receives the canonical post-block
// state — byte-identical on every honest node whether the block
// arrived through consensus or through sync, which is what anchors
// snapshot roots in a cross-node quorum. fn runs with the chain lock
// held and must not call back into the chain.
func (c *Chain) SetEraBumpHook(fn func(*ChainState)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEraBump = fn
}

// pruneHorizonFactor sets how far behind table time the election table
// and witness index retain rows: several qualification windows, so
// every lookback any election or dispute check consults stays intact.
// Pruning runs at era boundaries (config application) — a point every
// honest node reaches at the same committed block — so the retained
// row set, and therefore the canonical ChainState encoding, is a pure
// function of chain content.
const pruneHorizonFactor = 4

func (c *Chain) applyConfigLocked(change *types.ConfigChange) {
	if change.NewEra > c.era {
		c.era = change.NewEra
		if latest := c.table.LatestTimestamp(); !latest.IsZero() {
			horizon := latest.Add(-pruneHorizonFactor * c.genesis.Policy.QualificationWindow)
			c.table.Prune(horizon)
			c.witnesses.Prune(horizon)
		}
	}
	for _, a := range change.Remove {
		delete(c.endorsers, a)
	}
	for _, e := range change.Add {
		if c.genesis.Policy.Blacklisted(e.Address) {
			continue
		}
		if !c.genesis.Policy.DisableExpulsion {
			if _, bad := c.banned[e.Address]; bad {
				continue // convicted by evidence: readmission refused
			}
		}
		if len(c.endorsers) >= c.genesis.Policy.MaxEndorsers {
			break
		}
		c.endorsers[e.Address] = e
		c.everEndorsers[e.Address] = true
	}
}

// recordForkLocked counts a fork attempt and stores its evidence,
// collapsing duplicates and capping retained records.
func (c *Chain) recordForkLocked(fe ForkEvidence) {
	c.forkCount++
	for _, f := range c.forks {
		if f.Height == fe.Height && f.Conflict == fe.Conflict && f.Proposer == fe.Proposer {
			return
		}
	}
	if len(c.forks) < maxForkRecords {
		c.forks = append(c.forks, fe)
	}
}

// TxLocation identifies where a transaction was committed.
type TxLocation struct {
	Height  uint64
	TxIndex int
}

// FindTx locates a committed transaction by ID; clients use it to
// confirm commitment (the paper's latency endpoint: "the transaction
// is written to the ledger").
func (c *Chain) FindTx(id gcrypto.Hash) (TxLocation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	loc, ok := c.txIndex[id]
	return loc, ok
}

// Blocks returns a snapshot of all blocks still held in memory, oldest
// first. For an uncompacted chain that is genesis onward; after
// compaction or a snapshot restore it starts at BaseHeight.
func (c *Chain) Blocks() []*types.Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*types.Block, len(c.blocks))
	copy(out, c.blocks)
	return out
}

func sortEndorsers(es []types.EndorserInfo) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Address.Less(es[j-1].Address); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}
