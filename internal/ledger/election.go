package ledger

import (
	"errors"
	"sort"
	"sync"
	"time"

	"gpbft/internal/geo"
)

// Entry is one row of the election table (paper Table II): the device's
// CSC at a point in time and the geographic timer — how long the device
// has held the same CSC up to that row.
type Entry struct {
	CSC       geo.CSC
	Timestamp time.Time
	Timer     time.Duration
}

// Errors returned by the election table.
var (
	ErrStaleReport = errors.New("ledger: report older than latest entry")
	ErrBadReport   = errors.New("ledger: invalid geographic report")
)

// deviceHistory holds one device's rows plus the anchor of the current
// residence streak (first report at the current CSC cell).
type deviceHistory struct {
	entries []Entry
	anchor  time.Time // start of the current same-CSC streak
	lastCSC string    // geohash of the current streak
}

// ElectionTable is the on-chain mapping of CSC and timestamp described
// in Section III-B3: "Endorsers store and maintain mapping of CSC and
// its timestamp in an election table. ... geographic timer in the
// election table will record how long an IoT device does not change
// its position."
//
// It also implements G(v,t), the "chain-based function [that] returns
// the geographic information reported by a node during the past period
// t" used by Algorithm 1.
type ElectionTable struct {
	mu      sync.RWMutex
	devices map[string]*deviceHistory // key: device address string
	// cells maps a geohash cell to the addresses that most recently
	// reported from it, for the Sybil same-cell check.
	cells map[string]map[string]time.Time
	// latest is the newest timestamp recorded anywhere — "table time".
	// Elections anchor their lookback here so that commit-queue lag
	// (reports waiting for consensus) cannot starve authentication.
	latest time.Time
}

// NewElectionTable returns an empty table.
func NewElectionTable() *ElectionTable {
	return &ElectionTable{
		devices: make(map[string]*deviceHistory),
		cells:   make(map[string]map[string]time.Time),
	}
}

// Record appends a report to the table and returns the row created.
// Reports must arrive in non-decreasing timestamp order per device;
// the geographic timer resets to zero whenever the CSC cell changes,
// exactly as in Table II.
func (t *ElectionTable) Record(rep geo.Report) (Entry, error) {
	if err := rep.Validate(); err != nil {
		return Entry{}, ErrBadReport
	}
	csc, err := rep.CSC()
	if err != nil {
		return Entry{}, ErrBadReport
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	h := t.devices[rep.Address]
	if h == nil {
		h = &deviceHistory{}
		t.devices[rep.Address] = h
	}
	if n := len(h.entries); n > 0 && rep.Timestamp.Before(h.entries[n-1].Timestamp) {
		return Entry{}, ErrStaleReport
	}
	if h.lastCSC != csc.Geohash {
		// Moved: the streak restarts at this report.
		h.anchor = rep.Timestamp
		h.lastCSC = csc.Geohash
	} else if len(h.entries) == 0 {
		h.anchor = rep.Timestamp
	}
	e := Entry{
		CSC:       csc,
		Timestamp: rep.Timestamp,
		Timer:     rep.Timestamp.Sub(h.anchor),
	}
	h.entries = append(h.entries, e)

	cell := t.cells[csc.Geohash]
	if cell == nil {
		cell = make(map[string]time.Time)
		t.cells[csc.Geohash] = cell
	}
	cell[rep.Address] = rep.Timestamp
	if rep.Timestamp.After(t.latest) {
		t.latest = rep.Timestamp
	}
	return e, nil
}

// LatestTimestamp returns table time: the newest timestamp recorded
// across all devices (zero for an empty table).
func (t *ElectionTable) LatestTimestamp() time.Time {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.latest
}

// Timer returns the current geographic timer of a device: how long it
// has continuously reported the same CSC, as of its latest report.
// Unknown devices have a zero timer.
func (t *ElectionTable) Timer(addr string) time.Duration {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h := t.devices[addr]
	if h == nil || len(h.entries) == 0 {
		return 0
	}
	return h.entries[len(h.entries)-1].Timer
}

// ResetTimer implements the incentive rule "Once an endorser
// successfully generated a block, its geographic timer will reset by
// the system" (Section III-B5): the streak anchor moves to `at`, so the
// timer restarts without erasing history.
func (t *ElectionTable) ResetTimer(addr string, at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.devices[addr]
	if h == nil {
		return
	}
	h.anchor = at
	if n := len(h.entries); n > 0 && !h.entries[n-1].Timestamp.Before(at) {
		h.entries[n-1].Timer = h.entries[n-1].Timestamp.Sub(at)
	}
}

// History returns a copy of all rows for a device, oldest first.
func (t *ElectionTable) History(addr string) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h := t.devices[addr]
	if h == nil {
		return nil
	}
	out := make([]Entry, len(h.entries))
	copy(out, h.entries)
	return out
}

// ReportsSince is G(v,t): the rows a device filed at or after `since`.
func (t *ElectionTable) ReportsSince(addr string, since time.Time) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h := t.devices[addr]
	if h == nil {
		return nil
	}
	// Entries are timestamp-ordered; binary search for the cut.
	i := sort.Search(len(h.entries), func(i int) bool {
		return !h.entries[i].Timestamp.Before(since)
	})
	if i == len(h.entries) {
		return nil
	}
	out := make([]Entry, len(h.entries)-i)
	copy(out, h.entries[i:])
	return out
}

// LatestEntry returns the newest row for a device, if any.
func (t *ElectionTable) LatestEntry(addr string) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h := t.devices[addr]
	if h == nil || len(h.entries) == 0 {
		return Entry{}, false
	}
	return h.entries[len(h.entries)-1], true
}

// CellOccupants returns the addresses that reported from a geohash
// cell at or after `since`. The Sybil defence of Section IV-A1 rests on
// this: "different nodes cannot report the same geographic information
// at the same time."
func (t *ElectionTable) CellOccupants(geohash string, since time.Time) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cell := t.cells[geohash]
	if cell == nil {
		return nil
	}
	var out []string
	for addr, ts := range cell {
		if !ts.Before(since) {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// Devices returns all device addresses present in the table, sorted.
func (t *ElectionTable) Devices() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.devices))
	for a := range t.devices {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Prune discards rows older than `before` (and empty devices),
// bounding table growth; streak anchors are preserved so timers keep
// their full residence credit.
func (t *ElectionTable) Prune(before time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for addr, h := range t.devices {
		i := sort.Search(len(h.entries), func(i int) bool {
			return !h.entries[i].Timestamp.Before(before)
		})
		if i == 0 {
			continue
		}
		h.entries = append([]Entry(nil), h.entries[i:]...)
		if len(h.entries) == 0 && h.anchor.Before(before) {
			// Device has been silent past the horizon entirely.
			delete(t.devices, addr)
		}
	}
	for hash, cell := range t.cells {
		for addr, ts := range cell {
			if ts.Before(before) {
				delete(cell, addr)
			}
		}
		if len(cell) == 0 {
			delete(t.cells, hash)
		}
	}
}

// Len returns the number of devices tracked.
func (t *ElectionTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.devices)
}
