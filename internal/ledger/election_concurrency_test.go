package ledger_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gpbft/internal/geo"
	"gpbft/internal/ledger"
)

// TestCellOccupantsConcurrentRecord hammers one election table with
// parallel writers (Record) and readers (CellOccupants, Devices,
// ReportsSince, LatestTimestamp) over a handful of shared cells. Run
// under -race this proves the table's locking; the final occupancy
// check proves no committed report was lost to a write race. The
// Sybil defence reads exactly this index, so a torn read here would
// surface as a missed (or fabricated) same-cell conviction.
func TestCellOccupantsConcurrentRecord(t *testing.T) {
	table := ledger.NewElectionTable()
	epoch := time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)

	// Four distinct CSC cells, well separated.
	spots := []geo.Point{
		{Lng: 114.171, Lat: 22.301},
		{Lng: 114.174, Lat: 22.304},
		{Lng: 114.177, Lat: 22.307},
		{Lng: 114.179, Lat: 22.309},
	}
	cells := make([]string, len(spots))
	for i, p := range spots {
		cells[i] = geo.MustEncode(p, geo.CSCPrecision)
	}

	const writers = 8
	const reportsPerWriter = 200

	// Readers: race against the writers on every accessor the election
	// and the Sybil detector use.
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for k := 0; k < 500; k++ {
				for _, cell := range cells {
					_ = table.CellOccupants(cell, epoch)
				}
				_ = table.Devices()
				_ = table.LatestTimestamp()
				_ = table.ReportsSince(fmt.Sprintf("device-%d", r), epoch)
			}
		}(r)
	}

	// Writers: each drives one device through the cells in timestamp
	// order (Record requires per-device monotone time).
	var writersWG sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		writersWG.Add(1)
		go func(wtr int) {
			defer writersWG.Done()
			addr := fmt.Sprintf("device-%d", wtr)
			for k := 0; k < reportsPerWriter; k++ {
				spot := spots[(wtr+k/50)%len(spots)]
				_, err := table.Record(geo.Report{
					Location:  spot,
					Timestamp: epoch.Add(time.Duration(k) * time.Second),
					Address:   addr,
				})
				if err != nil {
					t.Errorf("writer %d report %d: %v", wtr, k, err)
					return
				}
			}
		}(wtr)
	}

	writersWG.Wait()
	readers.Wait()

	if got := table.Len(); got != writers {
		t.Fatalf("table lost devices: Len=%d, want %d", got, writers)
	}
	for wtr := 0; wtr < writers; wtr++ {
		addr := fmt.Sprintf("device-%d", wtr)
		if got := len(table.ReportsSince(addr, epoch)); got != reportsPerWriter {
			t.Fatalf("%s lost reports: %d, want %d", addr, got, reportsPerWriter)
		}
	}
	// The occupant index must still know every device: each writer's
	// reports all carry timestamps >= epoch, so each device appears in
	// at least the cell of its latest report.
	seen := make(map[string]bool)
	for _, cell := range cells {
		for _, addr := range table.CellOccupants(cell, epoch) {
			seen[addr] = true
		}
	}
	if len(seen) != writers {
		t.Fatalf("occupant index holds %d devices, want %d", len(seen), writers)
	}
}
