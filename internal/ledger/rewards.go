package ledger

import (
	"sort"
	"sync"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// Reward split of the incentive mechanism (Section III-B5): "An
// endorser generates a new block can get 70% of the transaction fee.
// Endorsers endorse others block can share 30% of the transaction fee."
const (
	ProducerSharePercent = 70
	EndorserSharePercent = 30
)

// RewardLedger tracks fee balances accrued by endorsers.
type RewardLedger struct {
	mu       sync.RWMutex
	balances map[gcrypto.Address]uint64
	produced map[gcrypto.Address]uint64 // blocks produced per endorser
}

// NewRewardLedger returns an empty reward ledger.
func NewRewardLedger() *RewardLedger {
	return &RewardLedger{
		balances: make(map[gcrypto.Address]uint64),
		produced: make(map[gcrypto.Address]uint64),
	}
}

// ApplyBlock distributes the block's total fees: 70% to the proposer,
// 30% shared equally among the other endorsing committee members.
// Indivisible remainders go to the proposer. Faulty endorsers — those
// in `excluded` — "will not be endorsed by other endorsers and get
// [their] rewards", so they receive nothing.
func (r *RewardLedger) ApplyBlock(b *types.Block, committee []gcrypto.Address, excluded map[gcrypto.Address]bool) {
	fees := b.TotalFees()
	proposer := b.Header.Proposer

	r.mu.Lock()
	defer r.mu.Unlock()
	r.produced[proposer]++
	if fees == 0 {
		return
	}
	producerCut := fees * ProducerSharePercent / 100
	endorserPot := fees - producerCut

	var endorsers []gcrypto.Address
	for _, a := range committee {
		if a != proposer && !excluded[a] {
			endorsers = append(endorsers, a)
		}
	}
	if len(endorsers) == 0 {
		r.balances[proposer] += fees
		return
	}
	per := endorserPot / uint64(len(endorsers))
	remainder := endorserPot - per*uint64(len(endorsers))
	r.balances[proposer] += producerCut + remainder
	for _, a := range endorsers {
		r.balances[a] += per
	}
}

// Credit adds amount to addr's balance directly — the destination-side
// materialisation of an anchored cross-region transfer receipt.
func (r *RewardLedger) Credit(addr gcrypto.Address, amount uint64) {
	if amount == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.balances[addr] += amount
}

// Debit removes amount from addr's balance, reporting success. It
// fails — and changes nothing — when the balance is insufficient: the
// source-side funds check of a cross-region transfer lock.
func (r *RewardLedger) Debit(addr gcrypto.Address, amount uint64) bool {
	if amount == 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.balances[addr] < amount {
		return false
	}
	r.balances[addr] -= amount
	return true
}

// Balance returns the accrued fee balance of addr.
func (r *RewardLedger) Balance(addr gcrypto.Address) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.balances[addr]
}

// BlocksProduced returns how many blocks addr has proposed.
func (r *RewardLedger) BlocksProduced(addr gcrypto.Address) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.produced[addr]
}

// TotalDistributed sums all balances.
func (r *RewardLedger) TotalDistributed() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sum uint64
	for _, v := range r.balances {
		sum += v
	}
	return sum
}

// Accounts returns all addresses with a balance, sorted for
// deterministic iteration.
func (r *RewardLedger) Accounts() []gcrypto.Address {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]gcrypto.Address, 0, len(r.balances))
	for a := range r.balances {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
