package ledger

import (
	"sort"
	"sync"
	"time"

	"gpbft/internal/gcrypto"
)

// WitnessRecord is one committed peer attestation.
type WitnessRecord struct {
	Witness   gcrypto.Address
	Subject   gcrypto.Address
	Geohash   string
	Seen      bool
	Timestamp time.Time
	// Loc is where the carrying TxWitness transaction was committed,
	// so accountability can recover the signed original as proof.
	Loc TxLocation
}

// WitnessIndex stores committed witness statements per subject. It is
// chain-derived state (like the election table), so every honest node
// holds the same index.
type WitnessIndex struct {
	mu         sync.RWMutex
	bySubject  map[gcrypto.Address][]WitnessRecord
	totalCount int
}

// NewWitnessIndex returns an empty index.
func NewWitnessIndex() *WitnessIndex {
	return &WitnessIndex{bySubject: make(map[gcrypto.Address][]WitnessRecord)}
}

// Record appends a statement.
func (w *WitnessIndex) Record(rec WitnessRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.bySubject[rec.Subject] = append(w.bySubject[rec.Subject], rec)
	w.totalCount++
}

// StatementsFor returns the statements about subject at or after
// `since`, oldest first.
func (w *WitnessIndex) StatementsFor(subject gcrypto.Address, since time.Time) []WitnessRecord {
	w.mu.RLock()
	defer w.mu.RUnlock()
	recs := w.bySubject[subject]
	i := sort.Search(len(recs), func(i int) bool {
		return !recs[i].Timestamp.Before(since)
	})
	if i == len(recs) {
		return nil
	}
	out := make([]WitnessRecord, len(recs)-i)
	copy(out, recs[i:])
	return out
}

// Len returns the total number of statements recorded.
func (w *WitnessIndex) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.totalCount
}

// Prune discards statements older than `before`.
func (w *WitnessIndex) Prune(before time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for subject, recs := range w.bySubject {
		i := sort.Search(len(recs), func(i int) bool {
			return !recs[i].Timestamp.Before(before)
		})
		if i == 0 {
			continue
		}
		w.totalCount -= i
		if i == len(recs) {
			delete(w.bySubject, subject)
			continue
		}
		w.bySubject[subject] = append([]WitnessRecord(nil), recs[i:]...)
	}
}
