package ledger

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/shard"
	"gpbft/internal/types"
)

// ChainState is the canonical, deterministic serialization of a chain
// at a checkpoint height: everything a node needs to validate and
// extend the chain without replaying history. Two honest nodes at the
// same height produce byte-identical encodings — that is what lets
// fast sync anchor trust in a quorum of peer-reported state roots
// rather than in any single snapshot producer.
//
// Deliberately EXCLUDED (a restored node starts them empty):
//
//   - fork evidence (forks/forkCount): records of *attempted* forks
//     observed locally; which attempts a node saw depends on message
//     delivery, not committed state.
//   - local detection state (detected, detectedIDs, flagged, lastGeo,
//     cellSeen): the in-flight misbehavior detector. Its evolution
//     depends on when a node joined, so including it would make the
//     canonical encoding history-dependent and break root agreement
//     between long-running nodes and past fast-syncers. Committed
//     evidence (the banned set and the dedup set) IS carried; only the
//     not-yet-committed local suspicion is rebuilt from fresh
//     observations.
//   - the checkpoint block's commit certificate: every node's cert
//     aggregates a different 2f+1 vote subset. The restored base block
//     is certless; its authenticity comes from the root quorum.
type ChainState struct {
	GenesisHash gcrypto.Hash
	Era         uint64
	// Base is the checkpoint block: the head at export time, with its
	// commit certificate. Its header carries the last-stable (view,
	// seq) of the producing era.
	Base types.Block

	Endorsers     []types.EndorserInfo
	Accounts      []AccountRecord
	EverEndorsers []gcrypto.Address
	Banned        []BannedEntry
	Evidence      []gcrypto.Hash

	TableLatest time.Time
	Devices     []DeviceState
	Witnesses   []WitnessRecord
	Balances    []BalanceRecord
	TxIndex     []TxIndexRecord

	// Cross-region state (see receipts.go): outbound transfer receipts
	// in commit order, applied receipts sorted by ID, the duplicate-
	// apply counter, and — for anchor chains — the anchored checkpoint
	// history and covered receipts.
	Outbound       []shard.Receipt
	Applied        []AppliedReceipt
	ReceiptDupes   uint64
	LockRejects    uint64
	Anchors        []shard.AnchorRecord
	AnchorReceipts []shard.Receipt
}

// AccountRecord is one known sender: address and public key.
type AccountRecord struct {
	Address gcrypto.Address
	PubKey  []byte
}

// DeviceState is one election-table device history: the residence
// streak anchor plus the retained rows.
type DeviceState struct {
	Address string
	Anchor  time.Time
	LastCSC string
	Entries []DeviceEntry
}

// DeviceEntry is one retained election-table row.
type DeviceEntry struct {
	Geohash   string
	Timestamp time.Time
	Timer     time.Duration
}

// BalanceRecord is one reward-ledger account.
type BalanceRecord struct {
	Address  gcrypto.Address
	Balance  uint64
	Produced uint64
}

// TxIndexRecord locates one committed transaction.
type TxIndexRecord struct {
	ID  gcrypto.Hash
	Loc TxLocation
}

// Errors returned by state export/restore.
var (
	ErrStateGenesis = errors.New("ledger: state genesis mismatch")
	ErrStateStale   = errors.New("ledger: state not ahead of current head")
	ErrStateShape   = errors.New("ledger: malformed chain state")
)

// chainStateTag versions the canonical encoding; v2 appended the
// cross-region receipt and anchor indexes, v3 the refused-lock counter.
const chainStateTag = "gpbft/chainstate/v3"

// Height returns the checkpoint height.
func (st *ChainState) Height() uint64 { return st.Base.Header.Height }

// StableView returns the PBFT view of the checkpoint block.
func (st *ChainState) StableView() uint64 { return st.Base.Header.View }

// StableSeq returns the PBFT sequence of the checkpoint block.
func (st *ChainState) StableSeq() uint64 { return st.Base.Header.Seq }

// MarshalCanonical implements codec.Marshaler.
func (st *ChainState) MarshalCanonical(w *codec.Writer) {
	w.String(chainStateTag)
	w.Raw(st.GenesisHash[:])
	w.Uint64(st.Era)
	st.Base.MarshalCanonical(w)

	w.Count(len(st.Endorsers))
	for i := range st.Endorsers {
		e := &st.Endorsers[i]
		w.Raw(e.Address[:])
		w.WriteBytes(e.PubKey)
		w.String(e.Geohash)
	}
	w.Count(len(st.Accounts))
	for i := range st.Accounts {
		w.Raw(st.Accounts[i].Address[:])
		w.WriteBytes(st.Accounts[i].PubKey)
	}
	w.Count(len(st.EverEndorsers))
	for i := range st.EverEndorsers {
		w.Raw(st.EverEndorsers[i][:])
	}
	w.Count(len(st.Banned))
	for i := range st.Banned {
		w.Raw(st.Banned[i].Address[:])
		w.Raw(st.Banned[i].Evidence[:])
	}
	w.Count(len(st.Evidence))
	for i := range st.Evidence {
		w.Raw(st.Evidence[i][:])
	}

	w.Time(st.TableLatest)
	w.Count(len(st.Devices))
	for i := range st.Devices {
		d := &st.Devices[i]
		w.String(d.Address)
		w.Time(d.Anchor)
		w.String(d.LastCSC)
		w.Count(len(d.Entries))
		for j := range d.Entries {
			w.String(d.Entries[j].Geohash)
			w.Time(d.Entries[j].Timestamp)
			w.Int64(int64(d.Entries[j].Timer))
		}
	}
	w.Count(len(st.Witnesses))
	for i := range st.Witnesses {
		r := &st.Witnesses[i]
		w.Raw(r.Witness[:])
		w.Raw(r.Subject[:])
		w.String(r.Geohash)
		w.Bool(r.Seen)
		w.Time(r.Timestamp)
		w.Uint64(r.Loc.Height)
		w.Uint64(uint64(r.Loc.TxIndex))
	}
	w.Count(len(st.Balances))
	for i := range st.Balances {
		w.Raw(st.Balances[i].Address[:])
		w.Uint64(st.Balances[i].Balance)
		w.Uint64(st.Balances[i].Produced)
	}
	w.Count(len(st.TxIndex))
	for i := range st.TxIndex {
		w.Raw(st.TxIndex[i].ID[:])
		w.Uint64(st.TxIndex[i].Loc.Height)
		w.Uint64(uint64(st.TxIndex[i].Loc.TxIndex))
	}

	w.Count(len(st.Outbound))
	for i := range st.Outbound {
		st.Outbound[i].MarshalCanonical(w)
	}
	w.Count(len(st.Applied))
	for i := range st.Applied {
		w.Raw(st.Applied[i].ID[:])
		w.Uint64(st.Applied[i].Loc.Height)
		w.Uint64(uint64(st.Applied[i].Loc.TxIndex))
	}
	w.Uint64(st.ReceiptDupes)
	w.Uint64(st.LockRejects)
	w.Count(len(st.Anchors))
	for i := range st.Anchors {
		a := &st.Anchors[i]
		w.String(a.Region)
		w.Uint64(a.Era)
		w.Uint64(a.Height)
		w.Raw(a.Root[:])
	}
	w.Count(len(st.AnchorReceipts))
	for i := range st.AnchorReceipts {
		st.AnchorReceipts[i].MarshalCanonical(w)
	}
}

// UnmarshalCanonical decodes a chain state.
func (st *ChainState) UnmarshalCanonical(r *codec.Reader) error {
	if tag := r.ReadString(); r.Err() == nil && tag != chainStateTag {
		return fmt.Errorf("%w: bad tag %q", ErrStateShape, tag)
	}
	r.RawInto(st.GenesisHash[:])
	st.Era = r.Uint64()
	if err := st.Base.UnmarshalCanonical(r); err != nil {
		return err
	}

	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.Endorsers = make([]types.EndorserInfo, n)
	for i := 0; i < n; i++ {
		r.RawInto(st.Endorsers[i].Address[:])
		st.Endorsers[i].PubKey = r.ReadBytes()
		st.Endorsers[i].Geohash = r.ReadString()
	}
	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.Accounts = make([]AccountRecord, n)
	for i := 0; i < n; i++ {
		r.RawInto(st.Accounts[i].Address[:])
		st.Accounts[i].PubKey = r.ReadBytes()
	}
	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.EverEndorsers = make([]gcrypto.Address, n)
	for i := 0; i < n; i++ {
		r.RawInto(st.EverEndorsers[i][:])
	}
	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.Banned = make([]BannedEntry, n)
	for i := 0; i < n; i++ {
		r.RawInto(st.Banned[i].Address[:])
		r.RawInto(st.Banned[i].Evidence[:])
	}
	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.Evidence = make([]gcrypto.Hash, n)
	for i := 0; i < n; i++ {
		r.RawInto(st.Evidence[i][:])
	}

	st.TableLatest = r.Time()
	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.Devices = make([]DeviceState, n)
	for i := 0; i < n; i++ {
		d := &st.Devices[i]
		d.Address = r.ReadString()
		d.Anchor = r.Time()
		d.LastCSC = r.ReadString()
		m := r.Count()
		if r.Err() != nil {
			return r.Err()
		}
		d.Entries = make([]DeviceEntry, m)
		for j := 0; j < m; j++ {
			d.Entries[j].Geohash = r.ReadString()
			d.Entries[j].Timestamp = r.Time()
			d.Entries[j].Timer = time.Duration(r.Int64())
		}
	}
	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.Witnesses = make([]WitnessRecord, n)
	for i := 0; i < n; i++ {
		w := &st.Witnesses[i]
		r.RawInto(w.Witness[:])
		r.RawInto(w.Subject[:])
		w.Geohash = r.ReadString()
		w.Seen = r.Bool()
		w.Timestamp = r.Time()
		w.Loc.Height = r.Uint64()
		w.Loc.TxIndex = int(r.Uint64())
	}
	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.Balances = make([]BalanceRecord, n)
	for i := 0; i < n; i++ {
		r.RawInto(st.Balances[i].Address[:])
		st.Balances[i].Balance = r.Uint64()
		st.Balances[i].Produced = r.Uint64()
	}
	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.TxIndex = make([]TxIndexRecord, n)
	for i := 0; i < n; i++ {
		r.RawInto(st.TxIndex[i].ID[:])
		st.TxIndex[i].Loc.Height = r.Uint64()
		st.TxIndex[i].Loc.TxIndex = int(r.Uint64())
	}

	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.Outbound = make([]shard.Receipt, n)
	for i := 0; i < n; i++ {
		if err := st.Outbound[i].UnmarshalCanonical(r); err != nil {
			return err
		}
	}
	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.Applied = make([]AppliedReceipt, n)
	for i := 0; i < n; i++ {
		r.RawInto(st.Applied[i].ID[:])
		st.Applied[i].Loc.Height = r.Uint64()
		st.Applied[i].Loc.TxIndex = int(r.Uint64())
	}
	st.ReceiptDupes = r.Uint64()
	st.LockRejects = r.Uint64()
	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.Anchors = make([]shard.AnchorRecord, n)
	for i := 0; i < n; i++ {
		a := &st.Anchors[i]
		a.Region = r.ReadString()
		a.Era = r.Uint64()
		a.Height = r.Uint64()
		r.RawInto(a.Root[:])
	}
	n = r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	st.AnchorReceipts = make([]shard.Receipt, n)
	for i := 0; i < n; i++ {
		if err := st.AnchorReceipts[i].UnmarshalCanonical(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// EncodeChainState returns the canonical bytes of st.
func EncodeChainState(st *ChainState) []byte { return codec.Encode(st) }

// DecodeChainState parses canonical bytes into a chain state.
func DecodeChainState(b []byte) (*ChainState, error) {
	r := codec.NewReader(b)
	var st ChainState
	if err := st.UnmarshalCanonical(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &st, nil
}

// Root returns the state root: the digest of the canonical encoding.
// Honest nodes at the same height agree on it byte for byte, so a
// quorum of peer-reported roots authenticates a snapshot end to end.
func (st *ChainState) Root() gcrypto.Hash {
	return gcrypto.HashBytes(EncodeChainState(st))
}

// ExportState serializes the chain at its current head into a
// deterministic ChainState. The result depends only on committed
// blocks (plus genesis), never on this node's message history.
func (c *Chain) ExportState() *ChainState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.exportStateLocked()
}

func (c *Chain) exportStateLocked() *ChainState {
	// The checkpoint block is carried WITHOUT its commit certificate:
	// certs aggregate whichever 2f+1 votes each node happened to
	// collect, so including one would make the encoding — and the
	// root — node-dependent. Snapshot trust is anchored in the quorum
	// of peer-reported roots, not in the checkpoint's certificate.
	head := *c.blocks[len(c.blocks)-1]
	head.Cert = nil
	st := &ChainState{
		GenesisHash: c.genesis.Hash(),
		Era:         c.era,
		Base:        head,
	}

	st.Endorsers = make([]types.EndorserInfo, 0, len(c.endorsers))
	for _, e := range c.endorsers {
		st.Endorsers = append(st.Endorsers, e)
	}
	sortEndorsers(st.Endorsers)

	st.Accounts = make([]AccountRecord, 0, len(c.accounts))
	for a, pub := range c.accounts {
		st.Accounts = append(st.Accounts, AccountRecord{Address: a, PubKey: pub})
	}
	sort.Slice(st.Accounts, func(i, j int) bool {
		return st.Accounts[i].Address.Less(st.Accounts[j].Address)
	})

	st.EverEndorsers = make([]gcrypto.Address, 0, len(c.everEndorsers))
	for a := range c.everEndorsers {
		st.EverEndorsers = append(st.EverEndorsers, a)
	}
	sort.Slice(st.EverEndorsers, func(i, j int) bool {
		return st.EverEndorsers[i].Less(st.EverEndorsers[j])
	})

	st.Banned = make([]BannedEntry, 0, len(c.banned))
	for a, id := range c.banned {
		st.Banned = append(st.Banned, BannedEntry{Address: a, Evidence: id})
	}
	sort.Slice(st.Banned, func(i, j int) bool {
		return st.Banned[i].Address.Less(st.Banned[j].Address)
	})

	st.Evidence = make([]gcrypto.Hash, 0, len(c.evidenceSeen))
	for id := range c.evidenceSeen {
		st.Evidence = append(st.Evidence, id)
	}
	sort.Slice(st.Evidence, func(i, j int) bool {
		return bytes.Compare(st.Evidence[i][:], st.Evidence[j][:]) < 0
	})

	st.TableLatest, st.Devices = c.table.exportDevices()
	st.Witnesses = c.witnesses.exportRecords()
	st.Balances = c.rewards.exportBalances()

	st.TxIndex = make([]TxIndexRecord, 0, len(c.txIndex))
	for id, loc := range c.txIndex {
		st.TxIndex = append(st.TxIndex, TxIndexRecord{ID: id, Loc: loc})
	}
	sort.Slice(st.TxIndex, func(i, j int) bool {
		return bytes.Compare(st.TxIndex[i].ID[:], st.TxIndex[j].ID[:]) < 0
	})

	c.exportReceiptsLocked(st)
	return st
}

// exportDevices snapshots the election table deterministically: devices
// sorted by address, rows in chronological order. The latest ("table
// time") stamp is serialized explicitly — after pruning it can exceed
// every retained row.
func (t *ElectionTable) exportDevices() (time.Time, []DeviceState) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]DeviceState, 0, len(t.devices))
	for addr, h := range t.devices {
		d := DeviceState{Address: addr, Anchor: h.anchor, LastCSC: h.lastCSC}
		d.Entries = make([]DeviceEntry, len(h.entries))
		for i, e := range h.entries {
			d.Entries[i] = DeviceEntry{Geohash: e.CSC.Geohash, Timestamp: e.Timestamp, Timer: e.Timer}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Address < out[j].Address })
	return t.latest, out
}

// restoreDevices rebuilds a table from a snapshot. The cell index is
// recomputed by replaying rows in order: Record overwrites a (cell,
// device) stamp with each newer row, and Prune removes device rows and
// cell stamps at the same horizon, so the retained rows determine the
// cell index exactly.
func restoreDevices(latest time.Time, devices []DeviceState) *ElectionTable {
	t := NewElectionTable()
	t.latest = latest
	for i := range devices {
		d := &devices[i]
		h := &deviceHistory{anchor: d.Anchor, lastCSC: d.LastCSC}
		h.entries = make([]Entry, len(d.Entries))
		for j, e := range d.Entries {
			h.entries[j] = Entry{
				CSC:       geo.CSC{Geohash: e.Geohash, Address: d.Address},
				Timestamp: e.Timestamp,
				Timer:     e.Timer,
			}
			cell := t.cells[e.Geohash]
			if cell == nil {
				cell = make(map[string]time.Time)
				t.cells[e.Geohash] = cell
			}
			cell[d.Address] = e.Timestamp
		}
		t.devices[d.Address] = h
	}
	return t
}

// exportRecords snapshots the witness index: subjects sorted by
// address, statements in commit order.
func (w *WitnessIndex) exportRecords() []WitnessRecord {
	w.mu.RLock()
	defer w.mu.RUnlock()
	subjects := make([]gcrypto.Address, 0, len(w.bySubject))
	for s := range w.bySubject {
		subjects = append(subjects, s)
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i].Less(subjects[j]) })
	out := make([]WitnessRecord, 0, w.totalCount)
	for _, s := range subjects {
		out = append(out, w.bySubject[s]...)
	}
	return out
}

// exportBalances snapshots the reward ledger: the union of balance and
// production accounts, sorted. All-zero records are omitted — the
// in-memory maps may hold zero-valued bookkeeping entries that a
// restored ledger would not recreate, and the canonical encoding must
// not depend on that incidental history.
func (r *RewardLedger) exportBalances() []BalanceRecord {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[gcrypto.Address]bool, len(r.balances)+len(r.produced))
	out := make([]BalanceRecord, 0, len(r.balances)+len(r.produced))
	for a, v := range r.balances {
		seen[a] = true
		if v == 0 && r.produced[a] == 0 {
			continue
		}
		out = append(out, BalanceRecord{Address: a, Balance: v, Produced: r.produced[a]})
	}
	for a, p := range r.produced {
		if !seen[a] && p > 0 {
			out = append(out, BalanceRecord{Address: a, Produced: p})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Address.Less(out[j].Address) })
	return out
}

// validateState performs structural checks shared by restore and
// install: genesis binding, tx-root integrity of the base block, and
// index sanity.
func validateState(g *Genesis, st *ChainState) error {
	if st.GenesisHash != g.Hash() {
		return ErrStateGenesis
	}
	if err := st.Base.VerifyTxRoot(); err != nil {
		return fmt.Errorf("%w: base block: %v", ErrStateShape, err)
	}
	// The base block carries no certificate (deliberately excluded from
	// the canonical encoding — certs are node-dependent); a snapshot's
	// authenticity rests on the quorum of peer-reported roots instead.
	for i := range st.TxIndex {
		if st.TxIndex[i].Loc.Height > st.Height() {
			return fmt.Errorf("%w: tx index beyond checkpoint", ErrStateShape)
		}
	}
	return nil
}

// applyStateLocked overwrites the chain's guts with the snapshot
// content. Caller holds c.mu.
func (c *Chain) applyStateLocked(st *ChainState) {
	base := st.Base
	c.era = st.Era
	c.base = base.Header.Height
	c.blocks = []*types.Block{&base}
	c.byHash = map[gcrypto.Hash]*types.Block{base.Hash(): &base}

	c.endorsers = make(map[gcrypto.Address]types.EndorserInfo, len(st.Endorsers))
	for _, e := range st.Endorsers {
		c.endorsers[e.Address] = e
	}
	c.accounts = make(map[gcrypto.Address][]byte, len(st.Accounts))
	for _, a := range st.Accounts {
		c.accounts[a.Address] = a.PubKey
	}
	c.everEndorsers = make(map[gcrypto.Address]bool, len(st.EverEndorsers))
	for _, a := range st.EverEndorsers {
		c.everEndorsers[a] = true
	}
	c.banned = make(map[gcrypto.Address]gcrypto.Hash, len(st.Banned))
	for _, b := range st.Banned {
		c.banned[b.Address] = b.Evidence
	}
	c.evidenceSeen = make(map[gcrypto.Hash]bool, len(st.Evidence))
	for _, id := range st.Evidence {
		c.evidenceSeen[id] = true
	}
	c.evidenceCnt = uint64(len(st.Evidence))

	c.table = restoreDevices(st.TableLatest, st.Devices)
	c.witnesses = NewWitnessIndex()
	for _, rec := range st.Witnesses {
		c.witnesses.Record(rec)
	}
	c.rewards = NewRewardLedger()
	for _, b := range st.Balances {
		if b.Balance > 0 {
			c.rewards.balances[b.Address] = b.Balance
		}
		if b.Produced > 0 {
			c.rewards.produced[b.Address] = b.Produced
		}
	}
	c.txIndex = make(map[gcrypto.Hash]TxLocation, len(st.TxIndex))
	for _, rec := range st.TxIndex {
		c.txIndex[rec.ID] = rec.Loc
	}

	c.applyReceiptsLocked(st)

	// Local detection state restarts empty (see the ChainState doc).
	c.forks = nil
	c.forkCount = 0
	c.detected = nil
	c.detectedIDs = make(map[gcrypto.Hash]bool)
	c.flagged = make(map[gcrypto.Address]bool)
	c.lastGeo = make(map[gcrypto.Address]geoEntry)
	c.cellSeen = make(map[string]map[gcrypto.Address]geoEntry)
}

// RestoreChain builds a chain whose history starts at the snapshot's
// checkpoint block instead of genesis. Blocks after the checkpoint are
// applied with AddBlock as usual.
func RestoreChain(g *Genesis, st *ChainState) (*Chain, error) {
	if err := validateState(g, st); err != nil {
		return nil, err
	}
	c, err := NewChain(g)
	if err != nil {
		return nil, err
	}
	if st.Height() == 0 {
		return c, nil // a genesis snapshot carries nothing beyond genesis
	}
	c.mu.Lock()
	c.applyStateLocked(st)
	c.mu.Unlock()
	return c, nil
}

// InstallState fast-forwards a live chain to a remote snapshot. The
// snapshot must be strictly ahead of the current head; everything
// below the checkpoint is discarded. The caller is responsible for
// authenticating the snapshot (signature plus a quorum of peer-head
// roots) BEFORE installing.
func (c *Chain) InstallState(st *ChainState) error {
	if err := validateState(c.genesis, st); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	head := c.blocks[len(c.blocks)-1].Header.Height
	if st.Height() <= head {
		return fmt.Errorf("%w: snapshot height %d, head %d", ErrStateStale, st.Height(), head)
	}
	c.applyStateLocked(st)
	return nil
}

// BaseHeight returns the height of the oldest block this chain still
// holds (0 when history reaches genesis). Blocks below it were
// compacted away or replaced by a snapshot checkpoint.
func (c *Chain) BaseHeight() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.base
}

// CompactBelow drops in-memory blocks with height < h, keeping at
// least the head. Bounds a long-running node's memory to O(state +
// tail) alongside the on-disk log compaction.
func (c *Chain) CompactBelow(h uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	head := c.blocks[len(c.blocks)-1].Header.Height
	if h > head {
		h = head
	}
	if h <= c.base {
		return
	}
	cut := int(h - c.base)
	for _, b := range c.blocks[:cut] {
		delete(c.byHash, b.Hash())
	}
	c.blocks = append([]*types.Block(nil), c.blocks[cut:]...)
	c.base = h
}
