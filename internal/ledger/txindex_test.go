package ledger

import (
	"testing"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

func TestFindTx(t *testing.T) {
	c, err := NewChain(testGenesis(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	tx1 := signedTx(0, 1, 5)
	tx2 := signedTx(1, 2, 5)
	if err := c.AddBlock(nextBlock(c, []types.Transaction{tx1, tx2}, 0)); err != nil {
		t.Fatal(err)
	}
	loc, ok := c.FindTx(tx2.ID())
	if !ok {
		t.Fatal("committed tx not found")
	}
	if loc.Height != 1 || loc.TxIndex != 1 {
		t.Fatalf("location: %+v", loc)
	}
	if _, ok := c.FindTx(gcrypto.HashBytes([]byte("ghost"))); ok {
		t.Fatal("unknown tx found")
	}
	// The located tx is retrievable through BlockAt.
	b, err := c.BlockAt(loc.Height)
	if err != nil {
		t.Fatal(err)
	}
	if b.Txs[loc.TxIndex].ID() != tx2.ID() {
		t.Fatal("index points at wrong transaction")
	}
}
