package ledger

import (
	"errors"
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/shard"
	"gpbft/internal/types"
)

var testSpot = geo.Point{Lng: 114.1795, Lat: 22.3050}

func testPrefixes(t *testing.T) (src, dst string) {
	t.Helper()
	src = geo.MustEncode(testSpot, shard.DefaultPrefixLen)
	nb, err := geo.Neighbors(src)
	if err != nil || len(nb) == 0 {
		t.Fatalf("Neighbors(%q): %v", src, err)
	}
	return src, nb[0]
}

// fundedGenesis is testGenesis with every endorser endowed: transfer
// locks debit the sender, so lock tests need funded senders.
func fundedGenesis(t testing.TB, n int, endowment uint64) *Genesis {
	t.Helper()
	g := testGenesis(t, n)
	g.Policy.EndorserEndowment = endowment
	return g
}

// shardTx builds a signed transaction of the given type from key i.
func shardTx(i int, nonce uint64, typ types.TxType, payload []byte) types.Transaction {
	kp := gcrypto.DeterministicKeyPair(i)
	tx := types.Transaction{
		Type:    typ,
		Nonce:   nonce,
		Payload: payload,
		Fee:     1,
		Geo: types.GeoInfo{
			Location:  testSpot,
			Timestamp: tableEpoch.Add(time.Duration(nonce) * time.Second),
		},
	}
	tx.Sign(kp)
	return tx
}

func TestTransferLockMintsReceipt(t *testing.T) {
	src, dst := testPrefixes(t)
	c, _ := NewChain(fundedGenesis(t, 4, 100))
	sender := gcrypto.DeterministicKeyPair(0).Address()
	recipient := gcrypto.DeterministicKeyPair(99).Address()
	lock := shardTx(0, 1, types.TxTransferLock, shard.EncodeTransfer(&shard.Transfer{
		Source: src, Dest: dst, Recipient: recipient, Amount: 25,
	}))
	// Proposer 1, so the sender collects no fee share (3 endorsers
	// split 0 each) and the debit is exact.
	if err := c.AddBlock(nextBlock(c, []types.Transaction{lock}, 1)); err != nil {
		t.Fatal(err)
	}
	out := c.OutboundReceipts(0)
	if len(out) != 1 {
		t.Fatalf("outbound receipts: %d", len(out))
	}
	rc := out[0]
	if rc.ID != lock.ID() || rc.Dest != dst || rc.Amount != 25 || rc.LockHeight != 1 {
		t.Fatalf("receipt %+v", rc)
	}
	// The lock debited the sender: value moved, it was not minted.
	if got := c.Rewards().Balance(sender); got != 75 {
		t.Fatalf("sender balance after lock: %d, want 75", got)
	}
	if got := c.OutboundReceipts(1); len(got) != 0 {
		t.Fatalf("since=lockHeight should exclude: %d", len(got))
	}
	// Malformed lock payloads are refused at validation.
	bad := shardTx(0, 2, types.TxTransferLock, []byte("junk"))
	if err := c.AddBlock(nextBlock(c, []types.Transaction{bad}, 0)); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("bad lock payload: %v", err)
	}
}

func TestTransferLockInsufficientFunds(t *testing.T) {
	src, dst := testPrefixes(t)
	c, _ := NewChain(fundedGenesis(t, 4, 100))
	sender := gcrypto.DeterministicKeyPair(0).Address()
	recipient := gcrypto.DeterministicKeyPair(99).Address()
	over := shardTx(0, 1, types.TxTransferLock, shard.EncodeTransfer(&shard.Transfer{
		Source: src, Dest: dst, Recipient: recipient, Amount: 1000,
	}))
	// Balances are stateful, so the block commits — but the over-balance
	// lock is a counted no-op: no debit, no receipt.
	if err := c.AddBlock(nextBlock(c, []types.Transaction{over}, 1)); err != nil {
		t.Fatal(err)
	}
	if got := c.OutboundCount(); got != 0 {
		t.Fatalf("over-balance lock minted %d receipts", got)
	}
	if got := c.LockRejects(); got != 1 {
		t.Fatalf("lock rejects: %d", got)
	}
	if got := c.Rewards().Balance(sender); got != 100 {
		t.Fatalf("sender balance after refused lock: %d, want 100", got)
	}
}

func TestTransferRegionPinning(t *testing.T) {
	src, dst := testPrefixes(t)
	recipient := gcrypto.DeterministicKeyPair(99).Address()

	// A chain pinned to src refuses a lock sourced elsewhere: its
	// receipt could never ride a valid checkpoint of this region.
	c, _ := NewChain(fundedGenesis(t, 4, 100))
	c.SetShardPrefix(src)
	foreign := shardTx(0, 1, types.TxTransferLock, shard.EncodeTransfer(&shard.Transfer{
		Source: dst, Dest: src, Recipient: recipient, Amount: 5,
	}))
	if err := c.AddBlock(nextBlock(c, []types.Transaction{foreign}, 0)); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("foreign-source lock: %v", err)
	}
	// Admission applies the same rule, so the tx never poisons a pool.
	if err := c.CheckTxAdmissible(&foreign); err == nil {
		t.Fatal("foreign-source lock admitted")
	}

	// And it refuses applying a receipt destined for another region.
	rc := shard.Receipt{
		ID:     gcrypto.HashBytes([]byte("misrouted")),
		Source: src, Dest: dst, Recipient: recipient, Amount: 5, LockHeight: 1,
	}
	misrouted := shardTx(0, 1, types.TxTransferApply, shard.EncodeReceipt(&rc))
	if err := c.AddBlock(nextBlock(c, []types.Transaction{misrouted}, 0)); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("misrouted apply: %v", err)
	}
}

func TestTransferApplyExactlyOnce(t *testing.T) {
	src, dst := testPrefixes(t)
	c, _ := NewChain(testGenesis(t, 4))
	recipient := gcrypto.DeterministicKeyPair(99).Address()
	rc := shard.Receipt{
		ID:     gcrypto.HashBytes([]byte("lock")),
		Source: src, Dest: dst, Recipient: recipient, Amount: 40, LockHeight: 3,
	}
	payload := shard.EncodeReceipt(&rc)
	if err := c.AddBlock(nextBlock(c, []types.Transaction{shardTx(0, 1, types.TxTransferApply, payload)}, 0)); err != nil {
		t.Fatal(err)
	}
	loc, ok := c.ReceiptApplied(rc.ID)
	if !ok || loc.Height != 1 {
		t.Fatalf("applied = %+v, %v", loc, ok)
	}
	if got := c.Rewards().Balance(recipient); got != 40 {
		t.Fatalf("recipient balance %d", got)
	}
	// A second apply of the same receipt (failover retry, different
	// sender and nonce → different tx ID) commits as a no-op: counted,
	// not credited again.
	if err := c.AddBlock(nextBlock(c, []types.Transaction{shardTx(1, 1, types.TxTransferApply, payload)}, 1)); err != nil {
		t.Fatal(err)
	}
	if got := c.Rewards().Balance(recipient); got != 40 {
		t.Fatalf("double-applied: balance %d", got)
	}
	if c.ReceiptDupes() != 1 {
		t.Fatalf("dupes %d", c.ReceiptDupes())
	}
	if c.AppliedReceiptCount() != 1 {
		t.Fatalf("applied count %d", c.AppliedReceiptCount())
	}
}

func TestTransferApplyRequiresEndorser(t *testing.T) {
	src, dst := testPrefixes(t)
	c, _ := NewChain(testGenesis(t, 4))
	rc := shard.Receipt{
		ID:     gcrypto.HashBytes([]byte("forged")),
		Source: src, Dest: dst,
		Recipient: gcrypto.DeterministicKeyPair(99).Address(),
		Amount:    1 << 40, LockHeight: 1,
	}
	// Key 50 is no committee member: a forged receipt from an arbitrary
	// identity must not mint balances.
	forged := shardTx(50, 1, types.TxTransferApply, shard.EncodeReceipt(&rc))
	if err := c.AddBlock(nextBlock(c, []types.Transaction{forged}, 0)); !errors.Is(err, ErrApplySender) {
		t.Fatalf("forged apply: %v", err)
	}
	if err := c.CheckTxAdmissible(&forged); !errors.Is(err, ErrApplySender) {
		t.Fatalf("forged apply admitted: %v", err)
	}
	if got := c.Rewards().Balance(rc.Recipient); got != 0 {
		t.Fatalf("forged apply credited %d", got)
	}
}

func TestConflictingCheckpointsInOneBlock(t *testing.T) {
	src, _ := testPrefixes(t)
	c, _ := NewChain(testGenesis(t, 4))
	a := &shard.RegionCheckpoint{Region: src, Height: 3, Root: gcrypto.HashBytes([]byte("root-a"))}
	b := &shard.RegionCheckpoint{Region: src, Height: 3, Root: gcrypto.HashBytes([]byte("root-b"))}
	// Both roots are new to the anchor index, so each passes the
	// index-based Check alone; the in-block tracker must still refuse
	// the pair riding one block.
	txs := []types.Transaction{
		shardTx(0, 1, types.TxRegionCheckpoint, shard.EncodeCheckpoint(a)),
		shardTx(1, 1, types.TxRegionCheckpoint, shard.EncodeCheckpoint(b)),
	}
	if err := c.AddBlock(nextBlock(c, txs, 0)); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("conflicting in-block checkpoints: %v", err)
	}
	// The identical root twice is merely redundant, not a fork.
	txs = []types.Transaction{
		shardTx(0, 1, types.TxRegionCheckpoint, shard.EncodeCheckpoint(a)),
		shardTx(1, 1, types.TxRegionCheckpoint, shard.EncodeCheckpoint(a)),
	}
	if err := c.AddBlock(nextBlock(c, txs, 0)); err != nil {
		t.Fatalf("duplicate in-block checkpoints: %v", err)
	}
}

func TestRegionCheckpointAnchorsAndRefusesForks(t *testing.T) {
	src, dst := testPrefixes(t)
	c, _ := NewChain(testGenesis(t, 4))
	recipient := gcrypto.DeterministicKeyPair(99).Address()
	rc := shard.Receipt{
		ID:     gcrypto.HashBytes([]byte("lock")),
		Source: src, Dest: dst, Recipient: recipient, Amount: 5, LockHeight: 2,
	}
	cp := &shard.RegionCheckpoint{
		Region: src, Era: 0, Height: 2,
		Root:     gcrypto.HashBytes([]byte("region-head")),
		Receipts: []shard.Receipt{rc},
	}
	// Non-endorser senders are refused, like TxConfig.
	outsider := shardTx(50, 1, types.TxRegionCheckpoint, shard.EncodeCheckpoint(cp))
	if err := c.AddBlock(nextBlock(c, []types.Transaction{outsider}, 0)); !errors.Is(err, ErrConfigSender) {
		t.Fatalf("outsider checkpoint: %v", err)
	}
	if err := c.AddBlock(nextBlock(c, []types.Transaction{shardTx(0, 1, types.TxRegionCheckpoint, shard.EncodeCheckpoint(cp))}, 0)); err != nil {
		t.Fatal(err)
	}
	pt, ok := c.AnchorLatest(src)
	if !ok || pt.Height != 2 || pt.Root != cp.Root {
		t.Fatalf("anchored = %+v, %v", pt, ok)
	}
	if !c.AnchorCovered(rc.ID) {
		t.Fatal("receipt not covered")
	}
	// A conflicting root at the same (region, height) is a cross-region
	// fork proof: the block refuses to commit.
	fork := *cp
	fork.Root = gcrypto.HashBytes([]byte("other-head"))
	fork.Receipts = nil
	forkTx := shardTx(1, 1, types.TxRegionCheckpoint, shard.EncodeCheckpoint(&fork))
	if err := c.AddBlock(nextBlock(c, []types.Transaction{forkTx}, 1)); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("fork checkpoint committed: %v", err)
	}
}

func TestReceiptStateSurvivesSnapshot(t *testing.T) {
	src, dst := testPrefixes(t)
	c, _ := NewChain(fundedGenesis(t, 4, 100))
	recipient := gcrypto.DeterministicKeyPair(99).Address()
	lock := shardTx(0, 1, types.TxTransferLock, shard.EncodeTransfer(&shard.Transfer{
		Source: src, Dest: dst, Recipient: recipient, Amount: 9,
	}))
	applyRc := shard.Receipt{
		ID:     gcrypto.HashBytes([]byte("inbound")),
		Source: dst, Dest: src, Recipient: recipient, Amount: 11, LockHeight: 1,
	}
	cp := &shard.RegionCheckpoint{
		Region: src, Height: 1, Root: gcrypto.HashBytes([]byte("h1")),
	}
	txs := []types.Transaction{
		lock,
		shardTx(1, 1, types.TxTransferApply, shard.EncodeReceipt(&applyRc)),
		shardTx(2, 1, types.TxRegionCheckpoint, shard.EncodeCheckpoint(cp)),
	}
	if err := c.AddBlock(nextBlock(c, txs, 0)); err != nil {
		t.Fatal(err)
	}
	st := c.ExportState()
	if len(st.Outbound) != 1 || len(st.Applied) != 1 || len(st.Anchors) != 1 {
		t.Fatalf("export: %d outbound, %d applied, %d anchors", len(st.Outbound), len(st.Applied), len(st.Anchors))
	}
	// Round-trip through the canonical codec.
	dec, err := DecodeChainState(EncodeChainState(st))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Root() != st.Root() {
		t.Fatal("codec round trip changed the root")
	}
	restored, err := RestoreChain(c.Genesis(), dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.OutboundReceipts(0)) != 1 {
		t.Fatal("outbound lost in restore")
	}
	if _, ok := restored.ReceiptApplied(applyRc.ID); !ok {
		t.Fatal("applied index lost in restore")
	}
	if !restored.AnchorCovered(applyRc.ID) && restored.AnchorRegions() == nil {
		t.Fatal("anchor index lost in restore")
	}
	if pt, ok := restored.AnchorLatest(src); !ok || pt.Height != 1 {
		t.Fatalf("restored anchor latest: %+v, %v", pt, ok)
	}
	// The restored chain still refuses the fork.
	fork := &shard.RegionCheckpoint{Region: src, Height: 1, Root: gcrypto.HashBytes([]byte("other"))}
	forkTx := shardTx(0, 2, types.TxRegionCheckpoint, shard.EncodeCheckpoint(fork))
	if err := restored.AddBlock(nextBlock(restored, []types.Transaction{forkTx}, 0)); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("restored chain committed fork: %v", err)
	}
}
