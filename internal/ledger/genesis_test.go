package ledger

import (
	"strings"
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/types"
)

// testGenesis builds a valid genesis with n deterministic endorsers.
func testGenesis(t testing.TB, n int) *Genesis {
	t.Helper()
	g := &Genesis{
		ChainID:   "gpbft-test",
		Timestamp: time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC),
		Policy:    DefaultPolicy(),
	}
	for i := 0; i < n; i++ {
		kp := gcrypto.DeterministicKeyPair(i)
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: kp.Address(),
			PubKey:  kp.Public(),
			Geohash: geo.MustEncode(geo.Point{Lng: 114.1 + float64(i)*0.001, Lat: 22.3}, geo.CSCPrecision),
		})
	}
	return g
}

func TestGenesisValidate(t *testing.T) {
	if err := testGenesis(t, 4).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenesisValidateErrors(t *testing.T) {
	g := testGenesis(t, 4)
	g.ChainID = ""
	if g.Validate() == nil {
		t.Error("empty chain ID must fail")
	}

	g = testGenesis(t, 3)
	if g.Validate() == nil {
		t.Error("fewer endorsers than minimum must fail")
	}

	g = testGenesis(t, 41)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "maximum") {
		t.Errorf("more endorsers than maximum must fail, got %v", err)
	}

	g = testGenesis(t, 4)
	g.Endorsers = append(g.Endorsers[:0:0], g.Endorsers...)
	g.Endorsers[1] = g.Endorsers[0]
	if g.Validate() == nil {
		t.Error("duplicate endorser must fail")
	}

	g = testGenesis(t, 4)
	g.Endorsers[0].Address = gcrypto.Address{}
	if g.Validate() == nil {
		t.Error("zero address must fail")
	}

	g = testGenesis(t, 4)
	g.Policy.Blacklist = []gcrypto.Address{g.Endorsers[0].Address}
	if g.Validate() == nil {
		t.Error("blacklisted genesis endorser must fail")
	}
}

func TestPolicyValidateErrors(t *testing.T) {
	cases := []func(*AdmittancePolicy){
		func(p *AdmittancePolicy) { p.MinEndorsers = 3 },
		func(p *AdmittancePolicy) { p.MaxEndorsers = p.MinEndorsers - 1 },
		func(p *AdmittancePolicy) { p.QualificationWindow = 0 },
		func(p *AdmittancePolicy) { p.MinReports = 0 },
		func(p *AdmittancePolicy) { p.EraPeriod = 0 },
		func(p *AdmittancePolicy) { p.SwitchPeriod = -1 },
	}
	for i, mutate := range cases {
		p := DefaultPolicy()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: mutated policy must fail validation", i)
		}
	}
	p := DefaultPolicy()
	if err := p.Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
}

func TestPolicyLists(t *testing.T) {
	a := gcrypto.DeterministicKeyPair(1).Address()
	b := gcrypto.DeterministicKeyPair(2).Address()
	p := DefaultPolicy()
	p.Blacklist = []gcrypto.Address{a}
	p.Whitelist = []gcrypto.Address{b}
	if !p.Blacklisted(a) || p.Blacklisted(b) {
		t.Error("blacklist lookup wrong")
	}
	if !p.Whitelisted(b) || p.Whitelisted(a) {
		t.Error("whitelist lookup wrong")
	}
}

func TestPolicyInRegion(t *testing.T) {
	p := DefaultPolicy()
	if !p.InRegion(geo.Point{Lng: 170, Lat: 80}) {
		t.Error("zero region must accept everything")
	}
	p.Region = geo.NewRegion(geo.Point{Lng: 114, Lat: 22}, geo.Point{Lng: 115, Lat: 23})
	if !p.InRegion(geo.Point{Lng: 114.5, Lat: 22.5}) {
		t.Error("inside point rejected")
	}
	if p.InRegion(geo.Point{Lng: 100, Lat: 22.5}) {
		t.Error("outside point accepted")
	}
}

func TestGenesisHashCommitsToPolicy(t *testing.T) {
	a := testGenesis(t, 4)
	b := testGenesis(t, 4)
	if a.Hash() != b.Hash() {
		t.Fatal("identical genesis must hash equal")
	}
	b.Policy.MaxEndorsers = 80
	if a.Hash() == b.Hash() {
		t.Fatal("policy change must change genesis hash")
	}
}

func TestGenesisBlock(t *testing.T) {
	g := testGenesis(t, 4)
	gb := g.Block()
	if gb.Header.Height != 0 {
		t.Error("genesis block must have height 0")
	}
	if gb.Header.TxRoot != g.Hash() {
		t.Error("genesis block must commit to the genesis hash")
	}
	if len(gb.Txs) != 0 {
		t.Error("genesis block carries no transactions")
	}
}

func TestGenesisEndorserAddresses(t *testing.T) {
	g := testGenesis(t, 5)
	addrs := g.EndorserAddresses()
	if len(addrs) != 5 {
		t.Fatalf("got %d addresses", len(addrs))
	}
	for i, e := range g.Endorsers {
		if addrs[i] != e.Address {
			t.Fatal("address order must match endorser order")
		}
	}
}
