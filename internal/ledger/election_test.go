package ledger

import (
	"testing"
	"testing/quick"
	"time"

	"gpbft/internal/geo"
)

var (
	fixedSpot  = geo.Point{Lng: 114.1795, Lat: 22.3050}
	otherSpot  = geo.Point{Lng: 114.2638, Lat: 22.3363}
	tableEpoch = time.Date(2019, 8, 5, 18, 0, 0, 0, time.UTC)
)

func report(addr string, p geo.Point, at time.Time) geo.Report {
	return geo.Report{Location: p, Timestamp: at, Address: addr}
}

// TestElectionTablePaperTableII replays the exact rows of Table II and
// checks the geographic timer column.
func TestElectionTablePaperTableII(t *testing.T) {
	table := NewElectionTable()
	times := []time.Time{
		time.Date(2019, 8, 5, 18, 0, 0, 0, time.UTC),
		time.Date(2019, 8, 5, 18, 56, 4, 0, time.UTC),
		time.Date(2019, 8, 6, 0, 0, 0, 0, time.UTC),
		time.Date(2019, 8, 6, 6, 0, 0, 0, time.UTC),
		time.Date(2019, 8, 6, 12, 0, 0, 0, time.UTC),
	}
	// The paper's Table II prints 06:56:04 / 12:56:04 / 18:56:04 for
	// rows 3-5, which is arithmetically inconsistent with its own
	// timestamps (row 3 is exactly 6h after row 1 but the printed timer
	// gains 6h over row 2 whose gap was 5h03m56s). We implement the
	// stated semantics — "how long an IoT device does not change its
	// position" — i.e. timer = timestamp - first report at current CSC.
	wantTimers := []time.Duration{
		0,
		56*time.Minute + 4*time.Second,
		6 * time.Hour,
		12 * time.Hour,
		18 * time.Hour,
	}
	for i, ts := range times {
		e, err := table.Record(report("device1", fixedSpot, ts))
		if err != nil {
			t.Fatalf("row %d: %v", i+1, err)
		}
		if e.Timer != wantTimers[i] {
			t.Errorf("row %d: timer %v, want %v", i+1, e.Timer, wantTimers[i])
		}
	}
	hist := table.History("device1")
	if len(hist) != 5 {
		t.Fatalf("history has %d rows, want 5", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].CSC.Geohash != hist[0].CSC.Geohash {
			t.Error("CSC must be constant for a fixed device")
		}
	}
}

func TestElectionTableTimerResetsOnMove(t *testing.T) {
	table := NewElectionTable()
	if _, err := table.Record(report("d", fixedSpot, tableEpoch)); err != nil {
		t.Fatal(err)
	}
	if _, err := table.Record(report("d", fixedSpot, tableEpoch.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	if got := table.Timer("d"); got != time.Hour {
		t.Fatalf("timer %v, want 1h", got)
	}
	e, err := table.Record(report("d", otherSpot, tableEpoch.Add(2*time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	if e.Timer != 0 {
		t.Fatalf("timer after move %v, want 0", e.Timer)
	}
	// Staying at the new spot accumulates again.
	e, _ = table.Record(report("d", otherSpot, tableEpoch.Add(3*time.Hour)))
	if e.Timer != time.Hour {
		t.Fatalf("timer %v, want 1h", e.Timer)
	}
}

func TestElectionTableRejects(t *testing.T) {
	table := NewElectionTable()
	if _, err := table.Record(geo.Report{}); err != ErrBadReport {
		t.Errorf("invalid report: %v", err)
	}
	if _, err := table.Record(report("d", fixedSpot, tableEpoch.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	if _, err := table.Record(report("d", fixedSpot, tableEpoch)); err != ErrStaleReport {
		t.Errorf("stale report: %v", err)
	}
}

func TestElectionTableUnknownDevice(t *testing.T) {
	table := NewElectionTable()
	if table.Timer("ghost") != 0 {
		t.Error("unknown device must have zero timer")
	}
	if table.History("ghost") != nil {
		t.Error("unknown device must have nil history")
	}
	if _, ok := table.LatestEntry("ghost"); ok {
		t.Error("unknown device must have no latest entry")
	}
	if table.ReportsSince("ghost", tableEpoch) != nil {
		t.Error("unknown device must have no reports")
	}
}

func TestReportsSinceIsGvt(t *testing.T) {
	table := NewElectionTable()
	for i := 0; i < 10; i++ {
		if _, err := table.Record(report("d", fixedSpot, tableEpoch.Add(time.Duration(i)*time.Minute))); err != nil {
			t.Fatal(err)
		}
	}
	got := table.ReportsSince("d", tableEpoch.Add(5*time.Minute))
	if len(got) != 5 {
		t.Fatalf("G(v,t) returned %d rows, want 5", len(got))
	}
	if got[0].Timestamp != tableEpoch.Add(5*time.Minute) {
		t.Error("cut must be inclusive")
	}
	if len(table.ReportsSince("d", tableEpoch.Add(time.Hour))) != 0 {
		t.Error("future cut must return nothing")
	}
	if len(table.ReportsSince("d", tableEpoch.Add(-time.Hour))) != 10 {
		t.Error("past cut must return everything")
	}
}

func TestResetTimer(t *testing.T) {
	table := NewElectionTable()
	table.Record(report("d", fixedSpot, tableEpoch))
	table.Record(report("d", fixedSpot, tableEpoch.Add(10*time.Hour)))
	if table.Timer("d") != 10*time.Hour {
		t.Fatal("precondition failed")
	}
	table.ResetTimer("d", tableEpoch.Add(10*time.Hour))
	if got := table.Timer("d"); got != 0 {
		t.Fatalf("timer after reset %v, want 0", got)
	}
	// Continuing at the same spot accrues from the reset point.
	e, _ := table.Record(report("d", fixedSpot, tableEpoch.Add(13*time.Hour)))
	if e.Timer != 3*time.Hour {
		t.Fatalf("timer %v, want 3h", e.Timer)
	}
	// Resetting an unknown device is a no-op.
	table.ResetTimer("ghost", tableEpoch)
}

func TestCellOccupantsSybilSignal(t *testing.T) {
	table := NewElectionTable()
	table.Record(report("honest", fixedSpot, tableEpoch))
	table.Record(report("sybil-1", fixedSpot, tableEpoch.Add(time.Second)))
	table.Record(report("elsewhere", otherSpot, tableEpoch.Add(time.Second)))

	csc, _ := geo.NewCSC(fixedSpot, "honest")
	occ := table.CellOccupants(csc.Geohash, tableEpoch)
	if len(occ) != 2 {
		t.Fatalf("occupants %v, want honest+sybil-1", occ)
	}
	if occ[0] != "honest" || occ[1] != "sybil-1" {
		t.Fatalf("occupants %v", occ)
	}
	// A cut after both reports sees nobody.
	if got := table.CellOccupants(csc.Geohash, tableEpoch.Add(time.Minute)); len(got) != 0 {
		t.Fatalf("late cut occupants %v", got)
	}
	if got := table.CellOccupants("zzzzzzzzzz", tableEpoch); got != nil {
		t.Fatalf("empty cell occupants %v", got)
	}
}

func TestDevicesAndLen(t *testing.T) {
	table := NewElectionTable()
	table.Record(report("b", fixedSpot, tableEpoch))
	table.Record(report("a", otherSpot, tableEpoch))
	if table.Len() != 2 {
		t.Fatalf("Len=%d", table.Len())
	}
	ds := table.Devices()
	if len(ds) != 2 || ds[0] != "a" || ds[1] != "b" {
		t.Fatalf("Devices=%v, want sorted [a b]", ds)
	}
}

func TestPrune(t *testing.T) {
	table := NewElectionTable()
	for i := 0; i < 6; i++ {
		table.Record(report("d", fixedSpot, tableEpoch.Add(time.Duration(i)*time.Hour)))
	}
	table.Record(report("old", otherSpot, tableEpoch))
	table.Prune(tableEpoch.Add(3 * time.Hour))
	if got := len(table.History("d")); got != 3 {
		t.Fatalf("pruned history has %d rows, want 3", got)
	}
	if len(table.History("old")) != 0 {
		t.Fatal("silent old device should have no rows")
	}
	// Timer credit survives pruning: the anchor is preserved.
	if got := table.Timer("d"); got != 5*time.Hour {
		t.Fatalf("timer after prune %v, want 5h", got)
	}
	// Cell index pruned too.
	csc, _ := geo.NewCSC(otherSpot, "old")
	if got := table.CellOccupants(csc.Geohash, tableEpoch.Add(-time.Hour)); len(got) != 0 {
		t.Fatalf("stale cell occupants %v", got)
	}
}

func TestLatestEntry(t *testing.T) {
	table := NewElectionTable()
	table.Record(report("d", fixedSpot, tableEpoch))
	table.Record(report("d", fixedSpot, tableEpoch.Add(time.Hour)))
	e, ok := table.LatestEntry("d")
	if !ok || e.Timestamp != tableEpoch.Add(time.Hour) {
		t.Fatalf("latest entry %v ok=%v", e, ok)
	}
}

// Property: the geographic timer is monotone non-decreasing while the
// device stays in one cell, and equals last-first timestamps.
func TestTimerMonotoneProperty(t *testing.T) {
	f := func(gaps []uint16) bool {
		if len(gaps) == 0 {
			return true
		}
		if len(gaps) > 50 {
			gaps = gaps[:50]
		}
		table := NewElectionTable()
		now := tableEpoch
		var first time.Time
		var prev time.Duration
		for i, g := range gaps {
			now = now.Add(time.Duration(g) * time.Second)
			if i == 0 {
				first = now
			}
			e, err := table.Record(report("d", fixedSpot, now))
			if err != nil {
				return false
			}
			if e.Timer < prev {
				return false
			}
			prev = e.Timer
		}
		return prev == now.Sub(first)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
