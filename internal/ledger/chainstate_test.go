package ledger

import (
	"bytes"
	"errors"
	"testing"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// grow commits n blocks (one signed tx each) on top of c.
func grow(t *testing.T, c *Chain, n int) []*types.Block {
	t.Helper()
	var out []*types.Block
	for i := 0; i < n; i++ {
		nonce := c.Height() + 1
		b := nextBlock(c, []types.Transaction{signedTx(0, nonce, 1)}, 0)
		if err := c.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func TestChainStateRoundTrip(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	grow(t, c, 3)
	st := c.ExportState()
	got, err := DecodeChainState(EncodeChainState(st))
	if err != nil {
		t.Fatal(err)
	}
	if got.Root() != st.Root() {
		t.Fatal("round trip changed the state root")
	}
	if got.Height() != 3 || got.Era != st.Era || got.GenesisHash != st.GenesisHash {
		t.Fatalf("round trip mangled header fields: %+v", got)
	}
	// Trailing bytes are rejected — one state, nothing else.
	if _, err := DecodeChainState(append(EncodeChainState(st), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestExportStateCertIndependent is the determinism core of snapshot
// trust: the exported bytes must not depend on which commit
// certificate (if any) a node stored with the checkpoint block, since
// every node aggregates a different 2f+1 vote subset.
func TestExportStateCertIndependent(t *testing.T) {
	g := testGenesis(t, 4)
	bare, _ := NewChain(g)
	certed, _ := NewChain(g)

	b := nextBlock(bare, []types.Transaction{signedTx(0, 1, 1)}, 0)
	if err := bare.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	withCert := *b
	hash := b.Hash()
	vote := func(i int) types.Vote {
		kp := gcrypto.DeterministicKeyPair(i)
		return types.Vote{Endorser: kp.Address(), Signature: kp.Sign(types.VoteDigest(hash, 0, 0))}
	}
	withCert.Cert = &types.Certificate{BlockHash: hash, Era: 0, View: 0,
		Votes: []types.Vote{vote(0), vote(1), vote(2)}}
	if err := certed.AddBlock(&withCert); err != nil {
		t.Fatal(err)
	}

	a, bb := EncodeChainState(bare.ExportState()), EncodeChainState(certed.ExportState())
	if !bytes.Equal(a, bb) {
		t.Fatal("exported state differs depending on the stored certificate")
	}
	if certed.ExportState().Base.Cert != nil {
		t.Fatal("exported base block still carries a certificate")
	}
}

func TestRestoreChainRejectsWrongGenesis(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	grow(t, c, 2)
	st := c.ExportState()
	other := testGenesis(t, 4)
	other.ChainID = "another-chain"
	if _, err := RestoreChain(other, st); !errors.Is(err, ErrStateGenesis) {
		t.Fatalf("want ErrStateGenesis, got %v", err)
	}
}

func TestRestoreChainRejectsTamperedBase(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	grow(t, c, 2)
	st := c.ExportState()
	st.Base.Txs[0].Fee = 999 // breaks the tx root
	if _, err := RestoreChain(c.genesis, st); !errors.Is(err, ErrStateShape) {
		t.Fatalf("want ErrStateShape, got %v", err)
	}
}

func TestRestoreChainRejectsIndexBeyondCheckpoint(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	grow(t, c, 2)
	st := c.ExportState()
	st.TxIndex[0].Loc.Height = st.Height() + 7
	if _, err := RestoreChain(c.genesis, st); !errors.Is(err, ErrStateShape) {
		t.Fatalf("want ErrStateShape, got %v", err)
	}
}

// TestRestoreThenTailMatchesReplay: a chain restored from a mid-point
// snapshot and fed the remaining blocks must converge to the same root
// as the chain that replayed everything from genesis.
func TestRestoreThenTailMatchesReplay(t *testing.T) {
	g := testGenesis(t, 4)
	full, _ := NewChain(g)
	blocks := grow(t, full, 6)

	replay, _ := NewChain(g)
	for _, b := range blocks[:3] {
		if err := replay.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := RestoreChain(g, replay.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Height() != 3 || restored.BaseHeight() != 3 {
		t.Fatalf("restored height=%d base=%d", restored.Height(), restored.BaseHeight())
	}
	for _, b := range blocks[3:] {
		if err := restored.AddBlock(b); err != nil {
			t.Fatalf("tail block %d: %v", b.Header.Height, err)
		}
	}
	if restored.ExportState().Root() != full.ExportState().Root() {
		t.Fatal("restored+tailed root differs from fully replayed root")
	}
}

func TestInstallStateFastForward(t *testing.T) {
	g := testGenesis(t, 4)
	ahead, _ := NewChain(g)
	grow(t, ahead, 5)
	st := ahead.ExportState()

	lag, _ := NewChain(g)
	grow(t, lag, 1)
	if err := lag.InstallState(st); err != nil {
		t.Fatal(err)
	}
	if lag.Height() != 5 || lag.BaseHeight() != 5 {
		t.Fatalf("after install height=%d base=%d", lag.Height(), lag.BaseHeight())
	}
	if lag.ExportState().Root() != st.Root() {
		t.Fatal("installed chain exports a different root")
	}
	// History below the checkpoint is gone.
	if _, err := lag.BlockAt(2); err == nil {
		t.Fatal("pre-checkpoint block still reachable")
	}
}

func TestInstallStateRejectsStale(t *testing.T) {
	g := testGenesis(t, 4)
	ahead, _ := NewChain(g)
	grow(t, ahead, 4)
	st := ahead.ExportState()

	same, _ := NewChain(g)
	grow(t, same, 4)
	if err := same.InstallState(st); !errors.Is(err, ErrStateStale) {
		t.Fatalf("want ErrStateStale at equal height, got %v", err)
	}
	grow(t, same, 1)
	if err := same.InstallState(st); !errors.Is(err, ErrStateStale) {
		t.Fatalf("want ErrStateStale behind head, got %v", err)
	}
}

func TestCompactBelow(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	blocks := grow(t, c, 5)
	c.CompactBelow(3)
	if c.BaseHeight() != 3 {
		t.Fatalf("base %d, want 3", c.BaseHeight())
	}
	if _, err := c.BlockAt(2); err == nil {
		t.Fatal("compacted block still reachable by height")
	}
	if _, ok := c.ByHash(blocks[1].Hash()); ok {
		t.Fatal("compacted block still reachable by hash")
	}
	for h := uint64(3); h <= 5; h++ {
		if _, err := c.BlockAt(h); err != nil {
			t.Fatalf("kept block %d unreachable: %v", h, err)
		}
	}
	// The chain still extends normally after compaction.
	grow(t, c, 1)
	if c.Height() != 6 {
		t.Fatalf("height %d after post-compaction append", c.Height())
	}
	// Compacting past the head clamps to the head instead of emptying.
	c.CompactBelow(99)
	if c.BaseHeight() != 6 || c.Height() != 6 {
		t.Fatalf("clamp failed: base=%d height=%d", c.BaseHeight(), c.Height())
	}
}
