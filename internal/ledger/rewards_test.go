package ledger

import (
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

func rewardBlock(proposer gcrypto.Address, fees ...uint64) *types.Block {
	txs := make([]types.Transaction, len(fees))
	for i, f := range fees {
		txs[i] = signedTx(i+10, uint64(i), f)
	}
	return types.NewBlock(types.BlockHeader{
		Height: 1, Proposer: proposer, Timestamp: time.Unix(1, 0),
	}, txs)
}

func addrs(n int) []gcrypto.Address {
	out := make([]gcrypto.Address, n)
	for i := range out {
		out[i] = gcrypto.DeterministicKeyPair(i).Address()
	}
	return out
}

func TestRewardSplit70_30(t *testing.T) {
	committee := addrs(4)
	r := NewRewardLedger()
	b := rewardBlock(committee[0], 100)
	r.ApplyBlock(b, committee, nil)

	// 70 to proposer; 30/3 = 10 each to the other three.
	if got := r.Balance(committee[0]); got != 70 {
		t.Errorf("proposer balance %d, want 70", got)
	}
	for i := 1; i < 4; i++ {
		if got := r.Balance(committee[i]); got != 10 {
			t.Errorf("endorser %d balance %d, want 10", i, got)
		}
	}
	if r.TotalDistributed() != 100 {
		t.Errorf("total %d, want 100 (no fees lost)", r.TotalDistributed())
	}
}

func TestRewardRemainderToProposer(t *testing.T) {
	committee := addrs(4)
	r := NewRewardLedger()
	// fees=101: producer cut 70, endorser pot 31, per-endorser 10, rem 1.
	r.ApplyBlock(rewardBlock(committee[0], 101), committee, nil)
	if got := r.Balance(committee[0]); got != 71 {
		t.Errorf("proposer balance %d, want 71", got)
	}
	if r.TotalDistributed() != 101 {
		t.Errorf("total %d, want 101", r.TotalDistributed())
	}
}

func TestRewardZeroFees(t *testing.T) {
	committee := addrs(4)
	r := NewRewardLedger()
	r.ApplyBlock(rewardBlock(committee[0]), committee, nil)
	if r.TotalDistributed() != 0 {
		t.Error("no fees must distribute nothing")
	}
	if r.BlocksProduced(committee[0]) != 1 {
		t.Error("production count must still increment")
	}
}

func TestRewardExcludedEndorser(t *testing.T) {
	committee := addrs(4)
	r := NewRewardLedger()
	excluded := map[gcrypto.Address]bool{committee[3]: true}
	r.ApplyBlock(rewardBlock(committee[0], 100), committee, excluded)
	if got := r.Balance(committee[3]); got != 0 {
		t.Errorf("excluded endorser earned %d, want 0", got)
	}
	// 30/2 = 15 each for the two remaining endorsers.
	if got := r.Balance(committee[1]); got != 15 {
		t.Errorf("endorser balance %d, want 15", got)
	}
}

func TestRewardSoloProposer(t *testing.T) {
	committee := addrs(1)
	r := NewRewardLedger()
	r.ApplyBlock(rewardBlock(committee[0], 100), committee, nil)
	if got := r.Balance(committee[0]); got != 100 {
		t.Errorf("solo proposer balance %d, want all 100", got)
	}
}

func TestRewardAccounts(t *testing.T) {
	committee := addrs(4)
	r := NewRewardLedger()
	r.ApplyBlock(rewardBlock(committee[0], 100), committee, nil)
	accounts := r.Accounts()
	if len(accounts) != 4 {
		t.Fatalf("accounts %d, want 4", len(accounts))
	}
	for i := 1; i < len(accounts); i++ {
		if !accounts[i-1].Less(accounts[i]) {
			t.Fatal("accounts must be sorted")
		}
	}
}

func TestRewardAccumulates(t *testing.T) {
	committee := addrs(4)
	r := NewRewardLedger()
	r.ApplyBlock(rewardBlock(committee[0], 100), committee, nil)
	r.ApplyBlock(rewardBlock(committee[0], 100), committee, nil)
	if got := r.Balance(committee[0]); got != 140 {
		t.Errorf("proposer balance %d, want 140", got)
	}
	if r.BlocksProduced(committee[0]) != 2 {
		t.Error("production count must accumulate")
	}
}
