package ledger

import (
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// TestForkProposerForfeitsRewards: after fork evidence is recorded
// against an endorser, subsequent blocks stop paying it endorsement
// shares.
func TestForkProposerForfeitsRewards(t *testing.T) {
	c, err := NewChain(testGenesis(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	forker := gcrypto.DeterministicKeyPair(3).Address()

	// Block 1 pays everyone: 70 to proposer(0), 10 each to 1,2,3.
	b1 := nextBlock(c, []types.Transaction{signedTx(0, 1, 100)}, 0)
	if err := c.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	if got := c.Rewards().Balance(forker); got != 10 {
		t.Fatalf("pre-fork balance %d, want 10", got)
	}

	// The forker presents a conflicting block at height 1.
	conflict := nextBlock(c, nil, 3)
	conflict.Header.Height = 1
	conflict.Header.PrevHash = b1.Header.PrevHash
	conflict.Header.Timestamp = b1.Header.Timestamp.Add(time.Second)
	if err := c.AddBlock(conflict); err == nil {
		t.Fatal("conflicting block must be rejected")
	}
	if len(c.Forks()) != 1 {
		t.Fatal("fork evidence missing")
	}

	// Block 2: the forker is excluded; 30 splits between the two
	// remaining endorsers (15 each).
	b2 := nextBlock(c, []types.Transaction{signedTx(0, 2, 100)}, 0)
	if err := c.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	if got := c.Rewards().Balance(forker); got != 10 {
		t.Fatalf("forker balance %d after fork, want frozen at 10", got)
	}
	honest := gcrypto.DeterministicKeyPair(1).Address()
	if got := c.Rewards().Balance(honest); got != 10+15 {
		t.Fatalf("honest endorser balance %d, want 25", got)
	}
}
