package ledger

import (
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

func wrec(witness, subject int, seen bool, at time.Time) WitnessRecord {
	return WitnessRecord{
		Witness:   gcrypto.DeterministicKeyPair(witness).Address(),
		Subject:   gcrypto.DeterministicKeyPair(subject).Address(),
		Geohash:   "wecnyhwbp1",
		Seen:      seen,
		Timestamp: at,
	}
}

func TestWitnessIndexRecordQuery(t *testing.T) {
	idx := NewWitnessIndex()
	subject := gcrypto.DeterministicKeyPair(9).Address()
	for i := 0; i < 5; i++ {
		idx.Record(wrec(i, 9, i%2 == 0, tableEpoch.Add(time.Duration(i)*time.Minute)))
	}
	if idx.Len() != 5 {
		t.Fatalf("Len=%d", idx.Len())
	}
	got := idx.StatementsFor(subject, tableEpoch.Add(2*time.Minute))
	if len(got) != 3 {
		t.Fatalf("window returned %d, want 3", len(got))
	}
	if got[0].Timestamp != tableEpoch.Add(2*time.Minute) {
		t.Fatal("cut must be inclusive")
	}
	if idx.StatementsFor(gcrypto.DeterministicKeyPair(55).Address(), tableEpoch) != nil {
		t.Fatal("unknown subject must return nil")
	}
}

func TestWitnessIndexPrune(t *testing.T) {
	idx := NewWitnessIndex()
	for i := 0; i < 6; i++ {
		idx.Record(wrec(0, 9, true, tableEpoch.Add(time.Duration(i)*time.Hour)))
	}
	idx.Record(wrec(0, 10, true, tableEpoch))
	idx.Prune(tableEpoch.Add(3 * time.Hour))
	subject := gcrypto.DeterministicKeyPair(9).Address()
	if got := len(idx.StatementsFor(subject, tableEpoch)); got != 3 {
		t.Fatalf("after prune: %d, want 3", got)
	}
	old := gcrypto.DeterministicKeyPair(10).Address()
	if idx.StatementsFor(old, tableEpoch) != nil {
		t.Fatal("fully pruned subject must be gone")
	}
	if idx.Len() != 3 {
		t.Fatalf("Len=%d after prune", idx.Len())
	}
}

func TestChainRecordsWitnessTxs(t *testing.T) {
	c, err := NewChain(testGenesis(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	subject := gcrypto.DeterministicKeyPair(9).Address()
	tx := types.Transaction{
		Type: types.TxWitness,
		Payload: types.EncodeWitnessStatement(&types.WitnessStatement{
			Subject: subject, Geohash: "wecnyhwbp1", Seen: true,
		}),
		Nonce: 1,
		Geo:   types.GeoInfo{Location: fixedSpot, Timestamp: tableEpoch},
	}
	tx.Sign(gcrypto.DeterministicKeyPair(0))
	if err := c.AddBlock(nextBlock(c, []types.Transaction{tx}, 0)); err != nil {
		t.Fatal(err)
	}
	recs := c.Witnesses().StatementsFor(subject, tableEpoch.Add(-time.Hour))
	if len(recs) != 1 {
		t.Fatalf("witness index has %d records", len(recs))
	}
	if recs[0].Witness != gcrypto.DeterministicKeyPair(0).Address() || !recs[0].Seen {
		t.Fatalf("record mangled: %+v", recs[0])
	}
}
