// Package ledger implements the blockchain substrate underneath both
// consensus protocols: the genesis configuration with its admittance
// policies (paper Section III-C), the append-only chain with fork
// detection, the election table of Section III-B3 (paper Table II)
// including the chain query G(v,t) used by Algorithm 1, and the 70/30
// fee reward accounting of the incentive mechanism (Section III-B5).
package ledger

import (
	"errors"
	"fmt"
	"time"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/types"
)

// Default policy values drawn from the paper's experiment setup
// (Section V-A) and protocol description.
const (
	// DefaultMinEndorsers: "the minimal ... value stated in Section
	// III-C is set as 4".
	DefaultMinEndorsers = 4
	// DefaultMaxEndorsers: "...and maximal values ... 40".
	DefaultMaxEndorsers = 40
	// DefaultQualificationWindow: "An IoT device stays at the same
	// location (has the same CSC) for 72 hours will be elected as an
	// endorser" (Section III-B3).
	DefaultQualificationWindow = 72 * time.Hour
	// DefaultMinReports is the threshold n of Algorithm 1: the minimum
	// number of geographic reports a node must have filed during the
	// authentication lookback to stay qualified.
	DefaultMinReports = 3
	// DefaultEraPeriod is T, the interval between era switches.
	DefaultEraPeriod = 10 * time.Second
	// DefaultSwitchPeriod is the consensus pause during an era switch;
	// the paper measures "about 0.25 second" (Section V-B).
	DefaultSwitchPeriod = 250 * time.Millisecond
	// DefaultReportInterval is how often devices upload their location.
	DefaultReportInterval = time.Second
	// DefaultSybilWindow is how close in time two same-cell reports
	// from distinct identities must be to count as the simultaneous
	// occupancy Section IV-A1 forbids ("different nodes cannot report
	// the same geographic information at the same time"): two report
	// intervals, so one device genuinely replacing another at a
	// location is not misread as a Sybil pair.
	DefaultSybilWindow = 2 * DefaultReportInterval
)

// AdmittancePolicy is the genesis-block policy set of Section III-C:
// "the genesis block contains extra admittance policies, such as
// blacklist, whitelist, minimum number, and maximum number of
// endorsers."
type AdmittancePolicy struct {
	// Blacklist: "Nodes in the blacklist will be forbidden to join the
	// consensus committee."
	Blacklist []gcrypto.Address
	// Whitelist: "Nodes in the whitelist can be identified as endorsers
	// directly without any qualifications."
	Whitelist []gcrypto.Address
	// MinEndorsers: below this the system stops committing transactions.
	MinEndorsers int
	// MaxEndorsers: at this size endorser election is suspended.
	MaxEndorsers int
	// Region bounds the deployment area; reports outside it are
	// rejected by geographic authentication. Zero means unconstrained.
	Region geo.Region
	// QualificationWindow is how long a candidate must hold one CSC.
	QualificationWindow time.Duration
	// MinReports is Algorithm 1's threshold n.
	MinReports int
	// EraPeriod is Algorithm 1's / Section III-E's T.
	EraPeriod time.Duration
	// SwitchPeriod is the consensus pause for one era switch.
	SwitchPeriod time.Duration
	// ReportInterval is the expected device location-upload period.
	ReportInterval time.Duration
	// MinWitnesses, when positive, requires a candidate's claimed cell
	// to be confirmed by at least this many distinct endorser witness
	// statements within the qualification window (the supervision
	// mechanism of the paper's threat model). Zero disables witnessing.
	MinWitnesses int
	// WitnessRangeMeters bounds how far a credible witness may be from
	// the cell it attests about; zero means any distance.
	WitnessRangeMeters float64
	// SybilWindow, when positive, turns two committed reports from
	// distinct identities in one CSC cell within the window into
	// SybilSameCell evidence (and makes such evidence records valid in
	// blocks). Zero disables Sybil evidence entirely.
	SybilWindow time.Duration
	// DisableExpulsion keeps committed evidence out of committee
	// decisions: offenders stay blacklisted on paper but are neither
	// expelled nor refused readmission. It is the ablation knob for
	// measuring accountability, genesis-level so that every replica
	// agrees on committee composition.
	DisableExpulsion bool
	// EndorserEndowment credits every genesis endorser this balance at
	// chain initialisation. Cross-region transfer locks debit the
	// sender (value is conserved across regions, never minted by a
	// transfer), so sharded deployments fund committee members up
	// front; zero keeps the historical empty reward ledger.
	EndorserEndowment uint64
}

// DefaultPolicy returns the paper's experiment policy.
func DefaultPolicy() AdmittancePolicy {
	return AdmittancePolicy{
		MinEndorsers:        DefaultMinEndorsers,
		MaxEndorsers:        DefaultMaxEndorsers,
		QualificationWindow: DefaultQualificationWindow,
		MinReports:          DefaultMinReports,
		EraPeriod:           DefaultEraPeriod,
		SwitchPeriod:        DefaultSwitchPeriod,
		ReportInterval:      DefaultReportInterval,
		SybilWindow:         DefaultSybilWindow,
	}
}

// Blacklisted reports whether addr is forbidden from the committee.
func (p *AdmittancePolicy) Blacklisted(addr gcrypto.Address) bool {
	for _, a := range p.Blacklist {
		if a == addr {
			return true
		}
	}
	return false
}

// Whitelisted reports whether addr bypasses qualification.
func (p *AdmittancePolicy) Whitelisted(addr gcrypto.Address) bool {
	for _, a := range p.Whitelist {
		if a == addr {
			return true
		}
	}
	return false
}

// InRegion reports whether a point is inside the deployment region
// (always true when no region is configured).
func (p *AdmittancePolicy) InRegion(pt geo.Point) bool {
	if p.Region.IsZero() {
		return true
	}
	return p.Region.Contains(pt)
}

// Validate checks internal consistency.
func (p *AdmittancePolicy) Validate() error {
	if p.MinEndorsers < 4 {
		return fmt.Errorf("ledger: MinEndorsers %d < 4 (PBFT needs 3f+1 with f>=1)", p.MinEndorsers)
	}
	if p.MaxEndorsers < p.MinEndorsers {
		return fmt.Errorf("ledger: MaxEndorsers %d < MinEndorsers %d", p.MaxEndorsers, p.MinEndorsers)
	}
	if p.QualificationWindow <= 0 {
		return errors.New("ledger: QualificationWindow must be positive")
	}
	if p.MinReports < 1 {
		return errors.New("ledger: MinReports must be at least 1")
	}
	if p.EraPeriod <= 0 {
		return errors.New("ledger: EraPeriod must be positive")
	}
	if p.SwitchPeriod < 0 {
		return errors.New("ledger: SwitchPeriod must be non-negative")
	}
	return nil
}

// Genesis is the chain's founding configuration: the core-node endorser
// set and the admittance policies, both "contained in the genesis
// block" (Section III-C).
type Genesis struct {
	ChainID   string
	Timestamp time.Time
	// Endorsers are the core nodes appointed at system initiation.
	Endorsers []types.EndorserInfo
	Policy    AdmittancePolicy
}

// Validate checks the genesis configuration.
func (g *Genesis) Validate() error {
	if g.ChainID == "" {
		return errors.New("ledger: genesis needs a chain ID")
	}
	if err := g.Policy.Validate(); err != nil {
		return err
	}
	if len(g.Endorsers) < g.Policy.MinEndorsers {
		return fmt.Errorf("ledger: genesis has %d endorsers, policy minimum is %d",
			len(g.Endorsers), g.Policy.MinEndorsers)
	}
	if len(g.Endorsers) > g.Policy.MaxEndorsers {
		return fmt.Errorf("ledger: genesis has %d endorsers, policy maximum is %d",
			len(g.Endorsers), g.Policy.MaxEndorsers)
	}
	seen := make(map[gcrypto.Address]bool, len(g.Endorsers))
	for _, e := range g.Endorsers {
		if e.Address.IsZero() {
			return errors.New("ledger: genesis endorser with zero address")
		}
		if seen[e.Address] {
			return fmt.Errorf("ledger: duplicate genesis endorser %s", e.Address.Short())
		}
		seen[e.Address] = true
		if g.Policy.Blacklisted(e.Address) {
			return fmt.Errorf("ledger: genesis endorser %s is blacklisted", e.Address.Short())
		}
	}
	return nil
}

// MarshalCanonical appends the canonical genesis encoding, which the
// genesis block commits to via its TxRoot field.
func (g *Genesis) MarshalCanonical(w *codec.Writer) {
	w.String("gpbft/genesis/v1")
	w.String(g.ChainID)
	w.Time(g.Timestamp)
	w.Count(len(g.Endorsers))
	for _, e := range g.Endorsers {
		w.Raw(e.Address[:])
		w.WriteBytes(e.PubKey)
		w.String(e.Geohash)
	}
	p := &g.Policy
	w.Count(len(p.Blacklist))
	for _, a := range p.Blacklist {
		w.Raw(a[:])
	}
	w.Count(len(p.Whitelist))
	for _, a := range p.Whitelist {
		w.Raw(a[:])
	}
	w.Uint32(uint32(p.MinEndorsers))
	w.Uint32(uint32(p.MaxEndorsers))
	w.Float64(p.Region.MinLng)
	w.Float64(p.Region.MinLat)
	w.Float64(p.Region.MaxLng)
	w.Float64(p.Region.MaxLat)
	w.Int64(int64(p.QualificationWindow))
	w.Uint32(uint32(p.MinReports))
	w.Int64(int64(p.EraPeriod))
	w.Int64(int64(p.SwitchPeriod))
	w.Int64(int64(p.ReportInterval))
	w.Uint32(uint32(p.MinWitnesses))
	w.Float64(p.WitnessRangeMeters)
	w.Int64(int64(p.SybilWindow))
	w.Bool(p.DisableExpulsion)
	w.Uint64(p.EndorserEndowment)
}

// Hash returns the digest of the canonical genesis encoding.
func (g *Genesis) Hash() gcrypto.Hash {
	return gcrypto.HashBytes(codec.Encode(g))
}

// Block synthesizes the genesis block: height 0, zero parent, and a
// TxRoot equal to the genesis configuration hash so every node agrees
// on the founding state.
func (g *Genesis) Block() *types.Block {
	return &types.Block{
		Header: types.BlockHeader{
			Height:    0,
			Era:       0,
			TxRoot:    g.Hash(),
			Timestamp: g.Timestamp,
		},
	}
}

// EndorserAddresses returns the genesis committee as addresses, in the
// given order.
func (g *Genesis) EndorserAddresses() []gcrypto.Address {
	out := make([]gcrypto.Address, len(g.Endorsers))
	for i, e := range g.Endorsers {
		out[i] = e.Address
	}
	return out
}
