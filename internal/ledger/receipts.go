package ledger

import (
	"bytes"
	"sort"

	"gpbft/internal/gcrypto"
	"gpbft/internal/shard"
)

// This file is the chain's cross-region surface: the outbound receipt
// index minted by committed transfer locks, the applied-receipt index
// that makes destination application exactly-once, and the anchor
// index derived from committed region checkpoints. All three are pure
// functions of committed blocks, so every honest node in a region (or
// in the anchor committee) derives identical indexes, and all three
// ride the canonical ChainState so snapshots preserve them.

// AppliedReceipt locates the committed application of one receipt.
type AppliedReceipt struct {
	ID  gcrypto.Hash
	Loc TxLocation
}

// SetShardPrefix pins the chain to one region of a sharded deployment:
// transfer locks must originate here (Source == prefix) and transfer
// applies must be destined here (Dest == prefix). It is deployment
// configuration, set once at node construction — every honest node of
// a region is configured identically, so validation stays a pure
// function of (configuration, chain content). Unset (the default, and
// the anchor chain's setting) applies no region pinning.
func (c *Chain) SetShardPrefix(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shardPrefix = prefix
}

// ShardPrefix returns the configured region prefix ("" when unset).
func (c *Chain) ShardPrefix() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.shardPrefix
}

// OutboundReceipts returns the receipts minted by transfer locks
// committed at heights strictly above `since`, in commit order — the
// slice a delegate folds into its next RegionCheckpoint.
func (c *Chain) OutboundReceipts(since uint64) []shard.Receipt {
	c.mu.RLock()
	defer c.mu.RUnlock()
	// outbound is appended in commit order, so LockHeight is
	// non-decreasing: binary-search the first receipt above `since`
	// instead of scanning the ever-growing slice on every anchor tick.
	lo := sort.Search(len(c.outbound), func(i int) bool {
		return c.outbound[i].LockHeight > since
	})
	out := make([]shard.Receipt, len(c.outbound)-lo)
	copy(out, c.outbound[lo:])
	return out
}

// OutboundCount returns how many transfer locks this chain has minted.
func (c *Chain) OutboundCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.outbound)
}

// ReceiptApplied reports whether the receipt has been applied on this
// chain, and where.
func (c *Chain) ReceiptApplied(id gcrypto.Hash) (TxLocation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	loc, ok := c.appliedReceipts[id]
	return loc, ok
}

// AppliedReceiptCount returns how many distinct receipts this chain
// has applied.
func (c *Chain) AppliedReceiptCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.appliedReceipts)
}

// ReceiptDupes counts committed apply transactions whose receipt was
// already applied — harmless no-ops (delegate failover retries), but a
// nonzero count is worth watching.
func (c *Chain) ReceiptDupes() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.receiptDupes
}

// LockRejects counts committed transfer locks refused for insufficient
// sender balance — nothing was debited and no receipt was minted. A
// nonzero count means a client is trying to move value it doesn't
// hold.
func (c *Chain) LockRejects() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lockRejects
}

// AnchorLatest returns the newest anchored checkpoint for a region
// (anchor chains only; region chains never see checkpoint txs).
func (c *Chain) AnchorLatest(region string) (shard.CheckpointPoint, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.anchors == nil {
		return shard.CheckpointPoint{}, false
	}
	return c.anchors.Latest(region)
}

// AnchorCovered reports whether a receipt is covered by a committed
// checkpoint on this chain.
func (c *Chain) AnchorCovered(id gcrypto.Hash) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.anchors != nil && c.anchors.Covered(id)
}

// AnchorReceipts returns every receipt covered by committed
// checkpoints, in first-anchored order.
func (c *Chain) AnchorReceipts() []shard.Receipt {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.anchors == nil {
		return nil
	}
	return c.anchors.Receipts()
}

// AnchorRegions returns the region prefixes with at least one anchored
// checkpoint, sorted.
func (c *Chain) AnchorRegions() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.anchors == nil {
		return nil
	}
	return c.anchors.Regions()
}

// anchorsLocked lazily allocates the anchor index. Caller holds c.mu.
func (c *Chain) anchorsLocked() *shard.AnchorIndex {
	if c.anchors == nil {
		c.anchors = shard.NewAnchorIndex()
	}
	return c.anchors
}

// exportReceiptsLocked flattens the receipt indexes deterministically.
// Caller holds c.mu (read).
func (c *Chain) exportReceiptsLocked(st *ChainState) {
	st.Outbound = append([]shard.Receipt(nil), c.outbound...)
	st.Applied = make([]AppliedReceipt, 0, len(c.appliedReceipts))
	for id, loc := range c.appliedReceipts {
		st.Applied = append(st.Applied, AppliedReceipt{ID: id, Loc: loc})
	}
	sort.Slice(st.Applied, func(i, j int) bool {
		return bytes.Compare(st.Applied[i].ID[:], st.Applied[j].ID[:]) < 0
	})
	st.ReceiptDupes = c.receiptDupes
	st.LockRejects = c.lockRejects
	if c.anchors != nil {
		st.Anchors, st.AnchorReceipts = c.anchors.Export()
	}
}

// applyReceiptsLocked restores the receipt indexes from a snapshot.
// Caller holds c.mu.
func (c *Chain) applyReceiptsLocked(st *ChainState) {
	c.outbound = append([]shard.Receipt(nil), st.Outbound...)
	c.appliedReceipts = make(map[gcrypto.Hash]TxLocation, len(st.Applied))
	for _, a := range st.Applied {
		c.appliedReceipts[a.ID] = a.Loc
	}
	c.receiptDupes = st.ReceiptDupes
	c.lockRejects = st.LockRejects
	if len(st.Anchors) > 0 || len(st.AnchorReceipts) > 0 {
		c.anchors = shard.RestoreAnchorIndex(st.Anchors, st.AnchorReceipts)
	} else {
		c.anchors = nil
	}
}
