package ledger

import (
	"errors"
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/types"
)

// signedTx builds a signed normal transaction from deterministic key i.
func signedTx(i int, nonce uint64, fee uint64) types.Transaction {
	kp := gcrypto.DeterministicKeyPair(i)
	tx := types.Transaction{
		Type:    types.TxNormal,
		Nonce:   nonce,
		Payload: []byte("reading"),
		Fee:     fee,
		Geo: types.GeoInfo{
			Location:  geo.Point{Lng: 114.1795, Lat: 22.3050},
			Timestamp: tableEpoch.Add(time.Duration(nonce) * time.Second),
		},
	}
	tx.Sign(kp)
	return tx
}

// nextBlock builds a valid next block on top of c's head.
func nextBlock(c *Chain, txs []types.Transaction, proposerIdx int) *types.Block {
	head := c.Head()
	return types.NewBlock(types.BlockHeader{
		Height:    head.Header.Height + 1,
		Era:       head.Header.Era,
		Seq:       head.Header.Height + 1,
		PrevHash:  head.Hash(),
		Proposer:  gcrypto.DeterministicKeyPair(proposerIdx).Address(),
		Timestamp: tableEpoch.Add(time.Duration(head.Header.Height+1) * time.Second),
	}, txs)
}

func TestNewChain(t *testing.T) {
	c, err := NewChain(testGenesis(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if c.Height() != 0 {
		t.Fatalf("height %d", c.Height())
	}
	if len(c.Endorsers()) != 4 {
		t.Fatalf("endorsers %d", len(c.Endorsers()))
	}
	if !c.IsEndorser(gcrypto.DeterministicKeyPair(0).Address()) {
		t.Fatal("genesis endorser missing")
	}
}

func TestNewChainBadGenesis(t *testing.T) {
	g := testGenesis(t, 4)
	g.ChainID = ""
	if _, err := NewChain(g); !errors.Is(err, ErrBadGenesis) {
		t.Fatalf("want ErrBadGenesis, got %v", err)
	}
}

func TestAddBlockHappyPath(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	b := nextBlock(c, []types.Transaction{signedTx(0, 1, 10)}, 0)
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 1 {
		t.Fatalf("height %d", c.Height())
	}
	got, err := c.BlockAt(1)
	if err != nil || got.Hash() != b.Hash() {
		t.Fatal("BlockAt(1) mismatch")
	}
	if _, ok := c.ByHash(b.Hash()); !ok {
		t.Fatal("ByHash miss")
	}
	// Geo info feeds the election table.
	addr := gcrypto.DeterministicKeyPair(0).Address().String()
	if len(c.Table().History(addr)) != 1 {
		t.Fatal("tx geo info not chained into election table")
	}
}

func TestAddBlockRejections(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	good := nextBlock(c, nil, 0)
	if err := c.AddBlock(good); err != nil {
		t.Fatal(err)
	}

	// Duplicate.
	if err := c.AddBlock(good); !errors.Is(err, ErrDuplicateBlock) {
		t.Errorf("duplicate: %v", err)
	}

	// Height gap.
	gap := nextBlock(c, nil, 0)
	gap.Header.Height = 5
	if err := c.AddBlock(gap); !errors.Is(err, ErrHeightGap) {
		t.Errorf("gap: %v", err)
	}

	// Bad prev hash.
	badPrev := nextBlock(c, nil, 0)
	badPrev.Header.PrevHash = gcrypto.HashBytes([]byte("bogus"))
	if err := c.AddBlock(badPrev); !errors.Is(err, ErrPrevHash) {
		t.Errorf("prev hash: %v", err)
	}

	// Era regression.
	reg := nextBlock(c, nil, 0)
	reg.Header.Era = 0
	c2, _ := NewChain(testGenesis(t, 4))
	e1 := nextBlock(c2, nil, 0)
	e1.Header.Era = 2
	if err := c2.AddBlock(e1); err != nil {
		t.Fatal(err)
	}
	e0 := nextBlock(c2, nil, 0)
	e0.Header.Era = 1
	if err := c2.AddBlock(e0); !errors.Is(err, ErrEraRegressed) {
		t.Errorf("era regression: %v", err)
	}
	_ = reg

	// Tampered tx root.
	tam := nextBlock(c, []types.Transaction{signedTx(0, 2, 1)}, 0)
	tam.Txs[0].Fee = 999
	if err := c.AddBlock(tam); !errors.Is(err, types.ErrBlockTxRoot) {
		t.Errorf("tx root: %v", err)
	}

	// Invalid tx signature.
	badTx := signedTx(0, 3, 1)
	badTx.Signature[0] ^= 0xFF
	inv := nextBlock(c, []types.Transaction{badTx}, 0)
	if err := c.AddBlock(inv); !errors.Is(err, ErrTxInvalid) {
		t.Errorf("invalid tx: %v", err)
	}
}

func TestAddBlockForkDetection(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	a := nextBlock(c, nil, 0)
	if err := c.AddBlock(a); err != nil {
		t.Fatal(err)
	}
	// A different block at the committed height is a fork.
	b := nextBlock(c, []types.Transaction{signedTx(1, 1, 1)}, 1)
	b.Header.Height = 1
	b.Header.PrevHash = a.Header.PrevHash
	if err := c.AddBlock(b); !errors.Is(err, ErrForkDetected) {
		t.Fatalf("want ErrForkDetected, got %v", err)
	}
	forks := c.Forks()
	if len(forks) != 1 {
		t.Fatalf("fork evidence count %d", len(forks))
	}
	if forks[0].Height != 1 || forks[0].Proposer != gcrypto.DeterministicKeyPair(1).Address() {
		t.Fatalf("fork evidence %+v", forks[0])
	}
}

func TestConfigTxOnlyFromEndorser(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	change := &types.ConfigChange{NewEra: 1}
	// Key 99 is not a genesis endorser.
	outsider := gcrypto.DeterministicKeyPair(99)
	tx := types.Transaction{
		Type:    types.TxConfig,
		Nonce:   1,
		Payload: types.EncodeConfigChange(change),
		Geo: types.GeoInfo{
			Location:  geo.Point{Lng: 114.1795, Lat: 22.3050},
			Timestamp: tableEpoch,
		},
	}
	tx.Sign(outsider)
	b := nextBlock(c, []types.Transaction{tx}, 0)
	if err := c.AddBlock(b); !errors.Is(err, ErrConfigSender) {
		t.Fatalf("want ErrConfigSender, got %v", err)
	}
}

func TestConfigTxAppliesCommitteeDelta(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	newKp := gcrypto.DeterministicKeyPair(50)
	oldAddr := gcrypto.DeterministicKeyPair(3).Address()
	change := &types.ConfigChange{
		NewEra: 1,
		Add: []types.EndorserInfo{{
			Address: newKp.Address(),
			PubKey:  newKp.Public(),
			Geohash: geo.MustEncode(fixedSpot, geo.CSCPrecision),
		}},
		Remove: []gcrypto.Address{oldAddr},
	}
	tx := types.Transaction{
		Type:    types.TxConfig,
		Nonce:   1,
		Payload: types.EncodeConfigChange(change),
		Geo: types.GeoInfo{
			Location:  geo.Point{Lng: 114.1795, Lat: 22.3050},
			Timestamp: tableEpoch,
		},
	}
	tx.Sign(gcrypto.DeterministicKeyPair(0)) // endorser proposes
	b := nextBlock(c, []types.Transaction{tx}, 0)
	b.Header.Era = 1
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if c.IsEndorser(oldAddr) {
		t.Error("removed endorser still present")
	}
	if !c.IsEndorser(newKp.Address()) {
		t.Error("added endorser missing")
	}
	keys := c.EndorserKeys()
	if len(keys) != 4 {
		t.Fatalf("committee size %d, want 4", len(keys))
	}
}

func TestConfigTxRespectsBlacklistAndMax(t *testing.T) {
	g := testGenesis(t, 4)
	banned := gcrypto.DeterministicKeyPair(60)
	g.Policy.Blacklist = []gcrypto.Address{banned.Address()}
	g.Policy.MaxEndorsers = 5
	c, _ := NewChain(g)

	mk := func(i int) types.EndorserInfo {
		kp := gcrypto.DeterministicKeyPair(i)
		return types.EndorserInfo{Address: kp.Address(), PubKey: kp.Public(),
			Geohash: geo.MustEncode(fixedSpot, geo.CSCPrecision)}
	}
	change := &types.ConfigChange{
		NewEra: 1,
		Add:    []types.EndorserInfo{mk(60), mk(61), mk(62)},
	}
	tx := types.Transaction{
		Type: types.TxConfig, Nonce: 1,
		Payload: types.EncodeConfigChange(change),
		Geo:     types.GeoInfo{Location: fixedSpot, Timestamp: tableEpoch},
	}
	tx.Sign(gcrypto.DeterministicKeyPair(0))
	b := nextBlock(c, []types.Transaction{tx}, 0)
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if c.IsEndorser(banned.Address()) {
		t.Error("blacklisted node admitted")
	}
	if got := len(c.Endorsers()); got != 5 {
		t.Errorf("committee size %d, want capped at 5", got)
	}
}

func TestRegionEnforcedOnTxs(t *testing.T) {
	g := testGenesis(t, 4)
	g.Policy.Region = geo.NewRegion(geo.Point{Lng: 114, Lat: 22}, geo.Point{Lng: 115, Lat: 23})
	c, _ := NewChain(g)
	tx := signedTx(0, 1, 1) // inside
	if err := c.AddBlock(nextBlock(c, []types.Transaction{tx}, 0)); err != nil {
		t.Fatal(err)
	}
	outside := types.Transaction{
		Type: types.TxNormal, Nonce: 2, Payload: []byte("x"),
		Geo: types.GeoInfo{Location: geo.Point{Lng: 10, Lat: 10}, Timestamp: tableEpoch},
	}
	outside.Sign(gcrypto.DeterministicKeyPair(0))
	if err := c.AddBlock(nextBlock(c, []types.Transaction{outside}, 0)); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("out-of-region tx: %v", err)
	}
}

func TestBlockAtUnknownHeight(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	if _, err := c.BlockAt(9); !errors.Is(err, ErrUnknownHeight) {
		t.Fatalf("want ErrUnknownHeight, got %v", err)
	}
}

func TestBlocksSnapshot(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	c.AddBlock(nextBlock(c, nil, 0))
	bs := c.Blocks()
	if len(bs) != 2 || bs[0].Header.Height != 0 || bs[1].Header.Height != 1 {
		t.Fatalf("Blocks() = %d entries", len(bs))
	}
}

func TestProposerTimerResetOnBlock(t *testing.T) {
	c, _ := NewChain(testGenesis(t, 4))
	proposer := gcrypto.DeterministicKeyPair(0)
	// Seed the table with residency.
	c.Table().Record(geo.Report{Location: fixedSpot, Timestamp: tableEpoch, Address: proposer.Address().String()})
	c.Table().Record(geo.Report{Location: fixedSpot, Timestamp: tableEpoch.Add(10 * time.Hour), Address: proposer.Address().String()})
	if c.Table().Timer(proposer.Address().String()) != 10*time.Hour {
		t.Fatal("precondition")
	}
	b := nextBlock(c, nil, 0)
	b.Header.Timestamp = tableEpoch.Add(10 * time.Hour)
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if got := c.Table().Timer(proposer.Address().String()); got != 0 {
		t.Fatalf("proposer timer %v after block, want 0 (incentive reset)", got)
	}
}

// TestCertQuorumGeneralized: at n = 6 (not of the 3f+1 form) the safe
// quorum is 4, not 2f+1 = 3 — a 3-vote certificate must be rejected.
func TestCertQuorumGeneralized(t *testing.T) {
	g := testGenesis(t, 6)
	c, err := NewChain(g)
	if err != nil {
		t.Fatal(err)
	}
	b := nextBlock(c, nil, 0)
	hash := b.Hash()
	vote := func(i int) types.Vote {
		kp := gcrypto.DeterministicKeyPair(i)
		return types.Vote{Endorser: kp.Address(), Signature: kp.Sign(types.VoteDigest(hash, 0, 0))}
	}
	b.Cert = &types.Certificate{BlockHash: hash, Era: 0, View: 0,
		Votes: []types.Vote{vote(0), vote(1), vote(2)}}
	if err := c.ValidateBlock(b); err == nil {
		t.Fatal("3-vote certificate accepted at n=6 (needs 4)")
	}
	b.Cert.Votes = append(b.Cert.Votes, vote(3))
	if err := c.ValidateBlock(b); err != nil {
		t.Fatalf("4-vote certificate rejected: %v", err)
	}
}
