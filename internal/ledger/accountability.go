package ledger

import (
	"bytes"
	"sort"
	"time"

	"gpbft/internal/evidence"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// Accountability state. Everything in this file is derived purely from
// committed blocks plus the genesis policy, so every honest replica
// computes the identical dynamic blacklist — expulsion is a consensus
// decision, not a local opinion, and a replaying node (gpbft-inspect, a
// restarted gpbft-node) reconstructs it exactly.
//
// Two flows feed it:
//
//   - Committed TxEvidence transactions (validated self-verifying
//     records) are folded into the banned set immediately. They always
//     record the offense; whether the ban also affects committee
//     membership is gated by Policy.DisableExpulsion at the points of
//     enforcement (election, config application).
//   - The chain itself detects offenses visible only in committed
//     data: two identities reporting one CSC cell within SybilWindow,
//     and a location claim disputed by a MinWitnesses quorum. Detected
//     records are queued for the era layer to submit as TxEvidence, at
//     which point the first flow takes over.

// maxForkRecords bounds the retained fork-evidence slice; a sustained
// fork-feeding attack otherwise grows it without limit. The total is
// still counted (ForkCount) and duplicates are collapsed.
const maxForkRecords = 128

// geoEntry is the latest committed location claim of one device.
type geoEntry struct {
	cell string
	ts   time.Time
	loc  TxLocation
}

// verifyCtxLocked builds the evidence verification parameters from the
// genesis policy and chain state. CredibleWitness accepts any address
// that is or ever was an endorser: the set only grows, so a record
// valid once stays valid forever — block validity must not flip when
// the committee rotates between a proof's assembly and its commitment.
func (c *Chain) verifyCtxLocked() evidence.VerifyContext {
	p := &c.genesis.Policy
	return evidence.VerifyContext{
		SybilWindow:  p.SybilWindow,
		MinWitnesses: p.MinWitnesses,
		CredibleWitness: func(a gcrypto.Address) bool {
			return c.everEndorsers[a]
		},
	}
}

// applyEvidenceLocked folds one committed evidence record into the
// banned set. Records are deduplicated by ID (many honest replicas
// typically submit the same accusation).
func (c *Chain) applyEvidenceLocked(rec *evidence.Record) {
	id := rec.ID()
	if c.evidenceSeen[id] {
		return
	}
	c.evidenceSeen[id] = true
	c.evidenceCnt++
	for _, a := range rec.Offenders {
		if _, dup := c.banned[a]; !dup {
			c.banned[a] = id
		}
	}
}

// noteGeoLocked indexes a committed fresh location claim and checks it
// against other devices' latest claims for the same cell — the Sybil
// pattern of Section IV-A1. Each device occupies at most one cell in
// the index, so memory is bounded by the device population.
func (c *Chain) noteGeoLocked(tx *types.Transaction, height uint64, idx int) {
	csc, err := tx.Report().CSC()
	if err != nil {
		return
	}
	cell := csc.Geohash
	if prev, ok := c.lastGeo[tx.Sender]; ok && prev.cell != cell {
		if m := c.cellSeen[prev.cell]; m != nil {
			delete(m, tx.Sender)
			if len(m) == 0 {
				delete(c.cellSeen, prev.cell)
			}
		}
	}
	ent := geoEntry{cell: cell, ts: tx.Geo.Timestamp, loc: TxLocation{Height: height, TxIndex: idx}}
	if window := c.genesis.Policy.SybilWindow; window > 0 && !c.flagged[tx.Sender] {
		for other, oent := range c.cellSeen[cell] {
			if other == tx.Sender || c.flagged[other] {
				continue
			}
			gap := ent.ts.Sub(oent.ts)
			if gap < 0 {
				gap = -gap
			}
			if gap > window {
				continue
			}
			otherTx := c.txAtLocked(oent.loc)
			if otherTx == nil {
				continue
			}
			rec, err := evidence.NewSybilSameCell(otherTx, tx, window)
			if err != nil {
				continue
			}
			c.flagged[tx.Sender] = true
			c.flagged[other] = true
			c.queueDetectedLocked(rec)
			break
		}
	}
	m := c.cellSeen[cell]
	if m == nil {
		m = make(map[gcrypto.Address]geoEntry)
		c.cellSeen[cell] = m
	}
	m[tx.Sender] = ent
	c.lastGeo[tx.Sender] = ent
}

// maybeSpoofLocked checks whether a subject's current location claim
// has accumulated a dispute quorum: MinWitnesses distinct, credible
// witnesses attesting the subject is NOT at its claimed cell. Called on
// every committed disputing statement.
func (c *Chain) maybeSpoofLocked(subject gcrypto.Address, asOf time.Time) {
	p := &c.genesis.Policy
	if p.MinWitnesses <= 0 || c.flagged[subject] {
		return
	}
	if _, already := c.banned[subject]; already {
		return
	}
	claim, ok := c.lastGeo[subject]
	if !ok {
		return
	}
	claimTx := c.txAtLocked(claim.loc)
	if claimTx == nil {
		return
	}
	seen := make(map[gcrypto.Address]*types.Transaction)
	for _, st := range c.witnesses.StatementsFor(subject, asOf.Add(-p.QualificationWindow)) {
		if st.Seen || st.Geohash != claim.cell || st.Witness == subject {
			continue
		}
		if !c.everEndorsers[st.Witness] {
			continue
		}
		if _, dup := seen[st.Witness]; dup {
			continue
		}
		wtx := c.txAtLocked(st.Loc)
		if wtx == nil {
			continue
		}
		seen[st.Witness] = wtx
	}
	if len(seen) < p.MinWitnesses {
		return
	}
	// Deterministic witness selection: the MinWitnesses lowest addresses.
	addrs := make([]gcrypto.Address, 0, len(seen))
	for a := range seen {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
	wtxs := make([]*types.Transaction, 0, p.MinWitnesses)
	for _, a := range addrs[:p.MinWitnesses] {
		wtxs = append(wtxs, seen[a])
	}
	rec, err := evidence.NewLocationSpoof(claimTx, wtxs, c.verifyCtxLocked())
	if err != nil {
		return
	}
	c.flagged[subject] = true
	c.queueDetectedLocked(rec)
}

// queueDetectedLocked appends a chain-detected record for the era layer
// to pick up (DetectedEvidence) and submit as a transaction.
func (c *Chain) queueDetectedLocked(rec *evidence.Record) {
	id := rec.ID()
	if c.detectedIDs[id] || c.evidenceSeen[id] {
		return
	}
	c.detectedIDs[id] = true
	c.detected = append(c.detected, rec)
}

// txAtLocked resolves a committed transaction by location.
func (c *Chain) txAtLocked(loc TxLocation) *types.Transaction {
	if loc.Height < c.base || loc.Height-c.base >= uint64(len(c.blocks)) {
		return nil
	}
	b := c.blocks[loc.Height-c.base]
	if loc.TxIndex < 0 || loc.TxIndex >= len(b.Txs) {
		return nil
	}
	return &b.Txs[loc.TxIndex]
}

// --- public accessors ---

// IsBanned reports whether committed evidence names addr an offender.
func (c *Chain) IsBanned(addr gcrypto.Address) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.banned[addr]
	return ok
}

// BannedEntry pairs an expelled offender with the evidence record that
// convicted it.
type BannedEntry struct {
	Address  gcrypto.Address
	Evidence gcrypto.Hash
}

// Banned returns the dynamic blacklist sorted by address.
func (c *Chain) Banned() []BannedEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]BannedEntry, 0, len(c.banned))
	for a, id := range c.banned {
		out = append(out, BannedEntry{Address: a, Evidence: id})
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].Address[:], out[j].Address[:]) < 0
	})
	return out
}

// HasEvidence reports whether a record with this ID is already
// committed on-chain.
func (c *Chain) HasEvidence(id gcrypto.Hash) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.evidenceSeen[id]
}

// EvidenceCount returns how many distinct evidence records have been
// committed.
func (c *Chain) EvidenceCount() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.evidenceCnt
}

// ForkCount returns how many conflicting blocks were presented for
// committed heights, including ones the bounded evidence slice dropped.
func (c *Chain) ForkCount() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.forkCount
}

// DetectedEvidence returns chain-detected records starting at cursor
// `from`, plus the new cursor. The era layer polls it and submits the
// records as evidence transactions; the cursor keeps each caller from
// re-reading records it has already handled.
func (c *Chain) DetectedEvidence(from int) ([]*evidence.Record, int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if from < 0 {
		from = 0
	}
	if from >= len(c.detected) {
		return nil, len(c.detected)
	}
	out := make([]*evidence.Record, len(c.detected)-from)
	copy(out, c.detected[from:])
	return out, len(c.detected)
}
