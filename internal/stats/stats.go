// Package stats provides the small statistical toolkit the experiment
// harness uses to reproduce the paper's figures: five-number boxplot
// summaries (Figure 3), means (Figure 4, Table III), and table
// formatting helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary is a boxplot five-number summary plus mean and stddev —
// exactly what the paper's Figure 3 boxplots display ("Upper and lower
// lines represent the maximum and minimum values ... the median value,
// while the upper and lower side indicates the third and first
// quartiles").
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	StdDev float64
}

// Summarize computes the summary of xs (which it does not modify).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	varSum := 0.0
	for _, v := range s {
		d := v - mean
		varSum += d * d
	}
	std := 0.0
	if len(s) > 1 {
		std = math.Sqrt(varSum / float64(len(s)-1))
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   mean,
		StdDev: std,
	}
}

// quantileSorted computes the q-quantile of sorted data with linear
// interpolation (type-7, the common default).
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Quantile computes the q-quantile of unsorted data.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, clamp01(q))
}

func clamp01(q float64) float64 {
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Seconds converts durations to float seconds.
func Seconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Table accumulates rows and renders aligned text or CSV — the
// harness's output surface.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are stringified with %v, floats with 2
// decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fs", v.Seconds())
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoted as needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, r := range t.Rows {
		writeCSVRow(&b, r)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}
