package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev: %v", s.StdDev)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary must be zero")
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.StdDev != 0 {
		t.Fatalf("singleton: %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Quantile(xs, 0.5); got != 25 {
		t.Fatalf("median %v", got)
	}
	if Quantile(xs, 0) != 10 || Quantile(xs, 1) != 40 {
		t.Fatal("extremes wrong")
	}
	if Quantile(xs, -1) != 10 || Quantile(xs, 2) != 40 {
		t.Fatal("clamping wrong")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, v := range xs {
			// Restrict to a range where the mean cannot overflow.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e300 {
				clean = append(clean, math.Mod(v, 1e9))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Q1 && s.Q1 <= s.Median &&
			s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndSeconds(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	secs := Seconds([]time.Duration{time.Second, 500 * time.Millisecond})
	if secs[0] != 1 || secs[1] != 0.5 {
		t.Fatal("seconds conversion wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "n", "latency")
	tb.AddRow(4, 1.23456)
	tb.AddRow(202, 251.47)
	tb.AddRow("x", 3*time.Second)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "251.47") {
		t.Fatal("float formatting missing")
	}
	if !strings.Contains(out, "3.000s") {
		t.Fatal("duration formatting missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, sep, 3 rows
		t.Fatalf("line count %d: %q", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`quote"inside`, "with,comma")
	csv := tb.CSV()
	if !strings.Contains(csv, `"quote""inside"`) {
		t.Fatalf("quote escaping: %q", csv)
	}
	if !strings.Contains(csv, `"with,comma"`) {
		t.Fatalf("comma quoting: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("header row: %q", csv)
	}
}
