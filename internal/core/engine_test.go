package core_test

import (
	"testing"
	"time"

	"gpbft"
	"gpbft/internal/core"
	"gpbft/internal/types"
)

func fastOpts(nodes int) gpbft.Options {
	o := gpbft.DefaultOptions(gpbft.GPBFT, nodes)
	o.Network = gpbft.NetworkProfile{
		LatencyBase:   time.Millisecond,
		LatencyJitter: 500 * time.Microsecond,
		ProcTime:      100 * time.Microsecond,
		SendTime:      20 * time.Microsecond,
	}
	o.ViewChangeTimeout = 500 * time.Millisecond
	return o
}

// TestForcedEraSwitchRotates: with ForceEraSwitch the era advances
// every T even though membership never changes, and the system keeps
// committing transactions across the switches.
func TestForcedEraSwitchRotates(t *testing.T) {
	o := fastOpts(5)
	o.ForceEraSwitch = true
	o.EraPeriod = time.Second
	o.SwitchPeriod = 100 * time.Millisecond
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	// Endorsers must keep reporting to stay authenticated.
	for i := 0; i < 5; i++ {
		c.ScheduleReports(i, 50*time.Millisecond, 250*time.Millisecond, 40)
	}
	for k := 0; k < 20; k++ {
		c.SubmitNodeTx(time.Duration(100+k*400)*time.Millisecond, k%5, []byte{byte(k)}, 1)
	}
	c.RunUntilIdle(time.Minute)

	chain := c.Node(0).App.Chain()
	if chain.Era() < 3 {
		t.Fatalf("era %d after ~8s of 1s forced switches", chain.Era())
	}
	if got := c.Metrics().CommittedCount(); got != 20 {
		t.Fatalf("committed %d of 20 across era switches", got)
	}
	if _, err := c.VerifyAgreement(); err != nil {
		t.Fatal(err)
	}
	// Committee membership unchanged by empty switches.
	if len(chain.Endorsers()) != 5 {
		t.Fatalf("committee size %d", len(chain.Endorsers()))
	}
}

// TestRogueConfigTxNeverCommits: a config transaction whose payload
// disagrees with the deterministic election outcome is filtered by
// proposers and rejected by validators — it must never reach the chain.
func TestRogueConfigTxNeverCommits(t *testing.T) {
	o := fastOpts(5)
	o.DisableEraSwitch = false
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	// A rogue (but currently valid endorser) proposes adding a node
	// that never qualified.
	rogueChange := &types.ConfigChange{
		NewEra: 1,
		Add: []types.EndorserInfo{{
			Address: c.Address(4),
			PubKey:  c.Node(4).Key.Public(),
			Geohash: "wecnyhwbp1",
		}},
	}
	tx := &types.Transaction{
		Type:    types.TxConfig,
		Nonce:   999,
		Payload: types.EncodeConfigChange(rogueChange),
		Geo: types.GeoInfo{
			Location:  c.Position(0),
			Timestamp: o.Epoch.Add(time.Second),
		},
	}
	// Signed by endorser 0 — passes the ledger's "config from
	// endorser" rule; only the election check can stop it.
	txKey := c.Node(0).Key
	tx.Sign(txKey)
	c.SubmitTx(10*time.Millisecond, 0, tx)
	// Honest traffic continues around it.
	for k := 0; k < 10; k++ {
		c.SubmitNodeTx(time.Duration(20+k*100)*time.Millisecond, k%5, []byte{byte(k)}, 1)
	}
	c.RunUntilIdle(30 * time.Second)

	chain := c.Node(0).App.Chain()
	for _, b := range chain.Blocks() {
		for i := range b.Txs {
			if b.Txs[i].ID() == tx.ID() {
				t.Fatal("rogue config transaction was committed")
			}
		}
	}
	if chain.Era() != 0 {
		t.Fatalf("era moved to %d on a rogue config", chain.Era())
	}
	// The honest stream was unaffected.
	if got := c.Metrics().CommittedCount(); got < 10 {
		t.Fatalf("committed %d of 11 (rogue may stay pending)", got)
	}
}

// TestCandidateSyncPagination: a candidate elected after the chain has
// grown past MaxSyncBlocks pulls the chain in multiple sync rounds.
func TestCandidateSyncPagination(t *testing.T) {
	if testing.Short() {
		t.Skip("long chain sync in -short mode")
	}
	o := fastOpts(5)
	o.GenesisEndorsers = 4
	o.MaxEndorsers = 8
	o.BatchSize = 1 // one tx per block -> tall chain
	o.EraPeriod = 4 * time.Second
	o.QualificationWindow = 2 * time.Second
	o.MinReports = 3
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the chain beyond one sync page (MaxSyncBlocks = 256): the
	// candidate's periodic reports plus a steady data stream, paced so
	// the pool never saturates (elections need fresh committed reports).
	for i := 0; i < 5; i++ {
		c.ScheduleReports(i, 50*time.Millisecond, 200*time.Millisecond, 60)
	}
	for k := 0; k < 280; k++ {
		c.SubmitNodeTx(time.Duration(60+k*40)*time.Millisecond, k%4, []byte{byte(k)}, 1)
	}
	c.RunUntilIdle(2 * time.Minute)

	ce := c.CoreEngine(4)
	if !ce.IsEndorser() {
		t.Fatalf("candidate not admitted (era=%d, endorser chain h=%d, cand h=%d)",
			ce.Era(), c.Node(0).App.Chain().Height(), c.Node(4).App.Chain().Height())
	}
	endorserH := c.Node(0).App.Chain().Height()
	if endorserH <= uint64(core.MaxSyncBlocks) {
		t.Fatalf("chain only %d high; pagination not exercised", endorserH)
	}
	if got := c.Node(4).App.Chain().Height(); got < endorserH-5 {
		t.Fatalf("candidate chain %d far behind endorsers at %d", got, endorserH)
	}
	if _, err := c.VerifyAgreement(); err != nil {
		t.Fatal(err)
	}
}

// TestLossyNetworkStillCommits: 5% message loss; PBFT's quorum slack
// and view-change fallback keep the system live.
func TestLossyNetworkStillCommits(t *testing.T) {
	o := fastOpts(7)
	o.Network.DropRate = 0.05
	o.DisableEraSwitch = true
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		c.SubmitNodeTx(time.Duration(10+k*200)*time.Millisecond, k%7, []byte{byte(k)}, 1)
	}
	c.RunUntilIdle(2 * time.Minute)
	if got := c.Metrics().CommittedCount(); got < 8 {
		t.Fatalf("committed %d of 10 under 5%% loss", got)
	}
	if _, err := c.VerifyAgreement(); err != nil {
		t.Fatal(err)
	}
}

// TestObserverRelaysToCommittee: a candidate (observer) node's own
// submissions reach the committee and commit.
func TestObserverRelaysToCommittee(t *testing.T) {
	o := fastOpts(8)
	o.MaxEndorsers = 4
	o.DisableEraSwitch = true
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ { // observers submit their own txs
		c.SubmitNodeTx(time.Duration(10+i)*time.Millisecond, i, []byte{byte(i)}, 1)
	}
	c.RunUntilIdle(30 * time.Second)
	if got := c.Metrics().CommittedCount(); got != 4 {
		t.Fatalf("committed %d of 4 observer txs", got)
	}
}
