package core

import (
	"gpbft/internal/codec"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// EraAnnounce notifies a node (typically a freshly elected endorser)
// that the chain switched to a new era at the given height. The
// receiver syncs any blocks it is missing and, if it is in the new
// committee, joins consensus. Sent by old-era endorsers after the
// switch ("it relaunches the new consensus after the finish of the era
// switch", Section IV-A2).
type EraAnnounce struct {
	NewEra uint64
	Height uint64 // chain height of the block carrying the config tx
}

// Kind implements consensus.Payload.
func (*EraAnnounce) Kind() consensus.MsgKind { return consensus.KindEraSwitch }

// MarshalCanonical implements codec.Marshaler.
func (m *EraAnnounce) MarshalCanonical(w *codec.Writer) {
	w.Uint8(0) // subtype: announce
	w.Uint64(m.NewEra)
	w.Uint64(m.Height)
}

// UnmarshalCanonical decodes the payload.
func (m *EraAnnounce) UnmarshalCanonical(r *codec.Reader) error {
	if sub := r.Uint8(); r.Err() == nil && sub != 0 {
		return consensus.ErrEnvelopeKind
	}
	m.NewEra = r.Uint64()
	m.Height = r.Uint64()
	return r.Err()
}

// SyncRequest asks a peer for committed blocks above FromHeight.
type SyncRequest struct {
	FromHeight uint64 // first height the requester is missing
}

// Kind implements consensus.Payload.
func (*SyncRequest) Kind() consensus.MsgKind { return consensus.KindBlockSync }

// MarshalCanonical implements codec.Marshaler.
func (m *SyncRequest) MarshalCanonical(w *codec.Writer) {
	w.Uint8(1) // subtype: request
	w.Uint64(m.FromHeight)
}

// UnmarshalCanonical decodes the payload.
func (m *SyncRequest) UnmarshalCanonical(r *codec.Reader) error {
	if sub := r.Uint8(); r.Err() == nil && sub != 1 {
		return consensus.ErrEnvelopeKind
	}
	m.FromHeight = r.Uint64()
	return r.Err()
}

// MaxSyncBlocks caps one sync response.
const MaxSyncBlocks = 256

// SyncResponse returns consecutive committed blocks, each carrying its
// commit certificate so the receiver can verify them against its known
// committee before applying.
type SyncResponse struct {
	Blocks []types.Block
}

// Kind implements consensus.Payload.
func (*SyncResponse) Kind() consensus.MsgKind { return consensus.KindBlockSync }

// MarshalCanonical implements codec.Marshaler.
func (m *SyncResponse) MarshalCanonical(w *codec.Writer) {
	w.Uint8(2) // subtype: response
	w.Count(len(m.Blocks))
	for i := range m.Blocks {
		m.Blocks[i].MarshalCanonical(w)
	}
}

// UnmarshalCanonical decodes the payload.
func (m *SyncResponse) UnmarshalCanonical(r *codec.Reader) error {
	if sub := r.Uint8(); r.Err() == nil && sub != 2 {
		return consensus.ErrEnvelopeKind
	}
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	m.Blocks = make([]types.Block, n)
	for i := 0; i < n; i++ {
		if err := m.Blocks[i].UnmarshalCanonical(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// HeadRequest asks a peer for its chain head and newest snapshot
// checkpoint. A joiner (or a node that was told its lag is too deep to
// tail) broadcasts it to the committee and waits for a quorum of
// HeadResponses agreeing on a snapshot (height, root) before it trusts
// any snapshot bytes.
type HeadRequest struct{}

// Kind implements consensus.Payload.
func (*HeadRequest) Kind() consensus.MsgKind { return consensus.KindBlockSync }

// MarshalCanonical implements codec.Marshaler.
func (m *HeadRequest) MarshalCanonical(w *codec.Writer) {
	w.Uint8(3) // subtype: head request
}

// UnmarshalCanonical decodes the payload.
func (m *HeadRequest) UnmarshalCanonical(r *codec.Reader) error {
	if sub := r.Uint8(); r.Err() == nil && sub != 3 {
		return consensus.ErrEnvelopeKind
	}
	return r.Err()
}

// HeadResponse reports a peer's committed head and its newest retained
// snapshot checkpoint (SnapHeight 0 when it has none). The root is what
// anchors fast-sync trust: a snapshot is installed only when a quorum
// of committee members independently reported the same (height, root).
// Peers also send it as a redirect in place of a SyncResponse when the
// requested range has been compacted away.
type HeadResponse struct {
	Height     uint64
	SnapHeight uint64
	SnapRoot   gcrypto.Hash
}

// Kind implements consensus.Payload.
func (*HeadResponse) Kind() consensus.MsgKind { return consensus.KindBlockSync }

// MarshalCanonical implements codec.Marshaler.
func (m *HeadResponse) MarshalCanonical(w *codec.Writer) {
	w.Uint8(4) // subtype: head response
	w.Uint64(m.Height)
	w.Uint64(m.SnapHeight)
	w.Raw(m.SnapRoot[:])
}

// UnmarshalCanonical decodes the payload.
func (m *HeadResponse) UnmarshalCanonical(r *codec.Reader) error {
	if sub := r.Uint8(); r.Err() == nil && sub != 4 {
		return consensus.ErrEnvelopeKind
	}
	m.Height = r.Uint64()
	m.SnapHeight = r.Uint64()
	r.RawInto(m.SnapRoot[:])
	return r.Err()
}

// SnapshotRequest asks a peer for the snapshot at exactly Height (the
// checkpoint a head quorum agreed on).
type SnapshotRequest struct {
	Height uint64
}

// Kind implements consensus.Payload.
func (*SnapshotRequest) Kind() consensus.MsgKind { return consensus.KindBlockSync }

// MarshalCanonical implements codec.Marshaler.
func (m *SnapshotRequest) MarshalCanonical(w *codec.Writer) {
	w.Uint8(5) // subtype: snapshot request
	w.Uint64(m.Height)
}

// UnmarshalCanonical decodes the payload.
func (m *SnapshotRequest) UnmarshalCanonical(r *codec.Reader) error {
	if sub := r.Uint8(); r.Err() == nil && sub != 5 {
		return consensus.ErrEnvelopeKind
	}
	m.Height = r.Uint64()
	return r.Err()
}

// SnapshotResponse carries the encoded, signed snapshot. The receiver
// independently decodes, verifies the producer signature, and checks
// the state root against the quorum-agreed root before installing —
// the carrier is untrusted.
type SnapshotResponse struct {
	Height uint64
	Data   []byte
}

// Kind implements consensus.Payload.
func (*SnapshotResponse) Kind() consensus.MsgKind { return consensus.KindBlockSync }

// MarshalCanonical implements codec.Marshaler.
func (m *SnapshotResponse) MarshalCanonical(w *codec.Writer) {
	w.Uint8(6) // subtype: snapshot response
	w.Uint64(m.Height)
	w.WriteBytes(m.Data)
}

// UnmarshalCanonical decodes the payload.
func (m *SnapshotResponse) UnmarshalCanonical(r *codec.Reader) error {
	if sub := r.Uint8(); r.Err() == nil && sub != 6 {
		return consensus.ErrEnvelopeKind
	}
	m.Height = r.Uint64()
	m.Data = r.ReadBytes()
	return r.Err()
}

// syncSubtype peeks the subtype byte of a KindBlockSync body.
func syncSubtype(body []byte) uint8 {
	if len(body) == 0 {
		return 0xFF
	}
	return body[0]
}
