package core_test

import (
	"testing"
	"time"

	"gpbft"
	"gpbft/internal/geo"
)

// witnessOpts configures a 5-node cluster (4 genesis endorsers, node 4
// a candidate) with witness supervision enabled.
func witnessOpts() gpbft.Options {
	o := fastOpts(5)
	o.GenesisEndorsers = 4
	o.MaxEndorsers = 10
	o.EraPeriod = 2 * time.Second
	o.SwitchPeriod = 100 * time.Millisecond
	o.QualificationWindow = time.Second
	o.MinReports = 3
	o.MinWitnesses = 2
	o.WitnessRangeMeters = 2000
	return o
}

// driveReports keeps all five nodes reporting, and returns the
// candidate's claimed cell.
func driveReports(c *gpbft.Cluster) string {
	for i := 0; i < 5; i++ {
		c.ScheduleReports(i, 50*time.Millisecond, 300*time.Millisecond, 40)
	}
	return geo.MustEncode(c.Position(4), geo.CSCPrecision)
}

func TestWitnessConfirmationsAdmitCandidate(t *testing.T) {
	c, err := gpbft.NewCluster(witnessOpts())
	if err != nil {
		t.Fatal(err)
	}
	cell := driveReports(c)
	// Endorsers 0 and 1 periodically confirm the candidate's presence.
	for k := 0; k < 12; k++ {
		at := time.Duration(200+k*800) * time.Millisecond
		c.SubmitWitness(at, 0, c.Address(4), cell, true)
		c.SubmitWitness(at+50*time.Millisecond, 1, c.Address(4), cell, true)
	}
	c.RunUntilIdle(30 * time.Second)
	if !c.CoreEngine(4).IsEndorser() {
		t.Fatalf("confirmed candidate not admitted (era=%d)", c.CoreEngine(4).Era())
	}
}

func TestWitnessAbsenceBlocksCandidate(t *testing.T) {
	// Nobody vouches: with MinWitnesses = 2 the candidate must stay out
	// even though its self-reports are perfect.
	c, err := gpbft.NewCluster(witnessOpts())
	if err != nil {
		t.Fatal(err)
	}
	driveReports(c)
	c.RunUntilIdle(30 * time.Second)
	if c.CoreEngine(4).IsEndorser() {
		t.Fatal("unwitnessed candidate admitted")
	}
	chain := c.Node(0).App.Chain()
	if chain.IsEndorser(c.Address(4)) {
		t.Fatal("chain committee includes unwitnessed candidate")
	}
}

func TestWitnessDisputeBlocksLiar(t *testing.T) {
	// The candidate's reports are self-consistent, two endorsers even
	// confirm — but one credible endorser disputes the claimed cell.
	// A dispute is disqualifying.
	c, err := gpbft.NewCluster(witnessOpts())
	if err != nil {
		t.Fatal(err)
	}
	cell := driveReports(c)
	for k := 0; k < 12; k++ {
		at := time.Duration(200+k*800) * time.Millisecond
		c.SubmitWitness(at, 0, c.Address(4), cell, true)
		c.SubmitWitness(at+30*time.Millisecond, 1, c.Address(4), cell, true)
		c.SubmitWitness(at+60*time.Millisecond, 2, c.Address(4), cell, false) // dispute
	}
	c.RunUntilIdle(30 * time.Second)
	if c.CoreEngine(4).IsEndorser() {
		t.Fatal("disputed candidate admitted")
	}
}

func TestWitnessFromNonEndorserNotCredible(t *testing.T) {
	// Only committee members are credible witnesses: the candidate
	// cannot vouch for itself (or have accomplices vouch).
	c, err := gpbft.NewCluster(witnessOpts())
	if err != nil {
		t.Fatal(err)
	}
	cell := driveReports(c)
	for k := 0; k < 12; k++ {
		at := time.Duration(200+k*800) * time.Millisecond
		// The candidate vouches for itself twice per tick — worthless.
		c.SubmitWitness(at, 4, c.Address(4), cell, true)
		c.SubmitWitness(at+40*time.Millisecond, 4, c.Address(4), cell, true)
	}
	c.RunUntilIdle(30 * time.Second)
	if c.CoreEngine(4).IsEndorser() {
		t.Fatal("self-witnessed candidate admitted")
	}
}

func TestWitnessRangeLimitsCredibility(t *testing.T) {
	// With a tiny witness range, even honest endorser confirmations are
	// not credible (they are too far from the claimed cell), so the
	// candidate stays out.
	o := witnessOpts()
	o.WitnessRangeMeters = 1 // nobody is within a metre
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	cell := driveReports(c)
	for k := 0; k < 12; k++ {
		at := time.Duration(200+k*800) * time.Millisecond
		c.SubmitWitness(at, 0, c.Address(4), cell, true)
		c.SubmitWitness(at+50*time.Millisecond, 1, c.Address(4), cell, true)
	}
	c.RunUntilIdle(30 * time.Second)
	if c.CoreEngine(4).IsEndorser() {
		t.Fatal("out-of-range witnesses were counted")
	}
}
