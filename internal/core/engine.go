package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/evidence"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/store"
	"gpbft/internal/types"
)

// ProposerPolicy selects how the committee is ordered for primary
// rotation within an era.
type ProposerPolicy int

const (
	// ProposerGeoTimer orders by descending geographic timer — the
	// paper's incentive bias ("A longer time in the geographic timer
	// will have a higher chance of generating a new block").
	ProposerGeoTimer ProposerPolicy = iota
	// ProposerAddress is plain canonical rotation (the ablation
	// baseline).
	ProposerAddress
)

// Config configures one G-PBFT node engine.
type Config struct {
	Chain *ledger.Chain
	Key   *gcrypto.KeyPair
	App   *runtime.App
	// Timers is shared with the inner per-era PBFT engines.
	Timers *consensus.TimerAllocator
	// Epoch maps engine time to wall-clock timestamps.
	Epoch time.Time

	// Inner PBFT knobs (passed through).
	CheckpointInterval uint64
	ViewChangeTimeout  time.Duration
	// MaxInFlight bounds how many consensus slots the inner engines
	// pipeline concurrently (0 = pbft default; 1 = serial ablation).
	MaxInFlight int

	// EraPeriod / SwitchPeriod override the chain policy when non-zero.
	EraPeriod    time.Duration
	SwitchPeriod time.Duration

	ProposerPolicy ProposerPolicy
	// WAL, when set, makes the inner consensus engines durable: every
	// vote is persisted before it is sent, and the log is rotated when
	// an era switch completes (finished eras can never conflict again).
	WAL ConsensusWAL
	// Recovered holds the records read back from the WAL at startup.
	// The engine folds the current era's records into its first inner
	// instance so a restarted endorser rejoins at the view it had
	// reached and never contradicts a vote it already sent.
	Recovered []store.WALRecord
	// DisableEraSwitch turns the era layer off (ablation: a static
	// committee forever).
	DisableEraSwitch bool
	// ForceEraSwitch performs a switch every T even when the election
	// changes nothing (an empty config change that only bumps the era).
	// This is the paper's literal behaviour ("Era switch will be made
	// every T seconds in our system") and produces the switch-period
	// latency outliers of Figure 3b.
	ForceEraSwitch bool
	// DisableEvidence stops this node from detecting misbehavior and
	// submitting evidence transactions (ablation knob, per-node). It
	// does NOT stop the node from validating and enforcing evidence
	// others commit — that is consensus state; the consensus-wide
	// enforcement ablation is Policy.DisableExpulsion in genesis.
	DisableEvidence bool

	// Snapshots, when set, enables snapshot-then-tail fast sync: this
	// node serves its retained snapshots to lagging peers and, when its
	// own lag exceeds FastSyncThreshold, installs a quorum-anchored
	// snapshot instead of replaying the gap block by block.
	Snapshots store.SnapshotProvider
	// FastSyncThreshold is the block gap at which snapshot sync is
	// preferred over tailing (0 = default 64).
	FastSyncThreshold uint64
	// SyncRetryBase / SyncRetryCap bound the capped-exponential backoff
	// on unanswered sync, head, and snapshot requests (0 = defaults
	// 500ms / 8s).
	SyncRetryBase time.Duration
	SyncRetryCap  time.Duration
}

// ConsensusWAL is the durable log the era layer threads into its inner
// PBFT instances: an append sink plus era rotation. *store.WAL and
// *store.MemWAL both satisfy it.
type ConsensusWAL interface {
	pbft.WAL
	Rotate(era uint64) error
}

// timer purposes of the era layer.
type tpurpose uint8

const (
	tEraTick tpurpose = iota + 1
	tResume
	tSyncRetry
)

// maxBuffered bounds the next-era message buffer.
const maxBuffered = 4096

// Engine is the G-PBFT era layer: a consensus.Engine that runs a fresh
// PBFT instance per era and orchestrates geographic authentication,
// era switches, block sync and announcements. Candidate nodes run the
// same engine in observer mode (no inner instance) until elected.
type Engine struct {
	cfg    Config
	self   gcrypto.Address
	chain  *ledger.Chain
	policy ledger.AdmittancePolicy

	era       uint64
	committee *consensus.Committee
	inner     *pbft.Engine // nil while not an endorser

	switching   bool
	pendingEra  uint64
	pendingAdds []gcrypto.Address

	timers   map[consensus.TimerID]tpurpose
	eraTID   consensus.TimerID
	resumeID consensus.TimerID

	buffered []*consensus.Envelope

	syncInFlight bool
	syncTarget   uint64

	// snapshot fast-sync state machine (sync.go).
	fsPhase    uint8
	fsHeads    map[gcrypto.Address]HeadResponse
	fsHeight   uint64
	fsRoot     gcrypto.Hash
	fsVoters   []gcrypto.Address
	fsVoterIdx int
	retryTID   consensus.TimerID
	retries    uint32
	retrySeq   uint64
	sstats     syncStats

	// pendingDurable is the recovered consensus state awaiting the
	// first buildInstance; consumed exactly once (later instances start
	// fresh eras with no prior promises).
	pendingDurable *pbft.DurableState

	nonce uint64

	// Accountability: proofs handed over by the inner engine's
	// detector awaiting submission, the IDs this node has already
	// submitted, the chain-detected-evidence cursor, and the
	// re-entrancy guard for flushEvidence.
	evQueue     []*evidence.Record
	evSubmitted map[gcrypto.Hash]bool
	evCursor    int
	flushing    bool

	// stats
	eraSwitches  uint64
	switchPauses time.Duration
}

// New constructs a G-PBFT node engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Chain == nil || cfg.Key == nil || cfg.App == nil {
		return nil, errors.New("gpbft: config needs Chain, Key and App")
	}
	if cfg.Timers == nil {
		cfg.Timers = consensus.NewTimerAllocator()
	}
	policy := cfg.Chain.Policy()
	if cfg.EraPeriod == 0 {
		cfg.EraPeriod = policy.EraPeriod
	}
	if cfg.SwitchPeriod == 0 {
		cfg.SwitchPeriod = policy.SwitchPeriod
	}
	if cfg.FastSyncThreshold == 0 {
		cfg.FastSyncThreshold = 64
	}
	if cfg.SyncRetryBase == 0 {
		cfg.SyncRetryBase = 500 * time.Millisecond
	}
	if cfg.SyncRetryCap == 0 {
		cfg.SyncRetryCap = 8 * time.Second
	}
	return &Engine{
		cfg:         cfg,
		self:        cfg.Key.Address(),
		chain:       cfg.Chain,
		policy:      policy,
		timers:      make(map[consensus.TimerID]tpurpose),
		evSubmitted: make(map[gcrypto.Hash]bool),
	}, nil
}

// --- accessors ---

// Era returns the engine's current era.
func (e *Engine) Era() uint64 { return e.era }

// IsEndorser reports whether this node participates in the current
// era's committee.
func (e *Engine) IsEndorser() bool { return e.inner != nil }

// Committee returns the current era's committee (nil for an observer
// that has never joined).
func (e *Engine) Committee() *consensus.Committee { return e.committee }

// Inner exposes the current PBFT instance (tests and metrics).
func (e *Engine) Inner() *pbft.Engine { return e.inner }

// Switching reports whether an era switch pause is in progress.
func (e *Engine) Switching() bool { return e.switching }

// EraSwitches returns how many era switches this node completed.
func (e *Engine) EraSwitches() uint64 { return e.eraSwitches }

// InFlight reports the inner engine's active-instance count and
// pipelining depth (0, 0 for an observer with no inner engine).
func (e *Engine) InFlight() (used, depth int) {
	if e.inner == nil {
		return 0, 0
	}
	return e.inner.InFlight()
}

// --- lifecycle ---

// Init implements consensus.Engine.
func (e *Engine) Init(now consensus.Time) []consensus.Action {
	e.era = e.chain.Era()
	restarted := e.chain.Height() > 0 || len(e.cfg.Recovered) > 0
	if len(e.cfg.Recovered) > 0 {
		e.pendingDurable = pbft.RecoverState(e.era, e.cfg.Recovered)
	}
	var acts []consensus.Action
	acts = e.buildInstance(now, acts)
	acts = e.armEraTimer(acts)
	if restarted {
		// A restarted node may have missed commits (and even era
		// switches) while it was down: pull from the committee through
		// the ordinary sync path before relying on timers to notice.
		acts = e.requestCatchUp(acts)
	}
	return acts
}

// requestCatchUp asks the committee for blocks beyond our head. The
// responses flow through the certificate-checked applySync path; peers
// that have nothing newer simply stay silent. With snapshots enabled
// the node instead opens with a head poll: if a quorum agrees on a
// checkpoint ahead of us, the gap is crossed by snapshot; otherwise
// the machinery degrades to the same block pull.
func (e *Engine) requestCatchUp(acts []consensus.Action) []consensus.Action {
	if e.cfg.Snapshots != nil {
		return append(acts, e.startFastSync(e.chain.Height())...)
	}
	com := e.committee
	if com == nil {
		var err error
		if com, err = e.buildCommittee(); err != nil {
			return acts
		}
	}
	req := consensus.Seal(e.cfg.Key, &SyncRequest{FromHeight: e.chain.Height() + 1})
	for _, addr := range com.Others(e.self) {
		acts = append(acts, consensus.Send{To: addr, Env: req})
	}
	return acts
}

// buildCommittee derives the era committee from chain state, ordered
// per the proposer policy.
func (e *Engine) buildCommittee() (*consensus.Committee, error) {
	members := e.chain.Endorsers()
	if e.cfg.ProposerPolicy == ProposerGeoTimer {
		members = OrderByGeoTimer(members, e.chain.Table())
	}
	return consensus.NewOrderedCommittee(members)
}

// buildInstance (re)creates the inner PBFT engine if self is in the
// committee, otherwise leaves the node an observer.
func (e *Engine) buildInstance(now consensus.Time, acts []consensus.Action) []consensus.Action {
	com, err := e.buildCommittee()
	if err != nil {
		return acts
	}
	e.committee = com
	if !com.IsMember(e.self) {
		e.inner = nil
		return acts
	}
	durable := e.pendingDurable
	e.pendingDurable = nil
	icfg := pbft.Config{
		Era:                e.era,
		Committee:          com,
		Key:                e.cfg.Key,
		App:                &eraApp{Application: e.cfg.App, eng: e},
		Timers:             e.cfg.Timers,
		StartHeight:        e.chain.Height() + 1,
		CheckpointInterval: e.cfg.CheckpointInterval,
		ViewChangeTimeout:  e.cfg.ViewChangeTimeout,
		MaxInFlight:        e.cfg.MaxInFlight,
		WAL:                e.cfg.WAL,
		Durable:            durable,
	}
	if !e.cfg.DisableEvidence {
		icfg.EvidenceSink = func(rec *evidence.Record) {
			e.evQueue = append(e.evQueue, rec)
		}
	}
	inner, err := pbft.New(icfg)
	if err != nil {
		return acts
	}
	e.inner = inner
	acts = append(acts, e.filterInner(now, inner.Init(now))...)
	return acts
}

// armEraTimer schedules the next Algorithm 1 pass ("Algorithm 1 will
// be executed every T seconds").
func (e *Engine) armEraTimer(acts []consensus.Action) []consensus.Action {
	if e.cfg.DisableEraSwitch || e.inner == nil {
		return acts
	}
	id := e.cfg.Timers.Next()
	e.eraTID = id
	e.timers[id] = tEraTick
	return append(acts, consensus.StartTimer{ID: id, Delay: e.cfg.EraPeriod})
}

// OnTimer implements consensus.Engine.
func (e *Engine) OnTimer(now consensus.Time, id consensus.TimerID) []consensus.Action {
	purpose, mine := e.timers[id]
	if !mine {
		if e.inner != nil && !e.switching {
			return e.filterInner(now, e.inner.OnTimer(now, id))
		}
		return nil
	}
	delete(e.timers, id)
	switch purpose {
	case tEraTick:
		return e.onEraTick(now)
	case tResume:
		return e.onResume(now)
	case tSyncRetry:
		return e.onSyncRetry(now)
	}
	return nil
}

// OnCommitApplied implements consensus.CommitNotifiable by forwarding
// to the inner era instance.
func (e *Engine) OnCommitApplied(now consensus.Time) []consensus.Action {
	if e.switching || e.inner == nil {
		return nil
	}
	return e.filterInner(now, e.inner.OnCommitApplied(now))
}

// OnRequest implements consensus.Engine. During a switch the system
// refuses to process transactions; they wait in the pool.
func (e *Engine) OnRequest(now consensus.Time, tx *types.Transaction) []consensus.Action {
	if e.switching {
		return nil
	}
	if e.inner != nil {
		return e.filterInner(now, e.inner.OnRequest(now, tx))
	}
	// Observer: relay to the first known endorser.
	if e.committee == nil {
		com, err := e.buildCommittee()
		if err != nil {
			return nil
		}
		e.committee = com
	}
	if e.committee.Size() == 0 {
		return nil
	}
	// Spread client load across the committee deterministically by the
	// sender's own address.
	target := e.committee.Member(int(e.self[0]) % e.committee.Size()).Address
	env := consensus.Seal(e.cfg.Key, &pbft.Request{Tx: *tx})
	return []consensus.Action{consensus.Send{To: target, Env: env}}
}

// OnEnvelope implements consensus.Engine.
func (e *Engine) OnEnvelope(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	switch env.MsgKind {
	case consensus.KindEraSwitch:
		return e.onAnnounce(now, env)
	case consensus.KindBlockSync:
		return e.onBlockSync(now, env)
	case consensus.KindRequest:
		if e.switching || e.inner == nil {
			return nil
		}
		return e.filterInner(now, e.inner.OnEnvelope(now, env))
	default:
		// Intra-era consensus traffic.
		msgEra, ok := peekEra(env)
		if !ok {
			return nil
		}
		if msgEra > e.era || (e.switching && msgEra == e.pendingEra) {
			// A peer finished its switch before us; hold the message
			// until our own switch completes.
			if len(e.buffered) < maxBuffered {
				e.buffered = append(e.buffered, env)
			}
			return nil
		}
		if e.inner == nil || e.switching || msgEra < e.era {
			return nil
		}
		acts := e.maybeLagSync(env)
		return append(acts, e.filterInner(now, e.inner.OnEnvelope(now, env))...)
	}
}

// maybeLagSync turns overheard commit votes for heights we do not
// have into a block-sync pull. Seeing a commit for seq beyond
// height+1 means the committee finalized blocks this node missed —
// the restarted-mid-era case, where no EraAnnounce will arrive until
// the era actually switches. The vote itself still flows to the
// inner engine; the pull runs alongside it.
func (e *Engine) maybeLagSync(env *consensus.Envelope) []consensus.Action {
	if env.MsgKind != consensus.KindCommit {
		return nil
	}
	seq, ok := peekSeq(env)
	if !ok || seq <= e.chain.Height()+1 {
		return nil
	}
	// While the snapshot state machine runs, just track the moving
	// head; the tail pull after the install covers it.
	if e.fsPhase != fsIdle {
		if seq-1 > e.syncTarget {
			e.syncTarget = seq - 1
		}
		return nil
	}
	// A commit for seq proves blocks up to seq-1 exist on the sender's
	// chain. Suppress duplicate pulls while one is in flight, but allow
	// a re-request when the head keeps moving past the current target
	// (covers a lost response: the next commit re-arms the sync).
	if e.syncInFlight && e.syncTarget >= seq-1 {
		return nil
	}
	if e.fastSyncDue(seq - 1) {
		return e.startFastSync(seq - 1)
	}
	e.syncInFlight = true
	e.syncTarget = seq - 1
	req := consensus.Seal(e.cfg.Key, &SyncRequest{FromHeight: e.chain.Height() + 1})
	return e.armSyncRetry([]consensus.Action{consensus.Send{To: env.From, Env: req}})
}

// peekEra reads the leading Era field every intra-era payload starts
// with.
func peekEra(env *consensus.Envelope) (uint64, bool) {
	switch env.MsgKind {
	case consensus.KindPrePrepare, consensus.KindPrepare, consensus.KindCommit,
		consensus.KindCheckpoint, consensus.KindViewChange, consensus.KindNewView:
		if len(env.Body) < 8 {
			return 0, false
		}
		return binary.BigEndian.Uint64(env.Body[:8]), true
	default:
		return 0, false
	}
}

// peekSeq reads the Seq field of the fixed-layout vote payloads
// (Era, View and Seq lead the PrePrepare, Prepare and Commit bodies).
func peekSeq(env *consensus.Envelope) (uint64, bool) {
	switch env.MsgKind {
	case consensus.KindPrePrepare, consensus.KindPrepare, consensus.KindCommit:
		if len(env.Body) < 24 {
			return 0, false
		}
		return binary.BigEndian.Uint64(env.Body[16:24]), true
	default:
		return 0, false
	}
}

// filterInner passes inner-engine actions through, watching committed
// blocks for the era-switch configuration transaction, then flushes
// any misbehavior evidence awaiting submission (detection may have
// fired during the very events that produced these actions).
func (e *Engine) filterInner(now consensus.Time, acts []consensus.Action) []consensus.Action {
	out := acts
	if len(acts) > 0 {
		out = make([]consensus.Action, 0, len(acts)+2)
		for _, a := range acts {
			out = append(out, a)
			cb, ok := a.(consensus.CommitBlock)
			if !ok || e.switching {
				continue
			}
			for i := range cb.Block.Txs {
				tx := &cb.Block.Txs[i]
				if tx.Type != types.TxConfig {
					continue
				}
				change, err := types.DecodeConfigChange(tx.Payload)
				if err != nil || change.NewEra != e.era+1 {
					continue
				}
				out = e.beginSwitch(change, out)
				break
			}
		}
	}
	return e.flushEvidence(now, out)
}

// flushEvidence turns pending misbehavior proofs — handed over by the
// inner engine's double-sign detector or derived by the chain from
// committed data — into evidence transactions and disseminates them
// like any client request. Submission is skipped for records already
// on-chain and offenders already convicted, so the steady state is
// quiet; the flushing guard stops the OnRequest re-entry into
// filterInner from recursing.
func (e *Engine) flushEvidence(now consensus.Time, acts []consensus.Action) []consensus.Action {
	if e.cfg.DisableEvidence || e.flushing || e.switching || e.inner == nil {
		return acts
	}
	recs, cur := e.chain.DetectedEvidence(e.evCursor)
	e.evCursor = cur
	if len(recs) == 0 && len(e.evQueue) == 0 {
		return acts
	}
	pending := append(e.evQueue, recs...)
	e.evQueue = nil
	e.flushing = true
	defer func() { e.flushing = false }()
	for _, rec := range pending {
		id := rec.ID()
		if e.evSubmitted[id] || e.chain.HasEvidence(id) {
			continue
		}
		convicted := true
		for _, a := range rec.Offenders {
			if !e.chain.IsBanned(a) {
				convicted = false
				break
			}
		}
		if convicted {
			continue // some other record already bans every offender
		}
		e.evSubmitted[id] = true
		tx := e.evidenceTx(now, rec)
		if e.cfg.App.SubmitTx(tx) != nil {
			continue
		}
		acts = append(acts, e.filterInner(now, e.inner.OnRequest(now, tx))...)
	}
	return acts
}

// evidenceTx wraps an evidence record into a signed transaction.
func (e *Engine) evidenceTx(now consensus.Time, rec *evidence.Record) *types.Transaction {
	e.nonce++
	tx := &types.Transaction{
		Type:    types.TxEvidence,
		Nonce:   (e.chain.Height()+1)<<16 | e.nonce,
		Payload: evidence.Encode(rec),
		Geo: types.GeoInfo{
			Location:  e.ownLocation(),
			Timestamp: e.cfg.Epoch.Add(now),
		},
	}
	tx.Sign(e.cfg.Key)
	return tx
}

// ownLocation resolves this node's authenticated cell centre from the
// committee record (zero point when unknown).
func (e *Engine) ownLocation() geo.Point {
	if e.committee != nil {
		if i := e.committee.IndexOf(e.self); i >= 0 {
			if pt, err := geo.Decode(e.committee.Member(i).Geohash); err == nil {
				return pt
			}
		}
	}
	return geo.Point{}
}

// beginSwitch halts the old consensus and schedules the resume after
// the switch period ("during the period of an era switch, the system
// will refuse to process or commit any transactions").
func (e *Engine) beginSwitch(change *types.ConfigChange, acts []consensus.Action) []consensus.Action {
	e.switching = true
	e.pendingEra = change.NewEra
	e.pendingAdds = make([]gcrypto.Address, 0, len(change.Add))
	for _, add := range change.Add {
		e.pendingAdds = append(e.pendingAdds, add.Address)
	}
	if e.inner != nil {
		e.inner.Halt()
	}
	if e.eraTID != 0 {
		acts = append(acts, consensus.StopTimer{ID: e.eraTID})
		delete(e.timers, e.eraTID)
		e.eraTID = 0
	}
	id := e.cfg.Timers.Next()
	e.resumeID = id
	e.timers[id] = tResume
	e.switchPauses += e.cfg.SwitchPeriod
	return append(acts, consensus.StartTimer{ID: id, Delay: e.cfg.SwitchPeriod})
}

// onResume completes the era switch: the chain has applied the config
// transaction by now, so rebuild the committee and relaunch consensus.
func (e *Engine) onResume(now consensus.Time) []consensus.Action {
	e.switching = false
	e.resumeID = 0
	newEra := e.chain.Era()
	if newEra < e.pendingEra {
		// The config block has not been applied locally (should not
		// happen: we observed its commit); stay in the old era.
		e.pendingEra = 0
		return e.armEraTimer(nil)
	}
	e.era = newEra
	e.eraSwitches++
	e.rotateWAL()

	var acts []consensus.Action
	// Announce to the freshly added endorsers so they sync and join.
	announce := consensus.Seal(e.cfg.Key, &EraAnnounce{NewEra: e.era, Height: e.chain.Height()})
	for _, addr := range e.pendingAdds {
		if addr != e.self {
			acts = append(acts, consensus.Send{To: addr, Env: announce})
		}
	}
	e.pendingAdds = nil

	acts = e.buildInstance(now, acts)
	acts = e.armEraTimer(acts)
	if e.committee != nil {
		acts = append(acts, consensus.EraSwitched{Era: e.era, Committee: e.committee.Addresses()})
	}
	// Replay consensus traffic that arrived for the new era while we
	// were still switching.
	if e.inner != nil && len(e.buffered) > 0 {
		pending := e.buffered
		e.buffered = nil
		for _, env := range pending {
			if msgEra, ok := peekEra(env); ok && msgEra == e.era {
				acts = append(acts, e.filterInner(now, e.inner.OnEnvelope(now, env))...)
			}
		}
	} else {
		e.buffered = nil
	}
	acts = e.redisseminatePending(now, acts)
	return acts
}

// redisseminatePending re-announces pooled transactions to the new
// era's committee: requests that reached only this endorser while the
// switch was in progress would otherwise sit invisible to the new
// primary until a view change rotated leadership to their holder.
func (e *Engine) redisseminatePending(now consensus.Time, acts []consensus.Action) []consensus.Action {
	if e.inner == nil {
		return acts
	}
	const resendCap = 128
	for _, tx := range e.cfg.App.PendingList(resendCap) {
		tx := tx
		acts = append(acts, e.filterInner(now, e.inner.OnRequest(now, &tx))...)
	}
	return acts
}

// onEraTick runs Algorithm 1 and, when this node leads the current
// view, proposes the configuration transaction for the next era.
func (e *Engine) onEraTick(now consensus.Time) []consensus.Action {
	e.eraTID = 0
	if e.switching || e.inner == nil {
		return e.armEraTimer(nil)
	}
	// Memory hygiene (election-table and witness pruning) happens in the
	// ledger when a config transaction commits: every node prunes at the
	// same committed block, keeping the canonical ChainState — and hence
	// snapshot roots — byte-identical across the committee.
	var acts []consensus.Action
	res := RunElection(e.chain, e.chain.Head().Header.Timestamp)
	due := !res.Stalled && (!res.IsEmpty() || e.cfg.ForceEraSwitch)
	if due && e.inner.Primary() == e.self && !e.inner.InViewChange() {
		tx := e.configTx(now, res.Change(e.era+1))
		if e.cfg.App.SubmitTx(tx) == nil {
			acts = append(acts, e.filterInner(now, e.inner.OnRequest(now, tx))...)
		}
	}
	return e.armEraTimer(acts)
}

// configTx crafts the signed configuration transaction carrying the
// election outcome.
func (e *Engine) configTx(now consensus.Time, change *types.ConfigChange) *types.Transaction {
	e.nonce++
	tx := &types.Transaction{
		Type:    types.TxConfig,
		Nonce:   (e.chain.Height()+1)<<16 | e.nonce,
		Payload: types.EncodeConfigChange(change),
		Geo: types.GeoInfo{
			Location:  e.ownLocation(),
			Timestamp: e.cfg.Epoch.Add(now),
		},
	}
	tx.Sign(e.cfg.Key)
	return tx
}

// expectedChange computes the deterministic election outcome every
// honest endorser expects in the next config transaction, or nil when
// no switch is due.
func (e *Engine) expectedChange() *types.ConfigChange {
	res := RunElection(e.chain, e.chain.Head().Header.Timestamp)
	if res.Stalled || (res.IsEmpty() && !e.cfg.ForceEraSwitch) {
		return nil
	}
	return res.Change(e.chain.Era() + 1)
}

// --- announcements and block sync ---

func (e *Engine) onAnnounce(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	var ann EraAnnounce
	if err := consensus.Open(env, consensus.KindEraSwitch, &ann); err != nil {
		return nil
	}
	// Only accept pokes from accounts we know on-chain (the announcer
	// was an endorser when it mattered; a bogus poke costs one sync
	// round trip at worst, and the sync response is certificate-checked).
	if e.chain.Height() >= ann.Height {
		return e.maybeJoin(now)
	}
	if e.fsPhase != fsIdle {
		if ann.Height > e.syncTarget {
			e.syncTarget = ann.Height
		}
		return nil
	}
	if e.syncInFlight && e.syncTarget >= ann.Height {
		return nil
	}
	if e.fastSyncDue(ann.Height) {
		return e.startFastSync(ann.Height)
	}
	e.syncInFlight = true
	e.syncTarget = ann.Height
	req := consensus.Seal(e.cfg.Key, &SyncRequest{FromHeight: e.chain.Height() + 1})
	return e.armSyncRetry([]consensus.Action{consensus.Send{To: env.From, Env: req}})
}

func (e *Engine) onBlockSync(now consensus.Time, env *consensus.Envelope) []consensus.Action {
	switch syncSubtype(env.Body) {
	case 1:
		var req SyncRequest
		if err := consensus.Open(env, consensus.KindBlockSync, &req); err != nil {
			return nil
		}
		return e.serveSync(env.From, req.FromHeight)
	case 2:
		var resp SyncResponse
		if err := consensus.Open(env, consensus.KindBlockSync, &resp); err != nil {
			return nil
		}
		return e.applySync(now, env.From, &resp)
	case 3:
		var req HeadRequest
		if err := consensus.Open(env, consensus.KindBlockSync, &req); err != nil {
			return nil
		}
		return e.onHeadRequest(env.From)
	case 4:
		var resp HeadResponse
		if err := consensus.Open(env, consensus.KindBlockSync, &resp); err != nil {
			return nil
		}
		return e.onHeadResponse(now, env.From, &resp)
	case 5:
		var req SnapshotRequest
		if err := consensus.Open(env, consensus.KindBlockSync, &req); err != nil {
			return nil
		}
		return e.onSnapshotRequest(env.From, &req)
	case 6:
		var resp SnapshotResponse
		if err := consensus.Open(env, consensus.KindBlockSync, &resp); err != nil {
			return nil
		}
		return e.onSnapshotResponse(now, env.From, &resp)
	default:
		return nil
	}
}

// serveSync answers a sync request with committed blocks (certificates
// included).
func (e *Engine) serveSync(to gcrypto.Address, from uint64) []consensus.Action {
	head := e.chain.Height()
	if from == 0 {
		from = 1
	}
	if from > head {
		return nil
	}
	if from < e.chain.BaseHeight() {
		// Compaction dropped the requested range: redirect the puller to
		// the snapshot path by answering with our head and checkpoint.
		return e.onHeadRequest(to)
	}
	resp := &SyncResponse{}
	for h := from; h <= head && len(resp.Blocks) < MaxSyncBlocks; h++ {
		b, err := e.chain.BlockAt(h)
		if err != nil {
			break
		}
		resp.Blocks = append(resp.Blocks, *b)
	}
	if len(resp.Blocks) == 0 {
		return nil
	}
	env := consensus.Seal(e.cfg.Key, resp)
	return []consensus.Action{consensus.Send{To: to, Env: env}}
}

// applySync applies certificate-carrying blocks directly through the
// application (AddBlock verifies certificates against the committee as
// of each height), then joins the new era if elected. Each applied
// block is also surfaced as an Applied CommitBlock action so the
// runtime persists it — without that, synced blocks would exist only
// in memory and vanish at the next restart.
func (e *Engine) applySync(now consensus.Time, from gcrypto.Address, resp *SyncResponse) []consensus.Action {
	var acts []consensus.Action
	// Warm the signature cache across the whole response in one parallel
	// batch before the serial per-block Commit loop: each ValidateBlock
	// then finds its transactions' signatures already accepted.
	for i := range resp.Blocks {
		types.PrewarmTxs(resp.Blocks[i].Txs)
	}
	applied := uint64(0)
	for i := range resp.Blocks {
		b := resp.Blocks[i]
		if b.Header.Height != e.chain.Height()+1 {
			continue
		}
		if b.Cert == nil {
			break // uncertified sync blocks are not trusted
		}
		if err := e.cfg.App.Commit(&b); err != nil {
			break
		}
		applied++
		acts = append(acts, consensus.CommitBlock{Block: &b, Applied: true})
	}
	if applied > 0 {
		e.sstats.blocksSynced.Add(applied)
		e.retries = 0 // the peer is answering; restart the backoff ladder
	}
	// Keep a live inner instance aligned with the new head: sync can
	// race normal consensus when this node lags inside its own era.
	if e.inner != nil && !e.switching && e.chain.Era() == e.era && e.chain.Height() >= e.inner.NextSeq() {
		acts = append(acts, e.filterInner(now, e.inner.AdvanceTo(now, e.chain.Height()))...)
	}
	e.syncInFlight = false
	if e.chain.Height() < e.syncTarget {
		// Partial response: keep pulling.
		e.syncInFlight = true
		req := consensus.Seal(e.cfg.Key, &SyncRequest{FromHeight: e.chain.Height() + 1})
		acts = append(acts, consensus.Send{To: from, Env: req})
		return e.armSyncRetry(acts)
	}
	acts = e.stopSyncRetry(acts)
	return append(acts, e.maybeJoin(now)...)
}

// rotateWAL discards the finished era's consensus records. Best
// effort: if the rotation fails the stale records stay on disk, but
// recovery filters by era, so they are simply ignored after a crash.
func (e *Engine) rotateWAL() {
	if e.cfg.WAL != nil {
		_ = e.cfg.WAL.Rotate(e.era)
	}
	// Any not-yet-consumed recovered state belongs to a finished era.
	e.pendingDurable = nil
}

// maybeJoin starts participation when the chain says this node is an
// endorser of an era newer than the engine's.
func (e *Engine) maybeJoin(now consensus.Time) []consensus.Action {
	if e.switching {
		return nil
	}
	chainEra := e.chain.Era()
	if chainEra < e.era || (chainEra == e.era && e.inner != nil) {
		return nil
	}
	if !e.chain.IsEndorser(e.self) {
		// Stay an observer but track the era.
		e.era = chainEra
		e.inner = nil
		return nil
	}
	e.era = chainEra
	e.rotateWAL()
	var acts []consensus.Action
	acts = e.buildInstance(now, acts)
	acts = e.armEraTimer(acts)
	if e.committee != nil {
		acts = append(acts, consensus.EraSwitched{Era: e.era, Committee: e.committee.Addresses()})
	}
	// Replay buffered traffic for this era.
	if e.inner != nil && len(e.buffered) > 0 {
		pending := e.buffered
		e.buffered = nil
		for _, env := range pending {
			if msgEra, ok := peekEra(env); ok && msgEra == e.era {
				acts = append(acts, e.filterInner(now, e.inner.OnEnvelope(now, env))...)
			}
		}
	}
	acts = e.redisseminatePending(now, acts)
	return acts
}

// eraApp wraps the node's application to enforce era-switch semantics
// on proposals: at most one configuration transaction per block, and
// it must equal the election outcome every honest endorser computes
// from the same committed state.
type eraApp struct {
	pbft.Application
	eng *Engine
}

// BuildBlock filters stale or foreign config transactions out of the
// proposal (they would be rejected by validators and stall the view).
// Filtered config transactions are DROPPED from the pool: a stale one
// left at the head of the FIFO would wedge proposals forever once it
// became the only buildable transaction.
func (a *eraApp) BuildBlock(now consensus.Time, era, view, seq uint64) *types.Block {
	b := a.Application.BuildBlock(now, era, view, seq)
	if b == nil {
		return nil
	}
	var expected []byte
	expectedComputed := false
	keep := b.Txs[:0]
	configKept := false
	for i := range b.Txs {
		tx := b.Txs[i]
		if tx.Type == types.TxConfig {
			drop := false
			if configKept {
				drop = true
			} else {
				if !expectedComputed {
					expectedComputed = true
					if ch := a.eng.expectedChange(); ch != nil {
						expected = types.EncodeConfigChange(ch)
					}
				}
				drop = expected == nil || !bytes.Equal(tx.Payload, expected)
			}
			if drop {
				a.eng.cfg.App.Pool().Drop(tx.ID())
				continue
			}
			configKept = true
		}
		keep = append(keep, tx)
	}
	if len(keep) == 0 {
		return nil
	}
	if len(keep) != len(b.Txs) {
		return types.NewBlock(b.Header, append([]types.Transaction(nil), keep...))
	}
	return b
}

// BuildBlockOn implements pbft.SpeculativeApplication for pipelined
// slots. Configuration transactions are a pipeline barrier: they only
// travel through the serial path (seq == head+1, via BuildBlock), where
// era semantics are judged against the committed head. A speculative
// build that would carry one returns nil instead, so the window drains
// and the switch proposal goes out serially; nothing is ever built on
// top of a config-carrying parent.
func (a *eraApp) BuildBlockOn(now consensus.Time, era, view, seq uint64, parent *types.Block, exclude map[gcrypto.Hash]bool) *types.Block {
	app, ok := a.Application.(pbft.SpeculativeApplication)
	if !ok {
		return nil
	}
	if blockHasConfig(parent) {
		return nil // an era switch is landing; let it finish first
	}
	b := app.BuildBlockOn(now, era, view, seq, parent, exclude)
	if b == nil || blockHasConfig(b) {
		return nil
	}
	return b
}

// ValidateBlockOn implements pbft.SpeculativeApplication, mirroring the
// build-side barrier: no configuration transaction is acceptable on the
// speculative path, and no block may extend a config-carrying parent.
func (a *eraApp) ValidateBlockOn(b, parent *types.Block) error {
	if blockHasConfig(parent) {
		return errors.New("gpbft: speculative child of a config block")
	}
	if blockHasConfig(b) {
		return errors.New("gpbft: config transaction outside the serial path")
	}
	app, ok := a.Application.(pbft.SpeculativeApplication)
	if !ok {
		return errors.New("gpbft: application does not support speculative validation")
	}
	return app.ValidateBlockOn(b, parent)
}

// blockHasConfig reports whether any transaction in b is a TxConfig.
func blockHasConfig(b *types.Block) bool {
	for i := range b.Txs {
		if b.Txs[i].Type == types.TxConfig {
			return true
		}
	}
	return false
}

// ValidateBlock additionally checks proposed config transactions
// against the locally computed election outcome.
func (a *eraApp) ValidateBlock(b *types.Block) error {
	configs := 0
	var expected []byte
	expectedComputed := false
	for i := range b.Txs {
		tx := &b.Txs[i]
		if tx.Type != types.TxConfig {
			continue
		}
		configs++
		if configs > 1 {
			return errors.New("gpbft: multiple config transactions in one block")
		}
		if !expectedComputed {
			expectedComputed = true
			if ch := a.eng.expectedChange(); ch != nil {
				expected = types.EncodeConfigChange(ch)
			}
		}
		if expected == nil {
			return errors.New("gpbft: unexpected config transaction (no switch due)")
		}
		if !bytes.Equal(tx.Payload, expected) {
			return errors.New("gpbft: config transaction disagrees with local election")
		}
	}
	return a.Application.ValidateBlock(b)
}
