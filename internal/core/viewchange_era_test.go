package core_test

import (
	"testing"
	"time"

	"gpbft"
)

// TestViewChangeInsideEra: the era's primary crashes mid-era; the
// inner PBFT instance view-changes and the system keeps committing,
// and the next era switch expels the silent (crashed) endorser.
func TestViewChangeInsideEra(t *testing.T) {
	o := fastOpts(6)
	o.EraPeriod = 4 * time.Second
	o.SwitchPeriod = 100 * time.Millisecond
	o.ViewChangeTimeout = 400 * time.Millisecond
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		c.ScheduleReports(i, 50*time.Millisecond, 500*time.Millisecond, 30)
	}
	// Identify era-0's primary (geo timers all zero at era start, so
	// the order is the canonical one; simplest is to ask an engine
	// after startup). Crash it at t = 1s.
	var crashed int
	c.Net().Schedule(time.Second, func(now time.Duration) {
		for i := 0; i < 6; i++ {
			eng := c.CoreEngine(i)
			if eng.IsEndorser() && eng.Inner() != nil && eng.Inner().IsPrimary() {
				crashed = i
				c.Net().Crash(c.Address(i))
				return
			}
		}
	})
	for k := 0; k < 20; k++ {
		c.SubmitNodeTx(time.Duration(1200+k*300)*time.Millisecond, k%6, []byte{byte(k)}, 1)
	}
	c.RunUntilIdle(time.Minute)

	// Count commits everywhere except the crashed node.
	committed := 0
	for k := 0; k < 20; k++ {
		_ = k
	}
	committed = c.Metrics().CommittedCount()
	// Txs submitted at the crashed node after its crash are lost (its
	// mempool is dark); everything else must commit.
	if committed < 15 {
		t.Fatalf("only %d of 20 txs committed after primary crash", committed)
	}
	// Survivors made progress past the dead primary: either the inner
	// instance moved to a later view, or an era switch replaced it
	// entirely (each era starts a fresh instance at view 0, so the
	// view-change counter does not persist across switches).
	progressed := false
	for i := 0; i < 6; i++ {
		if i == crashed {
			continue
		}
		eng := c.CoreEngine(i)
		if eng.EraSwitches() > 0 {
			progressed = true
		}
		if inner := eng.Inner(); inner != nil && inner.View() > 0 {
			progressed = true
		}
	}
	if !progressed {
		t.Fatal("survivors made no progress past the crashed primary")
	}
	// The crashed endorser stops reporting and is expelled at an era
	// switch.
	chain := c.Node((crashed + 1) % 6).App.Chain()
	if chain.IsEndorser(c.Address(crashed)) {
		t.Fatalf("crashed endorser still in committee (era=%d)", chain.Era())
	}
}
