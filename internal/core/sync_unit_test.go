package core_test

import (
	"testing"
	"time"

	"gpbft"
	"gpbft/internal/consensus"
	"gpbft/internal/core"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
)

// syncActions extracts the (to, kind) pairs of Send actions.
func sendKinds(acts []consensus.Action) []consensus.MsgKind {
	var out []consensus.MsgKind
	for _, a := range acts {
		if s, ok := a.(consensus.Send); ok {
			out = append(out, s.Env.MsgKind)
		}
	}
	return out
}

// grownCluster builds a 5-node cluster (4 endorsers + 1 observer) with
// some committed blocks, and returns it after quiescence.
func grownCluster(t *testing.T, blocks int) *gpbft.Cluster {
	t.Helper()
	o := fastOpts(5)
	o.GenesisEndorsers = 4
	o.MaxEndorsers = 8
	o.BatchSize = 1
	o.DisableEraSwitch = true
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < blocks; k++ {
		c.SubmitNodeTx(time.Duration(10+k*30)*time.Millisecond, k%4, []byte{byte(k)}, 1)
	}
	c.RunUntilIdle(time.Minute)
	if got := c.Node(0).App.Chain().Height(); got < uint64(blocks) {
		t.Fatalf("setup: height %d < %d", got, blocks)
	}
	return c
}

// TestServeSyncBounds drives an endorser engine's sync-serving path
// directly with crafted requests.
func TestServeSyncBounds(t *testing.T) {
	c := grownCluster(t, 10)
	endorser := c.CoreEngine(0)
	requester := gcrypto.DeterministicKeyPair(4) // the observer's key

	ask := func(from uint64) []consensus.Action {
		req := consensus.Seal(requester, &core.SyncRequest{FromHeight: from})
		return endorser.OnEnvelope(0, req)
	}
	// A normal request is answered with one block-sync response.
	acts := ask(1)
	kinds := sendKinds(acts)
	if len(kinds) != 1 || kinds[0] != consensus.KindBlockSync {
		t.Fatalf("expected one sync response, got %v", kinds)
	}
	// FromHeight 0 is normalized to 1 (genesis is never shipped).
	if got := sendKinds(ask(0)); len(got) != 1 {
		t.Fatalf("from=0: %v", got)
	}
	// A request beyond the head gets nothing.
	if got := sendKinds(ask(10_000)); len(got) != 0 {
		t.Fatalf("beyond head: %v", got)
	}
}

// TestAnnounceTriggersSingleSync: repeated announcements for the same
// height must not spam sync requests.
func TestAnnounceTriggersSingleSync(t *testing.T) {
	c := grownCluster(t, 6)
	observer := c.CoreEngine(4)
	endorserKey := c.Node(0).Key

	h := c.Node(0).App.Chain().Height()
	ann := consensus.Seal(endorserKey, &core.EraAnnounce{NewEra: 0, Height: h})
	first := sendKinds(observer.OnEnvelope(0, ann))
	if len(first) != 1 || first[0] != consensus.KindBlockSync {
		t.Fatalf("first announce: %v", first)
	}
	// Duplicate announce while a sync is in flight: no second request.
	if again := sendKinds(observer.OnEnvelope(0, ann)); len(again) != 0 {
		t.Fatalf("duplicate announce spawned requests: %v", again)
	}
	// An announce for a HIGHER height re-requests.
	ann2 := consensus.Seal(endorserKey, &core.EraAnnounce{NewEra: 0, Height: h + 5})
	if more := sendKinds(observer.OnEnvelope(0, ann2)); len(more) != 1 {
		t.Fatalf("higher announce: %v", more)
	}
}

// TestLaggingCommitTriggersSync: an endorser that overhears a commit
// vote for a height beyond its own head has provably missed blocks
// (a node restarted mid-era sees exactly this) and must pull them
// right away instead of waiting for the next era announcement.
func TestLaggingCommitTriggersSync(t *testing.T) {
	c := grownCluster(t, 4)
	endorser := c.CoreEngine(0)
	peer := c.Node(1).Key
	h := c.Node(0).App.Chain().Height()

	syncReqs := func(acts []consensus.Action) int {
		n := 0
		for _, k := range sendKinds(acts) {
			if k == consensus.KindBlockSync {
				n++
			}
		}
		return n
	}
	commitAt := func(seq uint64) []consensus.Action {
		m := &pbft.Commit{Era: 0, View: 0, Seq: seq, Digest: gcrypto.Hash{0xab}}
		return endorser.OnEnvelope(0, consensus.Seal(peer, m))
	}

	// A commit for the very next height is normal consensus traffic.
	if n := syncReqs(commitAt(h + 1)); n != 0 {
		t.Fatalf("commit for next height spawned %d sync requests", n)
	}
	// A commit beyond head+1 reveals the gap: exactly one pull.
	if n := syncReqs(commitAt(h + 3)); n != 1 {
		t.Fatalf("lagging commit spawned %d sync requests, want 1", n)
	}
	// While that pull is in flight, an equal-or-lower commit is quiet.
	if n := syncReqs(commitAt(h + 3)); n != 0 {
		t.Fatalf("duplicate lagging commit spawned %d requests", n)
	}
	// The head moving past the target re-arms the sync (covers a lost
	// response: the next commit re-requests).
	if n := syncReqs(commitAt(h + 6)); n != 1 {
		t.Fatalf("higher lagging commit spawned %d requests, want 1", n)
	}
}

// TestSyncResponseRejectsUncertifiedBlocks: a sync response whose
// blocks lack commit certificates must not advance the observer chain.
func TestSyncResponseRejectsUncertifiedBlocks(t *testing.T) {
	c := grownCluster(t, 4)
	observer := c.CoreEngine(4)
	endorserKey := c.Node(0).Key
	chain0 := c.Node(0).App.Chain()

	// Strip certificates from copies of the real blocks.
	var resp core.SyncResponse
	for h := uint64(1); h <= chain0.Height(); h++ {
		b, err := chain0.BlockAt(h)
		if err != nil {
			t.Fatal(err)
		}
		naked := *b
		naked.Cert = nil
		resp.Blocks = append(resp.Blocks, naked)
	}
	env := consensus.Seal(endorserKey, &resp)
	observer.OnEnvelope(0, env)
	if got := c.Node(4).App.Chain().Height(); got != 0 {
		t.Fatalf("observer accepted %d uncertified blocks", got)
	}

	// The genuine certified blocks DO advance it.
	var good core.SyncResponse
	for h := uint64(1); h <= chain0.Height(); h++ {
		b, _ := chain0.BlockAt(h)
		good.Blocks = append(good.Blocks, *b)
	}
	observer.OnEnvelope(0, consensus.Seal(endorserKey, &good))
	if got := c.Node(4).App.Chain().Height(); got != chain0.Height() {
		t.Fatalf("observer height %d after certified sync, want %d", got, chain0.Height())
	}
}

// TestSyncAppliedBlocksReachRuntime: every block the sync path applies
// must also be surfaced as an Applied CommitBlock action — that is how
// the runtime persists it to the block log. A silent in-engine apply
// would commit blocks that vanish at the next restart.
func TestSyncAppliedBlocksReachRuntime(t *testing.T) {
	c := grownCluster(t, 4)
	observer := c.CoreEngine(4)
	endorserKey := c.Node(0).Key
	chain0 := c.Node(0).App.Chain()

	var resp core.SyncResponse
	for h := uint64(1); h <= chain0.Height(); h++ {
		b, _ := chain0.BlockAt(h)
		resp.Blocks = append(resp.Blocks, *b)
	}
	acts := observer.OnEnvelope(0, consensus.Seal(endorserKey, &resp))
	var applied []uint64
	for _, a := range acts {
		if cb, ok := a.(consensus.CommitBlock); ok {
			if !cb.Applied {
				t.Fatal("sync-path CommitBlock must carry Applied (the engine already applied it)")
			}
			applied = append(applied, cb.Block.Header.Height)
		}
	}
	if uint64(len(applied)) != chain0.Height() {
		t.Fatalf("surfaced %d applied blocks, want %d", len(applied), chain0.Height())
	}
	for i, h := range applied {
		if h != uint64(i+1) {
			t.Fatalf("applied heights out of order: %v", applied)
		}
	}
}

// TestSyncResponseIgnoresGappyBlocks: responses must apply only a
// contiguous prefix starting at the observer's next height.
func TestSyncResponseIgnoresGappyBlocks(t *testing.T) {
	c := grownCluster(t, 6)
	observer := c.CoreEngine(4)
	endorserKey := c.Node(0).Key
	chain0 := c.Node(0).App.Chain()

	// Offer blocks 3..6 to a node at height 0: nothing applies.
	var resp core.SyncResponse
	for h := uint64(3); h <= 6; h++ {
		b, _ := chain0.BlockAt(h)
		resp.Blocks = append(resp.Blocks, *b)
	}
	observer.OnEnvelope(0, consensus.Seal(endorserKey, &resp))
	if got := c.Node(4).App.Chain().Height(); got != 0 {
		t.Fatalf("gappy sync applied %d blocks", got)
	}
}
