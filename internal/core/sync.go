package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/runtime"
	"gpbft/internal/store"
)

// debugFastSync turns on stderr tracing of the fast-sync state
// machine; development aid only.
const debugFastSync = false

// Snapshot-then-tail fast sync.
//
// A node that lags far behind (a joiner, or a revenant whose peers have
// compacted the blocks it would need to tail) does not replay history
// block by block. Instead it:
//
//  1. broadcasts a HeadRequest to the committee it last knew,
//  2. waits for a quorum of HeadResponses agreeing on one snapshot
//     (height, root) ahead of its own head — the trust anchor: no
//     single peer, and no producer signature alone, is believed about
//     what the state at a checkpoint is,
//  3. fetches the snapshot from one of the agreeing peers, verifies
//     the producer signature and that the state root matches the
//     quorum-agreed root, installs it wholesale, and
//  4. tails only the blocks after the checkpoint through the ordinary
//     certificate-checked sync path.
//
// Any failure — an unverifiable snapshot, a root mismatch, silent
// peers — rotates to the next agreeing peer and ultimately falls back
// to full block replay. Partial state is never installed
// (ledger.InstallState is all-or-nothing on a decoded, validated
// state).
//
// Every outstanding request (tail pull, head collection, snapshot
// fetch) is guarded by a single retry timer with capped exponential
// backoff and deterministic jitter; peers are rotated across retries.

// fast-sync phases.
const (
	fsIdle  uint8 = iota // no snapshot sync in progress
	fsHeads              // collecting HeadResponses, waiting for a quorum
	fsFetch              // quorum reached, fetching the snapshot
)

// maxSyncRetries bounds re-issues of one logical catch-up before the
// engine gives up and waits for the next trigger (an overheard commit,
// an era announce).
const maxSyncRetries = 6

// syncStats counts catch-up activity. Atomics, not plain fields: the
// metrics endpoint snapshots them from outside the event loop.
type syncStats struct {
	retries        atomic.Uint64
	blocksSynced   atomic.Uint64
	snapsInstalled atomic.Uint64
	snapsRejected  atomic.Uint64
	snapsServed    atomic.Uint64
	mode           atomic.Uint32
}

// SyncStats implements runtime.SyncStatsProvider. Mode reports how the
// most recent deep catch-up (one that considered a snapshot) resolved;
// shallow in-era tail pulls do not touch it.
func (e *Engine) SyncStats() runtime.SyncStats {
	return runtime.SyncStats{
		Retries:            e.sstats.retries.Load(),
		BlocksSynced:       e.sstats.blocksSynced.Load(),
		SnapshotsInstalled: e.sstats.snapsInstalled.Load(),
		SnapshotsRejected:  e.sstats.snapsRejected.Load(),
		SnapshotsServed:    e.sstats.snapsServed.Load(),
		Mode:               runtime.SyncMode(e.sstats.mode.Load()),
	}
}

// syncCommittee returns the committee the sync machinery addresses —
// the current one, or one rebuilt from (possibly stale) chain state.
func (e *Engine) syncCommittee() *consensus.Committee {
	if e.committee != nil {
		return e.committee
	}
	com, err := e.buildCommittee()
	if err != nil {
		return nil
	}
	e.committee = com
	return com
}

// fastSyncDue reports whether a gap to target is deep enough to prefer
// a snapshot over tailing blocks.
func (e *Engine) fastSyncDue(target uint64) bool {
	return e.cfg.Snapshots != nil && e.fsPhase == fsIdle &&
		target > e.chain.Height() &&
		target-e.chain.Height() >= e.cfg.FastSyncThreshold
}

// startFastSync enters the head-collection phase.
func (e *Engine) startFastSync(target uint64) []consensus.Action {
	com := e.syncCommittee()
	if com == nil || len(com.Others(e.self)) == 0 {
		return nil
	}
	e.fsPhase = fsHeads
	e.fsHeads = make(map[gcrypto.Address]HeadResponse)
	e.syncInFlight = true
	if target > e.syncTarget {
		e.syncTarget = target
	}
	e.retries = 0
	acts := e.broadcastHeadRequest(nil)
	return e.armSyncRetry(acts)
}

// broadcastHeadRequest asks every other committee member for its head
// and newest snapshot checkpoint.
func (e *Engine) broadcastHeadRequest(acts []consensus.Action) []consensus.Action {
	com := e.syncCommittee()
	if com == nil {
		return acts
	}
	env := consensus.Seal(e.cfg.Key, &HeadRequest{})
	return append(acts, consensus.Broadcast{To: com.Others(e.self), Env: env})
}

// onHeadRequest serves this node's head and newest snapshot.
func (e *Engine) onHeadRequest(from gcrypto.Address) []consensus.Action {
	resp := &HeadResponse{Height: e.chain.Height()}
	if e.cfg.Snapshots != nil {
		if snap, err := e.cfg.Snapshots.Latest(); err == nil && snap != nil {
			resp.SnapHeight = snap.Height()
			resp.SnapRoot = snap.Root()
		}
	}
	return []consensus.Action{consensus.Send{To: from, Env: consensus.Seal(e.cfg.Key, resp)}}
}

// onHeadResponse folds one peer's head into the quorum tally. Outside
// the collection phase it doubles as a redirect: a peer answered a
// block pull with its head because it compacted the requested range —
// the only way forward is a snapshot, regardless of gap depth.
func (e *Engine) onHeadResponse(now consensus.Time, from gcrypto.Address, hr *HeadResponse) []consensus.Action {
	if e.fsPhase != fsHeads {
		if e.fsPhase == fsIdle && e.cfg.Snapshots != nil && hr.SnapHeight > e.chain.Height() {
			return e.startFastSync(hr.Height)
		}
		return nil
	}
	e.fsHeads[from] = *hr
	com := e.syncCommittee()
	if com == nil {
		return nil
	}
	// Quorum on an exact (height, root) pair ahead of us?
	if hr.SnapHeight > e.chain.Height() {
		votes := 0
		for _, h := range e.fsHeads {
			if h.SnapHeight == hr.SnapHeight && h.SnapRoot == hr.SnapRoot {
				votes++
			}
		}
		if votes >= com.Quorum() {
			return e.beginSnapshotFetch(hr.SnapHeight, hr.SnapRoot)
		}
	}
	// Everyone answered and no pair reached quorum (peers disagree, or
	// nobody holds a snapshot ahead of us): fall back to block replay.
	if len(e.fsHeads) >= len(com.Others(e.self)) {
		return e.fallbackReplay(nil)
	}
	return nil
}

// beginSnapshotFetch moves to the fetch phase: request the agreed
// snapshot from the first agreeing peer (deterministic order), rotating
// on failure.
func (e *Engine) beginSnapshotFetch(height uint64, root gcrypto.Hash) []consensus.Action {
	e.fsPhase = fsFetch
	e.fsHeight = height
	e.fsRoot = root
	e.fsVoters = e.fsVoters[:0]
	for addr, h := range e.fsHeads {
		if h.SnapHeight == height && h.SnapRoot == root {
			e.fsVoters = append(e.fsVoters, addr)
		}
	}
	sort.Slice(e.fsVoters, func(i, j int) bool { return e.fsVoters[i].Less(e.fsVoters[j]) })
	e.fsVoterIdx = 0
	e.retries = 0
	acts := e.requestSnapshot(nil)
	return e.armSyncRetry(acts)
}

// requestSnapshot asks the current voter for the agreed snapshot.
func (e *Engine) requestSnapshot(acts []consensus.Action) []consensus.Action {
	if e.fsVoterIdx >= len(e.fsVoters) {
		return acts
	}
	env := consensus.Seal(e.cfg.Key, &SnapshotRequest{Height: e.fsHeight})
	return append(acts, consensus.Send{To: e.fsVoters[e.fsVoterIdx], Env: env})
}

// nextSnapshotVoter rotates to the next agreeing peer, or falls back to
// full replay when every one of them failed us.
func (e *Engine) nextSnapshotVoter(acts []consensus.Action) []consensus.Action {
	e.fsVoterIdx++
	if e.fsVoterIdx >= len(e.fsVoters) {
		return e.fallbackReplay(acts)
	}
	acts = e.requestSnapshot(acts)
	return e.armSyncRetry(acts)
}

// onSnapshotRequest serves a retained snapshot on an exact height
// match. Only heights this node advertised can match, so there is no
// historic-lookup surface to abuse.
func (e *Engine) onSnapshotRequest(from gcrypto.Address, req *SnapshotRequest) []consensus.Action {
	if e.cfg.Snapshots == nil {
		return nil
	}
	snap, err := e.cfg.Snapshots.Latest()
	if err != nil || snap == nil || snap.Height() != req.Height {
		return nil
	}
	e.sstats.snapsServed.Add(1)
	resp := &SnapshotResponse{Height: req.Height, Data: store.EncodeSnapshot(snap)}
	return []consensus.Action{consensus.Send{To: from, Env: consensus.Seal(e.cfg.Key, resp)}}
}

// onSnapshotResponse verifies and installs the fetched snapshot. The
// carrier is untrusted: the bytes must decode, carry a valid producer
// signature, and hash to exactly the quorum-agreed root, and the ledger
// must accept the state (genesis match, strictly ahead of our head) —
// otherwise the peer is rotated and the snapshot counted rejected.
func (e *Engine) onSnapshotResponse(now consensus.Time, from gcrypto.Address, resp *SnapshotResponse) []consensus.Action {
	if e.fsPhase != fsFetch || resp.Height != e.fsHeight {
		return nil
	}
	snap, err := store.DecodeSnapshot(resp.Data)
	if err == nil {
		err = snap.Verify()
	}
	if err == nil && (snap.Height() != e.fsHeight || snap.Root() != e.fsRoot) {
		err = store.ErrCorruptSnapshot
	}
	if err == nil {
		err = e.chain.InstallState(snap.State)
	}
	if err != nil {
		e.sstats.snapsRejected.Add(1)
		return e.nextSnapshotVoter(nil)
	}
	e.sstats.snapsInstalled.Add(1)
	e.sstats.mode.Store(uint32(runtime.SyncModeSnapshot))
	_ = e.cfg.Snapshots.Add(snap) // retain locally for our own restarts and peers
	e.resetFastSync()

	acts := []consensus.Action{consensus.SnapshotInstalled{Era: snap.Era(), Height: snap.Height()}}
	// The installed state usually belongs to a newer era: join it (or
	// keep observing it) exactly like a block-sync catch-up would.
	acts = append(acts, e.maybeJoin(now)...)
	if e.inner != nil && !e.switching && e.chain.Era() == e.era && e.chain.Height() >= e.inner.NextSeq() {
		acts = append(acts, e.filterInner(now, e.inner.AdvanceTo(now, e.chain.Height()))...)
	}
	// Tail the blocks after the checkpoint through the ordinary path.
	e.syncInFlight = true
	if e.syncTarget < snap.Height() {
		e.syncTarget = snap.Height()
	}
	e.retries = 0
	req := consensus.Seal(e.cfg.Key, &SyncRequest{FromHeight: e.chain.Height() + 1})
	acts = append(acts, consensus.Send{To: from, Env: req})
	return e.armSyncRetry(acts)
}

// fallbackReplay abandons the snapshot path and pulls blocks from the
// best-informed peer. Correctness never depends on snapshots — they are
// an optimization with a verified-or-replay failure mode.
func (e *Engine) fallbackReplay(acts []consensus.Action) []consensus.Action {
	if debugFastSync {
		fmt.Printf("DEBUG fallbackReplay self=%v height=%d heads=%v\n", e.self, e.chain.Height(), e.fsHeads)
	}
	// Prefer the peer that reported the highest head.
	var best gcrypto.Address
	bestHeight := uint64(0)
	haveBest := false
	for addr, h := range e.fsHeads {
		if !haveBest || h.Height > bestHeight || (h.Height == bestHeight && addr.Less(best)) {
			best, bestHeight, haveBest = addr, h.Height, true
		}
	}
	e.resetFastSync()
	e.sstats.mode.Store(uint32(runtime.SyncModeReplay))
	e.syncInFlight = true
	if bestHeight > e.syncTarget {
		// Replay has to reach the head the peers reported, not just the
		// target that opened the fast-sync attempt (a restart polls
		// heads knowing only its own height).
		e.syncTarget = bestHeight
	}
	if !haveBest {
		best = e.rotationPeer()
	}
	if best == (gcrypto.Address{}) {
		e.syncInFlight = false
		return acts
	}
	req := consensus.Seal(e.cfg.Key, &SyncRequest{FromHeight: e.chain.Height() + 1})
	acts = append(acts, consensus.Send{To: best, Env: req})
	return e.armSyncRetry(acts)
}

// resetFastSync clears the snapshot state machine back to idle.
func (e *Engine) resetFastSync() {
	e.fsPhase = fsIdle
	e.fsHeads = nil
	e.fsVoters = nil
	e.fsVoterIdx = 0
	e.fsHeight = 0
	e.fsRoot = gcrypto.Hash{}
}

// --- retry timer ---

// armSyncRetry (re)arms the single sync retry timer with the current
// backoff delay.
func (e *Engine) armSyncRetry(acts []consensus.Action) []consensus.Action {
	if e.retryTID != 0 {
		acts = append(acts, consensus.StopTimer{ID: e.retryTID})
		delete(e.timers, e.retryTID)
	}
	id := e.cfg.Timers.Next()
	e.retryTID = id
	e.timers[id] = tSyncRetry
	return append(acts, consensus.StartTimer{ID: id, Delay: e.backoffDelay()})
}

// stopSyncRetry cancels the retry timer after a catch-up completes.
func (e *Engine) stopSyncRetry(acts []consensus.Action) []consensus.Action {
	if e.retryTID != 0 {
		acts = append(acts, consensus.StopTimer{ID: e.retryTID})
		delete(e.timers, e.retryTID)
		e.retryTID = 0
	}
	e.retries = 0
	return acts
}

// backoffDelay is capped exponential backoff with deterministic jitter:
// the engine must stay a pure function of its inputs (the simulator
// replays it), so the jitter is derived from the node address and the
// attempt counter rather than a random source.
func (e *Engine) backoffDelay() time.Duration {
	base := e.cfg.SyncRetryBase
	d := base << e.retries
	if d > e.cfg.SyncRetryCap || d <= 0 {
		d = e.cfg.SyncRetryCap
	}
	e.retrySeq++
	var buf [28]byte
	copy(buf[:20], e.self[:])
	binary.BigEndian.PutUint64(buf[20:], e.retrySeq)
	h := gcrypto.HashBytes(buf[:])
	jitter := time.Duration(binary.BigEndian.Uint64(h[:8]) % uint64(base/2+1))
	return d + jitter
}

// rotationPeer picks a committee peer round-robin by attempt count.
func (e *Engine) rotationPeer() gcrypto.Address {
	com := e.syncCommittee()
	if com == nil {
		return gcrypto.Address{}
	}
	others := com.Others(e.self)
	if len(others) == 0 {
		return gcrypto.Address{}
	}
	return others[int(e.retrySeq)%len(others)]
}

// onSyncRetry fires when an outstanding sync/head/snapshot request went
// unanswered for a full backoff window.
func (e *Engine) onSyncRetry(now consensus.Time) []consensus.Action {
	e.retryTID = 0
	if e.fsPhase == fsIdle && !e.syncInFlight {
		return nil // satisfied in the meantime
	}
	if e.retries >= maxSyncRetries {
		// Give up on this round. If we were mid-snapshot-dance, degrade
		// to replay first; a plain pull just goes quiet until the next
		// overheard commit or era announce re-triggers it.
		if e.fsPhase != fsIdle {
			return e.fallbackReplay(nil)
		}
		e.syncInFlight = false
		return nil
	}
	e.retries++
	e.sstats.retries.Add(1)
	var acts []consensus.Action
	switch e.fsPhase {
	case fsHeads:
		acts = e.broadcastHeadRequest(acts)
	case fsFetch:
		// The current voter is silent; rotate.
		return e.nextSnapshotVoter(acts)
	default:
		req := consensus.Seal(e.cfg.Key, &SyncRequest{FromHeight: e.chain.Height() + 1})
		to := e.rotationPeer()
		if to == (gcrypto.Address{}) {
			e.syncInFlight = false
			return acts
		}
		acts = append(acts, consensus.Send{To: to, Env: req})
	}
	return e.armSyncRetry(acts)
}
