package core

import (
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/types"
)

var (
	epoch  = time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)
	region = geo.NewRegion(geo.Point{Lng: 114.17, Lat: 22.30}, geo.Point{Lng: 114.19, Lat: 22.32})
)

// spot returns a distinct in-region point per index (≥ ~20 m apart).
func spot(i int) geo.Point {
	return geo.Point{Lng: 114.171 + float64(i)*0.0004, Lat: 22.301 + float64(i%7)*0.0005}
}

// fixture builds a chain with nEndorsers genesis endorsers and a
// policy tuned for fast elections.
func fixture(t *testing.T, nEndorsers int) *ledger.Chain {
	t.Helper()
	g := &ledger.Genesis{ChainID: "core-test", Timestamp: epoch}
	g.Policy = ledger.AdmittancePolicy{
		MinEndorsers:        4,
		MaxEndorsers:        8,
		Region:              region,
		QualificationWindow: 10 * time.Second,
		MinReports:          3,
		EraPeriod:           5 * time.Second,
		SwitchPeriod:        250 * time.Millisecond,
		ReportInterval:      time.Second,
	}
	for i := 0; i < nEndorsers; i++ {
		kp := gcrypto.DeterministicKeyPair(i)
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: kp.Address(), PubKey: kp.Public(),
			Geohash: geo.MustEncode(spot(i), geo.CSCPrecision),
		})
	}
	chain, err := ledger.NewChain(g)
	if err != nil {
		t.Fatal(err)
	}
	return chain
}

// reportTx builds a signed location report from key index i.
func reportTx(i int, nonce uint64, loc geo.Point, at time.Time) types.Transaction {
	tx := types.Transaction{
		Type:  types.TxLocationReport,
		Nonce: nonce,
		Geo:   types.GeoInfo{Location: loc, Timestamp: at},
	}
	tx.Sign(gcrypto.DeterministicKeyPair(i))
	return tx
}

// commit appends a block of txs to the chain.
func commit(t *testing.T, chain *ledger.Chain, at time.Time, txs []types.Transaction) {
	t.Helper()
	head := chain.Head()
	b := types.NewBlock(types.BlockHeader{
		Height:    head.Header.Height + 1,
		Era:       head.Header.Era,
		Seq:       head.Header.Height + 1,
		PrevHash:  head.Hash(),
		Proposer:  gcrypto.DeterministicKeyPair(0).Address(),
		Timestamp: at,
	}, txs)
	if err := chain.AddBlock(b); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// feedReports commits periodic reports for the given key index at loc,
// every second from start for n seconds.
func feedReports(t *testing.T, chain *ledger.Chain, idx int, loc geo.Point, start time.Time, n int) {
	t.Helper()
	for k := 0; k < n; k++ {
		at := start.Add(time.Duration(k) * time.Second)
		commit(t, chain, at, []types.Transaction{reportTx(idx, uint64(k+1), loc, at)})
	}
}

// feedAllEndorsers keeps all genesis endorsers reporting so re-auth
// passes.
func feedAllEndorsers(t *testing.T, chain *ledger.Chain, nEndorsers, seconds int) time.Time {
	t.Helper()
	var last time.Time
	for k := 0; k < seconds; k++ {
		at := epoch.Add(time.Duration(k) * time.Second)
		var txs []types.Transaction
		for i := 0; i < nEndorsers; i++ {
			txs = append(txs, reportTx(i, uint64(k+1), spot(i), at))
		}
		commit(t, chain, at, txs)
		last = at
	}
	return last
}

func TestElectionKeepsHealthyCommittee(t *testing.T) {
	chain := fixture(t, 4)
	asOf := feedAllEndorsers(t, chain, 4, 20)
	res := RunElection(chain, asOf)
	if !res.IsEmpty() {
		t.Fatalf("healthy committee should yield empty change: %+v", res)
	}
}

func TestElectionExpelsSilentEndorser(t *testing.T) {
	chain := fixture(t, 5)
	// Endorsers 0-3 report; endorser 4 is silent.
	var asOf time.Time
	for k := 0; k < 20; k++ {
		at := epoch.Add(time.Duration(k) * time.Second)
		var txs []types.Transaction
		for i := 0; i < 4; i++ {
			txs = append(txs, reportTx(i, uint64(k+1), spot(i), at))
		}
		commit(t, chain, at, txs)
		asOf = at
	}
	res := RunElection(chain, asOf)
	silent := gcrypto.DeterministicKeyPair(4).Address()
	if len(res.Invalid) != 1 || res.Invalid[0] != silent {
		t.Fatalf("invalid=%v, want [%s]", res.Invalid, silent.Short())
	}
	if res.Rejected[silent] != "insufficient geographic reports" {
		t.Fatalf("reason: %q", res.Rejected[silent])
	}
}

func TestElectionExpelsMovedEndorser(t *testing.T) {
	chain := fixture(t, 5)
	var asOf time.Time
	for k := 0; k < 20; k++ {
		at := epoch.Add(time.Duration(k) * time.Second)
		var txs []types.Transaction
		for i := 0; i < 4; i++ {
			txs = append(txs, reportTx(i, uint64(k+1), spot(i), at))
		}
		// Endorser 4 wanders between two cells.
		loc := spot(4)
		if k%2 == 1 {
			loc = spot(5)
		}
		txs = append(txs, reportTx(4, uint64(k+1), loc, at))
		commit(t, chain, at, txs)
		asOf = at
	}
	res := RunElection(chain, asOf)
	mover := gcrypto.DeterministicKeyPair(4).Address()
	if len(res.Invalid) != 1 || res.Invalid[0] != mover {
		t.Fatalf("invalid=%v, want the mover", res.Invalid)
	}
	if res.Rejected[mover] != "location changed during window" {
		t.Fatalf("reason: %q", res.Rejected[mover])
	}
}

func TestElectionQualifiesResidentCandidate(t *testing.T) {
	chain := fixture(t, 4)
	// Candidate (key 10) reports from a fixed spot for > the window.
	var asOf time.Time
	for k := 0; k < 15; k++ {
		at := epoch.Add(time.Duration(k) * time.Second)
		txs := []types.Transaction{reportTx(10, uint64(k+1), spot(10), at)}
		for i := 0; i < 4; i++ {
			txs = append(txs, reportTx(i, uint64(k+100), spot(i), at))
		}
		commit(t, chain, at, txs)
		asOf = at
	}
	res := RunElection(chain, asOf)
	cand := gcrypto.DeterministicKeyPair(10).Address()
	if len(res.Qualified) != 1 || res.Qualified[0].Address != cand {
		t.Fatalf("qualified=%v rejected=%v", res.Qualified, res.Rejected)
	}
	if res.Qualified[0].PubKey == nil || res.Qualified[0].Geohash == "" {
		t.Fatal("qualified info incomplete")
	}
	// The change payload carries the delta for the next era.
	ch := res.Change(1)
	if ch.NewEra != 1 || len(ch.Add) != 1 || len(ch.Remove) != 0 {
		t.Fatalf("change: %+v", ch)
	}
}

func TestElectionRejectsShortResidency(t *testing.T) {
	chain := fixture(t, 4)
	var asOf time.Time
	// Only 5 seconds of residency; window is 10.
	for k := 0; k < 5; k++ {
		at := epoch.Add(time.Duration(k) * time.Second)
		txs := []types.Transaction{reportTx(10, uint64(k+1), spot(10), at)}
		for i := 0; i < 4; i++ {
			txs = append(txs, reportTx(i, uint64(k+100), spot(i), at))
		}
		commit(t, chain, at, txs)
		asOf = at
	}
	res := RunElection(chain, asOf)
	cand := gcrypto.DeterministicKeyPair(10).Address()
	if len(res.Qualified) != 0 {
		t.Fatalf("short-residency candidate admitted")
	}
	if res.Rejected[cand] != "geographic timer below qualification window" {
		t.Fatalf("reason: %q", res.Rejected[cand])
	}
}

func TestElectionRejectsMovingCandidate(t *testing.T) {
	chain := fixture(t, 4)
	var asOf time.Time
	for k := 0; k < 15; k++ {
		at := epoch.Add(time.Duration(k) * time.Second)
		loc := spot(10)
		if k == 12 {
			loc = spot(11) // one hop near the end of the window
		}
		txs := []types.Transaction{reportTx(10, uint64(k+1), loc, at)}
		for i := 0; i < 4; i++ {
			txs = append(txs, reportTx(i, uint64(k+100), spot(i), at))
		}
		commit(t, chain, at, txs)
		asOf = at
	}
	res := RunElection(chain, asOf)
	if len(res.Qualified) != 0 {
		t.Fatal("moving candidate admitted")
	}
}

func TestElectionSybilSameCellRejected(t *testing.T) {
	chain := fixture(t, 4)
	var asOf time.Time
	// Keys 10 and 11 both claim spot(10): the clone attack.
	for k := 0; k < 15; k++ {
		at := epoch.Add(time.Duration(k) * time.Second)
		txs := []types.Transaction{
			reportTx(10, uint64(k+1), spot(10), at),
			reportTx(11, uint64(k+1), spot(10), at.Add(time.Millisecond)),
		}
		for i := 0; i < 4; i++ {
			txs = append(txs, reportTx(i, uint64(k+100), spot(i), at))
		}
		commit(t, chain, at, txs)
		asOf = at
	}
	res := RunElection(chain, asOf)
	if len(res.Qualified) != 0 {
		t.Fatalf("sybil pair admitted: %v", res.Qualified)
	}
	for _, idx := range []int{10, 11} {
		addr := gcrypto.DeterministicKeyPair(idx).Address()
		if res.Rejected[addr] != "CSC cell contested (possible Sybil)" {
			t.Fatalf("key %d reason: %q", idx, res.Rejected[addr])
		}
	}
}

func TestElectionRejectsOutOfRegion(t *testing.T) {
	chain := fixture(t, 4)
	outside := geo.Point{Lng: 100, Lat: 10}
	var asOf time.Time
	for k := 0; k < 15; k++ {
		at := epoch.Add(time.Duration(k) * time.Second)
		// Region enforcement happens at block validation for txs, so
		// feed the table directly to simulate a pre-committed liar.
		chain.Table().Record(geo.Report{Location: outside, Timestamp: at,
			Address: gcrypto.DeterministicKeyPair(10).Address().String()})
		var txs []types.Transaction
		for i := 0; i < 4; i++ {
			txs = append(txs, reportTx(i, uint64(k+100), spot(i), at))
		}
		commit(t, chain, at, txs)
		asOf = at
	}
	res := RunElection(chain, asOf)
	if len(res.Qualified) != 0 {
		t.Fatal("out-of-region candidate admitted")
	}
}

func TestElectionRespectsBlacklistAndCap(t *testing.T) {
	chain := fixture(t, 4)
	banned := gcrypto.DeterministicKeyPair(10).Address()
	chain.Genesis().Policy.Blacklist = []gcrypto.Address{banned}

	var asOf time.Time
	// Candidates 10..16 (7 of them); cap is 8, committee is 4 → room 4.
	for k := 0; k < 15; k++ {
		at := epoch.Add(time.Duration(k) * time.Second)
		var txs []types.Transaction
		for cand := 10; cand <= 16; cand++ {
			// Stagger first reports so geo timers differ: candidate 16
			// has been resident longest.
			txs = append(txs, reportTx(cand, uint64(k+1), spot(cand), at))
		}
		for i := 0; i < 4; i++ {
			txs = append(txs, reportTx(i, uint64(k+100), spot(i), at))
		}
		commit(t, chain, at, txs)
		asOf = at
	}
	res := RunElection(chain, asOf)
	if len(res.Qualified) != 4 {
		t.Fatalf("qualified %d, want 4 (cap)", len(res.Qualified))
	}
	for _, q := range res.Qualified {
		if q.Address == banned {
			t.Fatal("blacklisted candidate admitted")
		}
	}
	if res.Rejected[banned] != "blacklisted" {
		t.Fatalf("banned reason: %q", res.Rejected[banned])
	}
}

func TestElectionWhitelistBypassesQualification(t *testing.T) {
	chain := fixture(t, 4)
	vip := gcrypto.DeterministicKeyPair(10).Address()
	chain.Genesis().Policy.Whitelist = []gcrypto.Address{vip}

	// A single report — far from qualifying normally.
	at := epoch.Add(time.Second)
	commit(t, chain, at, []types.Transaction{reportTx(10, 1, spot(10), at)})
	// Endorsers keep reporting.
	var asOf time.Time
	for k := 2; k < 8; k++ {
		att := epoch.Add(time.Duration(k) * time.Second)
		var txs []types.Transaction
		for i := 0; i < 4; i++ {
			txs = append(txs, reportTx(i, uint64(k+100), spot(i), att))
		}
		commit(t, chain, att, txs)
		asOf = att
	}
	res := RunElection(chain, asOf)
	if len(res.Qualified) != 1 || res.Qualified[0].Address != vip {
		t.Fatalf("whitelisted candidate not admitted: %+v rejected=%v", res.Qualified, res.Rejected)
	}
}

func TestElectionStallsBelowMinimum(t *testing.T) {
	chain := fixture(t, 4)
	// Nobody reports: all four endorsers would be expelled, leaving 0
	// < min 4 and no candidates. The election must stall rather than
	// emit a committee-destroying change.
	res := RunElection(chain, epoch.Add(time.Minute))
	if !res.Stalled {
		t.Fatalf("expected stalled election, got %+v", res)
	}
	if !res.IsEmpty() {
		t.Fatal("stalled election must carry no change")
	}
}

func TestElectionExpelsForkProposer(t *testing.T) {
	chain := fixture(t, 5)
	asOf := feedAllEndorsers(t, chain, 5, 20)

	// Manufacture fork evidence from endorser 2.
	head := chain.Head()
	forker := gcrypto.DeterministicKeyPair(2).Address()
	conflict := types.NewBlock(types.BlockHeader{
		Height:    head.Header.Height, // already committed height
		Era:       head.Header.Era,
		Seq:       head.Header.Seq,
		PrevHash:  head.Header.PrevHash,
		Proposer:  forker,
		Timestamp: asOf.Add(time.Second),
	}, nil)
	if err := chain.AddBlock(conflict); err == nil {
		t.Fatal("conflicting block must be rejected")
	}
	if len(chain.Forks()) != 1 {
		t.Fatal("fork evidence not recorded")
	}

	res := RunElection(chain, asOf)
	found := false
	for _, a := range res.Invalid {
		if a == forker {
			found = true
		}
	}
	if !found {
		t.Fatalf("fork proposer not expelled: invalid=%v", res.Invalid)
	}
}

func TestOrderByGeoTimer(t *testing.T) {
	chain := fixture(t, 4)
	table := chain.Table()
	// Give endorser 2 the longest residency, endorser 0 none.
	for i, hours := range map[int]int{1: 1, 2: 10, 3: 5} {
		addr := gcrypto.DeterministicKeyPair(i).Address().String()
		table.Record(geo.Report{Location: spot(i), Timestamp: epoch, Address: addr})
		table.Record(geo.Report{Location: spot(i), Timestamp: epoch.Add(time.Duration(hours) * time.Hour), Address: addr})
		_ = i
	}
	ordered := OrderByGeoTimer(chain.Endorsers(), table)
	if ordered[0].Address != gcrypto.DeterministicKeyPair(2).Address() {
		t.Fatal("longest-resident endorser must lead the rotation")
	}
	if ordered[1].Address != gcrypto.DeterministicKeyPair(3).Address() {
		t.Fatal("second-longest must be second")
	}
	if ordered[3].Address != gcrypto.DeterministicKeyPair(0).Address() {
		t.Fatal("zero-timer endorser must be last")
	}
}
