// Package core implements the paper's primary contribution: the
// Geographic-PBFT era layer. It wraps a fresh PBFT instance per era
// ("G-PBFT can be regarded as a splice of multiple successive PBFT",
// Section III-B4) and adds:
//
//   - geographic authentication of endorsers and candidates
//     (Algorithm 1), driven by the on-chain election table;
//   - the Sybil guard of Section IV-A1 (no two identities in one CSC
//     cell, deployment-region membership);
//   - the era-switch mechanism of Section III-E, agreed through a
//     configuration transaction committed by the old committee, with a
//     switch period during which no transactions commit;
//   - the incentive mechanism's proposer bias (longer geographic timer
//     ⇒ earlier in the primary rotation) and expulsion of endorsers
//     that miss blocks or fork.
package core

import (
	"sort"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/types"
)

// ElectionResult is the outcome of one Algorithm 1 pass.
type ElectionResult struct {
	// Invalid are current endorsers that failed re-authentication
	// (moved, under-reported, left the region, or caused a fork).
	Invalid []gcrypto.Address
	// Qualified are candidates admitted for the next era, best first.
	Qualified []types.EndorserInfo
	// Rejected maps candidate addresses to the reason they failed
	// qualification (diagnostics and tests).
	Rejected map[gcrypto.Address]string
	// Stalled reports that applying the removals would shrink the
	// committee below the policy minimum even after additions; the
	// protocol then keeps the old committee and stops switching, as the
	// paper prescribes the system to halt below the minimum.
	Stalled bool
}

// IsEmpty reports whether the result changes nothing.
func (r *ElectionResult) IsEmpty() bool {
	return len(r.Invalid) == 0 && len(r.Qualified) == 0
}

// Change converts the result into the config-transaction payload for
// the next era.
func (r *ElectionResult) Change(newEra uint64) *types.ConfigChange {
	return &types.ConfigChange{
		NewEra: newEra,
		Add:    append([]types.EndorserInfo(nil), r.Qualified...),
		Remove: append([]gcrypto.Address(nil), r.Invalid...),
	}
}

// RunElection executes Algorithm 1 against the chain's election table.
// asOf anchors all lookbacks; callers pass the head block's timestamp
// so every honest endorser computes the identical result from the same
// committed state.
//
// Lines 2-14 of the algorithm re-authenticate current endorsers over
// the last era period; lines 15-26 qualify candidates over the
// qualification window.
func RunElection(chain *ledger.Chain, asOf time.Time) ElectionResult {
	policy := chain.Policy()
	table := chain.Table()
	// Anchor lookbacks at table time: under load, committed reports
	// lag the head timestamp by the consensus queue delay, and judging
	// devices against wall time would starve everyone. Table time is
	// itself derived from committed state, so it is identical on every
	// honest endorser.
	if tt := table.LatestTimestamp(); !tt.IsZero() && tt.Before(asOf) {
		asOf = tt
	}
	res := ElectionResult{Rejected: make(map[gcrypto.Address]string)}

	endorsers := chain.Endorsers()
	current := make(map[gcrypto.Address]bool, len(endorsers))
	for _, e := range endorsers {
		current[e.Address] = true
	}

	// Endorsers that produced fork evidence are expelled outright:
	// "If there are block missing and forking caused by an endorser,
	// the endorser will be removed from the endorser list."
	forkers := make(map[gcrypto.Address]bool)
	for _, f := range chain.Forks() {
		forkers[f.Proposer] = true
	}

	// --- lines 2-14: re-authenticate the committee ---
	authSince := asOf.Add(-policy.EraPeriod)
	for _, v := range endorsers {
		addr := v.Address
		// Committed evidence outranks the whitelist: a proof of
		// misbehavior is a consensus decision, while the whitelist is
		// only a genesis presumption of honesty.
		if !policy.DisableExpulsion && chain.IsBanned(addr) {
			res.Rejected[addr] = "expelled by committed evidence"
			res.Invalid = append(res.Invalid, addr)
			continue
		}
		if policy.Whitelisted(addr) {
			continue // whitelisted endorsers stay without qualification
		}
		if forkers[addr] {
			res.Invalid = append(res.Invalid, addr)
			continue
		}
		g := table.ReportsSince(addr.String(), authSince)
		if reason, ok := disqualify(g, &policy, policy.MinReports); ok {
			res.Rejected[addr] = reason
			res.Invalid = append(res.Invalid, addr)
		}
	}

	// --- lines 15-26: qualify candidates ---
	room := policy.MaxEndorsers - (len(endorsers) - len(res.Invalid))
	if room > 0 {
		qualSince := asOf.Add(-policy.QualificationWindow)
		type scored struct {
			info  types.EndorserInfo
			timer time.Duration
		}
		var pool []scored
		for _, addrStr := range table.Devices() {
			addr, err := gcrypto.ParseAddress(addrStr)
			if err != nil || current[addr] {
				continue
			}
			if policy.Blacklisted(addr) {
				res.Rejected[addr] = "blacklisted"
				continue
			}
			if !policy.DisableExpulsion && chain.IsBanned(addr) {
				// Readmission refused: conviction is permanent.
				res.Rejected[addr] = "expelled by committed evidence"
				continue
			}
			pub := chain.AccountKey(addr)
			if pub == nil {
				res.Rejected[addr] = "unknown public key"
				continue
			}
			entry, ok := table.LatestEntry(addrStr)
			if !ok {
				continue
			}
			if policy.Whitelisted(addr) {
				// "Nodes in the whitelist can be identified as
				// endorsers directly without any qualifications."
				pool = append(pool, scored{
					info:  types.EndorserInfo{Address: addr, PubKey: pub, Geohash: entry.CSC.Geohash},
					timer: 1<<62 - 1,
				})
				continue
			}
			g := table.ReportsSince(addrStr, qualSince)
			if reason, bad := disqualify(g, &policy, policy.MinReports); bad {
				res.Rejected[addr] = reason
				continue
			}
			// "An IoT device stays at the same location (has the same
			// CSC) for 72 hours will be elected as an endorser."
			if entry.Timer < policy.QualificationWindow {
				res.Rejected[addr] = "geographic timer below qualification window"
				continue
			}
			// Sybil guard: the CSC cell must have exactly one occupant
			// over the window — "different nodes cannot report the same
			// geographic information at the same time".
			if occ := table.CellOccupants(entry.CSC.Geohash, qualSince); len(occ) > 1 {
				res.Rejected[addr] = "CSC cell contested (possible Sybil)"
				continue
			}
			// Witness supervision (threat model: "nodes can monitor and
			// supervise each other"): when enabled, the claimed cell
			// must be confirmed by enough nearby endorsers, and any
			// credible dispute is disqualifying — this catches liars
			// whose self-reports are perfectly consistent.
			if policy.MinWitnesses > 0 {
				if reason, bad := witnessVerdict(chain, &policy, addr, entry.CSC.Geohash, qualSince); bad {
					res.Rejected[addr] = reason
					continue
				}
			}
			pool = append(pool, scored{
				info:  types.EndorserInfo{Address: addr, PubKey: pub, Geohash: entry.CSC.Geohash},
				timer: entry.Timer,
			})
		}
		// Longest-resident candidates first (the incentive's loyalty
		// signal), address as the deterministic tiebreak.
		sort.Slice(pool, func(i, j int) bool {
			if pool[i].timer != pool[j].timer {
				return pool[i].timer > pool[j].timer
			}
			return pool[i].info.Address.Less(pool[j].info.Address)
		})
		if len(pool) > room {
			for _, s := range pool[room:] {
				res.Rejected[s.info.Address] = "committee at maximum size"
			}
			pool = pool[:room]
		}
		for _, s := range pool {
			res.Qualified = append(res.Qualified, s.info)
		}
	}

	sort.Slice(res.Invalid, func(i, j int) bool { return res.Invalid[i].Less(res.Invalid[j]) })

	// Below-minimum guard: the paper stops the system under the
	// minimum; we refuse the switch instead so the old committee keeps
	// serving (conservative, documented in DESIGN.md).
	if len(endorsers)-len(res.Invalid)+len(res.Qualified) < policy.MinEndorsers {
		return ElectionResult{Stalled: true, Rejected: res.Rejected}
	}
	return res
}

// witnessVerdict evaluates committed witness statements about a
// candidate's claimed cell: only statements from current endorsers
// located within the witness range are credible; one credible dispute
// rejects; fewer than MinWitnesses confirmations rejects.
func witnessVerdict(chain *ledger.Chain, policy *ledger.AdmittancePolicy, subject gcrypto.Address, cell string, since time.Time) (string, bool) {
	cellCenter, err := geo.Decode(cell)
	if err != nil {
		return "unresolvable claimed cell", true
	}
	endorserCells := make(map[gcrypto.Address]string)
	for _, e := range chain.Endorsers() {
		endorserCells[e.Address] = e.Geohash
	}
	confirms := make(map[gcrypto.Address]bool)
	for _, st := range chain.Witnesses().StatementsFor(subject, since) {
		if st.Geohash != cell {
			continue // statement about an older claim
		}
		wCell, isEndorser := endorserCells[st.Witness]
		if !isEndorser {
			continue // only committee members are credible witnesses
		}
		if policy.WitnessRangeMeters > 0 {
			wPos, err := geo.Decode(wCell)
			if err != nil || wPos.DistanceMeters(cellCenter) > policy.WitnessRangeMeters {
				continue // witness too far away to know
			}
		}
		if !st.Seen {
			return "disputed by witness (claimed location unoccupied)", true
		}
		confirms[st.Witness] = true
	}
	if len(confirms) < policy.MinWitnesses {
		return "insufficient witness confirmations", true
	}
	return "", false
}

// disqualify applies the shared checks of Algorithm 1 to a report
// window: enough reports (Len(G) >= n), no movement (all lng/lat
// equal), and region membership.
func disqualify(g []ledger.Entry, policy *ledger.AdmittancePolicy, minReports int) (string, bool) {
	if len(g) < minReports {
		return "insufficient geographic reports", true
	}
	first := g[0].CSC.Geohash
	for i := 1; i < len(g); i++ {
		if g[i].CSC.Geohash != first {
			return "location changed during window", true
		}
	}
	if !policy.Region.IsZero() {
		pt, err := geo.Decode(first)
		if err != nil || !policy.InRegion(pt) {
			return "outside deployment region", true
		}
	}
	return "", false
}

// OrderByGeoTimer orders committee members by descending geographic
// timer (address tiebreak): the primary rotation then favours
// longer-resident endorsers, implementing the incentive's block
// generation bias.
func OrderByGeoTimer(members []types.EndorserInfo, table *ledger.ElectionTable) []types.EndorserInfo {
	out := make([]types.EndorserInfo, len(members))
	copy(out, members)
	sort.Slice(out, func(i, j int) bool {
		ti := table.Timer(out[i].Address.String())
		tj := table.Timer(out[j].Address.String())
		if ti != tj {
			return ti > tj
		}
		return out[i].Address.Less(out[j].Address)
	})
	return out
}
