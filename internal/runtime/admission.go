package runtime

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// Admission defaults.
const (
	// DefaultAdmissionBurst multiplies Rate to size the token bucket
	// when Burst is unset.
	DefaultAdmissionBurst = 2.0
	// DefaultMaxIdentities bounds the bucket table.
	DefaultMaxIdentities = 4096
	// DefaultRetryAfterMin floors the retry-after hint sent to clients.
	DefaultRetryAfterMin = 200 * time.Millisecond

	// admissionRecalcInterval rate-limits shed-level recomputation on
	// the Admit fast path.
	admissionRecalcInterval = 100 * time.Millisecond
	// hysteresisFrac: the shed level steps down only when pool
	// occupancy is comfortably below the current level's threshold,
	// preventing oscillation right at the boundary.
	hysteresisFrac = 0.8
)

// RejectError is returned by Admission.Admit (and surfaced through
// Node.Submit) when a transaction is refused before reaching the
// mempool. It carries what the signed TxRejected reply needs.
type RejectError struct {
	Reason     types.RejectReason
	RetryAfter time.Duration
}

// Error implements error.
func (e *RejectError) Error() string {
	return fmt.Sprintf("runtime: tx rejected (%s, retry after %s)", e.Reason, e.RetryAfter)
}

// AdmissionConfig tunes the ingress admission controller.
type AdmissionConfig struct {
	// Rate is the sustained per-identity admission rate in tx/s.
	// <= 0 means no per-identity limiting (shed levels still apply).
	Rate float64
	// Burst is the token-bucket depth (instantaneous burst allowance
	// in transactions). 0 selects max(DefaultAdmissionBurst*Rate, 8).
	Burst float64
	// MaxIdentities bounds the bucket table (0 = DefaultMaxIdentities).
	// At the bound the stalest bucket is recycled deterministically, so
	// a Sybil flood of fresh identities cannot grow memory without
	// bound — each fresh identity instead costs an attacker one bucket
	// slot and gets at most one burst through.
	MaxIdentities int
	// ShedThresholds are pool-occupancy fractions at which the shed
	// level rises to 1, 2 and 3. Zeros select 0.50 / 0.75 / 0.90.
	ShedThresholds [3]float64
	// LatencyTarget escalates the shed level by one while the commit
	// latency EWMA exceeds it (0 = latency input disabled).
	LatencyTarget time.Duration
	// RetryAfterMin floors the retry-after hint (0 = default).
	RetryAfterMin time.Duration
	// Exempt identities are always admitted without charging a bucket
	// (a node's own control traffic: location reports, evidence).
	Exempt []gcrypto.Address
}

func (c *AdmissionConfig) fill() {
	if c.Burst <= 0 {
		c.Burst = DefaultAdmissionBurst * c.Rate
		if c.Burst < 8 {
			c.Burst = 8
		}
	}
	if c.MaxIdentities <= 0 {
		c.MaxIdentities = DefaultMaxIdentities
	}
	if c.ShedThresholds == ([3]float64{}) {
		c.ShedThresholds = [3]float64{0.50, 0.75, 0.90}
	}
	if c.RetryAfterMin <= 0 {
		c.RetryAfterMin = DefaultRetryAfterMin
	}
}

// tokenBucket is one identity's admission budget. Refill is computed
// lazily from the elapsed consensus.Time, so the same code is exact
// under the deterministic simulator and the real-time runner.
type tokenBucket struct {
	tokens float64
	last   consensus.Time
}

// Admission is a per-identity token-bucket rate limiter combined with a
// graceful-degradation controller. The controller watches mempool
// occupancy, consensus in-flight saturation and the commit latency EWMA
// and raises a shed level from 0 (normal) to 3 (control traffic only):
//
//	level 1 — shed the bulk lane (identities over their fair share)
//	level 2 — additionally halve every identity's effective rate
//	level 3 — admit only control-lane traffic
//
// Admit is safe for concurrent use. Observe is expected from a single
// goroutine (the node's commit path).
type Admission struct {
	cfg AdmissionConfig

	mu         sync.Mutex
	buckets    map[gcrypto.Address]*tokenBucket
	exempt     map[gcrypto.Address]bool
	lastRecalc consensus.Time

	level  atomic.Int32
	ewmaNs atomic.Int64

	pool     *Mempool
	inflight func() (used, depth int)

	accepted     atomic.Uint64
	rejectedRate atomic.Uint64
	shed         atomic.Uint64
}

// NewAdmission builds an admission controller. Bind a pool (and
// optionally an in-flight probe) before use so the shed controller has
// load signals; without a pool only rate limiting is active.
func NewAdmission(cfg AdmissionConfig) *Admission {
	cfg.fill()
	a := &Admission{
		cfg:     cfg,
		buckets: make(map[gcrypto.Address]*tokenBucket),
		exempt:  make(map[gcrypto.Address]bool, len(cfg.Exempt)),
	}
	for _, addr := range cfg.Exempt {
		a.exempt[addr] = true
	}
	return a
}

// BindPool points the shed controller at the node's mempool; lane
// classification then follows the pool's per-identity fair-share state.
func (a *Admission) BindPool(p *Mempool) { a.pool = p }

// BindInFlight installs the consensus pipeline occupancy probe.
func (a *Admission) BindInFlight(fn func() (used, depth int)) { a.inflight = fn }

// Exempt marks an identity as never rate-limited or shed (own traffic).
func (a *Admission) Exempt(addr gcrypto.Address) {
	a.mu.Lock()
	a.exempt[addr] = true
	a.mu.Unlock()
}

// Level returns the current shed level (0..3).
func (a *Admission) Level() int {
	if a == nil {
		return 0
	}
	return int(a.level.Load())
}

// lane classifies tx for shedding purposes.
func (a *Admission) lane(tx *types.Transaction) Lane {
	if a.pool != nil {
		return a.pool.ClassifyLane(tx)
	}
	return laneForType(tx.Type)
}

// Admit charges the sender's bucket and applies the current shed level;
// a nil error admits the transaction. Rejections are *RejectError with
// a reason and a retry-after hint. A nil *Admission admits everything.
func (a *Admission) Admit(now consensus.Time, tx *types.Transaction) error {
	if a == nil {
		return nil
	}
	a.maybeRecalc(now)

	sender := tx.Sender
	a.mu.Lock()
	if a.exempt[sender] {
		a.mu.Unlock()
		a.accepted.Add(1)
		return nil
	}
	a.mu.Unlock()

	lane := a.lane(tx)
	lvl := a.level.Load()
	if (lvl >= 1 && lane == LaneBulk) || (lvl >= 3 && lane != LaneControl) {
		a.shed.Add(1)
		return &RejectError{Reason: types.RejectShed, RetryAfter: a.shedRetryAfter(lvl)}
	}

	if a.cfg.Rate <= 0 {
		a.accepted.Add(1)
		return nil
	}
	cost := 1.0
	if lvl >= 2 {
		cost = 2 // halves the effective per-identity rate under heavy load
	}
	a.mu.Lock()
	b := a.bucket(sender, now)
	if dt := now - b.last; dt > 0 {
		b.tokens += a.cfg.Rate * dt.Seconds()
		if b.tokens > a.cfg.Burst {
			b.tokens = a.cfg.Burst
		}
	}
	if now > b.last {
		b.last = now
	}
	if b.tokens < cost {
		need := cost - b.tokens
		a.mu.Unlock()
		ra := time.Duration(need / a.cfg.Rate * float64(time.Second))
		if ra < a.cfg.RetryAfterMin {
			ra = a.cfg.RetryAfterMin
		}
		a.rejectedRate.Add(1)
		return &RejectError{Reason: types.RejectRateLimit, RetryAfter: ra}
	}
	b.tokens -= cost
	a.mu.Unlock()
	a.accepted.Add(1)
	return nil
}

// bucket returns (creating if needed) the sender's bucket; a.mu held.
func (a *Admission) bucket(sender gcrypto.Address, now consensus.Time) *tokenBucket {
	if b := a.buckets[sender]; b != nil {
		return b
	}
	if len(a.buckets) >= a.cfg.MaxIdentities {
		a.recycleStalest()
	}
	b := &tokenBucket{tokens: a.cfg.Burst, last: now}
	a.buckets[sender] = b
	return b
}

// recycleStalest deterministically evicts the least-recently-charged
// bucket (ties broken by address order); a.mu held.
func (a *Admission) recycleStalest() {
	var victim gcrypto.Address
	var stalest consensus.Time
	first := true
	for addr, b := range a.buckets {
		if first || b.last < stalest || (b.last == stalest && addr.Less(victim)) {
			victim, stalest, first = addr, b.last, false
		}
	}
	if !first {
		delete(a.buckets, victim)
	}
}

// shedRetryAfter scales the back-off hint with the shed level.
func (a *Admission) shedRetryAfter(lvl int32) time.Duration {
	ra := a.cfg.RetryAfterMin * time.Duration(1<<uint(lvl))
	if ra <= 0 {
		ra = DefaultRetryAfterMin
	}
	return ra
}

// maybeRecalc refreshes the shed level at most once per interval.
func (a *Admission) maybeRecalc(now consensus.Time) {
	a.mu.Lock()
	if now >= a.lastRecalc && now-a.lastRecalc < admissionRecalcInterval {
		a.mu.Unlock()
		return
	}
	a.lastRecalc = now
	a.mu.Unlock()
	a.Recalc()
}

// Observe feeds one commit's latency into the EWMA (α = 1/8) and
// refreshes the shed level. Called from the node's commit path.
func (a *Admission) Observe(now consensus.Time, commitLatency time.Duration) {
	if a == nil || commitLatency < 0 {
		return
	}
	for {
		old := a.ewmaNs.Load()
		next := int64(commitLatency)
		if old != 0 {
			next = old - old/8 + int64(commitLatency)/8
		}
		if a.ewmaNs.CompareAndSwap(old, next) {
			break
		}
	}
	a.mu.Lock()
	a.lastRecalc = now
	a.mu.Unlock()
	a.Recalc()
}

// Recalc recomputes the shed level from the bound load signals and
// returns it. Levels rise immediately but step down one at a time, and
// only once occupancy is below hysteresisFrac of the current level's
// threshold.
func (a *Admission) Recalc() int {
	frac := 0.0
	if a.pool != nil && a.pool.Cap() > 0 {
		frac = float64(a.pool.Len()) / float64(a.pool.Cap())
	}
	target := int32(0)
	for i, th := range a.cfg.ShedThresholds {
		if th > 0 && frac >= th {
			target = int32(i + 1)
		}
	}
	if a.inflight != nil {
		if used, depth := a.inflight(); depth > 0 && used >= depth && target < 1 {
			target = 1
		}
	}
	if a.cfg.LatencyTarget > 0 && time.Duration(a.ewmaNs.Load()) > a.cfg.LatencyTarget && target < 3 {
		target++
	}
	cur := a.level.Load()
	switch {
	case target > cur:
		a.level.Store(target)
	case target < cur:
		if frac < a.cfg.ShedThresholds[cur-1]*hysteresisFrac {
			a.level.Store(cur - 1)
		}
	}
	return int(a.level.Load())
}

// AdmissionStats snapshots the controller's counters.
type AdmissionStats struct {
	Accepted     uint64 // admitted submissions
	RejectedRate uint64 // refused by per-identity token buckets
	Shed         uint64 // refused by the load-shed controller
	Level        int    // current shed level (0..3)
	Identities   int    // tracked bucket count
	LatencyEWMA  time.Duration
}

// Stats snapshots the admission counters; zero-valued for nil.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	a.mu.Lock()
	idents := len(a.buckets)
	a.mu.Unlock()
	return AdmissionStats{
		Accepted:     a.accepted.Load(),
		RejectedRate: a.rejectedRate.Load(),
		Shed:         a.shed.Load(),
		Level:        int(a.level.Load()),
		Identities:   idents,
		LatencyEWMA:  time.Duration(a.ewmaNs.Load()),
	}
}

// WritePrometheus emits the admission series in Prometheus text format
// with the given prefix (e.g. "gpbft_").
func (s AdmissionStats) WritePrometheus(w io.Writer, prefix string) {
	fmt.Fprintf(w, "# TYPE %sadmission_accepted_total counter\n", prefix)
	fmt.Fprintf(w, "%sadmission_accepted_total %d\n", prefix, s.Accepted)
	fmt.Fprintf(w, "# TYPE %sadmission_rejected_total counter\n", prefix)
	fmt.Fprintf(w, "%sadmission_rejected_total{reason=\"rate-limit\"} %d\n", prefix, s.RejectedRate)
	fmt.Fprintf(w, "# TYPE %sadmission_shed_total counter\n", prefix)
	fmt.Fprintf(w, "%sadmission_shed_total{reason=\"overload\"} %d\n", prefix, s.Shed)
	fmt.Fprintf(w, "# TYPE %sadmission_level gauge\n", prefix)
	fmt.Fprintf(w, "%sadmission_level %d\n", prefix, s.Level)
	fmt.Fprintf(w, "# TYPE %sadmission_identities gauge\n", prefix)
	fmt.Fprintf(w, "%sadmission_identities %d\n", prefix, s.Identities)
	fmt.Fprintf(w, "# TYPE %sadmission_latency_ewma_seconds gauge\n", prefix)
	fmt.Fprintf(w, "%sadmission_latency_ewma_seconds %g\n", prefix, s.LatencyEWMA.Seconds())
}
