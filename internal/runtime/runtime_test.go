package runtime

import (
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/types"
)

var epoch = time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)

func mkTx(i int, nonce uint64) *types.Transaction {
	tx := &types.Transaction{
		Type:    types.TxNormal,
		Nonce:   nonce,
		Payload: []byte{byte(nonce)},
		Fee:     1,
		Geo: types.GeoInfo{
			Location:  geo.Point{Lng: 114.17, Lat: 22.30},
			Timestamp: epoch.Add(time.Duration(nonce) * time.Second),
		},
	}
	tx.Sign(gcrypto.DeterministicKeyPair(i))
	return tx
}

func mkGenesis(t testing.TB, n int) *ledger.Genesis {
	t.Helper()
	g := &ledger.Genesis{ChainID: "rt-test", Timestamp: epoch, Policy: ledger.DefaultPolicy()}
	for i := 0; i < n; i++ {
		kp := gcrypto.DeterministicKeyPair(i)
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: kp.Address(), PubKey: kp.Public(),
			Geohash: geo.MustEncode(geo.Point{Lng: 114.17, Lat: 22.30}, geo.CSCPrecision),
		})
	}
	return g
}

func TestMempoolAddPeekFIFO(t *testing.T) {
	p := NewMempool(10)
	for i := 0; i < 5; i++ {
		if err := p.Add(mkTx(0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 5 {
		t.Fatalf("Len=%d", p.Len())
	}
	got := p.Peek(3)
	if len(got) != 3 {
		t.Fatalf("Peek returned %d", len(got))
	}
	for i := range got {
		if got[i].Nonce != uint64(i) {
			t.Fatal("Peek must preserve FIFO order")
		}
	}
	// Peek does not remove.
	if p.Len() != 5 {
		t.Fatal("Peek must not remove")
	}
	// Peek beyond length returns all.
	if len(p.Peek(100)) != 5 {
		t.Fatal("Peek(100) should return all 5")
	}
}

func TestMempoolDuplicate(t *testing.T) {
	p := NewMempool(10)
	tx := mkTx(0, 1)
	if err := p.Add(tx); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx); err != ErrTxDuplicate {
		t.Fatalf("want ErrTxDuplicate, got %v", err)
	}
	if !p.Contains(tx.ID()) {
		t.Fatal("Contains must report pending tx")
	}
}

func TestMempoolFull(t *testing.T) {
	p := NewMempool(2)
	p.Add(mkTx(0, 1))
	p.Add(mkTx(0, 2))
	if err := p.Add(mkTx(0, 3)); err != ErrPoolFull {
		t.Fatalf("want ErrPoolFull, got %v", err)
	}
}

func TestMempoolMarkCommitted(t *testing.T) {
	p := NewMempool(10)
	tx1, tx2 := mkTx(0, 1), mkTx(0, 2)
	p.Add(tx1)
	p.Add(tx2)
	p.MarkCommitted([]types.Transaction{*tx1})
	if p.Len() != 1 {
		t.Fatalf("Len=%d after commit", p.Len())
	}
	if p.Contains(tx1.ID()) {
		t.Fatal("committed tx must leave the pool")
	}
	if !p.WasCommitted(tx1.ID()) {
		t.Fatal("committed tx must be remembered")
	}
	// Re-adding a committed tx is rejected.
	if err := p.Add(tx1); err != ErrTxDuplicate {
		t.Fatalf("re-add committed: %v", err)
	}
}

func TestMempoolGenerationRotation(t *testing.T) {
	p := NewMempool(2) // genLimit = 8
	var committed []types.Transaction
	for i := 0; i < 12; i++ {
		tx := mkTx(0, uint64(i))
		if err := p.Add(tx); err != nil {
			t.Fatal(err)
		}
		committed = append(committed, *tx)
		p.MarkCommitted(committed[len(committed)-1:])
	}
	// Recent commits are still remembered even after rotation.
	if !p.WasCommitted(committed[len(committed)-1].ID()) {
		t.Fatal("latest committed tx must be remembered")
	}
}

func TestAppBuildBlock(t *testing.T) {
	chain, err := ledger.NewChain(mkGenesis(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	self := gcrypto.DeterministicKeyPair(0).Address()
	app := NewApp(chain, NewMempool(0), self, epoch, 2)

	// Empty pool: nothing to propose.
	if app.BuildBlock(time.Second, 1, 0, 1) != nil {
		t.Fatal("empty pool must build nil")
	}
	app.SubmitTx(mkTx(0, 1))
	app.SubmitTx(mkTx(0, 2))
	app.SubmitTx(mkTx(0, 3))

	// Wrong seq: engine ahead of chain.
	if app.BuildBlock(time.Second, 1, 0, 5) != nil {
		t.Fatal("seq mismatch must build nil")
	}
	b := app.BuildBlock(time.Second, 1, 0, 1)
	if b == nil {
		t.Fatal("expected a block")
	}
	if len(b.Txs) != 2 {
		t.Fatalf("batch size not enforced: %d txs", len(b.Txs))
	}
	if b.Header.Height != 1 || b.Header.Era != 1 || b.Header.Proposer != self {
		t.Fatalf("header: %+v", b.Header)
	}
	if b.Header.PrevHash != chain.Head().Hash() {
		t.Fatal("prev hash must link to head")
	}
	if !b.Header.Timestamp.Equal(epoch.Add(time.Second)) {
		t.Fatal("timestamp must map engine time onto the epoch")
	}
	if err := app.ValidateBlock(b); err != nil {
		t.Fatal(err)
	}
}

func TestAppSubmitTxValidates(t *testing.T) {
	chain, _ := ledger.NewChain(mkGenesis(t, 4))
	app := NewApp(chain, NewMempool(0), gcrypto.DeterministicKeyPair(0).Address(), epoch, 0)
	bad := mkTx(0, 1)
	bad.Fee = 999 // breaks signature
	if err := app.SubmitTx(bad); err == nil {
		t.Fatal("invalid tx must be rejected")
	}
	good := mkTx(0, 2)
	if err := app.SubmitTx(good); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-submission.
	if err := app.SubmitTx(good); err != nil {
		t.Fatalf("duplicate submit must be silent: %v", err)
	}
	if app.PendingTxs() != 1 {
		t.Fatalf("pending %d", app.PendingTxs())
	}
}

func TestAppCommit(t *testing.T) {
	chain, _ := ledger.NewChain(mkGenesis(t, 4))
	self := gcrypto.DeterministicKeyPair(0).Address()
	app := NewApp(chain, NewMempool(0), self, epoch, 0)
	app.SubmitTx(mkTx(0, 1))
	b := app.BuildBlock(time.Second, 0, 0, 1)
	if b == nil {
		t.Fatal("no block")
	}
	if err := app.Commit(b); err != nil {
		t.Fatal(err)
	}
	if chain.Height() != 1 {
		t.Fatal("chain did not advance")
	}
	if app.PendingTxs() != 0 {
		t.Fatal("committed txs must leave the pool")
	}
	// Double commit fails.
	if err := app.Commit(b); err == nil {
		t.Fatal("double commit must fail")
	}
}
