package runtime

import (
	"fmt"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/ledger"
	"gpbft/internal/types"
)

// DefaultBatchSize is the maximum transactions packed per block.
const DefaultBatchSize = 64

// App implements the Application surface engines drive blocks through,
// backed by a chain and a mempool.
type App struct {
	chain *ledger.Chain
	pool  *Mempool
	self  gcrypto.Address
	// epoch anchors consensus.Time (relative) to wall-clock block
	// timestamps.
	epoch time.Time
	batch int
	// maxBatch, when above batch, enables adaptive block sizing: a deep
	// mempool backlog produces fuller blocks (up to maxBatch) instead of
	// more consensus rounds.
	maxBatch int
}

// NewApp wires an application for one node.
func NewApp(chain *ledger.Chain, pool *Mempool, self gcrypto.Address, epoch time.Time, batchSize int) *App {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &App{chain: chain, pool: pool, self: self, epoch: epoch, batch: batchSize}
}

// SetMaxBatch sets the adaptive block-size ceiling (values at or below
// the base batch size disable adaptation).
func (a *App) SetMaxBatch(max int) { a.maxBatch = max }

// effectiveBatch scales the block size with mempool depth, clamped to
// [batch, maxBatch].
func (a *App) effectiveBatch() int {
	if a.maxBatch <= a.batch {
		return a.batch
	}
	want := a.pool.Len()
	if want < a.batch {
		return a.batch
	}
	if want > a.maxBatch {
		return a.maxBatch
	}
	return want
}

// Chain returns the underlying chain.
func (a *App) Chain() *ledger.Chain { return a.chain }

// Pool returns the mempool.
func (a *App) Pool() *Mempool { return a.pool }

// WallTime converts engine time to wall-clock time.
func (a *App) WallTime(now consensus.Time) time.Time { return a.epoch.Add(now) }

// CommitLatency measures how long a block took from proposal to local
// commit: the block timestamp is the proposer's WallTime at proposal,
// so the difference to the local WallTime at commit is the consensus
// latency (plus clock skew, in real deployments). Feeds the admission
// controller's EWMA.
func (a *App) CommitLatency(now consensus.Time, b *types.Block) time.Duration {
	return a.WallTime(now).Sub(b.Header.Timestamp)
}

// BuildBlock implements consensus.Application: it assembles the next
// block from pending transactions, or returns nil when there is
// nothing to propose.
func (a *App) BuildBlock(now consensus.Time, era, view, seq uint64) *types.Block {
	head := a.chain.Head()
	if seq != head.Header.Height+1 {
		return nil // engine and chain disagree; sync first
	}
	txs := a.pool.Peek(a.effectiveBatch())
	if len(txs) == 0 {
		return nil
	}
	return types.NewBlock(types.BlockHeader{
		Height:    seq,
		Era:       era,
		View:      view,
		Seq:       seq,
		PrevHash:  head.Hash(),
		Proposer:  a.self,
		Timestamp: a.WallTime(now),
	}, txs)
}

// BuildBlockOn implements pbft.SpeculativeApplication: assemble the
// block at seq on top of an in-flight (uncommitted) parent. Proposed
// transactions stay in the pool until their block is applied, so the
// exclude set filters out everything already packed below seq.
//
// A speculative slot must carry a FULL base batch or nothing: every
// block costs a fixed amount of per-node message processing, so eagerly
// claiming extra slots for trickle-sized remainders multiplies rounds
// without moving more transactions. The head slot (BuildBlock) stays
// eager for latency; pipeline depth beyond it adapts to real backlog.
func (a *App) BuildBlockOn(now consensus.Time, era, view, seq uint64, parent *types.Block, exclude map[gcrypto.Hash]bool) *types.Block {
	if parent == nil || seq != parent.Header.Height+1 {
		return nil
	}
	want := a.effectiveBatch()
	peeked := a.pool.Peek(want + len(exclude))
	txs := make([]types.Transaction, 0, want)
	for i := range peeked {
		if exclude[peeked[i].ID()] {
			continue
		}
		txs = append(txs, peeked[i])
		if len(txs) == want {
			break
		}
	}
	if len(txs) < a.batch {
		return nil
	}
	return types.NewBlock(types.BlockHeader{
		Height:    seq,
		Era:       era,
		View:      view,
		Seq:       seq,
		PrevHash:  parent.Hash(),
		Proposer:  a.self,
		Timestamp: a.WallTime(now),
	}, txs)
}

// ValidateBlock implements consensus.Application.
func (a *App) ValidateBlock(b *types.Block) error {
	return a.chain.ValidateBlock(b)
}

// ValidateBlockOn implements pbft.SpeculativeApplication.
func (a *App) ValidateBlockOn(b, parent *types.Block) error {
	return a.chain.ValidateBlockAgainst(b, parent)
}

// SubmitTx implements pbft.Application: verify, dedup, enqueue.
func (a *App) SubmitTx(tx *types.Transaction) error {
	// VerifyCached: submission, relay, and block validation all check
	// the same signature; the first accept is memoized for the rest.
	if err := tx.VerifyCached(); err != nil {
		return err
	}
	// An already-committed transaction is a stale re-submission (a
	// re-disseminated request, or a client retrying across a snapshot
	// install); pooling it would only produce duplicate-tx rejections at
	// validation time.
	if _, committed := a.chain.FindTx(tx.ID()); committed {
		return nil
	}
	// Admission pre-screen with the exact per-tx rules block validation
	// applies. The pool has no invalid-tx eviction and BuildBlock does
	// no per-tx filtering, so a pooled block-invalid tx would be packed
	// by honest proposers and stall consensus on repeated rejection;
	// refusing it here keeps admission and validation from diverging.
	if err := a.chain.CheckTxAdmissible(tx); err != nil {
		return err
	}
	err := a.pool.Add(tx)
	if err == ErrTxDuplicate {
		return nil // idempotent submission
	}
	return err
}

// PendingTxs implements pbft.Application.
func (a *App) PendingTxs() int { return a.pool.Len() }

// PendingList implements pbft.Application.
func (a *App) PendingList(max int) []types.Transaction { return a.pool.Peek(max) }

// Commit applies a decided block to the chain and clears its
// transactions from the pool.
func (a *App) Commit(b *types.Block) error {
	if err := a.chain.AddBlock(b); err != nil {
		return fmt.Errorf("runtime: commit height %d: %w", b.Header.Height, err)
	}
	a.pool.MarkCommitted(b.Txs)
	return nil
}
