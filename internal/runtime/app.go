package runtime

import (
	"fmt"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/ledger"
	"gpbft/internal/types"
)

// DefaultBatchSize is the maximum transactions packed per block.
const DefaultBatchSize = 64

// App implements the Application surface engines drive blocks through,
// backed by a chain and a mempool.
type App struct {
	chain *ledger.Chain
	pool  *Mempool
	self  gcrypto.Address
	// epoch anchors consensus.Time (relative) to wall-clock block
	// timestamps.
	epoch time.Time
	batch int
}

// NewApp wires an application for one node.
func NewApp(chain *ledger.Chain, pool *Mempool, self gcrypto.Address, epoch time.Time, batchSize int) *App {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &App{chain: chain, pool: pool, self: self, epoch: epoch, batch: batchSize}
}

// Chain returns the underlying chain.
func (a *App) Chain() *ledger.Chain { return a.chain }

// Pool returns the mempool.
func (a *App) Pool() *Mempool { return a.pool }

// WallTime converts engine time to wall-clock time.
func (a *App) WallTime(now consensus.Time) time.Time { return a.epoch.Add(now) }

// BuildBlock implements consensus.Application: it assembles the next
// block from pending transactions, or returns nil when there is
// nothing to propose.
func (a *App) BuildBlock(now consensus.Time, era, view, seq uint64) *types.Block {
	head := a.chain.Head()
	if seq != head.Header.Height+1 {
		return nil // engine and chain disagree; sync first
	}
	txs := a.pool.Peek(a.batch)
	if len(txs) == 0 {
		return nil
	}
	return types.NewBlock(types.BlockHeader{
		Height:    seq,
		Era:       era,
		View:      view,
		Seq:       seq,
		PrevHash:  head.Hash(),
		Proposer:  a.self,
		Timestamp: a.WallTime(now),
	}, txs)
}

// ValidateBlock implements consensus.Application.
func (a *App) ValidateBlock(b *types.Block) error {
	return a.chain.ValidateBlock(b)
}

// SubmitTx implements pbft.Application: verify, dedup, enqueue.
func (a *App) SubmitTx(tx *types.Transaction) error {
	// VerifyCached: submission, relay, and block validation all check
	// the same signature; the first accept is memoized for the rest.
	if err := tx.VerifyCached(); err != nil {
		return err
	}
	err := a.pool.Add(tx)
	if err == ErrTxDuplicate {
		return nil // idempotent submission
	}
	return err
}

// PendingTxs implements pbft.Application.
func (a *App) PendingTxs() int { return a.pool.Len() }

// PendingList implements pbft.Application.
func (a *App) PendingList(max int) []types.Transaction { return a.pool.Peek(max) }

// Commit applies a decided block to the chain and clears its
// transactions from the pool.
func (a *App) Commit(b *types.Block) error {
	if err := a.chain.AddBlock(b); err != nil {
		return fmt.Errorf("runtime: commit height %d: %w", b.Header.Height, err)
	}
	a.pool.MarkCommitted(b.Txs)
	return nil
}
