package runtime

import (
	"errors"
	"sync/atomic"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/ledger"
	"gpbft/internal/types"
)

// Executor is the environment a node executes engine actions against.
// The discrete-event simulator and the real-time transport runner each
// provide one.
type Executor interface {
	// Send transmits an envelope to a peer.
	Send(to gcrypto.Address, env *consensus.Envelope)
	// SetTimer schedules OnTimer(id) after delay.
	SetTimer(id consensus.TimerID, delay consensus.Time)
	// CancelTimer cancels a pending timer (best effort).
	CancelTimer(id consensus.TimerID)
}

// Node binds an engine, its application, and an executor. Node methods
// must be invoked from a single event loop (the simulator or the
// transport runner's loop); they are not concurrency-safe themselves.
type Node struct {
	ID     gcrypto.Address
	Key    *gcrypto.KeyPair
	App    *App
	Engine consensus.Engine
	Exec   Executor

	// OnCommit, if set, observes every committed block (metrics).
	OnCommit func(now consensus.Time, b *types.Block)
	// OnEraSwitch, if set, observes completed era switches.
	OnEraSwitch func(now consensus.Time, era uint64, committee []gcrypto.Address)
	// OnSnapshotInstall, if set, observes fast-sync snapshot installs —
	// the chain jumped to height wholesale, so block-by-block mirrors
	// (the block log, chaos replay slices) must reset to this base.
	OnSnapshotInstall func(now consensus.Time, era, height uint64)
	// Admission, if set, gates Submit with per-identity rate limits and
	// load shedding, and is fed commit latencies for its EWMA. Nil
	// reproduces the unprotected behavior exactly.
	Admission *Admission
	// Relay, if set, replaces all-to-all broadcast with epidemic gossip:
	// engine Broadcast actions are queued and periodically flushed as
	// batched relay frames to a random fanout, and incoming relay frames
	// are unwrapped through the duplicate-suppression map before engine
	// delivery. Nil reproduces the direct-broadcast path exactly.
	Relay *consensus.Relay
	// CommitErr records the first commit failure (a bug or a fork).
	CommitErr error

	// relayFlushArmed tracks whether a relay flush timer is pending, so
	// the timer is armed on demand (only while the queue is non-empty)
	// and the event loop still reaches quiescence when traffic stops.
	relayFlushArmed bool

	ctr nodeCounters
}

// nodeCounters tracks engine-loop activity with atomics so metrics
// readers (the -metrics-addr HTTP handler) can snapshot them from
// outside the event loop without racing it.
type nodeCounters struct {
	delivered  atomic.Uint64
	fired      atomic.Uint64
	submitted  atomic.Uint64
	rejected   atomic.Uint64
	committed  atomic.Uint64
	lastHeight atomic.Uint64
}

// CounterSnapshot is a point-in-time view of a node's event counters.
type CounterSnapshot struct {
	// Delivered counts envelopes fed to the engine, Fired timer
	// expiries, Submitted accepted local transactions, Rejected
	// transactions refused at submission.
	Delivered uint64
	Fired     uint64
	Submitted uint64
	Rejected  uint64
	// Committed counts blocks applied to the chain; LastHeight is the
	// height of the most recent one.
	Committed  uint64
	LastHeight uint64
	// Pool is the mempool backpressure snapshot.
	Pool PoolStats
	// Admission is the ingress QoS snapshot (zero value when admission
	// control is disabled).
	Admission AdmissionStats
	// Sync is the engine's catch-up activity (zero value when the
	// engine does not report sync statistics).
	Sync SyncStats
	// Relay is the gossip relay snapshot (zero value when gossip is
	// disabled).
	Relay consensus.RelayStats
}

// SyncMode records how a node last caught up with the chain.
type SyncMode uint8

// Sync modes, in escalation order.
const (
	// SyncModeNone: no catch-up has run.
	SyncModeNone SyncMode = iota
	// SyncModeReplay: block-by-block tailing only.
	SyncModeReplay
	// SyncModeSnapshot: a verified snapshot was installed, then tailed.
	SyncModeSnapshot
)

// String names the sync mode (Prometheus label and inspect output).
func (m SyncMode) String() string {
	switch m {
	case SyncModeReplay:
		return "replay"
	case SyncModeSnapshot:
		return "snapshot"
	default:
		return "none"
	}
}

// SyncStats is an engine's view of its own catch-up machinery.
type SyncStats struct {
	// Retries counts timed-out sync/head/snapshot requests that were
	// re-issued (with backoff) to the same or a rotated peer.
	Retries uint64
	// BlocksSynced counts blocks applied through the sync path (as
	// opposed to ordinary consensus commits).
	BlocksSynced uint64
	// SnapshotsInstalled / SnapshotsRejected count fast-sync outcomes;
	// SnapshotsServed counts snapshots this node shipped to others.
	SnapshotsInstalled uint64
	SnapshotsRejected  uint64
	SnapshotsServed    uint64
	// Mode is how the most recent catch-up completed.
	Mode SyncMode
}

// SyncStatsProvider is implemented by engines that track catch-up
// statistics (the era-layer engine does).
type SyncStatsProvider interface {
	SyncStats() SyncStats
}

// Counters snapshots the node's event counters; safe to call from any
// goroutine.
func (n *Node) Counters() CounterSnapshot {
	cs := CounterSnapshot{
		Delivered:  n.ctr.delivered.Load(),
		Fired:      n.ctr.fired.Load(),
		Submitted:  n.ctr.submitted.Load(),
		Rejected:   n.ctr.rejected.Load(),
		Committed:  n.ctr.committed.Load(),
		LastHeight: n.ctr.lastHeight.Load(),
	}
	if n.App != nil {
		cs.Pool = n.App.Pool().Stats()
	}
	cs.Admission = n.Admission.Stats()
	if sp, ok := n.Engine.(SyncStatsProvider); ok {
		cs.Sync = sp.SyncStats()
	}
	if n.Relay != nil {
		cs.Relay = n.Relay.Stats()
	}
	return cs
}

// Start runs the engine's Init.
func (n *Node) Start(now consensus.Time) {
	n.apply(now, n.Engine.Init(now))
}

// HandleMessage makes Node satisfy the simulator's Handler interface.
func (n *Node) HandleMessage(now consensus.Time, env *consensus.Envelope) {
	n.Deliver(now, env)
}

// HandleTimer makes Node satisfy the simulator's Handler interface.
func (n *Node) HandleTimer(now consensus.Time, id consensus.TimerID) {
	n.Fire(now, id)
}

// Deliver feeds a received envelope to the engine. Relay frames are
// unwrapped first: each novel inner envelope counts and delivers like
// a directly received one, duplicates are suppressed by the dupemap,
// and a stray frame with gossip disabled is dropped (a relay frame is
// unsealed, so it must never reach an engine's Verify path).
func (n *Node) Deliver(now consensus.Time, env *consensus.Envelope) {
	if env.MsgKind == consensus.KindRelay {
		if n.Relay == nil {
			return
		}
		novel, err := n.Relay.Receive(now, env)
		if err != nil {
			return
		}
		for _, inner := range novel {
			n.ctr.delivered.Add(1)
			n.apply(now, n.Engine.OnEnvelope(now, inner))
		}
		n.armRelayFlush(now)
		return
	}
	n.ctr.delivered.Add(1)
	n.apply(now, n.Engine.OnEnvelope(now, env))
}

// Fire feeds a timer expiry to the engine. The reserved relay timer is
// handled here: it drains the relay's pending queue as batched frames
// to the fanout and never reaches the engine.
func (n *Node) Fire(now consensus.Time, id consensus.TimerID) {
	if id == consensus.RelayTimerID {
		n.ctr.fired.Add(1)
		n.relayFlushArmed = false
		if n.Relay != nil {
			n.Relay.Flush(now, func(to gcrypto.Address, env *consensus.Envelope) {
				n.Exec.Send(to, env)
			})
		}
		return
	}
	n.ctr.fired.Add(1)
	n.apply(now, n.Engine.OnTimer(now, id))
}

// armRelayFlush schedules a flush tick if the relay has queued entries
// and no tick is already pending.
func (n *Node) armRelayFlush(now consensus.Time) {
	if n.Relay == nil || n.relayFlushArmed || !n.Relay.HasPending() {
		return
	}
	n.relayFlushArmed = true
	n.Exec.SetTimer(consensus.RelayTimerID, n.Relay.FlushEvery())
}

// Submit injects a locally received transaction: through admission
// control (when configured), into the mempool and to the engine for
// proposal/forwarding. Admission failures return *RejectError carrying
// the reason and a retry-after hint.
func (n *Node) Submit(now consensus.Time, tx *types.Transaction) error {
	if err := n.Admission.Admit(now, tx); err != nil {
		n.ctr.rejected.Add(1)
		return err
	}
	if err := n.App.SubmitTx(tx); err != nil {
		n.ctr.rejected.Add(1)
		return err
	}
	n.ctr.submitted.Add(1)
	n.apply(now, n.Engine.OnRequest(now, tx))
	return nil
}

// apply executes the actions an engine step produced. After CommitBlock
// actions have been applied to the chain, engines implementing
// consensus.CommitNotifiable get a follow-up step so they can propose
// on top of the new head.
func (n *Node) apply(now consensus.Time, acts []consensus.Action) {
	committed := n.applyList(now, acts)
	for depth := 0; committed && depth < 4; depth++ {
		cn, ok := n.Engine.(consensus.CommitNotifiable)
		if !ok {
			break
		}
		committed = n.applyList(now, cn.OnCommitApplied(now))
	}
	n.armRelayFlush(now)
}

func (n *Node) applyList(now consensus.Time, acts []consensus.Action) (committed bool) {
	for _, a := range acts {
		switch act := a.(type) {
		case consensus.Send:
			n.Exec.Send(act.To, act.Env)
		case consensus.Broadcast:
			// With gossip enabled, a committee broadcast is queued on the
			// relay instead of written to every peer: the next flush sends
			// one batched frame to a random fanout and the epidemic covers
			// the rest. An empty peer set (solo committee) falls back to
			// the direct path so nothing is blackholed.
			if n.Relay != nil && n.Relay.PeerCount() > 0 {
				n.Relay.Broadcast(now, act.Env)
				continue
			}
			for _, to := range act.To {
				n.Exec.Send(to, act.Env)
			}
		case consensus.CommitBlock:
			if !act.Applied {
				if err := n.App.Commit(act.Block); err != nil {
					// A block can arrive both via consensus and via block
					// sync; the second application is a benign duplicate.
					if !errors.Is(err, ledger.ErrDuplicateBlock) && n.CommitErr == nil {
						n.CommitErr = err
					}
					continue
				}
			}
			committed = true
			n.ctr.committed.Add(1)
			n.ctr.lastHeight.Store(act.Block.Header.Height)
			if n.Admission != nil && n.App != nil {
				n.Admission.Observe(now, n.App.CommitLatency(now, act.Block))
			}
			if n.OnCommit != nil {
				n.OnCommit(now, act.Block)
			}
			if n.Relay != nil {
				n.Relay.Advance(now, act.Block.Header.Era, act.Block.Header.Height)
			}
		case consensus.StartTimer:
			n.Exec.SetTimer(act.ID, act.Delay)
		case consensus.StopTimer:
			n.Exec.CancelTimer(act.ID)
		case consensus.EraSwitched:
			if n.Relay != nil {
				n.Relay.SetPeers(act.Committee)
			}
			if n.OnEraSwitch != nil {
				n.OnEraSwitch(now, act.Era, act.Committee)
			}
		case consensus.SnapshotInstalled:
			n.ctr.lastHeight.Store(act.Height)
			if n.OnSnapshotInstall != nil {
				n.OnSnapshotInstall(now, act.Era, act.Height)
			}
		}
	}
	return committed
}
