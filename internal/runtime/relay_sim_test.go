package runtime

import (
	"fmt"
	"testing"
	"time"

	"gpbft/internal/codec"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/simnet"
	"gpbft/internal/types"
)

// blobPayload is a minimal vote-like payload for broadcast tests.
type blobPayload struct{ Data []byte }

func (p *blobPayload) Kind() consensus.MsgKind          { return consensus.KindPrepare }
func (p *blobPayload) MarshalCanonical(w *codec.Writer) { w.WriteBytes(p.Data) }
func (p *blobPayload) UnmarshalCanonical(r *codec.Reader) error {
	p.Data = r.ReadBytes()
	return r.Err()
}

// broadcastEngine is a stub engine that broadcasts a fixed list of
// pre-sealed envelopes one per timer tick and records how many times
// each incoming envelope digest reaches it — the measurement probe for
// the delivery property.
type broadcastEngine struct {
	peers    []gcrypto.Address
	outbox   []*consensus.Envelope
	next     int
	stagger  consensus.Time
	received map[gcrypto.Hash]int
}

const bcastTimer = consensus.TimerID(1)

func (e *broadcastEngine) Init(consensus.Time) []consensus.Action {
	e.received = make(map[gcrypto.Hash]int)
	if len(e.outbox) == 0 {
		return nil
	}
	return []consensus.Action{consensus.StartTimer{ID: bcastTimer, Delay: time.Duration(e.stagger)}}
}

func (e *broadcastEngine) OnEnvelope(_ consensus.Time, env *consensus.Envelope) []consensus.Action {
	e.received[gcrypto.HashBytes(consensus.EncodeEnvelope(env))]++
	return nil
}

func (e *broadcastEngine) OnTimer(_ consensus.Time, id consensus.TimerID) []consensus.Action {
	if id != bcastTimer || e.next >= len(e.outbox) {
		return nil
	}
	env := e.outbox[e.next]
	e.next++
	acts := []consensus.Action{consensus.Broadcast{To: e.peers, Env: env}}
	if e.next < len(e.outbox) {
		acts = append(acts, consensus.StartTimer{ID: bcastTimer, Delay: time.Duration(e.stagger)})
	}
	return acts
}

func (e *broadcastEngine) OnRequest(consensus.Time, *types.Transaction) []consensus.Action {
	return nil
}

// TestBroadcastDeliveryProperty drives a committee over the seeded
// simulator through drop/reorder/duplicate faults and checks the
// delivery contract per (member, envelope) pair:
//
//   - direct broadcast on a clean network: exactly once (baseline);
//   - gossip at flooding fanout under duplication and reordering:
//     exactly once — the dupemap is load-bearing here, since the
//     network alone would deliver duplicates straight to the engine;
//   - gossip at log-fanout under drops and duplication: at most once
//     always, and every envelope still reaches a quorum (epidemic
//     redundancy), with no starved member.
//
// Everything is seeded, so the assertions are exact, not statistical.
func TestBroadcastDeliveryProperty(t *testing.T) {
	const (
		nNodes  = 7
		perNode = 8
	)
	scenarios := []struct {
		name        string
		gossip      bool
		fanout      int // 0 = auto (log n); nNodes-1 = flooding
		drop        float64
		dup         float64
		exactlyOnce bool
	}{
		{name: "direct clean network", exactlyOnce: true},
		{name: "gossip flooding fanout, duplicate+reorder faults",
			gossip: true, fanout: nNodes - 1, dup: 0.3, exactlyOnce: true},
		{name: "gossip log fanout, drop+duplicate faults",
			gossip: true, drop: 0.05, dup: 0.2},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			net := simnet.New(simnet.Config{
				Seed: 1234,
				Latency: simnet.UniformLatency{
					Base:   time.Millisecond,
					Jitter: 3 * time.Millisecond, // overlapping windows => reordering
				},
				ProcTime:      50 * time.Microsecond,
				SendTime:      10 * time.Microsecond,
				DropRate:      sc.drop,
				DuplicateRate: sc.dup,
			})

			keys := make([]*gcrypto.KeyPair, nNodes)
			addrs := make([]gcrypto.Address, nNodes)
			for i := range keys {
				keys[i] = gcrypto.DeterministicKeyPair(i)
				addrs[i] = keys[i].Address()
			}

			// Pre-seal every broadcast so the test knows the full expected
			// digest set up front.
			engines := make([]*broadcastEngine, nNodes)
			nodes := make([]*Node, nNodes)
			origin := make(map[gcrypto.Hash]int)
			for i := range engines {
				others := make([]gcrypto.Address, 0, nNodes-1)
				for j, a := range addrs {
					if j != i {
						others = append(others, a)
					}
				}
				eng := &broadcastEngine{peers: others, stagger: consensus.Time(5 * time.Millisecond)}
				for k := 0; k < perNode; k++ {
					env := consensus.Seal(keys[i], &blobPayload{Data: []byte(fmt.Sprintf("n%d-m%d", i, k))})
					eng.outbox = append(eng.outbox, env)
					origin[gcrypto.HashBytes(consensus.EncodeEnvelope(env))] = i
				}
				engines[i] = eng
				node := &Node{ID: addrs[i], Key: keys[i], Engine: eng, Exec: net.Executor(addrs[i])}
				if sc.gossip {
					node.Relay = consensus.NewRelay(consensus.RelayConfig{
						Self:       addrs[i],
						Peers:      addrs,
						Fanout:     sc.fanout,
						FlushEvery: consensus.Time(2 * time.Millisecond),
						Seed:       int64(1000 + i),
					})
				}
				nodes[i] = node
				net.AddNode(addrs[i], node)
			}
			net.Schedule(0, func(now consensus.Time) {
				for _, n := range nodes {
					n.Start(now)
				}
			})
			if net.RunUntilIdle(2*time.Minute) == 0 {
				t.Fatal("simulation processed no events")
			}

			var suppressed uint64
			for _, n := range nodes {
				suppressed += n.Counters().Relay.Suppressed
			}
			if sc.gossip && sc.dup > 0 && suppressed == 0 {
				t.Fatal("duplicate faults injected but dupemap suppressed nothing")
			}

			for digest, from := range origin {
				delivered := 0
				for i, eng := range engines {
					if i == from {
						continue // a node never delivers its own broadcast to itself
					}
					switch count := eng.received[digest]; {
					case count > 1:
						t.Fatalf("node %d delivered an envelope from node %d %d times (at-most-once violated)", i, from, count)
					case count == 1:
						delivered++
					case count == 0 && sc.exactlyOnce:
						t.Fatalf("node %d starved of an envelope from node %d (exactly-once violated)", i, from)
					}
				}
				// Quorum coverage even under loss: the originator plus
				// `delivered` receivers must reach 2f+1 of the committee.
				f := (nNodes - 1) / 3
				if delivered+1 < 2*f+1 {
					t.Fatalf("envelope from node %d reached only %d/%d members (quorum %d)", from, delivered+1, nNodes, 2*f+1)
				}
			}
		})
	}
}
