package runtime

import (
	"errors"
	"reflect"

	"gpbft/internal/codec"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/ledger"
	"gpbft/internal/types"
)

// scriptedEngine returns canned actions for each call.
type scriptedEngine struct {
	initActs    []consensus.Action
	requestActs []consensus.Action
	applied     int
	appliedActs []consensus.Action
}

func (s *scriptedEngine) Init(consensus.Time) []consensus.Action { return s.initActs }
func (s *scriptedEngine) OnEnvelope(consensus.Time, *consensus.Envelope) []consensus.Action {
	return nil
}
func (s *scriptedEngine) OnTimer(consensus.Time, consensus.TimerID) []consensus.Action { return nil }
func (s *scriptedEngine) OnRequest(consensus.Time, *types.Transaction) []consensus.Action {
	return s.requestActs
}
func (s *scriptedEngine) OnCommitApplied(consensus.Time) []consensus.Action {
	s.applied++
	out := s.appliedActs
	s.appliedActs = nil
	return out
}

// recordExec records executor calls.
type recordExec struct {
	sent      int
	timers    int
	cancelled int
}

func (r *recordExec) Send(gcrypto.Address, *consensus.Envelope)  { r.sent++ }
func (r *recordExec) SetTimer(consensus.TimerID, consensus.Time) { r.timers++ }
func (r *recordExec) CancelTimer(consensus.TimerID)              { r.cancelled++ }

func testNode(t *testing.T, eng consensus.Engine) (*Node, *recordExec, *ledger.Chain) {
	t.Helper()
	chain, err := ledger.NewChain(mkGenesis(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	kp := gcrypto.DeterministicKeyPair(0)
	app := NewApp(chain, NewMempool(0), kp.Address(), epoch, 8)
	exec := &recordExec{}
	return &Node{ID: kp.Address(), Key: kp, App: app, Engine: eng, Exec: exec}, exec, chain
}

// validNextBlock builds a block that commits cleanly on the chain.
func validNextBlock(chain *ledger.Chain) *types.Block {
	head := chain.Head()
	tx := *mkTx(0, head.Header.Height+100)
	return types.NewBlock(types.BlockHeader{
		Height: head.Header.Height + 1, Seq: head.Header.Height + 1,
		PrevHash: head.Hash(), Proposer: gcrypto.DeterministicKeyPair(0).Address(),
		Timestamp: epoch.Add(time.Second),
	}, []types.Transaction{tx})
}

func TestNodeExecutesActions(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(0)
	env := consensus.Seal(kp, &fakeReq{})
	eng := &scriptedEngine{initActs: []consensus.Action{
		consensus.Send{To: kp.Address(), Env: env},
		consensus.Broadcast{To: []gcrypto.Address{kp.Address(), kp.Address()}, Env: env},
		consensus.StartTimer{ID: 1, Delay: time.Second},
		consensus.StopTimer{ID: 1},
	}}
	n, exec, _ := testNode(t, eng)
	n.Start(0)
	if exec.sent != 3 {
		t.Fatalf("sent %d, want 3 (1 send + 2 broadcast)", exec.sent)
	}
	if exec.timers != 1 || exec.cancelled != 1 {
		t.Fatalf("timers=%d cancelled=%d", exec.timers, exec.cancelled)
	}
}

type fakeReq struct{}

func (*fakeReq) Kind() consensus.MsgKind          { return consensus.KindRequest }
func (*fakeReq) MarshalCanonical(w *codec.Writer) { w.Uint8(1) }

func TestNodeCommitNotification(t *testing.T) {
	eng := &scriptedEngine{}
	n, _, chain := testNode(t, eng)
	b := validNextBlock(chain)
	eng.initActs = []consensus.Action{consensus.CommitBlock{Block: b}}

	var observed []uint64
	n.OnCommit = func(_ consensus.Time, blk *types.Block) {
		observed = append(observed, blk.Header.Height)
	}
	n.Start(0)
	if len(observed) != 1 || observed[0] != 1 {
		t.Fatalf("observed commits: %v", observed)
	}
	// The engine got its post-apply callback.
	if eng.applied != 1 {
		t.Fatalf("OnCommitApplied called %d times", eng.applied)
	}
	// Duplicate commit (e.g. sync + consensus) is benign.
	eng.initActs = []consensus.Action{consensus.CommitBlock{Block: b}}
	n.Start(0)
	if n.CommitErr != nil {
		t.Fatalf("duplicate commit flagged: %v", n.CommitErr)
	}
	// A genuinely invalid block records CommitErr.
	bad := validNextBlock(chain)
	bad.Header.PrevHash = gcrypto.HashBytes([]byte("bogus"))
	eng.initActs = []consensus.Action{consensus.CommitBlock{Block: bad}}
	n.Start(0)
	if n.CommitErr == nil || errors.Is(n.CommitErr, ledger.ErrDuplicateBlock) {
		t.Fatalf("CommitErr = %v", n.CommitErr)
	}
}

func TestNodeChainedCommitNotifications(t *testing.T) {
	// OnCommitApplied returning ANOTHER commit triggers another apply
	// round: the pipeline keeps flowing without external events.
	eng := &scriptedEngine{}
	n, _, chain := testNode(t, eng)
	b1 := validNextBlock(chain)
	eng.initActs = []consensus.Action{consensus.CommitBlock{Block: b1}}
	b2 := types.NewBlock(types.BlockHeader{
		Height: 2, Seq: 2, PrevHash: b1.Hash(),
		Proposer:  gcrypto.DeterministicKeyPair(0).Address(),
		Timestamp: epoch.Add(2 * time.Second),
	}, []types.Transaction{*mkTx(1, 300)})
	eng.appliedActs = []consensus.Action{consensus.CommitBlock{Block: b2}}
	n.Start(0)
	if n.CommitErr != nil {
		t.Fatal(n.CommitErr)
	}
	if chain.Height() != 2 {
		t.Fatalf("chained commit did not apply: height %d", chain.Height())
	}
	if eng.applied < 2 {
		t.Fatalf("OnCommitApplied called %d times, want >= 2", eng.applied)
	}
}

func TestNodeCounters(t *testing.T) {
	eng := &scriptedEngine{}
	n, _, chain := testNode(t, eng)
	b := validNextBlock(chain)
	eng.initActs = []consensus.Action{consensus.CommitBlock{Block: b}}
	n.Start(0)

	kp := gcrypto.DeterministicKeyPair(0)
	n.Deliver(time.Second, consensus.Seal(kp, &fakeReq{}))
	n.Deliver(time.Second, consensus.Seal(kp, &fakeReq{}))
	n.Fire(time.Second, 7)
	if err := n.Submit(time.Second, mkTx(0, 500)); err != nil {
		t.Fatal(err)
	}
	// An unsigned transaction fails verification and counts as rejected.
	if err := n.Submit(time.Second, &types.Transaction{Type: types.TxNormal, Nonce: 9}); err == nil {
		t.Fatal("unsigned tx accepted")
	}

	c := n.Counters()
	depthSum := 0
	for _, d := range c.Pool.ShardDepths {
		depthSum += d
	}
	if len(c.Pool.ShardDepths) != DefaultMempoolShards || depthSum != c.Pool.Pending {
		t.Fatalf("shard depths %v don't sum to pending %d", c.Pool.ShardDepths, c.Pool.Pending)
	}
	c.Pool.ShardDepths = nil
	want := CounterSnapshot{
		Delivered: 2, Fired: 1, Submitted: 1, Rejected: 1,
		Committed: 1, LastHeight: 1,
		Pool: PoolStats{Pending: 1, Shards: DefaultMempoolShards, Admitted: 1},
	}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("counters %+v, want %+v", c, want)
	}
}

func TestNodeEraSwitchHook(t *testing.T) {
	eng := &scriptedEngine{initActs: []consensus.Action{
		consensus.EraSwitched{Era: 3, Committee: []gcrypto.Address{gcrypto.DeterministicKeyPair(0).Address()}},
	}}
	n, _, _ := testNode(t, eng)
	var gotEra uint64
	n.OnEraSwitch = func(_ consensus.Time, era uint64, _ []gcrypto.Address) { gotEra = era }
	n.Start(0)
	if gotEra != 3 {
		t.Fatalf("era hook got %d", gotEra)
	}
}
