// Package runtime wires an engine to a chain: the mempool, the
// Application implementation engines build and validate blocks
// through, and the Node wrapper that executes engine actions against a
// pluggable executor (the discrete-event simulator or the real-time
// transport runner).
package runtime

import (
	"errors"
	"sync"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// DefaultMempoolCap bounds the pending pool.
const DefaultMempoolCap = 100000

// Errors returned by the mempool.
var (
	ErrPoolFull    = errors.New("runtime: mempool full")
	ErrTxDuplicate = errors.New("runtime: transaction already pending or committed")
)

// Mempool is a FIFO transaction pool with duplicate suppression, safe
// for concurrent use.
type Mempool struct {
	mu        sync.Mutex
	queue     []*types.Transaction
	pending   map[gcrypto.Hash]bool
	committed map[gcrypto.Hash]bool
	oldGen    map[gcrypto.Hash]bool // previous committed generation
	cap       int
	genLimit  int
}

// NewMempool creates a pool with the given capacity (0 = default).
func NewMempool(capacity int) *Mempool {
	if capacity <= 0 {
		capacity = DefaultMempoolCap
	}
	return &Mempool{
		pending:   make(map[gcrypto.Hash]bool),
		committed: make(map[gcrypto.Hash]bool),
		oldGen:    make(map[gcrypto.Hash]bool),
		cap:       capacity,
		genLimit:  4 * capacity,
	}
}

// Add inserts a transaction unless it is already pending or was
// committed recently.
func (m *Mempool) Add(tx *types.Transaction) error {
	id := tx.ID()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pending[id] || m.committed[id] || m.oldGen[id] {
		return ErrTxDuplicate
	}
	if len(m.queue) >= m.cap {
		return ErrPoolFull
	}
	m.pending[id] = true
	m.queue = append(m.queue, tx)
	return nil
}

// Peek returns up to n transactions in FIFO order without removing
// them.
func (m *Mempool) Peek(n int) []types.Transaction {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > len(m.queue) {
		n = len(m.queue)
	}
	out := make([]types.Transaction, n)
	for i := 0; i < n; i++ {
		out[i] = *m.queue[i]
	}
	return out
}

// MarkCommitted removes the given transactions from the pool and
// remembers their IDs so re-submissions are suppressed.
func (m *Mempool) MarkCommitted(txs []types.Transaction) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make(map[gcrypto.Hash]bool, len(txs))
	for i := range txs {
		id := txs[i].ID()
		ids[id] = true
		delete(m.pending, id)
		m.committed[id] = true
	}
	if len(ids) > 0 {
		filtered := m.queue[:0]
		for _, tx := range m.queue {
			if !ids[tx.ID()] {
				filtered = append(filtered, tx)
			}
		}
		m.queue = filtered
	}
	// Rotate committed generations to bound memory.
	if len(m.committed) > m.genLimit {
		m.oldGen = m.committed
		m.committed = make(map[gcrypto.Hash]bool)
	}
}

// Drop removes a pending transaction without remembering it as
// committed (stale era-switch proposals are discarded this way).
func (m *Mempool) Drop(id gcrypto.Hash) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.pending[id] {
		return
	}
	delete(m.pending, id)
	filtered := m.queue[:0]
	for _, tx := range m.queue {
		if tx.ID() != id {
			filtered = append(filtered, tx)
		}
	}
	m.queue = filtered
}

// Len returns the number of pending transactions.
func (m *Mempool) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Contains reports whether a transaction is pending.
func (m *Mempool) Contains(id gcrypto.Hash) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pending[id]
}

// WasCommitted reports whether the pool remembers the tx as committed.
func (m *Mempool) WasCommitted(id gcrypto.Hash) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.committed[id] || m.oldGen[id]
}
