// Package runtime wires an engine to a chain: the mempool, the
// Application implementation engines build and validate blocks
// through, and the Node wrapper that executes engine actions against a
// pluggable executor (the discrete-event simulator or the real-time
// transport runner).
package runtime

import (
	"errors"
	"sync"
	"sync/atomic"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// DefaultMempoolCap bounds the pending pool.
const DefaultMempoolCap = 100000

// DefaultMempoolShards is the lock-stripe count: submission arrives
// concurrently from every peer connection, and a single mutex became
// the hot path's first serialization point. Must be a power of two no
// greater than 256 (the shard index is one masked byte of the tx ID).
const DefaultMempoolShards = 16

// Errors returned by the mempool.
var (
	ErrPoolFull    = errors.New("runtime: mempool full")
	ErrTxDuplicate = errors.New("runtime: transaction already pending or committed")
)

// Lane is a mempool priority class. Lower values are served first by
// the weighted scheduler and shed last by the degradation controller.
type Lane uint8

// Priority lanes.
const (
	// LaneControl carries protocol-critical traffic: config changes,
	// evidence, witness statements and location reports.
	LaneControl Lane = iota
	// LaneNormal carries data transactions from identities within
	// their fair share of the pool.
	LaneNormal
	// LaneBulk carries data transactions from identities over their
	// fair share — the first lane evicted and shed under load.
	LaneBulk

	laneCount = 3
)

// String names the lane (Prometheus label values).
func (l Lane) String() string {
	switch l {
	case LaneControl:
		return "control"
	case LaneNormal:
		return "normal"
	case LaneBulk:
		return "bulk"
	default:
		return "unknown"
	}
}

// laneForType maps a transaction type to its base lane; per-identity
// fair-share accounting may demote data traffic to LaneBulk.
func laneForType(t types.TxType) Lane {
	switch t {
	case types.TxConfig, types.TxEvidence, types.TxWitness, types.TxLocationReport:
		return LaneControl
	case types.TxTransferApply, types.TxRegionCheckpoint:
		// Cross-region plumbing: delegate-submitted applies and
		// checkpoints must not starve behind a flood of data traffic, or
		// anchored transfers stall region-wide.
		return LaneControl
	default:
		return LaneNormal
	}
}

// QoSConfig enables priority lanes and per-identity fair-share
// accounting in the mempool. The zero value is never used directly:
// pass it to NewMempoolQoS, which fills defaults.
type QoSConfig struct {
	// LaneWeights are the scheduler weights for control/normal/bulk:
	// per scheduling cycle Peek takes up to LaneWeights[l] transactions
	// from lane l (in lane order), so even the bulk lane keeps a
	// bounded share instead of starving. Zeros select 8/4/1.
	LaneWeights [laneCount]int
	// FairShare is how many data transactions one identity may have
	// pending before its overflow is demoted to LaneBulk (0 = 16).
	FairShare int
	// FeeWeight is a forward-compatibility hook for a fee market: when
	// a positive weight is configured, transactions carrying a higher
	// Fee will be able to buy scheduling priority inside their lane.
	// Currently recorded but not yet applied.
	FeeWeight float64
}

func (c *QoSConfig) fill() {
	if c.LaneWeights == ([laneCount]int{}) {
		c.LaneWeights = [laneCount]int{8, 4, 1}
	}
	for i := range c.LaneWeights {
		if c.LaneWeights[i] < 0 {
			c.LaneWeights[i] = 0
		}
	}
	if c.FairShare <= 0 {
		c.FairShare = 16
	}
}

// identLoad tracks one identity's pending transactions per lane.
// refs holds that identity's admitted tx IDs per lane, newest last;
// entries removed by commit/drop go stale in place and are skipped (and
// periodically compacted) rather than searched for, keeping the hot
// removal path O(1).
type identLoad struct {
	pending [laneCount]int
	refs    [laneCount][]gcrypto.Hash
}

func (il *identLoad) total() int {
	n := 0
	for _, p := range il.pending {
		n += p
	}
	return n
}

// qosState is the lane bookkeeping, guarded by its own mutex. Lock
// order: qosState.mu strictly before any poolShard.mu; Peek takes only
// shard locks (one at a time) and never qosState.mu.
type qosState struct {
	cfg   QoSConfig
	mu    sync.Mutex
	ident map[gcrypto.Address]*identLoad
}

// PoolStats is a snapshot of mempool backpressure counters; all are
// cumulative since pool creation except Pending and Lanes.
type PoolStats struct {
	Pending      int    // transactions currently admitted and unreaped
	Shards       int    // configured shard count
	Admitted     uint64 // successful Add calls
	RejectedFull uint64 // Add rejections due to the size bound
	RejectedDup  uint64 // Add rejections due to duplicate suppression
	Dropped      uint64 // admitted txs removed via Drop (stale proposals)
	Committed    uint64 // admitted txs removed because they committed
	// EvictedShed counts admitted txs evicted at capacity to make room
	// for higher-priority traffic (QoS pools only).
	EvictedShed uint64
	// Lanes is the current per-lane depth (all zero without QoS).
	Lanes [laneCount]int
	// ShardDepths is the current pending count per lock stripe,
	// index-aligned with the shard table. A skewed profile means one
	// stripe's senders dominate the pool — the early-warning signal for
	// region imbalance before it becomes a latency cliff.
	ShardDepths []int
}

// poolEntry is one admitted transaction with its global admission
// ticket; tickets order the merged FIFO view across shards. lane and
// sender are only populated (and consulted) by QoS pools.
type poolEntry struct {
	id     gcrypto.Hash
	seq    uint64
	tx     *types.Transaction
	lane   Lane
	sender gcrypto.Address
}

// poolShard owns the transactions whose ID hashes into it. The queue
// is kept in admission order: tickets are taken under the shard lock,
// so each shard's queue is sorted by seq even though tickets are
// issued from a global counter.
type poolShard struct {
	mu        sync.Mutex
	queue     []poolEntry
	pending   map[gcrypto.Hash]bool
	committed map[gcrypto.Hash]bool
	oldGen    map[gcrypto.Hash]bool // previous committed generation
	genLimit  int
}

func (s *poolShard) removeQueued(id gcrypto.Hash) (poolEntry, bool) {
	var removed poolEntry
	found := false
	filtered := s.queue[:0]
	for _, e := range s.queue {
		if e.id != id {
			filtered = append(filtered, e)
		} else {
			removed, found = e, true
		}
	}
	s.queue = filtered
	return removed, found
}

// Mempool is a sharded FIFO transaction pool with duplicate
// suppression, an exact global size bound, and backpressure counters;
// safe for concurrent use. Transactions are striped over shards by ID
// so concurrent submitters rarely contend on a lock, while a global
// admission ticket preserves the pool-wide FIFO order Peek returns.
type Mempool struct {
	shards []poolShard
	mask   uint32
	cap    int

	// qos is nil for plain FIFO pools; when set, Add/MarkCommitted/Drop
	// serialize on qos.mu (then shard locks) so lane accounting stays
	// exact, Peek schedules lanes by weight, and capacity pressure
	// evicts the heaviest identity instead of rejecting the newcomer.
	qos *qosState

	size atomic.Int64  // admitted and unreaped, pool-wide (exact)
	seq  atomic.Uint64 // global admission ticket

	laneDepth [laneCount]atomic.Int64

	admitted     atomic.Uint64
	rejectedFull atomic.Uint64
	rejectedDup  atomic.Uint64
	dropped      atomic.Uint64
	committedCnt atomic.Uint64
	evictedShed  atomic.Uint64
}

// NewMempool creates a pool with the given capacity (0 = default) and
// the default shard count.
func NewMempool(capacity int) *Mempool {
	return NewMempoolShards(capacity, 0)
}

// NewMempoolQoS creates a pool with priority lanes enabled: Peek
// serves lanes by weight instead of pure pool-wide FIFO, identities
// over their fair share are demoted to the bulk lane, and at capacity
// the heaviest identity's newest transaction is evicted to admit
// higher-priority traffic.
func NewMempoolQoS(capacity, shards int, qos QoSConfig) *Mempool {
	m := NewMempoolShards(capacity, shards)
	qos.fill()
	m.qos = &qosState{cfg: qos, ident: make(map[gcrypto.Address]*identLoad)}
	return m
}

// NewMempoolShards creates a pool with explicit capacity and shard
// count (0 = defaults). The shard count is clamped to [1, 256] and
// rounded up to a power of two.
func NewMempoolShards(capacity, shards int) *Mempool {
	if capacity <= 0 {
		capacity = DefaultMempoolCap
	}
	if shards <= 0 {
		shards = DefaultMempoolShards
	}
	if shards > 256 {
		shards = 256
	}
	n := 1
	for n < shards {
		n *= 2
	}
	genLimit := 4 * capacity / n
	if genLimit < 1 {
		genLimit = 1
	}
	m := &Mempool{
		shards: make([]poolShard, n),
		mask:   uint32(n - 1),
		cap:    capacity,
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.pending = make(map[gcrypto.Hash]bool)
		s.committed = make(map[gcrypto.Hash]bool)
		s.oldGen = make(map[gcrypto.Hash]bool)
		s.genLimit = genLimit
	}
	return m
}

func (m *Mempool) shard(id gcrypto.Hash) *poolShard {
	return &m.shards[uint32(id[0])&m.mask]
}

// Add inserts a transaction unless it is already pending, was
// committed recently, or the pool is at capacity. QoS pools at
// capacity first try to evict the heaviest identity's newest
// transaction from the lowest-priority lane at or below the incoming
// lane.
func (m *Mempool) Add(tx *types.Transaction) error {
	if m.qos != nil {
		return m.addQoS(tx)
	}
	id := tx.ID()
	s := m.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending[id] || s.committed[id] || s.oldGen[id] {
		m.rejectedDup.Add(1)
		return ErrTxDuplicate
	}
	// The size bound is enforced with a reserve-then-rollback on the
	// global counter: concurrent adds across shards may transiently
	// overshoot the counter but never the admitted population.
	if m.size.Add(1) > int64(m.cap) {
		m.size.Add(-1)
		m.rejectedFull.Add(1)
		return ErrPoolFull
	}
	s.pending[id] = true
	s.queue = append(s.queue, poolEntry{id: id, seq: m.seq.Add(1), tx: tx})
	m.admitted.Add(1)
	return nil
}

// addQoS is the lane-aware admission path. All mutating QoS operations
// hold qos.mu for their duration, so the dup-check / evict / insert
// sequence is atomic with respect to other mutators even though the
// shard lock is released in between; Peek stays lock-free with respect
// to qos.mu.
func (m *Mempool) addQoS(tx *types.Transaction) error {
	id := tx.ID()
	q := m.qos
	q.mu.Lock()
	defer q.mu.Unlock()

	s := m.shard(id)
	s.mu.Lock()
	dup := s.pending[id] || s.committed[id] || s.oldGen[id]
	s.mu.Unlock()
	if dup {
		m.rejectedDup.Add(1)
		return ErrTxDuplicate
	}

	sender := tx.Sender
	lane := m.classifyLocked(tx, sender)
	if int(m.size.Load()) >= m.cap {
		if !m.evictForLocked(lane, sender) {
			m.rejectedFull.Add(1)
			return ErrPoolFull
		}
	}
	m.size.Add(1)
	s.mu.Lock()
	s.pending[id] = true
	s.queue = append(s.queue, poolEntry{id: id, seq: m.seq.Add(1), tx: tx, lane: lane, sender: sender})
	s.mu.Unlock()

	il := q.ident[sender]
	if il == nil {
		il = &identLoad{}
		q.ident[sender] = il
	}
	il.pending[lane]++
	il.refs[lane] = append(il.refs[lane], id)
	m.laneDepth[lane].Add(1)
	m.admitted.Add(1)
	return nil
}

// classifyLocked maps tx to its lane: control types always ride the
// control lane; data traffic is demoted to bulk once the sender is
// over its fair share. qos.mu held.
func (m *Mempool) classifyLocked(tx *types.Transaction, sender gcrypto.Address) Lane {
	lane := laneForType(tx.Type)
	if lane != LaneNormal {
		return lane
	}
	if il := m.qos.ident[sender]; il != nil &&
		il.pending[LaneNormal]+il.pending[LaneBulk] >= m.qos.cfg.FairShare {
		return LaneBulk
	}
	return LaneNormal
}

// ClassifyLane reports which lane tx would be admitted into right now
// (admission control uses it to shed bulk traffic before it is even
// pooled). Plain FIFO pools classify by type only.
func (m *Mempool) ClassifyLane(tx *types.Transaction) Lane {
	if m.qos == nil {
		return laneForType(tx.Type)
	}
	m.qos.mu.Lock()
	defer m.qos.mu.Unlock()
	return m.classifyLocked(tx, tx.Sender)
}

// evictForLocked frees one slot for an incoming transaction in `lane`
// from `sender`: scanning lanes from bulk upward but never above the
// incoming lane, it picks the identity with the most pending entries
// in that lane (ties broken by address order, so eviction is
// deterministic) and evicts its newest transaction. Returns false —
// reject the newcomer instead — when no eligible victim exists or the
// newcomer's own identity is the heaviest. qos.mu held, no shard lock
// held.
func (m *Mempool) evictForLocked(lane Lane, sender gcrypto.Address) bool {
	for vl := LaneBulk; vl >= lane; vl-- {
		if m.laneDepth[vl].Load() == 0 {
			if vl == 0 {
				break
			}
			continue
		}
		var victim gcrypto.Address
		var vload *identLoad
		for addr, il := range m.qos.ident {
			if il.pending[vl] == 0 {
				continue
			}
			if vload == nil || il.pending[vl] > vload.pending[vl] ||
				(il.pending[vl] == vload.pending[vl] && addr.Less(victim)) {
				victim, vload = addr, il
			}
		}
		if vload == nil {
			if vl == 0 {
				break
			}
			continue
		}
		if victim == sender {
			// Evicting the newcomer's own older traffic to admit its
			// newer traffic just churns the pool: reject instead.
			return false
		}
		refs := vload.refs[vl]
		for len(refs) > 0 {
			id := refs[len(refs)-1]
			refs = refs[:len(refs)-1]
			vs := m.shard(id)
			vs.mu.Lock()
			live := vs.pending[id]
			if live {
				delete(vs.pending, id)
				vs.removeQueued(id)
			}
			vs.mu.Unlock()
			if live {
				vload.refs[vl] = refs
				vload.pending[vl]--
				if vload.total() == 0 {
					delete(m.qos.ident, victim)
				}
				m.laneDepth[vl].Add(-1)
				m.size.Add(-1)
				m.evictedShed.Add(1)
				return true
			}
		}
		// Only stale refs remained; bookkeeping says otherwise, which
		// cannot happen while the accounting invariant holds — bail to
		// the reject path defensively.
		vload.refs[vl] = refs
		return false
	}
	return false
}

// qosForgetLocked undoes lane accounting for a removed entry. qos.mu
// held, no shard lock held (compaction takes shard locks one at a
// time).
func (m *Mempool) qosForgetLocked(e poolEntry) {
	m.laneDepth[e.lane].Add(-1)
	il := m.qos.ident[e.sender]
	if il == nil {
		return
	}
	if il.pending[e.lane] > 0 {
		il.pending[e.lane]--
	}
	if il.total() == 0 {
		delete(m.qos.ident, e.sender)
		return
	}
	// Compact the ref list once stale entries dominate, so a long-lived
	// busy identity cannot grow it without bound.
	if len(il.refs[e.lane]) > 2*il.pending[e.lane]+32 {
		kept := il.refs[e.lane][:0]
		for _, id := range il.refs[e.lane] {
			s := m.shard(id)
			s.mu.Lock()
			live := s.pending[id]
			s.mu.Unlock()
			if live {
				kept = append(kept, id)
			}
		}
		il.refs[e.lane] = kept
	}
}

// Peek returns up to n transactions without removing them. Plain
// pools return pool-wide FIFO (admission) order: a k-way merge of the
// per-shard queues by admission ticket. QoS pools serve lanes by
// weight: each scheduling cycle takes up to LaneWeights[l] of the
// oldest transactions from lane l, control first, so overload in one
// lane cannot starve the others.
func (m *Mempool) Peek(n int) []types.Transaction {
	if n <= 0 {
		return nil
	}
	if m.qos != nil {
		return m.peekLanes(n)
	}
	type cursor struct {
		entries []poolEntry
		i       int
	}
	cursors := make([]cursor, 0, len(m.shards))
	for si := range m.shards {
		s := &m.shards[si]
		s.mu.Lock()
		k := len(s.queue)
		if k > n {
			k = n // a shard can contribute at most n of the first n
		}
		if k > 0 {
			snap := make([]poolEntry, k)
			copy(snap, s.queue[:k])
			cursors = append(cursors, cursor{entries: snap})
		}
		s.mu.Unlock()
	}
	out := make([]types.Transaction, 0, n)
	for len(out) < n {
		best := -1
		for ci := range cursors {
			c := &cursors[ci]
			if c.i >= len(c.entries) {
				continue
			}
			if best < 0 || c.entries[c.i].seq < cursors[best].entries[cursors[best].i].seq {
				best = ci
			}
		}
		if best < 0 {
			break
		}
		out = append(out, *cursors[best].entries[cursors[best].i].tx)
		cursors[best].i++
	}
	return out
}

// peekLanes is the QoS scheduler: per-lane snapshots merged by
// admission ticket (age order inside each lane), then a weighted
// round-robin across lanes in priority order.
func (m *Mempool) peekLanes(n int) []types.Transaction {
	type cursor struct {
		entries []poolEntry
		i       int
	}
	var lanes [laneCount][]cursor
	for si := range m.shards {
		s := &m.shards[si]
		s.mu.Lock()
		var snaps [laneCount][]poolEntry
		for _, e := range s.queue {
			if len(snaps[e.lane]) < n {
				snaps[e.lane] = append(snaps[e.lane], e)
			}
		}
		s.mu.Unlock()
		for l := range snaps {
			if len(snaps[l]) > 0 {
				lanes[l] = append(lanes[l], cursor{entries: snaps[l]})
			}
		}
	}
	// Oldest-first stream per lane via k-way merge of shard snapshots.
	streams := make([][]poolEntry, laneCount)
	for l := range lanes {
		cursors := lanes[l]
		for len(streams[l]) < n {
			best := -1
			for ci := range cursors {
				c := &cursors[ci]
				if c.i >= len(c.entries) {
					continue
				}
				if best < 0 || c.entries[c.i].seq < cursors[best].entries[cursors[best].i].seq {
					best = ci
				}
			}
			if best < 0 {
				break
			}
			streams[l] = append(streams[l], cursors[best].entries[cursors[best].i])
			cursors[best].i++
		}
	}
	w := m.qos.cfg.LaneWeights
	out := make([]types.Transaction, 0, n)
	idx := [laneCount]int{}
	for len(out) < n {
		took := false
		for l := 0; l < laneCount && len(out) < n; l++ {
			quota := w[l]
			if quota <= 0 && idx[l] < len(streams[l]) {
				quota = 1 // a zero weight still drains when others are empty
				empty := true
				for o := 0; o < laneCount; o++ {
					if o != l && idx[o] < len(streams[o]) {
						empty = false
						break
					}
				}
				if !empty {
					continue
				}
			}
			for k := 0; k < quota && idx[l] < len(streams[l]) && len(out) < n; k++ {
				out = append(out, *streams[l][idx[l]].tx)
				idx[l]++
				took = true
			}
		}
		if !took {
			break
		}
	}
	return out
}

// MarkCommitted removes the given transactions from the pool and
// remembers their IDs so re-submissions are suppressed; it returns how
// many of them were actually pending (and are now accounted under the
// Committed counter).
func (m *Mempool) MarkCommitted(txs []types.Transaction) int {
	if m.qos != nil {
		m.qos.mu.Lock()
		defer m.qos.mu.Unlock()
	}
	removed := 0
	for i := range txs {
		id := txs[i].ID()
		s := m.shard(id)
		s.mu.Lock()
		e, was := poolEntry{}, false
		if s.pending[id] {
			delete(s.pending, id)
			e, was = s.removeQueued(id)
			m.size.Add(-1)
			removed++
		}
		s.committed[id] = true
		// Rotate committed generations to bound memory.
		if len(s.committed) > s.genLimit {
			s.oldGen = s.committed
			s.committed = make(map[gcrypto.Hash]bool)
		}
		s.mu.Unlock()
		if was && m.qos != nil {
			m.qosForgetLocked(e)
		}
	}
	m.committedCnt.Add(uint64(removed))
	return removed
}

// Drop removes a pending transaction without remembering it as
// committed (stale era-switch proposals are discarded this way).
func (m *Mempool) Drop(id gcrypto.Hash) {
	if m.qos != nil {
		m.qos.mu.Lock()
		defer m.qos.mu.Unlock()
	}
	s := m.shard(id)
	s.mu.Lock()
	if !s.pending[id] {
		s.mu.Unlock()
		return
	}
	delete(s.pending, id)
	e, was := s.removeQueued(id)
	m.size.Add(-1)
	m.dropped.Add(1)
	s.mu.Unlock()
	if was && m.qos != nil {
		m.qosForgetLocked(e)
	}
}

// Len returns the number of pending transactions.
func (m *Mempool) Len() int { return int(m.size.Load()) }

// Cap returns the configured capacity bound.
func (m *Mempool) Cap() int { return m.cap }

// QoSEnabled reports whether priority lanes are active.
func (m *Mempool) QoSEnabled() bool { return m.qos != nil }

// PendingOf returns how many data-lane transactions the identity has
// pending (0 for plain FIFO pools, which do no identity accounting).
func (m *Mempool) PendingOf(sender gcrypto.Address) int {
	if m.qos == nil {
		return 0
	}
	m.qos.mu.Lock()
	defer m.qos.mu.Unlock()
	il := m.qos.ident[sender]
	if il == nil {
		return 0
	}
	return il.pending[LaneNormal] + il.pending[LaneBulk]
}

// Contains reports whether a transaction is pending.
func (m *Mempool) Contains(id gcrypto.Hash) bool {
	s := m.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending[id]
}

// WasCommitted reports whether the pool remembers the tx as committed.
func (m *Mempool) WasCommitted(id gcrypto.Hash) bool {
	s := m.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed[id] || s.oldGen[id]
}

// Stats snapshots the pool's backpressure counters.
func (m *Mempool) Stats() PoolStats {
	st := PoolStats{
		Pending:      m.Len(),
		Shards:       len(m.shards),
		Admitted:     m.admitted.Load(),
		RejectedFull: m.rejectedFull.Load(),
		RejectedDup:  m.rejectedDup.Load(),
		Dropped:      m.dropped.Load(),
		Committed:    m.committedCnt.Load(),
		EvictedShed:  m.evictedShed.Load(),
	}
	for l := range st.Lanes {
		st.Lanes[l] = int(m.laneDepth[l].Load())
	}
	st.ShardDepths = make([]int, len(m.shards))
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		st.ShardDepths[i] = len(s.pending)
		s.mu.Unlock()
	}
	return st
}
