// Package runtime wires an engine to a chain: the mempool, the
// Application implementation engines build and validate blocks
// through, and the Node wrapper that executes engine actions against a
// pluggable executor (the discrete-event simulator or the real-time
// transport runner).
package runtime

import (
	"errors"
	"sync"
	"sync/atomic"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// DefaultMempoolCap bounds the pending pool.
const DefaultMempoolCap = 100000

// DefaultMempoolShards is the lock-stripe count: submission arrives
// concurrently from every peer connection, and a single mutex became
// the hot path's first serialization point. Must be a power of two no
// greater than 256 (the shard index is one masked byte of the tx ID).
const DefaultMempoolShards = 16

// Errors returned by the mempool.
var (
	ErrPoolFull    = errors.New("runtime: mempool full")
	ErrTxDuplicate = errors.New("runtime: transaction already pending or committed")
)

// PoolStats is a snapshot of mempool backpressure counters; all are
// cumulative since pool creation except Pending.
type PoolStats struct {
	Pending      int    // transactions currently admitted and unreaped
	Shards       int    // configured shard count
	Admitted     uint64 // successful Add calls
	RejectedFull uint64 // Add rejections due to the size bound
	RejectedDup  uint64 // Add rejections due to duplicate suppression
	Dropped      uint64 // admitted txs removed via Drop (stale proposals)
	Committed    uint64 // admitted txs removed because they committed
}

// poolEntry is one admitted transaction with its global admission
// ticket; tickets order the merged FIFO view across shards.
type poolEntry struct {
	id  gcrypto.Hash
	seq uint64
	tx  *types.Transaction
}

// poolShard owns the transactions whose ID hashes into it. The queue
// is kept in admission order: tickets are taken under the shard lock,
// so each shard's queue is sorted by seq even though tickets are
// issued from a global counter.
type poolShard struct {
	mu        sync.Mutex
	queue     []poolEntry
	pending   map[gcrypto.Hash]bool
	committed map[gcrypto.Hash]bool
	oldGen    map[gcrypto.Hash]bool // previous committed generation
	genLimit  int
}

func (s *poolShard) removeQueued(id gcrypto.Hash) {
	filtered := s.queue[:0]
	for _, e := range s.queue {
		if e.id != id {
			filtered = append(filtered, e)
		}
	}
	s.queue = filtered
}

// Mempool is a sharded FIFO transaction pool with duplicate
// suppression, an exact global size bound, and backpressure counters;
// safe for concurrent use. Transactions are striped over shards by ID
// so concurrent submitters rarely contend on a lock, while a global
// admission ticket preserves the pool-wide FIFO order Peek returns.
type Mempool struct {
	shards []poolShard
	mask   uint32
	cap    int

	size atomic.Int64  // admitted and unreaped, pool-wide (exact)
	seq  atomic.Uint64 // global admission ticket

	admitted     atomic.Uint64
	rejectedFull atomic.Uint64
	rejectedDup  atomic.Uint64
	dropped      atomic.Uint64
	committedCnt atomic.Uint64
}

// NewMempool creates a pool with the given capacity (0 = default) and
// the default shard count.
func NewMempool(capacity int) *Mempool {
	return NewMempoolShards(capacity, 0)
}

// NewMempoolShards creates a pool with explicit capacity and shard
// count (0 = defaults). The shard count is clamped to [1, 256] and
// rounded up to a power of two.
func NewMempoolShards(capacity, shards int) *Mempool {
	if capacity <= 0 {
		capacity = DefaultMempoolCap
	}
	if shards <= 0 {
		shards = DefaultMempoolShards
	}
	if shards > 256 {
		shards = 256
	}
	n := 1
	for n < shards {
		n *= 2
	}
	genLimit := 4 * capacity / n
	if genLimit < 1 {
		genLimit = 1
	}
	m := &Mempool{
		shards: make([]poolShard, n),
		mask:   uint32(n - 1),
		cap:    capacity,
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.pending = make(map[gcrypto.Hash]bool)
		s.committed = make(map[gcrypto.Hash]bool)
		s.oldGen = make(map[gcrypto.Hash]bool)
		s.genLimit = genLimit
	}
	return m
}

func (m *Mempool) shard(id gcrypto.Hash) *poolShard {
	return &m.shards[uint32(id[0])&m.mask]
}

// Add inserts a transaction unless it is already pending, was
// committed recently, or the pool is at capacity.
func (m *Mempool) Add(tx *types.Transaction) error {
	id := tx.ID()
	s := m.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending[id] || s.committed[id] || s.oldGen[id] {
		m.rejectedDup.Add(1)
		return ErrTxDuplicate
	}
	// The size bound is enforced with a reserve-then-rollback on the
	// global counter: concurrent adds across shards may transiently
	// overshoot the counter but never the admitted population.
	if m.size.Add(1) > int64(m.cap) {
		m.size.Add(-1)
		m.rejectedFull.Add(1)
		return ErrPoolFull
	}
	s.pending[id] = true
	s.queue = append(s.queue, poolEntry{id: id, seq: m.seq.Add(1), tx: tx})
	m.admitted.Add(1)
	return nil
}

// Peek returns up to n transactions in pool-wide FIFO (admission)
// order without removing them: a k-way merge of the per-shard queues
// by admission ticket.
func (m *Mempool) Peek(n int) []types.Transaction {
	if n <= 0 {
		return nil
	}
	type cursor struct {
		entries []poolEntry
		i       int
	}
	cursors := make([]cursor, 0, len(m.shards))
	for si := range m.shards {
		s := &m.shards[si]
		s.mu.Lock()
		k := len(s.queue)
		if k > n {
			k = n // a shard can contribute at most n of the first n
		}
		if k > 0 {
			snap := make([]poolEntry, k)
			copy(snap, s.queue[:k])
			cursors = append(cursors, cursor{entries: snap})
		}
		s.mu.Unlock()
	}
	out := make([]types.Transaction, 0, n)
	for len(out) < n {
		best := -1
		for ci := range cursors {
			c := &cursors[ci]
			if c.i >= len(c.entries) {
				continue
			}
			if best < 0 || c.entries[c.i].seq < cursors[best].entries[cursors[best].i].seq {
				best = ci
			}
		}
		if best < 0 {
			break
		}
		out = append(out, *cursors[best].entries[cursors[best].i].tx)
		cursors[best].i++
	}
	return out
}

// MarkCommitted removes the given transactions from the pool and
// remembers their IDs so re-submissions are suppressed; it returns how
// many of them were actually pending (and are now accounted under the
// Committed counter).
func (m *Mempool) MarkCommitted(txs []types.Transaction) int {
	removed := 0
	for i := range txs {
		id := txs[i].ID()
		s := m.shard(id)
		s.mu.Lock()
		if s.pending[id] {
			delete(s.pending, id)
			s.removeQueued(id)
			m.size.Add(-1)
			removed++
		}
		s.committed[id] = true
		// Rotate committed generations to bound memory.
		if len(s.committed) > s.genLimit {
			s.oldGen = s.committed
			s.committed = make(map[gcrypto.Hash]bool)
		}
		s.mu.Unlock()
	}
	m.committedCnt.Add(uint64(removed))
	return removed
}

// Drop removes a pending transaction without remembering it as
// committed (stale era-switch proposals are discarded this way).
func (m *Mempool) Drop(id gcrypto.Hash) {
	s := m.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.pending[id] {
		return
	}
	delete(s.pending, id)
	s.removeQueued(id)
	m.size.Add(-1)
	m.dropped.Add(1)
}

// Len returns the number of pending transactions.
func (m *Mempool) Len() int { return int(m.size.Load()) }

// Contains reports whether a transaction is pending.
func (m *Mempool) Contains(id gcrypto.Hash) bool {
	s := m.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending[id]
}

// WasCommitted reports whether the pool remembers the tx as committed.
func (m *Mempool) WasCommitted(id gcrypto.Hash) bool {
	s := m.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed[id] || s.oldGen[id]
}

// Stats snapshots the pool's backpressure counters.
func (m *Mempool) Stats() PoolStats {
	return PoolStats{
		Pending:      m.Len(),
		Shards:       len(m.shards),
		Admitted:     m.admitted.Load(),
		RejectedFull: m.rejectedFull.Load(),
		RejectedDup:  m.rejectedDup.Load(),
		Dropped:      m.dropped.Load(),
		Committed:    m.committedCnt.Load(),
	}
}
