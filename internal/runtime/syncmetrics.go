package runtime

import (
	"fmt"
	"io"
)

// SyncMetrics bundles one node's snapshot and catch-up observability
// for a Prometheus text endpoint: the engine's sync counters plus the
// two node-level series the engine cannot see (snapshots this node
// produced, and bytes reclaimed from its durable logs by compaction).
type SyncMetrics struct {
	Stats SyncStats
	// SnapshotsWritten counts era snapshots this node produced and
	// published to its own store.
	SnapshotsWritten uint64
	// CompactedBytes is the cumulative size of durable log content
	// dropped by compaction.
	CompactedBytes uint64
}

// WritePrometheus emits the sync series in Prometheus text format
// under the given namespace. gpbft_sync_mode encodes how the most
// recent deep catch-up resolved: 0 none, 1 full block replay,
// 2 snapshot-then-tail.
func (m SyncMetrics) WritePrometheus(w io.Writer, ns string) {
	counter := func(name string, v uint64) {
		fmt.Fprintf(w, "# TYPE %s_%s counter\n%s_%s %d\n", ns, name, ns, name, v)
	}
	gauge := func(name string, v uint64) {
		fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %d\n", ns, name, ns, name, v)
	}
	counter("snapshot_written_total", m.SnapshotsWritten)
	counter("snapshot_installed_total", m.Stats.SnapshotsInstalled)
	counter("snapshot_rejected_total", m.Stats.SnapshotsRejected)
	counter("snapshot_served_total", m.Stats.SnapshotsServed)
	counter("sync_retries_total", m.Stats.Retries)
	counter("sync_blocks_total", m.Stats.BlocksSynced)
	gauge("sync_mode", uint64(m.Stats.Mode))
	gauge("compacted_bytes", m.CompactedBytes)
}
