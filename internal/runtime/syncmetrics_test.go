package runtime

import (
	"strings"
	"testing"
)

func TestSyncMetricsWritePrometheus(t *testing.T) {
	m := SyncMetrics{
		Stats: SyncStats{
			Mode:               SyncModeSnapshot,
			BlocksSynced:       42,
			SnapshotsInstalled: 1,
			SnapshotsRejected:  3,
			SnapshotsServed:    5,
			Retries:            2,
		},
		SnapshotsWritten: 7,
		CompactedBytes:   4096,
	}
	var sb strings.Builder
	m.WritePrometheus(&sb, "gpbft")
	out := sb.String()

	want := map[string]string{
		"gpbft_snapshot_written_total":   "7",
		"gpbft_snapshot_installed_total": "1",
		"gpbft_snapshot_rejected_total":  "3",
		"gpbft_snapshot_served_total":    "5",
		"gpbft_sync_retries_total":       "2",
		"gpbft_sync_blocks_total":        "42",
		"gpbft_sync_mode":                "2",
		"gpbft_compacted_bytes":          "4096",
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	got := map[string]string{}
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		got[fields[0]] = fields[1]
	}
	for name, val := range want {
		if got[name] != val {
			t.Errorf("%s = %q, want %q", name, got[name], val)
		}
		// Every sample needs its TYPE header for scrapers.
		kind := "counter"
		if name == "gpbft_sync_mode" || name == "gpbft_compacted_bytes" {
			kind = "gauge"
		}
		if !strings.Contains(out, "# TYPE "+name+" "+kind) {
			t.Errorf("missing TYPE %s header for %s", kind, name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("emitted %d samples, want %d: %v", len(got), len(want), got)
	}
}
