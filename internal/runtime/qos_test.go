package runtime

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/types"
)

func mkReport(i int, nonce uint64) *types.Transaction {
	tx := &types.Transaction{
		Type:  types.TxLocationReport,
		Nonce: nonce,
		Geo: types.GeoInfo{
			Location:  geo.Point{Lng: 114.17, Lat: 22.30},
			Timestamp: epoch.Add(time.Duration(nonce) * time.Second),
		},
	}
	tx.Sign(gcrypto.DeterministicKeyPair(i))
	return tx
}

// Control traffic must be served before data traffic regardless of
// admission order, and lane depths must be visible in PoolStats.
func TestQoSPeekServesControlFirst(t *testing.T) {
	p := NewMempoolQoS(1000, 4, QoSConfig{})
	for i := 0; i < 8; i++ {
		if err := p.Add(mkTx(1, uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	rep := mkReport(2, 1)
	if err := p.Add(rep); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Lanes[LaneControl] != 1 || st.Lanes[LaneNormal] != 8 {
		t.Fatalf("lane depths = %v", st.Lanes)
	}
	got := p.Peek(4)
	if len(got) != 4 {
		t.Fatalf("Peek returned %d", len(got))
	}
	if got[0].ID() != rep.ID() {
		t.Fatalf("control-lane tx not served first")
	}
}

// An identity over its fair share is demoted to the bulk lane, and the
// bulk lane gets only its weighted share of a Peek.
func TestQoSFairShareDemotesToBulk(t *testing.T) {
	p := NewMempoolQoS(1000, 4, QoSConfig{FairShare: 4, LaneWeights: [3]int{8, 4, 1}})
	// Identity 1 floods far past its fair share; identity 2 stays within.
	for i := 0; i < 20; i++ {
		if err := p.Add(mkTx(1, uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := p.Add(mkTx(2, uint64(500+i))); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Lanes[LaneBulk] != 16 {
		t.Fatalf("bulk depth = %d, want 16 (20 - fair share 4)", st.Lanes[LaneBulk])
	}
	if st.Lanes[LaneNormal] != 7 {
		t.Fatalf("normal depth = %d, want 7", st.Lanes[LaneNormal])
	}
	spammer := gcrypto.DeterministicKeyPair(1).Address()
	if got := p.PendingOf(spammer); got != 20 {
		t.Fatalf("PendingOf(spammer) = %d, want 20", got)
	}
	// One scheduling cycle of 5: weight 4 from normal, 1 from bulk.
	got := p.Peek(5)
	bulk := 0
	for i := range got {
		if got[i].Sender == spammer && got[i].Nonce >= 104 {
			bulk++
		}
	}
	if bulk != 1 {
		t.Fatalf("bulk lane got %d of 5 slots, want exactly its weight 1", bulk)
	}
}

// At capacity the pool evicts the heaviest identity's newest bulk
// transaction instead of rejecting an honest newcomer, and counts it
// under EvictedShed. The flooder itself cannot evict to readmit.
func TestQoSEvictsHeaviestIdentity(t *testing.T) {
	p := NewMempoolQoS(10, 1, QoSConfig{FairShare: 2})
	for i := 0; i < 10; i++ {
		if err := p.Add(mkTx(1, uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Flooder at cap: its own next tx must be rejected, not evict.
	if err := p.Add(mkTx(1, 999)); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("flooder self-eviction: got %v, want ErrPoolFull", err)
	}
	// Honest newcomer evicts the flooder's newest tx.
	honest := mkTx(2, 1)
	if err := p.Add(honest); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.EvictedShed != 1 {
		t.Fatalf("EvictedShed = %d, want 1", st.EvictedShed)
	}
	if st.Pending != 10 {
		t.Fatalf("Pending = %d, want 10 (still at cap)", st.Pending)
	}
	if !p.Contains(honest.ID()) {
		t.Fatal("honest tx not admitted")
	}
	if p.Contains(mkTx(1, 109).ID()) {
		t.Fatal("flooder's newest tx should have been evicted")
	}
	if !p.Contains(mkTx(1, 100).ID()) {
		t.Fatal("flooder's oldest tx should survive (newest-first eviction)")
	}
}

// Satellite: PoolStats backpressure counters must stay exact under
// concurrent submit / evict / commit traffic (run with -race).
func TestQoSStatsExactUnderConcurrency(t *testing.T) {
	p := NewMempoolQoS(64, 8, QoSConfig{FairShare: 4})
	var wg sync.WaitGroup
	const senders, per = 8, 200
	committed := make([][]types.Transaction, senders)
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tx := mkTx(s+1, uint64(i))
				if err := p.Add(tx); err == nil && i%3 == 0 {
					committed[s] = append(committed[s], *tx)
				}
			}
		}(s)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			p.Peek(16)
			p.Stats()
		}
	}()
	wg.Wait()
	<-done
	for s := range committed {
		p.MarkCommitted(committed[s])
	}
	st := p.Stats()
	live := st.Admitted - st.Committed - st.Dropped - st.EvictedShed
	if uint64(st.Pending) != live {
		t.Fatalf("counter drift: Pending=%d but Admitted-Committed-Dropped-EvictedShed=%d (%+v)",
			st.Pending, live, st)
	}
	laneSum := 0
	for _, d := range st.Lanes {
		laneSum += d
	}
	if laneSum != st.Pending {
		t.Fatalf("lane depths sum %d != Pending %d", laneSum, st.Pending)
	}
}

// Token buckets must admit a burst, then reject with a retry-after
// hint, then refill with virtual time — deterministically.
func TestAdmissionRateLimit(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Rate: 10, Burst: 2})
	now := consensus.Time(0)
	for i := 0; i < 2; i++ {
		if err := a.Admit(now, mkTx(1, uint64(i))); err != nil {
			t.Fatalf("burst tx %d rejected: %v", i, err)
		}
	}
	err := a.Admit(now, mkTx(1, 99))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != types.RejectRateLimit {
		t.Fatalf("expected rate-limit rejection, got %v", err)
	}
	if rej.RetryAfter < DefaultRetryAfterMin {
		t.Fatalf("retry-after %v below floor", rej.RetryAfter)
	}
	// 100ms at 10 tx/s refills one token.
	now += 100 * time.Millisecond
	if err := a.Admit(now, mkTx(1, 100)); err != nil {
		t.Fatalf("refilled token rejected: %v", err)
	}
	// A different identity has its own bucket.
	if err := a.Admit(now, mkTx(2, 0)); err != nil {
		t.Fatalf("second identity rejected: %v", err)
	}
	st := a.Stats()
	if st.Accepted != 4 || st.RejectedRate != 1 || st.Identities != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// The shed controller must climb levels as the pool fills, shed bulk
// traffic at level 1, admit only control traffic at level 3, and step
// back down with hysteresis as the pool drains.
func TestAdmissionShedLevels(t *testing.T) {
	pool := NewMempoolQoS(100, 1, QoSConfig{FairShare: 1000})
	a := NewAdmission(AdmissionConfig{Rate: 1e9, ShedThresholds: [3]float64{0.5, 0.75, 0.9}})
	a.BindPool(pool)

	fill := func(n int, base uint64) {
		for i := 0; i < n; i++ {
			if err := pool.Add(mkTx(3, base+uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	fill(49, 0)
	if lvl := a.Recalc(); lvl != 0 {
		t.Fatalf("level at 49%% = %d", lvl)
	}
	fill(26, 100) // 75%
	if lvl := a.Recalc(); lvl != 2 {
		t.Fatalf("level at 75%% = %d", lvl)
	}
	fill(16, 200) // 91%
	if lvl := a.Recalc(); lvl != 3 {
		t.Fatalf("level at 91%% = %d", lvl)
	}
	// Level 3: data traffic shed, control traffic still admitted.
	err := a.Admit(0, mkTx(1, 999))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != types.RejectShed {
		t.Fatalf("expected shed rejection at level 3, got %v", err)
	}
	if err := a.Admit(0, mkReport(1, 1)); err != nil {
		t.Fatalf("control tx rejected at level 3: %v", err)
	}
	// Draining to just below the level-3 threshold is NOT enough to
	// step down (hysteresis)...
	drop := pool.Peek(8)
	pool.MarkCommitted(drop)
	if lvl := a.Recalc(); lvl != 3 {
		t.Fatalf("level dropped without hysteresis margin: %d", lvl)
	}
	// ...but draining below 0.8x the threshold steps down one level at
	// a time.
	pool.MarkCommitted(pool.Peek(30))
	if lvl := a.Recalc(); lvl != 2 {
		t.Fatalf("level after deep drain = %d, want 2", lvl)
	}
	if st := a.Stats(); st.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", st.Shed)
	}
}

// The latency EWMA input must escalate the shed level on its own.
func TestAdmissionLatencyEscalation(t *testing.T) {
	pool := NewMempoolQoS(1000, 1, QoSConfig{})
	a := NewAdmission(AdmissionConfig{Rate: 1e9, LatencyTarget: 100 * time.Millisecond})
	a.BindPool(pool)
	if lvl := a.Recalc(); lvl != 0 {
		t.Fatalf("initial level = %d", lvl)
	}
	a.Observe(time.Second, 2*time.Second)
	if lvl := a.Level(); lvl != 1 {
		t.Fatalf("level after slow commit = %d, want 1", lvl)
	}
	if st := a.Stats(); st.LatencyEWMA == 0 {
		t.Fatal("EWMA not recorded")
	}
}

// Exempt identities (a node's own control traffic) bypass the buckets.
func TestAdmissionExempt(t *testing.T) {
	self := gcrypto.DeterministicKeyPair(7).Address()
	a := NewAdmission(AdmissionConfig{Rate: 0.001, Burst: 1, Exempt: []gcrypto.Address{self}})
	for i := 0; i < 10; i++ {
		if err := a.Admit(0, mkTx(7, uint64(i))); err != nil {
			t.Fatalf("exempt tx %d rejected: %v", i, err)
		}
	}
}

// The bucket table must stay bounded under a Sybil flood of fresh
// identities, recycling the stalest bucket deterministically.
func TestAdmissionIdentityBound(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Rate: 100, MaxIdentities: 16})
	for i := 0; i < 100; i++ {
		_ = a.Admit(consensus.Time(i)*time.Millisecond, mkTx(i+1, 1))
	}
	if st := a.Stats(); st.Identities > 16 {
		t.Fatalf("bucket table grew to %d, bound is 16", st.Identities)
	}
}

// Satellite: the Prometheus series the node exports must be present.
func TestAdmissionWritePrometheus(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Rate: 10})
	_ = a.Admit(0, mkTx(1, 1))
	var buf bytes.Buffer
	a.Stats().WritePrometheus(&buf, "gpbft_")
	out := buf.String()
	for _, series := range []string{
		"gpbft_admission_accepted_total 1",
		"gpbft_admission_rejected_total{reason=\"rate-limit\"}",
		"gpbft_admission_shed_total{reason=\"overload\"}",
		"gpbft_admission_level 0",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("missing series %q in:\n%s", series, out)
		}
	}
}

// A QoS pool with default knobs must keep serving ALL lanes (no
// starvation): bulk traffic trickles out even while higher lanes stay
// populated.
func TestQoSNoLaneStarvation(t *testing.T) {
	p := NewMempoolQoS(10000, 4, QoSConfig{FairShare: 1})
	for i := 0; i < 100; i++ {
		if err := p.Add(mkTx(1, uint64(i))); err != nil { // all but 1 bulk
			t.Fatal(err)
		}
		if err := p.Add(mkReport(2, uint64(i))); err != nil { // control
			t.Fatal(err)
		}
	}
	got := p.Peek(26)
	counts := map[types.TxType]int{}
	for i := range got {
		counts[got[i].Type]++
	}
	// Two full cycles of weights 8/4/1: 16+ control, 2 normal-lane, 2 bulk.
	if counts[types.TxNormal] < 2 {
		t.Fatalf("bulk lane starved: %v", counts)
	}
	if counts[types.TxLocationReport] < 16 {
		t.Fatalf("control lane under-served: %v", counts)
	}
}
