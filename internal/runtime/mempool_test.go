package runtime

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// TestMempoolShardsFIFOAcrossShards admits transactions that land in
// different shards and checks Peek still returns pool-wide admission
// order.
func TestMempoolShardsFIFOAcrossShards(t *testing.T) {
	p := NewMempoolShards(1000, 8)
	var want []gcrypto.Hash
	for i := 0; i < 64; i++ {
		tx := mkTx(0, uint64(1000+i))
		if err := p.Add(tx); err != nil {
			t.Fatal(err)
		}
		want = append(want, tx.ID())
	}
	got := p.Peek(64)
	if len(got) != 64 {
		t.Fatalf("Peek returned %d", len(got))
	}
	shardsSeen := map[uint32]bool{}
	for i := range got {
		if got[i].ID() != want[i] {
			t.Fatalf("index %d out of admission order", i)
		}
		shardsSeen[uint32(want[i][0])&p.mask] = true
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("fixture too narrow: all txs landed in %d shard(s)", len(shardsSeen))
	}
}

func TestMempoolShardClamping(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultMempoolShards}, {1, 1}, {3, 4}, {16, 16}, {100, 128}, {1000, 256},
	} {
		p := NewMempoolShards(10, tc.in)
		if len(p.shards) != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.in, len(p.shards), tc.want)
		}
	}
}

// TestMempoolNoDoubleCommit: a tx marked committed by two concurrent
// reapers is accounted as removed exactly once — the guard against a
// tx being claimed into two blocks.
func TestMempoolNoDoubleCommit(t *testing.T) {
	p := NewMempool(100)
	txs := make([]types.Transaction, 50)
	for i := range txs {
		tx := mkTx(0, uint64(i))
		if err := p.Add(tx); err != nil {
			t.Fatal(err)
		}
		txs[i] = *tx
	}
	var removed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			removed.Add(int64(p.MarkCommitted(txs)))
		}()
	}
	wg.Wait()
	if removed.Load() != 50 {
		t.Fatalf("concurrent MarkCommitted removed %d txs, want exactly 50", removed.Load())
	}
	if p.Len() != 0 {
		t.Fatalf("Len=%d after full commit", p.Len())
	}
}

// TestMempoolHammer runs a seeded 100-goroutine mix of add, peek,
// commit, and drop, then checks the conservation and bound invariants:
// every admitted tx is still pending or accounted for by exactly one
// removal counter, the size bound was never exceeded, and no tx was
// committed twice.
func TestMempoolHammer(t *testing.T) {
	const (
		goroutines = 100
		perG       = 40
		capacity   = 512
	)
	p := NewMempoolShards(capacity, 16)
	var wg sync.WaitGroup
	var overCap atomic.Bool
	var committedTotal atomic.Int64
	committedIDs := make([]map[gcrypto.Hash]int, goroutines)

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		committedIDs[g] = make(map[gcrypto.Hash]int)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + g)))
			for i := 0; i < perG; i++ {
				tx := mkTx(g%8, uint64(g*perG+i))
				err := p.Add(tx)
				if err != nil && err != ErrPoolFull && err != ErrTxDuplicate {
					t.Errorf("unexpected Add error: %v", err)
					return
				}
				if p.Len() > capacity {
					overCap.Store(true)
				}
				switch rng.Intn(4) {
				case 0: // reap a batch and commit it
					batch := p.Peek(1 + rng.Intn(8))
					n := p.MarkCommitted(batch)
					committedTotal.Add(int64(n))
					for j := range batch {
						committedIDs[g][batch[j].ID()]++
					}
				case 1: // drop something (maybe already gone)
					p.Drop(tx.ID())
				case 2:
					p.Contains(tx.ID())
					p.WasCommitted(tx.ID())
				default: // just add
				}
			}
		}(g)
	}
	wg.Wait()

	if overCap.Load() {
		t.Error("size bound exceeded during hammer")
	}
	st := p.Stats()
	if st.Pending != p.Len() {
		t.Errorf("stats pending %d != Len %d", st.Pending, p.Len())
	}
	// Conservation: admitted = still-pending + committed + dropped.
	if got := uint64(st.Pending) + st.Committed + st.Dropped; got != st.Admitted {
		t.Errorf("conservation violated: pending(%d)+committed(%d)+dropped(%d)=%d, admitted=%d",
			st.Pending, st.Committed, st.Dropped, got, st.Admitted)
	}
	if st.Committed != uint64(committedTotal.Load()) {
		t.Errorf("Committed counter %d != MarkCommitted return sum %d", st.Committed, committedTotal.Load())
	}
	// No tx claimed into two "blocks": the same ID must not have been
	// removed-as-pending more than once across all reapers. Peek can
	// legitimately show an ID to two reapers; MarkCommitted's return
	// value is what arbitrates ownership, and the counter sum above
	// already proved total removals equal unique removals iff no ID was
	// double-counted — verify directly by recomputing unique IDs.
	unique := make(map[gcrypto.Hash]bool)
	for g := range committedIDs {
		for id := range committedIDs[g] {
			unique[id] = true
		}
	}
	if uint64(len(unique)) < st.Committed {
		t.Errorf("committed counter %d exceeds %d unique committed IDs", st.Committed, len(unique))
	}
	// Every tx the pool still claims as pending really is peekable.
	rest := p.Peek(capacity + 1)
	if len(rest) != st.Pending {
		t.Errorf("Peek(all) returned %d, pending %d", len(rest), st.Pending)
	}
}

// TestMempoolStatsCounters pins each counter to its trigger.
func TestMempoolStatsCounters(t *testing.T) {
	p := NewMempoolShards(2, 4)
	tx1, tx2, tx3 := mkTx(0, 1), mkTx(0, 2), mkTx(0, 3)
	if err := p.Add(tx1); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx1); err != ErrTxDuplicate {
		t.Fatalf("want dup, got %v", err)
	}
	if err := p.Add(tx2); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx3); err != ErrPoolFull {
		t.Fatalf("want full, got %v", err)
	}
	p.Drop(tx2.ID())
	if n := p.MarkCommitted([]types.Transaction{*tx1}); n != 1 {
		t.Fatalf("MarkCommitted removed %d", n)
	}
	st := p.Stats()
	want := PoolStats{Pending: 0, Shards: 4, Admitted: 2, RejectedFull: 1, RejectedDup: 1, Dropped: 1, Committed: 1, ShardDepths: []int{0, 0, 0, 0}}
	if !reflect.DeepEqual(st, want) {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
}
