// Package types defines the chain data model: transactions (normal,
// configuration, and periodic location reports), blocks, headers, and
// commit certificates, together with their canonical encodings,
// digests, and signature checks.
//
// Paper Section III-B2: "There are two kinds of transactions contained
// in our system, normal transactions and configuration transactions...
// both normal and configuration transactions carry the geographic
// information at the end of the transaction body." We additionally
// model the periodic location uploads of Section III-B3 as a third,
// payload-free transaction type so that the election table can be fed
// even by idle devices.
package types

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"time"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
)

// TxType discriminates the transaction kinds of Section III-B2.
type TxType uint8

// Transaction kinds.
const (
	// TxNormal changes application ledger state (sensor data, payments).
	TxNormal TxType = iota
	// TxConfig modifies chain configuration (endorser set changes);
	// only endorsers may propose it.
	TxConfig
	// TxLocationReport is a periodic location upload with no payload.
	TxLocationReport
	// TxWitness carries a WitnessStatement: a peer attestation that a
	// device is (or is not) physically present at its claimed cell.
	TxWitness
	// TxEvidence carries an evidence.Record: a self-verifying proof of
	// endorser misbehavior (double-sign, Sybil pair, location spoof).
	// Committed evidence feeds the chain's dynamic blacklist.
	TxEvidence
	// TxTransferLock carries a shard.Transfer: the first phase of a
	// cross-region transfer, committed in the source region. Its commit
	// mints a receipt keyed by this transaction's ID.
	TxTransferLock
	// TxTransferApply carries a shard.Receipt: the second phase,
	// committed in the destination region once the anchor committee has
	// committed a source checkpoint covering the receipt. Application is
	// idempotent per receipt ID, which is what makes the two-phase path
	// exactly-once under delegate failover.
	TxTransferApply
	// TxRegionCheckpoint carries a shard.RegionCheckpoint: a region
	// delegate's attestation of its region chain's head, committed on
	// the anchor chain. Only current endorsers (of the anchor chain) may
	// send it, mirroring TxConfig.
	TxRegionCheckpoint
)

// String names the transaction type.
func (t TxType) String() string {
	switch t {
	case TxNormal:
		return "normal"
	case TxConfig:
		return "config"
	case TxLocationReport:
		return "location-report"
	case TxWitness:
		return "witness"
	case TxEvidence:
		return "evidence"
	case TxTransferLock:
		return "transfer-lock"
	case TxTransferApply:
		return "transfer-apply"
	case TxRegionCheckpoint:
		return "region-checkpoint"
	default:
		return fmt.Sprintf("txtype(%d)", uint8(t))
	}
}

// Valid reports whether t is a known type.
func (t TxType) Valid() bool { return t <= TxRegionCheckpoint }

// RejectReason explains why admission control refused a transaction.
// It travels inside the signed TxRejected reply so clients can tell a
// transient condition (back off and retry) from a hard one.
type RejectReason uint8

// Admission rejection reasons.
const (
	// RejectNone is the zero value; never sent on the wire.
	RejectNone RejectReason = iota
	// RejectRateLimit: the sender identity exceeded its token-bucket
	// rate. Retry after the hinted delay.
	RejectRateLimit
	// RejectShed: the node is overloaded and is load-shedding this
	// transaction's priority lane. Retry after the hinted delay.
	RejectShed
	// RejectPoolFull: the mempool is at capacity and the transaction
	// lost the eviction contest (or its sender is the heaviest
	// identity). Retry after the hinted delay.
	RejectPoolFull
)

// String names the rejection reason.
func (r RejectReason) String() string {
	switch r {
	case RejectNone:
		return "none"
	case RejectRateLimit:
		return "rate-limit"
	case RejectShed:
		return "shed"
	case RejectPoolFull:
		return "pool-full"
	default:
		return fmt.Sprintf("reject(%d)", uint8(r))
	}
}

// ValidReject reports whether r is a known, sendable reason.
func (r RejectReason) ValidReject() bool {
	return r >= RejectRateLimit && r <= RejectPoolFull
}

// GeoInfo is the geographic information carried "at the end of the
// transaction body": <longitude, latitude, timestamp>.
type GeoInfo struct {
	Location  geo.Point
	Timestamp time.Time
}

// MarshalCanonical appends the canonical encoding of the geo info.
func (g GeoInfo) MarshalCanonical(w *codec.Writer) {
	w.Float64(g.Location.Lng)
	w.Float64(g.Location.Lat)
	w.Time(g.Timestamp)
}

func (g *GeoInfo) unmarshal(r *codec.Reader) {
	g.Location.Lng = r.Float64()
	g.Location.Lat = r.Float64()
	g.Timestamp = r.Time()
}

// Transaction is a signed chain transaction.
type Transaction struct {
	Type      TxType
	Nonce     uint64
	Sender    gcrypto.Address
	SenderPub []byte // ed25519 public key of the sender
	Payload   []byte // application data; empty for location reports
	Fee       uint64 // transaction fee funding the incentive mechanism
	Geo       GeoInfo
	Signature []byte
}

// Errors returned by transaction validation.
var (
	ErrTxType        = errors.New("types: unknown transaction type")
	ErrTxNoSender    = errors.New("types: transaction has zero sender")
	ErrTxSignature   = errors.New("types: transaction signature invalid")
	ErrTxGeo         = errors.New("types: transaction geographic information invalid")
	ErrTxPayload     = errors.New("types: transaction payload invalid for type")
	ErrTxNoTimestamp = errors.New("types: transaction has zero geo timestamp")
)

// signingBytes is the canonical encoding covered by the signature.
func (tx *Transaction) signingBytes() []byte {
	w := codec.NewWriter(64 + len(tx.Payload))
	w.String("gpbft/tx/v1") // domain separation
	w.Uint8(uint8(tx.Type))
	w.Uint64(tx.Nonce)
	w.Raw(tx.Sender[:])
	w.WriteBytes(tx.Payload)
	w.Uint64(tx.Fee)
	tx.Geo.MarshalCanonical(w)
	return w.Bytes()
}

// ID returns the transaction digest (over the signed content, so two
// transactions with the same ID are the same transaction).
func (tx *Transaction) ID() gcrypto.Hash {
	return gcrypto.HashBytes(tx.signingBytes())
}

// Sign fills Sender, SenderPub and Signature using kp.
func (tx *Transaction) Sign(kp *gcrypto.KeyPair) {
	tx.Sender = kp.Address()
	tx.SenderPub = append([]byte(nil), kp.Public()...)
	tx.Signature = kp.Sign(tx.signingBytes())
}

// Verify checks structural validity and the signature.
func (tx *Transaction) Verify() error {
	if err := tx.verifyStructure(); err != nil {
		return err
	}
	return tx.verifySignature()
}

// verifyStructure runs every check Verify performs before the
// signature, in the same order.
func (tx *Transaction) verifyStructure() error {
	if !tx.Type.Valid() {
		return ErrTxType
	}
	if tx.Sender.IsZero() {
		return ErrTxNoSender
	}
	if err := tx.Geo.Location.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrTxGeo, err)
	}
	if tx.Geo.Timestamp.IsZero() {
		return ErrTxNoTimestamp
	}
	if tx.Type == TxLocationReport && len(tx.Payload) != 0 {
		return fmt.Errorf("%w: location report must have empty payload", ErrTxPayload)
	}
	if tx.Type == TxWitness {
		if _, err := DecodeWitnessStatement(tx.Payload); err != nil {
			return fmt.Errorf("%w: %v", ErrTxPayload, err)
		}
	}
	// TxEvidence payloads decode and verify in the ledger layer (the
	// evidence package sits above types); here only non-emptiness is
	// structural.
	if tx.Type == TxEvidence && len(tx.Payload) == 0 {
		return fmt.Errorf("%w: evidence transaction must carry a record", ErrTxPayload)
	}
	// Shard payloads (transfer locks/applies, region checkpoints) decode
	// and validate in the ledger layer for the same reason; only
	// non-emptiness is structural here.
	if (tx.Type == TxTransferLock || tx.Type == TxTransferApply || tx.Type == TxRegionCheckpoint) && len(tx.Payload) == 0 {
		return fmt.Errorf("%w: %s transaction must carry a payload", ErrTxPayload, tx.Type)
	}
	if len(tx.SenderPub) != ed25519.PublicKeySize {
		return ErrTxSignature
	}
	return nil
}

// verifySignature runs the ed25519 check, assuming structure passed.
func (tx *Transaction) verifySignature() error {
	if err := gcrypto.Verify(tx.SenderPub, tx.Sender, tx.signingBytes(), tx.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrTxSignature, err)
	}
	return nil
}

// wrapTxSigError maps a raw gcrypto verification failure to the exact
// error Verify would return for it.
func wrapTxSigError(err error) error {
	return fmt.Errorf("%w: %v", ErrTxSignature, err)
}

// Report converts the transaction's geographic information into a geo
// report attributed to the sender, ready for the election table.
func (tx *Transaction) Report() geo.Report {
	return geo.Report{
		Location:  tx.Geo.Location,
		Timestamp: tx.Geo.Timestamp,
		Address:   tx.Sender.String(),
	}
}

// MarshalCanonical appends the full wire encoding (including signature).
func (tx *Transaction) MarshalCanonical(w *codec.Writer) {
	w.Uint8(uint8(tx.Type))
	w.Uint64(tx.Nonce)
	w.Raw(tx.Sender[:])
	w.WriteBytes(tx.SenderPub)
	w.WriteBytes(tx.Payload)
	w.Uint64(tx.Fee)
	tx.Geo.MarshalCanonical(w)
	w.WriteBytes(tx.Signature)
}

// UnmarshalCanonical decodes a transaction written by MarshalCanonical.
func (tx *Transaction) UnmarshalCanonical(r *codec.Reader) error {
	tx.Type = TxType(r.Uint8())
	tx.Nonce = r.Uint64()
	r.RawInto(tx.Sender[:])
	tx.SenderPub = r.ReadBytes()
	tx.Payload = r.ReadBytes()
	tx.Fee = r.Uint64()
	tx.Geo.unmarshal(r)
	tx.Signature = r.ReadBytes()
	return r.Err()
}

// EncodeTx returns the wire bytes of tx.
func EncodeTx(tx *Transaction) []byte { return codec.Encode(tx) }

// DecodeTx parses wire bytes into a transaction, requiring full
// consumption of the buffer.
func DecodeTx(b []byte) (*Transaction, error) {
	r := codec.NewReader(b)
	var tx Transaction
	if err := tx.UnmarshalCanonical(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &tx, nil
}

// ConfigChange is the payload of a TxConfig transaction: the endorser
// set delta agreed during an era switch (Section III-B2, III-E).
type ConfigChange struct {
	NewEra uint64
	Add    []EndorserInfo
	Remove []gcrypto.Address
}

// EndorserInfo identifies an endorser: address, public key, and its
// authenticated CSC cell.
type EndorserInfo struct {
	Address gcrypto.Address
	PubKey  []byte
	Geohash string
}

// MarshalCanonical appends the canonical encoding of the change set.
func (c *ConfigChange) MarshalCanonical(w *codec.Writer) {
	w.Uint64(c.NewEra)
	w.Count(len(c.Add))
	for i := range c.Add {
		w.Raw(c.Add[i].Address[:])
		w.WriteBytes(c.Add[i].PubKey)
		w.String(c.Add[i].Geohash)
	}
	w.Count(len(c.Remove))
	for i := range c.Remove {
		w.Raw(c.Remove[i][:])
	}
}

// UnmarshalCanonical decodes a change set.
func (c *ConfigChange) UnmarshalCanonical(r *codec.Reader) error {
	c.NewEra = r.Uint64()
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	c.Add = make([]EndorserInfo, n)
	for i := 0; i < n; i++ {
		r.RawInto(c.Add[i].Address[:])
		c.Add[i].PubKey = r.ReadBytes()
		c.Add[i].Geohash = r.ReadString()
	}
	m := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	c.Remove = make([]gcrypto.Address, m)
	for i := 0; i < m; i++ {
		r.RawInto(c.Remove[i][:])
	}
	return r.Err()
}

// EncodeConfigChange returns the payload bytes for a config tx.
func EncodeConfigChange(c *ConfigChange) []byte { return codec.Encode(c) }

// DecodeConfigChange parses a config tx payload.
func DecodeConfigChange(b []byte) (*ConfigChange, error) {
	r := codec.NewReader(b)
	var c ConfigChange
	if err := c.UnmarshalCanonical(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &c, nil
}
