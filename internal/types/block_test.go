package types

import (
	"bytes"
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
)

func testBlock(t *testing.T, n int) *Block {
	t.Helper()
	kp := gcrypto.DeterministicKeyPair(1)
	txs := make([]Transaction, n)
	for i := range txs {
		txs[i] = Transaction{
			Type:    TxNormal,
			Nonce:   uint64(i),
			Payload: []byte{byte(i)},
			Fee:     uint64(i + 1),
			Geo: GeoInfo{
				Location:  geo.Point{Lng: 114, Lat: 22},
				Timestamp: time.Unix(1565025600, 0),
			},
		}
		txs[i].Sign(kp)
	}
	return NewBlock(BlockHeader{
		Height:    3,
		Era:       1,
		View:      0,
		Seq:       3,
		PrevHash:  gcrypto.HashBytes([]byte("prev")),
		Proposer:  kp.Address(),
		Timestamp: time.Unix(1565025601, 0),
	}, txs)
}

func TestNewBlockFillsTxRoot(t *testing.T) {
	b := testBlock(t, 3)
	if b.Header.TxRoot.IsZero() {
		t.Fatal("tx root not filled")
	}
	if err := b.VerifyTxRoot(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyBlockTxRoot(t *testing.T) {
	b := testBlock(t, 0)
	if !b.Header.TxRoot.IsZero() {
		t.Fatal("empty block should have zero tx root")
	}
	if err := b.VerifyTxRoot(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyTxRootDetectsMutation(t *testing.T) {
	b := testBlock(t, 3)
	b.Txs[1].Fee = 9999
	if err := b.VerifyTxRoot(); err != ErrBlockTxRoot {
		t.Fatalf("want ErrBlockTxRoot, got %v", err)
	}
}

func TestBlockHashDependsOnHeader(t *testing.T) {
	a := testBlock(t, 2)
	b := testBlock(t, 2)
	if a.Hash() != b.Hash() {
		t.Fatal("identical blocks must hash equal")
	}
	b.Header.Height = 4
	if a.Hash() == b.Hash() {
		t.Fatal("height change must change hash")
	}
}

func TestBlockTotalFees(t *testing.T) {
	b := testBlock(t, 4) // fees 1+2+3+4
	if b.TotalFees() != 10 {
		t.Fatalf("TotalFees=%d, want 10", b.TotalFees())
	}
}

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	b := testBlock(t, 5)
	wire := EncodeBlock(b)
	got, err := DecodeBlock(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != b.Hash() {
		t.Fatal("decoded block hash differs")
	}
	if len(got.Txs) != 5 {
		t.Fatalf("decoded %d txs", len(got.Txs))
	}
	if err := got.VerifyTxRoot(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeBlock(got), wire) {
		t.Fatal("re-encoding differs")
	}
}

func TestBlockWithCertRoundTrip(t *testing.T) {
	b := testBlock(t, 1)
	hash := b.Hash()
	keys := map[gcrypto.Address]gcrypto.PublicKey{}
	var votes []Vote
	for i := 0; i < 4; i++ {
		kp := gcrypto.DeterministicKeyPair(10 + i)
		keys[kp.Address()] = kp.Public()
		votes = append(votes, Vote{
			Endorser:  kp.Address(),
			Signature: kp.Sign(VoteDigest(hash, 1, 0)),
		})
	}
	b.Cert = &Certificate{BlockHash: hash, Era: 1, View: 0, Votes: votes}

	got, err := DecodeBlock(EncodeBlock(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cert == nil {
		t.Fatal("certificate lost in round trip")
	}
	if err := got.Cert.Verify(hash, keys, 3); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateVerifyQuorum(t *testing.T) {
	b := testBlock(t, 1)
	hash := b.Hash()
	keys := map[gcrypto.Address]gcrypto.PublicKey{}
	var votes []Vote
	for i := 0; i < 2; i++ {
		kp := gcrypto.DeterministicKeyPair(20 + i)
		keys[kp.Address()] = kp.Public()
		votes = append(votes, Vote{Endorser: kp.Address(), Signature: kp.Sign(VoteDigest(hash, 1, 0))})
	}
	cert := &Certificate{BlockHash: hash, Era: 1, View: 0, Votes: votes}
	if err := cert.Verify(hash, keys, 3); err == nil {
		t.Fatal("2 votes must not satisfy quorum 3")
	}
	if err := cert.Verify(hash, keys, 2); err != nil {
		t.Fatalf("2 votes should satisfy quorum 2: %v", err)
	}
}

func TestCertificateVerifyRejects(t *testing.T) {
	b := testBlock(t, 1)
	hash := b.Hash()
	kp := gcrypto.DeterministicKeyPair(30)
	keys := map[gcrypto.Address]gcrypto.PublicKey{kp.Address(): kp.Public()}
	good := Vote{Endorser: kp.Address(), Signature: kp.Sign(VoteDigest(hash, 1, 0))}

	// Wrong block hash.
	cert := &Certificate{BlockHash: gcrypto.HashBytes([]byte("other")), Era: 1, Votes: []Vote{good}}
	if err := cert.Verify(hash, keys, 1); err != ErrCertBlockHash {
		t.Errorf("wrong hash: %v", err)
	}

	// Duplicate voter.
	cert = &Certificate{BlockHash: hash, Era: 1, Votes: []Vote{good, good}}
	if err := cert.Verify(hash, keys, 1); err != ErrCertDupVote {
		t.Errorf("dup voter: %v", err)
	}

	// Non-member vote doesn't count.
	outsider := gcrypto.DeterministicKeyPair(31)
	cert = &Certificate{BlockHash: hash, Era: 1, Votes: []Vote{{
		Endorser:  outsider.Address(),
		Signature: outsider.Sign(VoteDigest(hash, 1, 0)),
	}}}
	if err := cert.Verify(hash, keys, 1); err == nil {
		t.Error("outsider vote must not satisfy quorum")
	}

	// Signature over wrong era doesn't count.
	cert = &Certificate{BlockHash: hash, Era: 1, Votes: []Vote{{
		Endorser:  kp.Address(),
		Signature: kp.Sign(VoteDigest(hash, 2, 0)),
	}}}
	if err := cert.Verify(hash, keys, 1); err == nil {
		t.Error("wrong-era signature must not satisfy quorum")
	}
}

func TestDecodeBlockErrors(t *testing.T) {
	if _, err := DecodeBlock([]byte{1}); err == nil {
		t.Error("garbage must fail")
	}
	wire := EncodeBlock(testBlock(t, 1))
	if _, err := DecodeBlock(append(wire, 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
	// Corrupt the tag.
	bad := append([]byte(nil), wire...)
	bad[5] ^= 0xFF
	if _, err := DecodeBlock(bad); err == nil {
		t.Error("bad tag must fail")
	}
}

func TestVoteDigestDomains(t *testing.T) {
	h := gcrypto.HashBytes([]byte("b"))
	if bytes.Equal(VoteDigest(h, 1, 0), VoteDigest(h, 1, 1)) {
		t.Error("view must affect digest")
	}
	if bytes.Equal(VoteDigest(h, 1, 0), VoteDigest(h, 2, 0)) {
		t.Error("era must affect digest")
	}
}
