package types

import (
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
)

func TestWitnessStatementRoundTrip(t *testing.T) {
	st := &WitnessStatement{
		Subject: gcrypto.DeterministicKeyPair(7).Address(),
		Geohash: "wecnyhwbp1",
		Seen:    true,
	}
	got, err := DecodeWitnessStatement(EncodeWitnessStatement(st))
	if err != nil {
		t.Fatal(err)
	}
	if got.Subject != st.Subject || got.Geohash != st.Geohash || got.Seen != st.Seen {
		t.Fatalf("round trip mangled: %+v", got)
	}
}

func TestWitnessStatementDecodeErrors(t *testing.T) {
	if _, err := DecodeWitnessStatement(nil); err == nil {
		t.Error("empty payload must fail")
	}
	if _, err := DecodeWitnessStatement([]byte("garbage-bytes-here")); err == nil {
		t.Error("garbage must fail")
	}
	wire := EncodeWitnessStatement(&WitnessStatement{Geohash: "abc"})
	if _, err := DecodeWitnessStatement(append(wire, 1)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestWitnessTxVerify(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	good := &Transaction{
		Type: TxWitness,
		Payload: EncodeWitnessStatement(&WitnessStatement{
			Subject: gcrypto.DeterministicKeyPair(2).Address(),
			Geohash: "wecnyhwbp1",
			Seen:    false,
		}),
		Geo: GeoInfo{
			Location:  geo.Point{Lng: 114.18, Lat: 22.3},
			Timestamp: time.Unix(1565000000, 0),
		},
	}
	good.Sign(kp)
	if err := good.Verify(); err != nil {
		t.Fatal(err)
	}
	// A witness tx with a garbage payload must fail validation.
	bad := &Transaction{
		Type:    TxWitness,
		Payload: []byte("not-a-statement"),
		Geo:     good.Geo,
	}
	bad.Sign(kp)
	if err := bad.Verify(); err == nil {
		t.Fatal("garbage witness payload accepted")
	}
	if TxWitness.String() != "witness" {
		t.Fatal("type name wrong")
	}
}
