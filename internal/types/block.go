package types

import (
	"errors"
	"fmt"
	"time"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
)

// BlockHeader commits to a block's position, era, proposer, and
// transaction set.
type BlockHeader struct {
	Height    uint64 // chain height; genesis is 0
	Era       uint64 // G-PBFT era this block was produced in
	View      uint64 // PBFT view inside the era
	Seq       uint64 // PBFT sequence number inside the era
	PrevHash  gcrypto.Hash
	TxRoot    gcrypto.Hash // Merkle root over EncodeTx of each tx
	Proposer  gcrypto.Address
	Timestamp time.Time
}

// MarshalCanonical appends the canonical header encoding.
func (h *BlockHeader) MarshalCanonical(w *codec.Writer) {
	w.String("gpbft/block/v1")
	w.Uint64(h.Height)
	w.Uint64(h.Era)
	w.Uint64(h.View)
	w.Uint64(h.Seq)
	w.Raw(h.PrevHash[:])
	w.Raw(h.TxRoot[:])
	w.Raw(h.Proposer[:])
	w.Time(h.Timestamp)
}

// UnmarshalCanonical decodes a header.
func (h *BlockHeader) UnmarshalCanonical(r *codec.Reader) error {
	if tag := r.ReadString(); r.Err() == nil && tag != "gpbft/block/v1" {
		return fmt.Errorf("types: bad block tag %q", tag)
	}
	h.Height = r.Uint64()
	h.Era = r.Uint64()
	h.View = r.Uint64()
	h.Seq = r.Uint64()
	r.RawInto(h.PrevHash[:])
	r.RawInto(h.TxRoot[:])
	r.RawInto(h.Proposer[:])
	h.Timestamp = r.Time()
	return r.Err()
}

// Hash returns the block identifier: the digest of the header.
func (h *BlockHeader) Hash() gcrypto.Hash {
	return gcrypto.HashBytes(codec.Encode(h))
}

// Vote is one endorser's commit signature over a block hash.
type Vote struct {
	Endorser  gcrypto.Address
	Signature []byte
}

// Certificate proves a block committed: 2f+1 endorser votes over the
// block hash within a given era and view.
type Certificate struct {
	BlockHash gcrypto.Hash
	Era       uint64
	View      uint64
	Votes     []Vote
}

// VoteDigest is the message endorsers sign to certify blockHash at
// (era, view).
func VoteDigest(blockHash gcrypto.Hash, era, view uint64) []byte {
	w := codec.NewWriter(64)
	w.String("gpbft/vote/v1")
	w.Raw(blockHash[:])
	w.Uint64(era)
	w.Uint64(view)
	return w.Bytes()
}

// Errors returned by block and certificate validation.
var (
	ErrBlockTxRoot   = errors.New("types: block tx root does not match transactions")
	ErrCertQuorum    = errors.New("types: certificate lacks a quorum of votes")
	ErrCertBlockHash = errors.New("types: certificate is for a different block")
	ErrCertDupVote   = errors.New("types: certificate has duplicate voter")
)

// Block is a batch of transactions with its header and, once committed,
// the commit certificate.
type Block struct {
	Header BlockHeader
	Txs    []Transaction
	// Cert is attached after commit; nil while in flight.
	Cert *Certificate
}

// ComputeTxRoot returns the Merkle root over the encoded transactions.
func ComputeTxRoot(txs []Transaction) gcrypto.Hash {
	if len(txs) == 0 {
		return gcrypto.Hash{}
	}
	leaves := make([][]byte, len(txs))
	for i := range txs {
		leaves[i] = EncodeTx(&txs[i])
	}
	return gcrypto.MerkleRoot(leaves)
}

// NewBlock assembles a block over txs and fills the TxRoot.
func NewBlock(header BlockHeader, txs []Transaction) *Block {
	header.TxRoot = ComputeTxRoot(txs)
	return &Block{Header: header, Txs: txs}
}

// Hash returns the block identifier.
func (b *Block) Hash() gcrypto.Hash { return b.Header.Hash() }

// VerifyTxRoot recomputes the Merkle root and compares.
func (b *Block) VerifyTxRoot() error {
	if ComputeTxRoot(b.Txs) != b.Header.TxRoot {
		return ErrBlockTxRoot
	}
	return nil
}

// TotalFees sums the transaction fees, the pot the incentive mechanism
// splits 70/30 (Section III-B5).
func (b *Block) TotalFees() uint64 {
	var sum uint64
	for i := range b.Txs {
		sum += b.Txs[i].Fee
	}
	return sum
}

// MarshalCanonical appends the full block encoding.
func (b *Block) MarshalCanonical(w *codec.Writer) {
	b.Header.MarshalCanonical(w)
	w.Count(len(b.Txs))
	for i := range b.Txs {
		b.Txs[i].MarshalCanonical(w)
	}
	if b.Cert != nil {
		w.Bool(true)
		b.Cert.MarshalCanonical(w)
	} else {
		w.Bool(false)
	}
}

// UnmarshalCanonical decodes a block.
func (b *Block) UnmarshalCanonical(r *codec.Reader) error {
	if err := b.Header.UnmarshalCanonical(r); err != nil {
		return err
	}
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	b.Txs = make([]Transaction, n)
	for i := 0; i < n; i++ {
		if err := b.Txs[i].UnmarshalCanonical(r); err != nil {
			return err
		}
	}
	if r.Bool() {
		b.Cert = new(Certificate)
		if err := b.Cert.UnmarshalCanonical(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// EncodeBlock returns the wire bytes of b.
func EncodeBlock(b *Block) []byte { return codec.Encode(b) }

// DecodeBlock parses wire bytes into a block.
func DecodeBlock(data []byte) (*Block, error) {
	r := codec.NewReader(data)
	var b Block
	if err := b.UnmarshalCanonical(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &b, nil
}

// MarshalCanonical appends the certificate encoding.
func (c *Certificate) MarshalCanonical(w *codec.Writer) {
	w.Raw(c.BlockHash[:])
	w.Uint64(c.Era)
	w.Uint64(c.View)
	w.Count(len(c.Votes))
	for i := range c.Votes {
		w.Raw(c.Votes[i].Endorser[:])
		w.WriteBytes(c.Votes[i].Signature)
	}
}

// UnmarshalCanonical decodes a certificate.
func (c *Certificate) UnmarshalCanonical(r *codec.Reader) error {
	r.RawInto(c.BlockHash[:])
	c.Era = r.Uint64()
	c.View = r.Uint64()
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	c.Votes = make([]Vote, n)
	for i := 0; i < n; i++ {
		r.RawInto(c.Votes[i].Endorser[:])
		c.Votes[i].Signature = r.ReadBytes()
	}
	return r.Err()
}

// Verify checks the certificate against a block hash and the committee
// key set: each vote must come from a distinct committee member with a
// valid signature, and there must be at least quorum votes.
func (c *Certificate) Verify(blockHash gcrypto.Hash, keys map[gcrypto.Address]gcrypto.PublicKey, quorum int) error {
	if c.BlockHash != blockHash {
		return ErrCertBlockHash
	}
	digest := VoteDigest(c.BlockHash, c.Era, c.View)
	seen := make(map[gcrypto.Address]bool, len(c.Votes))
	items := make([]gcrypto.BatchItem, 0, len(c.Votes))
	keys2 := make([]gcrypto.Hash, 0, len(c.Votes))
	valid := 0
	useCache := sigCacheUsable()
	for i := range c.Votes {
		v := &c.Votes[i]
		if seen[v.Endorser] {
			return ErrCertDupVote
		}
		seen[v.Endorser] = true
		pub, ok := keys[v.Endorser]
		if !ok {
			continue // not a committee member this era
		}
		// Votes the consensus tally already accepted (see
		// VerifyVoteCached) are served from the cache; only the rest hit
		// the verification pool.
		if useCache {
			key := voteCacheKey(v.Endorser, digest, v.Signature)
			if sigCacheLookup(key) {
				valid++
				continue
			}
			keys2 = append(keys2, key)
		}
		items = append(items, gcrypto.BatchItem{Pub: pub, Addr: v.Endorser, Msg: digest, Sig: v.Signature})
	}
	// The per-vote checks fan out over the verification pool; a vote
	// counts toward quorum iff the serial check would have accepted it.
	for k, err := range gcrypto.VerifyBatch(items) {
		if err == nil {
			valid++
			if useCache {
				sigCacheStore(keys2[k])
			}
		}
	}
	if valid < quorum {
		return fmt.Errorf("%w: %d/%d", ErrCertQuorum, valid, quorum)
	}
	return nil
}
