package types

import (
	"errors"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
)

// WitnessStatement is a peer attestation about another device's
// claimed location — the supervision mechanism of the paper's threat
// model ("all IoT devices ... are worked within a small physical area.
// Nodes can monitor and supervise each other, and check geographic
// information accordingly") and Sybil defence ("if there is no device
// in a specific position and geographic information reporting, it can
// be recognized as fake").
//
// A witness near the claimed cell either confirms (Seen) or disputes
// (!Seen) that the subject is physically present. Statements travel as
// the payload of a TxWitness transaction; the transaction's own Geo
// info locates the witness itself, so a statement is only credible
// from a witness that is actually nearby.
type WitnessStatement struct {
	Subject gcrypto.Address
	// Geohash is the CSC cell the subject claimed.
	Geohash string
	// Seen reports whether the witness observed the subject there.
	Seen bool
}

// ErrWitnessPayload is returned for malformed witness payloads.
var ErrWitnessPayload = errors.New("types: malformed witness statement payload")

// MarshalCanonical implements codec.Marshaler.
func (s *WitnessStatement) MarshalCanonical(w *codec.Writer) {
	w.String("gpbft/witness/v1")
	w.Raw(s.Subject[:])
	w.String(s.Geohash)
	w.Bool(s.Seen)
}

// UnmarshalCanonical decodes a statement.
func (s *WitnessStatement) UnmarshalCanonical(r *codec.Reader) error {
	if tag := r.ReadString(); r.Err() == nil && tag != "gpbft/witness/v1" {
		return ErrWitnessPayload
	}
	r.RawInto(s.Subject[:])
	s.Geohash = r.ReadString()
	s.Seen = r.Bool()
	return r.Err()
}

// EncodeWitnessStatement returns the payload bytes for a TxWitness.
func EncodeWitnessStatement(s *WitnessStatement) []byte { return codec.Encode(s) }

// DecodeWitnessStatement parses a TxWitness payload.
func DecodeWitnessStatement(b []byte) (*WitnessStatement, error) {
	r := codec.NewReader(b)
	var s WitnessStatement
	if err := s.UnmarshalCanonical(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &s, nil
}
