package types

import (
	"sync"
	"sync/atomic"

	"gpbft/internal/gcrypto"
)

// Hot-path transaction verification. A transaction's signature is
// checked several times on its way into the ledger — once at local
// submission, once per committee relay received, and once per replica
// inside block validation. The checks are pure functions of the
// transaction bytes, so the results are memoized in a bounded,
// lock-striped cache keyed by (tx ID, signature); block validation
// additionally fans the uncached checks out over the gcrypto worker
// pool. Both layers preserve byte-exact accept/reject semantics with
// the serial path: only successful verifications under real
// (non-disabled) crypto are ever cached.

// sigCacheStripes must be a power of two (the stripe index is masked).
const sigCacheStripes = 64

// sigCacheStripeCap bounds each stripe's two generations; the full
// cache holds at most 2*64*1024 = 128k verified signatures (~4 MB).
const sigCacheStripeCap = 1024

type sigStripe struct {
	mu   sync.Mutex
	cur  map[gcrypto.Hash]struct{}
	prev map[gcrypto.Hash]struct{}
}

var (
	sigCache        [sigCacheStripes]sigStripe
	sigCacheEnabled atomic.Bool
	sigCacheHits    atomic.Uint64
	sigCacheMisses  atomic.Uint64
)

func init() { sigCacheEnabled.Store(true) }

// SetSigCache toggles the verified-signature cache; returns the
// previous setting. The serial ablation baseline in gpbft-bench turns
// it off to reproduce seed behaviour.
func SetSigCache(on bool) bool { return sigCacheEnabled.Swap(on) }

// SigCacheStats reports cache hits and misses since process start.
func SigCacheStats() (hits, misses uint64) {
	return sigCacheHits.Load(), sigCacheMisses.Load()
}

// sigCacheKey binds the cached verdict to the exact signature bytes:
// the tx ID covers only the signed content, so two encodings of the
// same ID with different signatures must not share a cache slot.
func sigCacheKey(tx *Transaction) gcrypto.Hash {
	id := tx.ID()
	return gcrypto.HashConcat(id[:], tx.Signature)
}

func sigCacheLookup(key gcrypto.Hash) bool {
	s := &sigCache[key[0]&(sigCacheStripes-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cur[key]; ok {
		sigCacheHits.Add(1)
		return true
	}
	if _, ok := s.prev[key]; ok {
		// Promote so a hot entry survives generation rotation.
		if s.cur == nil {
			s.cur = make(map[gcrypto.Hash]struct{})
		}
		s.cur[key] = struct{}{}
		sigCacheHits.Add(1)
		return true
	}
	sigCacheMisses.Add(1)
	return false
}

func sigCacheStore(key gcrypto.Hash) {
	s := &sigCache[key[0]&(sigCacheStripes-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil {
		s.cur = make(map[gcrypto.Hash]struct{})
	}
	s.cur[key] = struct{}{}
	if len(s.cur) >= sigCacheStripeCap {
		s.prev = s.cur
		s.cur = make(map[gcrypto.Hash]struct{})
	}
}

// sigCacheUsable reports whether the cache may serve or record
// verdicts. Verification verdicts recorded while real crypto is
// disabled (simulation sweeps) would be unsound once re-enabled, so
// the cache stands down entirely in that mode.
func sigCacheUsable() bool {
	return sigCacheEnabled.Load() && gcrypto.VerificationEnabled()
}

// VerifyCached is Verify with signature memoization: structural checks
// always run (they are cheap and stateless), the ed25519 check is
// skipped when this exact (content, signature) pair has already been
// accepted. Accept/reject behaviour is identical to Verify.
func (tx *Transaction) VerifyCached() error {
	if !sigCacheUsable() {
		return tx.Verify()
	}
	if err := tx.verifyStructure(); err != nil {
		return err
	}
	key := sigCacheKey(tx)
	if sigCacheLookup(key) {
		return nil
	}
	if err := tx.verifySignature(); err != nil {
		return err
	}
	sigCacheStore(key)
	return nil
}

// voteCacheKey binds a cached vote verdict to the exact endorser,
// signed digest, and signature bytes. The address stands in for the
// public key: gcrypto.Verify enforces the pub↔address binding, so
// (address, digest, signature) fully determines the verdict.
func voteCacheKey(endorser gcrypto.Address, digest, sig []byte) gcrypto.Hash {
	return gcrypto.HashConcat([]byte("vote"), endorser[:], digest, sig)
}

// VerifyVoteCached checks one certificate vote signature with
// memoization. Every commit-certificate signature is verified twice on
// the hot path — once as the vote arrives (consensus tallying) and
// again when the assembled certificate is validated at block commit —
// and the second check is always a replay of the first. Accept/reject
// behaviour is identical to gcrypto.Verify; only successes under real
// crypto are cached.
func VerifyVoteCached(pub gcrypto.PublicKey, endorser gcrypto.Address, digest, sig []byte) error {
	if !sigCacheUsable() {
		return gcrypto.Verify(pub, endorser, digest, sig)
	}
	key := voteCacheKey(endorser, digest, sig)
	if sigCacheLookup(key) {
		return nil
	}
	if err := gcrypto.Verify(pub, endorser, digest, sig); err != nil {
		return err
	}
	sigCacheStore(key)
	return nil
}

// VerifyTxs verifies a batch of transactions, returning one result
// slot per index — errs[i] is exactly what txs[i].Verify() would
// return. Structural checks run serially (cheap); signature checks not
// already memoized fan out over the gcrypto batch verifier, and fresh
// successes are recorded in the cache.
func VerifyTxs(txs []Transaction) []error {
	errs := make([]error, len(txs))
	if len(txs) == 0 {
		return errs
	}
	if !sigCacheUsable() && gcrypto.BatchWorkers() <= 1 {
		for i := range txs {
			errs[i] = txs[i].Verify()
		}
		return errs
	}
	useCache := sigCacheUsable()
	// Pass 1: structure, cache lookups, and batch assembly.
	items := make([]gcrypto.BatchItem, 0, len(txs))
	itemIdx := make([]int, 0, len(txs))
	keys := make([]gcrypto.Hash, len(txs))
	for i := range txs {
		tx := &txs[i]
		if err := tx.verifyStructure(); err != nil {
			errs[i] = err
			continue
		}
		if useCache {
			keys[i] = sigCacheKey(tx)
			if sigCacheLookup(keys[i]) {
				continue
			}
		}
		items = append(items, gcrypto.BatchItem{
			Pub:  tx.SenderPub,
			Addr: tx.Sender,
			Msg:  tx.signingBytes(),
			Sig:  tx.Signature,
		})
		itemIdx = append(itemIdx, i)
	}
	// Pass 2: the remaining signature checks, across all cores.
	for k, err := range gcrypto.VerifyBatch(items) {
		i := itemIdx[k]
		if err != nil {
			errs[i] = wrapTxSigError(err)
			continue
		}
		if useCache {
			sigCacheStore(keys[i])
		}
	}
	return errs
}

// PrewarmTxs verifies transactions purely to populate the signature
// cache — the pipelining hook: a pre-prepare's transaction batch is
// warmed on a verification worker while the consensus loop is still
// finishing the previous instance, so the serial ValidateBlock that
// follows runs at cache speed. Failures are ignored here; the serial
// validation path re-derives and reports them authoritatively.
func PrewarmTxs(txs []Transaction) {
	if !sigCacheUsable() {
		return
	}
	_ = VerifyTxs(txs)
}
