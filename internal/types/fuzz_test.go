package types

import (
	"bytes"
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
)

// FuzzDecodeTx: arbitrary bytes must never panic the transaction
// decoder, and any successfully decoded transaction must re-encode to
// the identical bytes (canonical form).
func FuzzDecodeTx(f *testing.F) {
	kp := gcrypto.DeterministicKeyPair(1)
	tx := &Transaction{
		Type: TxNormal, Nonce: 7, Payload: []byte("seed"), Fee: 3,
		Geo: GeoInfo{Location: geo.Point{Lng: 114.18, Lat: 22.3}, Timestamp: time.Unix(1565000000, 0)},
	}
	tx.Sign(kp)
	f.Add(EncodeTx(tx))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeTx(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeTx(got), data) {
			t.Fatal("decoded tx does not re-encode canonically")
		}
	})
}

// FuzzDecodeBlock: the block decoder must be total.
func FuzzDecodeBlock(f *testing.F) {
	kp := gcrypto.DeterministicKeyPair(1)
	tx := Transaction{
		Type: TxNormal, Nonce: 1, Payload: []byte("x"), Fee: 1,
		Geo: GeoInfo{Location: geo.Point{Lng: 1, Lat: 2}, Timestamp: time.Unix(10, 0)},
	}
	tx.Sign(kp)
	b := NewBlock(BlockHeader{Height: 1, Timestamp: time.Unix(11, 0)}, []Transaction{tx})
	f.Add(EncodeBlock(b))
	f.Add([]byte("gpbft/block/v1 but not really"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeBlock(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeBlock(got), data) {
			t.Fatal("decoded block does not re-encode canonically")
		}
	})
}

// FuzzDecodeConfigChange and FuzzDecodeWitnessStatement cover the two
// payload sub-codecs.
func FuzzDecodeConfigChange(f *testing.F) {
	kp := gcrypto.DeterministicKeyPair(2)
	f.Add(EncodeConfigChange(&ConfigChange{
		NewEra: 3,
		Add:    []EndorserInfo{{Address: kp.Address(), PubKey: kp.Public(), Geohash: "wecnyhwbp1"}},
		Remove: []gcrypto.Address{gcrypto.DeterministicKeyPair(3).Address()},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeConfigChange(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeConfigChange(got), data) {
			t.Fatal("config change not canonical")
		}
	})
}

func FuzzDecodeWitnessStatement(f *testing.F) {
	f.Add(EncodeWitnessStatement(&WitnessStatement{
		Subject: gcrypto.DeterministicKeyPair(4).Address(),
		Geohash: "wecnyhwbp1",
		Seen:    true,
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeWitnessStatement(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeWitnessStatement(got), data) {
			t.Fatal("witness statement not canonical")
		}
	})
}
