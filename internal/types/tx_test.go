package types

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
)

func testTx(t *testing.T, kp *gcrypto.KeyPair, typ TxType) *Transaction {
	t.Helper()
	tx := &Transaction{
		Type:    typ,
		Nonce:   7,
		Payload: []byte("temp=23.4C"),
		Fee:     10,
		Geo: GeoInfo{
			Location:  geo.Point{Lng: 114.1795, Lat: 22.3050},
			Timestamp: time.Date(2019, 8, 5, 18, 0, 0, 0, time.UTC),
		},
	}
	if typ == TxLocationReport {
		tx.Payload = nil
	}
	tx.Sign(kp)
	return tx
}

func TestTxSignVerify(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	for _, typ := range []TxType{TxNormal, TxConfig, TxLocationReport} {
		tx := testTx(t, kp, typ)
		if err := tx.Verify(); err != nil {
			t.Fatalf("%v tx: %v", typ, err)
		}
	}
}

func TestTxVerifyRejectsTampering(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)

	tx := testTx(t, kp, TxNormal)
	tx.Payload = []byte("temp=99.9C")
	if err := tx.Verify(); err == nil {
		t.Error("payload tampering must fail verification")
	}

	tx = testTx(t, kp, TxNormal)
	tx.Fee = 999999
	if err := tx.Verify(); err == nil {
		t.Error("fee tampering must fail verification")
	}

	tx = testTx(t, kp, TxNormal)
	tx.Geo.Location.Lng += 0.0001
	if err := tx.Verify(); err == nil {
		t.Error("location tampering must fail verification")
	}
}

func TestTxVerifyStructural(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)

	tx := testTx(t, kp, TxNormal)
	tx.Type = TxType(99)
	if err := tx.Verify(); err != ErrTxType {
		t.Errorf("unknown type: %v", err)
	}

	tx = testTx(t, kp, TxNormal)
	tx.Sender = gcrypto.Address{}
	if err := tx.Verify(); err != ErrTxNoSender {
		t.Errorf("zero sender: %v", err)
	}

	tx = testTx(t, kp, TxNormal)
	tx.Geo.Location.Lat = 91
	if err := tx.Verify(); err == nil {
		t.Error("bad latitude must fail")
	}

	tx = testTx(t, kp, TxNormal)
	tx.Geo.Timestamp = time.Time{}
	if err := tx.Verify(); err != ErrTxNoTimestamp {
		t.Errorf("zero timestamp: %v", err)
	}

	tx = testTx(t, kp, TxNormal)
	tx.SenderPub = tx.SenderPub[:10]
	if err := tx.Verify(); err == nil {
		t.Error("truncated pubkey must fail")
	}

	// Location report with payload is malformed.
	bad := testTx(t, kp, TxNormal)
	bad.Type = TxLocationReport
	bad.Sign(kp)
	if err := bad.Verify(); err == nil {
		t.Error("location report with payload must fail")
	}
}

func TestTxIDStableAndUnique(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	a := testTx(t, kp, TxNormal)
	b := testTx(t, kp, TxNormal)
	if a.ID() != b.ID() {
		t.Error("identical content must have identical IDs")
	}
	c := testTx(t, kp, TxNormal)
	c.Nonce = 8
	c.Sign(kp)
	if a.ID() == c.ID() {
		t.Error("different nonce must change the ID")
	}
}

func TestTxEncodeDecodeRoundTrip(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(2)
	orig := testTx(t, kp, TxNormal)
	wire := EncodeTx(orig)
	got, err := DecodeTx(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != orig.ID() {
		t.Fatal("decoded tx has different ID")
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("decoded tx fails verification: %v", err)
	}
	if !bytes.Equal(EncodeTx(got), wire) {
		t.Fatal("re-encoding differs")
	}
}

func TestDecodeTxErrors(t *testing.T) {
	if _, err := DecodeTx([]byte{1, 2}); err == nil {
		t.Error("short buffer must fail")
	}
	kp := gcrypto.DeterministicKeyPair(2)
	wire := EncodeTx(testTx(t, kp, TxNormal))
	if _, err := DecodeTx(append(wire, 0xFF)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestTxReport(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(3)
	tx := testTx(t, kp, TxLocationReport)
	rep := tx.Report()
	if rep.Address != kp.Address().String() {
		t.Errorf("report address %q", rep.Address)
	}
	if !rep.Location.Equal(tx.Geo.Location) {
		t.Error("report location mismatch")
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTxTypeString(t *testing.T) {
	if TxNormal.String() != "normal" || TxConfig.String() != "config" ||
		TxLocationReport.String() != "location-report" {
		t.Error("type names wrong")
	}
	if TxType(42).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestConfigChangeRoundTrip(t *testing.T) {
	kp1 := gcrypto.DeterministicKeyPair(1)
	kp2 := gcrypto.DeterministicKeyPair(2)
	c := &ConfigChange{
		NewEra: 5,
		Add: []EndorserInfo{{
			Address: kp1.Address(),
			PubKey:  kp1.Public(),
			Geohash: "wecnyh1234",
		}},
		Remove: []gcrypto.Address{kp2.Address()},
	}
	wire := EncodeConfigChange(c)
	got, err := DecodeConfigChange(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.NewEra != 5 || len(got.Add) != 1 || len(got.Remove) != 1 {
		t.Fatalf("decoded: %+v", got)
	}
	if got.Add[0].Address != kp1.Address() || got.Add[0].Geohash != "wecnyh1234" {
		t.Fatal("add entry mangled")
	}
	if !bytes.Equal(got.Add[0].PubKey, kp1.Public()) {
		t.Fatal("pubkey mangled")
	}
	if got.Remove[0] != kp2.Address() {
		t.Fatal("remove entry mangled")
	}
}

func TestConfigChangeEmptyRoundTrip(t *testing.T) {
	wire := EncodeConfigChange(&ConfigChange{NewEra: 1})
	got, err := DecodeConfigChange(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.NewEra != 1 || len(got.Add) != 0 || len(got.Remove) != 0 {
		t.Fatalf("decoded: %+v", got)
	}
}

func TestDecodeConfigChangeErrors(t *testing.T) {
	if _, err := DecodeConfigChange([]byte{0xFF}); err == nil {
		t.Error("garbage must fail")
	}
}

// Property: random transactions round-trip through the wire format.
func TestTxWireProperty(t *testing.T) {
	f := func(seed int64, nonce uint64, fee uint64, payload []byte, typRaw uint8) bool {
		kp := gcrypto.DeterministicKeyPair(int(seed % 64))
		typ := TxType(typRaw % 2) // normal or config
		rng := rand.New(rand.NewSource(seed))
		tx := &Transaction{
			Type:    typ,
			Nonce:   nonce,
			Payload: payload,
			Fee:     fee,
			Geo: GeoInfo{
				Location:  geo.Point{Lng: rng.Float64()*360 - 180, Lat: rng.Float64()*180 - 90},
				Timestamp: time.Unix(rng.Int63n(1<<35), 0),
			},
		}
		tx.Sign(kp)
		got, err := DecodeTx(EncodeTx(tx))
		if err != nil {
			return false
		}
		return got.ID() == tx.ID() && got.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoInfoMarshalDeterministic(t *testing.T) {
	g := GeoInfo{Location: geo.Point{Lng: 1, Lat: 2}, Timestamp: time.Unix(100, 5)}
	w1 := codec.NewWriter(0)
	w2 := codec.NewWriter(0)
	g.MarshalCanonical(w1)
	g.MarshalCanonical(w2)
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("GeoInfo encoding not deterministic")
	}
}
