package types

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
)

func signedTx(t testing.TB, i int) Transaction {
	t.Helper()
	kp := gcrypto.DeterministicKeyPair(1000 + i)
	tx := Transaction{
		Type:    TxNormal,
		Nonce:   uint64(i),
		Payload: []byte(fmt.Sprintf("payload %d", i)),
		Fee:     1,
		Geo: GeoInfo{
			Location:  geo.Point{Lng: 10, Lat: 20},
			Timestamp: time.Unix(1700000000+int64(i), 0),
		},
	}
	tx.Sign(kp)
	return tx
}

// assertTxEquivalent checks VerifyTxs and VerifyCached against the
// serial Verify oracle on every index.
func assertTxEquivalent(t *testing.T, txs []Transaction) {
	t.Helper()
	got := VerifyTxs(txs)
	if len(got) != len(txs) {
		t.Fatalf("VerifyTxs returned %d results for %d txs", len(got), len(txs))
	}
	for i := range txs {
		want := txs[i].Verify()
		if (got[i] == nil) != (want == nil) {
			t.Fatalf("index %d: batch=%v serial=%v", i, got[i], want)
		}
		if want != nil && got[i].Error() != want.Error() {
			t.Fatalf("index %d: batch error %q, serial error %q", i, got[i], want)
		}
		cached := txs[i].VerifyCached()
		if (cached == nil) != (want == nil) {
			t.Fatalf("index %d: cached=%v serial=%v", i, cached, want)
		}
	}
}

func TestVerifyTxsAllValid(t *testing.T) {
	txs := make([]Transaction, 16)
	for i := range txs {
		txs[i] = signedTx(t, i)
	}
	assertTxEquivalent(t, txs)
	// Second pass: now fully cached; results must not change.
	assertTxEquivalent(t, txs)
}

func TestVerifyTxsEmpty(t *testing.T) {
	if got := VerifyTxs(nil); len(got) != 0 {
		t.Fatalf("VerifyTxs(nil) = %v", got)
	}
}

// TestVerifyTxsBadEveryPosition plants one failure at each index in
// turn — alternating structural and signature failures.
func TestVerifyTxsBadEveryPosition(t *testing.T) {
	const n = 8
	for bad := 0; bad < n; bad++ {
		txs := make([]Transaction, n)
		for i := range txs {
			txs[i] = signedTx(t, 100*bad+i)
		}
		if bad%2 == 0 {
			txs[bad].Signature = append([]byte(nil), txs[bad].Signature...)
			txs[bad].Signature[0] ^= 0xFF // signature failure
		} else {
			txs[bad].Geo.Timestamp = time.Time{} // structural failure
		}
		assertTxEquivalent(t, txs)
	}
}

// TestVerifyCachedRejectsMutation confirms a cached accept cannot leak
// to a tampered transaction: the cache key covers the signature, and a
// content change moves the ID.
func TestVerifyCachedRejectsMutation(t *testing.T) {
	tx := signedTx(t, 1)
	if err := tx.VerifyCached(); err != nil {
		t.Fatalf("valid tx rejected: %v", err)
	}
	tampered := tx
	tampered.Nonce++ // new ID: cache miss, signature no longer matches
	if err := tampered.VerifyCached(); err == nil {
		t.Fatal("tampered content accepted from cache")
	}
	resigned := tx
	resigned.Signature = append([]byte(nil), tx.Signature...)
	resigned.Signature[10] ^= 0x01 // same ID, different signature bytes
	if err := resigned.VerifyCached(); err == nil {
		t.Fatal("tampered signature accepted from cache")
	}
}

// TestSigCacheDisabledCrypto: verdicts must not be cached (or served)
// while gcrypto verification is globally disabled, or a later
// re-enable would accept unverified signatures.
func TestSigCacheDisabledCrypto(t *testing.T) {
	tx := signedTx(t, 2)
	tx.Signature = append([]byte(nil), tx.Signature...)
	tx.Signature[0] ^= 0xFF // invalid signature

	prev := gcrypto.SetVerification(false)
	if err := tx.VerifyCached(); err != nil {
		t.Fatalf("with crypto off, bad signature should pass: %v", err)
	}
	gcrypto.SetVerification(true)
	if err := tx.VerifyCached(); err == nil {
		t.Fatal("bad signature accepted after re-enabling crypto")
	}
	gcrypto.SetVerification(prev)
}

// TestSigCacheToggle: SetSigCache(false) must route through the plain
// serial path.
func TestSigCacheToggle(t *testing.T) {
	prev := SetSigCache(false)
	defer SetSigCache(prev)
	txs := []Transaction{signedTx(t, 3), signedTx(t, 4)}
	txs[1].Signature = nil
	assertTxEquivalent(t, txs)
}

// TestVerifyTxsConcurrent hammers the striped cache from many
// goroutines under -race.
func TestVerifyTxsConcurrent(t *testing.T) {
	txs := make([]Transaction, 32)
	for i := range txs {
		txs[i] = signedTx(t, 200+i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for _, err := range VerifyTxs(txs) {
					if err != nil {
						t.Errorf("unexpected verify error: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := SigCacheStats()
	if hits == 0 {
		t.Errorf("expected cache hits, got hits=%d misses=%d", hits, misses)
	}
}

// TestSigCacheRotation fills stripes past their cap and confirms both
// correctness and that the cache stays bounded.
func TestSigCacheRotation(t *testing.T) {
	for i := 0; i < 3000; i++ {
		tx := signedTx(t, 5000+i)
		if err := tx.VerifyCached(); err != nil {
			t.Fatalf("tx %d rejected: %v", i, err)
		}
	}
	for i := range sigCache {
		s := &sigCache[i]
		s.mu.Lock()
		if len(s.cur) > sigCacheStripeCap || len(s.prev) > sigCacheStripeCap {
			t.Errorf("stripe %d over cap: cur=%d prev=%d", i, len(s.cur), len(s.prev))
		}
		s.mu.Unlock()
	}
}
