package store

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
	"gpbft/internal/ledger"
)

// SnapshotTag versions the snapshot wire format.
const SnapshotTag = "gpbft/snapshot/v1"

// MaxSnapshotFrame bounds one snapshot file frame. The state encoding
// itself is capped at codec.MaxBytesLen; the frame adds envelope
// overhead.
const MaxSnapshotFrame = 24 << 20

// ErrCorruptSnapshot wraps every way a snapshot can fail to decode or
// authenticate: torn files, bit flips, non-minimal varints, truncated
// records, bad signatures. Callers branch on this one error to fall
// back to full replay; partial state is never installed.
var ErrCorruptSnapshot = errors.New("store: corrupt snapshot")

// Snapshot is a signed chain-state checkpoint. The producer signature
// proves attribution (who published these bytes); correctness of the
// state itself is anchored separately, in a quorum of peer-reported
// roots at fast-sync time, or in local trust for a node reloading its
// own file.
type Snapshot struct {
	State       *ledger.ChainState
	Producer    gcrypto.Address
	ProducerPub []byte
	Signature   []byte
}

// signingDigest is the domain-separated message the producer signs:
// the tag plus the state root, committing to the full canonical state.
func signingDigest(root gcrypto.Hash) []byte {
	w := codec.NewWriter(64)
	w.String(SnapshotTag)
	w.Raw(root[:])
	return w.Bytes()
}

// NewSnapshot signs st as kp.
func NewSnapshot(st *ledger.ChainState, kp *gcrypto.KeyPair) *Snapshot {
	return &Snapshot{
		State:       st,
		Producer:    kp.Address(),
		ProducerPub: append([]byte(nil), kp.Public()...),
		Signature:   kp.Sign(signingDigest(st.Root())),
	}
}

// Height returns the checkpoint height.
func (s *Snapshot) Height() uint64 { return s.State.Height() }

// Era returns the checkpoint era.
func (s *Snapshot) Era() uint64 { return s.State.Era }

// Root returns the state root the producer signed.
func (s *Snapshot) Root() gcrypto.Hash { return s.State.Root() }

// Verify checks the producer signature and key-address binding.
func (s *Snapshot) Verify() error {
	if len(s.ProducerPub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad producer key", ErrCorruptSnapshot)
	}
	if err := gcrypto.Verify(s.ProducerPub, s.Producer, signingDigest(s.State.Root()), s.Signature); err != nil {
		return fmt.Errorf("%w: signature: %v", ErrCorruptSnapshot, err)
	}
	return nil
}

// MarshalCanonical implements codec.Marshaler.
func (s *Snapshot) MarshalCanonical(w *codec.Writer) {
	w.String(SnapshotTag)
	w.WriteBytes(ledger.EncodeChainState(s.State))
	w.Raw(s.Producer[:])
	w.WriteBytes(s.ProducerPub)
	w.WriteBytes(s.Signature)
}

// EncodeSnapshot returns the wire bytes of s.
func EncodeSnapshot(s *Snapshot) []byte { return codec.Encode(s) }

// DecodeSnapshot parses wire bytes. Every failure — framing, codec,
// shape — comes back wrapped in ErrCorruptSnapshot.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	r := codec.NewReader(b)
	if tag := r.ReadString(); r.Err() != nil || tag != SnapshotTag {
		return nil, fmt.Errorf("%w: bad tag", ErrCorruptSnapshot)
	}
	stateBytes := r.ReadBytes()
	var s Snapshot
	r.RawInto(s.Producer[:])
	s.ProducerPub = r.ReadBytes()
	s.Signature = r.ReadBytes()
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	st, err := ledger.DecodeChainState(stateBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: state: %v", ErrCorruptSnapshot, err)
	}
	s.State = st
	return &s, nil
}

// WriteSnapshotFile atomically publishes a snapshot: the CRC-framed
// encoding is written to a temp file, fsynced, renamed into place, and
// the directory fsynced — a crash at any point leaves either the old
// file or the new one, never a torn hybrid.
func WriteSnapshotFile(path string, s *Snapshot) error {
	body := EncodeSnapshot(s)
	if len(body) > MaxSnapshotFrame {
		return fmt.Errorf("store: snapshot %d bytes exceeds frame limit", len(body))
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot tmp: %w", err)
	}
	if _, err := f.Write(encodeFrame(body)); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot publish: %w", err)
	}
	return syncDir(path)
}

// ReadSnapshotFile loads and decodes one snapshot file. Unlike the
// append-only logs, a snapshot is all-or-nothing: a torn or damaged
// frame is ErrCorruptSnapshot, never a usable prefix.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	return DecodeSnapshotFile(data)
}

// DecodeSnapshotFile parses the on-disk frame layout (one CRC frame
// holding the snapshot encoding, nothing else).
func DecodeSnapshotFile(data []byte) (*Snapshot, error) {
	var body []byte
	validEnd, err := scanFrames(data, MaxSnapshotFrame, func(b []byte) error {
		if body != nil {
			return fmt.Errorf("second frame")
		}
		body = append([]byte(nil), b...)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	if body == nil || validEnd != int64(len(data)) {
		return nil, fmt.Errorf("%w: torn or trailing data", ErrCorruptSnapshot)
	}
	return DecodeSnapshot(body)
}

// SnapshotProvider is the surface the fast-sync engine and the chaos
// harness share: publish a snapshot, load the newest valid one.
type SnapshotProvider interface {
	// Latest returns the newest verifiable snapshot, or (nil, nil) when
	// none exists. Corrupt files are skipped, not fatal.
	Latest() (*Snapshot, error)
	// Add persists a snapshot (applying retention).
	Add(*Snapshot) error
	// OldestHeight returns the checkpoint height of the oldest retained
	// valid snapshot (0 when none) — the compaction floor: blocks at or
	// below it may be truncated, because any restart can start from a
	// retained snapshot instead.
	OldestHeight() uint64
}

// SnapshotStore keeps the last K snapshots as files in a directory.
type SnapshotStore struct {
	mu     sync.Mutex
	dir    string
	retain int
}

// DefaultRetainSnapshots is the default retention depth.
const DefaultRetainSnapshots = 2

// OpenSnapshotStore opens (creating if needed) a snapshot directory.
func OpenSnapshotStore(dir string, retain int) (*SnapshotStore, error) {
	if retain <= 0 {
		retain = DefaultRetainSnapshots
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: snapshot dir: %w", err)
	}
	return &SnapshotStore{dir: dir, retain: retain}, nil
}

// Dir returns the backing directory.
func (s *SnapshotStore) Dir() string { return s.dir }

func snapshotFileName(height uint64) string {
	return fmt.Sprintf("snap-%016d.gsnap", height)
}

// files lists snapshot filenames sorted ascending by height (the
// zero-padded name sorts numerically).
func (s *SnapshotStore) files() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".gsnap") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Add atomically publishes snap and prunes beyond the retention depth.
func (s *SnapshotStore) Add(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, snapshotFileName(snap.Height()))
	if err := WriteSnapshotFile(path, snap); err != nil {
		return err
	}
	names, err := s.files()
	if err != nil {
		return nil // published fine; retention is best effort
	}
	for len(names) > s.retain {
		os.Remove(filepath.Join(s.dir, names[0]))
		names = names[1:]
	}
	return nil
}

// Latest returns the newest snapshot that decodes and verifies,
// skipping damaged files, or (nil, nil) when none survive.
func (s *SnapshotStore) Latest() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names, err := s.files()
	if err != nil {
		return nil, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		snap, err := ReadSnapshotFile(filepath.Join(s.dir, names[i]))
		if err != nil || snap.Verify() != nil {
			continue
		}
		return snap, nil
	}
	return nil, nil
}

// OldestHeight implements SnapshotProvider.
func (s *SnapshotStore) OldestHeight() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	names, err := s.files()
	if err != nil {
		return 0
	}
	for _, name := range names {
		snap, err := ReadSnapshotFile(filepath.Join(s.dir, name))
		if err != nil || snap.Verify() != nil {
			continue
		}
		return snap.Height()
	}
	return 0
}

// MemSnapshots is the in-memory SnapshotProvider the simulated chaos
// clusters use as durable snapshot storage: encoded blobs survive a
// simulated crash exactly like files survive a process kill, and tests
// can flip bits in them to model disk corruption.
type MemSnapshots struct {
	mu     sync.Mutex
	retain int
	blobs  [][]byte // encoded snapshots, oldest first
}

// NewMemSnapshots returns an empty in-memory store retaining K blobs.
func NewMemSnapshots(retain int) *MemSnapshots {
	if retain <= 0 {
		retain = DefaultRetainSnapshots
	}
	return &MemSnapshots{retain: retain}
}

// Add implements SnapshotProvider.
func (m *MemSnapshots) Add(snap *Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs = append(m.blobs, EncodeSnapshot(snap))
	if len(m.blobs) > m.retain {
		m.blobs = append([][]byte(nil), m.blobs[len(m.blobs)-m.retain:]...)
	}
	return nil
}

// Latest implements SnapshotProvider.
func (m *MemSnapshots) Latest() (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.blobs) - 1; i >= 0; i-- {
		snap, err := DecodeSnapshot(m.blobs[i])
		if err != nil || snap.Verify() != nil {
			continue
		}
		return snap, nil
	}
	return nil, nil
}

// OldestHeight implements SnapshotProvider.
func (m *MemSnapshots) OldestHeight() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range m.blobs {
		snap, err := DecodeSnapshot(b)
		if err != nil || snap.Verify() != nil {
			continue
		}
		return snap.Height()
	}
	return 0
}

// Len returns how many blobs are retained (including corrupt ones).
func (m *MemSnapshots) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blobs)
}

// CorruptNewest flips one byte in the newest stored blob, modeling
// at-rest disk corruption. Returns false when the store is empty.
func (m *MemSnapshots) CorruptNewest() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.blobs) == 0 {
		return false
	}
	blob := m.blobs[len(m.blobs)-1]
	if len(blob) == 0 {
		return false
	}
	blob[len(blob)/2] ^= 0x40
	return true
}

// CorruptAll flips one byte in every stored blob.
func (m *MemSnapshots) CorruptAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, blob := range m.blobs {
		if len(blob) > 0 {
			blob[len(blob)/2] ^= 0x40
		}
	}
}
