package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gpbft/internal/gcrypto"
)

func walRec(kind WALKind, era, view, seq uint64, tag byte) WALRecord {
	var d gcrypto.Hash
	d[0] = tag
	return WALRecord{Kind: kind, Era: era, View: view, Seq: seq, Digest: d,
		Data: []byte{tag, tag + 1}}
}

func TestWALAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "consensus.wal")
	w, recs, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatal("fresh wal must be empty")
	}
	want := []WALRecord{
		walRec(WALEra, 1, 0, 0, 1),
		walRec(WALPrepare, 1, 0, 3, 2),
		walRec(WALCommit, 1, 0, 3, 2),
		walRec(WALNewView, 1, 2, 0, 3),
	}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(want) {
		t.Fatalf("count %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Kind != want[i].Kind || r.Era != want[i].Era || r.View != want[i].View ||
			r.Seq != want[i].Seq || r.Digest != want[i].Digest ||
			string(r.Data) != string(want[i].Data) {
			t.Fatalf("record %d mangled: %+v", i, r)
		}
	}
	// Appends continue after recovery.
	if err := w2.Append(walRec(WALPrepare, 1, 2, 4, 9)); err != nil {
		t.Fatal(err)
	}
	if w2.Count() != len(want)+1 {
		t.Fatalf("count %d after recovered append", w2.Count())
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "consensus.wal")
	w, _, _ := OpenWAL(path, WALOptions{})
	for i := 0; i < 3; i++ {
		if err := w.Append(walRec(WALPrepare, 1, 0, uint64(i), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	w2, recs, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records after torn tail, want 2", len(recs))
	}
	// The torn bytes were truncated away: the next append must survive a
	// further reopen intact.
	if err := w2.Append(walRec(WALCommit, 1, 0, 2, 7)); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, recs, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if len(recs) != 3 || recs[2].Kind != WALCommit {
		t.Fatalf("recovered %d records after re-append", len(recs))
	}
}

func TestWALMidLogCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "consensus.wal")
	w, _, _ := OpenWAL(path, WALOptions{})
	for i := 0; i < 4; i++ {
		w.Append(walRec(WALPrepare, 1, 0, uint64(i), byte(i)))
	}
	w.Close()

	// Flip a byte in the FIRST frame: valid frames follow, so this is
	// corruption, not a torn tail — open must refuse rather than silently
	// drop three durable votes.
	data, _ := os.ReadFile(path)
	data[frameHeaderSize+2] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	_, _, err := OpenWAL(path, WALOptions{})
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("want ErrCorruptFrame, got %v", err)
	}
}

func TestWALRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "consensus.wal")
	w, _, _ := OpenWAL(path, WALOptions{})
	for i := 0; i < 5; i++ {
		w.Append(walRec(WALCommit, 1, 0, uint64(i), byte(i)))
	}
	if err := w.Rotate(2); err != nil {
		t.Fatal(err)
	}
	// Old-era records are gone; only the fresh era marker remains.
	if w.Count() != 1 {
		t.Fatalf("count %d after rotate", w.Count())
	}
	w.Append(walRec(WALPrepare, 2, 0, 1, 9))
	w.Close()

	_, recs, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Kind != WALEra || recs[0].Era != 2 ||
		recs[1].Kind != WALPrepare {
		t.Fatalf("recovered %+v after rotate", recs)
	}
}

func TestWALClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "consensus.wal")
	w, _, _ := OpenWAL(path, WALOptions{})
	w.Close()
	if err := w.Append(walRec(WALPrepare, 1, 0, 0, 0)); err != ErrLogClosed {
		t.Fatalf("want ErrLogClosed, got %v", err)
	}
	if err := w.Rotate(2); err != ErrLogClosed {
		t.Fatalf("want ErrLogClosed from Rotate, got %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close must be fine")
	}
}

func TestMemWAL(t *testing.T) {
	var m MemWAL
	m.Append(walRec(WALPrepare, 1, 0, 1, 1))
	m.Append(walRec(WALCommit, 1, 0, 1, 1))
	if m.Len() != 2 {
		t.Fatalf("len %d", m.Len())
	}
	if err := m.Rotate(2); err != nil {
		t.Fatal(err)
	}
	recs := m.Records()
	if len(recs) != 1 || recs[0].Kind != WALEra || recs[0].Era != 2 {
		t.Fatalf("records after rotate: %+v", recs)
	}
}
