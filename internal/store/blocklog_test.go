package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/types"
)

var epoch = time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)

func testGenesis(t testing.TB) *ledger.Genesis {
	t.Helper()
	g := &ledger.Genesis{ChainID: "store-test", Timestamp: epoch, Policy: ledger.DefaultPolicy()}
	for i := 0; i < 4; i++ {
		kp := gcrypto.DeterministicKeyPair(i)
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: kp.Address(), PubKey: kp.Public(),
			Geohash: geo.MustEncode(geo.Point{Lng: 114.18, Lat: 22.3}, geo.CSCPrecision),
		})
	}
	return g
}

// buildChain commits n blocks and returns them (excluding genesis).
func buildChain(t testing.TB, n int) (*ledger.Genesis, []*types.Block) {
	t.Helper()
	g := testGenesis(t)
	chain, err := ledger.NewChain(g)
	if err != nil {
		t.Fatal(err)
	}
	kp := gcrypto.DeterministicKeyPair(0)
	var out []*types.Block
	for i := 0; i < n; i++ {
		tx := types.Transaction{
			Type: types.TxNormal, Nonce: uint64(i + 1), Payload: []byte{byte(i)}, Fee: 1,
			Geo: types.GeoInfo{Location: geo.Point{Lng: 114.18, Lat: 22.3},
				Timestamp: epoch.Add(time.Duration(i) * time.Second)},
		}
		tx.Sign(kp)
		head := chain.Head()
		b := types.NewBlock(types.BlockHeader{
			Height: head.Header.Height + 1, Seq: head.Header.Height + 1,
			PrevHash: head.Hash(), Proposer: kp.Address(),
			Timestamp: epoch.Add(time.Duration(i+1) * time.Second),
		}, []types.Transaction{tx})
		if err := chain.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return g, out
}

func TestAppendReopenReplay(t *testing.T) {
	g, blocks := buildChain(t, 7)
	path := filepath.Join(t.TempDir(), "chain.log")

	log, recovered, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatal("fresh log must be empty")
	}
	for _, b := range blocks {
		if err := log.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if log.Height() != 7 || log.Count() != 7 {
		t.Fatalf("height=%d count=%d", log.Height(), log.Count())
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: all blocks come back, and replay rebuilds the chain.
	log2, recovered, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(recovered) != 7 {
		t.Fatalf("recovered %d blocks", len(recovered))
	}
	for i, b := range recovered {
		if b.Hash() != blocks[i].Hash() {
			t.Fatalf("block %d mangled", i)
		}
	}
	chain, err := Replay(g, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Height() != 7 {
		t.Fatalf("replayed height %d", chain.Height())
	}
	// The derived state came back too (election table fed by tx geo).
	if chain.Table().Len() == 0 {
		t.Fatal("replay must rebuild the election table")
	}
	// And appends continue from the recovered height.
	if log2.Height() != 7 {
		t.Fatalf("reopened height %d", log2.Height())
	}
}

func TestTornTailTruncated(t *testing.T) {
	_, blocks := buildChain(t, 3)
	path := filepath.Join(t.TempDir(), "chain.log")
	log, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		log.Append(b)
	}
	log.Close()

	// Simulate a torn write: chop bytes off the final frame.
	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	log2, recovered, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(recovered) != 2 {
		t.Fatalf("recovered %d blocks after torn tail, want 2", len(recovered))
	}
	// The torn frame is gone: appending block 3 again works.
	if err := log2.Append(blocks[2]); err != nil {
		t.Fatal(err)
	}
	if log2.Height() != 3 {
		t.Fatalf("height %d after re-append", log2.Height())
	}
}

func TestCorruptTailStopsReplay(t *testing.T) {
	_, blocks := buildChain(t, 3)
	path := filepath.Join(t.TempDir(), "chain.log")
	log, _, _ := Open(path, Options{})
	for _, b := range blocks {
		log.Append(b)
	}
	log.Close()

	// Flip a byte in the LAST frame's payload: checksum fails, replay
	// stops before it.
	data, _ := os.ReadFile(path)
	data[len(data)-20] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	_, recovered, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d, want 2 (corrupt tail dropped)", len(recovered))
	}
}

func TestMidLogCorruptionRejected(t *testing.T) {
	_, blocks := buildChain(t, 3)
	path := filepath.Join(t.TempDir(), "chain.log")
	log, _, _ := Open(path, Options{})
	for _, b := range blocks {
		log.Append(b)
	}
	log.Close()

	// Flip a byte in the FIRST frame's payload. Valid frames follow, so
	// this is mid-log damage: open must refuse rather than truncate away
	// two committed blocks.
	data, _ := os.ReadFile(path)
	data[frameHeaderSize+8] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	if _, _, err := Open(path, Options{}); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("want ErrCorruptFrame, got %v", err)
	}
}

func TestAppendOutOfOrderRejected(t *testing.T) {
	_, blocks := buildChain(t, 3)
	path := filepath.Join(t.TempDir(), "chain.log")
	log, _, _ := Open(path, Options{})
	defer log.Close()
	if err := log.Append(blocks[0]); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(blocks[2]); err == nil {
		t.Fatal("height gap must be rejected")
	}
}

func TestReplayRejectsTamperedBlocks(t *testing.T) {
	g, blocks := buildChain(t, 2)
	// Tamper with a transaction fee: replay must fail (tx root check).
	blocks[1].Txs[0].Fee = 999
	if _, err := Replay(g, blocks); err == nil {
		t.Fatal("tampered block replayed successfully")
	}
}

func TestClosedLogRejectsAppend(t *testing.T) {
	_, blocks := buildChain(t, 1)
	path := filepath.Join(t.TempDir(), "chain.log")
	log, _, _ := Open(path, Options{Sync: true})
	log.Close()
	if err := log.Append(blocks[0]); err != ErrLogClosed {
		t.Fatalf("want ErrLogClosed, got %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal("double close must be fine")
	}
}
