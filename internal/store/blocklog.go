// Package store provides durable persistence for a node's chain: an
// append-only block log with per-frame checksums and torn-tail
// recovery, and a replay helper that reconstructs the in-memory chain
// on restart. IoT endorsers are long-lived fixed devices; surviving a
// power cycle without resyncing the whole chain matters.
package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"gpbft/internal/ledger"
	"gpbft/internal/types"
)

// Frame layout: 4-byte big-endian payload length, payload (canonical
// block encoding), 4-byte CRC32 (Castagnoli) of the payload.
const (
	frameHeaderSize  = 4
	frameTrailerSize = 4
	// MaxBlockFrame bounds a single persisted block.
	MaxBlockFrame = 32 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the block log.
var (
	ErrCorruptFrame = errors.New("store: corrupt frame")
	ErrLogClosed    = errors.New("store: log closed")
	ErrOutOfOrder   = errors.New("store: block height not contiguous")
)

// BlockLog is an append-only, crash-tolerant block file. A torn final
// frame (power loss mid-write) is detected on open and truncated away;
// corruption anywhere earlier is an error.
type BlockLog struct {
	f      *os.File
	path   string
	height uint64 // height of the last appended block; 0 = none/genesis
	count  int
	sync   bool
	closed bool
}

// Options configures opening a block log.
type Options struct {
	// Sync fsyncs after every append (durable but slower).
	Sync bool
}

// Open opens (or creates) the log at path, scanning existing frames
// and truncating a torn tail. It returns the log and the blocks
// recovered, in order. Creating the log fsyncs the parent directory so
// the file itself survives power loss.
func Open(path string, opts Options) (*BlockLog, []*types.Block, error) {
	f, err := openLogFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	log := &BlockLog{f: f, path: path, sync: opts.Sync}
	blocks, validEnd, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Truncate a torn tail so the next append starts clean.
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	log.count = len(blocks)
	if len(blocks) > 0 {
		log.height = blocks[len(blocks)-1].Header.Height
	}
	return log, blocks, nil
}

// scan reads frames until EOF or a torn tail; it returns the decoded
// blocks and the byte offset of the last valid frame end. A damaged
// frame followed by valid frames is ErrCorruptFrame — truncating there
// would silently lose committed blocks.
func scan(f *os.File) ([]*types.Block, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("store: read log: %w", err)
	}
	var blocks []*types.Block
	validEnd, err := scanFrames(data, MaxBlockFrame, func(body []byte) error {
		b, err := types.DecodeBlock(body)
		if err != nil {
			return err
		}
		blocks = append(blocks, b)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return blocks, validEnd, nil
}

// Append persists a block. Blocks must be appended in height order
// (the log mirrors the committed chain).
func (l *BlockLog) Append(b *types.Block) error {
	if l.closed {
		return ErrLogClosed
	}
	if l.count > 0 && b.Header.Height != l.height+1 {
		return fmt.Errorf("%w: have %d, got %d", ErrOutOfOrder, l.height, b.Header.Height)
	}
	body := types.EncodeBlock(b)
	if len(body) > MaxBlockFrame {
		return fmt.Errorf("store: block frame %d exceeds limit", len(body))
	}
	if _, err := l.f.Write(encodeFrame(body)); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	l.height = b.Header.Height
	l.count++
	return nil
}

// Height returns the height of the last persisted block (0 if none).
func (l *BlockLog) Height() uint64 { return l.height }

// Count returns the number of persisted blocks.
func (l *BlockLog) Count() int { return l.count }

// Close flushes and closes the file.
func (l *BlockLog) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Replay reconstructs a chain from genesis plus the persisted blocks.
// Blocks are fully re-validated (linkage, signatures, certificates) —
// a tampered log cannot smuggle state in.
func Replay(g *ledger.Genesis, blocks []*types.Block) (*ledger.Chain, error) {
	chain, err := ledger.NewChain(g)
	if err != nil {
		return nil, err
	}
	for i, b := range blocks {
		if err := chain.AddBlock(b); err != nil {
			return nil, fmt.Errorf("store: replay block %d (height %d): %w", i, b.Header.Height, err)
		}
	}
	return chain, nil
}
