package store

import (
	"fmt"
	"io"
	"os"

	"gpbft/internal/codec"
	"gpbft/internal/types"
)

// Log compaction. Snapshots make history below the latest stable
// checkpoint redundant: any restart can load a retained snapshot and
// replay only the tail, so frames below the checkpoint are dead weight.
// Both rewrites go through a temp file plus an atomic rename — a crash
// mid-compaction leaves the complete old log, never a partial one.
// Losing WAL votes to a torn compaction would reopen the equivocation
// window the WAL exists to close.

// rewriteLog atomically replaces the file behind f (at path) with
// frames, fsyncing the data and the directory, and returns the new
// handle positioned at end-of-file.
func rewriteLog(path string, frames []byte) (*os.File, error) {
	tmp := path + ".compact"
	t, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: compact tmp: %w", err)
	}
	if _, err := t.Write(frames); err != nil {
		t.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("store: compact write: %w", err)
	}
	if err := t.Sync(); err != nil {
		t.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("store: compact sync: %w", err)
	}
	if err := t.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("store: compact publish: %w", err)
	}
	if err := syncDir(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: compact reopen: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// CompactBelow drops every block below height keepFrom, keeping the
// tail intact, and returns the number of bytes reclaimed. The log may
// end up empty (count 0), in which case the next Append re-anchors it
// at whatever height the caller writes — the tail of a chain restored
// from a snapshot rather than from genesis.
func (l *BlockLog) CompactBelow(keepFrom uint64) (int64, error) {
	if l.closed {
		return 0, ErrLogClosed
	}
	blocks, validEnd, err := scan(l.f)
	if err != nil {
		return 0, err
	}
	var kept []byte
	count := 0
	height := uint64(0)
	for _, b := range blocks {
		if b.Header.Height < keepFrom {
			continue
		}
		kept = append(kept, encodeFrame(types.EncodeBlock(b))...)
		count++
		height = b.Header.Height
	}
	if count == len(blocks) {
		// Nothing to drop; restore the append position and bail.
		if _, err := l.f.Seek(validEnd, io.SeekStart); err != nil {
			return 0, err
		}
		return 0, nil
	}
	f, err := rewriteLog(l.path, kept)
	if err != nil {
		// The old file is still intact; restore the append position.
		if _, serr := l.f.Seek(validEnd, io.SeekStart); serr == nil {
			return 0, err
		}
		l.closed = true
		l.f.Close()
		return 0, err
	}
	l.f.Close()
	l.f = f
	l.count = count
	l.height = height
	return validEnd - int64(len(kept)), nil
}

// CompactBelow drops vote and prepared records from the given era at or
// below seq — the consensus instances a stable checkpoint has made
// immutable. Records from other eras and the protocol-position kinds
// (era marker, view-change, new-view) are kept: they are what a
// restarted replica needs to rejoin at the right view. Returns bytes
// reclaimed.
func (w *WAL) CompactBelow(era, seq uint64) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrLogClosed
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	data, err := io.ReadAll(w.f)
	if err != nil {
		return 0, fmt.Errorf("store: compact read wal: %w", err)
	}
	var kept []byte
	count := 0
	validEnd, err := scanFrames(data, MaxWALFrame, func(body []byte) error {
		rec, err := decodeWALRecord(body)
		if err != nil {
			return err
		}
		if walRecordStable(rec, era, seq) {
			return nil
		}
		kept = append(kept, encodeFrame(codec.Encode(&rec))...)
		count++
		return nil
	})
	if err != nil {
		return 0, err
	}
	if count == w.count {
		if _, err := w.f.Seek(validEnd, io.SeekStart); err != nil {
			return 0, err
		}
		return 0, nil
	}
	f, err := rewriteLog(w.path, kept)
	if err != nil {
		if _, serr := w.f.Seek(validEnd, io.SeekStart); serr == nil {
			return 0, err
		}
		w.closed = true
		w.f.Close()
		return 0, err
	}
	w.f.Close()
	w.f = f
	w.count = count
	return validEnd - int64(len(kept)), nil
}

// walRecordStable reports whether a record is covered by a stable
// checkpoint at (era, seq) and can be dropped.
func walRecordStable(rec WALRecord, era, seq uint64) bool {
	switch rec.Kind {
	case WALEra, WALViewChange, WALNewView:
		return false
	}
	return rec.Era == era && rec.Seq <= seq
}

// CompactBelow mirrors WAL.CompactBelow for the in-memory log.
func (m *MemWAL) CompactBelow(era, seq uint64) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.recs[:0]
	for _, rec := range m.recs {
		if walRecordStable(rec, era, seq) {
			continue
		}
		kept = append(kept, rec)
	}
	dropped := int64(len(m.recs) - len(kept))
	m.recs = kept
	return dropped, nil
}
