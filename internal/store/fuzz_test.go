package store

import (
	"errors"
	"testing"

	"gpbft/internal/codec"
)

// FuzzScan feeds mutated log images through the frame scanner: random
// truncations and bit flips over a valid log must never panic, must
// never report a valid end beyond the data, and on success must
// recover a prefix of the original record sequence.
func FuzzScan(f *testing.F) {
	// Seed with a realistic three-record WAL image.
	var img []byte
	recs := []WALRecord{
		walRec(WALEra, 1, 0, 0, 1),
		walRec(WALPrepare, 1, 0, 1, 2),
		walRec(WALCommit, 1, 0, 1, 2),
	}
	bodies := make([][]byte, 0, len(recs))
	for i := range recs {
		body := append([]byte(nil), encodeFrame(codec.Encode(&recs[i]))...)
		bodies = append(bodies, body)
		img = append(img, body...)
	}
	f.Add(img, 0, byte(0))
	f.Add(img, 7, byte(0xFF))
	f.Add(img[:len(img)-5], 0, byte(0))
	f.Add([]byte{}, 0, byte(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}, 2, byte(0x80))

	f.Fuzz(func(t *testing.T, data []byte, flipAt int, flipMask byte) {
		mutated := append([]byte(nil), data...)
		if len(mutated) > 0 {
			idx := flipAt % len(mutated)
			if idx < 0 {
				idx = -idx
			}
			mutated[idx] ^= flipMask
		}
		var seen int
		validEnd, err := scanFrames(mutated, MaxWALFrame, func(body []byte) error {
			if _, derr := decodeWALRecord(body); derr != nil {
				return derr
			}
			seen++
			return nil
		})
		if validEnd < 0 || validEnd > int64(len(mutated)) {
			t.Fatalf("validEnd %d out of range [0,%d]", validEnd, len(mutated))
		}
		if err != nil {
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		// No error: everything up to validEnd must re-scan identically
		// (the recovered prefix is stable, i.e. truncating there and
		// reopening yields the same records).
		var seen2 int
		end2, err2 := scanFrames(mutated[:validEnd], MaxWALFrame, func(body []byte) error {
			if _, derr := decodeWALRecord(body); derr != nil {
				return derr
			}
			seen2++
			return nil
		})
		if err2 != nil || end2 != validEnd || seen2 != seen {
			t.Fatalf("re-scan of valid prefix diverged: err=%v end=%d/%d seen=%d/%d",
				err2, end2, validEnd, seen2, seen)
		}
	})
}
