package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// encodeFrame wraps body in the shared frame layout used by every log
// in this package: 4-byte big-endian length, body, 4-byte CRC32
// (Castagnoli) of the body.
func encodeFrame(body []byte) []byte {
	frame := make([]byte, frameHeaderSize+len(body)+frameTrailerSize)
	binary.BigEndian.PutUint32(frame[:frameHeaderSize], uint32(len(body)))
	copy(frame[frameHeaderSize:], body)
	binary.BigEndian.PutUint32(frame[frameHeaderSize+len(body):], crc32.Checksum(body, castagnoli))
	return frame
}

// validFrameAt reports whether a structurally valid frame (plausible
// length, complete, matching CRC) starts at the head of data.
func validFrameAt(data []byte, maxFrame int) bool {
	if len(data) < frameHeaderSize+frameTrailerSize {
		return false
	}
	n := int(binary.BigEndian.Uint32(data))
	if n <= 0 || n > maxFrame {
		return false
	}
	end := frameHeaderSize + n + frameTrailerSize
	if end > len(data) {
		return false
	}
	body := data[frameHeaderSize : frameHeaderSize+n]
	want := binary.BigEndian.Uint32(data[frameHeaderSize+n : end])
	return crc32.Checksum(body, castagnoli) == want
}

// laterFrameSearchWindow bounds how far past a damaged frame the
// scanner looks for a subsequent valid frame. Torn tails are at most
// one partial write long, so a window this large is only ever crossed
// by genuine mid-log corruption.
const laterFrameSearchWindow = 1 << 20

// hasLaterValidFrame scans forward from data for any offset at which a
// structurally valid frame begins. It is how the scanner distinguishes
// a torn final write (nothing readable follows — truncate) from
// mid-log corruption (valid frames follow — the log is damaged and
// replaying a prefix would silently lose committed state).
func hasLaterValidFrame(data []byte, maxFrame int) bool {
	limit := len(data)
	if limit > laterFrameSearchWindow {
		limit = laterFrameSearchWindow
	}
	for off := 0; off < limit; off++ {
		if validFrameAt(data[off:], maxFrame) {
			return true
		}
	}
	return false
}

// scanFrames walks data frame by frame, calling visit with each valid
// body. It returns the byte offset just past the last valid frame. A
// genuinely final torn frame (power loss mid-write) is tolerated — the
// caller truncates at the returned offset. A damaged frame that has
// valid frames after it returns ErrCorruptFrame: truncating there
// would drop durable records that demonstrably survived.
func scanFrames(data []byte, maxFrame int, visit func(body []byte) error) (int64, error) {
	off := 0
	for {
		if len(data)-off < frameHeaderSize {
			return int64(off), nil // EOF or partial header: torn tail
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n <= 0 || n > maxFrame {
			// A valid writer never produces this length, so the header
			// bytes themselves are damaged. We cannot locate the frame
			// boundary, but we can still tell tail garbage from mid-log
			// corruption by whether anything valid follows.
			if hasLaterValidFrame(data[off+frameHeaderSize:], maxFrame) {
				return int64(off), fmt.Errorf("%w: invalid frame length %d at offset %d", ErrCorruptFrame, n, off)
			}
			return int64(off), nil
		}
		end := off + frameHeaderSize + n + frameTrailerSize
		if end > len(data) {
			return int64(off), nil // torn frame
		}
		body := data[off+frameHeaderSize : off+frameHeaderSize+n]
		want := binary.BigEndian.Uint32(data[off+frameHeaderSize+n : end])
		if crc32.Checksum(body, castagnoli) != want {
			if hasLaterValidFrame(data[end:], maxFrame) {
				return int64(off), fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorruptFrame, off)
			}
			return int64(off), nil
		}
		if visit != nil {
			if err := visit(body); err != nil {
				// The frame is intact but its payload does not decode:
				// same torn-versus-corrupt split as a checksum failure.
				if hasLaterValidFrame(data[end:], maxFrame) {
					return int64(off), fmt.Errorf("%w: undecodable payload at offset %d: %v", ErrCorruptFrame, off, err)
				}
				return int64(off), nil
			}
		}
		off = end
	}
}

// syncDir fsyncs the directory containing path, making a freshly
// created file durable: without it the file's directory entry can
// vanish entirely after power loss even though the data blocks were
// written.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// openLogFile opens (or creates) a log file, fsyncing the parent
// directory when the file is new.
func openLogFile(path string) (*os.File, error) {
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if created {
		if err := syncDir(path); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: sync dir for %s: %w", path, err)
		}
	}
	return f, nil
}
