package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpbft/internal/gcrypto"
	"gpbft/internal/ledger"
	"gpbft/internal/types"
)

// buildStates replays an n-block chain, exporting the canonical state
// after every block; states[i] is the chain at height i+1.
func buildStates(t testing.TB, n int) []*ledger.ChainState {
	t.Helper()
	g, blocks := buildChain(t, n)
	chain, err := ledger.NewChain(g)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]*ledger.ChainState, 0, n)
	for _, b := range blocks {
		if err := chain.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		states = append(states, chain.ExportState())
	}
	return states
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := buildStates(t, 3)[2]
	kp := gcrypto.DeterministicKeyPair(1)
	snap := NewSnapshot(st, kp)
	if err := snap.Verify(); err != nil {
		t.Fatalf("fresh snapshot fails verification: %v", err)
	}
	got, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("decoded snapshot fails verification: %v", err)
	}
	if got.Height() != 3 || got.Root() != snap.Root() || got.Producer != kp.Address() {
		t.Fatalf("round trip mangled snapshot: height=%d root=%v producer=%v",
			got.Height(), got.Root(), got.Producer)
	}
}

// TestSnapshotRootDeterministic is the trust anchor's foundation: two
// chains built from the same blocks — one by direct append, one
// restored from an earlier snapshot and tailed — must export byte-
// identical roots at the same height.
func TestSnapshotRootDeterministic(t *testing.T) {
	g, blocks := buildChain(t, 6)
	full, err := ledger.NewChain(g)
	if err != nil {
		t.Fatal(err)
	}
	var mid *ledger.ChainState
	for i, b := range blocks {
		if err := full.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			mid = full.ExportState()
		}
	}
	restored, err := ledger.RestoreChain(g, mid)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, b := range blocks[3:] {
		if err := restored.AddBlock(b); err != nil {
			t.Fatalf("tail height %d: %v", b.Header.Height, err)
		}
	}
	if full.ExportState().Root() != restored.ExportState().Root() {
		t.Fatal("restored+tailed chain exports a different root than the fully replayed chain")
	}
}

func TestSnapshotFileAtomicPublish(t *testing.T) {
	st := buildStates(t, 2)[1]
	kp := gcrypto.DeterministicKeyPair(0)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gsnap")
	if err := WriteSnapshotFile(path, NewSnapshot(st, kp)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after publish", e.Name())
		}
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	if got.Root() != st.Root() {
		t.Fatal("published file carries a different root")
	}
}

// TestSnapshotCorruptions drives every corruption class the codec must
// catch with the typed error — and proves none of them ever yields a
// snapshot object (no partial state).
func TestSnapshotCorruptions(t *testing.T) {
	st := buildStates(t, 2)[1]
	kp := gcrypto.DeterministicKeyPair(0)
	snap := NewSnapshot(st, kp)
	body := EncodeSnapshot(snap)
	file := encodeFrame(body)

	mut := func(src []byte, f func([]byte)) []byte {
		out := append([]byte(nil), src...)
		f(out)
		return out
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"torn tail", file[:len(file)-3]},
		{"truncated mid-record", file[:len(file)/2]},
		{"empty file", nil},
		{"bit-flipped CRC", mut(file, func(b []byte) { b[0] ^= 0x01 })},
		{"bit-flipped payload", mut(file, func(b []byte) { b[len(b)/2] ^= 0x40 })},
		{"trailing garbage", append(append([]byte(nil), file...), 0xde, 0xad)},
		{"two frames", append(append([]byte(nil), file...), file...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeSnapshotFile(tc.data)
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("want ErrCorruptSnapshot, got %v", err)
			}
			if got != nil {
				t.Fatal("corrupt input produced a snapshot object (partial state)")
			}
		})
	}
}

// TestSnapshotNonMinimalVarint rejects a body whose leading varint
// (the tag length) is re-encoded in redundant two-byte form: canonical
// decoding must fail, not silently accept a second spelling of the
// same snapshot.
func TestSnapshotNonMinimalVarint(t *testing.T) {
	st := buildStates(t, 2)[1]
	body := EncodeSnapshot(NewSnapshot(st, gcrypto.DeterministicKeyPair(0)))
	if body[0] != byte(len(SnapshotTag)) {
		t.Fatalf("encoding changed: first byte %#x is not the tag length", body[0])
	}
	nonMinimal := append([]byte{body[0] | 0x80, 0x00}, body[1:]...)
	if _, err := DecodeSnapshot(nonMinimal); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("non-minimal varint: want ErrCorruptSnapshot, got %v", err)
	}
}

func TestSnapshotWrongSignature(t *testing.T) {
	st := buildStates(t, 2)[1]
	kp := gcrypto.DeterministicKeyPair(0)
	snap := NewSnapshot(st, kp)
	snap.Signature[4] ^= 0x10
	if err := snap.Verify(); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("tampered signature: want ErrCorruptSnapshot, got %v", err)
	}
	// A validly-framed file carrying the bad signature decodes but must
	// not verify — the layer installs nothing unverified.
	got, err := DecodeSnapshotFile(encodeFrame(EncodeSnapshot(snap)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := got.Verify(); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("want ErrCorruptSnapshot from Verify, got %v", err)
	}
}

func TestSnapshotStoreRetention(t *testing.T) {
	states := buildStates(t, 5)
	kp := gcrypto.DeterministicKeyPair(0)
	dir := t.TempDir()
	ss, err := OpenSnapshotStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		if err := ss.Add(NewSnapshot(st, kp)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("retention: %d files on disk, want 2", len(entries))
	}
	latest, err := ss.Latest()
	if err != nil || latest == nil {
		t.Fatalf("latest: %v %v", latest, err)
	}
	if latest.Height() != 5 {
		t.Fatalf("latest height %d, want 5", latest.Height())
	}
	if got := ss.OldestHeight(); got != 4 {
		t.Fatalf("oldest height %d, want 4", got)
	}
}

// TestSnapshotStoreSkipsCorrupt flips bytes in the newest on-disk file:
// Latest must fall back to the older intact snapshot, never a partial
// decode of the damaged one.
func TestSnapshotStoreSkipsCorrupt(t *testing.T) {
	states := buildStates(t, 4)
	kp := gcrypto.DeterministicKeyPair(0)
	dir := t.TempDir()
	ss, err := OpenSnapshotStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states[2:] {
		if err := ss.Add(NewSnapshot(st, kp)); err != nil {
			t.Fatal(err)
		}
	}
	newest := filepath.Join(dir, snapshotFileName(4))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	latest, err := ss.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest == nil || latest.Height() != 3 {
		t.Fatalf("latest should skip the corrupt file and return height 3, got %+v", latest)
	}
}

func TestBlockLogCompactBelow(t *testing.T) {
	_, blocks := buildChain(t, 10)
	path := filepath.Join(t.TempDir(), "blocks.log")
	lg, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if err := lg.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	reclaimed, err := lg.CompactBelow(6)
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed <= 0 || after.Size() != before.Size()-reclaimed {
		t.Fatalf("reclaimed %d, size %d -> %d", reclaimed, before.Size(), after.Size())
	}
	// The tail must still append and the file must reopen to exactly the
	// kept suffix.
	if err := lg.Append(nextBlock(t, blocks[9])); err != nil {
		t.Fatalf("append after compaction: %v", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	_, kept, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 6 || kept[0].Header.Height != 6 || kept[5].Header.Height != 11 {
		t.Fatalf("reopen after compaction: %d blocks, range [%d,%d]",
			len(kept), kept[0].Header.Height, kept[len(kept)-1].Header.Height)
	}
}

// nextBlock extends parent with an empty block (no txs) for append
// plumbing tests.
func nextBlock(t *testing.T, parent *types.Block) *types.Block {
	t.Helper()
	return types.NewBlock(types.BlockHeader{
		Height: parent.Header.Height + 1, Seq: parent.Header.Seq + 1,
		PrevHash: parent.Hash(), Proposer: parent.Header.Proposer,
		Timestamp: parent.Header.Timestamp,
	}, nil)
}

func TestWALCompactBelow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "votes.wal")
	w, _, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recs := []WALRecord{
		walRec(WALEra, 2, 0, 0, 0),
		walRec(WALPrepare, 2, 0, 1, 1),
		walRec(WALCommit, 2, 0, 1, 1),
		walRec(WALPrepare, 2, 0, 2, 2),
		walRec(WALViewChange, 2, 1, 0, 0),
		walRec(WALPrepare, 2, 1, 3, 3),
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.CompactBelow(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, kept, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []WALKind
	for _, r := range kept {
		kinds = append(kinds, r.Kind)
	}
	// Era and view-change markers always survive; votes at seq <= 2 are
	// dropped, the seq-3 vote stays.
	want := []WALKind{WALEra, WALViewChange, WALPrepare}
	if len(kept) != len(want) {
		t.Fatalf("kept %d records (%v), want %v", len(kept), kinds, want)
	}
	for i, k := range want {
		if kept[i].Kind != k {
			t.Fatalf("record %d kind %v, want %v", i, kept[i].Kind, k)
		}
	}
	if kept[2].Seq != 3 {
		t.Fatalf("surviving vote seq %d, want 3", kept[2].Seq)
	}
}

// TestDiskBoundedAcrossEras is the acceptance proof for compaction:
// running the snapshot-then-compact cycle for many "eras" keeps the
// block log's on-disk bytes flat (a constant window of post-checkpoint
// blocks) while the uncompacted control grows linearly, and the
// snapshot directory holds exactly the retention depth.
func TestDiskBoundedAcrossEras(t *testing.T) {
	const eras, blocksPerEra = 12, 5
	g, blocks := buildChain(t, eras*blocksPerEra)
	chain, err := ledger.NewChain(g)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	logPath := filepath.Join(dir, "blocks.log")
	lg, _, err := Open(logPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	ss, err := OpenSnapshotStore(filepath.Join(dir, "snaps"), 2)
	if err != nil {
		t.Fatal(err)
	}
	kp := gcrypto.DeterministicKeyPair(0)

	logBytes := func() int64 {
		fi, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}

	var sizes []int64
	var uncompacted int64
	for era := 0; era < eras; era++ {
		for _, b := range blocks[era*blocksPerEra : (era+1)*blocksPerEra] {
			if err := chain.AddBlock(b); err != nil {
				t.Fatal(err)
			}
			if err := lg.Append(b); err != nil {
				t.Fatal(err)
			}
			uncompacted += int64(len(encodeFrame(types.EncodeBlock(b))))
		}
		if err := ss.Add(NewSnapshot(chain.ExportState(), kp)); err != nil {
			t.Fatal(err)
		}
		if floor := ss.OldestHeight(); floor > chain.BaseHeight() {
			if _, err := lg.CompactBelow(floor + 1); err != nil {
				t.Fatal(err)
			}
			chain.CompactBelow(floor)
		}
		sizes = append(sizes, logBytes())
	}
	// Steady state: once the first compaction has run, the log holds a
	// fixed window (checkpoint+1 .. head), so its size must never exceed
	// the first steady-state reading — NOT grow with era count the way
	// the raw log does.
	steady := sizes[2]
	for era, s := range sizes[2:] {
		if s > steady {
			t.Fatalf("era %d: log is %d bytes, over steady state %d (sizes %v)", era+2, s, steady, sizes)
		}
	}
	if final := sizes[len(sizes)-1]; final*4 >= uncompacted {
		t.Fatalf("compaction ineffective: log is %d bytes vs %d uncompacted", final, uncompacted)
	}
	// Retention bounds the snapshot directory too.
	entries, err := os.ReadDir(ss.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("snapshot dir holds %d files, want retention depth 2", len(entries))
	}
}

// FuzzDecodeSnapshotFile mutates a valid snapshot file image: the
// decoder must never panic, must classify every failure as
// ErrCorruptSnapshot, and on success must yield a snapshot that
// re-encodes to a decodable image with the same root.
func FuzzDecodeSnapshotFile(f *testing.F) {
	st := buildStates(f, 2)[1]
	file := encodeFrame(EncodeSnapshot(NewSnapshot(st, gcrypto.DeterministicKeyPair(0))))
	f.Add(file, 0, byte(0))
	f.Add(file, 3, byte(0xFF))
	f.Add(file[:len(file)-7], 0, byte(0))
	f.Add(file[:len(file)/3], 5, byte(0x20))
	f.Add([]byte{}, 0, byte(0))

	f.Fuzz(func(t *testing.T, data []byte, flipAt int, flipMask byte) {
		mutated := append([]byte(nil), data...)
		if len(mutated) > 0 {
			idx := flipAt % len(mutated)
			if idx < 0 {
				idx = -idx
			}
			mutated[idx] ^= flipMask
		}
		snap, err := DecodeSnapshotFile(mutated)
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if snap != nil {
				t.Fatal("error with non-nil snapshot (partial state)")
			}
			return
		}
		again, err := DecodeSnapshotFile(encodeFrame(EncodeSnapshot(snap)))
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot fails: %v", err)
		}
		if again.Root() != snap.Root() {
			t.Fatal("re-encode changed the root")
		}
	})
}
