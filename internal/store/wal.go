package store

import (
	"fmt"
	"io"
	"os"
	"sync"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
)

// MaxWALFrame bounds a single persisted WAL record (a prepared proof
// carries a full block plus 2f prepare envelopes).
const MaxWALFrame = 8 << 20

// WALKind discriminates consensus write-ahead-log records.
type WALKind uint8

// Record kinds. The vote kinds (pre-prepare, prepare, commit) are the
// ones a replica must never contradict after a restart; the others
// track protocol position (view entered, era completed) and the
// prepared certificates that keep view changes safe across restarts.
const (
	// WALPrePrepare: this replica, as primary, proposed Digest at
	// (Era, View, Seq).
	WALPrePrepare WALKind = iota + 1
	// WALPrepare: this replica sent a prepare for Digest at
	// (Era, View, Seq).
	WALPrepare
	// WALCommit: this replica sent a commit (certificate vote) for
	// Digest at (Era, View, Seq).
	WALCommit
	// WALPrepared: the instance at (Era, Seq) reached prepared state;
	// Data holds the encoded prepared proof (pre-prepare envelope plus
	// 2f prepare envelopes) so a restarted replica can still exhibit
	// the value in view changes.
	WALPrepared
	// WALViewChange: this replica asked to move to View in Era.
	WALViewChange
	// WALNewView: this replica entered View in Era.
	WALNewView
	// WALEra: this replica completed a switch into Era.
	WALEra
)

// String names the record kind.
func (k WALKind) String() string {
	switch k {
	case WALPrePrepare:
		return "pre-prepare"
	case WALPrepare:
		return "prepare"
	case WALCommit:
		return "commit"
	case WALPrepared:
		return "prepared"
	case WALViewChange:
		return "view-change"
	case WALNewView:
		return "new-view"
	case WALEra:
		return "era"
	default:
		return fmt.Sprintf("wal-kind(%d)", uint8(k))
	}
}

// WALRecord is one durable consensus event. The engine appends a
// record BEFORE the corresponding message leaves the replica
// (persist-before-send): after a crash the reloaded records are the
// set of promises the replica may already have made to the network.
type WALRecord struct {
	Kind   WALKind
	Era    uint64
	View   uint64
	Seq    uint64
	Digest gcrypto.Hash
	Data   []byte // kind-specific payload (WALPrepared: encoded proof)
}

// MarshalCanonical implements codec.Marshaler.
func (r *WALRecord) MarshalCanonical(w *codec.Writer) {
	w.Uint8(uint8(r.Kind))
	w.Uint64(r.Era)
	w.Uint64(r.View)
	w.Uint64(r.Seq)
	w.Raw(r.Digest[:])
	w.WriteBytes(r.Data)
}

// UnmarshalCanonical decodes a record.
func (r *WALRecord) UnmarshalCanonical(rd *codec.Reader) error {
	r.Kind = WALKind(rd.Uint8())
	r.Era = rd.Uint64()
	r.View = rd.Uint64()
	r.Seq = rd.Uint64()
	rd.RawInto(r.Digest[:])
	r.Data = rd.ReadBytes()
	return rd.Err()
}

// decodeWALRecord parses one frame body.
func decodeWALRecord(body []byte) (WALRecord, error) {
	var rec WALRecord
	r := codec.NewReader(body)
	if err := rec.UnmarshalCanonical(r); err != nil {
		return rec, err
	}
	if err := r.Finish(); err != nil {
		return rec, err
	}
	return rec, nil
}

// WAL is the durable consensus write-ahead log: an append-only,
// CRC-framed record file sharing the block log's torn-tail recovery.
// Unlike the block log it defaults to fsync-per-append — a vote that
// reaches the network without reaching the disk is exactly the
// equivocation window the WAL exists to close.
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	sync   bool
	closed bool
	count  int
}

// WALOptions configures opening a write-ahead log.
type WALOptions struct {
	// NoSync disables fsync-per-append (testing only; an unsynced WAL
	// does not survive power loss and weakens the safety argument).
	NoSync bool
}

// OpenWAL opens (or creates) the WAL at path, returning the log and
// the records recovered from it in append order. A torn final frame is
// truncated away; corruption followed by valid frames is an error.
func OpenWAL(path string, opts WALOptions) (*WAL, []WALRecord, error) {
	f, err := openLogFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open wal %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: read wal: %w", err)
	}
	var recs []WALRecord
	validEnd, err := scanFrames(data, MaxWALFrame, func(body []byte) error {
		rec, err := decodeWALRecord(body)
		if err != nil {
			return err
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: truncate wal torn tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, sync: !opts.NoSync, count: len(recs)}
	return w, recs, nil
}

// Append persists one record, fsyncing before it returns (unless
// NoSync): callers may only hand the corresponding message to the
// network after Append succeeds.
func (w *WAL) Append(rec WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrLogClosed
	}
	body := codec.Encode(&rec)
	if len(body) > MaxWALFrame {
		return fmt.Errorf("store: wal record %d exceeds frame limit", len(body))
	}
	if _, err := w.f.Write(encodeFrame(body)); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
	}
	w.count++
	return nil
}

// Rotate discards all records and restarts the log with a fresh era
// marker. It is called when an era switch completes: votes from
// finished eras can never conflict again (the engine rejects any
// message from an era below the chain's), so keeping them only grows
// the file. If the replica dies between the truncate and the marker
// the WAL is simply empty — correct, since the replica has not voted
// in the new era yet.
func (w *WAL) Rotate(era uint64) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrLogClosed
	}
	if err := w.f.Truncate(0); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("store: wal rotate: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		w.mu.Unlock()
		return err
	}
	w.count = 0
	w.mu.Unlock()
	return w.Append(WALRecord{Kind: WALEra, Era: era})
}

// Count returns the number of records in the log.
func (w *WAL) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Close flushes and closes the file. Closing twice is fine.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// MemWAL is an in-memory WAL with the same interface, used by the
// simulator's amnesia-restart fault model: it survives a simulated
// crash (the harness holds it outside the node) exactly like a file
// survives a process kill.
type MemWAL struct {
	mu   sync.Mutex
	recs []WALRecord
}

// Append implements the WAL surface.
func (m *MemWAL) Append(rec WALRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, rec)
	return nil
}

// Rotate implements the WAL surface.
func (m *MemWAL) Rotate(era uint64) error {
	m.mu.Lock()
	m.recs = m.recs[:0]
	m.mu.Unlock()
	return m.Append(WALRecord{Kind: WALEra, Era: era})
}

// Records returns a copy of the recorded entries in append order.
func (m *MemWAL) Records() []WALRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WALRecord, len(m.recs))
	copy(out, m.recs)
	return out
}

// Len returns the number of records.
func (m *MemWAL) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}
