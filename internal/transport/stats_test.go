package transport

import (
	"strings"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
)

func TestStatsSnapshotAndPrometheus(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)
	b, err := New(Config{Listen: "127.0.0.1:0", Key: kpB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := New(Config{
		Listen: "127.0.0.1:0",
		Key:    kpA,
		Peers:  []Peer{{Addr: kpB.Address(), HostPort: b.ListenAddr()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	env := consensus.Seal(kpA, &pbft.Prepare{Era: 1, Seq: 1})
	if err := a.Send(kpB.Address(), env); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Incoming():
	case <-time.After(5 * time.Second):
		t.Fatal("delivery timeout")
	}

	// Two frames out: the dial-path identity hello (previously uncounted)
	// plus the prepare envelope.
	deadline := time.After(5 * time.Second)
	var s Stats
	for {
		s = a.Stats()
		if s.FramesOut >= 2 && s.Dials >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("sender stats never populated: %+v", s)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if s.WriteBatches < 1 {
		t.Fatalf("write batches %d, want >= 1", s.WriteBatches)
	}
	if s.BytesOut <= 0 {
		t.Fatalf("bytes out %d, want > 0", s.BytesOut)
	}
	if len(s.Peers) != 1 {
		t.Fatalf("peers %d, want 1", len(s.Peers))
	}
	ps := s.Peers[0]
	if ps.Addr != kpB.Address() || ps.Endpoint != b.ListenAddr() {
		t.Fatalf("peer stats misattributed: %+v", ps)
	}
	if ps.State != PeerConnected || ps.Inbound {
		t.Fatalf("peer should be connected over a dialed conn: %+v", ps)
	}

	bs := b.Stats()
	if bs.FramesIn < 1 || bs.BytesIn <= 0 || bs.Accepted < 1 {
		t.Fatalf("receiver stats not populated: %+v", bs)
	}

	var sb strings.Builder
	s.WritePrometheus(&sb, "gpbft")
	out := sb.String()
	for _, want := range []string{
		"gpbft_transport_frames_out_total 2",
		"gpbft_transport_write_batches_total",
		"gpbft_transport_dials_total 1",
		"gpbft_transport_dropped_frames_total 0",
		"gpbft_transport_ingress_rejected_total 0",
		"gpbft_transport_reject_replies_total 0",
		"# TYPE gpbft_transport_open_conns gauge",
		`state="connected"`,
		"gpbft_transport_peer_queue_len",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestCoalescedBatchCountsPerFrame pins the frame-accounting contract
// under write coalescing: a burst of N envelopes may leave in far fewer
// connection writes, but FramesOut must still advance by N (plus the
// one-time hello), with the batching visible only through WriteBatches.
// Relayed gossip traffic depends on this — a relay frame received once
// fans out to several peers, and undercounting coalesced writes would
// make the f·n forwarding bound look falsely cheap.
func TestCoalescedBatchCountsPerFrame(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(3)
	kpB := gcrypto.DeterministicKeyPair(4)
	b, err := New(Config{Listen: "127.0.0.1:0", Key: kpB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := New(Config{
		Listen: "127.0.0.1:0",
		Key:    kpA,
		Peers:  []Peer{{Addr: kpB.Address(), HostPort: b.ListenAddr()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const burst = 32
	for i := 0; i < burst; i++ {
		env := consensus.Seal(kpA, &pbft.Prepare{Era: 1, Seq: uint64(i + 1)})
		if err := a.Send(kpB.Address(), env); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < burst; i++ {
		select {
		case <-b.Incoming():
		case <-time.After(5 * time.Second):
			t.Fatalf("delivered %d/%d envelopes", i, burst)
		}
	}

	deadline := time.After(5 * time.Second)
	var s Stats
	for {
		s = a.Stats()
		if s.FramesOut >= burst+1 { // +1 for the dial hello
			break
		}
		select {
		case <-deadline:
			t.Fatalf("frames out %d, want %d (batch counted as one?)", s.FramesOut, burst+1)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if s.FramesOut != burst+1 {
		t.Fatalf("frames out %d, want exactly %d", s.FramesOut, burst+1)
	}
	if s.WriteBatches < 1 || s.WriteBatches > s.FramesOut {
		t.Fatalf("write batches %d outside [1, %d]", s.WriteBatches, s.FramesOut)
	}
	if bs := b.Stats(); bs.FramesIn != burst {
		t.Fatalf("receiver frames in %d, want %d", bs.FramesIn, burst)
	}
}

func TestPeerStateString(t *testing.T) {
	cases := map[PeerState]string{
		PeerIdle: "idle", PeerConnecting: "connecting",
		PeerConnected: "connected", PeerBackoff: "backoff",
		PeerState(9): "state(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d -> %q, want %q", s, s.String(), want)
		}
	}
}
