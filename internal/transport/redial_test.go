package transport

import (
	"net"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
)

// TestRedialAfterPeerRestart: messages sent while the peer is down are
// eventually dropped, but once the peer comes back (same port) new
// messages get through on a fresh connection.
func TestRedialAfterPeerRestart(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)

	// Reserve a port for B, then shut it down so A dials into a void.
	b1, err := New(Config{Listen: "127.0.0.1:0", Self: kpB.Address()})
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.ListenAddr()
	b1.Close()

	a, err := New(Config{
		Listen:      "127.0.0.1:0",
		Self:        kpA.Address(),
		Peers:       []Peer{{Addr: kpB.Address(), HostPort: addr}},
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	env := consensus.Seal(kpA, &pbft.Prepare{Era: 1, Seq: 1})
	// Fire one message into the void; the writer retries with backoff.
	if err := a.Send(kpB.Address(), env); err != nil {
		t.Fatal(err)
	}
	// Bring B back on the SAME port.
	time.Sleep(150 * time.Millisecond)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	ln.Close()
	b2, err := New(Config{Listen: addr, Self: kpB.Address()})
	if err != nil {
		t.Skipf("rebind %s: %v", addr, err)
	}
	defer b2.Close()

	// The queued (or a fresh) message must arrive once B is back.
	deadline := time.After(10 * time.Second)
	got := false
	for !got {
		if err := a.Send(kpB.Address(), env); err != nil {
			t.Fatal(err)
		}
		select {
		case <-b2.Incoming():
			got = true
		case <-time.After(300 * time.Millisecond):
		case <-deadline:
			t.Fatal("message never arrived after peer restart")
		}
	}
}

// TestAddPeerEndpointChangeLiveConn is the regression test for the
// seed bug where writeLoop captured hostport once at spawn: after the
// peer moves, AddPeer's new endpoint must reach the live writer. Here
// the writer already holds a connection to the OLD endpoint; the
// update must burn it and redial the new one.
func TestAddPeerEndpointChangeLiveConn(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)

	b1, err := New(Config{Listen: "127.0.0.1:0", Key: kpB})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{
		Listen:      "127.0.0.1:0",
		Key:         kpA,
		Peers:       []Peer{{Addr: kpB.Address(), HostPort: b1.ListenAddr()}},
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	env := consensus.Seal(kpA, &pbft.Prepare{Era: 1, Seq: 1})
	if err := a.Send(kpB.Address(), env); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b1.Incoming():
	case <-time.After(5 * time.Second):
		t.Fatal("initial delivery failed")
	}

	// The peer moves: old endpoint dies, a new one appears elsewhere.
	b2, err := New(Config{Listen: "127.0.0.1:0", Key: kpB})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	b1.Close()
	a.AddPeer(Peer{Addr: kpB.Address(), HostPort: b2.ListenAddr()})

	deadline := time.After(10 * time.Second)
	for {
		if err := a.Send(kpB.Address(), env); err != nil {
			t.Fatal(err)
		}
		select {
		case <-b2.Incoming():
			return
		case <-time.After(200 * time.Millisecond):
		case <-deadline:
			t.Fatal("messages never followed the peer to its new endpoint")
		}
	}
}

// TestAddPeerEndpointChangeWhileBackingOff: the writer is stuck
// redialing a dead endpoint; AddPeer must cut the backoff short and
// the queued message must come out at the NEW endpoint.
func TestAddPeerEndpointChangeWhileBackingOff(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)

	// Reserve-and-release a port so the book points into a void.
	hole, err := New(Config{Listen: "127.0.0.1:0", Self: kpB.Address()})
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := hole.ListenAddr()
	hole.Close()

	a, err := New(Config{
		Listen:      "127.0.0.1:0",
		Key:         kpA,
		Peers:       []Peer{{Addr: kpB.Address(), HostPort: deadAddr}},
		DialTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	env := consensus.Seal(kpA, &pbft.Prepare{Era: 1, Seq: 1})
	if err := a.Send(kpB.Address(), env); err != nil {
		t.Fatal(err)
	}
	// Let the writer enter its dial/backoff loop against the dead port.
	time.Sleep(150 * time.Millisecond)

	b, err := New(Config{Listen: "127.0.0.1:0", Key: kpB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(Peer{Addr: kpB.Address(), HostPort: b.ListenAddr()})

	select {
	case <-b.Incoming():
	case <-time.After(10 * time.Second):
		t.Fatal("queued message never reached the re-registered endpoint")
	}
	if s := a.Stats(); s.DialFailures == 0 {
		t.Fatalf("expected dial failures against the dead endpoint, got %+v", s)
	}
}

// TestSendQueueOverflowDrops: a tiny queue with a dead peer counts
// drops instead of blocking.
func TestSendQueueOverflowDrops(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)
	// Peer address points nowhere routable-fast; use a closed local port.
	dead, err := New(Config{Listen: "127.0.0.1:0", Self: kpB.Address()})
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.ListenAddr()
	dead.Close()

	a, err := New(Config{
		Listen:      "127.0.0.1:0",
		Self:        kpA.Address(),
		Peers:       []Peer{{Addr: kpB.Address(), HostPort: addr}},
		DialTimeout: 100 * time.Millisecond,
		SendQueue:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	env := consensus.Seal(kpA, &pbft.Prepare{Era: 1})
	for i := 0; i < 50; i++ {
		if err := a.Send(kpB.Address(), env); err != nil {
			t.Fatal(err)
		}
	}
	// With a 2-slot queue and a dead peer, most of the 50 must have
	// been dropped (non-blocking behaviour).
	deadlineDrops := time.After(5 * time.Second)
	for a.Dropped() < 40 {
		select {
		case <-deadlineDrops:
			t.Fatalf("dropped=%d, expected most of the burst", a.Dropped())
		case <-time.After(50 * time.Millisecond):
		}
	}
}
