package transport

import (
	"net"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
)

// TestRedialAfterPeerRestart: messages sent while the peer is down are
// eventually dropped, but once the peer comes back (same port) new
// messages get through on a fresh connection.
func TestRedialAfterPeerRestart(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)

	// Reserve a port for B, then shut it down so A dials into a void.
	b1, err := New(Config{Listen: "127.0.0.1:0", Self: kpB.Address()})
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.ListenAddr()
	b1.Close()

	a, err := New(Config{
		Listen:      "127.0.0.1:0",
		Self:        kpA.Address(),
		Peers:       []Peer{{Addr: kpB.Address(), HostPort: addr}},
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	env := consensus.Seal(kpA, &pbft.Prepare{Era: 1, Seq: 1})
	// Fire one message into the void; the writer retries with backoff.
	if err := a.Send(kpB.Address(), env); err != nil {
		t.Fatal(err)
	}
	// Bring B back on the SAME port.
	time.Sleep(150 * time.Millisecond)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	ln.Close()
	b2, err := New(Config{Listen: addr, Self: kpB.Address()})
	if err != nil {
		t.Skipf("rebind %s: %v", addr, err)
	}
	defer b2.Close()

	// The queued (or a fresh) message must arrive once B is back.
	deadline := time.After(10 * time.Second)
	got := false
	for !got {
		if err := a.Send(kpB.Address(), env); err != nil {
			t.Fatal(err)
		}
		select {
		case <-b2.Incoming():
			got = true
		case <-time.After(300 * time.Millisecond):
		case <-deadline:
			t.Fatal("message never arrived after peer restart")
		}
	}
}

// TestSendQueueOverflowDrops: a tiny queue with a dead peer counts
// drops instead of blocking.
func TestSendQueueOverflowDrops(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)
	// Peer address points nowhere routable-fast; use a closed local port.
	dead, err := New(Config{Listen: "127.0.0.1:0", Self: kpB.Address()})
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.ListenAddr()
	dead.Close()

	a, err := New(Config{
		Listen:      "127.0.0.1:0",
		Self:        kpA.Address(),
		Peers:       []Peer{{Addr: kpB.Address(), HostPort: addr}},
		DialTimeout: 100 * time.Millisecond,
		SendQueue:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	env := consensus.Seal(kpA, &pbft.Prepare{Era: 1})
	for i := 0; i < 50; i++ {
		if err := a.Send(kpB.Address(), env); err != nil {
			t.Fatal(err)
		}
	}
	// With a 2-slot queue and a dead peer, most of the 50 must have
	// been dropped (non-blocking behaviour).
	deadlineDrops := time.After(5 * time.Second)
	for a.Dropped() < 40 {
		select {
		case <-deadlineDrops:
			t.Fatalf("dropped=%d, expected most of the burst", a.Dropped())
		case <-time.After(50 * time.Millisecond):
		}
	}
}
