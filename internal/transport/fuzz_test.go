package transport

import (
	"bytes"
	"testing"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
)

// FuzzReadFrame: a hostile byte stream must never panic the framer nor
// make it allocate unboundedly.
func FuzzReadFrame(f *testing.F) {
	kp := gcrypto.DeterministicKeyPair(1)
	var good bytes.Buffer
	if err := WriteFrame(&good, consensus.Seal(kp, &pbft.Prepare{Era: 1, Seq: 2})); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decoded envelope must re-frame successfully.
		var out bytes.Buffer
		if err := WriteFrame(&out, env); err != nil {
			t.Fatalf("re-framing decoded envelope failed: %v", err)
		}
	})
}
