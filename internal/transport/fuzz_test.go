package transport

import (
	"bytes"
	"testing"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
)

// FuzzReadFrame: a hostile byte stream must never panic the framer nor
// make it allocate unboundedly.
func FuzzReadFrame(f *testing.F) {
	kp := gcrypto.DeterministicKeyPair(1)
	var good bytes.Buffer
	if err := WriteFrame(&good, consensus.Seal(kp, &pbft.Prepare{Era: 1, Seq: 2})); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decoded envelope must re-frame successfully.
		var out bytes.Buffer
		if err := WriteFrame(&out, env); err != nil {
			t.Fatalf("re-framing decoded envelope failed: %v", err)
		}
	})
}

// FuzzDecodeHello: hostile hello payloads must never panic the
// handshake decoder, and every accepted hello must re-encode to the
// same bytes (canonical form).
func FuzzDecodeHello(f *testing.F) {
	kp := gcrypto.DeterministicKeyPair(1)
	f.Add(EncodeHello(NewHello(kp)))
	f.Add([]byte(helloMagic))
	f.Add([]byte(helloMagic + "\x01"))
	f.Add(append([]byte(helloMagic+"\x01"), make([]byte, 64)...))
	f.Add(append([]byte(helloMagic), 99))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeHello(h), data) {
			t.Fatal("accepted hello is not canonical")
		}
		_ = h.Verify() // must not panic on arbitrary key/sig lengths
	})
}
