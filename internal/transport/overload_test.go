package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/types"
)

func mkClientTx(kp *gcrypto.KeyPair, nonce uint64) *types.Transaction {
	tx := &types.Transaction{Type: types.TxNormal, Nonce: nonce, Payload: []byte{byte(nonce)}}
	tx.Sign(kp)
	return tx
}

// Satellite regression: a peer whose connection stalls (accepts TCP,
// never drains) must cost the sender dropped frames, never a blocked
// broadcast path — a healthy peer keeps receiving while the stalled
// one backs up.
func TestStalledPeerDropsNotBlocks(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpStall := gcrypto.DeterministicKeyPair(2)
	kpGood := gcrypto.DeterministicKeyPair(3)

	// The stalled peer: accepts connections and then never reads.
	stall, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	stallDone := make(chan struct{})
	var stallConns []net.Conn
	go func() {
		defer close(stallDone)
		for {
			c, err := stall.Accept()
			if err != nil {
				return
			}
			stallConns = append(stallConns, c) // hold open, read nothing
		}
	}()
	defer func() {
		stall.Close()
		<-stallDone
		for _, c := range stallConns {
			c.Close()
		}
	}()

	good, err := New(Config{Listen: "127.0.0.1:0", Key: kpGood})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	a, err := New(Config{
		Listen: "127.0.0.1:0",
		Key:    kpA,
		Peers: []Peer{
			{Addr: kpStall.Address(), HostPort: stall.Addr().String()},
			{Addr: kpGood.Address(), HostPort: good.ListenAddr()},
		},
		SendQueue:    4,
		WriteTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// A large payload fills the kernel socket buffer fast, so writes to
	// the stalled peer actually block into the write deadline.
	big := &pbft.Request{Tx: types.Transaction{Type: types.TxNormal, Payload: make([]byte, 256<<10)}}
	start := time.Now()
	for i := 0; i < 64; i++ {
		env := consensus.Seal(kpA, big)
		if err := a.Send(kpStall.Address(), env); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Send blocked for %v on a stalled peer", elapsed)
	}

	// The healthy peer must stay live while the other stalls: each
	// frame sent to it arrives promptly (its own writer, own queue).
	for i := 0; i < 16; i++ {
		if err := a.Send(kpGood.Address(), consensus.Seal(kpA, &pbft.Prepare{Era: 1, Seq: uint64(i)})); err != nil {
			t.Fatal(err)
		}
		select {
		case <-good.Incoming():
		case <-time.After(10 * time.Second):
			t.Fatalf("healthy peer starved after %d frames (stalled peer wedged the sender)", i)
		}
	}
	// And the stalled peer's backlog must surface as dropped frames.
	deadline := time.After(10 * time.Second)
	for a.Dropped() == 0 {
		select {
		case <-deadline:
			t.Fatalf("no frames dropped for the stalled peer: %+v", a.Stats())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// A client whose transaction fails admission must get a signed
// TxRejected reply carrying the reason and retry-after hint, while the
// connection survives for admitted traffic.
func TestClientRejectReply(t *testing.T) {
	kpNode := gcrypto.DeterministicKeyPair(1)
	kpClient := gcrypto.DeterministicKeyPair(9)

	reject := &runtime.RejectError{Reason: types.RejectRateLimit, RetryAfter: 750 * time.Millisecond}
	node, err := New(Config{
		Listen: "127.0.0.1:0",
		Key:    kpNode,
		AdmitTx: func(tx *types.Transaction) error {
			if tx.Nonce%2 == 1 {
				return reject
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	conn := dialRaw(t, node.ListenAddr())
	defer conn.Close()

	// Odd nonce: rejected, reply expected.
	if err := WriteFrame(conn, consensus.Seal(kpClient, &pbft.Request{Tx: *mkClientTx(kpClient, 1)})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	env, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("no reject reply: %v", err)
	}
	var rej pbft.TxRejected
	if err := consensus.Open(env, consensus.KindTxReject, &rej); err != nil {
		t.Fatalf("reply failed verification: %v", err)
	}
	if env.From != kpNode.Address() {
		t.Fatalf("reply signed by %s, want the node", env.From.Short())
	}
	wantID := mkClientTx(kpClient, 1).ID()
	if rej.TxID != wantID || rej.Reason != types.RejectRateLimit || rej.RetryAfter != 750*time.Millisecond {
		t.Fatalf("reject reply = %+v", rej)
	}

	// Even nonce on the SAME connection: admitted and delivered.
	if err := WriteFrame(conn, consensus.Seal(kpClient, &pbft.Request{Tx: *mkClientTx(kpClient, 2)})); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-node.Incoming():
		if got.MsgKind != consensus.KindRequest {
			t.Fatalf("delivered kind %v", got.MsgKind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admitted request not delivered")
	}
	if got := node.Stats().IngressRejected; got != 1 {
		t.Fatalf("IngressRejected = %d, want 1", got)
	}
	if got := node.Stats().RejectReplies; got != 1 {
		t.Fatalf("RejectReplies = %d, want 1", got)
	}
}

// The per-connection ingress byte budget must slow a flooding client
// connection (throttle counter moves) without cutting it off.
func TestIngressByteBudget(t *testing.T) {
	kpNode := gcrypto.DeterministicKeyPair(1)
	kpClient := gcrypto.DeterministicKeyPair(9)
	node, err := New(Config{
		Listen:             "127.0.0.1:0",
		Key:                kpNode,
		IngressBytesPerSec: 8 << 10,
		IngressBurstBytes:  2 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	conn := dialRaw(t, node.ListenAddr())
	defer conn.Close()
	const frames = 10
	go func() {
		for i := 0; i < frames; i++ {
			tx := mkClientTx(kpClient, uint64(i))
			tx.Payload = make([]byte, 1024)
			if WriteFrame(conn, consensus.Seal(kpClient, &pbft.Request{Tx: *tx})) != nil {
				return
			}
		}
	}()
	for i := 0; i < frames; i++ {
		select {
		case <-node.Incoming():
		case <-time.After(30 * time.Second):
			t.Fatalf("throttled connection lost frame %d", i)
		}
	}
	if node.Stats().IngressThrottled == 0 {
		t.Fatal("flooding connection was never throttled")
	}
}

// errors.As must see through wrapped admission errors on the reply
// path (the hook may wrap RejectError in context).
func TestRejectErrorUnwrap(t *testing.T) {
	inner := &runtime.RejectError{Reason: types.RejectShed, RetryAfter: time.Second}
	var rej *runtime.RejectError
	if !errors.As(errorWrap{inner}, &rej) || rej.Reason != types.RejectShed {
		t.Fatal("RejectError not extractable from wrapped error")
	}
}

type errorWrap struct{ err error }

func (w errorWrap) Error() string { return "wrapped: " + w.err.Error() }
func (w errorWrap) Unwrap() error { return w.err }
