package transport

import (
	"errors"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
)

// The identity handshake: the first frame a dialing endpoint sends is a
// signed hello that binds the TCP connection to a chain address. Once a
// hello is verified, the accepting side attributes the connection to
// that peer and reuses it for its own outbound traffic, so a pair of
// endorsers shares one TCP connection instead of two. Connections whose
// first frame is a plain envelope (IoT clients, older peers) are still
// accepted; they simply stay unattributed and read-only.
const (
	// helloMagic prefixes a hello frame payload; it cannot collide with
	// an envelope, whose first byte is a small MsgKind.
	helloMagic = "GPBH"
	// helloVersion is bumped on incompatible hello layout changes.
	helloVersion = 1
	// MaxHello bounds a hello frame payload; anything larger is a
	// protocol violation and the connection is dropped.
	MaxHello = 1024
)

// Errors returned by hello encoding and verification.
var (
	ErrHelloMalformed = errors.New("transport: malformed hello frame")
	ErrHelloTooLarge  = errors.New("transport: hello frame exceeds limit")
	ErrHelloVersion   = errors.New("transport: unsupported hello version")
)

// Hello is the identity frame sent immediately after dialing.
type Hello struct {
	Addr gcrypto.Address
	Pub  []byte
	Sig  []byte
}

func helloDigest(addr gcrypto.Address) []byte {
	w := codec.NewWriter(64)
	w.String("gpbft/hello/v1")
	w.Raw(addr[:])
	return w.Bytes()
}

// NewHello builds a signed hello for the given identity.
func NewHello(kp *gcrypto.KeyPair) *Hello {
	return &Hello{
		Addr: kp.Address(),
		Pub:  append([]byte(nil), kp.Public()...),
		Sig:  kp.Sign(helloDigest(kp.Address())),
	}
}

// Verify checks the hello signature and that the public key hashes to
// the claimed address, so a peer cannot claim another node's identity
// without its signing key.
func (h *Hello) Verify() error {
	return gcrypto.Verify(h.Pub, h.Addr, helloDigest(h.Addr), h.Sig)
}

// EncodeHello returns the hello frame payload.
func EncodeHello(h *Hello) []byte {
	w := codec.NewWriter(128)
	w.Raw([]byte(helloMagic))
	w.Uint8(helloVersion)
	w.Raw(h.Addr[:])
	w.WriteBytes(h.Pub)
	w.WriteBytes(h.Sig)
	return w.Bytes()
}

// isHello reports whether a frame payload carries the hello magic.
func isHello(payload []byte) bool {
	return len(payload) >= len(helloMagic) && string(payload[:len(helloMagic)]) == helloMagic
}

// DecodeHello parses a hello frame payload. It does not verify the
// signature; call Verify on the result.
func DecodeHello(b []byte) (*Hello, error) {
	if len(b) > MaxHello {
		return nil, ErrHelloTooLarge
	}
	if !isHello(b) {
		return nil, ErrHelloMalformed
	}
	r := codec.NewReader(b[len(helloMagic):])
	if v := r.Uint8(); v != helloVersion {
		if r.Err() == nil {
			return nil, ErrHelloVersion
		}
	}
	var h Hello
	r.RawInto(h.Addr[:])
	h.Pub = r.ReadBytes()
	h.Sig = r.ReadBytes()
	if err := r.Finish(); err != nil {
		return nil, ErrHelloMalformed
	}
	return &h, nil
}
