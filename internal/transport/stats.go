package transport

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"gpbft/internal/gcrypto"
)

// counters holds the transport-wide atomic totals. Hot paths (read and
// write loops) bump these lock-free; Stats assembles a snapshot.
type counters struct {
	framesIn          atomic.Int64
	framesOut         atomic.Int64
	writeBatches      atomic.Int64
	bytesIn           atomic.Int64
	bytesOut          atomic.Int64
	dropped           atomic.Int64
	dials             atomic.Int64
	dialFailures      atomic.Int64
	redials           atomic.Int64
	accepted          atomic.Int64
	handshakeFailures atomic.Int64
	connsPruned       atomic.Int64
	ingressRejected   atomic.Int64
	ingressThrottled  atomic.Int64
	rejectReplies     atomic.Int64
}

// PeerState is the connection state of one peer's writer.
type PeerState uint8

// Writer states, in the order a connection normally progresses.
const (
	// PeerIdle: no connection and nothing queued yet.
	PeerIdle PeerState = iota
	// PeerConnecting: a dial is in flight.
	PeerConnecting
	// PeerConnected: a live connection is carrying frames.
	PeerConnected
	// PeerBackoff: the last dial failed; the writer is waiting out a
	// capped-exponential delay before retrying.
	PeerBackoff
)

// String names the peer state (used in metrics labels).
func (s PeerState) String() string {
	switch s {
	case PeerIdle:
		return "idle"
	case PeerConnecting:
		return "connecting"
	case PeerConnected:
		return "connected"
	case PeerBackoff:
		return "backoff"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// PeerStats is the live view of one peer's outbound channel.
type PeerStats struct {
	Addr     gcrypto.Address
	Endpoint string
	State    PeerState
	// Inbound reports that the writer is reusing a connection the peer
	// dialed to us (bidirectional reuse), rather than one we dialed.
	Inbound  bool
	QueueLen int
	Redials  int64
}

// Stats is a point-in-time snapshot of the transport. An operator
// watching FramesIn/FramesOut and per-peer states can see era-switch
// reconnect storms, dead peers stuck in backoff, and queue pressure.
type Stats struct {
	FramesIn  int64
	FramesOut int64
	// WriteBatches counts connection writes; FramesOut/WriteBatches is
	// the coalescing ratio (frames delivered per syscall).
	WriteBatches int64
	BytesIn      int64
	BytesOut     int64
	// Dropped counts outbound envelopes discarded on full queues or
	// after a failed write+redial cycle.
	Dropped int64
	// Dials counts successful outbound connection establishments;
	// DialFailures counts attempts that never connected.
	Dials        int64
	DialFailures int64
	// Redials counts re-establishments after a peer had already been
	// dialed once (era switches, peer restarts, endpoint moves).
	Redials int64
	// Accepted counts inbound connections; HandshakeFailures counts
	// inbound connections dropped for a bad hello frame.
	Accepted          int64
	HandshakeFailures int64
	// OpenConns is the current tracked connection count; ConnsPruned is
	// the total of closed connections removed from tracking.
	OpenConns   int
	ConnsPruned int64
	// IngressRejected counts inbound requests refused by the AdmitTx
	// gate; RejectReplies counts signed TxRejected answers actually
	// written back; IngressThrottled counts frames that put a client
	// connection over its byte budget (its read loop slept).
	IngressRejected  int64
	IngressThrottled int64
	RejectReplies    int64
	Peers            []PeerStats
}

// Stats assembles a consistent snapshot of the endpoint.
func (t *TCP) Stats() Stats {
	s := Stats{
		FramesIn:          t.ctr.framesIn.Load(),
		FramesOut:         t.ctr.framesOut.Load(),
		WriteBatches:      t.ctr.writeBatches.Load(),
		BytesIn:           t.ctr.bytesIn.Load(),
		BytesOut:          t.ctr.bytesOut.Load(),
		Dropped:           t.ctr.dropped.Load(),
		Dials:             t.ctr.dials.Load(),
		DialFailures:      t.ctr.dialFailures.Load(),
		Redials:           t.ctr.redials.Load(),
		Accepted:          t.ctr.accepted.Load(),
		HandshakeFailures: t.ctr.handshakeFailures.Load(),
		ConnsPruned:       t.ctr.connsPruned.Load(),
		IngressRejected:   t.ctr.ingressRejected.Load(),
		IngressThrottled:  t.ctr.ingressThrottled.Load(),
		RejectReplies:     t.ctr.rejectReplies.Load(),
	}
	t.mu.Lock()
	s.OpenConns = len(t.conns)
	for addr, p := range t.peers {
		endpoint := t.book[addr]
		p.mu.Lock()
		ps := PeerStats{
			Addr:     addr,
			Endpoint: endpoint,
			State:    p.state,
			Inbound:  p.inboundConn,
			QueueLen: len(p.q),
			Redials:  p.redials,
		}
		p.mu.Unlock()
		s.Peers = append(s.Peers, ps)
	}
	t.mu.Unlock()
	sort.Slice(s.Peers, func(i, j int) bool { return s.Peers[i].Addr.Less(s.Peers[j].Addr) })
	return s
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format with the given metric prefix (e.g. "gpbft").
func (s Stats) WritePrometheus(w io.Writer, prefix string) {
	counter := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s_%s counter\n%s_%s %d\n", prefix, name, prefix, name, v)
	}
	gauge := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %d\n", prefix, name, prefix, name, v)
	}
	counter("transport_frames_in_total", s.FramesIn)
	counter("transport_frames_out_total", s.FramesOut)
	counter("transport_write_batches_total", s.WriteBatches)
	counter("transport_bytes_in_total", s.BytesIn)
	counter("transport_bytes_out_total", s.BytesOut)
	counter("transport_dropped_total", s.Dropped)
	// The same counter under its canonical name: frames dropped instead
	// of blocking the shared broadcast path (full queue or dead write).
	counter("transport_dropped_frames_total", s.Dropped)
	counter("transport_ingress_rejected_total", s.IngressRejected)
	counter("transport_ingress_throttled_total", s.IngressThrottled)
	counter("transport_reject_replies_total", s.RejectReplies)
	counter("transport_dials_total", s.Dials)
	counter("transport_dial_failures_total", s.DialFailures)
	counter("transport_redials_total", s.Redials)
	counter("transport_accepted_total", s.Accepted)
	counter("transport_handshake_failures_total", s.HandshakeFailures)
	counter("transport_conns_pruned_total", s.ConnsPruned)
	gauge("transport_open_conns", int64(s.OpenConns))
	if len(s.Peers) > 0 {
		fmt.Fprintf(w, "# TYPE %s_transport_peer_connected gauge\n", prefix)
		for _, p := range s.Peers {
			connected := 0
			if p.State == PeerConnected {
				connected = 1
			}
			fmt.Fprintf(w, "%s_transport_peer_connected{peer=%q,state=%q,inbound=\"%t\"} %d\n",
				prefix, p.Addr.Short(), p.State.String(), p.Inbound, connected)
		}
		fmt.Fprintf(w, "# TYPE %s_transport_peer_queue_len gauge\n", prefix)
		for _, p := range s.Peers {
			fmt.Fprintf(w, "%s_transport_peer_queue_len{peer=%q} %d\n", prefix, p.Addr.Short(), p.QueueLen)
		}
	}
}
