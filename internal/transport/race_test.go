package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
)

// TestSendAddPeerRace is the regression test for the seed data race:
// Send read t.book[to] without holding t.mu while AddPeer wrote the
// map under lock. Run with -race; the seed code fails here.
func TestSendAddPeerRace(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)

	// Deliberately uses only the seed-era Config fields (Self, Peers)
	// so this test compiles against the pre-fix transport and reports
	// the race there.
	b, err := New(Config{Listen: "127.0.0.1:0", Self: kpB.Address()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a, err := New(Config{
		Listen: "127.0.0.1:0",
		Self:   kpA.Address(),
		Peers:  []Peer{{Addr: kpB.Address(), HostPort: b.ListenAddr()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	env := consensus.Seal(kpA, &pbft.Prepare{Era: 1, Seq: 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if err := a.Send(kpB.Address(), env); err != nil {
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Alternate between the live endpoint and a second (dead but
		// syntactically valid) one, re-registering continuously.
		endpoints := []string{b.ListenAddr(), "127.0.0.1:1"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				a.AddPeer(Peer{Addr: kpB.Address(), HostPort: endpoints[i%2]})
			}
		}
	}()
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Drain whatever arrived so b's read loops are exercised too.
	for {
		select {
		case <-b.Incoming():
		case <-time.After(50 * time.Millisecond):
			return
		}
	}
}

// TestConnPruning: the seed code appended every accepted connection to
// a slice and never removed it, leaking an entry per peer churn / era
// switch. Closed connections must leave the tracked set.
func TestConnPruning(t *testing.T) {
	kpB := gcrypto.DeterministicKeyPair(2)
	b, err := New(Config{Listen: "127.0.0.1:0", Key: kpB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const cycles = 40
	kpC := gcrypto.DeterministicKeyPair(3)
	env := consensus.Seal(kpC, &pbft.Prepare{Era: 1, Seq: 1})
	for i := 0; i < cycles; i++ {
		conn, err := net.DialTimeout("tcp", b.ListenAddr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// Half the cycles handshake like a peer, half behave like a
		// bare client; both kinds must be pruned once closed.
		if i%2 == 0 {
			if err := writeRawFrame(conn, EncodeHello(NewHello(kpC))); err != nil {
				t.Fatal(err)
			}
		}
		if err := WriteFrame(conn, env); err != nil {
			t.Fatal(err)
		}
		<-b.Incoming()
		conn.Close()
	}

	deadline := time.After(5 * time.Second)
	for {
		s := b.Stats()
		if s.OpenConns == 0 && s.Accepted == cycles {
			if s.ConnsPruned < cycles {
				t.Fatalf("pruned %d conns, want %d", s.ConnsPruned, cycles)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("connections not pruned: open=%d accepted=%d pruned=%d (want 0 open after %d cycles)",
				s.OpenConns, s.Accepted, s.ConnsPruned, cycles)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestManyPeersChurn drives Send/AddPeer/Stats from many goroutines at
// once against a mix of live and dead endpoints — a miniature era
// switch — and requires the endpoint to survive and stay bounded.
func TestManyPeersChurn(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	a, err := New(Config{
		Listen:      "127.0.0.1:0",
		Key:         kpA,
		DialTimeout: 200 * time.Millisecond,
		SendQueue:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const peers = 8
	live := make([]*TCP, 0, peers/2)
	defer func() {
		for _, b := range live {
			b.Close()
		}
	}()
	addrs := make([]gcrypto.Address, peers)
	for i := 0; i < peers; i++ {
		kp := gcrypto.DeterministicKeyPair(10 + i)
		addrs[i] = kp.Address()
		if i%2 == 0 {
			b, err := New(Config{Listen: "127.0.0.1:0", Key: kp})
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, b)
			a.AddPeer(Peer{Addr: kp.Address(), HostPort: b.ListenAddr()})
		} else {
			a.AddPeer(Peer{Addr: kp.Address(), HostPort: fmt.Sprintf("127.0.0.1:%d", 1)})
		}
	}
	for _, b := range live {
		go func(b *TCP) {
			for range b.Incoming() {
			}
		}(b)
	}

	env := consensus.Seal(kpA, &pbft.Prepare{Era: 1, Seq: 1})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = a.Send(addrs[(w+i)%peers], env)
				if i%50 == 0 {
					_ = a.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if s := a.Stats(); len(s.Peers) != peers {
		t.Fatalf("peer states tracked: %d, want %d", len(s.Peers), peers)
	}
	// Writers drain asynchronously; the live half of the peers must see
	// frames eventually.
	deadline := time.After(5 * time.Second)
	for a.Stats().FramesOut == 0 {
		select {
		case <-deadline:
			t.Fatal("no frames delivered to live peers")
		case <-time.After(20 * time.Millisecond):
		}
	}
}
