package transport

import (
	"bytes"
	"context"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/types"
)

var epoch = time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)

func TestFrameRoundTrip(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	env := consensus.Seal(kp, &pbft.Prepare{Era: 1, View: 2, Seq: 3})
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MsgKind != env.MsgKind || got.From != env.From {
		t.Fatal("frame mangled")
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameLimits(t *testing.T) {
	// A hostile 4-byte header claiming a giant frame must be rejected.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// Truncated frame fails cleanly.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 1, 2})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame must fail")
	}
}

func TestTCPSendReceive(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)

	b, err := New(Config{Listen: "127.0.0.1:0", Self: kpB.Address()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a, err := New(Config{
		Listen: "127.0.0.1:0",
		Self:   kpA.Address(),
		Peers:  []Peer{{Addr: kpB.Address(), HostPort: b.ListenAddr()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	env := consensus.Seal(kpA, &pbft.Prepare{Era: 7, View: 0, Seq: 1})
	if err := a.Send(kpB.Address(), env); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b.Incoming():
		if got.From != kpA.Address() || got.MsgKind != consensus.KindPrepare {
			t.Fatal("wrong envelope")
		}
		if err := got.Verify(); err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for delivery")
	}

	// Unknown peer is an error.
	if err := a.Send(gcrypto.DeterministicKeyPair(9).Address(), env); err != ErrUnknownPeer {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestTCPAddPeerLater(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)
	b, _ := New(Config{Listen: "127.0.0.1:0", Self: kpB.Address()})
	defer b.Close()
	a, _ := New(Config{Listen: "127.0.0.1:0", Self: kpA.Address()})
	defer a.Close()

	env := consensus.Seal(kpA, &pbft.Prepare{Era: 1})
	if err := a.Send(kpB.Address(), env); err != ErrUnknownPeer {
		t.Fatal("peer should be unknown before AddPeer")
	}
	a.AddPeer(Peer{Addr: kpB.Address(), HostPort: b.ListenAddr()})
	if err := a.Send(kpB.Address(), env); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Incoming():
	case <-time.After(5 * time.Second):
		t.Fatal("timeout after AddPeer")
	}
}

// TestRealTCPPBFTCluster runs a full 4-node PBFT committee over real
// localhost TCP and commits a transaction end to end.
func TestRealTCPPBFTCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster in -short mode")
	}
	const n = 4
	keys := make([]*gcrypto.KeyPair, n)
	g := &ledger.Genesis{ChainID: "tcp-test", Timestamp: epoch, Policy: ledger.DefaultPolicy()}
	for i := 0; i < n; i++ {
		keys[i] = gcrypto.DeterministicKeyPair(i)
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: keys[i].Address(), PubKey: keys[i].Public(),
			Geohash: geo.MustEncode(geo.Point{Lng: 114.18, Lat: 22.3}, geo.CSCPrecision),
		})
	}
	com, err := consensus.NewCommittee(g.Endorsers)
	if err != nil {
		t.Fatal(err)
	}

	// Start all endpoints first so the address book is complete.
	tcps := make([]*TCP, n)
	for i := 0; i < n; i++ {
		tp, err := New(Config{Listen: "127.0.0.1:0", Key: keys[i]})
		if err != nil {
			t.Fatal(err)
		}
		defer tp.Close()
		tcps[i] = tp
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				tcps[i].AddPeer(Peer{Addr: keys[j].Address(), HostPort: tcps[j].ListenAddr()})
			}
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	committed := make(chan uint64, n*4)
	runners := make([]*Runner, n)
	for i := 0; i < n; i++ {
		chain, err := ledger.NewChain(g)
		if err != nil {
			t.Fatal(err)
		}
		app := runtime.NewApp(chain, runtime.NewMempool(0), keys[i].Address(), epoch, 16)
		eng, err := pbft.New(pbft.Config{
			Committee: com, Key: keys[i], App: app,
			Timers: consensus.NewTimerAllocator(), StartHeight: 1,
			ViewChangeTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		node := &runtime.Node{
			ID: keys[i].Address(), Key: keys[i], App: app, Engine: eng,
			OnCommit: func(_ consensus.Time, b *types.Block) {
				committed <- b.Header.Height
			},
		}
		runners[i] = NewRunner(node, tcps[i])
		go runners[i].Run(ctx)
	}

	// Submit one transaction at node 1.
	tx := &types.Transaction{
		Type: types.TxNormal, Nonce: 1, Payload: []byte("over-tcp"), Fee: 1,
		Geo: types.GeoInfo{Location: geo.Point{Lng: 114.18, Lat: 22.3}, Timestamp: epoch.Add(time.Second)},
	}
	tx.Sign(gcrypto.DeterministicKeyPair(1000))
	if err := runners[1].Submit(tx); err != nil {
		t.Fatal(err)
	}

	// All four nodes must commit height 1.
	seen := 0
	deadline := time.After(30 * time.Second)
	for seen < n {
		select {
		case h := <-committed:
			if h == 1 {
				seen++
			}
		case <-deadline:
			t.Fatalf("only %d/%d nodes committed within deadline", seen, n)
		}
	}
}

// TestTCPClusterStatsAndPeerMove runs a 4-node PBFT committee over
// real TCP, checks that transport.Stats reports live traffic, then
// moves one node to a brand-new port mid-run. The survivors learn the
// new endpoint via AddPeer and the cluster must commit another block —
// the era-switch/reconnect scenario of the paper's Raspberry-Pi
// deployment (Section V).
func TestTCPClusterStatsAndPeerMove(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster in -short mode")
	}
	const n = 4
	keys := make([]*gcrypto.KeyPair, n)
	g := &ledger.Genesis{ChainID: "tcp-move-test", Timestamp: epoch, Policy: ledger.DefaultPolicy()}
	for i := 0; i < n; i++ {
		keys[i] = gcrypto.DeterministicKeyPair(i)
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: keys[i].Address(), PubKey: keys[i].Public(),
			Geohash: geo.MustEncode(geo.Point{Lng: 114.18, Lat: 22.3}, geo.CSCPrecision),
		})
	}
	com, err := consensus.NewCommittee(g.Endorsers)
	if err != nil {
		t.Fatal(err)
	}

	newTCP := func(i int) *TCP {
		tp, err := New(Config{Listen: "127.0.0.1:0", Key: keys[i], DialTimeout: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	tcps := make([]*TCP, n)
	for i := 0; i < n; i++ {
		tcps[i] = newTCP(i)
	}
	defer func() {
		for _, tp := range tcps {
			tp.Close()
		}
	}()
	wirePeers := func(tp *TCP, self int) {
		for j := 0; j < n; j++ {
			if j != self {
				tp.AddPeer(Peer{Addr: keys[j].Address(), HostPort: tcps[j].ListenAddr()})
			}
		}
	}
	for i := 0; i < n; i++ {
		wirePeers(tcps[i], i)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type commitEv struct {
		node   int
		height uint64
	}
	committed := make(chan commitEv, n*16)
	nodes := make([]*runtime.Node, n)
	runnerCancel := make([]context.CancelFunc, n)
	runnerDone := make([]chan struct{}, n)
	startRunner := func(i int) *Runner {
		r := NewRunner(nodes[i], tcps[i])
		rctx, rcancel := context.WithCancel(ctx)
		done := make(chan struct{})
		runnerCancel[i], runnerDone[i] = rcancel, done
		go func() {
			defer close(done)
			r.Run(rctx)
		}()
		return r
	}
	runners := make([]*Runner, n)
	for i := 0; i < n; i++ {
		chain, err := ledger.NewChain(g)
		if err != nil {
			t.Fatal(err)
		}
		app := runtime.NewApp(chain, runtime.NewMempool(0), keys[i].Address(), epoch, 16)
		eng, err := pbft.New(pbft.Config{
			Committee: com, Key: keys[i], App: app,
			Timers: consensus.NewTimerAllocator(), StartHeight: 1,
			ViewChangeTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		i := i
		nodes[i] = &runtime.Node{
			ID: keys[i].Address(), Key: keys[i], App: app, Engine: eng,
			OnCommit: func(_ consensus.Time, b *types.Block) {
				committed <- commitEv{node: i, height: b.Header.Height}
			},
		}
		runners[i] = startRunner(i)
	}

	waitHeight := func(h uint64) {
		t.Helper()
		seen := make(map[int]bool)
		deadline := time.After(30 * time.Second)
		for len(seen) < n {
			select {
			case ev := <-committed:
				if ev.height == h {
					seen[ev.node] = true
				}
			case <-deadline:
				t.Fatalf("only %d/%d nodes committed height %d within deadline", len(seen), n, h)
			}
		}
	}

	submitTx := func(nonce uint64, payload string) {
		tx := &types.Transaction{
			Type: types.TxNormal, Nonce: nonce, Payload: []byte(payload), Fee: 1,
			Geo: types.GeoInfo{Location: geo.Point{Lng: 114.18, Lat: 22.3}, Timestamp: epoch.Add(time.Duration(nonce) * time.Second)},
		}
		tx.Sign(gcrypto.DeterministicKeyPair(1000))
		if err := runners[1].Submit(tx); err != nil {
			t.Fatal(err)
		}
	}

	submitTx(1, "before-move")
	waitHeight(1)

	// Consensus traffic must show up in the stats of every endpoint.
	for i, tp := range tcps {
		s := tp.Stats()
		if s.FramesIn == 0 || s.FramesOut == 0 || s.BytesIn == 0 || s.BytesOut == 0 {
			t.Fatalf("node %d stats show no traffic after a commit: %+v", i, s)
		}
	}

	// Node 3 moves: its runner is stopped, its transport restarts on a
	// brand-new port, and a fresh runner drives the SAME engine state.
	// Survivors re-register the endpoint via AddPeer on their LIVE
	// transports — their writers held connections to the dead port.
	const mover = 3
	runnerCancel[mover]()
	<-runnerDone[mover]
	tcps[mover].Close()
	tcps[mover] = newTCP(mover)
	wirePeers(tcps[mover], mover)
	runners[mover] = startRunner(mover)
	for i := 0; i < n; i++ {
		if i != mover {
			tcps[i].AddPeer(Peer{Addr: keys[mover].Address(), HostPort: tcps[mover].ListenAddr()})
		}
	}

	submitTx(2, "after-move")
	waitHeight(2)

	// The survivors' writers had a dead endpoint for the mover; commit
	// at height 2 on all four nodes proves the re-registered address
	// took effect on live connections.
	if s := tcps[mover].Stats(); s.FramesIn == 0 {
		t.Fatalf("moved node saw no inbound frames on its new endpoint: %+v", s)
	}
}
