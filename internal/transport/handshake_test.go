package transport

import (
	"net"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
)

func TestHelloRoundTrip(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	h := NewHello(kp)
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHello(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != kp.Address() {
		t.Fatal("address mangled")
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestHelloDecodeRejections(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	good := EncodeHello(NewHello(kp))

	// Truncated after the magic.
	if _, err := DecodeHello(good[:len(helloMagic)+3]); err == nil {
		t.Fatal("truncated hello must fail")
	}
	// Trailing garbage.
	if _, err := DecodeHello(append(append([]byte(nil), good...), 0xAA)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	// Wrong magic is not a hello at all.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if isHello(bad) {
		t.Fatal("wrong magic sniffed as hello")
	}
	// Unsupported version.
	verBad := append([]byte(nil), good...)
	verBad[len(helloMagic)] = 99
	if _, err := DecodeHello(verBad); err != ErrHelloVersion {
		t.Fatalf("want ErrHelloVersion, got %v", err)
	}
	// Oversized payload.
	big := append([]byte(nil), good...)
	big = append(big, make([]byte, MaxHello)...)
	if _, err := DecodeHello(big); err != ErrHelloTooLarge {
		t.Fatalf("want ErrHelloTooLarge, got %v", err)
	}
}

func TestHelloWrongAddressRejected(t *testing.T) {
	// A hello claiming B's address but signed with A's key must not
	// verify: connection attribution cannot be spoofed without the key.
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)
	h := NewHello(kpA)
	h.Addr = kpB.Address()
	if err := h.Verify(); err == nil {
		t.Fatal("hello with mismatched address must fail verification")
	}
	// Same with a re-signed digest but the wrong public key.
	h = &Hello{Addr: kpB.Address(), Pub: append([]byte(nil), kpA.Public()...)}
	h.Sig = kpA.Sign(helloDigest(kpB.Address()))
	if err := h.Verify(); err == nil {
		t.Fatal("signature by a key that does not own the address must fail")
	}
}

// dialRaw opens a plain TCP connection to an endpoint under test.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func waitHandshakeFailures(t *testing.T, tp *TCP, want int64) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for tp.Stats().HandshakeFailures < want {
		select {
		case <-deadline:
			t.Fatalf("handshake failures %d, want %d", tp.Stats().HandshakeFailures, want)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestInboundHelloRejections(t *testing.T) {
	kpB := gcrypto.DeterministicKeyPair(2)
	b, err := New(Config{Listen: "127.0.0.1:0", Key: kpB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Malformed hello frame: magic followed by garbage.
	conn := dialRaw(t, b.ListenAddr())
	if err := writeRawFrame(conn, []byte(helloMagic+"\x01garbage")); err != nil {
		t.Fatal(err)
	}
	waitHandshakeFailures(t, b, 1)
	conn.Close()

	// Oversized hello frame.
	conn = dialRaw(t, b.ListenAddr())
	big := append([]byte(helloMagic), make([]byte, MaxHello+1)...)
	if err := writeRawFrame(conn, big); err != nil {
		t.Fatal(err)
	}
	waitHandshakeFailures(t, b, 2)
	conn.Close()

	// Wrong-address hello: signed by A, claiming C.
	kpA := gcrypto.DeterministicKeyPair(1)
	h := NewHello(kpA)
	h.Addr = gcrypto.DeterministicKeyPair(3).Address()
	conn = dialRaw(t, b.ListenAddr())
	if err := writeRawFrame(conn, EncodeHello(h)); err != nil {
		t.Fatal(err)
	}
	waitHandshakeFailures(t, b, 3)
	conn.Close()

	// A hello claiming the receiver's own identity is refused.
	conn = dialRaw(t, b.ListenAddr())
	if err := writeRawFrame(conn, EncodeHello(NewHello(kpB))); err != nil {
		t.Fatal(err)
	}
	waitHandshakeFailures(t, b, 4)
	conn.Close()

	// The endpoint still accepts a well-formed peer after the abuse.
	a, err := New(Config{
		Listen: "127.0.0.1:0",
		Key:    kpA,
		Peers:  []Peer{{Addr: kpB.Address(), HostPort: b.ListenAddr()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	env := consensus.Seal(kpA, &pbft.Prepare{Era: 1, Seq: 1})
	if err := a.Send(kpB.Address(), env); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Incoming():
	case <-time.After(5 * time.Second):
		t.Fatal("valid peer blocked after hostile hellos")
	}
}

// TestBidirectionalReuse: after A dials B with a verified hello, B must
// send its own traffic back over the SAME connection — B has no address
// book entry for A and must not (cannot) dial.
func TestBidirectionalReuse(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(1)
	kpB := gcrypto.DeterministicKeyPair(2)

	b, err := New(Config{Listen: "127.0.0.1:0", Key: kpB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := New(Config{
		Listen: "127.0.0.1:0",
		Key:    kpA,
		Peers:  []Peer{{Addr: kpB.Address(), HostPort: b.ListenAddr()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// A -> B establishes the attributed connection.
	if err := a.Send(kpB.Address(), consensus.Seal(kpA, &pbft.Prepare{Era: 1, Seq: 1})); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Incoming():
	case <-time.After(5 * time.Second):
		t.Fatal("A->B delivery timeout")
	}

	// B -> A rides the adopted inbound connection.
	if err := b.Send(kpA.Address(), consensus.Seal(kpB, &pbft.Prepare{Era: 1, Seq: 2})); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-a.Incoming():
		if env.From != kpB.Address() {
			t.Fatal("wrong sender")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("B->A reuse delivery timeout")
	}
	if dials := b.Stats().Dials; dials != 0 {
		t.Fatalf("B dialed %d times; reuse requires zero", dials)
	}
	bs := b.Stats()
	if len(bs.Peers) != 1 || !bs.Peers[0].Inbound || bs.Peers[0].State != PeerConnected {
		t.Fatalf("B peer state %+v, want connected over inbound conn", bs.Peers)
	}
}

// TestLegacyClientConn: a connection that never sends a hello (an IoT
// client framing request envelopes directly) must still deliver.
func TestLegacyClientConn(t *testing.T) {
	kpB := gcrypto.DeterministicKeyPair(2)
	b, err := New(Config{Listen: "127.0.0.1:0", Key: kpB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	kpC := gcrypto.DeterministicKeyPair(9)
	conn := dialRaw(t, b.ListenAddr())
	defer conn.Close()
	for i := uint64(1); i <= 3; i++ {
		if err := WriteFrame(conn, consensus.Seal(kpC, &pbft.Prepare{Era: 1, Seq: i})); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case env := <-b.Incoming():
			if err := env.Verify(); err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("client frames not delivered")
		}
	}
}

// TestHandshakeTimeout: a connection that sends nothing is shed after
// the handshake deadline instead of being held open forever.
func TestHandshakeTimeout(t *testing.T) {
	kpB := gcrypto.DeterministicKeyPair(2)
	b, err := New(Config{Listen: "127.0.0.1:0", Key: kpB, HandshakeTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	conn := dialRaw(t, b.ListenAddr())
	defer conn.Close()
	deadline := time.After(5 * time.Second)
	for {
		s := b.Stats()
		if s.Accepted == 1 && s.OpenConns == 0 {
			// The silent connection was accepted, timed out, and pruned.
			if _, err := conn.Read(make([]byte, 1)); err == nil {
				t.Fatal("expected remote close")
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("silent conn not shed: %+v", s)
		case <-time.After(20 * time.Millisecond):
		}
	}
}
