package transport

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/types"
)

// Runner drives a runtime.Node in real time over a TCP endpoint. All
// engine events (received envelopes, timer expiries, local
// submissions) are serialized through one event loop, preserving the
// single-threaded discipline engines require.
type Runner struct {
	node *runtime.Node
	tcp  *TCP

	start  time.Time
	events chan runnerEvent

	mu     sync.Mutex
	timers map[consensus.TimerID]*time.Timer
	closed bool
}

type runnerEvent struct {
	env   *consensus.Envelope
	timer consensus.TimerID
	tx    *types.Transaction
	errCh chan error
}

// NewRunner wires a node to a TCP endpoint. It installs itself as the
// node's executor; call Run to start processing.
func NewRunner(node *runtime.Node, tcp *TCP) *Runner {
	r := &Runner{
		node:   node,
		tcp:    tcp,
		start:  time.Now(),
		events: make(chan runnerEvent, 8192),
		timers: make(map[consensus.TimerID]*time.Timer),
	}
	node.Exec = r
	return r
}

// now returns engine time: elapsed real time since the runner started.
func (r *Runner) now() consensus.Time { return time.Since(r.start) }

// Stats snapshots the transport layer this runner drives; together
// with the node's runtime counters it is what the -metrics-addr
// endpoint of cmd/gpbft-node exports.
func (r *Runner) Stats() Stats { return r.tcp.Stats() }

// Node returns the runtime node this runner drives (its counters
// complement the transport stats for observability).
func (r *Runner) Node() *runtime.Node { return r.node }

// Send implements runtime.Executor.
func (r *Runner) Send(to gcrypto.Address, env *consensus.Envelope) {
	_ = r.tcp.Send(to, env)
}

// SetTimer implements runtime.Executor.
func (r *Runner) SetTimer(id consensus.TimerID, delay consensus.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.timers[id] = time.AfterFunc(delay, func() {
		select {
		case r.events <- runnerEvent{timer: id}:
		default:
			// Event queue saturated; the engine tolerates a lost timer
			// (it re-arms on the next event).
		}
	})
}

// CancelTimer implements runtime.Executor.
func (r *Runner) CancelTimer(id consensus.TimerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[id]; ok {
		t.Stop()
		delete(r.timers, id)
	}
}

// Submit injects a local transaction and reports acceptance.
func (r *Runner) Submit(tx *types.Transaction) error {
	errCh := make(chan error, 1)
	r.events <- runnerEvent{tx: tx, errCh: errCh}
	return <-errCh
}

// preVerifyEnabled gates the runner's pipelined verification stage;
// the serial ablation baseline in gpbft-bench turns it off so incoming
// envelopes hit the event loop unverified, as the seed did.
var preVerifyEnabled atomic.Bool

func init() { preVerifyEnabled.Store(true) }

// SetPreVerify toggles pipelined envelope pre-verification for all
// runners; returns the previous setting.
func SetPreVerify(on bool) bool { return preVerifyEnabled.Swap(on) }

// verifyJob is one incoming envelope in flight through the
// pre-verification stage.
type verifyJob struct {
	env  *consensus.Envelope
	done chan struct{}
}

// preVerify runs on a worker goroutine: it performs the expensive
// signature work an envelope will need — the envelope seal itself,
// plus the transaction signatures a request or proposal carries — so
// the serial event loop finds every check memoized. Failures are not
// acted on here: an envelope that fails is still delivered, and the
// engine's own Open rejects it exactly as it would have without the
// pipeline (only success is memoized, so semantics are unchanged).
func preVerify(env *consensus.Envelope) {
	if env.MsgKind == consensus.KindRelay {
		// A relay frame is unsealed by design; the work to front-load is
		// decoding the batch (memoized on the envelope — the event loop
		// reuses this result) and verifying each inner envelope.
		// Recursion is safe: the decoder rejects nested relay frames.
		entries, err := env.RelayEntries()
		if err != nil {
			return
		}
		for i := range entries {
			preVerify(entries[i].Env)
		}
		return
	}
	if env.MsgKind == consensus.KindRequest {
		// Request envelopes skip the seal check end to end (see
		// pbft.onRequestEnv): the transaction inside is what
		// authenticates, so that is what gets warmed.
		var req pbft.Request
		if consensus.OpenUnverified(env, consensus.KindRequest, &req) == nil {
			types.PrewarmTxs([]types.Transaction{req.Tx})
		}
		return
	}
	if env.Verify() != nil {
		return
	}
	switch env.MsgKind {
	case consensus.KindPrePrepare:
		// The pipelining payoff: the next block's transaction batch
		// verifies here, in parallel, while the event loop is still
		// finishing the previous instance's commit.
		var pp pbft.PrePrepare
		if consensus.Open(env, consensus.KindPrePrepare, &pp) == nil {
			types.PrewarmTxs(pp.Block.Txs)
		}
	}
}

// startPipeline spawns the pre-verification stage: a feeder that tags
// incoming envelopes with an ordered job, a worker pool that verifies
// them concurrently, and an orderer that releases envelopes to the
// returned channel strictly in arrival order. The event loop stays the
// single writer of engine state; only pure signature checks fan out.
func (r *Runner) startPipeline(ctx context.Context) <-chan *consensus.Envelope {
	ordered := make(chan verifyJob, 8192)
	work := make(chan verifyJob, 8192)
	out := make(chan *consensus.Envelope, 8192)

	workers := gcrypto.BatchWorkers()
	for i := 0; i < workers; i++ {
		go func() {
			for job := range work {
				if preVerifyEnabled.Load() {
					preVerify(job.env)
				}
				close(job.done)
			}
		}()
	}
	// Feeder: preserve arrival order in `ordered` while handing the
	// same job to the workers.
	go func() {
		defer close(ordered)
		defer close(work)
		for {
			select {
			case <-ctx.Done():
				return
			case env := <-r.tcp.Incoming():
				job := verifyJob{env: env, done: make(chan struct{})}
				select {
				case <-ctx.Done():
					return
				case work <- job:
				}
				select {
				case <-ctx.Done():
					return
				case ordered <- job:
				}
			}
		}
	}()
	// Orderer: release each envelope only when verified, in order.
	go func() {
		defer close(out)
		for job := range ordered {
			<-job.done
			select {
			case <-ctx.Done():
				return
			case out <- job.env:
			}
		}
	}()
	return out
}

// Run processes events until ctx is cancelled. It starts the engine on
// entry.
func (r *Runner) Run(ctx context.Context) {
	r.node.Start(r.now())
	incoming := r.startPipeline(ctx)
	for {
		select {
		case <-ctx.Done():
			r.mu.Lock()
			r.closed = true
			for id, t := range r.timers {
				t.Stop()
				delete(r.timers, id)
			}
			r.mu.Unlock()
			return
		case env, ok := <-incoming:
			if !ok {
				incoming = nil // pipeline drained at shutdown
				continue
			}
			r.node.Deliver(r.now(), env)
		case ev := <-r.events:
			switch {
			case ev.timer != 0:
				r.mu.Lock()
				delete(r.timers, ev.timer)
				r.mu.Unlock()
				r.node.Fire(r.now(), ev.timer)
			case ev.tx != nil:
				err := r.node.Submit(r.now(), ev.tx)
				if ev.errCh != nil {
					ev.errCh <- err
				}
			}
		}
	}
}
