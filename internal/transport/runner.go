package transport

import (
	"context"
	"sync"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/runtime"
	"gpbft/internal/types"
)

// Runner drives a runtime.Node in real time over a TCP endpoint. All
// engine events (received envelopes, timer expiries, local
// submissions) are serialized through one event loop, preserving the
// single-threaded discipline engines require.
type Runner struct {
	node *runtime.Node
	tcp  *TCP

	start  time.Time
	events chan runnerEvent

	mu     sync.Mutex
	timers map[consensus.TimerID]*time.Timer
	closed bool
}

type runnerEvent struct {
	env   *consensus.Envelope
	timer consensus.TimerID
	tx    *types.Transaction
	errCh chan error
}

// NewRunner wires a node to a TCP endpoint. It installs itself as the
// node's executor; call Run to start processing.
func NewRunner(node *runtime.Node, tcp *TCP) *Runner {
	r := &Runner{
		node:   node,
		tcp:    tcp,
		start:  time.Now(),
		events: make(chan runnerEvent, 8192),
		timers: make(map[consensus.TimerID]*time.Timer),
	}
	node.Exec = r
	return r
}

// now returns engine time: elapsed real time since the runner started.
func (r *Runner) now() consensus.Time { return time.Since(r.start) }

// Stats snapshots the transport layer this runner drives; together
// with the node's runtime counters it is what the -metrics-addr
// endpoint of cmd/gpbft-node exports.
func (r *Runner) Stats() Stats { return r.tcp.Stats() }

// Node returns the runtime node this runner drives (its counters
// complement the transport stats for observability).
func (r *Runner) Node() *runtime.Node { return r.node }

// Send implements runtime.Executor.
func (r *Runner) Send(to gcrypto.Address, env *consensus.Envelope) {
	_ = r.tcp.Send(to, env)
}

// SetTimer implements runtime.Executor.
func (r *Runner) SetTimer(id consensus.TimerID, delay consensus.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.timers[id] = time.AfterFunc(delay, func() {
		select {
		case r.events <- runnerEvent{timer: id}:
		default:
			// Event queue saturated; the engine tolerates a lost timer
			// (it re-arms on the next event).
		}
	})
}

// CancelTimer implements runtime.Executor.
func (r *Runner) CancelTimer(id consensus.TimerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[id]; ok {
		t.Stop()
		delete(r.timers, id)
	}
}

// Submit injects a local transaction and reports acceptance.
func (r *Runner) Submit(tx *types.Transaction) error {
	errCh := make(chan error, 1)
	r.events <- runnerEvent{tx: tx, errCh: errCh}
	return <-errCh
}

// Run processes events until ctx is cancelled. It starts the engine on
// entry.
func (r *Runner) Run(ctx context.Context) {
	r.node.Start(r.now())
	for {
		select {
		case <-ctx.Done():
			r.mu.Lock()
			r.closed = true
			for id, t := range r.timers {
				t.Stop()
				delete(r.timers, id)
			}
			r.mu.Unlock()
			return
		case env := <-r.tcp.Incoming():
			r.node.Deliver(r.now(), env)
		case ev := <-r.events:
			switch {
			case ev.timer != 0:
				r.mu.Lock()
				delete(r.timers, ev.timer)
				r.mu.Unlock()
				r.node.Fire(r.now(), ev.timer)
			case ev.tx != nil:
				err := r.node.Submit(r.now(), ev.tx)
				if ev.errCh != nil {
					ev.errCh <- err
				}
			}
		}
	}
}
