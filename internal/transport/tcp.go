// Package transport runs the same consensus engines that the
// simulator drives over real TCP: length-prefixed envelope framing, an
// address book mapping chain addresses to host:port endpoints, a signed
// identity handshake so inbound connections are attributed and reused
// bidirectionally, per-peer writers with capped-exponential redial, and
// a single-goroutine real-time runner that serializes engine events
// exactly like the simulator does.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/types"
)

// MaxFrame bounds one wire frame (a block-sync response with full
// blocks is the largest message).
const MaxFrame = 32 << 20

// Errors returned by the transport.
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds limit")
	ErrUnknownPeer   = errors.New("transport: unknown peer address")
	ErrClosed        = errors.New("transport: closed")
)

// writeRawFrame writes one length-prefixed payload to w.
func writeRawFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readRawFrame reads one length-prefixed payload from r.
func readRawFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteFrame writes one length-prefixed envelope to w.
func WriteFrame(w io.Writer, env *consensus.Envelope) error {
	return writeRawFrame(w, consensus.EncodeEnvelope(env))
}

// ReadFrame reads one length-prefixed envelope from r.
func ReadFrame(r io.Reader) (*consensus.Envelope, error) {
	buf, err := readRawFrame(r)
	if err != nil {
		return nil, err
	}
	return consensus.DecodeEnvelope(buf)
}

// Peer is one address-book entry.
type Peer struct {
	Addr     gcrypto.Address
	HostPort string
}

// Config configures a TCP transport endpoint.
type Config struct {
	// Listen is the host:port to accept on (":0" for an OS-chosen
	// port).
	Listen string
	// Peers is the address book (self may be included; it is ignored).
	Peers []Peer
	// Self filters the address book. Derived from Key when zero.
	Self gcrypto.Address
	// Key, when set, signs the identity hello sent on every outbound
	// connection, letting the remote side attribute and reuse the
	// connection for its own traffic. Without a key no hello is sent
	// and connections stay one-directional (legacy/client mode).
	Key *gcrypto.KeyPair
	// DialTimeout bounds connection attempts (default 2 s).
	DialTimeout time.Duration
	// SendQueue is the per-peer outbound buffer (default 4096).
	SendQueue int
	// WriteTimeout bounds one frame write (default 10 s); a peer that
	// stops draining its socket cannot wedge the writer forever.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the wait for an inbound connection's
	// first frame (default 5 s), shedding silent connections.
	HandshakeTimeout time.Duration
	// KeepAlivePeriod is the TCP keepalive probe interval (default
	// 30 s; negative disables).
	KeepAlivePeriod time.Duration
	// BaseBackoff and MaxBackoff bound the capped-exponential redial
	// delay (defaults 50 ms and 2 s). Jitter of up to 50% is added so a
	// committee redialing a restarted peer does not stampede it.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// IdleTimeout, when positive, closes connections that deliver no
	// frame for that long (default 0: rely on keepalives, since an
	// idle committee is legitimately silent between proposals).
	IdleTimeout time.Duration
	// AdmitTx, when set, gates every inbound request envelope before it
	// reaches the engine loop (per-identity rate limits, load shedding).
	// A *runtime.RejectError return is answered with a signed TxRejected
	// reply on client connections so submitters can back off; the
	// envelope is dropped either way, and the connection stays open.
	AdmitTx func(tx *types.Transaction) error
	// IngressBytesPerSec, when positive, throttles each unattributed
	// (client) connection to this sustained inbound byte rate with
	// IngressBurstBytes of slack (default 4x the rate). A flooding
	// connection only stalls its own read loop — identified committee
	// peers are exempt, since they are accountable identities whose
	// relayed traffic was already admission-checked upstream.
	IngressBytesPerSec int
	IngressBurstBytes  int
}

func (c *Config) applyDefaults() {
	if c.Key != nil && c.Self.IsZero() {
		c.Self = c.Key.Address()
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.SendQueue == 0 {
		c.SendQueue = 4096
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.KeepAlivePeriod == 0 {
		c.KeepAlivePeriod = 30 * time.Second
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.IngressBytesPerSec > 0 && c.IngressBurstBytes <= 0 {
		c.IngressBurstBytes = 4 * c.IngressBytesPerSec
	}
}

// TCP is a transport endpoint: it accepts inbound framed envelopes and
// maintains one writer per peer. Writers prefer a connection the peer
// dialed to us (attributed via the identity handshake); otherwise they
// dial lazily, re-resolving the peer's endpoint from the address book
// on every attempt so AddPeer updates reach live writers.
type TCP struct {
	cfg      Config
	ln       net.Listener
	incoming chan *consensus.Envelope
	ctr      counters

	mu     sync.Mutex
	book   map[gcrypto.Address]string
	peers  map[gcrypto.Address]*peer
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup

	// encEnv/encWire form a one-slot encode memo for broadcast fan-out
	// (see Send); guarded by mu.
	encEnv  *consensus.Envelope
	encWire []byte
}

// peer is the per-peer connection state machine. Lock order: t.mu may
// not be acquired while holding p.mu.
type peer struct {
	t    *TCP
	addr gcrypto.Address
	q    chan []byte // pre-encoded frame payloads (see TCP.Send)
	// wake interrupts a backoff wait early: an endpoint change or an
	// adopted inbound connection makes an immediate retry worthwhile.
	wake chan struct{}
	// wbuf is the writer's coalescing scratch buffer; only the
	// writeLoop goroutine touches it.
	wbuf []byte

	mu          sync.Mutex
	conn        net.Conn
	inboundConn bool
	state       PeerState
	dialed      bool // a dial has been attempted before (redial accounting)
	redials     int64
}

// New starts listening and returns the endpoint.
func New(cfg Config) (*TCP, error) {
	cfg.applyDefaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	t := &TCP{
		cfg:      cfg,
		ln:       ln,
		incoming: make(chan *consensus.Envelope, 8192),
		book:     make(map[gcrypto.Address]string, len(cfg.Peers)),
		peers:    make(map[gcrypto.Address]*peer),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		if p.Addr != cfg.Self {
			t.book[p.Addr] = p.HostPort
		}
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// ListenAddr returns the bound listen address (useful with ":0").
func (t *TCP) ListenAddr() string { return t.ln.Addr().String() }

// Incoming returns the stream of received envelopes.
func (t *TCP) Incoming() <-chan *consensus.Envelope { return t.incoming }

// Dropped returns how many outbound messages were discarded because a
// peer queue was full or its connection kept failing.
func (t *TCP) Dropped() int64 { return t.ctr.dropped.Load() }

// Send queues env for delivery to a known peer; unknown peers are an
// error, full queues drop (consensus protocols tolerate loss).
//
// The envelope is encoded here, on the caller's goroutine, and the
// wire bytes are what travels through the peer queue. A one-slot memo
// keyed by envelope pointer makes a broadcast — the node executor
// calls Send once per recipient with the same envelope — encode once
// instead of once per peer. Callers must not mutate an envelope after
// handing it to Send (engines never do: envelopes are immutable once
// sealed).
func (t *TCP) Send(to gcrypto.Address, env *consensus.Envelope) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	p := t.peers[to]
	if p == nil {
		if _, known := t.book[to]; !known {
			t.mu.Unlock()
			return ErrUnknownPeer
		}
		p = t.startPeerLocked(to)
	}
	payload := t.encWire
	if t.encEnv != env {
		payload = consensus.EncodeEnvelope(env)
		t.encEnv, t.encWire = env, payload
	}
	t.mu.Unlock()
	if len(payload) > MaxFrame {
		t.ctr.dropped.Add(1)
		return ErrFrameTooLarge
	}
	select {
	case p.q <- payload:
	default:
		t.ctr.dropped.Add(1)
	}
	return nil
}

// AddPeer registers or updates a peer endpoint at runtime (new
// endorsers joining, a device moving to a new address). If the
// endpoint changed, the live writer is kicked so new traffic redials
// the fresh address instead of the stale one.
func (t *TCP) AddPeer(pr Peer) {
	if pr.Addr == t.cfg.Self {
		return
	}
	t.mu.Lock()
	old, had := t.book[pr.Addr]
	t.book[pr.Addr] = pr.HostPort
	p := t.peers[pr.Addr]
	t.mu.Unlock()
	if p != nil && (!had || old != pr.HostPort) {
		p.endpointChanged()
	}
}

// startPeerLocked creates the peer state machine and its writer; the
// caller must hold t.mu and have checked t.closed.
func (t *TCP) startPeerLocked(addr gcrypto.Address) *peer {
	p := &peer{
		t:    t,
		addr: addr,
		q:    make(chan []byte, t.cfg.SendQueue),
		wake: make(chan struct{}, 1),
	}
	t.peers[addr] = p
	t.wg.Add(1)
	go p.writeLoop()
	return p
}

// endpoint resolves the peer's current address-book entry ("" when the
// peer is known only through an inbound connection).
func (t *TCP) endpoint(addr gcrypto.Address) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.book[addr]
}

// track registers a connection for shutdown and pruning; it refuses
// (and closes) when the endpoint is already closed.
func (t *TCP) track(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		conn.Close()
		return false
	}
	t.conns[conn] = struct{}{}
	return true
}

// untrack prunes a dead connection so churn (era switches, peer
// restarts) does not grow the tracked set without bound.
func (t *TCP) untrack(conn net.Conn) {
	t.mu.Lock()
	_, present := t.conns[conn]
	delete(t.conns, conn)
	t.mu.Unlock()
	conn.Close()
	if present {
		t.ctr.connsPruned.Add(1)
	}
}

// configureConn applies keepalive settings to a fresh connection.
func (t *TCP) configureConn(conn net.Conn) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	if t.cfg.KeepAlivePeriod > 0 {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(t.cfg.KeepAlivePeriod)
	} else {
		tc.SetKeepAlive(false)
	}
	tc.SetNoDelay(true)
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.ctr.accepted.Add(1)
		if !t.track(conn) {
			return
		}
		t.wg.Add(1)
		go t.serveInbound(conn)
	}
}

// serveInbound handles one accepted connection. The first frame
// decides its nature: a verified hello attributes the connection to a
// chain address (enabling bidirectional reuse); a plain envelope marks
// a legacy/client connection that stays unattributed.
func (t *TCP) serveInbound(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	t.configureConn(conn)

	conn.SetReadDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	payload, err := readRawFrame(conn)
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	if isHello(payload) {
		h, err := DecodeHello(payload)
		if err != nil || h.Verify() != nil || h.Addr == t.cfg.Self {
			t.ctr.handshakeFailures.Add(1)
			return
		}
		if p := t.adoptInbound(h.Addr, conn); p != nil {
			defer p.dropConn(conn)
		}
		t.readFrames(conn, false)
		return
	}
	// No hello: an unattributed client (or legacy) connection. Client
	// traffic gets the ingress byte budget and admission replies.
	if !t.deliverPayload(conn, payload, true) {
		return
	}
	t.readFrames(conn, true)
}

// adoptInbound offers an attributed inbound connection to the peer's
// writer; it returns the peer so the caller can detach the connection
// on read exit, or nil when the transport is closing.
func (t *TCP) adoptInbound(addr gcrypto.Address, conn net.Conn) *peer {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	p := t.peers[addr]
	if p == nil {
		p = t.startPeerLocked(addr)
	}
	t.mu.Unlock()
	p.offerConn(conn, true)
	return p
}

// deliverPayload decodes and queues one received frame; a malformed
// frame is a protocol violation that closes the connection. Request
// envelopes pass through the AdmitTx gate first: a rejected request is
// dropped (the connection survives) and, on client connections, is
// answered with a signed TxRejected reply carrying the retry-after
// hint.
func (t *TCP) deliverPayload(conn net.Conn, payload []byte, client bool) bool {
	env, err := consensus.DecodeEnvelope(payload)
	if err != nil {
		return false
	}
	t.ctr.framesIn.Add(1)
	t.ctr.bytesIn.Add(int64(4 + len(payload)))
	if env.MsgKind == consensus.KindRequest && t.cfg.AdmitTx != nil {
		var req pbft.Request
		if consensus.OpenUnverified(env, consensus.KindRequest, &req) != nil {
			return false // malformed request body
		}
		if err := t.cfg.AdmitTx(&req.Tx); err != nil {
			t.ctr.ingressRejected.Add(1)
			if client && t.cfg.Key != nil {
				t.sendReject(conn, req.Tx.ID(), err)
			}
			return true // drop the envelope, keep the connection
		}
	}
	select {
	case t.incoming <- env:
		return true
	case <-t.done:
		return false
	}
}

// sendReject answers a refused request with a signed TxRejected frame.
// Only called on client connections, whose read goroutine is the sole
// writer — peer connections have a concurrent writeLoop.
func (t *TCP) sendReject(conn net.Conn, txID gcrypto.Hash, cause error) {
	msg := &pbft.TxRejected{TxID: txID, Reason: types.RejectPoolFull}
	var rej *runtime.RejectError
	if errors.As(cause, &rej) {
		msg.Reason, msg.RetryAfter = rej.Reason, rej.RetryAfter
	}
	env := consensus.Seal(t.cfg.Key, msg)
	wire := consensus.EncodeEnvelope(env)
	conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
	if writeRawFrame(conn, wire) == nil {
		t.ctr.rejectReplies.Add(1)
		t.ctr.framesOut.Add(1)
		t.ctr.bytesOut.Add(int64(4 + len(wire)))
	}
	conn.SetWriteDeadline(time.Time{})
}

// readFrames pumps envelopes off a connection until it fails. Client
// connections additionally pay a per-connection ingress byte budget:
// when the configured rate is exceeded, only this connection's read
// loop sleeps off the deficit, so one flooder cannot slow anyone else.
func (t *TCP) readFrames(conn net.Conn, client bool) {
	var budget float64
	var last time.Time
	rate := float64(t.cfg.IngressBytesPerSec)
	throttled := client && rate > 0
	if throttled {
		budget = float64(t.cfg.IngressBurstBytes)
		last = time.Now()
	}
	for {
		if t.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(t.cfg.IdleTimeout))
		}
		payload, err := readRawFrame(conn)
		if err != nil {
			return
		}
		if throttled {
			now := time.Now()
			budget += rate * now.Sub(last).Seconds()
			if max := float64(t.cfg.IngressBurstBytes); budget > max {
				budget = max
			}
			last = now
			budget -= float64(4 + len(payload))
			if budget < 0 {
				wait := time.Duration(-budget / rate * float64(time.Second))
				if wait > time.Second {
					wait = time.Second // re-check shutdown at least once a second
				}
				t.ctr.ingressThrottled.Add(1)
				select {
				case <-t.done:
					return
				case <-time.After(wait):
				}
			}
		}
		if !t.deliverPayload(conn, payload, client) {
			return
		}
	}
}

// --- per-peer writer ---

// maxWriteCoalesce caps how many queued frames one connection write
// may carry. Big enough to absorb a consensus round's burst of votes,
// small enough that one write stays well inside the write deadline.
const maxWriteCoalesce = 64

func (p *peer) writeLoop() {
	defer p.t.wg.Done()
	frames := make([][]byte, 0, maxWriteCoalesce)
	for {
		select {
		case <-p.t.done:
			return
		case payload := <-p.q:
			// Coalesce whatever else is already queued into the same
			// connection write: under load the queue holds a burst of
			// small vote frames, and one syscall for the lot beats one
			// per frame (the connection runs TCP_NODELAY, so the kernel
			// will not batch for us).
			frames = append(frames[:0], payload)
		coalesce:
			for len(frames) < maxWriteCoalesce {
				select {
				case more := <-p.q:
					frames = append(frames, more)
				default:
					break coalesce
				}
			}
			if !p.deliver(frames) {
				return
			}
		}
	}
}

// deliver writes a batch of pre-encoded frames as one connection
// write, establishing a connection first if needed. A failed write
// burns the connection and retries once on a fresh one; a second
// failure drops the batch (consensus protocols tolerate loss —
// blocking the whole queue does not). It returns false when the
// transport is shutting down.
func (p *peer) deliver(frames [][]byte) bool {
	buf := p.wbuf[:0]
	var hdr [4]byte
	for _, f := range frames {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(f)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, f...)
	}
	p.wbuf = buf
	for attempt := 0; attempt < 2; attempt++ {
		conn, ok := p.ensureConn()
		if !ok {
			return false
		}
		conn.SetWriteDeadline(time.Now().Add(p.t.cfg.WriteTimeout))
		if _, err := conn.Write(buf); err == nil {
			// Count every frame in the coalesced batch, not the batch as
			// one: each envelope the receiver counts as a FrameIn must be
			// a FrameOut here, and relayed gossip traffic leans on that
			// (one relay frame in can fan out as several frames here). The
			// batch itself is counted separately so coalescing efficiency
			// (frames per connection write) stays observable.
			p.t.ctr.framesOut.Add(int64(len(frames)))
			p.t.ctr.bytesOut.Add(int64(len(buf)))
			p.t.ctr.writeBatches.Add(1)
			return true
		}
		p.dropConn(conn)
	}
	p.t.ctr.dropped.Add(int64(len(frames)))
	return true
}

// ensureConn returns a live connection for the peer, blocking through
// dial attempts and backoff waits. It prefers an adopted inbound
// connection; otherwise it dials the endpoint re-resolved from the
// address book on EVERY attempt, so an AddPeer endpoint update takes
// effect on the next (re)dial instead of never. Returns ok=false when
// the transport closes.
func (p *peer) ensureConn() (net.Conn, bool) {
	backoff := p.t.cfg.BaseBackoff
	for {
		select {
		case <-p.t.done:
			return nil, false
		default:
		}
		p.mu.Lock()
		if p.conn != nil {
			conn := p.conn
			p.mu.Unlock()
			return conn, true
		}
		p.mu.Unlock()

		if endpoint := p.t.endpoint(p.addr); endpoint != "" {
			p.setState(PeerConnecting)
			conn, err := p.dial(endpoint)
			if err == nil {
				if !p.t.track(conn) {
					return nil, false
				}
				if p.offerConn(conn, false) {
					p.t.wg.Add(1)
					go p.t.serveOutbound(p, conn)
				} else {
					// An inbound connection was adopted while we dialed;
					// reuse it and discard ours.
					p.t.untrack(conn)
				}
				continue
			}
			p.t.ctr.dialFailures.Add(1)
		}
		p.setState(PeerBackoff)
		// Jittered wait, interruptible by shutdown or a wake (endpoint
		// change, adopted inbound connection).
		delay := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		select {
		case <-p.t.done:
			return nil, false
		case <-p.wake:
			backoff = p.t.cfg.BaseBackoff
		case <-time.After(delay):
			if backoff < p.t.cfg.MaxBackoff {
				backoff *= 2
				if backoff > p.t.cfg.MaxBackoff {
					backoff = p.t.cfg.MaxBackoff
				}
			}
		}
	}
}

// dial connects to the endpoint and sends the identity hello.
func (p *peer) dial(endpoint string) (net.Conn, error) {
	p.mu.Lock()
	redial := p.dialed
	p.dialed = true
	p.mu.Unlock()
	conn, err := net.DialTimeout("tcp", endpoint, p.t.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	p.t.configureConn(conn)
	if p.t.cfg.Key != nil {
		hello := EncodeHello(NewHello(p.t.cfg.Key))
		conn.SetWriteDeadline(time.Now().Add(p.t.cfg.WriteTimeout))
		if err := writeRawFrame(conn, hello); err != nil {
			conn.Close()
			return nil, err
		}
		conn.SetWriteDeadline(time.Time{})
		// The hello is a frame on the wire like any other — the reject
		// path counts its replies, so the dial path must count its hello,
		// or BytesOut undercounts every (re)connection.
		p.t.ctr.framesOut.Add(1)
		p.t.ctr.bytesOut.Add(int64(len(hello) + 4))
	}
	p.t.ctr.dials.Add(1)
	if redial {
		p.t.ctr.redials.Add(1)
		p.mu.Lock()
		p.redials++
		p.mu.Unlock()
	}
	return conn, nil
}

// serveOutbound reads response frames off a connection we dialed (the
// remote side reuses it for its own traffic) and detaches it on exit.
func (t *TCP) serveOutbound(p *peer, conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	defer p.dropConn(conn)
	t.readFrames(conn, false)
}

// offerConn installs a connection as the peer's writer conduit; it
// declines when one is already installed (the extra connection stays
// read-only until it dies).
func (p *peer) offerConn(conn net.Conn, inbound bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return false
	}
	p.conn = conn
	p.inboundConn = inbound
	p.state = PeerConnected
	p.notifyWake()
	return true
}

// dropConn detaches (and closes) a dead connection if it is the
// peer's current conduit, returning the writer to redialing.
func (p *peer) dropConn(conn net.Conn) {
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
		p.inboundConn = false
		if p.state == PeerConnected {
			p.state = PeerIdle
		}
	}
	p.mu.Unlock()
	conn.Close()
}

// endpointChanged reacts to an AddPeer endpoint update: a dialed
// connection to the old address is burned (an adopted inbound one is
// kept — the peer chose it), and any backoff wait is cut short.
func (p *peer) endpointChanged() {
	p.mu.Lock()
	if p.conn != nil && !p.inboundConn {
		p.conn.Close() // its read loop detaches it; the writer redials
	}
	p.mu.Unlock()
	p.notifyWake()
}

func (p *peer) notifyWake() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

func (p *peer) setState(s PeerState) {
	p.mu.Lock()
	if p.conn == nil { // a concurrent adoption wins over dial bookkeeping
		p.state = s
	}
	p.mu.Unlock()
}

// Close shuts the endpoint down.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.done)
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
}
