// Package transport runs the same consensus engines that the
// simulator drives over real TCP: length-prefixed envelope framing, an
// address book mapping chain addresses to host:port endpoints, lazy
// dialing with reconnection, and a single-goroutine real-time runner
// that serializes engine events exactly like the simulator does.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
)

// MaxFrame bounds one wire frame (a block-sync response with full
// blocks is the largest message).
const MaxFrame = 32 << 20

// Errors returned by the transport.
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds limit")
	ErrUnknownPeer   = errors.New("transport: unknown peer address")
	ErrClosed        = errors.New("transport: closed")
)

// WriteFrame writes one length-prefixed envelope to w.
func WriteFrame(w io.Writer, env *consensus.Envelope) error {
	payload := consensus.EncodeEnvelope(env)
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed envelope from r.
func ReadFrame(r io.Reader) (*consensus.Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return consensus.DecodeEnvelope(buf)
}

// Peer is one address-book entry.
type Peer struct {
	Addr     gcrypto.Address
	HostPort string
}

// Config configures a TCP transport endpoint.
type Config struct {
	// Listen is the host:port to accept on (":0" for an OS-chosen
	// port).
	Listen string
	// Peers is the address book (self may be included; it is ignored).
	Peers []Peer
	// Self filters the address book.
	Self gcrypto.Address
	// DialTimeout bounds connection attempts (default 2 s).
	DialTimeout time.Duration
	// SendQueue is the per-peer outbound buffer (default 4096).
	SendQueue int
}

// TCP is a transport endpoint: it accepts inbound framed envelopes and
// maintains one outbound connection per peer, dialed lazily and
// re-dialed on failure.
type TCP struct {
	cfg      Config
	ln       net.Listener
	book     map[gcrypto.Address]string
	incoming chan *consensus.Envelope

	mu    sync.Mutex
	outs  map[gcrypto.Address]chan *consensus.Envelope
	conns []net.Conn
	done  chan struct{}
	wg    sync.WaitGroup

	dropped int64 // outbound messages dropped on full queues
}

// New starts listening and returns the endpoint.
func New(cfg Config) (*TCP, error) {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.SendQueue == 0 {
		cfg.SendQueue = 4096
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	t := &TCP{
		cfg:      cfg,
		ln:       ln,
		book:     make(map[gcrypto.Address]string, len(cfg.Peers)),
		incoming: make(chan *consensus.Envelope, 8192),
		outs:     make(map[gcrypto.Address]chan *consensus.Envelope),
		done:     make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		if p.Addr != cfg.Self {
			t.book[p.Addr] = p.HostPort
		}
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// ListenAddr returns the bound listen address (useful with ":0").
func (t *TCP) ListenAddr() string { return t.ln.Addr().String() }

// Incoming returns the stream of received envelopes.
func (t *TCP) Incoming() <-chan *consensus.Envelope { return t.incoming }

// Dropped returns how many outbound messages were discarded because a
// peer queue was full or its connection kept failing.
func (t *TCP) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		select {
		case <-t.done:
			t.mu.Unlock()
			conn.Close()
			return
		default:
		}
		t.conns = append(t.conns, conn)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	for {
		env, err := ReadFrame(conn)
		if err != nil {
			return
		}
		select {
		case t.incoming <- env:
		case <-t.done:
			return
		}
	}
}

// Send queues env for delivery to a known peer; unknown peers are an
// error, full queues drop (consensus protocols tolerate loss).
func (t *TCP) Send(to gcrypto.Address, env *consensus.Envelope) error {
	hostport, ok := t.book[to]
	if !ok {
		return ErrUnknownPeer
	}
	t.mu.Lock()
	select {
	case <-t.done:
		t.mu.Unlock()
		return ErrClosed
	default:
	}
	q, ok := t.outs[to]
	if !ok {
		q = make(chan *consensus.Envelope, t.cfg.SendQueue)
		t.outs[to] = q
		t.wg.Add(1)
		go t.writeLoop(hostport, q)
	}
	t.mu.Unlock()
	select {
	case q <- env:
		return nil
	default:
		t.mu.Lock()
		t.dropped++
		t.mu.Unlock()
		return nil
	}
}

// AddPeer extends the address book at runtime (new endorsers joining).
func (t *TCP) AddPeer(p Peer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p.Addr != t.cfg.Self {
		t.book[p.Addr] = p.HostPort
	}
}

func (t *TCP) writeLoop(hostport string, q chan *consensus.Envelope) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-t.done:
			return
		case env := <-q:
			for conn == nil {
				c, err := net.DialTimeout("tcp", hostport, t.cfg.DialTimeout)
				if err == nil {
					conn = c
					backoff = 50 * time.Millisecond
					break
				}
				select {
				case <-t.done:
					return
				case <-time.After(backoff):
				}
				if backoff < 2*time.Second {
					backoff *= 2
				}
			}
			if err := WriteFrame(conn, env); err != nil {
				conn.Close()
				conn = nil
				// One redial attempt for this message, then drop it.
				c, derr := net.DialTimeout("tcp", hostport, t.cfg.DialTimeout)
				if derr != nil {
					t.mu.Lock()
					t.dropped++
					t.mu.Unlock()
					continue
				}
				conn = c
				if err := WriteFrame(conn, env); err != nil {
					conn.Close()
					conn = nil
					t.mu.Lock()
					t.dropped++
					t.mu.Unlock()
				}
			}
		}
	}
}

// Close shuts the endpoint down.
func (t *TCP) Close() {
	t.mu.Lock()
	select {
	case <-t.done:
		t.mu.Unlock()
		return
	default:
		close(t.done)
	}
	conns := t.conns
	t.mu.Unlock()
	t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
}
