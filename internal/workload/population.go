package workload

import (
	"fmt"
	"math/rand"
	"time"

	"gpbft/internal/geo"
)

// Population is a set of devices laid out in a deployment region.
type Population struct {
	Region  geo.Region
	Devices []*Device
	rng     *rand.Rand
}

// Spec describes how many devices of each kind to create.
type Spec struct {
	Fixed  int
	Mobile int
	Liar   int
	// Sybil identities all claim the position of the first fixed
	// device (the classic clone-an-honest-location attack).
	Sybil int
	// Spammer devices flood sustained traffic at SpamFactor times the
	// honest rate; Bursty devices emit the same average volume in
	// periodic dumps. Both are honest about location — they attack
	// with volume, not lies.
	Spammer int
	Bursty  int
	// SpamFactor is the attack rate multiple (default 5).
	SpamFactor int
	// SeedBase offsets device key derivation so populations never
	// collide with endorser identities (endorsers use small indices).
	SeedBase int
	// Speed for mobile/liar devices, metres per second.
	Speed float64
}

// NewPopulation lays devices out deterministically on a grid inside
// region, spaced so that distinct fixed devices never share a CSC cell
// (cells are ~1 m; the grid pitch is several metres).
func NewPopulation(region geo.Region, spec Spec, seed int64) *Population {
	rng := rand.New(rand.NewSource(seed))
	p := &Population{Region: region, rng: rng}
	if spec.SeedBase == 0 {
		spec.SeedBase = 10000
	}
	if spec.Speed == 0 {
		spec.Speed = 1.5
	}
	total := spec.Fixed + spec.Mobile + spec.Liar + spec.Sybil + spec.Spammer + spec.Bursty
	if total == 0 {
		return p
	}
	// Grid pitch: spread devices over the region, at least ~5 m apart.
	cols := 1
	for cols*cols < total {
		cols++
	}
	dLng := (region.MaxLng - region.MinLng) / float64(cols+1)
	dLat := (region.MaxLat - region.MinLat) / float64(cols+1)
	cell := func(i int) geo.Point {
		r, c := i/cols, i%cols
		return geo.Point{
			Lng: region.MinLng + dLng*float64(c+1),
			Lat: region.MinLat + dLat*float64(r+1),
		}
	}
	idx := 0
	add := func(kind Kind, n int) {
		for i := 0; i < n; i++ {
			home := cell(idx)
			if kind == Sybil && len(p.Devices) > 0 {
				home = p.Devices[0].Home // clone the first device's cell
			}
			d := NewDevice(fmt.Sprintf("%s-%d", kind, i), kind, spec.SeedBase+idx, home, rng)
			d.Speed = spec.Speed
			d.SpamFactor = spec.SpamFactor
			p.Devices = append(p.Devices, d)
			idx++
		}
	}
	add(Fixed, spec.Fixed)
	add(Mobile, spec.Mobile)
	add(Liar, spec.Liar)
	add(Sybil, spec.Sybil)
	add(Spammer, spec.Spammer)
	add(Bursty, spec.Bursty)
	return p
}

// OfKind returns the devices of one kind.
func (p *Population) OfKind(k Kind) []*Device {
	var out []*Device
	for _, d := range p.Devices {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}

// AdvanceAll moves every device by dt.
func (p *Population) AdvanceAll(dt time.Duration) {
	for _, d := range p.Devices {
		d.Advance(dt)
	}
}

// HongKongTestbed is a convenient ~1 km² deployment region around the
// paper authors' campus, used across examples and experiments.
func HongKongTestbed() geo.Region {
	return geo.NewRegion(
		geo.Point{Lng: 114.175, Lat: 22.300},
		geo.Point{Lng: 114.185, Lat: 22.310},
	)
}
