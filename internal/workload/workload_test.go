package workload

import (
	"math/rand"
	"testing"
	"time"

	"gpbft/internal/geo"
)

var wlEpoch = time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)

func TestFixedDeviceNeverMoves(t *testing.T) {
	d := NewDevice("lamp", Fixed, 10001, geo.Point{Lng: 114.18, Lat: 22.305}, rand.New(rand.NewSource(1)))
	start := d.Position()
	for i := 0; i < 100; i++ {
		d.Advance(time.Minute)
	}
	if !d.Position().Equal(start) {
		t.Fatal("fixed device moved")
	}
	if !d.ReportedPosition().Equal(start) {
		t.Fatal("fixed device must report its true position")
	}
}

func TestMobileDeviceMoves(t *testing.T) {
	d := NewDevice("phone", Mobile, 10002, geo.Point{Lng: 114.18, Lat: 22.305}, rand.New(rand.NewSource(1)))
	d.Speed = 10
	start := d.Position()
	for i := 0; i < 60; i++ {
		d.Advance(time.Second)
	}
	if start.DistanceMeters(d.Position()) < 1 {
		t.Fatal("mobile device did not move")
	}
	// Mobile devices are honest: they report where they actually are.
	if !d.ReportedPosition().Equal(d.Position()) {
		t.Fatal("mobile device must report true position")
	}
}

func TestLiarReportsFakePosition(t *testing.T) {
	home := geo.Point{Lng: 114.18, Lat: 22.305}
	d := NewDevice("liar", Liar, 10003, home, rand.New(rand.NewSource(1)))
	d.Speed = 10
	for i := 0; i < 60; i++ {
		d.Advance(time.Second)
	}
	if home.DistanceMeters(d.Position()) < 1 {
		t.Fatal("liar should physically move")
	}
	if !d.ReportedPosition().Equal(home) {
		t.Fatal("liar must keep claiming its fake home")
	}
}

func TestLocationReportTx(t *testing.T) {
	d := NewDevice("lamp", Fixed, 10004, geo.Point{Lng: 114.18, Lat: 22.305}, rand.New(rand.NewSource(1)))
	tx := d.LocationReport(wlEpoch)
	if err := tx.Verify(); err != nil {
		t.Fatal(err)
	}
	if tx.Sender != d.Address() {
		t.Fatal("report must be signed by the device")
	}
	tx2 := d.LocationReport(wlEpoch.Add(time.Second))
	if tx.ID() == tx2.ID() {
		t.Fatal("consecutive reports must have distinct IDs")
	}
}

func TestDataTx(t *testing.T) {
	d := NewDevice("meter", Fixed, 10005, geo.Point{Lng: 114.18, Lat: 22.305}, rand.New(rand.NewSource(1)))
	tx := d.DataTx(wlEpoch, []byte("kwh=1.7"), 5)
	if err := tx.Verify(); err != nil {
		t.Fatal(err)
	}
	if tx.Fee != 5 || string(tx.Payload) != "kwh=1.7" {
		t.Fatal("payload/fee mangled")
	}
}

func TestPopulationLayout(t *testing.T) {
	region := HongKongTestbed()
	p := NewPopulation(region, Spec{Fixed: 10, Mobile: 5, Liar: 2, Sybil: 3}, 42)
	if len(p.Devices) != 20 {
		t.Fatalf("%d devices", len(p.Devices))
	}
	if len(p.OfKind(Fixed)) != 10 || len(p.OfKind(Mobile)) != 5 ||
		len(p.OfKind(Liar)) != 2 || len(p.OfKind(Sybil)) != 3 {
		t.Fatal("kind counts wrong")
	}
	// All homes inside the region.
	for _, d := range p.Devices {
		if !region.Contains(d.Home) {
			t.Fatalf("device %s home outside region", d.Name)
		}
	}
	// Fixed devices must land in distinct CSC cells (spacing check).
	seen := map[string]string{}
	for _, d := range p.OfKind(Fixed) {
		h := geo.MustEncode(d.Home, geo.CSCPrecision)
		if prev, dup := seen[h]; dup {
			t.Fatalf("devices %s and %s share CSC cell %s", prev, d.Name, h)
		}
		seen[h] = d.Name
	}
	// Sybil devices clone the first device's cell.
	first := geo.MustEncode(p.Devices[0].Home, geo.CSCPrecision)
	for _, s := range p.OfKind(Sybil) {
		if geo.MustEncode(s.ReportedPosition(), geo.CSCPrecision) != first {
			t.Fatal("sybil must claim the first device's cell")
		}
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a := NewPopulation(HongKongTestbed(), Spec{Fixed: 5, Mobile: 5}, 7)
	b := NewPopulation(HongKongTestbed(), Spec{Fixed: 5, Mobile: 5}, 7)
	for i := range a.Devices {
		if a.Devices[i].Address() != b.Devices[i].Address() {
			t.Fatal("population identities must be deterministic")
		}
		if !a.Devices[i].Home.Equal(b.Devices[i].Home) {
			t.Fatal("population layout must be deterministic")
		}
	}
}

func TestAdvanceAll(t *testing.T) {
	p := NewPopulation(HongKongTestbed(), Spec{Fixed: 2, Mobile: 2, Speed: 10}, 7)
	starts := make([]geo.Point, len(p.Devices))
	for i, d := range p.Devices {
		starts[i] = d.Position()
	}
	for i := 0; i < 30; i++ {
		p.AdvanceAll(time.Second)
	}
	for i, d := range p.Devices {
		moved := starts[i].DistanceMeters(d.Position()) > 0.5
		if d.Kind == Fixed && moved {
			t.Fatal("fixed device moved")
		}
		if d.Kind == Mobile && !moved {
			t.Fatal("mobile device did not move")
		}
	}
}

func TestSpammerSustainedRate(t *testing.T) {
	d := NewDevice("flood", Spammer, 30001, geo.Point{Lng: 114.18, Lat: 22.305}, rand.New(rand.NewSource(1)))
	d.SpamFactor = 5
	for i := 0; i < 10; i++ {
		if got := d.TxPerStep(); got != 5 {
			t.Fatalf("step %d: spammer wants %d txs, want 5", i, got)
		}
	}
	// Spammers are honest about location; they attack with volume.
	if !d.ReportedPosition().Equal(d.Home) {
		t.Fatal("spammer must report its true position")
	}
	d.Advance(time.Minute)
	if !d.Position().Equal(d.Home) {
		t.Fatal("spammer should stay put")
	}
}

func TestBurstyCycleAveragesToSpamFactor(t *testing.T) {
	d := NewDevice("burst", Bursty, 30002, geo.Point{Lng: 114.18, Lat: 22.305}, rand.New(rand.NewSource(1)))
	d.SpamFactor = 5
	d.BurstPeriod = 4
	var counts []int
	total := 0
	for i := 0; i < 8; i++ {
		n := d.TxPerStep()
		counts = append(counts, n)
		total += n
	}
	// Two full cycles: a 20-tx dump then three idle steps, twice.
	want := []int{20, 0, 0, 0, 20, 0, 0, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("burst schedule %v, want %v", counts, want)
		}
	}
	if total != 5*8 {
		t.Fatalf("long-run volume %d, want SpamFactor×steps = %d", total, 5*8)
	}
}

func TestHonestDevicePacesAtOnePerStep(t *testing.T) {
	for _, k := range []Kind{Fixed, Mobile, Liar, Sybil} {
		d := NewDevice("d", k, 30003, geo.Point{}, rand.New(rand.NewSource(1)))
		if got := d.TxPerStep(); got != 1 {
			t.Fatalf("%s device wants %d txs per step, want 1", k, got)
		}
	}
}

func TestPopulationWithAttackers(t *testing.T) {
	p := NewPopulation(HongKongTestbed(), Spec{Fixed: 4, Spammer: 2, Bursty: 1, SpamFactor: 8}, 42)
	if len(p.OfKind(Spammer)) != 2 || len(p.OfKind(Bursty)) != 1 {
		t.Fatal("attacker counts wrong")
	}
	for _, d := range append(p.OfKind(Spammer), p.OfKind(Bursty)...) {
		if d.SpamFactor != 8 {
			t.Fatalf("attacker %s SpamFactor = %d, want 8", d.Name, d.SpamFactor)
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{Fixed, Mobile, Liar, Sybil, Spammer, Bursty} {
		if k.String() == "" {
			t.Fatal("kind must render")
		}
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must render")
	}
}
