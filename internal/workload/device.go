// Package workload models IoT device populations: the fixed devices
// the paper builds G-PBFT around (street lamps, payment machines, RFID
// receivers), mobile devices (phones, vehicles), misbehaving devices
// that lie about their location, and Sybil identity clusters. Devices
// produce the two transaction streams the protocol consumes — periodic
// location reports and application data — as signed transactions.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/types"
)

// Kind classifies simulated devices.
type Kind int

// Device kinds.
const (
	// Fixed devices never move: the endorser material of the paper
	// ("a smart street lamp of a car monitoring system, or a payment
	// machine in a parking lot").
	Fixed Kind = iota
	// Mobile devices move between waypoints (phones, vehicle trackers);
	// they can never qualify as endorsers.
	Mobile
	// Liar devices physically move but always report one fake fixed
	// location, probing the geographic authentication.
	Liar
	// Sybil devices are extra identities all reporting the same cell as
	// their master, probing the same-cell defence.
	Sybil
	// Spammer devices are honest about their location but flood the
	// network with application traffic at a sustained multiple of the
	// honest rate, probing admission control and QoS fairness.
	Spammer
	// Bursty devices alternate long idle stretches with short bursts
	// many times the honest rate, probing token-bucket burst limits and
	// the shed controller's hysteresis.
	Bursty
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Fixed:
		return "fixed"
	case Mobile:
		return "mobile"
	case Liar:
		return "liar"
	case Sybil:
		return "sybil"
	case Spammer:
		return "spammer"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Device is one simulated IoT device.
type Device struct {
	Name string
	Kind Kind
	Key  *gcrypto.KeyPair
	// Home is the true position for Fixed devices, the claimed
	// position for Liar/Sybil devices, and the start for Mobile ones.
	Home geo.Point
	// Speed is metres per second of drift for Mobile/Liar devices.
	Speed float64
	// SpamFactor is the sustained rate multiple over honest devices for
	// Spammer devices, and the within-burst multiple for Bursty ones.
	SpamFactor int
	// BurstPeriod is the step cycle length for Bursty devices: one step
	// of SpamFactor×BurstPeriod transactions, then BurstPeriod-1 idle
	// steps (the long-run average stays SpamFactor× honest).
	BurstPeriod int

	pos   geo.Point
	nonce uint64
	step  int
	rng   *rand.Rand
}

// NewDevice creates a device with a deterministic identity derived
// from seed.
func NewDevice(name string, kind Kind, seed int, home geo.Point, rng *rand.Rand) *Device {
	return &Device{
		Name:  name,
		Kind:  kind,
		Key:   gcrypto.DeterministicKeyPair(seed),
		Home:  home,
		Speed: 1.5, // pedestrian default
		pos:   home,
		rng:   rng,
	}
}

// Address returns the device's chain address.
func (d *Device) Address() gcrypto.Address { return d.Key.Address() }

// Position returns the device's current true position.
func (d *Device) Position() geo.Point { return d.pos }

// Advance moves the device by dt according to its kind.
func (d *Device) Advance(dt time.Duration) {
	switch d.Kind {
	case Fixed, Sybil, Spammer, Bursty:
		// stays put (Sybil claims its master's position anyway;
		// attackers sit at a fixed point and attack with volume)
	case Mobile, Liar:
		// Random-walk drift: Speed m/s in a random direction. One
		// degree of latitude is ~111 km.
		dist := d.Speed * dt.Seconds()
		theta := d.rng.Float64() * 2 * math.Pi
		dLat := dist * math.Cos(theta) / 111_000
		dLng := dist * math.Sin(theta) / 111_000
		d.pos.Lat = clamp(d.pos.Lat+dLat, -90, 90)
		d.pos.Lng = wrap(d.pos.Lng + dLng)
	}
}

// ReportedPosition is the position the device CLAIMS in transactions:
// the truth for honest devices, the fake home for liars and Sybils.
func (d *Device) ReportedPosition() geo.Point {
	switch d.Kind {
	case Liar, Sybil:
		return d.Home
	default:
		return d.pos
	}
}

// TxPerStep reports how many application transactions the device wants
// to emit this workload step. Honest kinds pace at one per step;
// Spammers sustain SpamFactor per step; Bursty devices dump a whole
// cycle's worth (SpamFactor×BurstPeriod) in one step and then idle.
func (d *Device) TxPerStep() int {
	factor := d.SpamFactor
	if factor <= 0 {
		factor = 5
	}
	switch d.Kind {
	case Spammer:
		return factor
	case Bursty:
		period := d.BurstPeriod
		if period <= 0 {
			period = 4
		}
		d.step++
		if (d.step-1)%period == 0 {
			return factor * period
		}
		return 0
	default:
		return 1
	}
}

// LocationReport builds the periodic signed location-report
// transaction (Section III-B3).
func (d *Device) LocationReport(at time.Time) *types.Transaction {
	d.nonce++
	tx := &types.Transaction{
		Type:  types.TxLocationReport,
		Nonce: d.nonce,
		Geo: types.GeoInfo{
			Location:  d.ReportedPosition(),
			Timestamp: at,
		},
	}
	tx.Sign(d.Key)
	return tx
}

// DataTx builds an application transaction (sensor reading, payment,
// RFID event) carrying the device's geographic information at the end
// of the body, as Section III-B2 prescribes.
func (d *Device) DataTx(at time.Time, payload []byte, fee uint64) *types.Transaction {
	d.nonce++
	tx := &types.Transaction{
		Type:    types.TxNormal,
		Nonce:   d.nonce,
		Payload: payload,
		Fee:     fee,
		Geo: types.GeoInfo{
			Location:  d.ReportedPosition(),
			Timestamp: at,
		},
	}
	tx.Sign(d.Key)
	return tx
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func wrap(lng float64) float64 {
	for lng > 180 {
		lng -= 360
	}
	for lng < -180 {
		lng += 360
	}
	return lng
}
