package geo

import "testing"

func BenchmarkEncode(b *testing.B) {
	p := Point{Lng: 114.1795, Lat: 22.3050}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(p, CSCPrecision); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	h := MustEncode(Point{Lng: 114.1795, Lat: 22.3050}, CSCPrecision)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeighbors(b *testing.B) {
	h := MustEncode(Point{Lng: 114.1795, Lat: 22.3050}, CSCPrecision)
	for i := 0; i < b.N; i++ {
		if _, err := Neighbors(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistance(b *testing.B) {
	p := Point{Lng: 114.1795, Lat: 22.3050}
	q := Point{Lng: 114.2638, Lat: 22.3363}
	for i := 0; i < b.N; i++ {
		_ = p.DistanceMeters(q)
	}
}
