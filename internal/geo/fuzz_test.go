package geo

import "testing"

// FuzzDecodeGeohash: arbitrary strings must never panic the decoder,
// and valid hashes must round-trip through their cell centre.
func FuzzDecodeGeohash(f *testing.F) {
	f.Add("ezs42")
	f.Add("wecnyhwbp1")
	f.Add("")
	f.Add("ALL-CAPS!")
	f.Fuzz(func(t *testing.T, s string) {
		box, err := DecodeBox(s)
		if err != nil {
			if Valid(s) {
				t.Fatalf("Valid(%q) but DecodeBox failed: %v", s, err)
			}
			return
		}
		if !Valid(s) {
			t.Fatalf("DecodeBox(%q) ok but Valid is false", s)
		}
		c := box.Center()
		if err := c.Validate(); err != nil {
			t.Fatalf("centre of %q invalid: %v", s, err)
		}
		// Re-encoding the centre at the same precision reproduces the hash.
		h2, err := Encode(c, len(s))
		if err != nil {
			t.Fatal(err)
		}
		if h2 != s {
			t.Fatalf("roundtrip %q -> %q", s, h2)
		}
	})
}

// FuzzEncode: any clamped coordinate pair must encode then decode into
// a containing cell.
func FuzzEncode(f *testing.F) {
	f.Add(114.1795, 22.3050)
	f.Add(0.0, 0.0)
	f.Add(-180.0, -90.0)
	f.Fuzz(func(t *testing.T, lng, lat float64) {
		p := Point{Lng: clampLng(lng), Lat: clampLat(lat)}
		h, err := Encode(p, CSCPrecision)
		if err != nil {
			t.Fatalf("Encode(%v): %v", p, err)
		}
		box, err := DecodeBox(h)
		if err != nil {
			t.Fatal(err)
		}
		if !box.Contains(p) {
			t.Fatalf("box of %q does not contain %v", h, p)
		}
	})
}
