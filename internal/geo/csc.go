package geo

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// CSC is a Crypto-Spatial Coordinate (paper Section III-B3): the
// combination of a location (geohash) and a chain address. "A shorter
// CSC address represents a larger area. A longer CSC address represents
// a more specific location."
//
// Address is the hex-encoded chain address of the device's account (in
// the paper, a smart-contract address); Geohash is the device location
// at CSCPrecision.
type CSC struct {
	Geohash string
	Address string
}

// Errors returned by CSC construction and parsing.
var (
	ErrCSCGeohash = errors.New("geo: CSC has invalid geohash")
	ErrCSCAddress = errors.New("geo: CSC has empty address")
	ErrCSCFormat  = errors.New("geo: malformed CSC string")
)

// NewCSC builds a CSC from a point and a chain address, encoding the
// point at CSCPrecision.
func NewCSC(p Point, address string) (CSC, error) {
	if address == "" {
		return CSC{}, ErrCSCAddress
	}
	h, err := Encode(p, CSCPrecision)
	if err != nil {
		return CSC{}, err
	}
	return CSC{Geohash: h, Address: address}, nil
}

// Validate checks both components.
func (c CSC) Validate() error {
	if !Valid(c.Geohash) {
		return ErrCSCGeohash
	}
	if c.Address == "" {
		return ErrCSCAddress
	}
	return nil
}

// String renders the CSC as "geohash@address".
func (c CSC) String() string {
	return c.Geohash + "@" + c.Address
}

// ParseCSC parses the "geohash@address" form produced by String.
func ParseCSC(s string) (CSC, error) {
	i := strings.IndexByte(s, '@')
	if i <= 0 || i == len(s)-1 {
		return CSC{}, ErrCSCFormat
	}
	c := CSC{Geohash: s[:i], Address: s[i+1:]}
	if err := c.Validate(); err != nil {
		return CSC{}, err
	}
	return c, nil
}

// SameCell reports whether two CSCs denote the same geohash cell,
// regardless of owner. The Sybil guard uses this: "different nodes
// cannot report the same geographic information at the same time"
// (paper Section IV-A1).
func (c CSC) SameCell(o CSC) bool {
	return c.Geohash == o.Geohash
}

// WithinPrefix reports whether the CSC's cell lies inside the (coarser)
// cell denoted by prefix — the hierarchical containment property of the
// CSC standard.
func (c CSC) WithinPrefix(prefix string) bool {
	return strings.HasPrefix(c.Geohash, prefix)
}

// Point returns the centre of the CSC's geohash cell.
func (c CSC) Point() (Point, error) {
	return Decode(c.Geohash)
}

// Report is a single piece of geographic information as defined in
// paper Section II-C: <longitude, latitude, timestamp>, extended with
// the reporting device's address so it can be chained into the election
// table. Reports are what transactions carry "at the end of the
// transaction body" (Section III-B2).
type Report struct {
	Location  Point
	Timestamp time.Time
	Address   string
}

// CSC derives the Crypto-Spatial Coordinate of the report.
func (r Report) CSC() (CSC, error) {
	return NewCSC(r.Location, r.Address)
}

// Validate checks the report's coordinates and fields.
func (r Report) Validate() error {
	if err := r.Location.Validate(); err != nil {
		return err
	}
	if r.Address == "" {
		return ErrCSCAddress
	}
	if r.Timestamp.IsZero() {
		return fmt.Errorf("geo: report has zero timestamp")
	}
	return nil
}
