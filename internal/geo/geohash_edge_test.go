package geo

import (
	"math"
	"testing"
)

// poleNeighbors checks the Neighbors invariants for a cell touching a
// pole: the set must stay valid, deduplicated, origin-free and at the
// origin's precision even though the polar row clamps (the N/S step
// returns the cell itself, collapsing that side of the ring).
func poleNeighbors(t *testing.T, lat float64) {
	t.Helper()
	h := MustEncode(Point{Lng: 31.4, Lat: lat}, 5)
	ns, err := Neighbors(h)
	if err != nil {
		t.Fatal(err)
	}
	// A polar cell loses its N (or S) rank to the clamp, leaving the
	// two lateral cells plus the three on the equator side.
	if len(ns) < 3 || len(ns) > 8 {
		t.Fatalf("polar cell %q: %d neighbours, want 3..8: %v", h, len(ns), ns)
	}
	seen := map[string]bool{}
	for _, n := range ns {
		if n == h {
			t.Errorf("polar cell %q: neighbour set contains origin", h)
		}
		if seen[n] {
			t.Errorf("polar cell %q: duplicate neighbour %q", h, n)
		}
		seen[n] = true
		if len(n) != len(h) {
			t.Errorf("polar cell %q: neighbour %q at different precision", h, n)
		}
		if !Valid(n) {
			t.Errorf("polar cell %q: invalid neighbour %q", h, n)
		}
	}
}

func TestNeighborsAtNorthPole(t *testing.T) { poleNeighbors(t, 89.9999) }
func TestNeighborsAtSouthPole(t *testing.T) { poleNeighbors(t, -89.9999) }

// TestNeighborsAcrossAntimeridian pins the wrap behaviour for the full
// eight-cell ring of a cell hugging lng=180: the set keeps all eight
// distinct members, and the eastern rank lands on the far side of the
// antimeridian rather than clamping or walking off the map.
func TestNeighborsAcrossAntimeridian(t *testing.T) {
	h := MustEncode(Point{Lng: 179.999, Lat: 12.5}, 5)
	ns, err := Neighbors(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 8 {
		t.Fatalf("antimeridian cell %q: %d neighbours, want 8: %v", h, len(ns), ns)
	}
	wrapped := 0
	for _, n := range ns {
		pt, err := Decode(n)
		if err != nil {
			t.Fatalf("Decode(%q): %v", n, err)
		}
		if pt.Lng < 0 {
			wrapped++
		}
	}
	// N+1/E/S+1 ranks (NE, E, SE) must all wrap to negative longitude.
	if wrapped != 3 {
		t.Fatalf("antimeridian cell %q: %d neighbours wrapped west of the date line, want 3", h, wrapped)
	}
}

// TestNeighborsAtMapCorner combines both edges: the cell at the
// southwest corner of the map (lng=-180, lat=-90, hash "00000") sits on
// a pole AND the antimeridian, so its ring both clamps and wraps.
func TestNeighborsAtMapCorner(t *testing.T) {
	h := MustEncode(Point{Lng: -180, Lat: -90}, 5)
	ns, err := Neighbors(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) == 0 {
		t.Fatalf("corner cell %q has no neighbours", h)
	}
	for _, n := range ns {
		if n == h || !Valid(n) || len(n) != len(h) {
			t.Fatalf("corner cell %q: bad neighbour %q in %v", h, n, ns)
		}
	}
}

// TestCellSizeExtremeRows pins the outermost rows of the precision
// table: the coarsest legal cell spans a continent, the finest a few
// centimetres, and out-of-range precisions fail loudly on both sides.
func TestCellSizeExtremeRows(t *testing.T) {
	w1, h1, err := CellSizeMeters(1)
	if err != nil {
		t.Fatal(err)
	}
	// Precision 1 is a 45x45 degree cell: ~5000 km on a side at the
	// equator (one geohash character = 5 bits, 3 lng + 2 lat).
	if w1 < 4.5e6 || w1 > 5.5e6 || h1 < 4.5e6 || h1 > 5.5e6 {
		t.Fatalf("precision 1 cell %.0f x %.0f m, want ~5,000 km sides", w1, h1)
	}
	w12, h12, err := CellSizeMeters(MaxGeohashPrecision)
	if err != nil {
		t.Fatal(err)
	}
	// Precision 12 resolves below 4x2 cm at the equator.
	if w12 > 0.05 || h12 > 0.02 || w12 <= 0 || h12 <= 0 {
		t.Fatalf("precision 12 cell %v x %v m, want centimetre scale", w12, h12)
	}
	if _, _, err := CellSizeMeters(MaxGeohashPrecision + 1); err != ErrGeohashPrecision {
		t.Errorf("precision %d: want ErrGeohashPrecision, got %v", MaxGeohashPrecision+1, err)
	}
	if _, _, err := CellSizeMeters(-1); err != ErrGeohashPrecision {
		t.Errorf("precision -1: want ErrGeohashPrecision, got %v", err)
	}
}

// TestCellSizeAspectRatio pins the bit-split geometry across the whole
// table: odd precisions get the extra bit on longitude, so their cells
// are square at the equator, while even precisions are twice as wide
// as tall.
func TestCellSizeAspectRatio(t *testing.T) {
	for p := 1; p <= MaxGeohashPrecision; p++ {
		w, h, err := CellSizeMeters(p)
		if err != nil {
			t.Fatal(err)
		}
		ratio := w / h
		want := 1.0
		if p%2 == 0 {
			want = 2.0
		}
		if math.Abs(ratio-want) > 0.05*want {
			t.Errorf("precision %d: aspect ratio %.3f, want ~%.1f", p, ratio, want)
		}
	}
}
